// Wire-codec regressions for qspr_serve's newline-delimited JSON protocol.
// The FrameReader CRLF cases and the "m"/"seed" range cases are regression
// tests: each failed before its fix (CR counted against the frame cap; m=0
// rejected instead of meaning "server default"; seeds above 2^53 silently
// rounded by the double-typed JSON reader).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "service/request_codec.hpp"

namespace qspr {
namespace {

TEST(FrameReaderTest, SplitsFramesAndKeepsPartialTail) {
  FrameReader reader(64);
  std::vector<std::string> frames;
  EXPECT_TRUE(reader.feed("one\ntwo\nthr", frames));
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], "one");
  EXPECT_EQ(frames[1], "two");
  EXPECT_EQ(reader.partial_bytes(), 3u);
  EXPECT_TRUE(reader.feed("ee\n", frames));
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[2], "three");
}

TEST(FrameReaderTest, CrlfFrameAtExactlyTheCapIsAccepted) {
  // The cap bounds the logical frame; the CR of a CRLF client is framing,
  // not payload. Pre-fix, the CR was counted and a cap-sized frame from a
  // CRLF client overflowed the connection.
  const std::size_t cap = 16;
  FrameReader reader(cap);
  std::vector<std::string> frames;
  const std::string payload(cap, 'x');
  EXPECT_TRUE(reader.feed(payload + "\r\n", frames));
  EXPECT_FALSE(reader.overflowed());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], payload);
}

TEST(FrameReaderTest, SplitCrlfAtTheCapIsAccepted) {
  // Same case, but the CR arrives in one read and the LF in the next — the
  // unterminated tail must not count the pending CR against the cap either.
  const std::size_t cap = 16;
  FrameReader reader(cap);
  std::vector<std::string> frames;
  const std::string payload(cap, 'x');
  EXPECT_TRUE(reader.feed(payload + "\r", frames));
  EXPECT_FALSE(reader.overflowed());
  EXPECT_TRUE(frames.empty());
  EXPECT_TRUE(reader.feed("\n", frames));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], payload);
}

TEST(FrameReaderTest, OverCapFrameOverflowsPermanently) {
  const std::size_t cap = 16;
  FrameReader reader(cap);
  std::vector<std::string> frames;
  const std::string payload(cap + 1, 'x');
  EXPECT_FALSE(reader.feed(payload + "\n", frames));
  EXPECT_TRUE(reader.overflowed());
  EXPECT_TRUE(frames.empty());
  // Permanently: even a well-formed follow-up frame is refused.
  EXPECT_FALSE(reader.feed("ok\n", frames));
}

TEST(FrameReaderTest, CrInsideThePayloadStillCounts) {
  // Only the single CR immediately before the LF is framing; an interior CR
  // is payload and counts toward the cap.
  const std::size_t cap = 4;
  FrameReader reader(cap);
  std::vector<std::string> frames;
  EXPECT_TRUE(reader.feed("ab\rc\n", frames));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], "ab\rc");
  FrameReader strict(3);
  EXPECT_FALSE(strict.feed("ab\rc\n", frames));
  EXPECT_TRUE(strict.overflowed());
}

class ParseRequestTest : public ::testing::Test {
 protected:
  ServeRequest parse(const std::string& frame) {
    return parse_serve_request(frame, limits_, defaults_);
  }

  CodecLimits limits_;
  MapperOptions defaults_;
};

TEST_F(ParseRequestTest, MZeroMeansServerDefault) {
  // "m": 0 must behave exactly like an absent "m" (the documented
  // semantics); pre-fix it was rejected as out of range.
  defaults_.monte_carlo_trials = 7;
  defaults_.mvfb_seeds = 9;
  const ServeRequest request =
      parse(R"({"type":"map","id":"r1","qasm":"qubit q0;","m":0})");
  EXPECT_EQ(request.options.monte_carlo_trials, 7);
  EXPECT_EQ(request.options.mvfb_seeds, 9);

  const ServeRequest positive =
      parse(R"({"type":"map","id":"r2","qasm":"qubit q0;","m":5})");
  EXPECT_EQ(positive.options.monte_carlo_trials, 5);
  EXPECT_EQ(positive.options.mvfb_seeds, 5);
}

TEST_F(ParseRequestTest, NegativeMIsRejected) {
  EXPECT_THROW(parse(R"({"type":"map","id":"r1","qasm":"q","m":-1})"),
               Error);
}

TEST_F(ParseRequestTest, SeedRoundTripsUpTo2To53AndClampsAbove) {
  // 2^53 is the largest integer the double-typed JSON reader represents
  // exactly; larger seeds clamp there instead of silently rounding.
  const ServeRequest exact = parse(
      R"({"type":"map","id":"r1","qasm":"q","seed":9007199254740992})");
  EXPECT_EQ(exact.options.rng_seed, 9007199254740992ULL);

  const ServeRequest above = parse(
      R"({"type":"map","id":"r2","qasm":"q","seed":10000000000000000})");
  EXPECT_EQ(above.options.rng_seed, 9007199254740992ULL);

  const ServeRequest small =
      parse(R"({"type":"map","id":"r3","qasm":"q","seed":42})");
  EXPECT_EQ(small.options.rng_seed, 42ULL);
}

TEST_F(ParseRequestTest, SessionFramesParse) {
  const ServeRequest open =
      parse(R"({"type":"session_open","id":"o1","fabric":"paper"})");
  EXPECT_EQ(open.kind, RequestKind::SessionOpen);
  EXPECT_EQ(open.fabric, "paper");

  const ServeRequest in_session = parse(
      R"({"type":"map","id":"r1","session":"s1","qasm_append":"cnot q0, q1;"})");
  EXPECT_EQ(in_session.kind, RequestKind::Map);
  EXPECT_EQ(in_session.session, "s1");
  EXPECT_EQ(in_session.qasm_append, "cnot q0, q1;");
  EXPECT_TRUE(in_session.qasm.empty());

  const ServeRequest close =
      parse(R"({"type":"session_close","id":"c1","session":"s1"})");
  EXPECT_EQ(close.kind, RequestKind::SessionClose);
  EXPECT_EQ(close.session, "s1");
}

}  // namespace
}  // namespace qspr
