// The batch mapping service's contracts:
//
//   * batch output is bit-identical to a sequential map_program loop over
//     the same manifest, at any engine worker count (the per-job
//     determinism of PR 2 composed across jobs);
//   * per-fabric artifacts are built once per *distinct* fabric layout and
//     cache-hit paths produce results identical to cold builds;
//   * a malformed or infeasible job fails only its own record — never the
//     process, never its neighbours;
//   * JSONL records round-trip through the shared JSON reader.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/engine.hpp"
#include "core/mapper.hpp"
#include "fabric/quale_fabric.hpp"
#include "qecc/codes.hpp"
#include "qecc/random_circuit.hpp"
#include "service/batch_mapper.hpp"

namespace qspr {
namespace {

std::vector<Program> mixed_corpus() {
  std::vector<Program> corpus;
  corpus.push_back(make_encoder(QeccCode::Q5_1_3));
  corpus.push_back(make_encoder(QeccCode::Q7_1_3));
  Rng rng(3);
  Program random = make_random_circuit({6, 24, 0.7}, rng);
  random.set_name("random_6q");
  corpus.push_back(std::move(random));
  return corpus;
}

MapperOptions monte_carlo_options() {
  MapperOptions options;
  options.placer = PlacerKind::MonteCarlo;
  options.monte_carlo_trials = 8;
  options.rng_seed = 5;
  return options;
}

MapperOptions mvfb_options() {
  MapperOptions options;
  options.placer = PlacerKind::Mvfb;
  options.mvfb_seeds = 4;
  options.rng_seed = 17;
  return options;
}

std::vector<BatchJob> manifest_for(const std::vector<Program>& corpus,
                                   const Fabric& fabric,
                                   const MapperOptions& options) {
  std::vector<BatchJob> manifest;
  for (const Program& program : corpus) {
    BatchJob job;
    job.name = program.name();
    job.program = &program;
    job.fabric = &fabric;
    job.options = options;
    manifest.push_back(job);
  }
  return manifest;
}

void expect_same_mapping(const MapResult& expected, const MapResult& actual,
                         const std::string& label) {
  EXPECT_EQ(expected.latency, actual.latency) << label;
  EXPECT_EQ(expected.placement_runs, actual.placement_runs) << label;
  EXPECT_EQ(expected.initial_placement, actual.initial_placement) << label;
  EXPECT_EQ(expected.final_placement, actual.final_placement) << label;
  EXPECT_EQ(expected.trace.to_string(), actual.trace.to_string()) << label;
}

// ---------------------------------------------------------------------------
// Determinism: batch == sequential loop, at every worker count
// ---------------------------------------------------------------------------

class BatchDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(BatchDeterminism, MonteCarloBatchMatchesSequentialLoop) {
  const std::vector<Program> corpus = mixed_corpus();
  const Fabric fabric = make_quale_fabric({4, 4, 4});
  const MapperOptions options = monte_carlo_options();

  std::vector<MapResult> sequential;
  for (const Program& program : corpus) {
    sequential.push_back(map_program(program, fabric, options));
  }

  MappingEngine engine(GetParam());
  BatchMapper batch(engine);
  const BatchResult result =
      batch.run(manifest_for(corpus, fabric, options));
  ASSERT_EQ(result.records.size(), corpus.size());
  EXPECT_EQ(result.summary.failed, 0);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    ASSERT_TRUE(result.records[i].ok) << result.records[i].error;
    expect_same_mapping(sequential[i], result.records[i].result,
                        corpus[i].name() + " @ " +
                            std::to_string(GetParam()) + " workers");
  }
}

TEST_P(BatchDeterminism, MvfbBatchMatchesSequentialLoop) {
  const std::vector<Program> corpus = mixed_corpus();
  const Fabric fabric = make_quale_fabric({4, 4, 4});
  const MapperOptions options = mvfb_options();

  std::vector<MapResult> sequential;
  for (const Program& program : corpus) {
    sequential.push_back(map_program(program, fabric, options));
  }

  MappingEngine engine(GetParam());
  BatchMapper batch(engine);
  const BatchResult result =
      batch.run(manifest_for(corpus, fabric, options));
  ASSERT_EQ(result.records.size(), corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    ASSERT_TRUE(result.records[i].ok) << result.records[i].error;
    expect_same_mapping(sequential[i], result.records[i].result,
                        corpus[i].name() + " @ " +
                            std::to_string(GetParam()) + " workers");
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, BatchDeterminism,
                         ::testing::Values(1, 4));

// Records stream in manifest order regardless of scheduling.
TEST(BatchMapper, StreamsRecordsInManifestOrder) {
  const std::vector<Program> corpus = mixed_corpus();
  const Fabric fabric = make_quale_fabric({4, 4, 4});
  MappingEngine engine(4);
  BatchMapper batch(engine);
  std::vector<std::string> seen;
  batch.run(manifest_for(corpus, fabric, monte_carlo_options()),
            [&](const BatchJobRecord& record) { seen.push_back(record.name); });
  ASSERT_EQ(seen.size(), corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(seen[i], corpus[i].name());
  }
}

// ---------------------------------------------------------------------------
// Fault isolation
// ---------------------------------------------------------------------------

TEST(BatchMapper, MalformedAndInfeasibleJobsFailOnlyTheirRecords) {
  const std::vector<Program> corpus = mixed_corpus();
  const Fabric fabric = make_quale_fabric({4, 4, 4});
  const MapperOptions options = monte_carlo_options();

  // Oversized program: more qubits than the fabric has traps.
  Program oversized("oversized");
  for (int q = 0; q < 200; ++q) {
    oversized.add_qubit("q" + std::to_string(q), 0);
  }

  std::vector<BatchJob> manifest =
      manifest_for(corpus, fabric, options);
  BatchJob unreadable;
  unreadable.name = "unreadable";
  unreadable.qasm_path = "/nonexistent/missing.qasm";
  unreadable.fabric = &fabric;
  unreadable.options = options;
  manifest.insert(manifest.begin() + 1, unreadable);
  BatchJob infeasible;
  infeasible.name = "infeasible";
  infeasible.program = &oversized;
  infeasible.fabric = &fabric;
  infeasible.options = options;
  manifest.insert(manifest.begin() + 3, infeasible);

  MappingEngine engine(4);
  BatchMapper batch(engine);
  const BatchResult result = batch.run(manifest);

  ASSERT_EQ(result.records.size(), corpus.size() + 2);
  EXPECT_EQ(result.summary.failed, 2);
  EXPECT_EQ(result.summary.succeeded, static_cast<int>(corpus.size()));

  EXPECT_FALSE(result.records[1].ok);
  EXPECT_FALSE(result.records[1].error.empty());
  EXPECT_FALSE(result.records[3].ok);
  EXPECT_FALSE(result.records[3].error.empty());

  // The healthy neighbours still map, bit-identical to solo runs.
  const MapResult solo0 = map_program(corpus[0], fabric, options);
  ASSERT_TRUE(result.records[0].ok);
  expect_same_mapping(solo0, result.records[0].result, "neighbour 0");
  const MapResult solo1 = map_program(corpus[1], fabric, options);
  ASSERT_TRUE(result.records[2].ok);
  expect_same_mapping(solo1, result.records[2].result, "neighbour 1");
}

// ---------------------------------------------------------------------------
// Fabric artifact cache
// ---------------------------------------------------------------------------

TEST(FabricArtifactCache, BuildsOncePerDistinctFabricLayout) {
  const std::vector<Program> corpus = mixed_corpus();
  const Fabric fabric_a1 = make_quale_fabric({4, 4, 4});
  const Fabric fabric_a2 = make_quale_fabric({4, 4, 4});  // same layout
  const Fabric fabric_b = make_quale_fabric({6, 11, 4});

  MappingEngine engine(2);
  const MapperOptions options = monte_carlo_options();
  engine.map(corpus[0], fabric_a1, options);
  engine.map(corpus[1], fabric_a2, options);  // distinct object, same layout
  engine.map(corpus[2], fabric_a1, options);
  EXPECT_EQ(engine.artifacts().stats().builds, 1);
  EXPECT_EQ(engine.artifacts().stats().hits, 2);
  EXPECT_EQ(engine.artifacts().size(), 1u);

  engine.map(corpus[0], fabric_b, options);
  EXPECT_EQ(engine.artifacts().stats().builds, 2);
  EXPECT_EQ(engine.artifacts().size(), 2u);
}

TEST(FabricArtifactCache, LandmarkTablesBuildOncePerDistinctFabric) {
  // The ALT landmark tables ride in the same per-fabric artifact entry as
  // the CSR graph: a whole batch over one fabric layout pays exactly one
  // table build (2K+K Dijkstras), every other job takes the cache hit.
  const std::vector<Program> corpus = mixed_corpus();
  const Fabric fabric_a1 = make_quale_fabric({4, 4, 4});
  const Fabric fabric_a2 = make_quale_fabric({4, 4, 4});  // same layout
  const Fabric fabric_b = make_quale_fabric({6, 11, 4});

  MappingEngine engine(2);
  MapperOptions options = monte_carlo_options();  // route_landmarks = 8
  options.negotiation_report = true;  // the diagnostics pass consumes tables
  engine.map(corpus[0], fabric_a1, options);
  engine.map(corpus[1], fabric_a2, options);
  engine.map(corpus[2], fabric_a1, options);
  EXPECT_EQ(engine.artifacts().landmark_stats().builds, 1);
  EXPECT_EQ(engine.artifacts().landmark_stats().hits, 2);

  engine.map(corpus[0], fabric_b, options);
  EXPECT_EQ(engine.artifacts().landmark_stats().builds, 2);

  // A multi-program batch over one fabric also pays a single build.
  MappingEngine batch_engine(4);
  BatchMapper batch(batch_engine);
  const BatchResult result =
      batch.run(manifest_for(corpus, fabric_a1, options));
  EXPECT_EQ(result.summary.failed, 0);
  EXPECT_EQ(batch_engine.artifacts().landmark_stats().builds, 1);
  EXPECT_EQ(batch_engine.artifacts().landmark_stats().hits,
            static_cast<long long>(corpus.size()) - 1);
}

TEST(FabricArtifactCache, WarmHitsMatchColdBuilds) {
  const std::vector<Program> corpus = mixed_corpus();
  const Fabric fabric = make_quale_fabric({4, 4, 4});
  const MapperOptions options = mvfb_options();

  MappingEngine engine(2);
  const MapResult cold = engine.map(corpus[1], fabric, options);
  ASSERT_EQ(engine.artifacts().stats().builds, 1);
  const MapResult warm = engine.map(corpus[1], fabric, options);
  EXPECT_EQ(engine.artifacts().stats().builds, 1);
  EXPECT_GE(engine.artifacts().stats().hits, 1);
  expect_same_mapping(cold, warm, "cold vs warm artifacts");

  // And both match the engine-free reference path.
  const MapResult reference = map_program(corpus[1], fabric, options);
  expect_same_mapping(reference, cold, "reference vs cold");
}

TEST(FabricArtifactCache, FingerprintSeparatesLayouts) {
  const Fabric a = make_quale_fabric({4, 4, 4});
  const Fabric b = make_quale_fabric({6, 11, 4});
  EXPECT_EQ(fabric_fingerprint(a),
            fabric_fingerprint(make_quale_fabric({4, 4, 4})));
  EXPECT_NE(fabric_fingerprint(a), fabric_fingerprint(b));

  const FabricArtifacts artifacts(a);
  EXPECT_EQ(artifacts.traps_near_center.size(), a.trap_count());
  EXPECT_EQ(artifacts.trap_port_count.size(), a.trap_count());
  EXPECT_EQ(artifacts.graph.node_count(),
            RoutingGraph(a).node_count());
}

// ---------------------------------------------------------------------------
// JSONL output round-trips through the shared JSON reader
// ---------------------------------------------------------------------------

TEST(BatchJsonl, RecordAndSummaryRoundTrip) {
  const std::vector<Program> corpus = mixed_corpus();
  const Fabric fabric = make_quale_fabric({4, 4, 4});
  MappingEngine engine(2);
  BatchMapper batch(engine);
  const BatchResult result =
      batch.run(manifest_for(corpus, fabric, monte_carlo_options()));

  for (std::size_t i = 0; i < result.records.size(); ++i) {
    const BatchJobRecord& record = result.records[i];
    const JsonValue parsed = parse_json(batch_record_json(record));
    EXPECT_EQ(parsed.string_or("name", ""), record.name);
    EXPECT_EQ(parsed.bool_or("ok", false), record.ok);
    EXPECT_EQ(parsed.number_or("latency_us", -1),
              static_cast<double>(record.result.latency));
    EXPECT_EQ(parsed.number_or("qubits", -1),
              static_cast<double>(record.qubits));
  }
  const JsonValue summary = parse_json(batch_summary_json(result.summary));
  EXPECT_EQ(summary.number_or("jobs", -1), result.summary.jobs);
  EXPECT_EQ(summary.number_or("failed", -1), 0);
  EXPECT_EQ(summary.number_or("artifact_builds", -1), 1);
}

TEST(JsonReader, ParsesScalarsContainersAndRejectsGarbage) {
  const JsonValue value = parse_json(
      R"({"name":"x","ok":true,"n":-12.5e1,"list":[1,2,3],"nested":{"k":null}})");
  EXPECT_EQ(value.string_or("name", ""), "x");
  EXPECT_TRUE(value.bool_or("ok", false));
  EXPECT_EQ(value.number_or("n", 0), -125.0);
  ASSERT_NE(value.find("list"), nullptr);
  EXPECT_EQ(value.find("list")->items().size(), 3u);
  EXPECT_TRUE(value.find("nested")->find("k")->is_null());
  EXPECT_EQ(value.find("absent"), nullptr);

  EXPECT_THROW(parse_json("{"), ParseError);
  EXPECT_THROW(parse_json(R"({"a":1} trailing)"), ParseError);
  EXPECT_THROW(parse_json(R"({"a":tru})"), ParseError);
}

// Error diagnostics can carry arbitrary input bytes (e.g. a binary file
// misnamed .qasm) into JSONL records: control characters must survive a
// write -> parse round trip as valid JSON.
TEST(JsonReader, ControlCharactersRoundTripThroughWriter) {
  const std::string nasty = std::string("ctrl\x01\x02\n\ttail");
  JsonWriter writer;
  writer.begin_object().field("error", nasty).end_object();
  const JsonValue parsed = parse_json(writer.str());
  EXPECT_EQ(parsed.string_or("error", ""), nasty);
}

// Hardening for network-facing input (the serve codec parses attacker-
// controlled frames with this reader): truncated constructs must fail as
// clean ParseErrors, never hangs or crashes.
TEST(JsonReader, RejectsUnterminatedStringsAndContainersCleanly) {
  EXPECT_THROW(parse_json(R"({"key":"never closed)"), ParseError);
  EXPECT_THROW(parse_json(R"({"key":"escape at end\)"), ParseError);
  EXPECT_THROW(parse_json(R"(["a","b")"), ParseError);
  EXPECT_THROW(parse_json(R"({"a":{"b":1})"), ParseError);
  EXPECT_THROW(parse_json("\""), ParseError);
  EXPECT_THROW(parse_json(""), ParseError);
}

// Nesting depth is bounded: the parser recurses per container, so without
// a cap a frame of 100k brackets is a stack overflow, not a ParseError.
TEST(JsonReader, DeepNestingFailsAtTheLimitNotTheStack) {
  const auto nested = [](int depth) {
    return std::string(static_cast<std::size_t>(depth), '[') + "1" +
           std::string(static_cast<std::size_t>(depth), ']');
  };
  JsonLimits limits;
  limits.max_depth = 16;
  EXPECT_NO_THROW(parse_json(nested(16), limits));
  EXPECT_THROW(parse_json(nested(17), limits), ParseError);
  // The default limit still bounds a hostile frame of 100k brackets.
  EXPECT_THROW(parse_json(std::string(100'000, '[')), ParseError);
}

// The byte budget rejects oversized documents in O(1), before parsing.
TEST(JsonReader, ByteBudgetRejectsOversizedDocumentsUpFront) {
  JsonLimits limits;
  limits.max_bytes = 32;
  EXPECT_NO_THROW(parse_json(R"({"ok":true})", limits));
  EXPECT_THROW(
      parse_json(R"({"pad":"0123456789012345678901234567890123456789"})",
                 limits),
      ParseError);
  // max_bytes = 0 means unlimited (the library default).
  EXPECT_NO_THROW(parse_json(
      R"({"pad":"0123456789012345678901234567890123456789"})"));
}

}  // namespace
}  // namespace qspr
