// Tests for the connectivity placer and the linear (QCCD-chain) fabric.
#include <gtest/gtest.h>

#include <set>

#include "circuit/dependency_graph.hpp"
#include "common/error.hpp"
#include "core/connectivity_placer.hpp"
#include "core/mapper.hpp"
#include "core/placer.hpp"
#include "fabric/linear_fabric.hpp"
#include "fabric/quale_fabric.hpp"
#include "fabric/text_io.hpp"
#include "qecc/codes.hpp"
#include "route/routing_graph.hpp"
#include "sim/event_sim.hpp"

namespace qspr {
namespace {

TEST(InteractionWeights, CountsSharedTwoQubitGates) {
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  const QubitId c = program.add_qubit("c");
  program.add_gate(GateKind::H, a);
  program.add_gate(GateKind::CX, a, b);
  program.add_gate(GateKind::CZ, b, a);
  program.add_gate(GateKind::CY, b, c);
  const auto weights = interaction_weights(program);
  EXPECT_EQ(weights[a.index()][b.index()], 2);
  EXPECT_EQ(weights[b.index()][a.index()], 2);
  EXPECT_EQ(weights[b.index()][c.index()], 1);
  EXPECT_EQ(weights[a.index()][c.index()], 0);
  EXPECT_EQ(weights[a.index()][a.index()], 0);
}

TEST(ConnectivityPlacer, ProducesValidDistinctPlacement) {
  const Fabric fabric = make_paper_fabric();
  const Program program = make_encoder(QeccCode::Q9_1_3);
  const Placement placement = connectivity_placement(fabric, program);
  placement.validate(fabric);
}

TEST(ConnectivityPlacer, CoLocatesHeavyPartners) {
  const Fabric fabric = make_paper_fabric();
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  const QubitId c = program.add_qubit("c");
  const QubitId d = program.add_qubit("d");
  for (int i = 0; i < 8; ++i) program.add_gate(GateKind::CX, a, b);
  program.add_gate(GateKind::CX, c, d);

  const Placement placement = connectivity_placement(fabric, program);
  const auto distance = [&](QubitId x, QubitId y) {
    return manhattan_distance(fabric.trap(placement.trap_of(x)).position,
                              fabric.trap(placement.trap_of(y)).position);
  };
  // The heavily-interacting pair sits at least as close as the light pair's
  // distance to it.
  EXPECT_LE(distance(a, b), distance(a, c));
  EXPECT_LE(distance(a, b), distance(a, d));
}

TEST(ConnectivityPlacer, UsesTheCenterTrapPool) {
  const Fabric fabric = make_paper_fabric();
  const Program program = make_encoder(QeccCode::Q5_1_3);
  const Placement connectivity = connectivity_placement(fabric, program);
  const Placement center = center_placement(fabric, program.qubit_count());
  std::set<TrapId> pool;
  for (std::size_t q = 0; q < program.qubit_count(); ++q) {
    pool.insert(center.trap_of(QubitId::from_index(q)));
  }
  for (std::size_t q = 0; q < program.qubit_count(); ++q) {
    EXPECT_TRUE(pool.count(connectivity.trap_of(QubitId::from_index(q))));
  }
}

TEST(ConnectivityPlacer, ThrowsWhenFabricTooSmall) {
  const Fabric fabric = make_quale_fabric({2, 2, 4});
  const Program program = make_encoder(QeccCode::Q23_1_7);
  EXPECT_THROW(connectivity_placement(fabric, program), ValidationError);
}

TEST(LinearFabric, StructureMatchesParameters) {
  const Fabric fabric = make_linear_fabric(6, 4);
  EXPECT_EQ(fabric.rows(), 2);
  EXPECT_EQ(fabric.cols(), 25);
  EXPECT_EQ(fabric.trap_count(), 6u);
  EXPECT_EQ(fabric.junction_count(), 7u);
  EXPECT_EQ(fabric.segment_count(), 6u);
  for (const Trap& trap : fabric.traps()) {
    EXPECT_EQ(trap.ports.size(), 1u);
    EXPECT_EQ(trap.ports[0].direction_from_trap, Direction::North);
  }
}

TEST(LinearFabric, RoundTripsThroughText) {
  const Fabric fabric = make_linear_fabric(4, 4);
  const Fabric reparsed = parse_fabric(render_fabric(fabric));
  EXPECT_EQ(reparsed.trap_count(), fabric.trap_count());
  EXPECT_EQ(reparsed.segment_count(), fabric.segment_count());
}

TEST(LinearFabric, RejectsBadParameters) {
  EXPECT_THROW(make_linear_fabric(0), ValidationError);
  EXPECT_THROW(make_linear_fabric(4, 1), ValidationError);
}

TEST(LinearFabric, SupportsEndToEndMapping) {
  const Fabric fabric = make_linear_fabric(8, 4);
  const Program program = make_encoder(QeccCode::Q5_1_3);
  MapperOptions options;
  options.placer = PlacerKind::Center;
  const MapResult result = map_program(program, fabric, options);
  EXPECT_GE(result.latency, result.ideal_latency);
  EXPECT_EQ(result.trace.gate_count(), program.instruction_count());
}

TEST(LinearFabric, CorridorCongestsMoreThanGrid) {
  // The single shared corridor serialises transport compared to the 2-D
  // fabric with the same trap budget.
  const Program program = make_encoder(QeccCode::Q7_1_3);
  MapperOptions options;
  options.placer = PlacerKind::Center;
  const Duration corridor =
      map_program(program, make_linear_fabric(10, 4), options).latency;
  const Duration grid =
      map_program(program, make_quale_fabric({4, 4, 4}), options).latency;
  EXPECT_GE(corridor, grid);
}

TEST(ConnectivityPlacerVsCenter, HelpsOnInteractionHeavyCircuits) {
  // A circuit with strong pairwise structure: connectivity placement should
  // not be worse than plain center placement when both feed the same
  // executor. (MVFB beats both; see bench_placers.)
  const Fabric fabric = make_paper_fabric();
  const RoutingGraph routing(fabric);
  const Program program = make_encoder(QeccCode::Q14_8_3);
  const DependencyGraph graph = DependencyGraph::build(program);
  const ExecutionOptions exec;
  const auto rank = make_schedule_rank(graph, exec.tech);
  EventSimulator sim(graph, fabric, routing, rank, exec);

  const Duration connectivity =
      sim.run(connectivity_placement(fabric, program)).latency;
  const Duration center =
      sim.run(center_placement(fabric, program.qubit_count())).latency;
  EXPECT_LE(connectivity, center + 200);  // at worst marginally behind
}

}  // namespace
}  // namespace qspr
