// Unit tests for the common substrate: ids, geometry, strings, table, stats,
// rng, technology parameters.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/error.hpp"
#include "common/geometry.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/time.hpp"

namespace qspr {
namespace {

TEST(Ids, DefaultConstructedIsInvalid) {
  QubitId id;
  EXPECT_FALSE(id.is_valid());
  EXPECT_EQ(id, QubitId::invalid());
}

TEST(Ids, FromIndexRoundTrips) {
  const TrapId id = TrapId::from_index(42);
  EXPECT_TRUE(id.is_valid());
  EXPECT_EQ(id.value(), 42);
  EXPECT_EQ(id.index(), 42u);
}

TEST(Ids, Ordering) {
  EXPECT_LT(QubitId(1), QubitId(2));
  EXPECT_EQ(QubitId(3), QubitId(3));
  EXPECT_NE(QubitId(3), QubitId(4));
}

TEST(Ids, StreamingPrintsValueOrInvalid) {
  std::ostringstream os;
  os << QubitId(7) << ' ' << QubitId::invalid();
  EXPECT_EQ(os.str(), "7 <invalid>");
}

TEST(Ids, HashDistinguishesValues) {
  std::set<std::size_t> hashes;
  for (int i = 0; i < 100; ++i) {
    hashes.insert(std::hash<SegmentId>()(SegmentId(i)));
  }
  EXPECT_EQ(hashes.size(), 100u);
}

TEST(Geometry, StepMovesOneCell) {
  const Position p{3, 4};
  EXPECT_EQ(step(p, Direction::North), (Position{2, 4}));
  EXPECT_EQ(step(p, Direction::South), (Position{4, 4}));
  EXPECT_EQ(step(p, Direction::East), (Position{3, 5}));
  EXPECT_EQ(step(p, Direction::West), (Position{3, 3}));
}

TEST(Geometry, OppositeAndAxis) {
  EXPECT_EQ(opposite(Direction::North), Direction::South);
  EXPECT_EQ(opposite(Direction::East), Direction::West);
  EXPECT_EQ(axis_of(Direction::East), Orientation::Horizontal);
  EXPECT_EQ(axis_of(Direction::North), Orientation::Vertical);
  EXPECT_EQ(perpendicular(Orientation::Horizontal), Orientation::Vertical);
}

TEST(Geometry, ManhattanDistance) {
  EXPECT_EQ(manhattan_distance({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan_distance({2, 2}, {2, 2}), 0);
  EXPECT_TRUE(are_adjacent({1, 1}, {1, 2}));
  EXPECT_FALSE(are_adjacent({1, 1}, {2, 2}));
}

TEST(Geometry, DirectionBetweenAdjacentCells) {
  EXPECT_EQ(direction_between({5, 5}, {4, 5}), Direction::North);
  EXPECT_EQ(direction_between({5, 5}, {5, 6}), Direction::East);
  EXPECT_THROW(direction_between({0, 0}, {2, 2}), Error);
}

TEST(Geometry, RoundTripStepDirection) {
  const Position origin{10, 10};
  for (const Direction d : kAllDirections) {
    const Position moved = step(origin, d);
    EXPECT_EQ(direction_between(origin, moved), d);
    EXPECT_EQ(step(moved, opposite(d)), origin);
  }
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto fields = split("a,,b", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
}

TEST(Strings, SplitWhitespaceDropsEmpty) {
  const auto fields = split_whitespace("  one\t two  three ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "one");
  EXPECT_EQ(fields[2], "three");
}

TEST(Strings, ParseInteger) {
  EXPECT_EQ(parse_integer("42"), 42);
  EXPECT_EQ(parse_integer("-17"), -17);
  EXPECT_THROW(parse_integer("4x2"), Error);
  EXPECT_THROW(parse_integer(""), Error);
  EXPECT_TRUE(is_integer("123"));
  EXPECT_TRUE(is_integer("-5"));
  EXPECT_FALSE(is_integer("12.5"));
  EXPECT_FALSE(is_integer("abc"));
}

TEST(Strings, JoinAndUpper) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(to_upper("c-x q1,q2"), "C-X Q1,Q2");
}

TEST(Table, AlignsColumns) {
  TextTable table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("| name   | value |"), std::string::npos);
  EXPECT_NE(text.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, RejectsRaggedRows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), Error);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_percent(25.0, 100.0), "25.0%");
  EXPECT_EQ(format_percent(1.0, 0.0), "n/a");
}

TEST(Stats, WelfordMoments) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(x);
  }
  EXPECT_EQ(stats.count(), 8);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 1e-3);
}

TEST(Stats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.min(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int x = rng.uniform_int(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
  }
  EXPECT_THROW(rng.uniform_int(5, 4), Error);
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(99);
  Rng child = parent.fork();
  // Child stream differs from the parent's continued stream.
  bool any_different = false;
  for (int i = 0; i < 16; ++i) {
    if (parent.next() != child.next()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = values;
  rng.shuffle(shuffled);
  EXPECT_TRUE(std::is_permutation(values.begin(), values.end(),
                                  shuffled.begin()));
}

TEST(TechnologyParams, DefaultsMatchPaper) {
  const TechnologyParams params;
  EXPECT_EQ(params.t_move, 1);
  EXPECT_EQ(params.t_turn, 10);
  EXPECT_EQ(params.t_gate_1q, 10);
  EXPECT_EQ(params.t_gate_2q, 100);
  EXPECT_EQ(params.channel_capacity, 2);
  EXPECT_NO_THROW(params.validate());
}

TEST(TechnologyParams, ValidationRejectsNonPhysical) {
  TechnologyParams params;
  params.t_move = 0;
  EXPECT_THROW(params.validate(), ValidationError);
  params = {};
  params.channel_capacity = 0;
  EXPECT_THROW(params.validate(), ValidationError);
  params = {};
  params.trap_capacity = 1;
  EXPECT_THROW(params.validate(), ValidationError);
}

}  // namespace
}  // namespace qspr
