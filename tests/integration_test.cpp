// End-to-end integration tests: QASM text -> parse -> map -> validated
// trace, across mappers, fabrics and the full benchmark suite.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "circuit/dependency_graph.hpp"
#include "core/mapper.hpp"
#include "core/qspr.hpp"
#include "sim/trace_validator.hpp"

namespace qspr {
namespace {

TEST(Integration, QasmTextToMappedTrace) {
  const Program program = parse_qasm(R"(
    QUBIT q0,0
    QUBIT q1,0
    QUBIT q2,0
    H q0
    C-X q0,q1
    C-X q1,q2
    MEASURE q2
  )");
  const Fabric fabric = make_quale_fabric({4, 4, 4});
  MapperOptions options;
  options.mvfb_seeds = 3;
  const MapResult result = map_program(program, fabric, options);

  const DependencyGraph graph = DependencyGraph::build(program);
  EXPECT_EQ(result.ideal_latency, 220);  // H + CX + CX + M
  EXPECT_GE(result.latency, 220);
  const auto violations = validate_trace(
      result.trace, graph, fabric, result.initial_placement, options.tech);
  EXPECT_TRUE(violations.empty());
}

TEST(Integration, FullBenchmarkSuiteOrdering) {
  // On every paper benchmark: ideal <= QSPR < QUALE, and the trace of each
  // mapper validates. (QSPR uses the center placer here to keep the suite
  // fast; the full MVFB comparison lives in the bench harness.)
  const Fabric fabric = make_paper_fabric();
  Duration quale_total = 0;
  Duration qpos_total = 0;
  for (const PaperNumbers& paper : paper_benchmarks()) {
    const Program program = make_encoder(paper.code);
    const DependencyGraph graph = DependencyGraph::build(program);

    MapperOptions qspr;
    qspr.placer = PlacerKind::Center;
    MapperOptions quale;
    quale.kind = MapperKind::Quale;
    MapperOptions qpos;
    qpos.kind = MapperKind::Qpos;

    const MapResult qspr_result = map_program(program, fabric, qspr);
    const MapResult quale_result = map_program(program, fabric, quale);
    const MapResult qpos_result = map_program(program, fabric, qpos);
    quale_total += quale_result.latency;
    qpos_total += qpos_result.latency;

    EXPECT_EQ(qspr_result.ideal_latency, paper.baseline_latency)
        << code_name(paper.code);
    EXPECT_GE(qspr_result.latency, qspr_result.ideal_latency);
    EXPECT_LT(qspr_result.latency, quale_result.latency)
        << code_name(paper.code);

    for (const MapResult* result :
         {&qspr_result, &quale_result, &qpos_result}) {
      const auto violations =
          validate_trace(result->trace, graph, fabric,
                         result->initial_placement,
                         TechnologyParams{});
      EXPECT_TRUE(violations.empty())
          << code_name(paper.code) << ": " << violations.size()
          << " violations";
    }
  }
  // QPOS improves on QUALE across the suite (§I history), though not
  // necessarily on every single circuit.
  EXPECT_LE(qpos_total, quale_total);
}

TEST(Integration, RoutingCongestionGrowsWithCircuitSize) {
  // Paper §V.B: "T_routing + T_congestion have higher impact on the latency
  // of larger circuits" — overhead above the ideal baseline grows with the
  // baseline.
  const Fabric fabric = make_paper_fabric();
  MapperOptions options;
  options.placer = PlacerKind::Center;
  const Duration small_overhead =
      map_program(make_encoder(QeccCode::Q5_1_3), fabric, options).latency -
      510;
  const Duration large_overhead =
      map_program(make_encoder(QeccCode::Q14_8_3), fabric, options).latency -
      2500;
  EXPECT_GT(large_overhead, small_overhead);
}

TEST(Integration, FabricFileRoundTripThroughMapping) {
  // Render a fabric to text, reload it, and map on the reloaded copy: the
  // result must be identical (deterministic pipeline).
  const Fabric original = make_quale_fabric({4, 5, 4});
  const std::string path = ::testing::TempDir() + "qspr_fabric.txt";
  {
    std::ofstream out(path);
    out << render_fabric(original);
  }
  const Fabric reloaded = parse_fabric_file(path);
  std::remove(path.c_str());

  const Program program = make_encoder(QeccCode::Q5_1_3);
  MapperOptions options;
  options.mvfb_seeds = 2;
  const MapResult a = map_program(program, original, options);
  const MapResult b = map_program(program, reloaded, options);
  EXPECT_EQ(a.latency, b.latency);
}

TEST(Integration, SmallerFabricsCostMoreCongestion) {
  // The same circuit on a cramped fabric can only be slower or equal.
  const Program program = make_encoder(QeccCode::Q9_1_3);
  MapperOptions options;
  options.placer = PlacerKind::Center;
  const Duration cramped =
      map_program(program, make_quale_fabric({4, 4, 4}), options).latency;
  const Duration roomy =
      map_program(program, make_paper_fabric(), options).latency;
  EXPECT_GE(cramped, roomy);
}

TEST(Integration, MvfbImprovesOverCenterOnTheSuite) {
  // The paper's core claim (Table 1/2): searching placements helps. Checked
  // in aggregate across the three smallest benchmarks to keep runtime low.
  const Fabric fabric = make_paper_fabric();
  Duration center_total = 0;
  Duration mvfb_total = 0;
  for (const QeccCode code :
       {QeccCode::Q5_1_3, QeccCode::Q7_1_3, QeccCode::Q9_1_3}) {
    const Program program = make_encoder(code);
    MapperOptions center;
    center.placer = PlacerKind::Center;
    MapperOptions mvfb;
    mvfb.placer = PlacerKind::Mvfb;
    mvfb.mvfb_seeds = 5;
    center_total += map_program(program, fabric, center).latency;
    mvfb_total += map_program(program, fabric, mvfb).latency;
  }
  EXPECT_LE(mvfb_total, center_total);
}

TEST(Integration, ReversedScheduleExecutesTheUidg) {
  // Manual MVFB iteration: forward on QIDG, backward on UIDG from the
  // forward final placement; both traces validate against their graphs.
  const Program program = make_encoder(QeccCode::Q5_1_3);
  const Fabric fabric = make_paper_fabric();
  const RoutingGraph routing(fabric);
  const DependencyGraph qidg = DependencyGraph::build(program);
  const DependencyGraph uidg = qidg.reversed();
  const auto rank = make_schedule_rank(qidg, TechnologyParams{});

  const Placement start = center_placement(fabric, program.qubit_count());
  const ExecutionResult forward = execute_circuit(
      qidg, fabric, routing, rank, start, ExecutionOptions{});
  const ExecutionResult backward =
      execute_circuit(uidg, fabric, routing, reversed_rank(rank),
                      forward.final_placement, ExecutionOptions{});

  EXPECT_TRUE(validate_trace(forward.trace, qidg, fabric, start,
                             TechnologyParams{})
                  .empty());
  EXPECT_TRUE(validate_trace(backward.trace, uidg, fabric,
                             forward.final_placement, TechnologyParams{})
                  .empty());
}

}  // namespace
}  // namespace qspr
