// Tests for the trace serialisation (trace_io) and the utilisation /
// Gantt reporting built on top of mapped traces.
#include <gtest/gtest.h>

#include "circuit/dependency_graph.hpp"
#include "common/error.hpp"
#include "core/mapper.hpp"
#include "core/report.hpp"
#include "fabric/quale_fabric.hpp"
#include "qecc/codes.hpp"
#include "sim/trace_io.hpp"
#include "sim/utilization.hpp"

namespace qspr {
namespace {

MapResult mapped_result() {
  MapperOptions options;
  options.placer = PlacerKind::Center;
  return map_program(make_encoder(QeccCode::Q5_1_3), make_paper_fabric(),
                     options);
}

TEST(TraceIo, RoundTripsAMappedTrace) {
  const MapResult result = mapped_result();
  const std::string text = write_trace(result.trace);
  const Trace reparsed = parse_trace(text);
  ASSERT_EQ(reparsed.size(), result.trace.size());
  for (std::size_t i = 0; i < reparsed.size(); ++i) {
    const MicroOp& a = result.trace.ops()[i];
    const MicroOp& b = reparsed.ops()[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.qubit, b.qubit);
    EXPECT_EQ(a.from, b.from);
    EXPECT_EQ(a.to, b.to);
    EXPECT_EQ(a.start, b.start);
    EXPECT_EQ(a.end, b.end);
    EXPECT_EQ(a.instruction, b.instruction);
  }
  EXPECT_EQ(reparsed.makespan(), result.trace.makespan());
}

TEST(TraceIo, ParsesHandWrittenText) {
  const Trace trace = parse_trace(
      "# comment\n"
      "MOVE q0 (1,1) (1,2) 0 1 #3\n"
      "\n"
      "TURN q0 (1,2) (1,2) 1 11 #3\n"
      "GATE - (1,2) (1,2) 11 111 #3\n");
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.ops()[0].kind, MicroOpKind::Move);
  EXPECT_EQ(trace.ops()[1].kind, MicroOpKind::Turn);
  EXPECT_EQ(trace.ops()[2].kind, MicroOpKind::Gate);
  EXPECT_FALSE(trace.ops()[2].qubit.is_valid());
  EXPECT_EQ(trace.makespan(), 111);
}

TEST(TraceIo, RejectsMalformedLines) {
  EXPECT_THROW(parse_trace("HOP q0 (1,1) (1,2) 0 1 #3\n"), ParseError);
  EXPECT_THROW(parse_trace("MOVE q0 (1,1) (1,2) 0 1\n"), ParseError);
  EXPECT_THROW(parse_trace("MOVE x0 (1,1) (1,2) 0 1 #3\n"), ParseError);
  EXPECT_THROW(parse_trace("MOVE q0 (1;1) (1,2) 0 1 #3\n"), ParseError);
  EXPECT_THROW(parse_trace("MOVE q0 (1,1) (1,2) 5 1 #3\n"), ParseError);
  EXPECT_THROW(parse_trace("MOVE q0 (1,1) (1,2) 0 1 3\n"), ParseError);
}

TEST(Utilization, AccountsBusyChannels) {
  const MapResult result = mapped_result();
  const Fabric fabric = make_paper_fabric();
  const ResourceUtilization utilization =
      analyze_utilization(result.trace, fabric);

  EXPECT_EQ(utilization.makespan, result.latency);
  Duration total_busy = 0;
  int used_segments = 0;
  for (std::size_t s = 0; s < fabric.segment_count(); ++s) {
    total_busy += utilization.segment_busy[s];
    if (utilization.segment_busy[s] > 0) ++used_segments;
    EXPECT_LE(utilization.segment_peak[s], TechnologyParams{}.channel_capacity);
    EXPECT_LE(utilization.segment_busy[s], utilization.makespan);
  }
  // The mapped circuit moved qubits, so some channels were busy.
  EXPECT_GT(total_busy, 0);
  EXPECT_GT(used_segments, 0);
  // But a 924-trap fabric is far from saturated by 5 qubits.
  EXPECT_LT(used_segments, static_cast<int>(fabric.segment_count()) / 2);
}

TEST(Utilization, EmptyTraceIsAllIdle) {
  const Fabric fabric = make_quale_fabric({2, 2, 4});
  const ResourceUtilization utilization = analyze_utilization(Trace{}, fabric);
  for (const Duration busy : utilization.segment_busy) EXPECT_EQ(busy, 0);
  for (const Duration busy : utilization.junction_busy) EXPECT_EQ(busy, 0);
}

TEST(Utilization, SummaryAndHeatmapRender) {
  const MapResult result = mapped_result();
  const Fabric fabric = make_paper_fabric();
  const ResourceUtilization utilization =
      analyze_utilization(result.trace, fabric);

  const std::string summary = utilization_summary(utilization, fabric);
  EXPECT_NE(summary.find("channel utilisation"), std::string::npos);
  EXPECT_NE(summary.find("busiest segments"), std::string::npos);

  const std::string heatmap = render_heatmap(utilization, fabric);
  // One line per fabric row, trap/junction glyphs present.
  EXPECT_EQ(std::count(heatmap.begin(), heatmap.end(), '\n'), fabric.rows());
  EXPECT_NE(heatmap.find('J'), std::string::npos);
  EXPECT_NE(heatmap.find('T'), std::string::npos);
}

TEST(Gantt, RendersOneRowPerInstruction) {
  const MapResult result = mapped_result();
  const DependencyGraph graph =
      DependencyGraph::build(make_encoder(QeccCode::Q5_1_3));
  const std::string gantt = render_gantt(result.timings, graph);
  // Header plus one row per instruction.
  EXPECT_EQ(std::count(gantt.begin(), gantt.end(), '\n'),
            static_cast<long>(graph.node_count()) + 1);
  EXPECT_NE(gantt.find('#'), std::string::npos);
}

TEST(Gantt, EmptyTimingsHandled) {
  const Program empty;
  const DependencyGraph graph = DependencyGraph::build(empty);
  EXPECT_EQ(render_gantt({}, graph), "(empty execution)\n");
}

TEST(Report, ContainsAllSections) {
  const Program program = make_encoder(QeccCode::Q5_1_3);
  const Fabric fabric = make_paper_fabric();
  MapperOptions options;
  options.placer = PlacerKind::Center;
  const MapResult result = map_program(program, fabric, options);
  const std::string report = make_report(result, program, fabric);
  EXPECT_NE(report.find("mapping report"), std::string::npos);
  EXPECT_NE(report.find("instruction timing"), std::string::npos);
  EXPECT_NE(report.find("channel utilisation"), std::string::npos);
  EXPECT_NE(report.find("execution timeline"), std::string::npos);
  EXPECT_NE(report.find("fidelity estimate"), std::string::npos);
  EXPECT_NE(report.find(std::to_string(result.latency)), std::string::npos);
}

TEST(Report, SectionsCanBeDisabled) {
  const Program program = make_encoder(QeccCode::Q5_1_3);
  const Fabric fabric = make_paper_fabric();
  MapperOptions options;
  options.placer = PlacerKind::Center;
  const MapResult result = map_program(program, fabric, options);
  ReportOptions report_options;
  report_options.include_timing_table = false;
  report_options.include_utilization = false;
  report_options.include_gantt = false;
  report_options.include_fidelity = false;
  const std::string report =
      make_report(result, program, fabric, report_options);
  EXPECT_EQ(report.find("instruction timing"), std::string::npos);
  EXPECT_EQ(report.find("fidelity"), std::string::npos);
  EXPECT_NE(report.find("latency"), std::string::npos);
}

}  // namespace
}  // namespace qspr
