// Speculative intra-iteration parallel PathFinder negotiation: wave
// partitioning, the ledger's snapshot/divergence tracking, forced same-wave
// collision commits, and the core contract — route_jobs ∈ {1,2,4} produces
// results bit-identical to the serial loop (paths, delays, diagnostics) on
// the pinned 8/16/32/48-net batches, including when negotiations run nested
// inside executor jobs.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/executor.hpp"
#include "common/rng.hpp"
#include "fabric/quale_fabric.hpp"
#include "route/pathfinder.hpp"

namespace qspr {
namespace {

// ---------------------------------------------------------------------------
// Wave partitioning
// ---------------------------------------------------------------------------

TEST(WavePartition, CoversWorklistContiguouslyInOrder) {
  for (const std::size_t n : {1u, 2u, 7u, 16u, 33u}) {
    for (const int jobs : {1, 2, 4, 8}) {
      const auto waves = plan_speculation_waves(n, jobs, /*wave_size=*/0);
      ASSERT_FALSE(waves.empty()) << n << "/" << jobs;
      EXPECT_EQ(waves.front().first, 0u);
      EXPECT_EQ(waves.back().second, n);
      for (std::size_t w = 0; w < waves.size(); ++w) {
        EXPECT_LT(waves[w].first, waves[w].second);
        if (w > 0) {
          EXPECT_EQ(waves[w].first, waves[w - 1].second);
        }
      }
    }
  }
}

TEST(WavePartition, AutoSizeIsFourTimesRouteJobs) {
  const auto waves = plan_speculation_waves(40, /*route_jobs=*/4, 0);
  ASSERT_EQ(waves.size(), 3u);  // 16 + 16 + 8
  EXPECT_EQ(waves[0].second - waves[0].first, 16u);
  EXPECT_EQ(waves[2].second - waves[2].first, 8u);
}

TEST(WavePartition, ExplicitWaveSizeIsRespectedWithMinimumTwo) {
  const auto sized = plan_speculation_waves(10, 2, /*wave_size=*/3);
  ASSERT_EQ(sized.size(), 4u);  // 3 + 3 + 3 + 1
  EXPECT_EQ(sized[0].second, 3u);
  EXPECT_EQ(sized[3].second - sized[3].first, 1u);
  // wave_size 1 is clamped to 2 (a 1-net wave cannot overlap anything).
  const auto clamped = plan_speculation_waves(6, 1, /*wave_size=*/1);
  ASSERT_EQ(clamped.size(), 3u);
  EXPECT_EQ(clamped[0].second, 2u);
}

TEST(WavePartition, EmptyWorklistHasNoWaves) {
  EXPECT_TRUE(plan_speculation_waves(0, 4, 0).empty());
}

// ---------------------------------------------------------------------------
// CongestionLedger snapshot / divergence tracking
// ---------------------------------------------------------------------------

TEST(CongestionSpeculation, DivergenceTracksPenaltyChangesOnly) {
  // 4 segments, 0 junctions, capacity 2.
  CongestionLedger ledger(4, 0, /*segment_capacity=*/2,
                          /*junction_capacity=*/1);
  ledger.begin_iteration(/*present_factor=*/0.6, /*track_floor=*/false);
  ledger.acquire(0);  // occupancy 1, below capacity
  ledger.begin_speculation();
  EXPECT_TRUE(ledger.speculating());
  EXPECT_EQ(ledger.diverged_count(), 0);

  // Below-capacity churn prices identically: no divergence.
  ledger.acquire(1);  // 0 -> 1 (capacity 2)
  EXPECT_EQ(ledger.diverged_count(), 0);
  EXPECT_FALSE(ledger.diverged(1));
  ledger.release(1);
  EXPECT_EQ(ledger.diverged_count(), 0);

  // Crossing the capacity boundary diverges the resource.
  ledger.acquire(0);  // 1 -> 2 == capacity: next entrant now pays over-use
  EXPECT_EQ(ledger.diverged_count(), 1);
  EXPECT_TRUE(ledger.diverged(0));
  EXPECT_FALSE(ledger.diverged(1));

  // Divergence is self-healing: restoring the snapshot occupancy clears it.
  ledger.release(0);
  EXPECT_EQ(ledger.diverged_count(), 0);
  EXPECT_FALSE(ledger.diverged(0));

  // Releasing below the snapshot of an at-capacity resource also diverges.
  ledger.acquire(2);
  ledger.acquire(2);  // occupancy 2 == capacity
  ledger.begin_speculation();
  EXPECT_EQ(ledger.diverged_count(), 0);
  ledger.release(2);  // 2 -> 1: the entering penalty just dropped
  EXPECT_EQ(ledger.diverged_count(), 1);
  EXPECT_TRUE(ledger.diverged(2));
  ledger.acquire(2);  // healed
  EXPECT_EQ(ledger.diverged_count(), 0);

  ledger.end_speculation();
  EXPECT_FALSE(ledger.speculating());
  EXPECT_FALSE(ledger.diverged(2));
}

TEST(CongestionSpeculation, AfterReleasePenaltyMatchesReleaseThenQuery) {
  CongestionLedger ledger(2, 0, /*segment_capacity=*/1,
                          /*junction_capacity=*/1);
  ledger.begin_iteration(0.6, false);
  for (int i = 0; i < 3; ++i) ledger.acquire(0);
  const double predicted = ledger.entering_penalty_after_release(0);
  ledger.release(0);
  EXPECT_DOUBLE_EQ(predicted, ledger.entering_penalty(0));
}

// ---------------------------------------------------------------------------
// Bit-identity of the wave protocol
// ---------------------------------------------------------------------------

std::vector<NetRequest> central_nets(const Fabric& fabric, int count,
                                     std::uint64_t seed) {
  const auto central = fabric.traps_by_distance(fabric.center());
  const std::size_t pool = std::min<std::size_t>(central.size(), 64);
  Rng rng(seed);
  std::vector<NetRequest> nets;
  for (int i = 0; i < count; ++i) {
    const TrapId from = central[rng.uniform_index(pool)];
    TrapId to = central[rng.uniform_index(pool)];
    while (to == from) to = central[rng.uniform_index(pool)];
    nets.push_back({from, to});
  }
  return nets;
}

std::vector<NetRequest> distinct_nets(const Fabric& fabric, int count,
                                      std::uint64_t seed) {
  const auto central = fabric.traps_by_distance(fabric.center());
  const std::size_t pool = std::min<std::size_t>(
      central.size(), std::max<std::size_t>(128, 2 * count));
  Rng rng(seed);
  std::vector<TrapId> traps(central.begin(), central.begin() + pool);
  for (std::size_t i = traps.size(); i > 1; --i) {
    std::swap(traps[i - 1], traps[rng.uniform_index(i)]);
  }
  std::vector<NetRequest> nets;
  for (int i = 0; i < count; ++i) {
    nets.push_back({traps[2 * i], traps[2 * i + 1]});
  }
  return nets;
}

/// Full-strength identity: every contractual field, node-exact paths.
void expect_identical(const PathFinderResult& serial,
                      const PathFinderResult& parallel,
                      const std::string& label) {
  EXPECT_EQ(serial.iterations_used, parallel.iterations_used) << label;
  EXPECT_EQ(serial.converged, parallel.converged) << label;
  EXPECT_EQ(serial.total_delay, parallel.total_delay) << label;
  EXPECT_EQ(serial.overused_resources, parallel.overused_resources) << label;
  EXPECT_EQ(serial.max_overuse, parallel.max_overuse) << label;
  EXPECT_EQ(serial.total_excess, parallel.total_excess) << label;
  EXPECT_EQ(serial.min_feasible_excess, parallel.min_feasible_excess)
      << label;
  EXPECT_EQ(serial.searches_performed, parallel.searches_performed) << label;
  ASSERT_EQ(serial.paths.size(), parallel.paths.size()) << label;
  for (std::size_t i = 0; i < serial.paths.size(); ++i) {
    const RoutedPath& a = serial.paths[i];
    const RoutedPath& b = parallel.paths[i];
    EXPECT_EQ(a.total_delay(), b.total_delay()) << label << " net " << i;
    ASSERT_EQ(a.nodes.size(), b.nodes.size()) << label << " net " << i;
    for (std::size_t n = 0; n < a.nodes.size(); ++n) {
      ASSERT_EQ(a.nodes[n], b.nodes[n])
          << label << " net " << i << " node " << n;
    }
  }
}

TEST(ParallelPathFinder, BitIdenticalOnPinnedBatches) {
  const Fabric fabric = make_paper_fabric();
  const RoutingGraph graph(fabric);
  const TechnologyParams params;

  struct Batch {
    std::string name;
    std::vector<NetRequest> nets;
  };
  const std::vector<Batch> batches = {
      {"central_8", central_nets(fabric, 8, 11)},
      {"central_16", central_nets(fabric, 16, 11)},
      {"distinct_32", distinct_nets(fabric, 32, 11)},
      {"distinct_48", distinct_nets(fabric, 48, 11)},
  };

  PathFinderScratch serial_scratch;
  for (const Batch& batch : batches) {
    const PathFinderResult serial = route_nets_negotiated(
        graph, params, batch.nets, PathFinderOptions{}, serial_scratch);
    EXPECT_EQ(serial.speculative_commits, 0) << batch.name;
    EXPECT_EQ(serial.speculative_reroutes, 0) << batch.name;
    for (const int route_jobs : {1, 2, 4}) {
      Executor executor(route_jobs);
      PathFinderScratchPool pool;
      PathFinderScratch scratch;
      PathFinderOptions options;
      options.route_jobs = route_jobs;
      const PathFinderResult parallel = route_nets_negotiated(
          graph, params, batch.nets, options, scratch, executor, pool);
      expect_identical(serial, parallel,
                       batch.name + "/jobs" + std::to_string(route_jobs));
      if (route_jobs >= 2) {
        // The counters partition the *speculated* searches; iterations
        // whose worklist shrank to one net ran the serial step and count
        // in neither bucket.
        EXPECT_LE(parallel.speculative_commits +
                      parallel.speculative_reroutes,
                  parallel.searches_performed)
            << batch.name;
        EXPECT_GT(parallel.speculative_commits, 0) << batch.name;
      } else {
        EXPECT_EQ(parallel.speculative_commits, 0) << batch.name;
      }
    }
  }
}

TEST(ParallelPathFinder, WorkerCountDoesNotLeakIntoResults) {
  // Same route_jobs, different executor widths (over- and under-sized):
  // still bit-identical. A 1-worker executor legitimately takes the serial
  // loop (counters 0 — nothing to overlap); every multi-worker width must
  // also agree on the speculation counters, since wave planning and commit
  // decisions depend only on committed state, never on scheduling.
  const Fabric fabric = make_quale_fabric({4, 4, 4});
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  const auto nets = central_nets(fabric, 12, 3);

  PathFinderOptions options;
  options.route_jobs = 4;
  std::optional<PathFinderResult> reference;
  std::optional<PathFinderResult> reference_wide;
  for (const int workers : {1, 2, 4, 8}) {
    Executor executor(workers);
    PathFinderScratchPool pool;
    PathFinderScratch scratch;
    const PathFinderResult result = route_nets_negotiated(
        graph, params, nets, options, scratch, executor, pool);
    if (!reference.has_value()) {
      reference = result;
      EXPECT_EQ(result.speculative_commits, 0);  // serial loop at width 1
      EXPECT_EQ(result.speculative_reroutes, 0);
      continue;
    }
    expect_identical(*reference, result,
                     "workers" + std::to_string(workers));
    if (!reference_wide.has_value()) {
      reference_wide = result;
      EXPECT_GT(result.speculative_commits + result.speculative_reroutes, 0);
      continue;
    }
    EXPECT_EQ(reference_wide->speculative_commits,
              result.speculative_commits);
    EXPECT_EQ(reference_wide->speculative_reroutes,
              result.speculative_reroutes);
  }
}

TEST(ParallelPathFinder, ForcedSameWaveCollisionsCommitCorrectly) {
  // Capacity-1 fabric with nets contending for the same corridors: the
  // first commit of a wave crosses a capacity boundary, diverging the
  // snapshot, so later wave mates must be re-routed at commit — and the
  // result must still be bit-identical to the serial loop.
  const Fabric fabric = make_quale_fabric({3, 3, 4});
  const RoutingGraph graph(fabric);
  TechnologyParams strict;
  strict.channel_capacity = 1;
  strict.junction_capacity = 1;

  const auto trap = [&](int row, int col) {
    const TrapId id = fabric.trap_at({row, col});
    EXPECT_TRUE(id.is_valid());
    return id;
  };
  // All three nets cross left-to-right through the same region; one wave
  // (route_jobs=4 -> wave size 16) holds all of them.
  const std::vector<NetRequest> nets = {
      {trap(1, 1), trap(1, 7)},
      {trap(3, 1), trap(3, 7)},
      {trap(5, 1), trap(5, 7)},
      {trap(1, 3), trap(5, 5)},
      {trap(5, 3), trap(1, 5)},
      {trap(3, 3), trap(3, 7)},
  };

  const PathFinderResult serial =
      route_nets_negotiated(graph, strict, nets);
  Executor executor(4);
  PathFinderScratchPool pool;
  PathFinderScratch scratch;
  PathFinderOptions options;
  options.route_jobs = 4;
  const PathFinderResult parallel = route_nets_negotiated(
      graph, strict, nets, options, scratch, executor, pool);
  expect_identical(serial, parallel, "collision");
  // The contention must actually have invalidated some speculation.
  EXPECT_GT(parallel.speculative_reroutes, 0);
}

TEST(ParallelPathFinder, UncontendedWaveCommitsEverySpeculation) {
  // Four short nets confined to four far-apart regions of the paper fabric:
  // their paths share no resource and nothing reaches capacity, so the
  // snapshot stays penalty-identical through the whole wave and every net
  // commits speculatively.
  const Fabric fabric = make_paper_fabric();
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  std::vector<NetRequest> nets;
  for (const Position corner :
       {Position{8, 15}, Position{8, 70}, Position{36, 15},
        Position{36, 70}}) {
    const auto local = fabric.traps_by_distance(corner);
    ASSERT_GE(local.size(), 2u);
    nets.push_back({local[0], local[1]});
  }

  Executor executor(2);
  PathFinderScratchPool pool;
  PathFinderScratch scratch;
  PathFinderOptions options;
  options.route_jobs = 2;
  const PathFinderResult result = route_nets_negotiated(
      graph, params, nets, options, scratch, executor, pool);
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.iterations_used, 1);
  EXPECT_EQ(result.speculative_commits, static_cast<long long>(nets.size()));
  EXPECT_EQ(result.speculative_reroutes, 0);
}

TEST(ParallelPathFinder, ScratchAndPoolReuseAcrossBatchesIsClean) {
  // One executor + pool + scratch reused across different net sets and
  // fabrics (the per-worker ownership pattern of the trial pipeline).
  const TechnologyParams params;
  Executor executor(2);
  PathFinderScratchPool pool;
  PathFinderScratch scratch;
  PathFinderOptions options;
  options.route_jobs = 2;

  for (const auto& dims : {QualeFabricParams{3, 3, 4},
                           QualeFabricParams{4, 4, 4}}) {
    const Fabric fabric = make_quale_fabric(dims);
    const RoutingGraph graph(fabric);
    for (const std::uint64_t seed : {1u, 5u}) {
      const auto nets = central_nets(fabric, 10, seed);
      const PathFinderResult serial =
          route_nets_negotiated(graph, params, nets);
      const PathFinderResult parallel = route_nets_negotiated(
          graph, params, nets, options, scratch, executor, pool);
      expect_identical(serial, parallel, "reuse seed " + std::to_string(seed));
    }
  }
}

TEST(ParallelPathFinder, NestedInsideExecutorJobsStaysIdentical) {
  // Two negotiations running concurrently as jobs on one executor, each
  // spawning its own wave sub-jobs (nested submit/wait from worker
  // threads). Each context owns its scratch + pool; results must equal the
  // serial reference.
  const Fabric fabric = make_paper_fabric();
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  const std::vector<std::vector<NetRequest>> batches = {
      central_nets(fabric, 12, 7),
      distinct_nets(fabric, 16, 13),
  };
  std::vector<PathFinderResult> serial;
  for (const auto& nets : batches) {
    serial.push_back(route_nets_negotiated(graph, params, nets));
  }

  Executor executor(4);
  std::vector<PathFinderResult> nested(batches.size());
  std::vector<PathFinderScratch> scratches(batches.size());
  std::vector<PathFinderScratchPool> pools(batches.size());
  const Executor::Job outer = executor.submit(
      batches.size(), [&](std::size_t index, int) {
        PathFinderOptions options;
        options.route_jobs = 2;
        nested[index] = route_nets_negotiated(
            graph, params, batches[index], options, scratches[index],
            executor, pools[index]);
      });
  executor.wait(outer);
  for (std::size_t b = 0; b < batches.size(); ++b) {
    expect_identical(serial[b], nested[b], "nested batch " + std::to_string(b));
  }
}

TEST(ParallelPathFinder, ReferenceEngineIgnoresRouteJobs) {
  // Speculation is an optimized-engine mechanism; the reference engine runs
  // the serial loop under any route_jobs.
  const Fabric fabric = make_quale_fabric({3, 3, 4});
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  const auto nets = central_nets(fabric, 6, 2);

  PathFinderOptions reference;
  reference.engine = PathFinderEngine::ReferenceDijkstra;
  const PathFinderResult serial =
      route_nets_negotiated(graph, params, nets, reference);

  Executor executor(4);
  PathFinderScratchPool pool;
  PathFinderScratch scratch;
  reference.route_jobs = 4;
  const PathFinderResult parallel = route_nets_negotiated(
      graph, params, nets, reference, scratch, executor, pool);
  expect_identical(serial, parallel, "reference engine");
  EXPECT_EQ(parallel.speculative_commits, 0);
  EXPECT_EQ(parallel.speculative_reroutes, 0);
}

TEST(ParallelPathFinder, RejectsBadOptions) {
  const Fabric fabric = make_quale_fabric({3, 3, 4});
  const RoutingGraph graph(fabric);
  PathFinderOptions options;
  options.route_jobs = 0;
  EXPECT_THROW(route_nets_negotiated(graph, TechnologyParams{}, {}, options),
               Error);
  options.route_jobs = 1;
  options.route_wave_size = -1;
  EXPECT_THROW(route_nets_negotiated(graph, TechnologyParams{}, {}, options),
               Error);
}

}  // namespace
}  // namespace qspr
