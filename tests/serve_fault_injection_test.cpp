// Deterministic fault-injection harness for qspr_serve's daemon core.
//
// ServeHarness runs a real MappingServer (real sockets on a kernel-assigned
// loopback port, real mapper threads) inside the test process; RawClient
// scripts byte-level client behaviour — truncated frames, garbage, huge
// frames, disconnect-after-send, floods — against it. Every test asserts
// the same three invariants the daemon is built around:
//
//   1. no fault ever takes down the daemon or a bystander connection;
//   2. no fault leaks an admission slot: after the dust settles the queue
//      is empty, nothing is in flight, and every accepted request was
//      accounted as completed/failed/cancelled/expired;
//   3. a served MapResult is bit-identical to a direct map_program run
//      (compared via the process-stable result fingerprint).
//
// Determinism notes: queue-order tests pin mapper_threads = 1 so a gated
// front job strictly serialises what sits behind it — cancellation and
// deadline expiry are then observed while *queued*, which is exact. The
// front job is held with ServeOptions::map_start_gate (it takes its
// in-flight slot, then blocks before touching the engine) instead of a
// large Monte-Carlo trial count, so no assertion races how fast a warm
// server finishes real work.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/time.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/net.hpp"
#include "core/qspr.hpp"
#include "fabric/quale_fabric.hpp"
#include "service/request_codec.hpp"
#include "service/serve_loop.hpp"

namespace qspr {
namespace {

constexpr const char* kTinyQasm =
    "QUBIT q0,0\nQUBIT q1,0\nQUBIT q2,0\nH q0\nC-X q0,q1\nC-X q1,q2\n"
    "MEASURE q2\n";

/// In-process daemon under test. serve() runs on a background thread; the
/// destructor drains and joins, and exit_code() reports serve()'s return.
class ServeHarness {
 public:
  explicit ServeHarness(ServeOptions options = {}) {
    options.host = "127.0.0.1";
    options.port = 0;
    server_ = std::make_unique<MappingServer>(std::move(options));
    server_->start();
    thread_ = std::thread([this] { exit_code_ = server_->serve(); });
  }

  ~ServeHarness() { drain_and_join(); }

  [[nodiscard]] int port() const { return server_->port(); }
  [[nodiscard]] MappingServer& server() { return *server_; }

  /// Requests a graceful drain and waits for serve() to return.
  int drain_and_join() {
    if (thread_.joinable()) {
      server_->request_drain();
      thread_.join();
    }
    return exit_code_;
  }

 private:
  std::unique_ptr<MappingServer> server_;
  std::thread thread_;
  int exit_code_ = -1;
};

/// Blocking scripted client with a receive timeout, so a daemon bug shows
/// up as a test failure instead of a hung suite.
class RawClient {
 public:
  explicit RawClient(int port, int recv_timeout_ms = 30000)
      : fd_(connect_client("127.0.0.1", port)) {
    timeval timeout{};
    timeout.tv_sec = recv_timeout_ms / 1000;
    timeout.tv_usec = (recv_timeout_ms % 1000) * 1000;
    setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  }

  void send_raw(std::string_view bytes) {
    std::string_view rest = bytes;
    while (!rest.empty()) {
      const IoResult io = write_some(fd_.get(), rest);
      ASSERT_NE(io.status, IoStatus::Error) << "client write failed";
      rest.remove_prefix(io.bytes);
    }
  }

  void send_line(std::string_view line) {
    send_raw(std::string(line) + "\n");
  }

  /// One response line, or "" on EOF / timeout.
  std::string recv_line() {
    while (true) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      char chunk[4096];
      const IoResult io = read_some(fd_.get(), chunk, sizeof chunk);
      if (io.status == IoStatus::Ok) {
        buffer_.append(chunk, io.bytes);
        continue;
      }
      if (io.status == IoStatus::WouldBlock) {
        // Blocking socket: WouldBlock here means SO_RCVTIMEO expired.
        return {};
      }
      return {};  // Closed or Error
    }
  }

  JsonValue recv_json() {
    const std::string line = recv_line();
    EXPECT_FALSE(line.empty()) << "no reply before timeout/EOF";
    return line.empty() ? JsonValue() : parse_json(line);
  }

  /// True when the server closed its side (EOF within the timeout).
  bool reaches_eof() {
    char chunk[256];
    while (true) {
      const IoResult io = read_some(fd_.get(), chunk, sizeof chunk);
      if (io.status == IoStatus::Closed) return true;
      if (io.status != IoStatus::Ok) return false;
    }
  }

  void shutdown_write() { ::shutdown(fd_.get(), SHUT_WR); }
  void disconnect() { fd_.reset(); }

 private:
  FileDescriptor fd_;
  std::string buffer_;
};

std::string map_request(const std::string& id, int m, double deadline_ms = 0,
                        const std::string& qasm = kTinyQasm) {
  JsonWriter json;
  json.begin_object();
  json.field("type", "map");
  json.field("id", id);
  json.field("qasm", qasm);
  json.field("placer", "mc");
  json.field("m", m);
  json.field("seed", 1);
  if (deadline_ms > 0) json.field("deadline_ms", deadline_ms);
  json.end_object();
  return json.str();
}

/// Invariant 2: nothing queued, nothing running, and the accepted ledger
/// balances — the no-leaked-slots assertion every test ends with.
void expect_no_leaked_slots(RawClient& client) {
  client.send_line(R"({"type":"stats","id":"final"})");
  const JsonValue reply = client.recv_json();
  const JsonValue* stats = reply.find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->number_or("queue_depth", -1), 0);
  EXPECT_EQ(stats->number_or("in_flight", -1), 0);
  EXPECT_EQ(stats->number_or("accepted", -1),
            stats->number_or("completed", 0) + stats->number_or("failed", 0) +
                stats->number_or("cancelled", 0) +
                stats->number_or("expired", 0));
}

TEST(ServeFaultInjection, MapResultBitIdenticalToDirectMapProgram) {
  ServeOptions options;
  options.workers = 3;  // served trials run parallel; fingerprint must match
  ServeHarness harness(options);
  RawClient client(harness.port());

  client.send_line(map_request("r1", 8));
  const JsonValue reply = client.recv_json();
  EXPECT_TRUE(reply.bool_or("ok", false));
  EXPECT_EQ(reply.string_or("id", ""), "r1");

  // The same program, options, and seed mapped directly, single-threaded.
  const Program program = parse_qasm(kTinyQasm, "r1");
  const Fabric fabric = make_paper_fabric();
  MapperOptions map_options;
  map_options.placer = PlacerKind::MonteCarlo;
  map_options.monte_carlo_trials = 8;
  map_options.rng_seed = 1;
  const MapResult direct = map_program(program, fabric, map_options);
  EXPECT_EQ(reply.string_or("result_fp", ""), map_result_fingerprint(direct));
  EXPECT_EQ(reply.number_or("latency_us", -1),
            static_cast<double>(direct.latency));

  expect_no_leaked_slots(client);
  EXPECT_EQ(harness.drain_and_join(), 0);
}

TEST(ServeFaultInjection, GarbageFramesFailOnlyThemselves) {
  ServeHarness harness;
  RawClient client(harness.port());

  client.send_line("this is not json");
  EXPECT_EQ(client.recv_json().string_or("code", ""), "bad_request");
  client.send_line(R"({"type":"map","id":"x"})");  // well-formed, no qasm
  EXPECT_EQ(client.recv_json().string_or("code", ""), "bad_request");
  client.send_line(R"([1,2,3])");  // JSON, wrong shape
  EXPECT_EQ(client.recv_json().string_or("code", ""), "bad_request");
  client.send_line(R"({"type":"warp","id":"x"})");  // unknown type
  EXPECT_EQ(client.recv_json().string_or("code", ""), "bad_request");

  // The connection survived all of it; real work still flows.
  client.send_line(map_request("after", 4));
  EXPECT_TRUE(client.recv_json().bool_or("ok", false));

  expect_no_leaked_slots(client);
  EXPECT_EQ(harness.drain_and_join(), 0);
}

TEST(ServeFaultInjection, HugeFrameClosesOnlyThatConnection) {
  ServeOptions options;
  options.max_frame_bytes = 1024;
  ServeHarness harness(options);

  RawClient bystander(harness.port());
  RawClient attacker(harness.port());
  // 2000 bytes of 'A' with no newline: overflows the 1 KiB frame cap
  // mid-frame (and fits in one socket buffer, so the close stays orderly).
  attacker.send_raw(std::string(2000, 'A'));
  const JsonValue refusal = attacker.recv_json();
  EXPECT_EQ(refusal.string_or("code", ""), "oversized");
  EXPECT_TRUE(attacker.reaches_eof());

  // The bystander's connection and the daemon itself are untouched.
  bystander.send_line(map_request("by", 4));
  EXPECT_TRUE(bystander.recv_json().bool_or("ok", false));

  expect_no_leaked_slots(bystander);
  EXPECT_EQ(harness.drain_and_join(), 0);
}

TEST(ServeFaultInjection, TruncatedFrameAndMidMessageDisconnect) {
  ServeHarness harness;
  {
    RawClient cutter(harness.port());
    // Half a request, no newline, then a hard disconnect.
    cutter.send_raw(R"({"type":"map","id":"trunc","qasm":"QU)");
    cutter.disconnect();
  }
  {
    // Disconnect-after-send: a full request whose reply has nowhere to go.
    RawClient ghost(harness.port());
    ghost.send_line(map_request("ghost", 8));
    ghost.disconnect();
  }
  // Wait until the ghost's request has been admitted AND settled (its
  // dropped reply still counts as completed/cancelled), then verify from a
  // fresh connection that the daemon is healthy and nothing leaked.
  RawClient checker(harness.port());
  for (int i = 0; i < 500; ++i) {
    checker.send_line(R"({"type":"stats","id":"poll"})");
    const JsonValue reply = checker.recv_json();
    const JsonValue* stats = reply.find("stats");
    ASSERT_NE(stats, nullptr);
    const double accepted = stats->number_or("accepted", -1);
    const double settled =
        stats->number_or("completed", 0) + stats->number_or("failed", 0) +
        stats->number_or("cancelled", 0) + stats->number_or("expired", 0);
    if (accepted >= 1 && accepted == settled &&
        stats->number_or("queue_depth", -1) == 0 &&
        stats->number_or("in_flight", -1) == 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  checker.send_line(map_request("alive", 4));
  EXPECT_TRUE(checker.recv_json().bool_or("ok", false));
  expect_no_leaked_slots(checker);
  EXPECT_EQ(harness.drain_and_join(), 0);
}

TEST(ServeFaultInjection, ShutdownWriteClientStillGetsItsReply) {
  ServeHarness harness;
  RawClient client(harness.port());
  client.send_line(map_request("half", 4));
  client.shutdown_write();  // polite half-close: "no more requests"
  const JsonValue reply = client.recv_json();
  EXPECT_TRUE(reply.bool_or("ok", false));
  EXPECT_EQ(reply.string_or("id", ""), "half");
  EXPECT_TRUE(client.reaches_eof());
  EXPECT_EQ(harness.drain_and_join(), 0);
}

TEST(ServeFaultInjection, CancelWhileQueuedIsExactAndReleasesTheSlot) {
  // The gate holds "blocker" at running-but-not-mapping, so "victim" is
  // cancelled while *queued* by construction — no wall-clock race against
  // how fast a warm server finishes the front job.
  auto gate = std::make_shared<MapStartGate>();
  ServeOptions options;
  options.mapper_threads = 1;  // serialise: "blocker" runs, "victim" queues
  options.map_start_gate = gate;
  ServeHarness harness(options);
  RawClient client(harness.port());

  client.send_line(map_request("blocker", 4));
  client.send_line(map_request("victim", 4));
  client.send_line(R"({"type":"cancel","id":"c1","target":"victim"})");

  // Replies: the cancel ack arrives first (poll thread), then the blocker's
  // result, then the victim's `cancelled` — it never reached the engine.
  const JsonValue ack = client.recv_json();
  EXPECT_EQ(ack.string_or("id", ""), "c1");
  EXPECT_TRUE(ack.bool_or("ok", false));
  gate->open();

  bool saw_blocker_ok = false;
  bool saw_victim_cancelled = false;
  for (int i = 0; i < 2; ++i) {
    const JsonValue reply = client.recv_json();
    if (reply.string_or("id", "") == "blocker") {
      saw_blocker_ok = reply.bool_or("ok", false);
    } else if (reply.string_or("id", "") == "victim") {
      saw_victim_cancelled = reply.string_or("code", "") == "cancelled";
    }
  }
  EXPECT_TRUE(saw_blocker_ok);
  EXPECT_TRUE(saw_victim_cancelled);

  // Cancelling something unknown is an explicit, non-fatal reply.
  client.send_line(R"({"type":"cancel","id":"c2","target":"nonesuch"})");
  EXPECT_EQ(client.recv_json().string_or("code", ""), "unknown_request");

  expect_no_leaked_slots(client);
  EXPECT_EQ(harness.drain_and_join(), 0);
}

TEST(ServeFaultInjection, DeadlineExpiresWhileQueuedBehindSlowJob) {
  auto gate = std::make_shared<MapStartGate>();
  ServeOptions options;
  options.mapper_threads = 1;
  options.map_start_gate = gate;
  ServeHarness harness(options);
  RawClient client(harness.port());

  client.send_line(map_request("slow", 4));
  client.send_line(map_request("hasty", 4, /*deadline_ms=*/1.0));
  // "hasty" sits queued behind the gated "slow"; holding the gate past its
  // 1 ms deadline guarantees it expires while queued instead of racing the
  // front job's wall-clock duration.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  gate->open();

  bool saw_slow_ok = false;
  bool saw_hasty_deadline = false;
  for (int i = 0; i < 2; ++i) {
    const JsonValue reply = client.recv_json();
    if (reply.string_or("id", "") == "slow") {
      saw_slow_ok = reply.bool_or("ok", false);
    } else if (reply.string_or("id", "") == "hasty") {
      saw_hasty_deadline = reply.string_or("code", "") == "deadline";
    }
  }
  EXPECT_TRUE(saw_slow_ok);
  EXPECT_TRUE(saw_hasty_deadline);

  expect_no_leaked_slots(client);
  EXPECT_EQ(harness.drain_and_join(), 0);
}

TEST(ServeFaultInjection, OverloadFloodShedsExplicitlyAndRecovers) {
  auto gate = std::make_shared<MapStartGate>();
  ServeOptions options;
  options.mapper_threads = 1;
  options.max_queue = 2;
  options.retry_after_ms = 25;
  options.map_start_gate = gate;
  ServeHarness harness(options);
  RawClient client(harness.port());

  // The gated front job occupies the mapper; a burst behind it overflows
  // the 2-slot queue. With the mapper pinned, the arithmetic is exact:
  // flood0 runs, two queue, the rest shed. Every request gets exactly one
  // reply either way.
  client.send_line(map_request("flood0", 4));
  // Wait until flood0 holds the in-flight slot (not a queue slot), so the
  // burst sees the whole queue.
  for (int i = 0; i < 1000; ++i) {
    client.send_line(R"({"type":"stats","id":"poll"})");
    const JsonValue stats_reply = client.recv_json();
    const JsonValue* stats = stats_reply.find("stats");
    ASSERT_NE(stats, nullptr);
    if (stats->number_or("in_flight", 0) == 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const int kBurst = 8;
  for (int i = 1; i <= kBurst; ++i) {
    client.send_line(map_request("flood" + std::to_string(i), 4));
  }
  // With flood0 pinned in flight, exactly two of the burst occupy the queue
  // and the remaining six shed synchronously from the poll thread. The shed
  // replies are therefore the first six replies — nothing else can arrive
  // while the gate is closed.
  for (int i = 0; i < kBurst - 2; ++i) {
    const JsonValue reply = client.recv_json();
    EXPECT_FALSE(reply.bool_or("ok", true));
    EXPECT_EQ(reply.string_or("code", ""), "overloaded");
    // The hint is adaptive (EWMA x backlog) but always inside the
    // configured clamp band.
    EXPECT_GE(reply.number_or("retry_after_ms", -1), 25);
    EXPECT_LE(reply.number_or("retry_after_ms", -1), 2000);
  }
  gate->open();
  // flood0 plus exactly the two queued jobs complete.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(client.recv_json().bool_or("ok", false));
  }
  // Shed clients that retry after the backlog clears are served.
  client.send_line(map_request("retry", 4));
  EXPECT_TRUE(client.recv_json().bool_or("ok", false));

  expect_no_leaked_slots(client);
  EXPECT_EQ(harness.drain_and_join(), 0);
}

TEST(ServeFaultInjection, DrainFinishesInFlightWorkAndExitsZero) {
  auto gate = std::make_shared<MapStartGate>();
  ServeOptions options;
  options.mapper_threads = 1;
  options.drain_deadline_ms = 60'000;  // generous: drain must *finish* work
  options.map_start_gate = gate;
  ServeHarness harness(options);
  RawClient client(harness.port());

  // The gate pins "wrapup" in flight so the drain cannot go quiescent
  // before the poll loop has read the late frame off the socket — a warm
  // server finishes a small map in under a millisecond, which loses that
  // race without the gate.
  client.send_line(map_request("wrapup", 4));
  // Make sure "wrapup" is admitted before the drain begins.
  client.send_line(R"({"type":"ping","id":"sync"})");
  EXPECT_EQ(client.recv_json().string_or("id", ""), "sync");
  harness.server().request_drain();

  // New work is refused while draining, explicitly.
  client.send_line(map_request("late", 4));
  gate->open();  // now let the in-flight job wrap up
  bool saw_wrapup_ok = false;
  bool saw_late_draining = false;
  for (int i = 0; i < 2; ++i) {
    const JsonValue reply = client.recv_json();
    if (reply.string_or("id", "") == "wrapup") {
      saw_wrapup_ok = reply.bool_or("ok", false);
    } else if (reply.string_or("id", "") == "late") {
      saw_late_draining = reply.string_or("code", "") == "draining";
    }
  }
  EXPECT_TRUE(saw_wrapup_ok);
  EXPECT_TRUE(saw_late_draining);
  EXPECT_EQ(harness.drain_and_join(), 0);
}

TEST(ServeFaultInjection, DrainDeadlineCancelsStragglersAndStillExitsZero) {
  // The gate is never opened: the straggler provably cannot finish, and the
  // drain deadline must cancel it through the gate's cancel-aware wait.
  auto gate = std::make_shared<MapStartGate>();
  ServeOptions options;
  options.mapper_threads = 1;
  options.drain_deadline_ms = 20;  // tight: the held job cannot finish
  options.map_start_gate = gate;
  ServeHarness harness(options);
  RawClient client(harness.port());

  client.send_line(map_request("straggler", 4));
  // Make sure the job is actually admitted before the drain begins.
  client.send_line(R"({"type":"ping","id":"sync"})");
  EXPECT_EQ(client.recv_json().string_or("id", ""), "sync");

  harness.server().request_drain();
  const JsonValue reply = client.recv_json();
  EXPECT_EQ(reply.string_or("id", ""), "straggler");
  EXPECT_FALSE(reply.bool_or("ok", true));
  EXPECT_EQ(reply.string_or("code", ""), "cancelled");
  EXPECT_EQ(harness.drain_and_join(), 0);
}

TEST(ServeFaultInjection, PerRequestFabricSelectsAndCachesServerSide) {
  ServeHarness harness;
  RawClient client(harness.port());

  // "paper" resolves to the built-in fabric; an unknown path is a per-
  // request failure, not a connection or daemon failure.
  JsonWriter json;
  json.begin_object();
  json.field("type", "map");
  json.field("id", "onpaper");
  json.field("qasm", kTinyQasm);
  json.field("fabric", "paper");
  json.field("placer", "mc");
  json.field("m", 4);
  json.field("seed", 1);
  json.end_object();
  client.send_line(json.str());
  EXPECT_TRUE(client.recv_json().bool_or("ok", false));

  JsonWriter bad;
  bad.begin_object();
  bad.field("type", "map");
  bad.field("id", "nofile");
  bad.field("qasm", kTinyQasm);
  bad.field("fabric", "/nonexistent/fabric.txt");
  bad.end_object();
  client.send_line(bad.str());
  EXPECT_EQ(client.recv_json().string_or("code", ""), "map_failed");

  client.send_line(map_request("still-up", 4));
  EXPECT_TRUE(client.recv_json().bool_or("ok", false));
  expect_no_leaked_slots(client);
  EXPECT_EQ(harness.drain_and_join(), 0);
}

TEST(ServeFaultInjection, HealthProbeAnswersEvenWhenTheQueueIsFull) {
  // The probe's whole point: it is served on the poll thread, never
  // queued, so it stays truthful exactly when admission is wedged shut.
  auto gate = std::make_shared<MapStartGate>();
  ServeOptions options;
  options.mapper_threads = 1;
  options.max_queue = 1;
  options.shard_id = 3;
  options.map_start_gate = gate;
  ServeHarness harness(options);
  RawClient client(harness.port());

  // Occupy the mapper (the gate holds the job in flight — it cannot finish
  // out from under the probe), then fill the whole queue behind it.
  client.send_line(map_request("slow0", 4));
  bool caught_running = false;
  for (int i = 0; i < 1000 && !caught_running; ++i) {
    client.send_line(R"({"type":"stats","id":"poll"})");
    const JsonValue reply = client.recv_json();
    const JsonValue* stats = reply.find("stats");
    ASSERT_NE(stats, nullptr);
    if (stats->number_or("in_flight", 0) == 1 &&
        stats->number_or("queue_depth", -1) == 0) {
      caught_running = true;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_TRUE(caught_running);
  client.send_line(map_request("slow1", 4));
  client.send_line(R"({"type":"health","id":"h1"})");
  const JsonValue health = client.recv_json();
  // The health reply arrives FIRST — both maps are still in the system.
  EXPECT_EQ(health.string_or("id", ""), "h1");
  EXPECT_TRUE(health.bool_or("ok", false));
  EXPECT_EQ(health.string_or("health", ""), "ok");
  EXPECT_EQ(health.number_or("shard_id", -1), 3);
  EXPECT_GE(health.number_or("uptime_ms", -1), 0.0);
  // Exact with the gate held: one job pinned in flight, one in the queue.
  EXPECT_EQ(health.number_or("in_flight", -1), 1.0);
  EXPECT_EQ(health.number_or("queue_depth", -1), 1.0);

  gate->open();
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(client.recv_json().bool_or("ok", false));
  }
  expect_no_leaked_slots(client);
  EXPECT_EQ(harness.drain_and_join(), 0);
}

TEST(ServeFaultInjection, StatsCarryUptimeShardIdAndHealthProbeCount) {
  ServeOptions options;
  options.shard_id = 7;
  ServeHarness harness(options);
  RawClient client(harness.port());

  for (int i = 0; i < 3; ++i) {
    client.send_line(R"({"type":"health","id":"h"})");
    EXPECT_EQ(client.recv_json().string_or("health", ""), "ok");
  }
  client.send_line(R"({"type":"stats","id":"s"})");
  const JsonValue reply = client.recv_json();
  const JsonValue* stats = reply.find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->number_or("shard_id", -1), 7);
  EXPECT_EQ(stats->number_or("health_probes", -1), 3);
  EXPECT_GE(stats->number_or("uptime_ms", -1), 0.0);
  EXPECT_GE(stats->number_or("retry_after_hint_ms", -1), 0.0);
  EXPECT_EQ(harness.drain_and_join(), 0);

  // Standalone daemons (no supervisor) must NOT claim a shard id.
  ServeHarness standalone;
  RawClient solo(standalone.port());
  solo.send_line(R"({"type":"stats","id":"s"})");
  const JsonValue solo_reply = solo.recv_json();
  const JsonValue* solo_stats = solo_reply.find("stats");
  ASSERT_NE(solo_stats, nullptr);
  EXPECT_EQ(solo_stats->find("shard_id"), nullptr);
  solo.send_line(R"({"type":"health","id":"h"})");
  EXPECT_EQ(solo.recv_json().find("shard_id"), nullptr);
  EXPECT_EQ(standalone.drain_and_join(), 0);
}

TEST(ServeFaultInjection, RetryAfterHintAdaptsToObservedCost) {
  // With a tiny floor and a mapper that has already served real requests,
  // the overload hint must exceed the floor: it now reflects EWMA cost
  // times the backlog instead of the old fixed constant.
  ServeOptions options;
  options.mapper_threads = 1;
  options.max_queue = 1;
  options.retry_after_ms = 1;  // floor so low any real EWMA clears it
  options.retry_after_ceiling_ms = 60'000;
  ServeHarness harness(options);
  RawClient client(harness.port());

  // Feed the estimator with genuinely slow completions.
  for (int i = 0; i < 3; ++i) {
    client.send_line(map_request("warm" + std::to_string(i), 300));
    EXPECT_TRUE(client.recv_json().bool_or("ok", false));
  }
  // Now overflow the queue and read the hint off the shed replies.
  client.send_line(map_request("occupy", 300));
  client.send_line(map_request("queued", 4));
  int hint = -1;
  std::vector<JsonValue> replies;
  for (int i = 0; i < 8 && hint < 0; ++i) {
    client.send_line(map_request("burst" + std::to_string(i), 4));
    const JsonValue reply = client.recv_json();
    if (reply.string_or("code", "") == "overloaded") {
      hint = static_cast<int>(reply.number_or("retry_after_ms", -1));
    } else if (reply.bool_or("ok", false)) {
      continue;  // a queued job finished first; keep flooding
    }
  }
  ASSERT_GT(hint, 1) << "hint never rose above the floor";
  // Drain the outstanding replies so the harness exits cleanly.
  harness.drain_and_join();
}

}  // namespace
}  // namespace qspr
