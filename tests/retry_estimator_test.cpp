// The adaptive retry_after_ms estimator: floor before any evidence,
// monotonicity in both queue depth and observed request cost, the ceiling
// clamp, EWMA convergence, and rejection of nonsense tuning — the contract
// the `overloaded` reply's back-off hint rests on.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "service/admission.hpp"

namespace qspr {
namespace {

RetryEstimatorOptions tuned(double alpha, int floor_ms, int ceiling_ms) {
  RetryEstimatorOptions options;
  options.alpha = alpha;
  options.floor_ms = floor_ms;
  options.ceiling_ms = ceiling_ms;
  return options;
}

TEST(RetryAfterEstimator, FloorUntilFirstObservation) {
  const RetryAfterEstimator estimator(tuned(0.2, 50, 2000));
  EXPECT_EQ(estimator.ewma_ms(), 0.0);
  EXPECT_EQ(estimator.suggest_ms(0, 2), 50);
  EXPECT_EQ(estimator.suggest_ms(100, 1), 50);  // depth alone is no evidence
}

TEST(RetryAfterEstimator, MonotoneInQueueDepth) {
  RetryAfterEstimator estimator(tuned(1.0, 5, 100'000));
  estimator.observe_request_ms(40.0);
  int previous = 0;
  for (int depth = 0; depth <= 32; ++depth) {
    const int hint = estimator.suggest_ms(depth, 2);
    EXPECT_GE(hint, previous) << depth;
    previous = hint;
  }
  // And exactly linear where nothing clamps: ewma * (depth+1) / threads.
  EXPECT_EQ(estimator.suggest_ms(0, 2), 20);
  EXPECT_EQ(estimator.suggest_ms(3, 2), 80);
  EXPECT_EQ(estimator.suggest_ms(4, 1), 200);
}

TEST(RetryAfterEstimator, MonotoneInObservedCost) {
  // alpha=1: the latest sample is the estimate, so rising request cost
  // must raise the hint at a fixed backlog.
  RetryAfterEstimator estimator(tuned(1.0, 5, 100'000));
  int previous = 0;
  for (double cost = 10.0; cost <= 200.0; cost += 10.0) {
    estimator.observe_request_ms(cost);
    const int hint = estimator.suggest_ms(4, 2);
    EXPECT_GE(hint, previous) << cost;
    previous = hint;
  }
}

TEST(RetryAfterEstimator, FloorAndCeilingClamp) {
  RetryAfterEstimator estimator(tuned(1.0, 50, 200));
  estimator.observe_request_ms(1.0);
  EXPECT_EQ(estimator.suggest_ms(0, 4), 50);  // tiny cost: floor holds
  estimator.observe_request_ms(10'000.0);
  EXPECT_EQ(estimator.suggest_ms(32, 1), 200);  // huge backlog: ceiling holds
}

TEST(RetryAfterEstimator, EwmaConverges) {
  RetryAfterEstimator estimator(tuned(0.5, 0, 1'000'000));
  estimator.observe_request_ms(100.0);   // seed
  EXPECT_DOUBLE_EQ(estimator.ewma_ms(), 100.0);
  estimator.observe_request_ms(0.0);
  EXPECT_DOUBLE_EQ(estimator.ewma_ms(), 50.0);
  for (int i = 0; i < 50; ++i) estimator.observe_request_ms(40.0);
  EXPECT_NEAR(estimator.ewma_ms(), 40.0, 1e-9);
}

TEST(RetryAfterEstimator, NegativeSamplesAreIgnored) {
  RetryAfterEstimator estimator(tuned(1.0, 5, 1000));
  estimator.observe_request_ms(-3.0);  // clock hiccup: must not seed
  EXPECT_EQ(estimator.suggest_ms(10, 1), 5);
  estimator.observe_request_ms(30.0);
  estimator.observe_request_ms(-1.0);  // nor poison an existing estimate
  EXPECT_DOUBLE_EQ(estimator.ewma_ms(), 30.0);
}

TEST(RetryAfterEstimator, DegenerateThreadAndDepthInputsAreSafe) {
  RetryAfterEstimator estimator(tuned(1.0, 5, 1000));
  estimator.observe_request_ms(50.0);
  // Zero/negative drain threads clamp to 1; negative depth clamps to 0.
  EXPECT_EQ(estimator.suggest_ms(0, 0), 50);
  EXPECT_EQ(estimator.suggest_ms(-7, -3), 50);
}

TEST(RetryAfterEstimator, RejectsNonsenseOptions) {
  EXPECT_THROW(RetryAfterEstimator{tuned(-0.1, 50, 2000)}, Error);
  EXPECT_THROW(RetryAfterEstimator{tuned(1.1, 50, 2000)}, Error);
  EXPECT_THROW(RetryAfterEstimator{tuned(0.2, -1, 2000)}, Error);
  EXPECT_THROW(RetryAfterEstimator{tuned(0.2, 100, 50)}, Error);
}

}  // namespace
}  // namespace qspr
