// Tests for the fidelity / error model connecting mapped latency to the
// paper's noise motivation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/error_model.hpp"
#include "core/mapper.hpp"
#include "fabric/quale_fabric.hpp"
#include "qecc/codes.hpp"

namespace qspr {
namespace {

Trace single_gate_trace(Duration makespan) {
  Trace trace;
  MicroOp gate;
  gate.kind = MicroOpKind::Gate;
  gate.instruction = InstructionId(0);
  gate.from = {1, 1};
  gate.to = {1, 1};
  gate.start = makespan - 100;
  gate.end = makespan;
  trace.add(gate);
  return trace;
}

TEST(ErrorModel, ParametersValidated) {
  ErrorModelParams params;
  EXPECT_NO_THROW(params.validate());
  params.error_2q_gate = 1.5;
  EXPECT_THROW(params.validate(), ValidationError);
  params = {};
  params.t2_us = 0.0;
  EXPECT_THROW(params.validate(), ValidationError);
  params = {};
  params.error_move = -0.1;
  EXPECT_THROW(params.validate(), ValidationError);
}

TEST(ErrorModel, SingleGateFidelity) {
  ErrorModelParams params;
  params.error_2q_gate = 0.01;
  params.t2_us = 1e9;  // effectively no decoherence
  const FidelityEstimate estimate =
      estimate_fidelity(single_gate_trace(100), 2, 1, params);
  EXPECT_EQ(estimate.gates_2q, 1u);
  EXPECT_EQ(estimate.gates_1q, 0u);
  EXPECT_NEAR(estimate.operation_fidelity, 0.99, 1e-9);
  EXPECT_NEAR(estimate.circuit_fidelity, 0.99, 1e-6);
}

TEST(ErrorModel, DecoherenceScalesWithLatencyAndQubits) {
  ErrorModelParams params;
  params.error_2q_gate = 0.0;
  params.t2_us = 1000.0;
  const FidelityEstimate short_run =
      estimate_fidelity(single_gate_trace(100), 2, 1, params);
  const FidelityEstimate long_run =
      estimate_fidelity(single_gate_trace(1000), 2, 1, params);
  const FidelityEstimate wide_run =
      estimate_fidelity(single_gate_trace(100), 8, 1, params);
  EXPECT_GT(short_run.circuit_fidelity, long_run.circuit_fidelity);
  EXPECT_GT(short_run.circuit_fidelity, wide_run.circuit_fidelity);
  // exp(-2 * 100/1000) for 2 qubits over 100 us.
  EXPECT_NEAR(short_run.decoherence_fidelity, std::exp(-0.2), 1e-9);
}

TEST(ErrorModel, RejectsInconsistentGateCounts) {
  EXPECT_THROW(estimate_fidelity(single_gate_trace(100), 2, 5), Error);
}

TEST(ErrorModel, LowerLatencyMappingIsMoreReliable) {
  // The paper's whole point: QSPR's shorter schedules absorb less noise.
  const Fabric fabric = make_paper_fabric();
  const Program program = make_encoder(QeccCode::Q9_1_3);

  MapperOptions qspr_options;
  qspr_options.mvfb_seeds = 5;
  MapperOptions quale_options;
  quale_options.kind = MapperKind::Quale;
  const MapResult qspr = map_program(program, fabric, qspr_options);
  const MapResult quale = map_program(program, fabric, quale_options);

  ErrorModelParams params;
  params.t2_us = 5e4;
  const FidelityEstimate qspr_fidelity = estimate_fidelity(
      qspr.trace, program.qubit_count(), program.two_qubit_gate_count(),
      params);
  const FidelityEstimate quale_fidelity = estimate_fidelity(
      quale.trace, program.qubit_count(), program.two_qubit_gate_count(),
      params);
  EXPECT_GT(qspr_fidelity.circuit_fidelity, quale_fidelity.circuit_fidelity);
  EXPECT_GE(reliability_nines(qspr_fidelity),
            reliability_nines(quale_fidelity));
}

TEST(ErrorModel, ReliabilityNines) {
  FidelityEstimate estimate;
  estimate.circuit_fidelity = 0.9;
  EXPECT_NEAR(reliability_nines(estimate), 1.0, 1e-9);
  estimate.circuit_fidelity = 0.999;
  EXPECT_NEAR(reliability_nines(estimate), 3.0, 1e-9);
  estimate.circuit_fidelity = 1.0;
  EXPECT_EQ(reliability_nines(estimate), 16.0);
}

}  // namespace
}  // namespace qspr
