// Unit tests for the circuit transformation passes.
#include <gtest/gtest.h>

#include "circuit/dependency_graph.hpp"
#include "circuit/transform.hpp"
#include "qecc/codes.hpp"
#include "qecc/random_circuit.hpp"

namespace qspr {
namespace {

TEST(DecomposeSwaps, RewritesIntoThreeCx) {
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  program.add_gate(GateKind::H, a);
  program.add_gate(GateKind::Swap, a, b);
  const Program result = decompose_swaps(program);
  ASSERT_EQ(result.instruction_count(), 4u);
  EXPECT_EQ(result.instructions()[0].kind, GateKind::H);
  EXPECT_EQ(result.instructions()[1].kind, GateKind::CX);
  EXPECT_EQ(result.instructions()[1].control, a);
  EXPECT_EQ(result.instructions()[1].target, b);
  EXPECT_EQ(result.instructions()[2].control, b);
  EXPECT_EQ(result.instructions()[2].target, a);
  EXPECT_EQ(result.instructions()[3].control, a);
  EXPECT_EQ(result.instructions()[3].target, b);
}

TEST(DecomposeSwaps, NoSwapsIsIdentity) {
  const Program program = make_encoder(QeccCode::Q5_1_3);
  const Program result = decompose_swaps(program);
  EXPECT_EQ(result.instruction_count(), program.instruction_count());
}

TEST(CancelInverses, RemovesAdjacentPairs) {
  Program program;
  const QubitId a = program.add_qubit("a");
  program.add_gate(GateKind::H, a);
  program.add_gate(GateKind::H, a);
  EXPECT_EQ(cancel_adjacent_inverses(program).instruction_count(), 0u);
}

TEST(CancelInverses, HandlesSAndSdg) {
  Program program;
  const QubitId a = program.add_qubit("a");
  program.add_gate(GateKind::S, a);
  program.add_gate(GateKind::Sdg, a);
  program.add_gate(GateKind::T, a);
  const Program result = cancel_adjacent_inverses(program);
  ASSERT_EQ(result.instruction_count(), 1u);
  EXPECT_EQ(result.instructions()[0].kind, GateKind::T);
}

TEST(CancelInverses, ChainsCollapseToFixedPoint) {
  Program program;
  const QubitId a = program.add_qubit("a");
  for (int i = 0; i < 6; ++i) program.add_gate(GateKind::X, a);
  EXPECT_EQ(cancel_adjacent_inverses(program).instruction_count(), 0u);
  // Odd count leaves exactly one.
  program.add_gate(GateKind::X, a);
  EXPECT_EQ(cancel_adjacent_inverses(program).instruction_count(), 1u);
}

TEST(CancelInverses, InterveningUseBlocksCancellation) {
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  program.add_gate(GateKind::H, a);
  program.add_gate(GateKind::CX, a, b);  // touches a: blocks the H pair
  program.add_gate(GateKind::H, a);
  EXPECT_EQ(cancel_adjacent_inverses(program).instruction_count(), 3u);
}

TEST(CancelInverses, TwoQubitPairsAndSymmetry) {
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  program.add_gate(GateKind::CX, a, b);
  program.add_gate(GateKind::CX, a, b);
  EXPECT_EQ(cancel_adjacent_inverses(program).instruction_count(), 0u);

  // CX with swapped operands is NOT an inverse pair...
  Program asymmetric;
  const QubitId c = asymmetric.add_qubit("c");
  const QubitId d = asymmetric.add_qubit("d");
  asymmetric.add_gate(GateKind::CX, c, d);
  asymmetric.add_gate(GateKind::CX, d, c);
  EXPECT_EQ(cancel_adjacent_inverses(asymmetric).instruction_count(), 2u);

  // ...but CZ is symmetric, so swapped operands cancel.
  Program symmetric;
  const QubitId e = symmetric.add_qubit("e");
  const QubitId f = symmetric.add_qubit("f");
  symmetric.add_gate(GateKind::CZ, e, f);
  symmetric.add_gate(GateKind::CZ, f, e);
  EXPECT_EQ(cancel_adjacent_inverses(symmetric).instruction_count(), 0u);
}

TEST(CancelInverses, MeasurementNeverCancels) {
  Program program;
  const QubitId a = program.add_qubit("a");
  program.add_gate(GateKind::Measure, a);
  program.add_gate(GateKind::Measure, a);
  EXPECT_EQ(cancel_adjacent_inverses(program).instruction_count(), 2u);
}

TEST(UncomputeProgram, MatchesReversedGraph) {
  const Program program = make_encoder(QeccCode::Q5_1_3);
  const Program uncompute = uncompute_program(program);
  ASSERT_EQ(uncompute.instruction_count(), program.instruction_count());

  const DependencyGraph uidg_from_program = DependencyGraph::build(uncompute);
  const DependencyGraph uidg_from_graph =
      DependencyGraph::build(program).reversed();
  // Same critical path and same gate multiset position-by-position: the
  // program's instruction i corresponds to graph node (n-1-i).
  EXPECT_EQ(uidg_from_program.critical_path_latency(TechnologyParams{}),
            uidg_from_graph.critical_path_latency(TechnologyParams{}));
  const std::size_t n = program.instruction_count();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(uncompute.instructions()[i].kind,
              inverse_of(program.instructions()[n - 1 - i].kind));
  }
}

TEST(UncomputeProgram, IsAnInvolution) {
  Rng rng(11);
  RandomCircuitOptions options;
  options.qubits = 5;
  options.gates = 30;
  options.two_qubit_fraction = 0.6;
  const Program program = make_random_circuit(options, rng);
  const Program twice = uncompute_program(uncompute_program(program));
  ASSERT_EQ(twice.instruction_count(), program.instruction_count());
  for (std::size_t i = 0; i < program.instruction_count(); ++i) {
    EXPECT_EQ(twice.instructions()[i].kind, program.instructions()[i].kind);
    EXPECT_EQ(twice.instructions()[i].control,
              program.instructions()[i].control);
    EXPECT_EQ(twice.instructions()[i].target,
              program.instructions()[i].target);
  }
}

}  // namespace
}  // namespace qspr
