// Unit tests for the scheduling policies (§III and prior art).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "circuit/dependency_graph.hpp"
#include "common/error.hpp"
#include "core/scheduler.hpp"

namespace qspr {
namespace {

/// H(a); CX(a,b); CX(b,c); H(d) — d's Hadamard has huge slack.
Program slack_program() {
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  const QubitId c = program.add_qubit("c");
  const QubitId d = program.add_qubit("d");
  program.add_gate(GateKind::H, a);       // 0: critical head
  program.add_gate(GateKind::CX, a, b);   // 1
  program.add_gate(GateKind::CX, b, c);   // 2
  program.add_gate(GateKind::H, d);       // 3: pure slack
  return program;
}

bool is_permutation_rank(const std::vector<int>& rank) {
  std::vector<int> sorted = rank;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] != static_cast<int>(i)) return false;
  }
  return true;
}

TEST(Scheduler, RanksArePermutations) {
  const DependencyGraph graph = DependencyGraph::build(slack_program());
  const TechnologyParams params;
  for (const SchedulePolicy policy :
       {SchedulePolicy::QsprPriority, SchedulePolicy::Alap,
        SchedulePolicy::AsapDependents, SchedulePolicy::TotalDependentDelay}) {
    const auto rank = make_schedule_rank(graph, params, {policy, 1.0, 1.0});
    EXPECT_TRUE(is_permutation_rank(rank));
  }
}

TEST(Scheduler, QsprPriorityPrefersCriticalInstructions) {
  const DependencyGraph graph = DependencyGraph::build(slack_program());
  const auto rank = make_schedule_rank(graph, TechnologyParams{});
  // The critical-path head (instruction 0) outranks the slack Hadamard (3).
  EXPECT_LT(rank[0], rank[3]);
  // Deeper in the chain means lower remaining priority.
  EXPECT_LT(rank[1], rank[2]);
}

TEST(Scheduler, AlphaBetaWeightsChangeTheMix) {
  // With beta = 0 the priority is the dependent count alone; with alpha = 0
  // it is the longest-path delay alone. Craft a case where they disagree:
  // one branch has many short dependents, the other one long dependent.
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  const QubitId c = program.add_qubit("c");
  const QubitId d = program.add_qubit("d");
  // Branch 1 root (0): three 1-qubit dependents (cheap but numerous).
  program.add_gate(GateKind::H, a);
  program.add_gate(GateKind::S, a);
  program.add_gate(GateKind::T, a);
  program.add_gate(GateKind::X, a);
  // Branch 2 root (4): one expensive 2-qubit dependent chain.
  program.add_gate(GateKind::H, b);
  program.add_gate(GateKind::CX, b, c);
  program.add_gate(GateKind::CX, c, d);
  const DependencyGraph graph = DependencyGraph::build(program);
  const TechnologyParams params;

  const auto count_rank = make_schedule_rank(
      graph, params, {SchedulePolicy::QsprPriority, 1.0, 0.0});
  const auto delay_rank = make_schedule_rank(
      graph, params, {SchedulePolicy::QsprPriority, 0.0, 1.0});
  // Dependent-count priority favours the H with 3 dependents.
  EXPECT_LT(count_rank[0], count_rank[4]);
  // Longest-path priority favours the H heading the 2xCX chain.
  EXPECT_LT(delay_rank[4], delay_rank[0]);
}

TEST(Scheduler, AlapPrefersEarlierDeadlines) {
  const DependencyGraph graph = DependencyGraph::build(slack_program());
  const auto rank =
      make_schedule_rank(graph, TechnologyParams{}, {SchedulePolicy::Alap});
  const auto alap = graph.alap_start_times(TechnologyParams{});
  // Instructions with smaller ALAP start must rank earlier.
  for (std::size_t i = 0; i < rank.size(); ++i) {
    for (std::size_t j = 0; j < rank.size(); ++j) {
      if (alap[i] < alap[j]) {
        EXPECT_LT(rank[i], rank[j]);
      }
    }
  }
}

TEST(Scheduler, AsapDependentsUsesDescendantCounts) {
  const DependencyGraph graph = DependencyGraph::build(slack_program());
  const auto rank = make_schedule_rank(graph, TechnologyParams{},
                                       {SchedulePolicy::AsapDependents});
  const auto counts = graph.descendant_counts();
  for (std::size_t i = 0; i < rank.size(); ++i) {
    for (std::size_t j = 0; j < rank.size(); ++j) {
      if (counts[i] > counts[j]) {
        EXPECT_LT(rank[i], rank[j]);
      }
    }
  }
}

TEST(Scheduler, ScheduleOrderInvertsRank) {
  const DependencyGraph graph = DependencyGraph::build(slack_program());
  const auto rank = make_schedule_rank(graph, TechnologyParams{});
  const auto order = schedule_order(rank);
  ASSERT_EQ(order.size(), rank.size());
  for (std::size_t position = 0; position < order.size(); ++position) {
    EXPECT_EQ(rank[order[position].index()], static_cast<int>(position));
  }
}

TEST(Scheduler, ReversedRankFlipsTheTotalOrder) {
  const std::vector<int> rank{2, 0, 3, 1};
  const std::vector<int> reversed = reversed_rank(rank);
  EXPECT_EQ(reversed, (std::vector<int>{1, 3, 0, 2}));
  // Reversing twice is the identity.
  EXPECT_EQ(reversed_rank(reversed), rank);
}

TEST(Scheduler, ScheduleOrderRejectsNonPermutations) {
  EXPECT_THROW(schedule_order({0, 0, 1}), Error);
  EXPECT_THROW(schedule_order({0, 5}), Error);
}

TEST(Scheduler, DeterministicTieBreaks) {
  // All-identical instructions: ranks follow instruction ids.
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  const QubitId c = program.add_qubit("c");
  const QubitId d = program.add_qubit("d");
  program.add_gate(GateKind::CX, a, b);
  program.add_gate(GateKind::CX, c, d);
  const DependencyGraph graph = DependencyGraph::build(program);
  const auto rank = make_schedule_rank(graph, TechnologyParams{});
  EXPECT_EQ(rank, (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace qspr
