// The trial-parallel mapping pipeline's core contract: results are
// bit-identical at any worker count. Per-trial RNGs are forked up front by
// trial index and the winner is the (latency, trial index) minimum, so
// `--jobs 1` and `--jobs 4` must produce the same MapResult — latency,
// full control trace, initial placement — for both the MVFB and the
// Monte-Carlo flows. Also unit-tests the shared Executor the flows run on
// (submit/wait, cross-job interleaving, per-job error capture) and its
// blocking ThreadPool facade.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <functional>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/executor.hpp"
#include "common/thread_pool.hpp"
#include "core/mapper.hpp"
#include "core/monte_carlo.hpp"
#include "core/mvfb.hpp"
#include "core/scheduler.hpp"
#include "fabric/quale_fabric.hpp"
#include "qecc/codes.hpp"

namespace qspr {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for_each(kCount, [&](std::size_t index, int worker) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, 4);
    hits[index].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SingleWorkerRunsInOrder) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for_each(64, [&](std::size_t index, int worker) {
    EXPECT_EQ(worker, 0);
    order.push_back(index);
  });
  ASSERT_EQ(order.size(), 64u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ReusableAcrossJobsAndEmptyJobsAreNoops) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  pool.parallel_for_each(0, [&](std::size_t, int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 0);
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for_each(10, [&](std::size_t, int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50);
}

TEST(ThreadPool, PropagatesBodyExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for_each(
                   100,
                   [&](std::size_t index, int) {
                     if (index == 42) throw std::runtime_error("trial failed");
                   }),
               std::runtime_error);
  // The pool stays usable after a failed job.
  std::atomic<int> total{0};
  pool.parallel_for_each(8, [&](std::size_t, int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 8);
}

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool(0), Error);
}

// ---------------------------------------------------------------------------
// Executor: the submit/wait layer under the pool and the batch service
// ---------------------------------------------------------------------------

TEST(ExecutorTest, SubmitThenWaitRunsEveryIndexOnce) {
  Executor executor(4);
  constexpr std::size_t kCount = 200;
  std::vector<std::atomic<int>> hits(kCount);
  Executor::Job job =
      executor.submit(kCount, [&](std::size_t index, int worker) {
        ASSERT_GE(worker, 0);
        ASSERT_LT(worker, 4);
        hits[index].fetch_add(1, std::memory_order_relaxed);
      });
  executor.wait(job);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ExecutorTest, MultipleJobsInFlightAllComplete) {
  Executor executor(3);
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  std::atomic<int> c{0};
  Executor::Job job_a =
      executor.submit(50, [&](std::size_t, int) { a.fetch_add(1); });
  Executor::Job job_b =
      executor.submit(30, [&](std::size_t, int) { b.fetch_add(1); });
  Executor::Job job_c =
      executor.submit(0, [&](std::size_t, int) { c.fetch_add(1); });
  // Waiting out of submission order must be fine: jobs progress
  // independently on the shared workers.
  executor.wait(job_b);
  EXPECT_EQ(b.load(), 30);
  executor.wait(job_a);
  executor.wait(job_c);
  EXPECT_EQ(a.load(), 50);
  EXPECT_EQ(c.load(), 0);
}

TEST(ExecutorTest, PerJobErrorCaptureLeavesOtherJobsUnharmed) {
  Executor executor(4);
  std::atomic<int> healthy{0};
  Executor::Job failing =
      executor.submit(40, [&](std::size_t index, int) {
        if (index % 2 == 1) {
          throw std::runtime_error("trial " + std::to_string(index));
        }
      });
  Executor::Job clean =
      executor.submit(40, [&](std::size_t, int) { healthy.fetch_add(1); });
  executor.wait(clean);  // unaffected by its failing neighbour
  EXPECT_EQ(healthy.load(), 40);
  EXPECT_THROW(executor.wait(failing), std::runtime_error);
  // The executor stays usable after a failed job.
  Executor::Job again =
      executor.submit(8, [&](std::size_t, int) { healthy.fetch_add(1); });
  executor.wait(again);
  EXPECT_EQ(healthy.load(), 48);
}

TEST(ExecutorTest, SerialExecutorFailsDeterministicallyAtLowestIndex) {
  Executor executor(1);
  std::vector<std::size_t> ran;
  Executor::Job job = executor.submit(10, [&](std::size_t index, int worker) {
    EXPECT_EQ(worker, 0);
    ran.push_back(index);
    if (index >= 2) throw std::runtime_error("boom " + std::to_string(index));
  });
  try {
    executor.wait(job);
    FAIL() << "expected the job failure to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 2");  // lowest failing index
  }
  // Serial execution is strictly in order and abandons after the failure.
  ASSERT_EQ(ran.size(), 3u);
  EXPECT_EQ(ran[2], 2u);
  // Waiting again is idempotent and reports the same failure.
  EXPECT_THROW(executor.wait(job), std::runtime_error);
}

TEST(ExecutorTest, WaitOnInvalidJobThrows) {
  Executor executor(2);
  Executor::Job job;
  EXPECT_FALSE(job.valid());
  EXPECT_THROW(executor.wait(job), Error);
}

// ---------------------------------------------------------------------------
// Nested submission: bodies submitting + waiting on their own executor
// ---------------------------------------------------------------------------

TEST(ExecutorNested, SubmitAndWaitFromInsideBodiesCompletes) {
  // Every outer body spawns a sub-job and waits on it from inside the pool.
  // Workers must help drain instead of parking — with 2 workers and 4
  // concurrent nested waits this hangs if a waiting worker ever blocks
  // while claimable work exists.
  Executor executor(2);
  constexpr std::size_t kOuter = 4;
  constexpr std::size_t kInner = 16;
  std::atomic<int> inner_runs{0};
  Executor::Job outer = executor.submit(kOuter, [&](std::size_t, int) {
    Executor::Job sub = executor.submit(kInner, [&](std::size_t, int) {
      inner_runs.fetch_add(1, std::memory_order_relaxed);
    });
    executor.wait(sub);
  });
  executor.wait(outer);
  EXPECT_EQ(inner_runs.load(), static_cast<int>(kOuter * kInner));
}

TEST(ExecutorNested, DeeplyNestedJobsCompleteOnOneWorker) {
  // A 1-worker executor runs everything inline on the waiting thread;
  // nested submit/wait must recurse cleanly instead of deadlocking.
  Executor executor(1);
  std::atomic<int> leaves{0};
  const std::function<void(int)> spawn = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Executor::Job job = executor.submit(
        2, [&, depth](std::size_t, int) { spawn(depth - 1); });
    executor.wait(job);
  };
  spawn(5);
  EXPECT_EQ(leaves.load(), 32);
}

TEST(ExecutorNested, WorkerIdsStayConfinedPerJobAcrossNesting) {
  // The per-worker scratch contract: within one job, no two bodies may run
  // under the same worker id concurrently — including the case a nested
  // wait's help-drain could create by re-entering the *outer* job on a
  // worker whose outer body is suspended beneath the wait (help-drain must
  // skip jobs the thread has a frame in). The guard holds a per-(job,
  // worker) lock across each whole body, nested wait included; any
  // re-entry or cross-thread aliasing trips `overlap`.
  Executor executor(4);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 32;
  std::atomic<bool> overlap{false};
  struct JobSlots {
    std::array<std::atomic<int>, 16> in_use{};
  };
  JobSlots outer_slots;
  JobSlots inner_slots;  // shared by all sub-jobs: a worker id is one thread
  const auto body_guard = [&](JobSlots& job_slots, int worker,
                              const auto& work) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, 4);
    if (job_slots.in_use[worker].exchange(1) != 0) overlap = true;
    work();
    job_slots.in_use[worker].store(0);
  };
  std::atomic<int> inner_runs{0};
  Executor::Job outer =
      executor.submit(kOuter, [&](std::size_t, int worker) {
        body_guard(outer_slots, worker, [&] {
          Executor::Job sub =
              executor.submit(kInner, [&](std::size_t, int inner_worker) {
                body_guard(inner_slots, inner_worker, [&] {
                  inner_runs.fetch_add(1, std::memory_order_relaxed);
                });
              });
          executor.wait(sub);
        });
      });
  executor.wait(outer);
  EXPECT_EQ(inner_runs.load(), static_cast<int>(kOuter * kInner));
  EXPECT_FALSE(overlap.load());
}

// ---------------------------------------------------------------------------
// Bit-identical mapping at any --jobs value
// ---------------------------------------------------------------------------

void expect_identical(const MapResult& serial, const MapResult& parallel,
                      const char* label) {
  EXPECT_EQ(serial.latency, parallel.latency) << label;
  EXPECT_EQ(serial.placement_runs, parallel.placement_runs) << label;
  EXPECT_EQ(serial.initial_placement, parallel.initial_placement) << label;
  EXPECT_EQ(serial.final_placement, parallel.final_placement) << label;
  ASSERT_EQ(serial.trace.size(), parallel.trace.size()) << label;
  EXPECT_EQ(serial.trace.to_string(), parallel.trace.to_string()) << label;
}

class ParallelDeterminism : public ::testing::TestWithParam<QeccCode> {};

TEST_P(ParallelDeterminism, MvfbFlowMatchesSerial) {
  const Program program = make_encoder(GetParam());
  const Fabric fabric = make_quale_fabric({4, 4, 4});
  MapperOptions options;
  options.placer = PlacerKind::Mvfb;
  options.mvfb_seeds = 6;
  options.rng_seed = 17;

  options.jobs = 1;
  const MapResult serial = map_program(program, fabric, options);
  options.jobs = 4;
  const MapResult parallel = map_program(program, fabric, options);
  expect_identical(serial, parallel, code_name(GetParam()).c_str());
}

TEST_P(ParallelDeterminism, MonteCarloFlowMatchesSerial) {
  const Program program = make_encoder(GetParam());
  const Fabric fabric = make_quale_fabric({4, 4, 4});
  MapperOptions options;
  options.placer = PlacerKind::MonteCarlo;
  options.monte_carlo_trials = 16;
  options.rng_seed = 5;

  options.jobs = 1;
  const MapResult serial = map_program(program, fabric, options);
  options.jobs = 4;
  const MapResult parallel = map_program(program, fabric, options);
  expect_identical(serial, parallel, code_name(GetParam()).c_str());
}

INSTANTIATE_TEST_SUITE_P(Codes, ParallelDeterminism,
                         ::testing::Values(QeccCode::Q5_1_3,
                                           QeccCode::Q7_1_3));

// Direct placer-level checks: every field of the placer results agrees, and
// oversubscribing workers (jobs > trials) is safe.
TEST(ParallelDeterminismDirect, MvfbPlacerAgreesAcrossJobCounts) {
  const Program program = make_encoder(QeccCode::Q5_1_3);
  const Fabric fabric = make_quale_fabric({4, 4, 4});
  const RoutingGraph routing(fabric);
  const DependencyGraph graph = DependencyGraph::build(program);
  const std::vector<int> rank = make_schedule_rank(graph, TechnologyParams{});
  const ExecutionOptions exec;

  MvfbResult reference;
  for (const int jobs : {1, 2, 4, 8}) {
    MvfbPlacer placer(graph, fabric, routing, rank, exec,
                      MvfbOptions{5, 3, 64, 23, jobs});
    const MvfbResult result = placer.place_and_execute();
    if (jobs == 1) {
      reference = result;
      continue;
    }
    EXPECT_EQ(result.best_latency, reference.best_latency) << jobs;
    EXPECT_EQ(result.best_is_backward, reference.best_is_backward) << jobs;
    EXPECT_EQ(result.best_initial_placement, reference.best_initial_placement)
        << jobs;
    EXPECT_EQ(result.best_trace.to_string(), reference.best_trace.to_string())
        << jobs;
    EXPECT_EQ(result.total_runs, reference.total_runs) << jobs;
    EXPECT_EQ(result.total_iterations, reference.total_iterations) << jobs;
  }
}

TEST(ParallelDeterminismDirect, MonteCarloAgreesAcrossJobCounts) {
  const Program program = make_encoder(QeccCode::Q5_1_3);
  const Fabric fabric = make_quale_fabric({4, 4, 4});
  const RoutingGraph routing(fabric);
  const DependencyGraph graph = DependencyGraph::build(program);
  const std::vector<int> rank = make_schedule_rank(graph, TechnologyParams{});
  const ExecutionOptions exec;

  const MonteCarloResult serial = monte_carlo_place_and_execute(
      graph, fabric, routing, rank, exec, 10, 9, /*jobs=*/1);
  for (const int jobs : {2, 4, 16}) {
    const MonteCarloResult parallel = monte_carlo_place_and_execute(
        graph, fabric, routing, rank, exec, 10, 9, jobs);
    EXPECT_EQ(parallel.best_latency, serial.best_latency) << jobs;
    EXPECT_EQ(parallel.best_initial_placement, serial.best_initial_placement)
        << jobs;
    EXPECT_EQ(parallel.best_execution.trace.to_string(),
              serial.best_execution.trace.to_string())
        << jobs;
  }
}

TEST(ParallelDeterminismDirect, MapperRejectsBadJobs) {
  const Program program = make_encoder(QeccCode::Q5_1_3);
  const Fabric fabric = make_quale_fabric({4, 4, 4});
  MapperOptions options;
  options.jobs = 0;
  EXPECT_THROW(map_program(program, fabric, options), Error);
}

// trial_cpu_ms aggregates per-worker time: it is populated for the trial
// flows and (being a sum over all trials) at least the single best trial's
// share of the wall clock.
TEST(ParallelDeterminismDirect, TrialCpuTimeIsReported) {
  const Program program = make_encoder(QeccCode::Q5_1_3);
  const Fabric fabric = make_quale_fabric({4, 4, 4});
  MapperOptions options;
  options.placer = PlacerKind::MonteCarlo;
  options.monte_carlo_trials = 8;
  options.jobs = 2;
  const MapResult result = map_program(program, fabric, options);
  EXPECT_GT(result.trial_cpu_ms, 0.0);
  EXPECT_EQ(result.jobs, 2);
}

}  // namespace
}  // namespace qspr
