// Unit tests for the ion-trap fabric model, the QUALE fabric generator
// (Fig. 4) and the fabric text I/O.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "fabric/fabric.hpp"
#include "fabric/quale_fabric.hpp"
#include "fabric/text_io.hpp"

namespace qspr {
namespace {

TEST(QualeFabric, PaperFabricDimensions) {
  const Fabric fabric = make_paper_fabric();
  // Fig. 4: a 45x85 fabric with a 12x22 junction lattice at pitch 4.
  EXPECT_EQ(fabric.rows(), 45);
  EXPECT_EQ(fabric.cols(), 85);
  EXPECT_EQ(fabric.junction_count(), 12u * 22u);
  // Segments: 12 rows x 21 horizontal + 22 cols x 11 vertical.
  EXPECT_EQ(fabric.segment_count(), 12u * 21u + 22u * 11u);
  // Traps: 4 per tile, 11x21 tiles.
  EXPECT_EQ(fabric.trap_count(), 4u * 11u * 21u);
}

TEST(QualeFabric, ChannelsHaveUniformLength) {
  const Fabric fabric = make_paper_fabric();
  for (const ChannelSegment& segment : fabric.segments()) {
    EXPECT_EQ(segment.length(), 3);
    // Every segment of the lattice ends in junctions on both sides.
    EXPECT_TRUE(segment.junction_before.is_valid());
    EXPECT_TRUE(segment.junction_after.is_valid());
  }
}

TEST(QualeFabric, TrapsHaveTwoPorts) {
  const Fabric fabric = make_paper_fabric();
  for (const Trap& trap : fabric.traps()) {
    // Tile-corner traps touch one horizontal and one vertical channel.
    ASSERT_EQ(trap.ports.size(), 2u);
    const Orientation a = axis_of(trap.ports[0].direction_from_trap);
    const Orientation b = axis_of(trap.ports[1].direction_from_trap);
    EXPECT_NE(a, b);
    for (const TrapPort& port : trap.ports) {
      EXPECT_EQ(fabric.cell(port.channel_cell), CellType::Channel);
      EXPECT_TRUE(are_adjacent(trap.position, port.channel_cell));
    }
  }
}

TEST(QualeFabric, SmallLatticeAndPitchTwo) {
  const Fabric small = make_quale_fabric({2, 2, 4});
  EXPECT_EQ(small.rows(), 5);
  EXPECT_EQ(small.cols(), 5);
  EXPECT_EQ(small.junction_count(), 4u);
  EXPECT_EQ(small.trap_count(), 4u);

  const Fabric dense = make_quale_fabric({3, 3, 2});
  EXPECT_EQ(dense.rows(), 5);
  EXPECT_EQ(dense.trap_count(), 4u);  // one trap per tile at pitch 2
  for (const Trap& trap : dense.traps()) {
    EXPECT_EQ(trap.ports.size(), 4u);  // surrounded by channels
  }
}

TEST(QualeFabric, RejectsBadParameters) {
  EXPECT_THROW(make_quale_fabric({1, 5, 4}), ValidationError);
  EXPECT_THROW(make_quale_fabric({5, 1, 4}), ValidationError);
  EXPECT_THROW(make_quale_fabric({3, 3, 1}), ValidationError);
}

TEST(Fabric, CellLookups) {
  const Fabric fabric = make_quale_fabric({2, 2, 4});
  EXPECT_EQ(fabric.cell({0, 0}), CellType::Junction);
  EXPECT_EQ(fabric.cell({0, 1}), CellType::Channel);
  EXPECT_EQ(fabric.cell({1, 1}), CellType::Trap);
  EXPECT_EQ(fabric.cell({2, 2}), CellType::Empty);
  EXPECT_EQ(fabric.cell({-1, 0}), CellType::Empty);  // out of bounds
  EXPECT_EQ(fabric.cell({99, 99}), CellType::Empty);

  EXPECT_TRUE(fabric.junction_at({0, 0}).is_valid());
  EXPECT_FALSE(fabric.junction_at({0, 1}).is_valid());
  EXPECT_TRUE(fabric.trap_at({1, 1}).is_valid());
  EXPECT_TRUE(fabric.segment_at({0, 2}).is_valid());
  EXPECT_FALSE(fabric.segment_at({0, 0}).is_valid());
}

TEST(Fabric, SegmentEndpointsAndOrientation) {
  const Fabric fabric = make_quale_fabric({2, 2, 4});
  const SegmentId top = fabric.segment_at({0, 2});
  ASSERT_TRUE(top.is_valid());
  const ChannelSegment& segment = fabric.segment(top);
  EXPECT_EQ(segment.orientation, Orientation::Horizontal);
  EXPECT_EQ(segment.cells.size(), 3u);
  EXPECT_EQ(segment.cells.front(), (Position{0, 1}));
  EXPECT_EQ(segment.cells.back(), (Position{0, 3}));
  EXPECT_EQ(fabric.junction(segment.junction_before).position,
            (Position{0, 0}));
  EXPECT_EQ(fabric.junction(segment.junction_after).position,
            (Position{0, 4}));
}

TEST(Fabric, TrapsByDistanceIsSortedAndComplete) {
  const Fabric fabric = make_paper_fabric();
  const auto order = fabric.traps_by_distance(fabric.center());
  ASSERT_EQ(order.size(), fabric.trap_count());
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(manhattan_distance(fabric.trap(order[i - 1]).position,
                                 fabric.center()),
              manhattan_distance(fabric.trap(order[i]).position,
                                 fabric.center()));
  }
}

TEST(Fabric, ValidationRejectsCrossingWithoutJunction) {
  // Vertical channel crossing a horizontal one through a plain channel cell.
  EXPECT_THROW(parse_fabric("J-C-J\n"
                            "..C..\n"),
               ValidationError);
}

TEST(Fabric, ValidationRejectsIsolatedChannel) {
  EXPECT_THROW(parse_fabric(".C.\n"), ValidationError);
}

TEST(Fabric, ValidationRejectsUnreachableTrap) {
  EXPECT_THROW(parse_fabric("T.J-J\n"), ValidationError);
}

TEST(Fabric, ValidationRejectsEmptyDrawing) {
  EXPECT_THROW(parse_fabric("\n\n"), ValidationError);
  EXPECT_THROW(Fabric::from_cells(0, 5, {}), ValidationError);
  EXPECT_THROW(Fabric::from_cells(2, 2, {CellType::Empty}), ValidationError);
}

TEST(FabricTextIo, ParsesHandDrawnFabric) {
  const Fabric fabric = parse_fabric("J---J\n"
                                     "|T..|\n"
                                     "|..T|\n"
                                     "J---J\n",
                                     "toy");
  EXPECT_EQ(fabric.name(), "toy");
  EXPECT_EQ(fabric.rows(), 4);
  EXPECT_EQ(fabric.cols(), 5);
  EXPECT_EQ(fabric.junction_count(), 4u);
  EXPECT_EQ(fabric.trap_count(), 2u);
  EXPECT_EQ(fabric.segment_count(), 4u);
}

TEST(FabricTextIo, RenderParseRoundTrip) {
  const Fabric original = make_quale_fabric({3, 4, 4});
  const std::string drawing = render_fabric(original);
  const Fabric reparsed = parse_fabric(drawing);
  EXPECT_EQ(reparsed.rows(), original.rows());
  EXPECT_EQ(reparsed.cols(), original.cols());
  EXPECT_EQ(reparsed.trap_count(), original.trap_count());
  EXPECT_EQ(reparsed.junction_count(), original.junction_count());
  EXPECT_EQ(reparsed.segment_count(), original.segment_count());
  EXPECT_EQ(render_fabric(reparsed), drawing);
}

TEST(FabricTextIo, RejectsUnknownCharacters) {
  EXPECT_THROW(parse_fabric("J?J\n"), ParseError);
}

TEST(FabricTextIo, CommentsAndPaddingAreHandled) {
  const Fabric fabric = parse_fabric("# a comment line\n"
                                     "J---J   # trailing comment\n"
                                     "|T..|\n"
                                     "J---J\n");
  EXPECT_EQ(fabric.rows(), 3);
  EXPECT_EQ(fabric.trap_count(), 1u);
}

TEST(FabricTextIo, Describe) {
  const std::string description = describe_fabric(make_paper_fabric());
  EXPECT_NE(description.find("45x85"), std::string::npos);
  EXPECT_NE(description.find("924 traps"), std::string::npos);
}

}  // namespace
}  // namespace qspr
