// Tests for the QECC benchmark generators: every circuit's ideal-baseline
// critical path must equal the paper's Table 2 baseline exactly — this is
// the calibration contract documented in DESIGN.md.
#include <gtest/gtest.h>

#include <set>

#include "circuit/dependency_graph.hpp"
#include "qecc/codes.hpp"
#include "qecc/random_circuit.hpp"

namespace qspr {
namespace {

class QeccCalibration : public ::testing::TestWithParam<PaperNumbers> {};

TEST_P(QeccCalibration, CriticalPathMatchesPaperBaseline) {
  const PaperNumbers& paper = GetParam();
  const Program program = make_encoder(paper.code);
  const DependencyGraph graph = DependencyGraph::build(program);
  EXPECT_EQ(graph.critical_path_latency(TechnologyParams{}),
            paper.baseline_latency)
      << code_name(paper.code);
}

TEST_P(QeccCalibration, QubitCountMatchesCode) {
  const PaperNumbers& paper = GetParam();
  const Program program = make_encoder(paper.code);
  EXPECT_EQ(program.qubit_count(),
            static_cast<std::size_t>(code_qubits(paper.code)));
}

TEST_P(QeccCalibration, ProgramIsValidAndNamed) {
  const PaperNumbers& paper = GetParam();
  const Program program = make_encoder(paper.code);
  EXPECT_NO_THROW(program.validate());
  EXPECT_EQ(program.name(), code_name(paper.code));
}

TEST_P(QeccCalibration, EveryQubitParticipates) {
  const PaperNumbers& paper = GetParam();
  const Program program = make_encoder(paper.code);
  std::set<QubitId> touched;
  for (const Instruction& instr : program.instructions()) {
    for (const QubitId q : instr.operands()) touched.insert(q);
  }
  EXPECT_EQ(touched.size(), program.qubit_count());
}

TEST_P(QeccCalibration, EncoderScaleIsPlausible) {
  const PaperNumbers& paper = GetParam();
  const Program program = make_encoder(paper.code);
  const std::size_t n = program.qubit_count();
  // An encoder touches all n qubits with at least ~n two-qubit couplings and
  // is not absurdly large.
  EXPECT_GE(program.two_qubit_gate_count(), n - 1);
  EXPECT_LE(program.instruction_count(), 10 * n);
}

INSTANTIATE_TEST_SUITE_P(AllCodes, QeccCalibration,
                         ::testing::ValuesIn(paper_benchmarks()),
                         [](const auto& param_info) {
                           std::string name = code_name(param_info.param.code);
                           std::erase_if(name, [](char c) {
                             return c == '[' || c == ']' || c == ',';
                           });
                           return "Q" + name;
                         });

TEST(QeccCodes, NamesAndSizes) {
  EXPECT_EQ(code_name(QeccCode::Q5_1_3), "[[5,1,3]]");
  EXPECT_EQ(code_name(QeccCode::Q23_1_7), "[[23,1,7]]");
  EXPECT_EQ(code_qubits(QeccCode::Q14_8_3), 14);
  EXPECT_EQ(paper_benchmarks().size(), 6u);
}

TEST(QeccCodes, PaperNumbersLookup) {
  const PaperNumbers numbers = paper_numbers(QeccCode::Q14_8_3);
  EXPECT_EQ(numbers.baseline_latency, 2500);
  EXPECT_EQ(numbers.quale_latency, 7511);
  EXPECT_EQ(numbers.qspr_latency, 3390);
  EXPECT_NEAR(numbers.improvement_percent, 54.87, 1e-9);
}

TEST(QeccCodes, DataQubitsAreNotInitialised) {
  // [[5,1,3]]: q3 is the data qubit (Fig. 3 declares it without ",0").
  const Program program = make_encoder(QeccCode::Q5_1_3);
  EXPECT_FALSE(program.qubit(program.find_qubit("q3")).init_value.has_value());
  EXPECT_TRUE(program.qubit(program.find_qubit("q0")).init_value.has_value());
  // [[14,8,3]] has k = 8 data qubits.
  const Program large = make_encoder(QeccCode::Q14_8_3);
  int data = 0;
  for (const QubitDecl& qubit : large.qubits()) {
    if (!qubit.init_value.has_value()) ++data;
  }
  EXPECT_EQ(data, 8);
}

TEST(QeccCodes, Figure3VerbatimOrderHasDeeperCriticalPath) {
  // The verbatim Fig. 3 instruction order yields 610 us under per-qubit
  // sequential dependencies (see DESIGN.md); the calibrated benchmark
  // reorders the same gate set to the paper's 510 us.
  const Program fig3 = make_figure3_program();
  const DependencyGraph graph = DependencyGraph::build(fig3);
  EXPECT_EQ(graph.critical_path_latency(TechnologyParams{}), 610);
  EXPECT_EQ(fig3.qubit_count(), 5u);
  EXPECT_EQ(fig3.instruction_count(), 12u);

  // Same multiset of gates as the calibrated benchmark.
  const Program calibrated = make_encoder(QeccCode::Q5_1_3);
  auto gate_multiset = [](const Program& p) {
    std::multiset<std::tuple<GateKind, QubitId, QubitId>> gates;
    for (const Instruction& instr : p.instructions()) {
      gates.insert({instr.kind, instr.control, instr.target});
    }
    return gates;
  };
  EXPECT_EQ(gate_multiset(fig3), gate_multiset(calibrated));
}

TEST(QeccCodes, BenchmarksHaveParallelWidth) {
  // The larger encoders must not be pure chains: at some ideal-schedule time
  // step, at least two 2-qubit gates overlap (congestion needs width).
  for (const QeccCode code :
       {QeccCode::Q9_1_3, QeccCode::Q14_8_3, QeccCode::Q19_1_7,
        QeccCode::Q23_1_7}) {
    const Program program = make_encoder(code);
    const DependencyGraph graph = DependencyGraph::build(program);
    const auto asap = graph.asap_start_times(TechnologyParams{});
    bool overlap = false;
    for (std::size_t i = 0; i < graph.node_count() && !overlap; ++i) {
      if (!graph.instructions()[i].is_two_qubit()) continue;
      for (std::size_t j = i + 1; j < graph.node_count(); ++j) {
        if (!graph.instructions()[j].is_two_qubit()) continue;
        if (asap[i] == asap[j]) {
          overlap = true;
          break;
        }
      }
    }
    EXPECT_TRUE(overlap) << code_name(code) << " is a pure chain";
  }
}

TEST(RandomCircuit, RespectsOptionsAndDeterminism) {
  RandomCircuitOptions options;
  options.qubits = 6;
  options.gates = 50;
  options.two_qubit_fraction = 0.5;
  Rng rng_a(3);
  Rng rng_b(3);
  const Program a = make_random_circuit(options, rng_a);
  const Program b = make_random_circuit(options, rng_b);
  EXPECT_EQ(a.qubit_count(), 6u);
  EXPECT_EQ(a.instruction_count(), 50u);
  EXPECT_NO_THROW(a.validate());
  ASSERT_EQ(b.instruction_count(), a.instruction_count());
  for (std::size_t i = 0; i < a.instruction_count(); ++i) {
    EXPECT_EQ(a.instructions()[i].kind, b.instructions()[i].kind);
    EXPECT_EQ(a.instructions()[i].target, b.instructions()[i].target);
  }
}

TEST(RandomCircuit, FractionExtremes) {
  Rng rng(1);
  RandomCircuitOptions all_two;
  all_two.two_qubit_fraction = 1.0;
  all_two.gates = 30;
  EXPECT_EQ(make_random_circuit(all_two, rng).two_qubit_gate_count(), 30u);
  RandomCircuitOptions all_one;
  all_one.two_qubit_fraction = 0.0;
  all_one.gates = 30;
  EXPECT_EQ(make_random_circuit(all_one, rng).one_qubit_gate_count(), 30u);
  RandomCircuitOptions bad;
  bad.qubits = 1;
  EXPECT_THROW(make_random_circuit(bad, rng), Error);
}

}  // namespace
}  // namespace qspr
