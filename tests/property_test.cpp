// Property-based tests: randomized sweeps (TEST_P) asserting the library's
// invariants on arbitrary circuits, fabrics and congestion states.
#include <gtest/gtest.h>

#include <map>

#include "circuit/dependency_graph.hpp"
#include "core/mapper.hpp"
#include "core/placer.hpp"
#include "core/scheduler.hpp"
#include "fabric/linear_fabric.hpp"
#include "fabric/quale_fabric.hpp"
#include "qasm/parser.hpp"
#include "qasm/writer.hpp"
#include "qecc/random_circuit.hpp"
#include "route/pathfinder.hpp"
#include "route/router.hpp"
#include "sim/event_sim.hpp"
#include "sim/trace_io.hpp"
#include "sim/trace_validator.hpp"

namespace qspr {
namespace {

// ---------------------------------------------------------------------------
// Random circuits: QASM round trip and QIDG invariants.
// ---------------------------------------------------------------------------

class RandomCircuitProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Program random_program() const {
    Rng rng(GetParam());
    RandomCircuitOptions options;
    options.qubits = 3 + static_cast<int>(GetParam() % 8);
    options.gates = 20 + static_cast<int>(GetParam() % 40);
    return make_random_circuit(options, rng);
  }
};

TEST_P(RandomCircuitProperty, QasmRoundTripIsIdentity) {
  const Program original = random_program();
  const Program reparsed = parse_qasm(write_qasm(original));
  ASSERT_EQ(reparsed.instruction_count(), original.instruction_count());
  ASSERT_EQ(reparsed.qubit_count(), original.qubit_count());
  for (std::size_t i = 0; i < original.instruction_count(); ++i) {
    EXPECT_EQ(reparsed.instructions()[i].kind, original.instructions()[i].kind);
    EXPECT_EQ(reparsed.instructions()[i].control,
              original.instructions()[i].control);
    EXPECT_EQ(reparsed.instructions()[i].target,
              original.instructions()[i].target);
  }
}

TEST_P(RandomCircuitProperty, ReversalPreservesCriticalPath) {
  const Program program = random_program();
  const DependencyGraph graph = DependencyGraph::build(program);
  const DependencyGraph reversed = graph.reversed();
  const TechnologyParams params;
  // The uncompute graph has the same ideal latency (gate delays are
  // preserved under inversion) and the same edge count.
  EXPECT_EQ(reversed.critical_path_latency(params),
            graph.critical_path_latency(params));
  std::size_t edges = 0;
  std::size_t reversed_edges = 0;
  for (const Instruction& instr : graph.instructions()) {
    edges += graph.successors(instr.id).size();
    reversed_edges += reversed.successors(instr.id).size();
  }
  EXPECT_EQ(reversed_edges, edges);
}

TEST_P(RandomCircuitProperty, AsapNeverExceedsAlap) {
  const Program program = random_program();
  const DependencyGraph graph = DependencyGraph::build(program);
  const TechnologyParams params;
  const auto asap = graph.asap_start_times(params);
  const auto alap = graph.alap_start_times(params);
  for (std::size_t i = 0; i < graph.node_count(); ++i) {
    EXPECT_LE(asap[i], alap[i]);
  }
}

TEST_P(RandomCircuitProperty, SchedulerRanksAreConsistentPermutations) {
  const Program program = random_program();
  const DependencyGraph graph = DependencyGraph::build(program);
  const auto rank = make_schedule_rank(graph, TechnologyParams{});
  const auto order = schedule_order(rank);
  const auto back = reversed_rank(reversed_rank(rank));
  EXPECT_EQ(back, rank);
  EXPECT_EQ(order.size(), rank.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuitProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------------------------
// Random executions: every produced trace is physically valid.
// ---------------------------------------------------------------------------

struct ExecutionCase {
  std::uint64_t seed;
  bool dual_move;
  bool turn_aware;
  bool return_home;
  int channel_capacity;
};

class ExecutionProperty : public ::testing::TestWithParam<ExecutionCase> {};

TEST_P(ExecutionProperty, TracesAreValidAndBounded) {
  const ExecutionCase& c = GetParam();
  Rng rng(c.seed);
  RandomCircuitOptions circuit_options;
  circuit_options.qubits = 4 + static_cast<int>(c.seed % 5);
  circuit_options.gates = 25;
  const Program program = make_random_circuit(circuit_options, rng);
  const DependencyGraph graph = DependencyGraph::build(program);

  const Fabric fabric = make_quale_fabric({4, 4, 4});
  const RoutingGraph routing(fabric);

  ExecutionOptions exec;
  exec.dual_move = c.dual_move;
  exec.router.turn_aware = c.turn_aware;
  exec.return_home_after_gate = c.return_home;
  exec.tech.channel_capacity = c.channel_capacity;

  Rng placement_rng(c.seed * 31 + 7);
  const Placement placement =
      random_center_placement(fabric, program.qubit_count(), placement_rng);
  const auto rank = make_schedule_rank(graph, exec.tech);
  const ExecutionResult result =
      execute_circuit(graph, fabric, routing, rank, placement, exec);

  EXPECT_GE(result.latency, graph.critical_path_latency(exec.tech));
  EXPECT_EQ(result.trace.gate_count(), graph.node_count());
  const auto violations =
      validate_trace(result.trace, graph, fabric, placement, exec.tech);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: "
      << (violations.empty() ? "" : violations[0]);

  // Eq. 1 bookkeeping: every decomposition term is non-negative and the
  // instruction intervals nest properly.
  for (const InstructionTiming& timing : result.timings) {
    EXPECT_GE(timing.t_congestion(), 0);
    EXPECT_GE(timing.t_routing(), 0);
    EXPECT_GT(timing.t_gate(), 0);
    EXPECT_LE(timing.ready, timing.issue);
    EXPECT_LE(timing.issue, timing.gate_start);
    EXPECT_LT(timing.gate_start, timing.gate_end);
  }
}

std::vector<ExecutionCase> execution_cases() {
  std::vector<ExecutionCase> cases;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    cases.push_back({seed, true, true, false, 2});    // QSPR physics
    cases.push_back({seed, false, false, true, 1});   // QUALE physics
    cases.push_back({seed, false, false, false, 1});  // QPOS physics
    cases.push_back({seed, true, false, false, 2});   // ablation mix
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExecutionProperty,
                         ::testing::ValuesIn(execution_cases()));

// ---------------------------------------------------------------------------
// Executions on the linear QCCD chain: the single corridor maximises
// congestion; every trace must still validate and round-trip through the
// textual serialisation.
// ---------------------------------------------------------------------------

class LinearFabricProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinearFabricProperty, CorridorTracesValidate) {
  Rng rng(GetParam());
  RandomCircuitOptions circuit_options;
  circuit_options.qubits = 4;
  circuit_options.gates = 15;
  const Program program = make_random_circuit(circuit_options, rng);
  const DependencyGraph graph = DependencyGraph::build(program);

  const Fabric fabric = make_linear_fabric(8, 4);
  const RoutingGraph routing(fabric);
  ExecutionOptions exec;
  const auto rank = make_schedule_rank(graph, exec.tech);
  Rng placement_rng(GetParam() * 17 + 3);
  const Placement placement =
      random_center_placement(fabric, program.qubit_count(), placement_rng);
  const ExecutionResult result =
      execute_circuit(graph, fabric, routing, rank, placement, exec);

  EXPECT_TRUE(
      validate_trace(result.trace, graph, fabric, placement, exec.tech)
          .empty());
  // Serialisation round trip on a congested trace.
  const Trace reparsed = parse_trace(write_trace(result.trace));
  EXPECT_EQ(reparsed.size(), result.trace.size());
  EXPECT_EQ(reparsed.makespan(), result.trace.makespan());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinearFabricProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// PathFinder on random net sets: converged solutions respect capacities and
// connect the requested endpoints.
// ---------------------------------------------------------------------------

class PathFinderProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PathFinderProperty, ConvergedSolutionsAreLegal) {
  const Fabric fabric = make_quale_fabric({4, 4, 4});
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  Rng rng(GetParam());

  std::vector<NetRequest> nets;
  for (int i = 0; i < 6; ++i) {
    const TrapId from = fabric.traps()[rng.uniform_index(fabric.trap_count())].id;
    TrapId to = fabric.traps()[rng.uniform_index(fabric.trap_count())].id;
    nets.push_back({from, to});
  }
  const PathFinderResult result =
      route_nets_negotiated(graph, params, nets);
  ASSERT_EQ(result.paths.size(), nets.size());

  for (std::size_t i = 0; i < nets.size(); ++i) {
    const RoutedPath& path = result.paths[i];
    if (nets[i].from == nets[i].to) {
      EXPECT_TRUE(path.empty());
      continue;
    }
    ASSERT_GE(path.steps.size(), 2u);
    EXPECT_EQ(path.steps.front().from,
              fabric.trap(nets[i].from).position);
    EXPECT_EQ(path.steps.back().to, fabric.trap(nets[i].to).position);
  }

  if (result.converged) {
    std::map<std::int32_t, int> users;
    for (const RoutedPath& path : result.paths) {
      std::set<std::int32_t> mine;
      for (const ResourceUse& use : path.resource_uses) {
        if (use.resource.kind == ResourceRef::Kind::Segment) {
          mine.insert(use.resource.index);
        }
      }
      for (const std::int32_t segment : mine) ++users[segment];
    }
    for (const auto& [segment, count] : users) {
      EXPECT_LE(count, params.channel_capacity) << "segment " << segment;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathFinderProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Router optimality: A* against a Bellman-Ford reference.
// ---------------------------------------------------------------------------

class RouterOptimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RouterOptimality, MatchesBellmanFordCost) {
  const Fabric fabric = make_quale_fabric({3, 3, 4});
  const RoutingGraph graph(fabric);
  TechnologyParams params;
  CongestionState congestion(fabric.segment_count(), fabric.junction_count());

  // Random congestion below capacity so everything stays routable.
  Rng rng(GetParam());
  for (std::size_t s = 0; s < fabric.segment_count(); ++s) {
    if (rng.uniform_real() < 0.3) {
      congestion.acquire(ResourceRef::segment(SegmentId::from_index(s)));
    }
  }

  const TrapId from =
      fabric.traps()[rng.uniform_index(fabric.trap_count())].id;
  const TrapId to = fabric.traps()[rng.uniform_index(fabric.trap_count())].id;
  Router router(graph, params);
  SearchArena<Duration> arena;
  const auto path = router.shortest_node_path(
      graph.trap_node(from), graph.trap_node(to), congestion, arena, from);
  ASSERT_TRUE(path.has_value());
  const Duration astar_cost = path->cost;

  // Reference: Bellman-Ford over the same weighting.
  const auto edge_weight = [&](RouteNodeId to_node,
                               const RouteEdge& edge) -> Duration {
    const RouteNode& v = graph.node(to_node);
    if (edge.is_turn) return params.t_turn;
    if (v.is_trap) return params.t_move;
    if (v.junction.is_valid()) {
      if (congestion.junction_load(v.junction) >= params.junction_capacity) {
        return kInfiniteDuration;
      }
      return params.t_move;
    }
    const int load = congestion.segment_load(v.segment);
    if (load >= params.channel_capacity) return kInfiniteDuration;
    return params.t_move * static_cast<Duration>(load + 1);
  };

  std::vector<Duration> dist(graph.node_count(), kInfiniteDuration);
  dist[graph.trap_node(from).index()] = 0;
  for (std::size_t iteration = 0; iteration < graph.node_count();
       ++iteration) {
    bool changed = false;
    for (std::size_t u = 0; u < graph.node_count(); ++u) {
      if (dist[u] >= kInfiniteDuration) continue;
      for (const RouteEdge& edge : graph.edges(RouteNodeId::from_index(u))) {
        const RouteNode& v = graph.node(edge.to);
        // Same trap-as-endpoint-only rule as the router.
        if (v.is_trap && v.trap != to && v.trap != from) continue;
        const Duration w = edge_weight(edge.to, edge);
        if (w >= kInfiniteDuration) continue;
        if (dist[u] + w < dist[edge.to.index()]) {
          dist[edge.to.index()] = dist[u] + w;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  EXPECT_EQ(astar_cost, dist[graph.trap_node(to).index()]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterOptimality,
                         ::testing::Range<std::uint64_t>(1, 16));

// ---------------------------------------------------------------------------
// Mapper-level determinism.
// ---------------------------------------------------------------------------

class MapperDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MapperDeterminism, SameSeedSameResult) {
  Rng rng(GetParam());
  RandomCircuitOptions circuit_options;
  circuit_options.qubits = 5;
  circuit_options.gates = 20;
  const Program program = make_random_circuit(circuit_options, rng);
  const Fabric fabric = make_quale_fabric({4, 4, 4});

  MapperOptions options;
  options.mvfb_seeds = 2;
  options.rng_seed = GetParam();
  const MapResult a = map_program(program, fabric, options);
  const MapResult b = map_program(program, fabric, options);
  EXPECT_EQ(a.latency, b.latency);
  EXPECT_EQ(a.placement_runs, b.placement_runs);
  EXPECT_EQ(a.initial_placement, b.initial_placement);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapperDeterminism,
                         ::testing::Range<std::uint64_t>(1, 6));

}  // namespace
}  // namespace qspr
