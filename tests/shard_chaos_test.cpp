// Chaos harness for qspr_shard's supervisor: real qspr_serve worker
// processes (fork/exec of the build-tree binary), real kills.
//
// What it proves, over seeded kill schedules:
//   1. exactly-once: every accepted map request is answered exactly once —
//      a worker SIGKILLed mid-request still yields one reply, via
//      transparent re-dispatch to a sibling or restarted worker;
//   2. bit-identity: a re-dispatched request's result fingerprint equals a
//      direct in-process map_program run — re-execution is safe because
//      mapping is pure;
//   3. wedges (SIGSTOP) are detected by the queue-bypassing health probe,
//      SIGKILLed, and replaced;
//   4. a crash-looping worker binary turns into explicit `shard_down`
//      shedding behind the circuit breaker, not a hang;
//   5. drain cascades: SIGTERM answers what is in flight, reaps every
//      child (spawns == reaps, kill(pid, 0) => ESRCH), exits 0 — no
//      leaked workers, no leftover port files.
//
// Worker discovery: qspr_serve next to this test binary (the build tree
// layout); override with QSPR_SERVE_BIN.
#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "core/qspr.hpp"
#include "service/request_codec.hpp"
#include "service/shard_client.hpp"
#include "service/shard_supervisor.hpp"

namespace qspr {
namespace {

constexpr const char* kTinyQasm =
    "QUBIT q0,0\nQUBIT q1,0\nQUBIT q2,0\nH q0\nC-X q0,q1\nC-X q1,q2\n"
    "MEASURE q2\n";

std::string worker_binary() {
  const char* env = std::getenv("QSPR_SERVE_BIN");
  if (env != nullptr && *env != '\0') return env;
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof buffer - 1);
  if (n <= 0) return "qspr_serve";
  buffer[n] = '\0';
  const std::string path(buffer);
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return "qspr_serve";
  return path.substr(0, slash + 1) + "qspr_serve";
}

std::string map_request(const std::string& id, int m) {
  JsonWriter json;
  json.begin_object();
  json.field("type", "map");
  json.field("id", id);
  json.field("qasm", kTinyQasm);
  json.field("placer", "mc");
  json.field("m", m);
  json.field("seed", 1);
  json.end_object();
  return json.str();
}

/// The fingerprint a correct service MUST return for map_request(id, m):
/// the same program/options/seed mapped directly in this process.
std::string direct_fingerprint(int m) {
  const Program program = parse_qasm(kTinyQasm, "direct");
  const Fabric fabric = make_paper_fabric();
  MapperOptions options;
  options.placer = PlacerKind::MonteCarlo;
  options.monte_carlo_trials = m;
  options.rng_seed = 1;
  return map_result_fingerprint(map_program(program, fabric, options));
}

/// In-process supervisor under test; serve() runs on a background thread.
class ShardHarness {
 public:
  explicit ShardHarness(ShardSupervisorOptions options) {
    options.host = "127.0.0.1";
    options.port = 0;
    if (options.worker_binary.empty()) options.worker_binary = worker_binary();
    // Workers sized for a small CI box: single mapper thread each.
    if (options.worker_args.empty()) {
      options.worker_args = {"--mapper-threads", "1", "--jobs", "1"};
    }
    supervisor_ = std::make_unique<ShardSupervisor>(std::move(options));
    supervisor_->start();
    thread_ = std::thread([this] { exit_code_ = supervisor_->serve(); });
  }

  ~ShardHarness() { drain_and_join(); }

  [[nodiscard]] int port() const { return supervisor_->port(); }
  [[nodiscard]] ShardSupervisor& supervisor() { return *supervisor_; }

  int drain_and_join() {
    if (thread_.joinable()) {
      supervisor_->request_drain();
      thread_.join();
    }
    return exit_code_;
  }

  /// Polls the supervisor's health endpoint until `want` shards are Up.
  bool wait_for_up(int want, int timeout_ms = 30'000) {
    ShardClientOptions options;
    options.port = port();
    ShardClient probe(options);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      std::string reply;
      if (probe.try_request(R"({"type":"health","id":"w"})", reply)) {
        const JsonValue json = parse_json(reply);
        if (json.number_or("shards_up", -1) >= want) return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

 private:
  std::unique_ptr<ShardSupervisor> supervisor_;
  std::thread thread_;
  int exit_code_ = -1;
};

ShardSupervisorOptions fast_options(int shards) {
  ShardSupervisorOptions options;
  options.shard_count = shards;
  options.health_interval_ms = 100;
  options.health_timeout_ms = 1500;
  options.restart_backoff.base_ms = 50;
  options.restart_backoff.cap_ms = 500;
  options.restart_backoff.seed = 1;
  options.max_redispatch = 8;  // chaos schedules kill repeatedly
  options.drain_deadline_ms = 30'000;
  return options;
}

ShardClientOptions client_options(int port) {
  ShardClientOptions options;
  options.port = port;
  options.request_timeout_ms = 120'000;
  options.max_attempts = 40;  // rides out restart windows
  options.backoff.base_ms = 20;
  options.backoff.cap_ms = 200;
  options.backoff.seed = 7;
  return options;
}

/// kill(pid, 0) probe: true while the process (or its zombie) exists.
bool process_exists(int pid) {
  return pid > 0 && (::kill(pid, 0) == 0 || errno != ESRCH);
}

TEST(ShardChaos, BringsUpShardsAndServesBitIdenticalResults) {
  ShardHarness harness(fast_options(2));
  ASSERT_TRUE(harness.wait_for_up(2));

  ShardClient client(client_options(harness.port()));
  const std::string reply_line = client.request(map_request("r1", 8));
  const JsonValue reply = parse_json(reply_line);
  EXPECT_TRUE(reply.bool_or("ok", false));
  EXPECT_EQ(reply.string_or("id", ""), "r1");
  // Bit-identity through the whole supervisor -> worker -> back path.
  EXPECT_EQ(reply.string_or("result_fp", ""), direct_fingerprint(8));

  // Supervisor-local request types answer without touching a worker.
  std::string line;
  ASSERT_TRUE(client.try_request(R"({"type":"ping","id":"p"})", line));
  EXPECT_TRUE(parse_json(line).bool_or("pong", false));
  ASSERT_TRUE(client.try_request(R"({"type":"stats","id":"s"})", line));
  const JsonValue stats = parse_json(line);
  ASSERT_NE(stats.find("stats"), nullptr);
  EXPECT_EQ(stats.find("stats")->string_or("role", ""), "supervisor");
  EXPECT_EQ(stats.find("stats")->number_or("shards_up", -1), 2);

  EXPECT_EQ(harness.drain_and_join(), 0);
}

TEST(ShardChaos, SigkillMidRequestStillAnswersExactlyOnceBitIdentical) {
  ShardHarness harness(fast_options(2));
  ASSERT_TRUE(harness.wait_for_up(2));
  const int target = shard_for_fabric("", 2);  // where kTinyQasm routes
  const std::vector<int> pids = harness.supervisor().worker_pids();
  ASSERT_GT(pids[static_cast<std::size_t>(target)], 0);

  // A slow request (seconds on one core) so the SIGKILL lands mid-map.
  std::string reply_line;
  std::atomic<bool> got_reply{false};
  std::thread requester([&] {
    ShardClient client(client_options(harness.port()));
    reply_line = client.request(map_request("victim", 3000));
    got_reply.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  ASSERT_FALSE(got_reply.load()) << "request finished before the kill; "
                                    "raise m for this box";
  ASSERT_EQ(::kill(pids[static_cast<std::size_t>(target)], SIGKILL), 0);
  requester.join();

  // Exactly one reply, and it is the right one: bit-identical to a direct
  // run even though a different worker computed it.
  const JsonValue reply = parse_json(reply_line);
  EXPECT_TRUE(reply.bool_or("ok", false)) << reply_line;
  EXPECT_EQ(reply.string_or("id", ""), "victim");
  EXPECT_EQ(reply.string_or("result_fp", ""), direct_fingerprint(3000));

  const SupervisorMetrics metrics = harness.supervisor().metrics();
  EXPECT_GE(metrics.crashes, 1);
  EXPECT_GE(metrics.redispatches, 1);
  EXPECT_EQ(metrics.accepted, metrics.answered);

  // The killed worker is replaced (new pid, both shards Up again).
  EXPECT_TRUE(harness.wait_for_up(2));
  const std::vector<int> after = harness.supervisor().worker_pids();
  EXPECT_GT(after[static_cast<std::size_t>(target)], 0);
  EXPECT_NE(after[static_cast<std::size_t>(target)],
            pids[static_cast<std::size_t>(target)]);

  EXPECT_EQ(harness.drain_and_join(), 0);
}

TEST(ShardChaos, SeededKillScheduleLosesNoReplies) {
  ShardHarness harness(fast_options(2));
  ASSERT_TRUE(harness.wait_for_up(2));

  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 8;
  std::atomic<int> ok_replies{0};
  std::atomic<int> error_replies{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ShardClient client(client_options(harness.port()));
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const std::string id =
            "c" + std::to_string(c) + "_r" + std::to_string(r);
        // request() throws only when the retry budget is spent; any
        // returned line is the exactly-one reply for this id.
        const std::string line = client.request(map_request(id, 60));
        const JsonValue reply = parse_json(line);
        ASSERT_EQ(reply.string_or("id", ""), id) << line;
        if (reply.bool_or("ok", false)) {
          ok_replies.fetch_add(1);
        } else {
          error_replies.fetch_add(1);
        }
      }
    });
  }

  // Seeded kill schedule: deterministic victims and intervals.
  std::atomic<bool> stop_killing{false};
  std::thread killer([&] {
    Rng rng(2026);
    int kills = 0;
    while (!stop_killing.load() && kills < 6) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          200 + static_cast<int>(rng.uniform_index(300))));
      const int victim = static_cast<int>(rng.uniform_index(2));
      const std::vector<int> pids = harness.supervisor().worker_pids();
      if (pids[static_cast<std::size_t>(victim)] > 0) {
        ::kill(pids[static_cast<std::size_t>(victim)], SIGKILL);
        ++kills;
      }
    }
  });

  for (std::thread& thread : clients) thread.join();
  stop_killing.store(true);
  killer.join();

  // Every request got exactly one reply (request() returned once each).
  EXPECT_EQ(ok_replies.load() + error_replies.load(),
            kClients * kRequestsPerClient);
  // Under an 8-redispatch budget and siblings to fail over to, the seeded
  // schedule must not surface errors to well-behaved retrying clients.
  EXPECT_EQ(error_replies.load(), 0);

  // The supervisor's own ledger balances once the dust settles.
  const SupervisorMetrics metrics = harness.supervisor().metrics();
  EXPECT_EQ(metrics.accepted, metrics.answered);
  EXPECT_GE(metrics.reaps, 1);  // the schedule landed at least one kill

  EXPECT_TRUE(harness.wait_for_up(2));
  EXPECT_EQ(harness.drain_and_join(), 0);

  const SupervisorMetrics final_metrics = harness.supervisor().metrics();
  EXPECT_EQ(final_metrics.spawns, final_metrics.reaps);
}

TEST(ShardChaos, WedgedWorkerIsDetectedKilledAndReplaced) {
  ShardSupervisorOptions options = fast_options(2);
  options.health_timeout_ms = 600;  // fast wedge verdicts
  ShardHarness harness(options);
  ASSERT_TRUE(harness.wait_for_up(2));

  const int target = shard_for_fabric("", 2);
  const std::vector<int> pids = harness.supervisor().worker_pids();
  const int wedged_pid = pids[static_cast<std::size_t>(target)];
  ASSERT_GT(wedged_pid, 0);
  // SIGSTOP: the process is alive (waitpid sees nothing) but cannot answer
  // the poll-loop health probe — the definition of a wedge.
  ASSERT_EQ(::kill(wedged_pid, SIGSTOP), 0);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (harness.supervisor().metrics().wedges < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(harness.supervisor().metrics().wedges, 1);

  // Replacement comes up and serves the wedged shard's traffic again.
  ASSERT_TRUE(harness.wait_for_up(2));
  ShardClient client(client_options(harness.port()));
  const JsonValue reply = parse_json(client.request(map_request("after", 8)));
  EXPECT_TRUE(reply.bool_or("ok", false));
  EXPECT_EQ(reply.string_or("result_fp", ""), direct_fingerprint(8));

  EXPECT_EQ(harness.drain_and_join(), 0);
  EXPECT_FALSE(process_exists(wedged_pid));
}

TEST(ShardChaos, CrashLoopingWorkerBinaryShedsExplicitly) {
  ShardSupervisorOptions options = fast_options(1);
  options.worker_binary = "/nonexistent/qspr_serve";
  options.breaker_threshold = 2;
  ShardHarness harness(options);

  // The shard can never come up; a map request gets an explicit, prompt
  // shard_down with a retry hint — not a hang, not a dropped connection.
  ShardClientOptions copts;
  copts.port = harness.port();
  ShardClient client(copts);
  std::string line;
  ASSERT_TRUE(client.try_request(map_request("doomed", 4), line));
  const JsonValue reply = parse_json(line);
  EXPECT_FALSE(reply.bool_or("ok", true));
  EXPECT_EQ(reply.string_or("code", ""), "shard_down");
  EXPECT_GT(reply.number_or("retry_after_ms", -1), 0);

  // The exec failures were observed (exit 127 -> reaped, breaker cycling).
  const SupervisorMetrics metrics = harness.supervisor().metrics();
  EXPECT_GE(metrics.spawns, 1);

  EXPECT_EQ(harness.drain_and_join(), 0);
  const SupervisorMetrics final_metrics = harness.supervisor().metrics();
  EXPECT_EQ(final_metrics.spawns, final_metrics.reaps);
}

TEST(ShardChaos, DrainCascadeAnswersInFlightReapsAllWorkersExitsZero) {
  ShardHarness harness(fast_options(2));
  ASSERT_TRUE(harness.wait_for_up(2));
  const std::vector<int> pids = harness.supervisor().worker_pids();
  for (const int pid : pids) ASSERT_GT(pid, 0);

  // A request in flight when the drain starts must still be answered (the
  // worker drains, not aborts).
  std::string reply_line;
  std::thread requester([&] {
    ShardClient client(client_options(harness.port()));
    reply_line = client.request(map_request("inflight", 800));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const int code = harness.drain_and_join();
  requester.join();
  EXPECT_EQ(code, 0);

  const JsonValue reply = parse_json(reply_line);
  EXPECT_EQ(reply.string_or("id", ""), "inflight");
  // Either the worker finished it (ok) or the drain deadline cancelled it
  // (cancelled/draining) — but it was answered, exactly once.
  if (!reply.bool_or("ok", false)) {
    const std::string code_str = reply.string_or("code", "");
    EXPECT_TRUE(code_str == "cancelled" || code_str == "draining")
        << reply_line;
  }

  // No leaked workers: every spawned pid was reaped and is gone.
  const SupervisorMetrics metrics = harness.supervisor().metrics();
  EXPECT_EQ(metrics.spawns, metrics.reaps);
  for (const int pid : pids) EXPECT_FALSE(process_exists(pid)) << pid;

  // No leftover port files either.
  for (int i = 0; i < 2; ++i) {
    const std::string port_file = "/tmp/qspr_shard_" +
                                  std::to_string(::getpid()) + "_" +
                                  std::to_string(i) + ".port";
    EXPECT_NE(::access(port_file.c_str(), F_OK), 0) << port_file;
  }
}

}  // namespace
}  // namespace qspr
