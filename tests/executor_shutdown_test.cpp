// Shutdown and cancellation semantics of the shared Executor and the
// engine's staged jobs — the contracts qspr_serve's drain path leans on:
//
//   * an abandoned staged job (PendingMap destroyed without finish) drains
//     its submitted trials before the engine goes away, so trial-body
//     captures never dangle;
//   * many threads may each wait their own jobs while the executor shuts
//     down right behind them;
//   * a cancel token is observed between trial indices: earlier indices
//     complete, the first index after the flag throws CancelledError, the
//     job's remaining indices are abandoned — and neighbour jobs on the
//     same executor finish bit-identically untouched.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/executor.hpp"
#include "core/engine.hpp"
#include "fabric/quale_fabric.hpp"
#include "qecc/codes.hpp"

namespace qspr {
namespace {

MapperOptions mc_options(int trials) {
  MapperOptions options;
  options.placer = PlacerKind::MonteCarlo;
  options.monte_carlo_trials = trials;
  options.rng_seed = 7;
  return options;
}

TEST(ExecutorShutdown, DestructionAfterWaitingAllJobsIsClean) {
  std::atomic<int> ran{0};
  {
    Executor executor(4);
    std::vector<Executor::Job> jobs;
    jobs.reserve(8);
    for (int j = 0; j < 8; ++j) {
      jobs.push_back(executor.submit(
          16, [&ran](std::size_t, int) { ran.fetch_add(1); }));
    }
    for (const Executor::Job& job : jobs) executor.wait(job);
  }
  EXPECT_EQ(ran.load(), 8 * 16);
}

TEST(ExecutorShutdown, AbandonedPendingMapDrainsItsQueuedTrials) {
  const Program program = make_encoder(QeccCode::Q7_1_3);
  const Fabric fabric = make_quale_fabric({4, 4, 4});
  MappingEngine engine(2);
  MapJob job;
  job.program = &program;
  job.fabric = &fabric;
  job.options = mc_options(12);
  {
    // Stage trials, then drop the handle without finish(): the pending
    // state's destructor must wait out the submitted job (most of whose
    // indices are still unstarted) before its captures are freed.
    MappingEngine::PendingMap abandoned = engine.begin(job);
    EXPECT_TRUE(abandoned.valid());
  }
  // The engine is still fully serviceable afterwards.
  const MapResult result = engine.map(program, fabric, job.options);
  EXPECT_GT(result.latency, 0);
}

TEST(ExecutorShutdown, WaitersRacingDestructionEachGetTheirJob) {
  std::atomic<int> ran{0};
  {
    Executor executor(4);
    std::vector<std::thread> waiters;
    waiters.reserve(6);
    for (int t = 0; t < 6; ++t) {
      waiters.emplace_back([&executor, &ran] {
        const Executor::Job job = executor.submit(
            32, [&ran](std::size_t, int) { ran.fetch_add(1); });
        executor.wait(job);
      });
    }
    for (std::thread& waiter : waiters) waiter.join();
    // Destruction begins immediately after the last wait returns.
  }
  EXPECT_EQ(ran.load(), 6 * 32);
}

TEST(CancelToken, ObservedBetweenIndicesNotWithinThem) {
  // One worker runs indices strictly in order, so the cut is exact: the
  // flag raised inside index 3 is seen by index 4's boundary check.
  Executor executor(1);
  CancelSource source;
  const CancelToken token = source.token();
  std::vector<int> started;
  const Executor::Job job =
      executor.submit(100, [&](std::size_t index, int) {
        token.check();
        started.push_back(static_cast<int>(index));
        if (index == 3) source.request_cancel();
      });
  try {
    executor.wait(job);
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::Cancelled);
  }
  EXPECT_EQ(started, (std::vector<int>{0, 1, 2, 3}));
}

TEST(CancelToken, CancelledJobLeavesNeighbourBitIdentical) {
  const Program program = make_encoder(QeccCode::Q5_1_3);
  const Fabric fabric = make_quale_fabric({4, 4, 4});
  const MapperOptions options = mc_options(8);

  // Reference: the same job alone on a fresh engine.
  MappingEngine reference(2);
  const MapResult solo = reference.map(program, fabric, options);

  MappingEngine engine(2);
  CancelSource source;
  MapJob doomed;
  doomed.program = &program;
  doomed.fabric = &fabric;
  doomed.options = mc_options(64);
  doomed.cancel = source.token();
  MapJob neighbour;
  neighbour.program = &program;
  neighbour.fabric = &fabric;
  neighbour.options = options;

  MappingEngine::PendingMap doomed_pending = engine.begin(doomed);
  MappingEngine::PendingMap neighbour_pending = engine.begin(neighbour);
  source.request_cancel();
  EXPECT_THROW(engine.finish(std::move(doomed_pending)), CancelledError);

  const MapResult survived = engine.finish(std::move(neighbour_pending));
  EXPECT_EQ(survived.latency, solo.latency);
  EXPECT_EQ(survived.trace.to_string(), solo.trace.to_string());
}

TEST(CancelToken, PreStagingDeadlineFailsBeginWithDeadlineReason) {
  const Program program = make_encoder(QeccCode::Q5_1_3);
  const Fabric fabric = make_quale_fabric({4, 4, 4});
  MappingEngine engine(1);
  CancelSource source;
  source.set_deadline(std::chrono::steady_clock::now() -
                      std::chrono::milliseconds(1));
  MapJob job;
  job.program = &program;
  job.fabric = &fabric;
  job.options = mc_options(4);
  job.cancel = source.token();
  try {
    MappingEngine::PendingMap pending = engine.begin(job);
    FAIL() << "expected CancelledError from begin()";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::DeadlineExpired);
  }
}

TEST(CancelToken, NeverFiredTokenIsBitIdenticalToNoToken) {
  const Program program = make_encoder(QeccCode::Q7_1_3);
  const Fabric fabric = make_quale_fabric({4, 4, 4});
  const MapperOptions options = mc_options(6);
  MappingEngine engine(2);

  const MapResult bare = engine.map(program, fabric, options);

  CancelSource source;
  source.set_deadline_after_ms(600'000.0);  // far future: never fires
  MapJob job;
  job.program = &program;
  job.fabric = &fabric;
  job.options = options;
  job.cancel = source.token();
  const MapResult tokened = engine.finish(engine.begin(job));

  EXPECT_EQ(tokened.latency, bare.latency);
  EXPECT_EQ(tokened.trace.to_string(), bare.trace.to_string());
  EXPECT_EQ(tokened.initial_placement, bare.initial_placement);
}

}  // namespace
}  // namespace qspr
