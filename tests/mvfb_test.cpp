// Unit tests for the MVFB placer (§IV.A) and the Monte Carlo baseline.
#include <gtest/gtest.h>

#include "circuit/dependency_graph.hpp"
#include "core/monte_carlo.hpp"
#include "core/mvfb.hpp"
#include "core/placer.hpp"
#include "core/scheduler.hpp"
#include "fabric/quale_fabric.hpp"
#include "qecc/codes.hpp"
#include "sim/trace_validator.hpp"

namespace qspr {
namespace {

class MvfbTest : public ::testing::Test {
 protected:
  MvfbTest()
      : fabric_(make_quale_fabric({4, 4, 4})),
        routing_(fabric_),
        program_(make_encoder(QeccCode::Q5_1_3)),
        graph_(DependencyGraph::build(program_)),
        rank_(make_schedule_rank(graph_, TechnologyParams{})) {}

  Fabric fabric_;
  RoutingGraph routing_;
  Program program_;
  DependencyGraph graph_;
  std::vector<int> rank_;
  ExecutionOptions exec_;
};

TEST_F(MvfbTest, ProducesAValidatedForwardTrace) {
  MvfbPlacer placer(graph_, fabric_, routing_, rank_, exec_,
                    MvfbOptions{4, 3, 64, 1});
  const MvfbResult result = placer.place_and_execute();

  ASSERT_LT(result.best_latency, kInfiniteDuration);
  EXPECT_EQ(result.best_latency, result.best_trace.makespan());
  // The reported trace must be a physically consistent *forward* execution
  // from the reported initial placement — this is the §IV.A reversal claim.
  const auto violations = validate_trace(result.best_trace, graph_, fabric_,
                                         result.best_initial_placement,
                                         exec_.tech);
  EXPECT_TRUE(violations.empty()) << violations.size() << " violations, e.g. "
                                  << (violations.empty() ? "" : violations[0]);
}

TEST_F(MvfbTest, BeatsOrMatchesSingleCenterPlacement) {
  MvfbPlacer placer(graph_, fabric_, routing_, rank_, exec_,
                    MvfbOptions{6, 3, 64, 1});
  const MvfbResult result = placer.place_and_execute();

  EventSimulator sim(graph_, fabric_, routing_, rank_, exec_);
  const ExecutionResult center =
      sim.run(center_placement(fabric_, graph_.qubit_count()));
  EXPECT_LE(result.best_latency, center.latency);
  EXPECT_GE(result.best_latency,
            graph_.critical_path_latency(exec_.tech));  // ideal lower bound
}

TEST_F(MvfbTest, RunCountsFollowTheStopRule) {
  const int seeds = 5;
  MvfbPlacer placer(graph_, fabric_, routing_, rank_, exec_,
                    MvfbOptions{seeds, 3, 64, 1});
  const MvfbResult result = placer.place_and_execute();
  // Every seed performs at least stop_after runs before giving up.
  EXPECT_GE(result.total_runs, seeds * 3);
  EXPECT_LE(result.total_runs, seeds * 64);
  // Iterations are forward+backward pairs, so runs/2 rounded down.
  EXPECT_LE(result.total_iterations * 2, result.total_runs);
  EXPECT_GE(result.total_iterations * 2 + seeds, result.total_runs);
}

TEST_F(MvfbTest, DeterministicForFixedSeed) {
  MvfbPlacer a(graph_, fabric_, routing_, rank_, exec_,
               MvfbOptions{3, 3, 64, 99});
  MvfbPlacer b(graph_, fabric_, routing_, rank_, exec_,
               MvfbOptions{3, 3, 64, 99});
  const MvfbResult ra = a.place_and_execute();
  const MvfbResult rb = b.place_and_execute();
  EXPECT_EQ(ra.best_latency, rb.best_latency);
  EXPECT_EQ(ra.total_runs, rb.total_runs);
  EXPECT_EQ(ra.best_initial_placement, rb.best_initial_placement);
}

TEST_F(MvfbTest, MoreSeedsNeverHurt) {
  MvfbPlacer small(graph_, fabric_, routing_, rank_, exec_,
                   MvfbOptions{2, 3, 64, 5});
  MvfbPlacer large(graph_, fabric_, routing_, rank_, exec_,
                   MvfbOptions{10, 3, 64, 5});
  // Same RNG stream: the large run explores a superset of seeds.
  EXPECT_LE(large.place_and_execute().best_latency,
            small.place_and_execute().best_latency);
}

TEST_F(MvfbTest, RejectsBadOptions) {
  EXPECT_THROW(MvfbPlacer(graph_, fabric_, routing_, rank_, exec_,
                          MvfbOptions{0, 3, 64, 1}),
               Error);
  EXPECT_THROW(MvfbPlacer(graph_, fabric_, routing_, rank_, exec_,
                          MvfbOptions{1, 0, 64, 1}),
               Error);
}

TEST_F(MvfbTest, BackwardWinnersReportReversedTraces) {
  // Run many seeds; whether the winner is forward or backward, the reported
  // artefacts must be mutually consistent.
  MvfbPlacer placer(graph_, fabric_, routing_, rank_, exec_,
                    MvfbOptions{8, 3, 64, 3});
  const MvfbResult result = placer.place_and_execute();
  EXPECT_EQ(result.best_trace.gate_count(), graph_.node_count());
  EXPECT_EQ(result.best_latency, result.best_execution.latency);
  if (result.best_is_backward) {
    EXPECT_EQ(result.best_initial_placement,
              result.best_execution.final_placement);
  } else {
    EXPECT_EQ(result.best_initial_placement,
              result.best_execution.initial_placement);
  }
}

TEST_F(MvfbTest, MonteCarloBaselineWorks) {
  const MonteCarloResult result = monte_carlo_place_and_execute(
      graph_, fabric_, routing_, rank_, exec_, 10, 1);
  EXPECT_EQ(result.trials, 10);
  ASSERT_LT(result.best_latency, kInfiniteDuration);
  EXPECT_GE(result.best_latency, graph_.critical_path_latency(exec_.tech));
  const auto violations =
      validate_trace(result.best_execution.trace, graph_, fabric_,
                     result.best_initial_placement, exec_.tech);
  EXPECT_TRUE(violations.empty());
}

TEST_F(MvfbTest, MonteCarloMoreTrialsNeverHurt) {
  const MonteCarloResult few = monte_carlo_place_and_execute(
      graph_, fabric_, routing_, rank_, exec_, 3, 7);
  const MonteCarloResult many = monte_carlo_place_and_execute(
      graph_, fabric_, routing_, rank_, exec_, 30, 7);
  EXPECT_LE(many.best_latency, few.best_latency);
  EXPECT_THROW(monte_carlo_place_and_execute(graph_, fabric_, routing_, rank_,
                                             exec_, 0, 1),
               Error);
}

}  // namespace
}  // namespace qspr
