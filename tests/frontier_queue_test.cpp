// Frontier-queue equivalence: the three SearchArena frontier kinds (binary
// heap, monotone bucket queue, 4-ary heap) must pop the exact same strict
// (f, g, node) order on every workload the searches can generate — which is
// what makes the frontier a pure constant-factor knob with bit-identical
// routing results. Also covers the bucket queue's monotone discipline, the
// generation-wrap reuse path, and the floating-point Bucket->Dary4 fallback.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "fabric/quale_fabric.hpp"
#include "route/router.hpp"
#include "route/search_arena.hpp"

namespace qspr {
namespace {

using Entry = SearchArena<Duration>::HeapEntry;

constexpr FrontierKind kKinds[] = {FrontierKind::Binary, FrontierKind::Bucket,
                                   FrontierKind::Dary4};

/// Drains `arena`'s forward frontier into a vector.
std::vector<Entry> drain(SearchArena<Duration>& arena) {
  std::vector<Entry> popped;
  while (!arena.heap_empty()) popped.push_back(arena.heap_pop());
  return popped;
}

void expect_same_entries(const std::vector<Entry>& a,
                         const std::vector<Entry>& b, const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].f, b[i].f) << label << " pop " << i;
    EXPECT_EQ(a[i].g, b[i].g) << label << " pop " << i;
    EXPECT_EQ(a[i].node, b[i].node) << label << " pop " << i;
  }
}

TEST(FrontierQueueTest, AllKindsPopIdenticalOrderOnAdversarialTies) {
  // Heavy equal-f and equal-(f, g) collisions: the whole batch shares three
  // f values and repeats g values, so only the (f, g, node) tie-break can
  // order it. Entries are pairwise distinct, exactly like real pushes
  // (strict dist improvement), so the order is a strict total order.
  std::vector<Entry> batch;
  int node = 0;
  for (const Duration f : {40, 20, 30}) {
    for (const Duration g : {7, 3, 5, 3 + 14, 7 + 14}) {
      batch.push_back({f, g, RouteNodeId::from_index(node++)});
    }
  }
  // Same multiset in a different push order must not matter either.
  std::vector<Entry> reversed(batch.rbegin(), batch.rend());

  std::vector<std::vector<Entry>> popped;
  for (const FrontierKind kind : kKinds) {
    for (const std::vector<Entry>& order : {batch, reversed}) {
      SearchArena<Duration> arena;
      arena.set_frontier(kind);
      arena.begin(batch.size());
      for (const Entry& e : order) arena.heap_push(e.f, e.g, e.node);
      popped.push_back(drain(arena));
    }
  }
  for (std::size_t i = 0; i + 1 < popped.size(); ++i) {
    expect_same_entries(popped[i], popped[i + 1], "tie batch");
  }
  // And the shared order actually is the sorted strict (f, g, node) order.
  for (std::size_t i = 0; i + 1 < popped[0].size(); ++i) {
    EXPECT_TRUE(popped[0][i + 1] > popped[0][i]) << "pop " << i;
  }
}

TEST(FrontierQueueTest, MonotoneInterleavedWorkloadMatchesAcrossKinds) {
  // Dijkstra-shaped interleaving: each pop may trigger pushes whose keys are
  // bounded below by the *popped* key (not by each other) — including pushes
  // after the frontier transiently drains mid-expansion, the case that
  // constrains the bucket queue's cursor discipline.
  std::vector<std::vector<Entry>> popped;
  for (const FrontierKind kind : kKinds) {
    SearchArena<Duration> arena;
    arena.set_frontier(kind);
    arena.begin(4096);
    std::uint64_t lcg = 12345;
    const auto next = [&lcg](std::uint64_t bound) {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      return (lcg >> 33) % bound;
    };
    int node = 0;
    arena.heap_push(0, 0, RouteNodeId::from_index(node++));
    std::vector<Entry> sequence;
    while (!arena.heap_empty() && node < 4000) {
      const Entry top = arena.heap_pop();
      sequence.push_back(top);
      // 0-3 children pushed immediately, each at f >= the *popped* f — the
      // Dijkstra discipline. With branching often 0 the frontier regularly
      // drains mid-run and refills from the last pop, the case that
      // constrains the bucket queue's cursor handling.
      std::uint64_t children = next(4);
      // Whenever the frontier fully drains, refill from the popped key —
      // the drain-refill case that pins the bucket cursor's floor to the
      // last *popped* key rather than to earlier sibling pushes.
      if (arena.heap_empty() && children == 0) children = 1;
      for (std::uint64_t c = 0; c < children; ++c) {
        const Duration f = top.f + static_cast<Duration>(next(12));
        const Duration g = f - static_cast<Duration>(next(5));
        arena.heap_push(f, g, RouteNodeId::from_index(node++));
      }
    }
    while (!arena.heap_empty()) sequence.push_back(arena.heap_pop());
    popped.push_back(std::move(sequence));
  }
  ASSERT_GT(popped[0].size(), 1000u) << "workload died early; reseed the LCG";
  expect_same_entries(popped[0], popped[1], "binary vs bucket");
  expect_same_entries(popped[0], popped[2], "binary vs dary4");
  for (std::size_t i = 0; i + 1 < popped[0].size(); ++i) {
    EXPECT_LE(popped[0][i].f, popped[0][i + 1].f) << "monotone pop " << i;
  }
}

TEST(FrontierQueueTest, RouterPathsIdenticalAcrossKinds) {
  // End-to-end: the integer-cost Router must return byte-identical paths and
  // costs under every frontier kind (the fuzz differential asserts the same
  // through the whole mapper; this is the focused single-query version).
  const Fabric fabric = make_quale_fabric({3, 3, 4});
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  const Router router(graph, params);
  CongestionState congestion(fabric.segment_count(), fabric.junction_count());
  const auto traps = fabric.traps_by_distance(fabric.center());

  for (std::size_t i = 0; i + 1 < std::min<std::size_t>(traps.size(), 16);
       ++i) {
    std::vector<RoutedPath> paths;
    std::vector<Duration> costs;
    for (const FrontierKind kind : kKinds) {
      SearchArena<Duration> arena;
      arena.set_frontier(kind);
      Duration cost = 0;
      const auto path = router.route_trap_to_trap(
          traps[i], traps[i + 1], congestion, arena, &cost);
      ASSERT_TRUE(path.has_value()) << to_string(kind);
      paths.push_back(*path);
      costs.push_back(cost);
    }
    EXPECT_EQ(paths[0].nodes, paths[1].nodes) << "bucket, query " << i;
    EXPECT_EQ(paths[0].nodes, paths[2].nodes) << "dary4, query " << i;
    EXPECT_EQ(costs[0], costs[1]) << "query " << i;
    EXPECT_EQ(costs[0], costs[2]) << "query " << i;
  }
}

TEST(FrontierQueueTest, ForcedKindOverrideAppliesAtNextBegin) {
  SearchArena<Duration> arena;
  force_frontier_kind(FrontierKind::Binary);
  arena.begin(8);
  EXPECT_EQ(arena.frontier(), FrontierKind::Binary);
  force_frontier_kind(FrontierKind::Dary4);
  arena.begin(8);
  EXPECT_EQ(arena.frontier(), FrontierKind::Dary4);
  clear_frontier_kind_override();
  arena.begin(8);  // back to the integer-cost default
  EXPECT_EQ(arena.frontier(), FrontierKind::Bucket);
  // A pinned arena stops consulting the global override entirely.
  force_frontier_kind(FrontierKind::Binary);
  arena.set_frontier(FrontierKind::Bucket);
  arena.begin(8);
  EXPECT_EQ(arena.frontier(), FrontierKind::Bucket);
  clear_frontier_kind_override();
}

TEST(FrontierQueueTest, BucketOnFloatingPointArenaResolvesToDary4) {
  // Bucket indexing needs integer keys; a double arena silently falls back.
  SearchArena<double> arena;
  arena.set_frontier(FrontierKind::Bucket);
  EXPECT_EQ(arena.frontier(), FrontierKind::Dary4);
  arena.begin(8);
  arena.heap_push(1.5, 1.5, RouteNodeId::from_index(0));
  arena.heap_push(0.5, 0.5, RouteNodeId::from_index(1));
  EXPECT_EQ(arena.heap_pop().node, RouteNodeId::from_index(1));
}

TEST(FrontierQueueTest, GenerationWrapReuseStaysCorrect) {
  // Jump the generation counter to just below the 31-bit wrap, run a query,
  // wrap, and run it again: state stamped before the wipe must not leak into
  // the post-wrap search.
  const Fabric fabric = make_quale_fabric({2, 2, 4});
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  const Router router(graph, params);
  CongestionState congestion(fabric.segment_count(), fabric.junction_count());
  const auto traps = fabric.traps_by_distance(fabric.center());
  ASSERT_GE(traps.size(), 2u);

  SearchArena<Duration> arena;
  Duration fresh_cost = 0;
  const auto fresh = router.route_trap_to_trap(
      traps.front(), traps.back(), congestion, arena, &fresh_cost);
  ASSERT_TRUE(fresh.has_value());

  arena.debug_set_generation((1u << 31) - 2);
  Duration near_wrap_cost = 0;
  const auto near_wrap = router.route_trap_to_trap(
      traps.front(), traps.back(), congestion, arena, &near_wrap_cost);
  ASSERT_TRUE(near_wrap.has_value());
  EXPECT_EQ(near_wrap->nodes, fresh->nodes);
  EXPECT_EQ(near_wrap_cost, fresh_cost);
  EXPECT_EQ(arena.debug_generation(), (1u << 31) - 1);

  // The next begin hits the limit, wipes the stamps, and restarts at 1.
  Duration wrapped_cost = 0;
  const auto wrapped = router.route_trap_to_trap(
      traps.front(), traps.back(), congestion, arena, &wrapped_cost);
  ASSERT_TRUE(wrapped.has_value());
  EXPECT_EQ(arena.debug_generation(), 1u);
  EXPECT_EQ(wrapped->nodes, fresh->nodes);
  EXPECT_EQ(wrapped_cost, fresh_cost);
}

}  // namespace
}  // namespace qspr
