// Tests for the PathFinder negotiated-congestion router (QUALE's routing
// substrate, paper §I ref. [3]).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "fabric/quale_fabric.hpp"
#include "fabric/text_io.hpp"
#include "route/pathfinder.hpp"

namespace qspr {
namespace {

class PathFinderTest : public ::testing::Test {
 protected:
  PathFinderTest() : fabric_(make_quale_fabric({3, 3, 4})), graph_(fabric_) {}

  TrapId trap_at(int row, int col) const {
    const TrapId id = fabric_.trap_at({row, col});
    EXPECT_TRUE(id.is_valid());
    return id;
  }

  Fabric fabric_;
  RoutingGraph graph_;
  TechnologyParams params_;
};

TEST_F(PathFinderTest, SingleNetRoutesDirectly) {
  const PathFinderResult result = route_nets_negotiated(
      graph_, params_, {{trap_at(1, 1), trap_at(1, 3)}});
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations_used, 1);
  ASSERT_EQ(result.paths.size(), 1u);
  EXPECT_EQ(result.paths[0].total_delay(), 24);  // same as the greedy router
}

TEST_F(PathFinderTest, EmptyAndTrivialNets) {
  const PathFinderResult empty = route_nets_negotiated(graph_, params_, {});
  EXPECT_TRUE(empty.converged);
  EXPECT_EQ(empty.total_delay, 0);

  const PathFinderResult self = route_nets_negotiated(
      graph_, params_, {{trap_at(1, 1), trap_at(1, 1)}});
  EXPECT_TRUE(self.converged);
  EXPECT_TRUE(self.paths[0].empty());
}

TEST_F(PathFinderTest, NegotiatesContendedChannels) {
  // Three nets all crossing the fabric left-to-right along the same row of
  // traps: capacity 1 forces them onto distinct corridors.
  TechnologyParams strict = params_;
  strict.channel_capacity = 1;
  strict.junction_capacity = 1;
  const std::vector<NetRequest> nets = {
      {trap_at(1, 1), trap_at(1, 7)},
      {trap_at(3, 1), trap_at(3, 7)},
      {trap_at(5, 1), trap_at(5, 7)},
  };
  const PathFinderResult result =
      route_nets_negotiated(graph_, strict, nets);
  EXPECT_TRUE(result.converged);

  // No channel segment is used by more than one net.
  std::map<std::int32_t, int> segment_users;
  for (const RoutedPath& path : result.paths) {
    std::set<std::int32_t> mine;
    for (const ResourceUse& use : path.resource_uses) {
      if (use.resource.kind == ResourceRef::Kind::Segment) {
        mine.insert(use.resource.index);
      }
    }
    for (const std::int32_t segment : mine) ++segment_users[segment];
  }
  for (const auto& [segment, users] : segment_users) {
    EXPECT_LE(users, 1) << "segment " << segment;
  }
}

TEST_F(PathFinderTest, ConvergedSolutionsRespectCapacityTwo) {
  // Six simultaneous crossing nets with the paper's capacity 2, on a fabric
  // with enough corridors that a legal solution exists.
  const Fabric fabric = make_quale_fabric({4, 4, 4});
  const RoutingGraph graph(fabric);
  std::vector<NetRequest> nets;
  for (int i = 0; i < 3; ++i) {
    nets.push_back(
        {fabric.trap_at({1, 1 + 4 * i}), fabric.trap_at({11, 11 - 4 * i})});
    nets.push_back(
        {fabric.trap_at({11, 1 + 4 * i}), fabric.trap_at({1, 11 - 4 * i})});
  }
  const PathFinderResult result = route_nets_negotiated(graph, params_, nets);
  EXPECT_TRUE(result.converged);
  std::map<std::int32_t, int> segment_users;
  for (const RoutedPath& path : result.paths) {
    std::set<std::int32_t> mine;
    for (const ResourceUse& use : path.resource_uses) {
      if (use.resource.kind == ResourceRef::Kind::Segment) {
        mine.insert(use.resource.index);
      }
    }
    for (const std::int32_t segment : mine) ++segment_users[segment];
  }
  for (const auto& [segment, users] : segment_users) {
    EXPECT_LE(users, params_.channel_capacity) << "segment " << segment;
  }
}

TEST_F(PathFinderTest, ReportsResidualOveruseWhenInfeasible) {
  // The same crossing pattern on the tiny 3x3-junction fabric saturates the
  // corridors (~100% of total capacity): PathFinder must terminate and
  // report the residual over-use instead of spinning.
  std::vector<NetRequest> nets;
  for (int i = 0; i < 3; ++i) {
    nets.push_back({trap_at(1, 1 + 2 * i), trap_at(7, 7 - 2 * i)});
    nets.push_back({trap_at(7, 1 + 2 * i), trap_at(1, 7 - 2 * i)});
  }
  PathFinderOptions options;
  options.max_iterations = 15;
  const PathFinderResult result =
      route_nets_negotiated(graph_, params_, nets, options);
  // The adaptive schedule may stop before the cap (stagnation / structural
  // floor) — the contract is an honest residual report, not cap burning.
  EXPECT_LE(result.iterations_used, 15);
  if (!result.converged) {
    EXPECT_GT(result.overused_resources, 0);
    EXPECT_GT(result.max_overuse, 0);
    EXPECT_GE(result.total_excess, result.min_feasible_excess);
  }
  EXPECT_GT(result.total_delay, 0);

  // The classic schedule burns the full cap on this saturated instance.
  PathFinderOptions classic = options;
  classic.adaptive_schedule = false;
  const PathFinderResult capped =
      route_nets_negotiated(graph_, params_, nets, classic);
  EXPECT_EQ(capped.iterations_used, 15);
}

TEST_F(PathFinderTest, ReportsSearchAndOveruseCounters) {
  const PathFinderResult result = route_nets_negotiated(
      graph_, params_, {{trap_at(1, 1), trap_at(1, 3)}});
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.max_overuse, 0);
  EXPECT_EQ(result.searches_performed, 1);

  PathFinderOptions full;
  full.partial_ripup = false;
  const std::vector<NetRequest> nets = {
      {trap_at(1, 1), trap_at(1, 7)},
      {trap_at(1, 1), trap_at(1, 7)},
      {trap_at(1, 1), trap_at(1, 7)},
  };
  const PathFinderResult swept =
      route_nets_negotiated(graph_, params_, nets, full);
  // Full rip-up re-routes every net every iteration by definition.
  EXPECT_EQ(swept.searches_performed,
            static_cast<long long>(nets.size()) * swept.iterations_used);
}

TEST(PathFinderTest2, StructuralFloorSumsDisjointOverdemandedTraps) {
  // Two far-apart traps each carry endpoint demand 6 against port capacity
  // 4: their port sets are disjoint, so the provable excess floor is the
  // sum (2 + 2), not the single-trap maximum — and the residual excess can
  // never undercut it.
  const Fabric fabric = make_quale_fabric();  // the 45x85 paper fabric
  const RoutingGraph graph(fabric);
  const auto& traps = fabric.traps();
  std::vector<NetRequest> nets;
  const TrapId a = traps.front().id;
  const TrapId b = traps.back().id;
  for (int i = 0; i < 6; ++i) {
    nets.push_back({a, traps[10 + static_cast<std::size_t>(i)].id});
    nets.push_back({b, traps[traps.size() - 10 - static_cast<std::size_t>(i)].id});
  }
  const PathFinderResult result =
      route_nets_negotiated(graph, TechnologyParams{}, nets);
  EXPECT_EQ(result.min_feasible_excess, 4);
  EXPECT_FALSE(result.converged);
  EXPECT_GE(result.total_excess, result.min_feasible_excess);
}

TEST(CongestionLedgerTest, TracksOveruseDeltaSetIncrementally) {
  CongestionLedger ledger(/*segment_count=*/4, /*junction_count=*/2,
                          /*segment_capacity=*/2, /*junction_capacity=*/1);
  ledger.begin_iteration(/*present_factor=*/0.6, /*track_floor=*/false);
  EXPECT_EQ(ledger.size(), 6u);
  EXPECT_EQ(ledger.index_of(ResourceRef::segment(SegmentId(3))), 3u);
  EXPECT_EQ(ledger.index_of(ResourceRef::junction(JunctionId(1))), 5u);

  ledger.acquire(0);
  ledger.acquire(0);
  EXPECT_FALSE(ledger.is_overused(0));  // at capacity, not over
  ledger.acquire(0);
  EXPECT_TRUE(ledger.is_overused(0));
  ledger.acquire(4);
  ledger.acquire(4);  // junction capacity 1 -> over
  EXPECT_TRUE(ledger.is_overused(4));
  EXPECT_EQ(ledger.overused().size(), 2u);

  const auto summary = ledger.charge_history(0.25);
  EXPECT_EQ(summary.overused, 2);
  EXPECT_EQ(summary.max_overuse, 1);
  EXPECT_DOUBLE_EQ(ledger.history(0), 0.25);
  EXPECT_DOUBLE_EQ(ledger.history(1), 0.0);

  ledger.release(0);
  EXPECT_FALSE(ledger.is_overused(0));
  EXPECT_EQ(ledger.overused().size(), 1u);
  EXPECT_EQ(ledger.overused().front(), 4u);
}

TEST(CongestionLedgerTest, PenaltyFloorIsAdmissibleAndIterationScoped) {
  CongestionLedger ledger(/*segment_count=*/2, /*junction_count=*/0,
                          /*segment_capacity=*/1, /*junction_capacity=*/1);
  ledger.begin_iteration(0.6, /*track_floor=*/true);
  EXPECT_DOUBLE_EQ(ledger.penalty_floor(), 1.0);  // empty fabric state

  // Saturate both segments and charge history; the next iteration's floor
  // reflects the cheapest possible entry.
  ledger.acquire(0);
  ledger.acquire(0);
  ledger.acquire(1);
  ledger.charge_history(0.5);  // only segment 0 is over capacity
  ledger.begin_iteration(0.6, true);
  // Segment 1 is at capacity: entering costs (1 + 1*0.6) * (1 + 0) = 1.6.
  // Segment 0 is over: (1 + 2*0.6) * 1.5 = 3.3. Floor = 1.6.
  EXPECT_DOUBLE_EQ(ledger.penalty_floor(), 1.6);
  for (const std::size_t index : {0u, 1u}) {
    EXPECT_LE(ledger.penalty_floor(), ledger.entering_penalty(index));
  }

  // Releases within the iteration may only lower the floor (admissibility
  // under rip-up), never raise it.
  ledger.release(1);
  EXPECT_DOUBLE_EQ(ledger.penalty_floor(), 1.0);
  ledger.acquire(1);
  EXPECT_DOUBLE_EQ(ledger.penalty_floor(), 1.0);
}

TEST_F(PathFinderTest, TurnUnawareModeStillConverges) {
  PathFinderOptions options;
  options.turn_aware = false;
  const PathFinderResult result = route_nets_negotiated(
      graph_, params_,
      {{trap_at(1, 1), trap_at(7, 7)}, {trap_at(7, 1), trap_at(1, 7)}},
      options);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.total_delay, 0);
}

TEST(PathFinderDisconnected, ThrowsRoutingError) {
  const Fabric fabric = parse_fabric(
      "J---J.J---J\n"
      "|T..|.|..T|\n"
      "J---J.J---J\n");
  const RoutingGraph graph(fabric);
  EXPECT_THROW(
      route_nets_negotiated(graph, TechnologyParams{},
                            {{fabric.traps()[0].id, fabric.traps()[1].id}}),
      RoutingError);
}

TEST(PathFinderOptionsValidation, RejectsZeroIterations) {
  const Fabric fabric = make_quale_fabric({2, 2, 4});
  const RoutingGraph graph(fabric);
  PathFinderOptions options;
  options.max_iterations = 0;
  EXPECT_THROW(route_nets_negotiated(graph, TechnologyParams{},
                                     {{fabric.traps()[0].id,
                                       fabric.traps()[1].id}},
                                     options),
               Error);
}

}  // namespace
}  // namespace qspr
