// Tests for the PathFinder negotiated-congestion router (QUALE's routing
// substrate, paper §I ref. [3]).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "fabric/quale_fabric.hpp"
#include "fabric/text_io.hpp"
#include "route/pathfinder.hpp"

namespace qspr {
namespace {

class PathFinderTest : public ::testing::Test {
 protected:
  PathFinderTest() : fabric_(make_quale_fabric({3, 3, 4})), graph_(fabric_) {}

  TrapId trap_at(int row, int col) const {
    const TrapId id = fabric_.trap_at({row, col});
    EXPECT_TRUE(id.is_valid());
    return id;
  }

  Fabric fabric_;
  RoutingGraph graph_;
  TechnologyParams params_;
};

TEST_F(PathFinderTest, SingleNetRoutesDirectly) {
  const PathFinderResult result = route_nets_negotiated(
      graph_, params_, {{trap_at(1, 1), trap_at(1, 3)}});
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 1);
  ASSERT_EQ(result.paths.size(), 1u);
  EXPECT_EQ(result.paths[0].total_delay(), 24);  // same as the greedy router
}

TEST_F(PathFinderTest, EmptyAndTrivialNets) {
  const PathFinderResult empty = route_nets_negotiated(graph_, params_, {});
  EXPECT_TRUE(empty.converged);
  EXPECT_EQ(empty.total_delay, 0);

  const PathFinderResult self = route_nets_negotiated(
      graph_, params_, {{trap_at(1, 1), trap_at(1, 1)}});
  EXPECT_TRUE(self.converged);
  EXPECT_TRUE(self.paths[0].empty());
}

TEST_F(PathFinderTest, NegotiatesContendedChannels) {
  // Three nets all crossing the fabric left-to-right along the same row of
  // traps: capacity 1 forces them onto distinct corridors.
  TechnologyParams strict = params_;
  strict.channel_capacity = 1;
  strict.junction_capacity = 1;
  const std::vector<NetRequest> nets = {
      {trap_at(1, 1), trap_at(1, 7)},
      {trap_at(3, 1), trap_at(3, 7)},
      {trap_at(5, 1), trap_at(5, 7)},
  };
  const PathFinderResult result =
      route_nets_negotiated(graph_, strict, nets);
  EXPECT_TRUE(result.converged);

  // No channel segment is used by more than one net.
  std::map<std::int32_t, int> segment_users;
  for (const RoutedPath& path : result.paths) {
    std::set<std::int32_t> mine;
    for (const ResourceUse& use : path.resource_uses) {
      if (use.resource.kind == ResourceRef::Kind::Segment) {
        mine.insert(use.resource.index);
      }
    }
    for (const std::int32_t segment : mine) ++segment_users[segment];
  }
  for (const auto& [segment, users] : segment_users) {
    EXPECT_LE(users, 1) << "segment " << segment;
  }
}

TEST_F(PathFinderTest, ConvergedSolutionsRespectCapacityTwo) {
  // Six simultaneous crossing nets with the paper's capacity 2, on a fabric
  // with enough corridors that a legal solution exists.
  const Fabric fabric = make_quale_fabric({4, 4, 4});
  const RoutingGraph graph(fabric);
  std::vector<NetRequest> nets;
  for (int i = 0; i < 3; ++i) {
    nets.push_back(
        {fabric.trap_at({1, 1 + 4 * i}), fabric.trap_at({11, 11 - 4 * i})});
    nets.push_back(
        {fabric.trap_at({11, 1 + 4 * i}), fabric.trap_at({1, 11 - 4 * i})});
  }
  const PathFinderResult result = route_nets_negotiated(graph, params_, nets);
  EXPECT_TRUE(result.converged);
  std::map<std::int32_t, int> segment_users;
  for (const RoutedPath& path : result.paths) {
    std::set<std::int32_t> mine;
    for (const ResourceUse& use : path.resource_uses) {
      if (use.resource.kind == ResourceRef::Kind::Segment) {
        mine.insert(use.resource.index);
      }
    }
    for (const std::int32_t segment : mine) ++segment_users[segment];
  }
  for (const auto& [segment, users] : segment_users) {
    EXPECT_LE(users, params_.channel_capacity) << "segment " << segment;
  }
}

TEST_F(PathFinderTest, ReportsResidualOveruseWhenInfeasible) {
  // The same crossing pattern on the tiny 3x3-junction fabric saturates the
  // corridors (~100% of total capacity): PathFinder must terminate and
  // report the residual over-use instead of spinning.
  std::vector<NetRequest> nets;
  for (int i = 0; i < 3; ++i) {
    nets.push_back({trap_at(1, 1 + 2 * i), trap_at(7, 7 - 2 * i)});
    nets.push_back({trap_at(7, 1 + 2 * i), trap_at(1, 7 - 2 * i)});
  }
  PathFinderOptions options;
  options.max_iterations = 15;
  const PathFinderResult result =
      route_nets_negotiated(graph_, params_, nets, options);
  EXPECT_EQ(result.iterations, 15);
  if (!result.converged) {
    EXPECT_GT(result.overused_resources, 0);
  }
  EXPECT_GT(result.total_delay, 0);
}

TEST_F(PathFinderTest, TurnUnawareModeStillConverges) {
  PathFinderOptions options;
  options.turn_aware = false;
  const PathFinderResult result = route_nets_negotiated(
      graph_, params_,
      {{trap_at(1, 1), trap_at(7, 7)}, {trap_at(7, 1), trap_at(1, 7)}},
      options);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.total_delay, 0);
}

TEST(PathFinderDisconnected, ThrowsRoutingError) {
  const Fabric fabric = parse_fabric(
      "J---J.J---J\n"
      "|T..|.|..T|\n"
      "J---J.J---J\n");
  const RoutingGraph graph(fabric);
  EXPECT_THROW(
      route_nets_negotiated(graph, TechnologyParams{},
                            {{fabric.traps()[0].id, fabric.traps()[1].id}}),
      RoutingError);
}

TEST(PathFinderOptionsValidation, RejectsZeroIterations) {
  const Fabric fabric = make_quale_fabric({2, 2, 4});
  const RoutingGraph graph(fabric);
  PathFinderOptions options;
  options.max_iterations = 0;
  EXPECT_THROW(route_nets_negotiated(graph, TechnologyParams{},
                                     {{fabric.traps()[0].id,
                                       fabric.traps()[1].id}},
                                     options),
               Error);
}

}  // namespace
}  // namespace qspr
