// qspr_serve session API: open/map/edit/close lifecycle over the wire.
//
// Sessions are the serve-layer face of warm-start incremental remapping: a
// session pins a fabric, remembers the last mapped circuit, and seeds the
// next map from the prior converged result. These tests run a real
// MappingServer in-process (same harness idiom as the fault-injection
// suite) and script byte-level clients against the session wire protocol:
// name minting (standalone "s<N>" vs sharded "s<shard>.<N>"), the exact-
// resubmission result-cache fast path, warm-start observability fields
// (warm_hits / nets_rerouted), one-map-per-session admission, the
// qasm_append contract, and drain behaviour with sessions open.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/time.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "common/json.hpp"
#include "common/net.hpp"
#include "service/request_codec.hpp"
#include "service/serve_loop.hpp"

namespace qspr {
namespace {

constexpr const char* kTinyQasm =
    "QUBIT q0,0\nQUBIT q1,0\nQUBIT q2,0\nH q0\nC-X q0,q1\nC-X q1,q2\n"
    "MEASURE q2\n";

/// In-process daemon under test; destructor drains and joins.
class ServeHarness {
 public:
  explicit ServeHarness(ServeOptions options = {}) {
    options.host = "127.0.0.1";
    options.port = 0;
    server_ = std::make_unique<MappingServer>(std::move(options));
    server_->start();
    thread_ = std::thread([this] { exit_code_ = server_->serve(); });
  }

  ~ServeHarness() { drain_and_join(); }

  [[nodiscard]] int port() const { return server_->port(); }
  [[nodiscard]] MappingServer& server() { return *server_; }

  int drain_and_join() {
    if (thread_.joinable()) {
      server_->request_drain();
      thread_.join();
    }
    return exit_code_;
  }

 private:
  std::unique_ptr<MappingServer> server_;
  std::thread thread_;
  int exit_code_ = -1;
};

/// Blocking scripted client with a receive timeout, so a daemon bug shows
/// up as a test failure instead of a hung suite.
class RawClient {
 public:
  explicit RawClient(int port, int recv_timeout_ms = 30000)
      : fd_(connect_client("127.0.0.1", port)) {
    timeval timeout{};
    timeout.tv_sec = recv_timeout_ms / 1000;
    timeout.tv_usec = (recv_timeout_ms % 1000) * 1000;
    setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  }

  void send_line(std::string_view line) {
    std::string rest = std::string(line) + "\n";
    std::string_view view = rest;
    while (!view.empty()) {
      const IoResult io = write_some(fd_.get(), view);
      ASSERT_NE(io.status, IoStatus::Error) << "client write failed";
      view.remove_prefix(io.bytes);
    }
  }

  std::string recv_line() {
    while (true) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      char chunk[4096];
      const IoResult io = read_some(fd_.get(), chunk, sizeof chunk);
      if (io.status != IoStatus::Ok) return {};  // timeout, EOF, or error
      buffer_.append(chunk, io.bytes);
    }
  }

  JsonValue recv_json() {
    const std::string line = recv_line();
    EXPECT_FALSE(line.empty()) << "no reply before timeout/EOF";
    return line.empty() ? JsonValue() : parse_json(line);
  }

 private:
  FileDescriptor fd_;
  std::string buffer_;
};

std::string session_map(const std::string& id, const std::string& session,
                        const std::string& qasm, bool append = false) {
  JsonWriter json;
  json.begin_object();
  json.field("type", "map");
  json.field("id", id);
  json.field("session", session);
  json.field(append ? "qasm_append" : "qasm", qasm);
  json.field("placer", "mc");
  json.field("m", 4);
  json.field("seed", 1);
  json.end_object();
  return json.str();
}

/// session_open and return the minted name.
std::string open_session(RawClient& client, const std::string& id) {
  client.send_line(R"({"type":"session_open","id":")" + id +
                   R"(","fabric":"paper"})");
  const JsonValue ack = client.recv_json();
  EXPECT_TRUE(ack.bool_or("ok", false));
  EXPECT_TRUE(ack.bool_or("open", false));
  return ack.string_or("session", "");
}

TEST(ServeSession, OpenMapEditCloseLifecycle) {
  ServeHarness harness;
  RawClient client(harness.port());

  const std::string name = open_session(client, "o1");
  EXPECT_EQ(name, "s1");  // standalone daemons mint bare "s<N>" names

  // First map in the session: nothing to warm from, but the reply already
  // carries the incremental-remapping observability fields.
  client.send_line(session_map("m1", name, kTinyQasm));
  const JsonValue first = client.recv_json();
  ASSERT_TRUE(first.bool_or("ok", false));
  EXPECT_EQ(first.string_or("session", ""), name);
  EXPECT_EQ(first.number_or("warm_hits", -1), 0);
  EXPECT_GE(first.number_or("nets_rerouted", -1), 0);

  // Edit via qasm_append: the server assembles prior circuit + suffix and
  // seeds the negotiation from the session's converged prior.
  client.send_line(session_map("m2", name, "C-X q0,q2\n", /*append=*/true));
  const JsonValue second = client.recv_json();
  ASSERT_TRUE(second.bool_or("ok", false));
  EXPECT_EQ(second.string_or("session", ""), name);
  EXPECT_GE(second.number_or("warm_hits", -1), 0);
  // The appended two-qubit gate costs at least one fresh route.
  EXPECT_GE(second.number_or("nets_rerouted", -1), 1);

  client.send_line(R"({"type":"session_close","id":"c1","session":")" + name +
                   R"("})");
  const JsonValue closed = client.recv_json();
  EXPECT_TRUE(closed.bool_or("ok", false));
  EXPECT_FALSE(closed.bool_or("open", true));

  // The name is dead after close.
  client.send_line(session_map("m3", name, kTinyQasm));
  EXPECT_EQ(client.recv_json().string_or("code", ""), "unknown_session");
  EXPECT_EQ(harness.drain_and_join(), 0);
}

TEST(ServeSession, ExactResubmissionServedFromResultCache) {
  ServeHarness harness;
  RawClient client(harness.port());
  const std::string name = open_session(client, "o1");

  client.send_line(session_map("m1", name, kTinyQasm));
  const JsonValue first = client.recv_json();
  ASSERT_TRUE(first.bool_or("ok", false));
  const std::string fp = first.string_or("result_fp", "");
  ASSERT_FALSE(fp.empty());

  // Same circuit, fabric, and options again: the program-level result
  // cache answers without placement or routing. warm_hits reports the full
  // net count, nothing re-routes, and the result is bit-identical
  // (process-stable fingerprint).
  client.send_line(session_map("m2", name, kTinyQasm));
  const JsonValue replay = client.recv_json();
  ASSERT_TRUE(replay.bool_or("ok", false));
  EXPECT_GE(replay.number_or("warm_hits", -1), 1);
  EXPECT_EQ(replay.number_or("nets_rerouted", -1), 0);
  EXPECT_EQ(replay.string_or("result_fp", ""), fp);

  // The hit is visible in the daemon's cache counters.
  client.send_line(R"({"type":"stats","id":"s"})");
  const JsonValue stats_reply = client.recv_json();
  const JsonValue* stats = stats_reply.find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_GE(stats->number_or("result_hits", -1), 1);
  EXPECT_EQ(stats->number_or("open_sessions", -1), 1);
  EXPECT_EQ(harness.drain_and_join(), 0);
}

TEST(ServeSession, UnknownSessionIsAPerRequestError) {
  ServeHarness harness;
  RawClient client(harness.port());

  client.send_line(session_map("m1", "s999", kTinyQasm));
  EXPECT_EQ(client.recv_json().string_or("code", ""), "unknown_session");
  client.send_line(R"({"type":"session_close","id":"c1","session":"s999"})");
  EXPECT_EQ(client.recv_json().string_or("code", ""), "unknown_session");

  // The connection and daemon survive; stateless maps still work.
  client.send_line(session_map("m2", "", kTinyQasm));
  EXPECT_TRUE(client.recv_json().bool_or("ok", false));
  EXPECT_EQ(harness.drain_and_join(), 0);
}

TEST(ServeSession, OneMapInFlightPerSession) {
  // The gate pins the session's first map in flight, so the overlapping
  // second map is refused deterministically — no wall-clock race.
  auto gate = std::make_shared<MapStartGate>();
  ServeOptions options;
  options.mapper_threads = 1;
  options.map_start_gate = gate;
  ServeHarness harness(options);
  RawClient client(harness.port());
  const std::string name = open_session(client, "o1");

  client.send_line(session_map("m1", name, kTinyQasm));
  client.send_line(session_map("m2", name, kTinyQasm));
  const JsonValue busy = client.recv_json();
  EXPECT_EQ(busy.string_or("id", ""), "m2");
  EXPECT_EQ(busy.string_or("code", ""), "session_busy");

  gate->open();
  const JsonValue done = client.recv_json();
  EXPECT_EQ(done.string_or("id", ""), "m1");
  EXPECT_TRUE(done.bool_or("ok", false));

  // The session frees up once its map replies.
  client.send_line(session_map("m3", name, kTinyQasm));
  EXPECT_TRUE(client.recv_json().bool_or("ok", false));
  EXPECT_EQ(harness.drain_and_join(), 0);
}

TEST(ServeSession, QasmAppendNeedsAMappedBaseCircuit) {
  ServeHarness harness;
  RawClient client(harness.port());
  const std::string name = open_session(client, "o1");

  client.send_line(session_map("m1", name, "C-X q0,q1\n", /*append=*/true));
  const JsonValue reply = client.recv_json();
  EXPECT_EQ(reply.string_or("code", ""), "bad_request");

  // Submitting a base circuit first makes the append legal.
  client.send_line(session_map("m2", name, kTinyQasm));
  EXPECT_TRUE(client.recv_json().bool_or("ok", false));
  client.send_line(session_map("m3", name, "C-X q0,q1\n", /*append=*/true));
  EXPECT_TRUE(client.recv_json().bool_or("ok", false));
  EXPECT_EQ(harness.drain_and_join(), 0);
}

TEST(ServeSession, ShardedDaemonsMintShardPrefixedNames) {
  // Sharded workers prefix the shard index so names are unique across a
  // qspr_shard fleet: the supervisor keys session->shard affinity on them.
  ServeOptions options;
  options.shard_id = 2;
  ServeHarness harness(options);
  RawClient client(harness.port());

  EXPECT_EQ(open_session(client, "o1"), "s2.1");
  EXPECT_EQ(open_session(client, "o2"), "s2.2");
  EXPECT_EQ(harness.drain_and_join(), 0);
}

TEST(ServeSession, DrainRefusesNewSessionsAndExitsZeroWithSessionsOpen) {
  // A gated map pins the daemon in the draining state (a drain with nothing
  // in flight goes quiescent and exits immediately), so the refusals below
  // are observed deterministically rather than racing serve()'s return.
  auto gate = std::make_shared<MapStartGate>();
  ServeOptions options;
  options.mapper_threads = 1;
  options.map_start_gate = gate;
  ServeHarness harness(options);
  RawClient client(harness.port());
  const std::string name = open_session(client, "o1");
  client.send_line(session_map("m1", name, kTinyQasm));
  // Make sure the map is admitted before the drain begins.
  client.send_line(R"({"type":"ping","id":"sync"})");
  EXPECT_EQ(client.recv_json().string_or("id", ""), "sync");

  harness.server().request_drain();
  client.send_line(R"({"type":"session_open","id":"o2","fabric":"paper"})");
  const JsonValue refused = client.recv_json();
  EXPECT_FALSE(refused.bool_or("ok", true));
  EXPECT_EQ(refused.string_or("code", ""), "draining");

  // The in-flight session map still completes and reaches the client.
  gate->open();
  const JsonValue done = client.recv_json();
  EXPECT_EQ(done.string_or("id", ""), "m1");
  EXPECT_TRUE(done.bool_or("ok", false));

  // Open sessions never block a clean exit — they die with the process.
  EXPECT_EQ(harness.drain_and_join(), 0);
}

}  // namespace
}  // namespace qspr
