// Warm-start incremental remapping: seeding route_nets_negotiated from a
// prior converged result. Covers the three contracts the serve session API
// depends on: an empty edit is bit-identical to the cold run with zero
// searches, an edited set re-routes only a delta, and a warm run converges
// wherever the cold run does (internal cold-restart fallback).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "fabric/quale_fabric.hpp"
#include "route/pathfinder.hpp"

namespace qspr {
namespace {

class WarmStartTest : public ::testing::Test {
 protected:
  WarmStartTest() : fabric_(make_paper_fabric()), graph_(fabric_) {}

  /// Nets with pairwise-disjoint endpoints near the fabric center: the
  /// contested-but-convergent regime incremental sessions live in.
  std::vector<NetRequest> distinct_nets(int count, std::uint64_t seed) const {
    const auto central = fabric_.traps_by_distance(fabric_.center());
    const std::size_t pool = std::min<std::size_t>(
        central.size(),
        std::max<std::size_t>(128, 2 * static_cast<std::size_t>(count)));
    Rng rng(seed);
    std::vector<TrapId> traps(central.begin(),
                              central.begin() + static_cast<long>(pool));
    for (std::size_t i = traps.size(); i > 1; --i) {
      std::swap(traps[i - 1], traps[rng.uniform_index(i)]);
    }
    std::vector<NetRequest> nets;
    for (int i = 0; i < count; ++i) {
      nets.push_back({traps[2 * static_cast<std::size_t>(i)],
                      traps[2 * static_cast<std::size_t>(i) + 1]});
    }
    return nets;
  }

  /// A converged prior to seed from; the tests require convergence so a
  /// failure here is a test-setup bug, not a regression.
  PathFinderResult converged_prior(const std::vector<NetRequest>& nets) {
    PathFinderResult prior = route_nets_negotiated(graph_, params_, nets);
    EXPECT_TRUE(prior.converged);
    return prior;
  }

  Fabric fabric_;
  RoutingGraph graph_;
  TechnologyParams params_;
};

TEST_F(WarmStartTest, EmptyEditIsBitIdenticalWithZeroSearches) {
  const std::vector<NetRequest> nets = distinct_nets(12, 11);
  const PathFinderResult prior = converged_prior(nets);

  const WarmStartSeed seed = make_warm_seed(
      nets, prior.paths, nets, prior.history, prior.final_present_factor);
  PathFinderOptions options;
  options.warm = &seed;
  const PathFinderResult warm =
      route_nets_negotiated(graph_, params_, nets, options);

  EXPECT_TRUE(warm.converged);
  EXPECT_EQ(warm.searches_performed, 0);
  EXPECT_EQ(warm.iterations_used, 1);
  EXPECT_EQ(warm.warm_seeded, static_cast<int>(nets.size()));
  EXPECT_EQ(warm.warm_kept, static_cast<int>(nets.size()));
  EXPECT_FALSE(warm.warm_restarted);
  EXPECT_EQ(warm.total_delay, prior.total_delay);
  ASSERT_EQ(warm.paths.size(), prior.paths.size());
  for (std::size_t i = 0; i < prior.paths.size(); ++i) {
    EXPECT_EQ(warm.paths[i].nodes, prior.paths[i].nodes) << "net " << i;
  }
}

TEST_F(WarmStartTest, EmptyEditIdentityHoldsWithoutNegotiationState) {
  // The d = 0 identity must not depend on the optional history/present
  // factor: with every net clean the worklist is empty and neither is ever
  // consulted.
  const std::vector<NetRequest> nets = distinct_nets(12, 11);
  const PathFinderResult prior = converged_prior(nets);

  const WarmStartSeed seed = make_warm_seed(nets, prior.paths, nets);
  PathFinderOptions options;
  options.warm = &seed;
  const PathFinderResult warm =
      route_nets_negotiated(graph_, params_, nets, options);

  EXPECT_TRUE(warm.converged);
  EXPECT_EQ(warm.searches_performed, 0);
  EXPECT_EQ(warm.warm_kept, static_cast<int>(nets.size()));
  EXPECT_EQ(warm.total_delay, prior.total_delay);
}

TEST_F(WarmStartTest, EditedNetReroutesOnlyADelta) {
  const std::vector<NetRequest> base = distinct_nets(16, 11);
  const PathFinderResult prior = converged_prior(base);

  // Replace the last net with fresh endpoints (a one-instruction edit).
  std::vector<NetRequest> edited = base;
  const std::vector<NetRequest> replacements = distinct_nets(16, 97);
  edited.back() = replacements.front();
  ASSERT_FALSE(edited.back().from == base.back().from &&
               edited.back().to == base.back().to);

  const PathFinderResult cold =
      route_nets_negotiated(graph_, params_, edited);
  const WarmStartSeed seed = make_warm_seed(
      base, prior.paths, edited, prior.history, prior.final_present_factor);
  PathFinderOptions options;
  options.warm = &seed;
  const PathFinderResult warm =
      route_nets_negotiated(graph_, params_, edited, options);

  // Every net but the edited one enters pre-routed; the warm negotiation
  // must converge (cold does) and do materially less search work.
  EXPECT_EQ(warm.warm_seeded, static_cast<int>(base.size()) - 1);
  ASSERT_TRUE(cold.converged);
  EXPECT_TRUE(warm.converged);
  EXPECT_LT(warm.searches_performed, cold.searches_performed);
}

TEST_F(WarmStartTest, SeedIgnoredWithoutPartialRipup) {
  const std::vector<NetRequest> nets = distinct_nets(8, 11);
  const PathFinderResult prior = converged_prior(nets);

  const WarmStartSeed seed = make_warm_seed(
      nets, prior.paths, nets, prior.history, prior.final_present_factor);
  PathFinderOptions options;
  options.warm = &seed;
  options.partial_ripup = false;
  const PathFinderResult warm =
      route_nets_negotiated(graph_, params_, nets, options);

  EXPECT_EQ(warm.warm_seeded, 0);
  EXPECT_GT(warm.searches_performed, 0);
}

TEST_F(WarmStartTest, MisalignedSeedIsIgnored) {
  const std::vector<NetRequest> nets = distinct_nets(8, 11);
  const PathFinderResult prior = converged_prior(nets);

  WarmStartSeed seed;
  seed.paths = prior.paths;
  seed.paths.pop_back();  // size mismatch: not aligned to the nets vector
  PathFinderOptions options;
  options.warm = &seed;
  const PathFinderResult warm =
      route_nets_negotiated(graph_, params_, nets, options);

  EXPECT_EQ(warm.warm_seeded, 0);
  EXPECT_TRUE(warm.converged);
}

TEST_F(WarmStartTest, ResultExportsNegotiationState) {
  const std::vector<NetRequest> nets = distinct_nets(8, 11);
  const PathFinderResult result = converged_prior(nets);

  EXPECT_EQ(result.history.size(),
            fabric_.segment_count() + fabric_.junction_count());
  EXPECT_GE(result.final_present_factor, 0.6);
  // History entries are non-negative accumulated penalties.
  for (const double h : result.history) EXPECT_GE(h, 0.0);
}

TEST_F(WarmStartTest, UnconvergedWarmAttemptRestartsColdBitIdentically) {
  // 24 nets over the 128 central traps is past the incremental regime: a
  // one-net edit shifts the equilibrium globally, no local negotiation
  // absorbs it, and the warm attempt fails to converge. The internal
  // fallback must then rerun cold and return exactly the cold run's paths.
  const std::vector<NetRequest> base = distinct_nets(24, 11);
  const PathFinderResult prior = converged_prior(base);

  std::vector<NetRequest> edited = base;
  const std::vector<NetRequest> replacements = distinct_nets(24, 97);
  edited.back() = replacements.front();

  const PathFinderResult cold =
      route_nets_negotiated(graph_, params_, edited);
  ASSERT_TRUE(cold.converged);

  const WarmStartSeed seed = make_warm_seed(
      base, prior.paths, edited, prior.history, prior.final_present_factor);
  PathFinderOptions warm_options;
  warm_options.warm = &seed;
  const PathFinderResult warm =
      route_nets_negotiated(graph_, params_, edited, warm_options);

  EXPECT_TRUE(warm.converged);
  if (!warm.warm_restarted) {
    GTEST_SKIP() << "negotiation dynamics changed and the warm attempt now "
                    "converges on its own; the fallback path needs a new "
                    "adversarial instance";
  }
  EXPECT_EQ(warm.warm_kept, 0);
  ASSERT_EQ(warm.paths.size(), cold.paths.size());
  for (std::size_t i = 0; i < cold.paths.size(); ++i) {
    EXPECT_EQ(warm.paths[i].nodes, cold.paths[i].nodes) << "net " << i;
  }
  EXPECT_EQ(warm.total_delay, cold.total_delay);
  // The abandoned attempt's work stays visible in the counters.
  EXPECT_GE(warm.searches_performed, cold.searches_performed);
}

TEST_F(WarmStartTest, SeedFromPriorSurvivesNetReordering) {
  // make_warm_seed matches by endpoints, not by index: a permuted net list
  // still seeds every net.
  const std::vector<NetRequest> base = distinct_nets(10, 11);
  const PathFinderResult prior = converged_prior(base);

  std::vector<NetRequest> permuted(base.rbegin(), base.rend());
  const WarmStartSeed seed = make_warm_seed(
      base, prior.paths, permuted, prior.history, prior.final_present_factor);
  for (std::size_t i = 0; i < permuted.size(); ++i) {
    ASSERT_FALSE(seed.paths[i].nodes.empty());
    EXPECT_EQ(seed.paths[i].nodes.front(),
              graph_.trap_node(permuted[i].from));
    EXPECT_EQ(seed.paths[i].nodes.back(), graph_.trap_node(permuted[i].to));
  }

  PathFinderOptions options;
  options.warm = &seed;
  const PathFinderResult warm =
      route_nets_negotiated(graph_, params_, permuted, options);
  EXPECT_TRUE(warm.converged);
  EXPECT_EQ(warm.searches_performed, 0);
  EXPECT_EQ(warm.warm_kept, static_cast<int>(permuted.size()));
}

}  // namespace
}  // namespace qspr
