// Unit tests for center / random-center placement and the Placement type.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "core/placer.hpp"
#include "fabric/quale_fabric.hpp"

namespace qspr {
namespace {

TEST(Placement, SetAndGet) {
  Placement placement(3);
  EXPECT_EQ(placement.qubit_count(), 3u);
  EXPECT_FALSE(placement.is_complete());
  placement.set(QubitId(0), TrapId(5));
  placement.set(QubitId(1), TrapId(6));
  placement.set(QubitId(2), TrapId(7));
  EXPECT_TRUE(placement.is_complete());
  EXPECT_EQ(placement.trap_of(QubitId(1)), TrapId(6));
  EXPECT_THROW(placement.set(QubitId(9), TrapId(0)), Error);
  EXPECT_THROW(static_cast<void>(placement.trap_of(QubitId(9))), Error);
}

TEST(Placement, ValidateChecksTrapsAndCapacity) {
  const Fabric fabric = make_quale_fabric({2, 2, 4});  // 4 traps
  Placement placement(2);
  placement.set(QubitId(0), fabric.traps()[0].id);
  placement.set(QubitId(1), fabric.traps()[1].id);
  EXPECT_NO_THROW(placement.validate(fabric));

  Placement shared(2);
  shared.set(QubitId(0), fabric.traps()[0].id);
  shared.set(QubitId(1), fabric.traps()[0].id);
  EXPECT_THROW(shared.validate(fabric, 1), ValidationError);
  EXPECT_NO_THROW(shared.validate(fabric, 2));

  Placement bogus(1);
  bogus.set(QubitId(0), TrapId(99));
  EXPECT_THROW(bogus.validate(fabric), ValidationError);
  Placement incomplete(1);
  EXPECT_THROW(incomplete.validate(fabric), ValidationError);
}

TEST(CenterPlacer, PlacesNearestToCenterInOrder) {
  const Fabric fabric = make_paper_fabric();
  const std::size_t qubits = 9;
  const Placement placement = center_placement(fabric, qubits);
  placement.validate(fabric);

  const auto order = fabric.traps_by_distance(fabric.center());
  for (std::size_t q = 0; q < qubits; ++q) {
    EXPECT_EQ(placement.trap_of(QubitId::from_index(q)), order[q]);
  }
}

TEST(CenterPlacer, Deterministic) {
  const Fabric fabric = make_paper_fabric();
  EXPECT_EQ(center_placement(fabric, 7), center_placement(fabric, 7));
}

TEST(CenterPlacer, ThrowsWhenFabricTooSmall) {
  const Fabric fabric = make_quale_fabric({2, 2, 4});  // 4 traps
  EXPECT_THROW(center_placement(fabric, 5), ValidationError);
}

TEST(RandomCenterPlacer, PermutesTheSameTrapSet) {
  const Fabric fabric = make_paper_fabric();
  const std::size_t qubits = 9;
  const Placement reference = center_placement(fabric, qubits);

  std::set<TrapId> reference_traps;
  for (std::size_t q = 0; q < qubits; ++q) {
    reference_traps.insert(reference.trap_of(QubitId::from_index(q)));
  }

  Rng rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    const Placement random = random_center_placement(fabric, qubits, rng);
    random.validate(fabric);
    std::set<TrapId> random_traps;
    for (std::size_t q = 0; q < qubits; ++q) {
      random_traps.insert(random.trap_of(QubitId::from_index(q)));
    }
    EXPECT_EQ(random_traps, reference_traps);
  }
}

TEST(RandomCenterPlacer, DeterministicPerSeedAndVariedAcrossDraws) {
  const Fabric fabric = make_paper_fabric();
  Rng rng_a(7);
  Rng rng_b(7);
  EXPECT_EQ(random_center_placement(fabric, 9, rng_a),
            random_center_placement(fabric, 9, rng_b));

  // Consecutive draws from one stream almost surely differ.
  Rng rng(11);
  const Placement first = random_center_placement(fabric, 9, rng);
  const Placement second = random_center_placement(fabric, 9, rng);
  EXPECT_NE(first, second);
}

}  // namespace
}  // namespace qspr
