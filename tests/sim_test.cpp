// Unit tests for the event-driven simulator: issue policy, trap selection,
// routing integration, the Eq. 1 delay decomposition, the QUALE return-home
// discipline, and stall detection. Hand-computed delays use the 5x5 tile
// fabric of route_test (trap-to-adjacent-trap round trip = 24 us).
#include <gtest/gtest.h>

#include "circuit/dependency_graph.hpp"
#include "common/error.hpp"
#include "core/placer.hpp"
#include "core/scheduler.hpp"
#include "fabric/quale_fabric.hpp"
#include "fabric/text_io.hpp"
#include "qecc/random_circuit.hpp"
#include "route/routing_graph.hpp"
#include "sim/event_sim.hpp"
#include "sim/trace_validator.hpp"

namespace qspr {
namespace {

class SimTest : public ::testing::Test {
 protected:
  SimTest() : fabric_(make_quale_fabric({2, 2, 4})), routing_(fabric_) {}

  TrapId trap_at(int row, int col) const {
    const TrapId id = fabric_.trap_at({row, col});
    EXPECT_TRUE(id.is_valid());
    return id;
  }

  static std::vector<int> trivial_rank(const DependencyGraph& graph) {
    std::vector<int> rank(graph.node_count());
    for (std::size_t i = 0; i < rank.size(); ++i) rank[i] = static_cast<int>(i);
    return rank;
  }

  ExecutionResult run(const Program& program, const Placement& placement,
                      ExecutionOptions options = {}) {
    const DependencyGraph graph = DependencyGraph::build(program);
    ExecutionResult result = execute_circuit(
        graph, fabric_, routing_, trivial_rank(graph), placement, options);
    const auto violations = validate_trace(result.trace, graph, fabric_,
                                           placement, options.tech);
    EXPECT_TRUE(violations.empty())
        << "trace violations:\n"
        << [&violations] {
             std::string all;
             for (const auto& v : violations) all += v + "\n";
             return all;
           }();
    return result;
  }

  Fabric fabric_;
  RoutingGraph routing_;
};

TEST_F(SimTest, EmptyCircuitHasZeroLatency) {
  Program program;
  program.add_qubit("a");
  Placement placement(1);
  placement.set(QubitId(0), trap_at(1, 1));
  const ExecutionResult result = run(program, placement);
  EXPECT_EQ(result.latency, 0);
  EXPECT_EQ(result.trace.size(), 0u);
}

TEST_F(SimTest, OneQubitGateInPlace) {
  Program program;
  const QubitId a = program.add_qubit("a");
  program.add_gate(GateKind::H, a);
  Placement placement(1);
  placement.set(a, trap_at(1, 1));
  const ExecutionResult result = run(program, placement);
  EXPECT_EQ(result.latency, 10);
  EXPECT_EQ(result.stats.moves, 0);
  EXPECT_EQ(result.timings[0].t_routing(), 0);
  EXPECT_EQ(result.timings[0].t_congestion(), 0);
  EXPECT_EQ(result.timings[0].t_gate(), 10);
}

TEST_F(SimTest, TwoQubitGateMovesOneOperand) {
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  program.add_gate(GateKind::CX, a, b);
  Placement placement(2);
  placement.set(a, trap_at(1, 1));
  placement.set(b, trap_at(1, 3));
  const ExecutionResult result = run(program, placement);
  // The median trap search selects one operand's trap; the other qubit makes
  // the 24 us trip; then the 100 us gate.
  EXPECT_EQ(result.latency, 124);
  EXPECT_EQ(result.stats.moves, 4);
  EXPECT_EQ(result.stats.turns, 2);
  EXPECT_EQ(result.timings[0].t_routing(), 24);
  EXPECT_EQ(result.timings[0].t_gate(), 100);
  // Both qubits end in the same trap.
  EXPECT_EQ(result.final_placement.trap_of(a),
            result.final_placement.trap_of(b));
}

TEST_F(SimTest, DestinationFixedRoutingMovesTheSource) {
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  program.add_gate(GateKind::CX, a, b);
  Placement placement(2);
  placement.set(a, trap_at(1, 1));
  placement.set(b, trap_at(3, 3));
  ExecutionOptions options;
  options.dual_move = false;
  const ExecutionResult result = run(program, placement, options);
  // b never moves: the gate executes in b's trap.
  EXPECT_EQ(result.final_placement.trap_of(b), trap_at(3, 3));
  EXPECT_EQ(result.final_placement.trap_of(a), trap_at(3, 3));
  EXPECT_GT(result.latency, 100);
}

TEST_F(SimTest, CoLocatedOperandsNeedNoRouting) {
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  program.add_gate(GateKind::CZ, a, b);
  Placement placement(2);
  placement.set(a, trap_at(1, 1));
  placement.set(b, trap_at(1, 1));
  const ExecutionResult result = run(program, placement);
  EXPECT_EQ(result.latency, 100);
  EXPECT_EQ(result.stats.moves, 0);
}

TEST_F(SimTest, OneQubitGateRelocatesWhenSharingATrap) {
  // After CX(a,b) both operands share a trap; a following H(a) must move a
  // to an empty trap first (§II.B).
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  program.add_gate(GateKind::CX, a, b);
  program.add_gate(GateKind::H, a);
  Placement placement(2);
  placement.set(a, trap_at(1, 1));
  placement.set(b, trap_at(1, 1));
  const ExecutionResult result = run(program, placement);
  // CX in place (100), then a relocates (24) and H runs (10).
  EXPECT_EQ(result.latency, 134);
  EXPECT_NE(result.final_placement.trap_of(a),
            result.final_placement.trap_of(b));
}

TEST_F(SimTest, IndependentGatesRunConcurrently) {
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  const QubitId c = program.add_qubit("c");
  const QubitId d = program.add_qubit("d");
  program.add_gate(GateKind::CX, a, b);
  program.add_gate(GateKind::CX, c, d);
  Placement placement(4);
  placement.set(a, trap_at(1, 1));
  placement.set(b, trap_at(3, 3));
  placement.set(c, trap_at(3, 1));
  placement.set(d, trap_at(1, 3));
  const ExecutionResult result = run(program, placement);
  // Concurrent execution: far less than the serial sum.
  const Duration serial = result.timings[0].gate_end - result.timings[0].issue +
                          result.timings[1].gate_end - result.timings[1].issue;
  EXPECT_LT(result.latency, serial);
}

TEST_F(SimTest, CapacityOneSerialisesSharedChannels) {
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  const QubitId c = program.add_qubit("c");
  const QubitId d = program.add_qubit("d");
  program.add_gate(GateKind::CX, a, b);
  program.add_gate(GateKind::CX, c, d);
  Placement placement(4);
  placement.set(a, trap_at(1, 1));
  placement.set(b, trap_at(3, 3));
  placement.set(c, trap_at(3, 1));
  placement.set(d, trap_at(1, 3));

  ExecutionOptions multiplexed;
  const ExecutionResult loose = run(program, placement, multiplexed);

  ExecutionOptions strict;
  strict.tech.channel_capacity = 1;
  const ExecutionResult tight = run(program, placement, strict);
  EXPECT_GE(tight.latency, loose.latency);
}

TEST_F(SimTest, DependentGateWaitsForPredecessor) {
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  const QubitId c = program.add_qubit("c");
  program.add_gate(GateKind::CX, a, b);
  program.add_gate(GateKind::CX, b, c);
  Placement placement(3);
  placement.set(a, trap_at(1, 1));
  placement.set(b, trap_at(1, 1));  // co-located: first gate runs at t=0
  placement.set(c, trap_at(1, 3));
  const ExecutionResult result = run(program, placement);
  EXPECT_EQ(result.timings[1].ready, 100);
  EXPECT_GE(result.timings[1].gate_start, 100);
  EXPECT_EQ(result.latency, result.timings[1].gate_end);
}

TEST_F(SimTest, ReturnHomeRestoresPlacementAndDelaysDependents) {
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  program.add_gate(GateKind::CX, a, b);
  Placement placement(2);
  placement.set(a, trap_at(1, 1));
  placement.set(b, trap_at(1, 3));

  ExecutionOptions options;
  options.dual_move = false;
  options.return_home_after_gate = true;
  const ExecutionResult result = run(program, placement, options);
  // Trip out (24) + gate (100) + trip home (24).
  EXPECT_EQ(result.latency, 148);
  EXPECT_EQ(result.final_placement.trap_of(a), trap_at(1, 1));
  EXPECT_EQ(result.final_placement.trap_of(b), trap_at(1, 3));

  // A dependent instruction waits for the round trip.
  program.add_gate(GateKind::H, a);
  const ExecutionResult chained = run(program, placement, options);
  EXPECT_EQ(chained.timings[1].ready, 148);
  EXPECT_EQ(chained.latency, 158);
}

TEST_F(SimTest, ScheduleRankBreaksTies) {
  // Two ready instructions compete for the same target trap area; the rank
  // decides which issues first.
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  const QubitId c = program.add_qubit("c");
  const QubitId d = program.add_qubit("d");
  program.add_gate(GateKind::CX, a, b);
  program.add_gate(GateKind::CX, c, d);
  Placement placement(4);
  placement.set(a, trap_at(1, 1));
  placement.set(b, trap_at(3, 3));
  placement.set(c, trap_at(3, 1));
  placement.set(d, trap_at(1, 3));

  const DependencyGraph graph = DependencyGraph::build(program);
  const ExecutionResult forward = execute_circuit(
      graph, fabric_, routing_, {0, 1}, placement, ExecutionOptions{});
  const ExecutionResult reversed = execute_circuit(
      graph, fabric_, routing_, {1, 0}, placement, ExecutionOptions{});
  EXPECT_LE(forward.timings[0].issue, forward.timings[1].issue);
  EXPECT_LE(reversed.timings[1].issue, reversed.timings[0].issue);
}

TEST_F(SimTest, DeterministicAcrossRuns) {
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  const QubitId c = program.add_qubit("c");
  program.add_gate(GateKind::CX, a, b);
  program.add_gate(GateKind::CZ, b, c);
  program.add_gate(GateKind::CY, a, c);
  Placement placement(3);
  placement.set(a, trap_at(1, 1));
  placement.set(b, trap_at(1, 3));
  placement.set(c, trap_at(3, 1));
  const ExecutionResult first = run(program, placement);
  const ExecutionResult second = run(program, placement);
  EXPECT_EQ(first.latency, second.latency);
  EXPECT_EQ(first.trace.size(), second.trace.size());
  EXPECT_EQ(first.final_placement, second.final_placement);
}

TEST_F(SimTest, RejectsMismatchedInputs) {
  Program program;
  program.add_qubit("a");
  program.add_qubit("b");
  program.add_gate(GateKind::CX, QubitId(0), QubitId(1));
  const DependencyGraph graph = DependencyGraph::build(program);

  Placement too_small(1);
  too_small.set(QubitId(0), trap_at(1, 1));
  EXPECT_THROW(execute_circuit(graph, fabric_, routing_, {0}, too_small,
                               ExecutionOptions{}),
               ValidationError);

  Placement placement(2);
  placement.set(QubitId(0), trap_at(1, 1));
  placement.set(QubitId(1), trap_at(1, 3));
  EXPECT_THROW(execute_circuit(graph, fabric_, routing_, {0, 1, 2}, placement,
                               ExecutionOptions{}),
               Error);
}

TEST_F(SimTest, OverfullInitialPlacementRejected) {
  Program program;
  program.add_qubit("a");
  program.add_qubit("b");
  program.add_qubit("c");
  program.add_gate(GateKind::CX, QubitId(0), QubitId(1));
  const DependencyGraph graph = DependencyGraph::build(program);
  Placement placement(3);
  placement.set(QubitId(0), trap_at(1, 1));
  placement.set(QubitId(1), trap_at(1, 1));
  placement.set(QubitId(2), trap_at(1, 1));  // three in one trap
  EXPECT_THROW(execute_circuit(graph, fabric_, routing_, {0}, placement,
                               ExecutionOptions{}),
               ValidationError);
}

TEST(SimRegression, PartialDispatchAvoidsSelfDeadlock) {
  // Regression: with capacity-1 channels, the first routed operand of a
  // 2-qubit gate can reserve a path that seals off the second operand's only
  // trap exits. All-or-nothing issue would stall forever (nothing else in
  // flight); partial dispatch lets the first qubit travel and the second
  // depart once the channels free up. This random circuit (seed 5) is the
  // original reproducer.
  Rng rng(5);
  RandomCircuitOptions circuit_options;
  circuit_options.qubits = 4;
  circuit_options.gates = 25;
  const Program program = make_random_circuit(circuit_options, rng);
  const DependencyGraph graph = DependencyGraph::build(program);

  const Fabric fabric = make_quale_fabric({4, 4, 4});
  const RoutingGraph routing(fabric);
  ExecutionOptions exec;
  exec.dual_move = false;
  exec.router.turn_aware = false;
  exec.tech.channel_capacity = 1;

  Rng placement_rng(5 * 31 + 7);
  const Placement placement =
      random_center_placement(fabric, program.qubit_count(), placement_rng);
  const auto rank = make_schedule_rank(graph, exec.tech);
  const ExecutionResult result =
      execute_circuit(graph, fabric, routing, rank, placement, exec);
  EXPECT_GE(result.latency, graph.critical_path_latency(exec.tech));
  EXPECT_TRUE(
      validate_trace(result.trace, graph, fabric, placement, exec.tech)
          .empty());
}

TEST(SimRegression, PairedFinalPlacementSeedsNextRun) {
  // MVFB chains runs: a final placement with two qubits sharing a trap must
  // be a legal initial placement for the next run.
  const Fabric fabric = make_quale_fabric({2, 2, 4});
  const RoutingGraph routing(fabric);
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  program.add_gate(GateKind::CX, a, b);
  const DependencyGraph graph = DependencyGraph::build(program);
  Placement placement(2);
  placement.set(a, fabric.trap_at({1, 1}));
  placement.set(b, fabric.trap_at({1, 3}));

  const ExecutionResult first = execute_circuit(
      graph, fabric, routing, {0}, placement, ExecutionOptions{});
  // Operands ended co-located; rerun from there.
  EXPECT_EQ(first.final_placement.trap_of(a),
            first.final_placement.trap_of(b));
  const ExecutionResult second = execute_circuit(
      graph, fabric, routing, {0}, first.final_placement, ExecutionOptions{});
  EXPECT_EQ(second.latency, 100);  // co-located: gate only
}

TEST(SimRegression, MeasureAndSwapExecuteLikeGates) {
  const Fabric fabric = make_quale_fabric({2, 2, 4});
  const RoutingGraph routing(fabric);
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  program.add_gate(GateKind::Swap, a, b);
  program.add_gate(GateKind::Measure, a);
  const DependencyGraph graph = DependencyGraph::build(program);
  Placement placement(2);
  placement.set(a, fabric.trap_at({1, 1}));
  placement.set(b, fabric.trap_at({1, 1}));
  const ExecutionResult result = execute_circuit(
      graph, fabric, routing, {0, 1}, placement, ExecutionOptions{});
  // Swap in place (100), then a relocates for the measurement (24 + 10).
  EXPECT_EQ(result.latency, 134);
  EXPECT_TRUE(
      validate_trace(result.trace, graph, fabric, placement,
                     TechnologyParams{})
          .empty());
}

TEST(SimStall, DisconnectedFabricStalls) {
  const Fabric fabric = parse_fabric(
      "J---J.J---J\n"
      "|T..|.|..T|\n"
      "J---J.J---J\n");
  ASSERT_EQ(fabric.trap_count(), 2u);
  const RoutingGraph routing(fabric);

  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  program.add_gate(GateKind::CX, a, b);
  const DependencyGraph graph = DependencyGraph::build(program);

  Placement placement(2);
  placement.set(a, fabric.traps()[0].id);
  placement.set(b, fabric.traps()[1].id);
  EXPECT_THROW(execute_circuit(graph, fabric, routing, {0}, placement,
                               ExecutionOptions{}),
               SimulationError);
}

TEST(SimTrace, TimeReversalPreservesStructure) {
  const Fabric fabric = make_quale_fabric({2, 2, 4});
  const RoutingGraph routing(fabric);
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  program.add_gate(GateKind::CX, a, b);
  const DependencyGraph graph = DependencyGraph::build(program);
  Placement placement(2);
  placement.set(a, fabric.trap_at({1, 1}));
  placement.set(b, fabric.trap_at({1, 3}));
  const ExecutionResult result = execute_circuit(
      graph, fabric, routing, {0}, placement, ExecutionOptions{});

  const Trace reversed = result.trace.time_reversed();
  EXPECT_EQ(reversed.size(), result.trace.size());
  EXPECT_EQ(reversed.makespan(), result.trace.makespan());
  EXPECT_EQ(reversed.move_count(), result.trace.move_count());
  EXPECT_EQ(reversed.turn_count(), result.trace.turn_count());
  EXPECT_EQ(reversed.gate_count(), result.trace.gate_count());
  // Double reversal restores the original op set.
  const Trace twice = reversed.time_reversed();
  for (std::size_t i = 0; i < twice.size(); ++i) {
    EXPECT_EQ(twice.ops()[i].start, result.trace.ops()[i].start);
    EXPECT_EQ(twice.ops()[i].from, result.trace.ops()[i].from);
  }
}

TEST(SimTraceValidator, DetectsCorruptedTraces) {
  const Fabric fabric = make_quale_fabric({2, 2, 4});
  const RoutingGraph routing(fabric);
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  program.add_gate(GateKind::CX, a, b);
  const DependencyGraph graph = DependencyGraph::build(program);
  Placement placement(2);
  placement.set(a, fabric.trap_at({1, 1}));
  placement.set(b, fabric.trap_at({1, 3}));
  const ExecutionResult result = execute_circuit(
      graph, fabric, routing, {0}, placement, ExecutionOptions{});
  const TechnologyParams params;

  // The genuine trace is clean.
  EXPECT_TRUE(
      validate_trace(result.trace, graph, fabric, placement, params).empty());

  // Dropping the gate op is detected.
  Trace missing_gate;
  for (const MicroOp& op : result.trace.ops()) {
    if (op.kind != MicroOpKind::Gate) missing_gate.add(op);
  }
  EXPECT_FALSE(
      validate_trace(missing_gate, graph, fabric, placement, params).empty());

  // Teleporting a move is detected.
  Trace teleported = result.trace;
  {
    Trace broken;
    bool corrupted = false;
    for (MicroOp op : result.trace.ops()) {
      if (!corrupted && op.kind == MicroOpKind::Move) {
        op.to = {0, 0};
        corrupted = true;
      }
      broken.add(op);
    }
    EXPECT_FALSE(
        validate_trace(broken, graph, fabric, placement, params).empty());
  }

  // Wrong start placement is detected.
  Placement wrong(2);
  wrong.set(a, fabric.trap_at({3, 3}));
  wrong.set(b, fabric.trap_at({1, 3}));
  EXPECT_FALSE(
      validate_trace(result.trace, graph, fabric, wrong, params).empty());
}

}  // namespace
}  // namespace qspr
