// Unit tests for the circuit IR: gates, programs, and the QIDG/UIDG
// dependency graph with its ideal-timing analyses.
#include <gtest/gtest.h>

#include <algorithm>

#include "circuit/dependency_graph.hpp"
#include "circuit/dot.hpp"
#include "circuit/gate.hpp"
#include "circuit/program.hpp"
#include "common/error.hpp"

namespace qspr {
namespace {

Program two_qubit_chain(int qubits, int gates) {
  Program program("chain");
  std::vector<QubitId> q;
  for (int i = 0; i < qubits; ++i) {
    q.push_back(program.add_qubit("q" + std::to_string(i), 0));
  }
  for (int g = 0; g < gates; ++g) {
    program.add_gate(GateKind::CX, q[static_cast<std::size_t>(g % qubits)],
                     q[static_cast<std::size_t>((g + 1) % qubits)]);
  }
  return program;
}

TEST(Gate, Arity) {
  EXPECT_EQ(arity(GateKind::H), 1);
  EXPECT_EQ(arity(GateKind::Measure), 1);
  EXPECT_EQ(arity(GateKind::CX), 2);
  EXPECT_EQ(arity(GateKind::Swap), 2);
  EXPECT_TRUE(is_two_qubit(GateKind::CZ));
  EXPECT_TRUE(is_one_qubit(GateKind::Tdg));
}

TEST(Gate, InverseIsInvolution) {
  for (const GateKind kind :
       {GateKind::H, GateKind::X, GateKind::Y, GateKind::Z, GateKind::S,
        GateKind::Sdg, GateKind::T, GateKind::Tdg, GateKind::CX, GateKind::CY,
        GateKind::CZ, GateKind::Swap, GateKind::Measure}) {
    EXPECT_EQ(inverse_of(inverse_of(kind)), kind);
  }
  EXPECT_EQ(inverse_of(GateKind::S), GateKind::Sdg);
  EXPECT_EQ(inverse_of(GateKind::T), GateKind::Tdg);
  EXPECT_EQ(inverse_of(GateKind::H), GateKind::H);
  EXPECT_EQ(inverse_of(GateKind::CX), GateKind::CX);
}

TEST(Gate, DelaysFollowTechnologyParams) {
  TechnologyParams params;
  EXPECT_EQ(gate_delay(GateKind::H, params), 10);
  EXPECT_EQ(gate_delay(GateKind::CX, params), 100);
  EXPECT_EQ(gate_delay(GateKind::Measure, params), 10);
  params.t_gate_2q = 250;
  EXPECT_EQ(gate_delay(GateKind::CZ, params), 250);
}

TEST(Program, AddAndLookupQubits) {
  Program program;
  const QubitId a = program.add_qubit("alice", 0);
  const QubitId b = program.add_qubit("bob");
  EXPECT_EQ(program.qubit_count(), 2u);
  EXPECT_EQ(program.qubit(a).name, "alice");
  EXPECT_EQ(program.qubit(a).init_value, 0);
  EXPECT_FALSE(program.qubit(b).init_value.has_value());
  EXPECT_EQ(program.find_qubit("bob"), b);
  EXPECT_FALSE(program.find_qubit("carol").is_valid());
}

TEST(Program, RejectsDuplicateAndEmptyNames) {
  Program program;
  program.add_qubit("q0");
  EXPECT_THROW(program.add_qubit("q0"), ValidationError);
  EXPECT_THROW(program.add_qubit(""), Error);
  EXPECT_THROW(program.add_qubit("q1", 2), ValidationError);
}

TEST(Program, RejectsWrongArityOverloads) {
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  EXPECT_THROW(program.add_gate(GateKind::CX, a), Error);
  EXPECT_THROW(program.add_gate(GateKind::H, a, b), Error);
  EXPECT_THROW(program.add_gate(GateKind::CX, a, a), ValidationError);
}

TEST(Program, GateCounts) {
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  program.add_gate(GateKind::H, a);
  program.add_gate(GateKind::CX, a, b);
  program.add_gate(GateKind::CZ, b, a);
  EXPECT_EQ(program.one_qubit_gate_count(), 1u);
  EXPECT_EQ(program.two_qubit_gate_count(), 2u);
  EXPECT_EQ(program.instruction_count(), 3u);
}

TEST(Program, InstructionOperands) {
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  const InstructionId h = program.add_gate(GateKind::H, a);
  const InstructionId cx = program.add_gate(GateKind::CX, a, b);
  EXPECT_EQ(program.instruction(h).operands(),
            (std::vector<QubitId>{a}));
  EXPECT_EQ(program.instruction(cx).operands(),
            (std::vector<QubitId>{a, b}));
  EXPECT_TRUE(program.instruction(cx).uses(a));
  EXPECT_TRUE(program.instruction(cx).uses(b));
  EXPECT_FALSE(program.instruction(h).uses(b));
}

TEST(DependencyGraph, ChainsPerQubitUses) {
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  const QubitId c = program.add_qubit("c");
  const InstructionId g0 = program.add_gate(GateKind::H, a);
  const InstructionId g1 = program.add_gate(GateKind::CX, a, b);
  const InstructionId g2 = program.add_gate(GateKind::CX, b, c);
  const InstructionId g3 = program.add_gate(GateKind::H, a);

  const DependencyGraph graph = DependencyGraph::build(program);
  EXPECT_TRUE(graph.predecessors(g0).empty());
  EXPECT_EQ(graph.predecessors(g1), (std::vector<InstructionId>{g0}));
  EXPECT_EQ(graph.predecessors(g2), (std::vector<InstructionId>{g1}));
  EXPECT_EQ(graph.predecessors(g3), (std::vector<InstructionId>{g1}));
  EXPECT_EQ(graph.successors(g1), (std::vector<InstructionId>{g2, g3}));
  EXPECT_EQ(graph.sources(), (std::vector<InstructionId>{g0}));
  const auto sinks = graph.sinks();
  EXPECT_EQ(sinks.size(), 2u);
}

TEST(DependencyGraph, DeduplicatesDoubleEdges) {
  // Two consecutive gates on the same qubit pair produce one edge.
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  const InstructionId g0 = program.add_gate(GateKind::CX, a, b);
  const InstructionId g1 = program.add_gate(GateKind::CZ, a, b);
  const DependencyGraph graph = DependencyGraph::build(program);
  EXPECT_EQ(graph.successors(g0).size(), 1u);
  EXPECT_EQ(graph.predecessors(g1).size(), 1u);
}

TEST(DependencyGraph, TopologicalOrderRespectsEdges) {
  const Program program = two_qubit_chain(5, 20);
  const DependencyGraph graph = DependencyGraph::build(program);
  const auto order = graph.topological_order();
  ASSERT_EQ(order.size(), graph.node_count());
  std::vector<std::size_t> position(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[order[i].index()] = i;
  }
  for (const Instruction& instr : graph.instructions()) {
    for (const InstructionId succ : graph.successors(instr.id)) {
      EXPECT_LT(position[instr.id.index()], position[succ.index()]);
    }
  }
}

TEST(DependencyGraph, ReversedSwapsEdgesAndInvertsGates) {
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  const InstructionId g0 = program.add_gate(GateKind::S, a);
  const InstructionId g1 = program.add_gate(GateKind::CX, a, b);
  const DependencyGraph graph = DependencyGraph::build(program);
  const DependencyGraph reversed = graph.reversed();

  EXPECT_EQ(reversed.instruction(g0).kind, GateKind::Sdg);
  EXPECT_EQ(reversed.instruction(g1).kind, GateKind::CX);
  EXPECT_EQ(reversed.predecessors(g0), (std::vector<InstructionId>{g1}));
  EXPECT_TRUE(reversed.predecessors(g1).empty());
}

TEST(DependencyGraph, ReversalIsInvolutionOnStructure) {
  const Program program = two_qubit_chain(6, 30);
  const DependencyGraph graph = DependencyGraph::build(program);
  const DependencyGraph twice = graph.reversed().reversed();
  ASSERT_EQ(twice.node_count(), graph.node_count());
  for (const Instruction& instr : graph.instructions()) {
    EXPECT_EQ(twice.instruction(instr.id).kind, instr.kind);
    EXPECT_EQ(twice.predecessors(instr.id), graph.predecessors(instr.id));
    EXPECT_EQ(twice.successors(instr.id), graph.successors(instr.id));
  }
}

TEST(DependencyGraph, AsapAlapAndCriticalPath) {
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  const QubitId c = program.add_qubit("c");
  program.add_gate(GateKind::H, a);           // 0..10
  program.add_gate(GateKind::CX, a, b);       // 10..110
  program.add_gate(GateKind::H, c);           // 0..10 (slack until 110)
  program.add_gate(GateKind::CX, b, c);       // 110..210
  const DependencyGraph graph = DependencyGraph::build(program);
  const TechnologyParams params;

  EXPECT_EQ(graph.critical_path_latency(params), 210);
  const auto asap = graph.asap_start_times(params);
  const auto alap = graph.alap_start_times(params);
  EXPECT_EQ(asap[0], 0);
  EXPECT_EQ(asap[1], 10);
  EXPECT_EQ(asap[3], 110);
  EXPECT_EQ(alap[0], 0);    // on the critical path: no slack
  EXPECT_EQ(alap[2], 100);  // H c can start as late as 100
  for (std::size_t i = 0; i < asap.size(); ++i) {
    EXPECT_LE(asap[i], alap[i]) << "instruction " << i;
  }
}

TEST(DependencyGraph, LongestPathToSinkIncludesOwnDelay) {
  const Program program = two_qubit_chain(3, 3);
  const DependencyGraph graph = DependencyGraph::build(program);
  const TechnologyParams params;
  const auto longest = graph.longest_path_to_sink(params);
  // Chain of 3 CX gates: 300, 200, 100.
  EXPECT_EQ(longest[0], 300);
  EXPECT_EQ(longest[1], 200);
  EXPECT_EQ(longest[2], 100);
}

TEST(DependencyGraph, DescendantCounts) {
  const Program program = two_qubit_chain(3, 4);
  const DependencyGraph graph = DependencyGraph::build(program);
  const auto counts = graph.descendant_counts();
  EXPECT_EQ(counts[0], 3);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 0);
}

TEST(DependencyGraph, DescendantDelaySums) {
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  program.add_gate(GateKind::CX, a, b);  // descendants: H + CX = 110
  program.add_gate(GateKind::H, a);      // descendants: CX = 100
  program.add_gate(GateKind::CX, a, b);  // descendants: none
  const DependencyGraph graph = DependencyGraph::build(program);
  const auto sums = graph.descendant_delay_sums(TechnologyParams{});
  EXPECT_EQ(sums[0], 110);
  EXPECT_EQ(sums[1], 100);
  EXPECT_EQ(sums[2], 0);
}

TEST(DependencyGraph, DiamondDependency) {
  // g0 -> g1, g0 -> g2, {g1, g2} -> g3: classic diamond.
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  const QubitId c = program.add_qubit("c");
  const QubitId d = program.add_qubit("d");
  const InstructionId g0 = program.add_gate(GateKind::CX, a, b);
  const InstructionId g1 = program.add_gate(GateKind::CX, a, c);
  const InstructionId g2 = program.add_gate(GateKind::CX, b, d);
  const InstructionId g3 = program.add_gate(GateKind::CX, c, d);
  const DependencyGraph graph = DependencyGraph::build(program);
  EXPECT_EQ(graph.successors(g0).size(), 2u);
  EXPECT_EQ(graph.predecessors(g3),
            (std::vector<InstructionId>{g1, g2}));
  EXPECT_EQ(graph.critical_path_latency(TechnologyParams{}), 300);
  EXPECT_EQ(graph.descendant_counts()[g0.index()], 3);
}

TEST(Dot, ContainsNodesAndEdges) {
  Program program;
  const QubitId a = program.add_qubit("alice");
  const QubitId b = program.add_qubit("bob");
  program.add_gate(GateKind::H, a);
  program.add_gate(GateKind::CX, a, b);
  const DependencyGraph graph = DependencyGraph::build(program);
  const std::string dot = to_dot(graph, &program);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("H alice"), std::string::npos);
  EXPECT_NE(dot.find("C-X alice,bob"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  // Without a program, falls back to q<i> labels.
  const std::string anonymous = to_dot(graph);
  EXPECT_NE(anonymous.find("H q0"), std::string::npos);
}

}  // namespace
}  // namespace qspr
