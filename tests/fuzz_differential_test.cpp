// Differential fuzz harness over the whole mapping stack: seeded random
// programs driven through map_program under every parallelism configuration
// — serial, trial-parallel (jobs), net-parallel (route_jobs), both, and the
// batch service — asserting bit-identical MapResults (latency, trace,
// placements) and identical negotiation diagnostics across all of them.
// Speculative parallelism is exactly the kind of change that silently
// breaks the determinism contract; this suite pins it stack-wide.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/executor.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "core/mapper.hpp"
#include "fabric/quale_fabric.hpp"
#include "qecc/random_circuit.hpp"
#include "route/pathfinder.hpp"
#include "route/search_arena.hpp"
#include "service/batch_mapper.hpp"

namespace qspr {
namespace {

constexpr int kCases = 50;

struct FuzzCase {
  Program program;
  MapperOptions options;
  int fabric = 0;  // index into the shared fabric set
};

/// Deterministic case generator: program shape, placer flavour and RNG seed
/// all derive from the case index alone.
std::vector<FuzzCase> make_cases() {
  std::vector<FuzzCase> cases;
  for (int c = 0; c < kCases; ++c) {
    RandomCircuitOptions shape;
    shape.qubits = 5 + c % 5;            // 5..9
    shape.gates = 18 + (c * 7) % 23;     // 18..40
    shape.two_qubit_fraction = c % 3 == 0 ? 0.5 : 0.7;
    Rng rng(1000 + static_cast<std::uint64_t>(c));
    FuzzCase fuzz{make_random_circuit(shape, rng), MapperOptions{}, c % 2};
    fuzz.program.set_name("fuzz_" + std::to_string(c));
    fuzz.options.placer =
        c % 2 == 0 ? PlacerKind::MonteCarlo : PlacerKind::Mvfb;
    fuzz.options.monte_carlo_trials = 4;
    fuzz.options.mvfb_seeds = 3;
    fuzz.options.rng_seed = static_cast<std::uint64_t>(c) + 1;
    fuzz.options.negotiation_report = true;
    cases.push_back(std::move(fuzz));
  }
  return cases;
}

std::vector<Fabric> make_fabrics() {
  std::vector<Fabric> fabrics;
  fabrics.push_back(make_quale_fabric({3, 3, 4}));
  fabrics.push_back(make_quale_fabric({4, 4, 4}));
  return fabrics;
}

std::size_t trace_hash(const MapResult& result) {
  return std::hash<std::string>{}(result.trace.to_string());
}

void expect_identical(const MapResult& reference, const MapResult& other,
                      const std::string& label) {
  EXPECT_EQ(reference.latency, other.latency) << label;
  EXPECT_EQ(reference.ideal_latency, other.ideal_latency) << label;
  EXPECT_EQ(reference.placement_runs, other.placement_runs) << label;
  EXPECT_EQ(reference.initial_placement, other.initial_placement) << label;
  EXPECT_EQ(reference.final_placement, other.final_placement) << label;
  EXPECT_EQ(trace_hash(reference), trace_hash(other)) << label;
  // Negotiation diagnostics: every contractual field must agree; only the
  // route_jobs / speculative_* observability fields may differ.
  ASSERT_EQ(reference.negotiation.has_value(), other.negotiation.has_value())
      << label;
  if (reference.negotiation.has_value()) {
    const NegotiationDiagnostics& a = *reference.negotiation;
    const NegotiationDiagnostics& b = *other.negotiation;
    EXPECT_EQ(a.nets, b.nets) << label;
    EXPECT_EQ(a.iterations_used, b.iterations_used) << label;
    EXPECT_EQ(a.converged, b.converged) << label;
    EXPECT_EQ(a.overused_resources, b.overused_resources) << label;
    EXPECT_EQ(a.max_overuse, b.max_overuse) << label;
    EXPECT_EQ(a.total_excess, b.total_excess) << label;
    EXPECT_EQ(a.min_feasible_excess, b.min_feasible_excess) << label;
    EXPECT_EQ(a.searches_performed, b.searches_performed) << label;
    EXPECT_EQ(a.nodes_settled, b.nodes_settled) << label;
    EXPECT_EQ(a.landmarks_used, b.landmarks_used) << label;
    EXPECT_EQ(a.alt_refreshes, b.alt_refreshes) << label;
    EXPECT_EQ(a.heuristic_weight, b.heuristic_weight) << label;
    EXPECT_EQ(a.total_delay, b.total_delay) << label;
  }
}

TEST(FuzzDifferential, AllParallelConfigsMatchSerialAcrossSeededPrograms) {
  const std::vector<Fabric> fabrics = make_fabrics();
  const std::vector<FuzzCase> cases = make_cases();

  // Serial reference per case, then every parallel configuration against it.
  std::vector<MapResult> serial;
  serial.reserve(cases.size());
  for (const FuzzCase& fuzz : cases) {
    MapperOptions options = fuzz.options;
    options.jobs = 1;
    options.route_jobs = 1;
    serial.push_back(
        map_program(fuzz.program, fabrics[fuzz.fabric], options));
  }

  struct Config {
    const char* name;
    int jobs;
    int route_jobs;
  };
  const std::vector<Config> configs = {
      {"trial_parallel", 4, 1},
      {"net_parallel", 1, 4},
      {"trial_and_net_parallel", 4, 4},
  };
  for (const Config& config : configs) {
    for (std::size_t c = 0; c < cases.size(); ++c) {
      MapperOptions options = cases[c].options;
      options.jobs = config.jobs;
      options.route_jobs = config.route_jobs;
      const MapResult result =
          map_program(cases[c].program, fabrics[cases[c].fabric], options);
      expect_identical(serial[c], result,
                       std::string(config.name) + "/case" + std::to_string(c));
    }
  }
}

TEST(FuzzDifferential, BatchServiceMatchesSerialAcrossSeededPrograms) {
  const std::vector<Fabric> fabrics = make_fabrics();
  const std::vector<FuzzCase> cases = make_cases();

  std::vector<MapResult> serial;
  serial.reserve(cases.size());
  for (const FuzzCase& fuzz : cases) {
    MapperOptions options = fuzz.options;
    options.jobs = 1;
    options.route_jobs = 1;
    serial.push_back(
        map_program(fuzz.program, fabrics[fuzz.fabric], options));
  }

  // The whole case set as one batch on a shared 4-worker engine, with
  // net-parallel negotiation diagnostics enabled per job.
  std::vector<BatchJob> manifest;
  for (const FuzzCase& fuzz : cases) {
    BatchJob job;
    job.name = fuzz.program.name();
    job.program = &fuzz.program;
    job.fabric = &fabrics[fuzz.fabric];
    job.options = fuzz.options;
    job.options.route_jobs = 2;
    manifest.push_back(std::move(job));
  }
  MappingEngine engine(4);
  BatchMapper batch(engine);
  const BatchResult result = batch.run(manifest);
  ASSERT_EQ(result.summary.failed, 0);
  ASSERT_EQ(result.records.size(), cases.size());
  for (std::size_t c = 0; c < cases.size(); ++c) {
    ASSERT_TRUE(result.records[c].ok) << c;
    EXPECT_EQ(result.records[c].name, cases[c].program.name());
    expect_identical(serial[c], result.records[c].result,
                     "batch/case" + std::to_string(c));
  }
}

TEST(FuzzDifferential, FrontierKindsBitIdenticalAcrossParallelismConfigs) {
  // The frontier queue (binary heap / bucket queue / 4-ary heap) is a pure
  // constant-factor knob: forcing each kind across the whole corpus must
  // reproduce the reference binary-heap result bit for bit — serial and
  // under combined trial+net parallelism, diagnostics included. This is the
  // stack-level twin of tests/frontier_queue_test.cpp.
  struct OverrideGuard {
    ~OverrideGuard() { clear_frontier_kind_override(); }
  } guard;

  const std::vector<Fabric> fabrics = make_fabrics();
  const std::vector<FuzzCase> cases = make_cases();

  std::vector<MapResult> reference;
  reference.reserve(cases.size());
  force_frontier_kind(FrontierKind::Binary);
  for (const FuzzCase& fuzz : cases) {
    MapperOptions options = fuzz.options;
    options.jobs = 1;
    options.route_jobs = 1;
    reference.push_back(
        map_program(fuzz.program, fabrics[fuzz.fabric], options));
  }

  for (const FrontierKind kind :
       {FrontierKind::Bucket, FrontierKind::Dary4}) {
    force_frontier_kind(kind);
    for (std::size_t c = 0; c < cases.size(); ++c) {
      for (const int jobs : {1, 4}) {
        MapperOptions options = cases[c].options;
        options.jobs = jobs;
        options.route_jobs = jobs;
        const MapResult result =
            map_program(cases[c].program, fabrics[cases[c].fabric], options);
        expect_identical(reference[c], result,
                         std::string(to_string(kind)) + "/jobs" +
                             std::to_string(jobs) + "/case" +
                             std::to_string(c));
      }
    }
  }
}

TEST(FuzzDifferential, WarmStartIdentityAcrossParallelismAndFrontiers) {
  // Warm-start contract, fuzzed: seeding a negotiation from its own
  // converged result (an empty edit) must reproduce the cold paths bit for
  // bit with zero searches — at every route_jobs and frontier kind, since
  // sessions replay against whatever configuration the server runs.
  struct OverrideGuard {
    ~OverrideGuard() { clear_frontier_kind_override(); }
  } guard;

  const std::vector<Fabric> fabrics = make_fabrics();
  const TechnologyParams params;
  Executor executor(4);
  PathFinderScratchPool pool;

  for (int c = 0; c < 24; ++c) {
    const Fabric& fabric = fabrics[static_cast<std::size_t>(c % 2)];
    const RoutingGraph graph(fabric);
    // Random net batch over random distinct traps.
    Rng rng(4000 + static_cast<std::uint64_t>(c));
    const auto traps = fabric.traps_by_distance(fabric.center());
    std::vector<NetRequest> nets;
    for (int n = 0; n < 4 + c % 8; ++n) {
      const TrapId from = traps[rng.uniform_index(traps.size())];
      const TrapId to = traps[rng.uniform_index(traps.size())];
      if (from != to) nets.push_back({from, to});
    }
    if (nets.empty()) continue;

    PathFinderScratch scratch;
    const PathFinderResult cold =
        route_nets_negotiated(graph, params, nets, {}, scratch);
    if (!cold.converged) continue;  // only converged priors seed

    const WarmStartSeed seed = make_warm_seed(
        nets, cold.paths, nets, cold.history, cold.final_present_factor);
    PathFinderOptions warm_options;
    warm_options.warm = &seed;
    for (const FrontierKind kind :
         {FrontierKind::Binary, FrontierKind::Bucket, FrontierKind::Dary4}) {
      force_frontier_kind(kind);
      for (const int route_jobs : {1, 4}) {
        warm_options.route_jobs = route_jobs;
        PathFinderScratch warm_scratch;
        const PathFinderResult warm = route_nets_negotiated(
            graph, params, nets, warm_options, warm_scratch, executor, pool);
        const std::string label = "case" + std::to_string(c) + "/" +
                                  to_string(kind) + "/jobs" +
                                  std::to_string(route_jobs);
        EXPECT_TRUE(warm.converged) << label;
        EXPECT_EQ(warm.searches_performed, 0) << label;
        EXPECT_EQ(warm.warm_kept, static_cast<int>(nets.size())) << label;
        EXPECT_FALSE(warm.warm_restarted) << label;
        EXPECT_EQ(warm.total_delay, cold.total_delay) << label;
        ASSERT_EQ(warm.paths.size(), cold.paths.size()) << label;
        for (std::size_t i = 0; i < cold.paths.size(); ++i) {
          EXPECT_EQ(warm.paths[i].nodes, cold.paths[i].nodes)
              << label << "/net" << i;
        }
      }
    }
    clear_frontier_kind_override();

    // Perturbed edit: replace one net and require the robustness contract —
    // the warm run converges wherever the cold run does (via the internal
    // fallback when the edit shifts the equilibrium globally).
    std::vector<NetRequest> edited = nets;
    const TrapId from = traps[rng.uniform_index(traps.size())];
    const TrapId to = traps[rng.uniform_index(traps.size())];
    if (from == to) continue;
    edited.back() = {from, to};
    const PathFinderResult cold_edit =
        route_nets_negotiated(graph, params, edited, {}, scratch);
    const WarmStartSeed edit_seed = make_warm_seed(
        nets, cold.paths, edited, cold.history, cold.final_present_factor);
    PathFinderOptions edit_options;
    edit_options.warm = &edit_seed;
    PathFinderScratch edit_scratch;
    const PathFinderResult warm_edit = route_nets_negotiated(
        graph, params, edited, edit_options, edit_scratch);
    if (cold_edit.converged) {
      EXPECT_TRUE(warm_edit.converged) << "edit/case" << c;
    }
  }
}

TEST(FuzzDifferential, AltUnitWeightMatchesGridAcrossParallelismConfigs) {
  // ALT landmarks at heuristic_weight = 1.0 are an exact-search
  // implementation detail: across the whole fuzz corpus the mapped output
  // (latency, placements, trace hash) must be identical to the grid
  // heuristic, and the ALT-enabled run itself must stay bit-identical
  // across every parallelism configuration — including the diagnostics.
  const std::vector<Fabric> fabrics = make_fabrics();
  const std::vector<FuzzCase> cases = make_cases();

  for (std::size_t c = 0; c < cases.size(); ++c) {
    MapperOptions grid = cases[c].options;
    grid.jobs = 1;
    grid.route_jobs = 1;
    grid.route_landmarks = 0;
    const MapResult grid_serial =
        map_program(cases[c].program, fabrics[cases[c].fabric], grid);

    MapperOptions alt = grid;
    alt.route_landmarks = 8;
    alt.route_heuristic_weight = 1.0;
    const MapResult alt_serial =
        map_program(cases[c].program, fabrics[cases[c].fabric], alt);

    const std::string label = "alt_vs_grid/case" + std::to_string(c);
    EXPECT_EQ(grid_serial.latency, alt_serial.latency) << label;
    EXPECT_EQ(grid_serial.initial_placement, alt_serial.initial_placement)
        << label;
    EXPECT_EQ(grid_serial.final_placement, alt_serial.final_placement)
        << label;
    EXPECT_EQ(trace_hash(grid_serial), trace_hash(alt_serial)) << label;
    ASSERT_TRUE(alt_serial.negotiation.has_value()) << label;
    EXPECT_EQ(alt_serial.negotiation->landmarks_used, 8) << label;
    EXPECT_EQ(alt_serial.negotiation->heuristic_weight, 1.0) << label;

    struct Config {
      const char* name;
      int jobs;
      int route_jobs;
    };
    for (const Config& config : {Config{"trial_parallel", 4, 1},
                                 Config{"net_parallel", 1, 4},
                                 Config{"trial_and_net_parallel", 4, 4}}) {
      MapperOptions options = alt;
      options.jobs = config.jobs;
      options.route_jobs = config.route_jobs;
      const MapResult result =
          map_program(cases[c].program, fabrics[cases[c].fabric], options);
      expect_identical(alt_serial, result,
                       std::string("alt/") + config.name + "/case" +
                           std::to_string(c));
    }

    // The bounded-suboptimal knob must not break the parallel determinism
    // contract either: w = 1.5 serial equals w = 1.5 net-parallel.
    MapperOptions weighted = alt;
    weighted.route_heuristic_weight = 1.5;
    const MapResult weighted_serial =
        map_program(cases[c].program, fabrics[cases[c].fabric], weighted);
    MapperOptions weighted_parallel = weighted;
    weighted_parallel.route_jobs = 4;
    const MapResult weighted_net = map_program(
        cases[c].program, fabrics[cases[c].fabric], weighted_parallel);
    expect_identical(weighted_serial, weighted_net,
                     "alt_w1.5/net_parallel/case" + std::to_string(c));
  }
}

}  // namespace
}  // namespace qspr
