// Supervisor internals, unit-tested without a single process spawn: the
// deterministic restart backoff (exact replay under a seed, monotonicity,
// cap, jitter bounds), the per-shard circuit breaker driven by a fake
// clock (threshold trip, half-open probe outcomes, cooldown escalation),
// and the fabric-fingerprint routing (stability across calls — i.e. across
// worker restarts — the "" == "paper" canonicalisation, and a pinned hash
// value so the routing key can never drift silently between releases).
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "service/shard_client.hpp"
#include "service/shard_supervisor.hpp"

namespace qspr {
namespace {

using TimePoint = std::chrono::steady_clock::time_point;

TimePoint tick(long long ms) {
  return TimePoint{} + std::chrono::milliseconds(ms);
}

// ---------------------------------------------------------------------------
// BackoffPolicy
// ---------------------------------------------------------------------------

TEST(BackoffPolicy, DeterministicReplayUnderOneSeed) {
  BackoffOptions options;
  options.base_ms = 50;
  options.cap_ms = 10'000;
  options.jitter_frac = 0.25;
  options.seed = 42;
  const BackoffPolicy a(options);
  const BackoffPolicy b(options);
  for (int attempt = 0; attempt < 16; ++attempt) {
    EXPECT_EQ(a.delay_ms(attempt), b.delay_ms(attempt)) << attempt;
  }
}

TEST(BackoffPolicy, ZeroJitterIsExactDoubling) {
  BackoffOptions options;
  options.base_ms = 10;
  options.cap_ms = 1'000'000;
  options.jitter_frac = 0.0;
  const BackoffPolicy policy(options);
  EXPECT_EQ(policy.delay_ms(0), 10);
  EXPECT_EQ(policy.delay_ms(1), 20);
  EXPECT_EQ(policy.delay_ms(2), 40);
  EXPECT_EQ(policy.delay_ms(5), 320);
  EXPECT_EQ(policy.delay_ms(10), 10'240);
}

TEST(BackoffPolicy, MonotoneNonDecreasingAndCapped) {
  BackoffOptions options;
  options.base_ms = 25;
  options.cap_ms = 2000;
  options.jitter_frac = 0.25;
  options.seed = 7;
  const BackoffPolicy policy(options);
  int previous = 0;
  for (int attempt = 0; attempt < 40; ++attempt) {
    const int delay = policy.delay_ms(attempt);
    EXPECT_LE(delay, options.cap_ms) << attempt;
    // Jitter is multiplicative on a doubling base, so the schedule may
    // wobble within one attempt's band but never below the unjittered
    // value of any earlier attempt.
    EXPECT_GE(delay, std::min(25 << std::min(attempt, 6), 2000)) << attempt;
    if (attempt >= 8) {
      EXPECT_EQ(delay, options.cap_ms) << attempt;
    }
    previous = delay;
  }
  (void)previous;
}

TEST(BackoffPolicy, JitterStaysInsideItsBand) {
  BackoffOptions options;
  options.base_ms = 100;
  options.cap_ms = 1'000'000;
  options.jitter_frac = 0.5;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    options.seed = seed;
    const BackoffPolicy policy(options);
    for (int attempt = 0; attempt < 8; ++attempt) {
      const int unjittered = 100 << attempt;
      const int delay = policy.delay_ms(attempt);
      EXPECT_GE(delay, unjittered) << "seed " << seed << " attempt " << attempt;
      EXPECT_LT(delay, static_cast<int>(unjittered * 1.5) + 1)
          << "seed " << seed << " attempt " << attempt;
    }
  }
}

TEST(BackoffPolicy, RejectsNonsenseOptions) {
  BackoffOptions bad;
  bad.base_ms = 100;
  bad.cap_ms = 50;  // cap below base
  EXPECT_THROW(BackoffPolicy{bad}, Error);
  bad = BackoffOptions{};
  bad.jitter_frac = 1.5;
  EXPECT_THROW(BackoffPolicy{bad}, Error);
}

// ---------------------------------------------------------------------------
// CircuitBreaker (fake clock: every transition is injected time)
// ---------------------------------------------------------------------------

CircuitBreakerOptions breaker_options(int threshold, int base_ms,
                                      int cap_ms) {
  CircuitBreakerOptions options;
  options.failure_threshold = threshold;
  options.cooldown.base_ms = base_ms;
  options.cooldown.cap_ms = cap_ms;
  options.cooldown.jitter_frac = 0.0;  // exact cooldowns for the test
  return options;
}

TEST(CircuitBreaker, ClosedUntilThresholdConsecutiveFailures) {
  CircuitBreaker breaker(breaker_options(3, 100, 10'000));
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  breaker.record_failure(tick(0));
  breaker.record_failure(tick(1));
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  breaker.record_failure(tick(2));
  EXPECT_EQ(breaker.state(), BreakerState::Open);
  EXPECT_EQ(breaker.reopen_at(), tick(2 + 100));
}

TEST(CircuitBreaker, SuccessResetsTheConsecutiveCount) {
  CircuitBreaker breaker(breaker_options(3, 100, 10'000));
  breaker.record_failure(tick(0));
  breaker.record_failure(tick(1));
  breaker.record_success();
  breaker.record_failure(tick(2));
  breaker.record_failure(tick(3));
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
}

TEST(CircuitBreaker, OpenShedsUntilTheCooldownThenHalfOpens) {
  CircuitBreaker breaker(breaker_options(1, 100, 10'000));
  breaker.record_failure(tick(0));
  ASSERT_EQ(breaker.state(), BreakerState::Open);
  EXPECT_FALSE(breaker.allow_probe(tick(50)));
  EXPECT_EQ(breaker.state(), BreakerState::Open);
  EXPECT_TRUE(breaker.allow_probe(tick(100)));
  EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);
  // Half-open admits the probe traffic (idempotent until the verdict).
  EXPECT_TRUE(breaker.allow_probe(tick(101)));
}

TEST(CircuitBreaker, HalfOpenFailureReopensWithEscalatedCooldown) {
  CircuitBreaker breaker(breaker_options(1, 100, 10'000));
  breaker.record_failure(tick(0));           // trip 1: cooldown 100
  ASSERT_TRUE(breaker.allow_probe(tick(100)));
  breaker.record_failure(tick(100));         // trip 2: cooldown 200
  EXPECT_EQ(breaker.state(), BreakerState::Open);
  EXPECT_EQ(breaker.reopen_at(), tick(100 + 200));
  ASSERT_TRUE(breaker.allow_probe(tick(300)));
  breaker.record_failure(tick(300));         // trip 3: cooldown 400
  EXPECT_EQ(breaker.reopen_at(), tick(300 + 400));
  EXPECT_EQ(breaker.trips(), 3);
}

TEST(CircuitBreaker, CooldownEscalationIsCapped) {
  CircuitBreaker breaker(breaker_options(1, 100, 400));
  long long now = 0;
  for (int round = 0; round < 8; ++round) {
    breaker.record_failure(tick(now));
    const auto reopen = breaker.reopen_at();
    const auto cooldown = std::chrono::duration_cast<std::chrono::milliseconds>(
                              reopen - tick(now))
                              .count();
    EXPECT_LE(cooldown, 400) << round;
    now += cooldown;
    ASSERT_TRUE(breaker.allow_probe(tick(now)));
  }
}

TEST(CircuitBreaker, SuccessFromHalfOpenClosesAndResetsTrips) {
  CircuitBreaker breaker(breaker_options(1, 100, 10'000));
  breaker.record_failure(tick(0));
  ASSERT_TRUE(breaker.allow_probe(tick(100)));
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  EXPECT_EQ(breaker.trips(), 0);
  // The next trip starts back at the base cooldown, not the escalated one.
  breaker.record_failure(tick(200));
  EXPECT_EQ(breaker.reopen_at(), tick(200 + 100));
}

TEST(CircuitBreaker, ForceOpenIsImmediate) {
  CircuitBreaker breaker(breaker_options(5, 100, 10'000));
  breaker.force_open(tick(10));
  EXPECT_EQ(breaker.state(), BreakerState::Open);
  EXPECT_FALSE(breaker.allow_probe(tick(10)));
  EXPECT_TRUE(breaker.allow_probe(tick(110)));
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

TEST(ShardRouting, EmptySpecCanonicalisesToPaper) {
  EXPECT_EQ(fabric_route_fingerprint(""), fabric_route_fingerprint("paper"));
  for (int shards = 1; shards <= 8; ++shards) {
    EXPECT_EQ(shard_for_fabric("", shards), shard_for_fabric("paper", shards));
  }
}

TEST(ShardRouting, PinnedFingerprintNeverDrifts) {
  // FNV-1a 64 of "paper". A change here silently re-routes every cached
  // fabric after an upgrade — bump only with a migration note.
  EXPECT_EQ(fabric_route_fingerprint("paper"), 1756972527519192911ull);
}

TEST(ShardRouting, StableAcrossCallsAndInRange) {
  const std::vector<std::string> specs = {
      "", "paper", "fabrics/a.fab", "fabrics/b.fab", "x", "y", "z"};
  for (const std::string& spec : specs) {
    const int first = shard_for_fabric(spec, 4);
    EXPECT_GE(first, 0);
    EXPECT_LT(first, 4);
    for (int repeat = 0; repeat < 4; ++repeat) {
      EXPECT_EQ(shard_for_fabric(spec, 4), first) << spec;
    }
  }
}

TEST(ShardRouting, DistinctSpecsSpreadAcrossShards) {
  // Not a uniformity proof — just that the hash is not degenerate: a
  // handful of distinct specs must not all collapse onto one shard.
  std::vector<int> hits(4, 0);
  for (int i = 0; i < 64; ++i) {
    ++hits[static_cast<std::size_t>(
        shard_for_fabric("fabric_" + std::to_string(i) + ".fab", 4))];
  }
  int populated = 0;
  for (const int count : hits) populated += count > 0 ? 1 : 0;
  EXPECT_GE(populated, 3);
}

}  // namespace
}  // namespace qspr
