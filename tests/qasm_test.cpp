// Unit tests for the QASM parser and writer (the dialect of paper Fig. 3).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/error.hpp"
#include "qasm/parser.hpp"
#include "qasm/writer.hpp"
#include "qecc/codes.hpp"
#include "service/corpus.hpp"

namespace qspr {
namespace {

// The paper's Fig. 3 program, verbatim.
constexpr const char* kFigure3Qasm = R"(
QUBIT q0,0
QUBIT q1,0
QUBIT q2,0
QUBIT q3
QUBIT q4,0
H q0
H q1
H q2
H q4
C-X q3,q2
C-Z q4,q2
C-Y q2,q1
C-Y q3,q1
C-X q4,q1
C-Z q2,q0
C-Y q3,q0
C-Z q4,q0
)";

TEST(QasmParser, ParsesFigure3) {
  const Program program = parse_qasm(kFigure3Qasm, "[[5,1,3]]");
  EXPECT_EQ(program.qubit_count(), 5u);
  EXPECT_EQ(program.instruction_count(), 12u);
  EXPECT_EQ(program.one_qubit_gate_count(), 4u);
  EXPECT_EQ(program.two_qubit_gate_count(), 8u);
  EXPECT_EQ(program.qubit(program.find_qubit("q3")).init_value, std::nullopt);
  EXPECT_EQ(program.qubit(program.find_qubit("q0")).init_value, 0);

  const Instruction& first_cx = program.instructions()[4];
  EXPECT_EQ(first_cx.kind, GateKind::CX);
  EXPECT_EQ(program.qubit(first_cx.control).name, "q3");
  EXPECT_EQ(program.qubit(first_cx.target).name, "q2");
}

TEST(QasmParser, MnemonicAliasesAndCase) {
  const Program program = parse_qasm(
      "QUBIT a\nQUBIT b\ncnot a,b\nCX b,a\nc-x a,b\ncz a,b\nMEASZ a\nm b\n");
  EXPECT_EQ(program.instruction_count(), 6u);
  EXPECT_EQ(program.instructions()[0].kind, GateKind::CX);
  EXPECT_EQ(program.instructions()[1].kind, GateKind::CX);
  EXPECT_EQ(program.instructions()[2].kind, GateKind::CX);
  EXPECT_EQ(program.instructions()[3].kind, GateKind::CZ);
  EXPECT_EQ(program.instructions()[4].kind, GateKind::Measure);
  EXPECT_EQ(program.instructions()[5].kind, GateKind::Measure);
}

TEST(QasmParser, AllOneQubitGates) {
  const Program program = parse_qasm(
      "QUBIT q\nH q\nX q\nY q\nZ q\nS q\nSDG q\nT q\nTDG q\n");
  ASSERT_EQ(program.instruction_count(), 8u);
  EXPECT_EQ(program.instructions()[5].kind, GateKind::Sdg);
  EXPECT_EQ(program.instructions()[7].kind, GateKind::Tdg);
}

TEST(QasmParser, CommentsAndWhitespace) {
  const Program program = parse_qasm(
      "# full-line comment\n"
      "QUBIT q0,0   # trailing comment\n"
      "QUBIT q1,0 // C++-style comment\n"
      "\n"
      "   H   q0  \n"
      "C-X q0 , q1\n");
  EXPECT_EQ(program.qubit_count(), 2u);
  EXPECT_EQ(program.instruction_count(), 2u);
}

TEST(QasmParser, ErrorsCarryLineNumbers) {
  try {
    parse_qasm("QUBIT q0\nBOGUS q0\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("BOGUS"), std::string::npos);
  }
}

TEST(QasmParser, RejectsUndeclaredQubit) {
  EXPECT_THROW(parse_qasm("QUBIT a\nH ghost\n"), ParseError);
  EXPECT_THROW(parse_qasm("QUBIT a\nQUBIT b\nC-X a,ghost\n"), ParseError);
}

TEST(QasmParser, RejectsMalformedDeclarations) {
  EXPECT_THROW(parse_qasm("QUBIT\n"), ParseError);
  EXPECT_THROW(parse_qasm("QUBIT a,5\n"), ParseError);
  EXPECT_THROW(parse_qasm("QUBIT a,zero\n"), ParseError);
  EXPECT_THROW(parse_qasm("QUBIT a\nQUBIT a\n"), ParseError);
  EXPECT_THROW(parse_qasm("QUBIT a,0,1\n"), ParseError);
}

TEST(QasmParser, RejectsWrongOperandCounts) {
  EXPECT_THROW(parse_qasm("QUBIT a\nQUBIT b\nH a,b\n"), ParseError);
  EXPECT_THROW(parse_qasm("QUBIT a\nC-X a\n"), ParseError);
  EXPECT_THROW(parse_qasm("QUBIT a\nC-X a,a\n"), ParseError);
  EXPECT_THROW(parse_qasm("QUBIT a\nQUBIT b\nC-X a,,b\n"), ParseError);
}

TEST(QasmParser, GateFromMnemonic) {
  EXPECT_EQ(gate_from_mnemonic("h"), GateKind::H);
  EXPECT_EQ(gate_from_mnemonic("C-Y"), GateKind::CY);
  EXPECT_EQ(gate_from_mnemonic("swap"), GateKind::Swap);
  EXPECT_EQ(gate_from_mnemonic("nonsense"), std::nullopt);
}

TEST(QasmWriter, RoundTripsFigure3) {
  const Program original = parse_qasm(kFigure3Qasm, "[[5,1,3]]");
  const Program reparsed = parse_qasm(write_qasm(original), "[[5,1,3]]");
  ASSERT_EQ(reparsed.qubit_count(), original.qubit_count());
  ASSERT_EQ(reparsed.instruction_count(), original.instruction_count());
  for (std::size_t i = 0; i < original.instruction_count(); ++i) {
    const Instruction& a = original.instructions()[i];
    const Instruction& b = reparsed.instructions()[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.control, b.control);
    EXPECT_EQ(a.target, b.target);
  }
  for (std::size_t q = 0; q < original.qubit_count(); ++q) {
    const QubitId id = QubitId::from_index(q);
    EXPECT_EQ(original.qubit(id).name, reparsed.qubit(id).name);
    EXPECT_EQ(original.qubit(id).init_value, reparsed.qubit(id).init_value);
  }
}

TEST(QasmWriter, RoundTripsAllPaperBenchmarks) {
  for (const PaperNumbers& bench : paper_benchmarks()) {
    const Program original = make_encoder(bench.code);
    const Program reparsed = parse_qasm(write_qasm(original));
    ASSERT_EQ(reparsed.instruction_count(), original.instruction_count())
        << code_name(bench.code);
    for (std::size_t i = 0; i < original.instruction_count(); ++i) {
      EXPECT_EQ(reparsed.instructions()[i].kind,
                original.instructions()[i].kind);
      EXPECT_EQ(reparsed.instructions()[i].control,
                original.instructions()[i].control);
      EXPECT_EQ(reparsed.instructions()[i].target,
                original.instructions()[i].target);
    }
  }
}

TEST(QasmFile, WriteAndParseFile) {
  const std::string path = ::testing::TempDir() + "qspr_roundtrip.qasm";
  const Program original = make_encoder(QeccCode::Q5_1_3);
  write_qasm_file(original, path);
  const Program reparsed = parse_qasm_file(path);
  EXPECT_EQ(reparsed.qubit_count(), original.qubit_count());
  EXPECT_EQ(reparsed.instruction_count(), original.instruction_count());
  EXPECT_EQ(reparsed.name(), "qspr_roundtrip");
  std::remove(path.c_str());
}

TEST(QasmFile, MissingFileThrows) {
  EXPECT_THROW(parse_qasm_file("/nonexistent/file.qasm"), Error);
}

TEST(QasmParser, EmptyProgramIsValid) {
  const Program program = parse_qasm("");
  EXPECT_EQ(program.qubit_count(), 0u);
  EXPECT_EQ(program.instruction_count(), 0u);
}

// ---------------------------------------------------------------------------
// Fuzz-ish robustness: every broken input fails with a clean Error
// ---------------------------------------------------------------------------

TEST(QasmRobustness, BrokenCorpusAlwaysFailsCleanly) {
  // The shared broken-file corpus (service/corpus.cpp) — also what the CI
  // batch fault-isolation smoke feeds qspr_batch. Each member must raise a
  // clean Error: never crash, never silently parse.
  for (const BrokenQasm& broken : broken_qasm_corpus()) {
    EXPECT_THROW(parse_qasm(broken.text, broken.name), Error)
        << broken.name << ": " << broken.reason;
  }
}

TEST(QasmRobustness, TruncationAtEveryPrefixNeverCrashes) {
  // Chop a valid program at every byte offset: each prefix must either
  // parse (clean cut) or throw a clean Error — nothing else.
  const std::string text(kFigure3Qasm);
  int parsed = 0;
  int rejected = 0;
  for (std::size_t cut = 0; cut <= text.size(); ++cut) {
    try {
      (void)parse_qasm(text.substr(0, cut), "prefix");
      ++parsed;
    } catch (const Error&) {
      ++rejected;
    }
  }
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(QasmRobustness, OversizedQubitInitValues) {
  // Overflowing init values must be parse errors with the offending line,
  // not uncaught integer errors (and never UB).
  try {
    parse_qasm("QUBIT a,0\nQUBIT b,184467440737095516150\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
  EXPECT_THROW(parse_qasm("QUBIT a,99999999999999999999999999999\n"),
               ParseError);
  // In-range but non-bit values keep their original diagnostic.
  EXPECT_THROW(parse_qasm("QUBIT a,2\n"), ParseError);
  EXPECT_THROW(parse_qasm("QUBIT a,-1\n"), ParseError);
}

TEST(QasmRobustness, DuplicateRegisterNamesRejectedCaseSensitively) {
  EXPECT_THROW(parse_qasm("QUBIT data\nQUBIT data\n"), ParseError);
  // Distinct case is a distinct register — must parse.
  const Program program = parse_qasm("QUBIT data\nQUBIT DATA\nH data\n");
  EXPECT_EQ(program.qubit_count(), 2u);
}

TEST(QasmRobustness, CrlfAndWhitespaceTortureParses) {
  // CRLF endings, tab soup, trailing blanks, comment-only lines and a
  // blank-padded final line must all parse to the same program.
  const Program program = parse_qasm(
      "\r\n"
      "QUBIT\tq0 , 0   \r\n"
      "  QUBIT q1,1\t\t# trailing comment\r\n"
      "\t\r\n"
      "H\tq0\r\n"
      "C-X\t q0 ,\tq1 \r\n"
      "   // comment only\r\n"
      "   ");
  EXPECT_EQ(program.qubit_count(), 2u);
  EXPECT_EQ(program.instruction_count(), 2u);
  EXPECT_EQ(program.qubit(program.find_qubit("q1")).init_value, 1);
}

TEST(QasmRobustness, WhitespaceOnlyAndCommentOnlyFilesAreEmptyPrograms) {
  for (const char* text : {"   ", "\r\n\r\n", "# nothing\n// here\n", "\t"}) {
    const Program program = parse_qasm(text);
    EXPECT_EQ(program.instruction_count(), 0u) << '"' << text << '"';
  }
}

}  // namespace
}  // namespace qspr
