// Tests for the end-to-end mapper flows (QSPR, QUALE, QPOS, IdealBaseline)
// and their option plumbing.
#include <gtest/gtest.h>

#include "circuit/dependency_graph.hpp"
#include "core/mapper.hpp"
#include "core/placer.hpp"
#include "fabric/quale_fabric.hpp"
#include "qecc/codes.hpp"
#include "sim/trace_validator.hpp"

namespace qspr {
namespace {

MapperOptions fast_qspr() {
  MapperOptions options;
  options.kind = MapperKind::Qspr;
  options.mvfb_seeds = 4;
  return options;
}

TEST(Mapper, IdealBaselineIsTheCriticalPath) {
  const Program program = make_encoder(QeccCode::Q5_1_3);
  const Fabric fabric = make_quale_fabric({4, 4, 4});
  MapperOptions options;
  options.kind = MapperKind::IdealBaseline;
  const MapResult result = map_program(program, fabric, options);
  EXPECT_EQ(result.latency, 510);
  EXPECT_EQ(result.ideal_latency, 510);
  EXPECT_EQ(result.trace.size(), 0u);
  EXPECT_EQ(result.placement_runs, 0);
}

TEST(Mapper, ExecutionOptionsPerKind) {
  MapperOptions options;
  options.kind = MapperKind::Qspr;
  ExecutionOptions qspr = execution_options_for(options);
  EXPECT_TRUE(qspr.router.turn_aware);
  EXPECT_TRUE(qspr.dual_move);
  EXPECT_FALSE(qspr.return_home_after_gate);
  EXPECT_EQ(qspr.tech.channel_capacity, 2);

  options.kind = MapperKind::Quale;
  ExecutionOptions quale = execution_options_for(options);
  EXPECT_FALSE(quale.router.turn_aware);
  EXPECT_FALSE(quale.dual_move);
  EXPECT_TRUE(quale.return_home_after_gate);
  EXPECT_EQ(quale.tech.channel_capacity, 1);

  options.kind = MapperKind::Qpos;
  ExecutionOptions qpos = execution_options_for(options);
  EXPECT_FALSE(qpos.router.turn_aware);
  EXPECT_FALSE(qpos.return_home_after_gate);
}

TEST(Mapper, AblationOverridesApply) {
  MapperOptions options;
  options.kind = MapperKind::Qspr;
  options.turn_aware = false;
  options.dual_move = false;
  options.channel_capacity = 4;
  options.return_home = true;
  const ExecutionOptions exec = execution_options_for(options);
  EXPECT_FALSE(exec.router.turn_aware);
  EXPECT_FALSE(exec.dual_move);
  EXPECT_TRUE(exec.return_home_after_gate);
  EXPECT_EQ(exec.tech.channel_capacity, 4);

  options.schedule_policy = SchedulePolicy::Alap;
  EXPECT_EQ(schedule_options_for(options).policy, SchedulePolicy::Alap);
}

TEST(Mapper, SchedulePoliciesPerKind) {
  MapperOptions options;
  options.kind = MapperKind::Qspr;
  EXPECT_EQ(schedule_options_for(options).policy,
            SchedulePolicy::QsprPriority);
  options.kind = MapperKind::Quale;
  EXPECT_EQ(schedule_options_for(options).policy, SchedulePolicy::Alap);
  options.kind = MapperKind::Qpos;
  EXPECT_EQ(schedule_options_for(options).policy,
            SchedulePolicy::AsapDependents);
}

TEST(Mapper, AllMappersProduceValidTraces) {
  const Program program = make_encoder(QeccCode::Q5_1_3);
  const Fabric fabric = make_paper_fabric();
  const DependencyGraph graph = DependencyGraph::build(program);

  for (const MapperKind kind :
       {MapperKind::Qspr, MapperKind::Quale, MapperKind::Qpos}) {
    MapperOptions options = fast_qspr();
    options.kind = kind;
    const MapResult result = map_program(program, fabric, options);
    EXPECT_GE(result.latency, result.ideal_latency) << to_string(kind);
    EXPECT_EQ(result.trace.makespan(), result.latency) << to_string(kind);
    EXPECT_EQ(result.trace.gate_count(), graph.node_count())
        << to_string(kind);
    const auto violations =
        validate_trace(result.trace, graph, fabric, result.initial_placement,
                       execution_options_for(options).tech);
    EXPECT_TRUE(violations.empty())
        << to_string(kind) << ": "
        << (violations.empty() ? "" : violations[0]);
  }
}

TEST(Mapper, QsprBeatsQualeOnTheBenchmarks) {
  const Fabric fabric = make_paper_fabric();
  for (const QeccCode code : {QeccCode::Q5_1_3, QeccCode::Q9_1_3}) {
    const Program program = make_encoder(code);
    MapperOptions qspr = fast_qspr();
    MapperOptions quale;
    quale.kind = MapperKind::Quale;
    const Duration qspr_latency = map_program(program, fabric, qspr).latency;
    const Duration quale_latency = map_program(program, fabric, quale).latency;
    EXPECT_LT(qspr_latency, quale_latency) << code_name(code);
  }
}

TEST(Mapper, PlacerKindsAreOrderedInQuality) {
  const Program program = make_encoder(QeccCode::Q7_1_3);
  const Fabric fabric = make_paper_fabric();

  MapperOptions center = fast_qspr();
  center.placer = PlacerKind::Center;
  MapperOptions mc = fast_qspr();
  mc.placer = PlacerKind::MonteCarlo;
  mc.monte_carlo_trials = 16;
  MapperOptions mvfb = fast_qspr();
  mvfb.placer = PlacerKind::Mvfb;
  mvfb.mvfb_seeds = 8;

  const MapResult center_result = map_program(program, fabric, center);
  const MapResult mc_result = map_program(program, fabric, mc);
  const MapResult mvfb_result = map_program(program, fabric, mvfb);

  EXPECT_EQ(center_result.placement_runs, 1);
  EXPECT_EQ(mc_result.placement_runs, 16);
  EXPECT_GE(mvfb_result.placement_runs, 8 * 3);
  // Search can only improve on a single deterministic placement.
  EXPECT_LE(mc_result.latency, center_result.latency);
  EXPECT_LE(mvfb_result.latency, center_result.latency);
}

TEST(Mapper, ReportsCpuTimeAndKind) {
  const Program program = make_encoder(QeccCode::Q5_1_3);
  const Fabric fabric = make_quale_fabric({4, 4, 4});
  MapperOptions options = fast_qspr();
  const MapResult result = map_program(program, fabric, options);
  EXPECT_EQ(result.kind, MapperKind::Qspr);
  EXPECT_GE(result.cpu_ms, 0.0);
  EXPECT_EQ(to_string(MapperKind::Quale), "QUALE");
  EXPECT_EQ(to_string(MapperKind::IdealBaseline), "Baseline");
}

TEST(Mapper, QualeStorageDisciplineRestoresPlacement) {
  // The QUALE model's defining invariant: ions always return to their home
  // traps, so the final placement equals the initial (center) placement on
  // every benchmark.
  const Fabric fabric = make_paper_fabric();
  for (const PaperNumbers& paper : paper_benchmarks()) {
    const Program program = make_encoder(paper.code);
    MapperOptions options;
    options.kind = MapperKind::Quale;
    const MapResult result = map_program(program, fabric, options);
    EXPECT_EQ(result.final_placement, result.initial_placement)
        << code_name(paper.code);
    EXPECT_EQ(result.initial_placement,
              center_placement(fabric, program.qubit_count()))
        << code_name(paper.code);
  }
}

TEST(Mapper, DualMoveWithReturnHomeSendsBothOperandsBack) {
  // Ablation combination: with median targeting *both* operands may travel;
  // the storage discipline then shuttles both home again. (On multi-gate
  // circuits homes can legitimately migrate — a median target may claim an
  // away ion's empty home trap — so the exact-restore invariant is only
  // checked on a single gate.)
  const Fabric fabric = make_paper_fabric();
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  program.add_gate(GateKind::CX, a, b);
  MapperOptions options;
  options.placer = PlacerKind::Center;
  options.return_home = true;  // dual_move stays at the QSPR default (true)
  const MapResult result = map_program(program, fabric, options);
  EXPECT_EQ(result.final_placement, result.initial_placement);
  const DependencyGraph graph = DependencyGraph::build(program);
  EXPECT_TRUE(validate_trace(result.trace, graph, fabric,
                             result.initial_placement, TechnologyParams{})
                  .empty());

  // On a full benchmark the combination still validates end-to-end.
  const Program encoder = make_encoder(QeccCode::Q7_1_3);
  const MapResult full = map_program(encoder, fabric, options);
  const DependencyGraph encoder_graph = DependencyGraph::build(encoder);
  EXPECT_TRUE(validate_trace(full.trace, encoder_graph, fabric,
                             full.initial_placement, TechnologyParams{})
                  .empty());
}

TEST(Mapper, ThrowsWhenFabricTooSmall) {
  const Program program = make_encoder(QeccCode::Q23_1_7);  // 23 qubits
  const Fabric fabric = make_quale_fabric({2, 2, 4});       // 4 traps
  EXPECT_THROW(map_program(program, fabric, fast_qspr()), ValidationError);
}

}  // namespace
}  // namespace qspr
