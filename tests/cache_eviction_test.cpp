// LRU memory-budget enforcement of the two warm-start caches: the
// per-fabric artifact cache and the program-level result cache. Both follow
// the same contract: set_budget_bytes(0) is unlimited, eviction is
// least-recently-used, and the entry the current operation returns/inserts
// is never evicted (a budget smaller than one entry degrades to a cache of
// one, not thrash-to-empty).
#include <gtest/gtest.h>

#include <memory>

#include "core/artifact_cache.hpp"
#include "core/result_cache.hpp"
#include "fabric/quale_fabric.hpp"

namespace qspr {
namespace {

TEST(FabricArtifactCacheTest, HitsShareOneBundlePerLayout) {
  FabricArtifactCache cache;
  const Fabric paper = make_paper_fabric();
  const auto first = cache.get(paper);
  // A *different instance* of the same layout hits the same bundle.
  const Fabric again = make_paper_fabric();
  const auto second = cache.get(again);
  EXPECT_EQ(first.get(), second.get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.builds, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(FabricArtifactCacheTest, BudgetEvictsLeastRecentlyUsed) {
  FabricArtifactCache cache;
  const Fabric small = make_quale_fabric({2, 2, 3});
  const Fabric medium = make_quale_fabric({3, 3, 4});
  const Fabric paper = make_paper_fabric();

  const std::size_t one = cache.get(small)->memory_bytes();
  // Room for roughly two small bundles: inserting the (much larger) paper
  // bundle must evict, and the least-recently-used entry goes first.
  cache.set_budget_bytes(2 * one + cache.get(medium)->memory_bytes());
  (void)cache.get(medium);  // small is now the LRU entry
  (void)cache.get(paper);
  const auto stats = cache.stats();
  EXPECT_GE(stats.evictions, 1);

  // The evicted layout rebuilds on next sight; the recently-used one hits.
  const long long builds_before = stats.builds;
  (void)cache.get(small);
  EXPECT_EQ(cache.stats().builds, builds_before + 1);
}

TEST(FabricArtifactCacheTest, TinyBudgetDegradesToCacheOfOne) {
  FabricArtifactCache cache;
  cache.set_budget_bytes(1);  // smaller than any bundle
  const auto paper = cache.get(make_paper_fabric());
  EXPECT_NE(paper, nullptr);  // the returned bundle is never evicted
  const auto quale = cache.get(make_quale_fabric({3, 3, 4}));
  EXPECT_NE(quale, nullptr);
  EXPECT_GE(cache.stats().evictions, 1);
}

TEST(FabricArtifactCacheTest, EvictedBundleSurvivesThroughHeldReference) {
  FabricArtifactCache cache;
  const auto held = cache.get(make_quale_fabric({2, 2, 3}));
  const auto tables = held->landmark_tables(6.0, 1.0, 2);
  ASSERT_NE(tables, nullptr);
  cache.set_budget_bytes(1);
  (void)cache.get(make_paper_fabric());  // evicts the held bundle
  // Eviction drops the cache's reference only: the bundle and its landmark
  // tables stay valid for jobs still holding them.
  EXPECT_GT(held->memory_bytes(), 0u);
  EXPECT_EQ(held->landmark_tables(6.0, 1.0, 2).get(), tables.get());
}

std::shared_ptr<const CachedMapResult> entry_of_bytes(std::size_t extra) {
  auto entry = std::make_shared<CachedMapResult>();
  // route_history is counted by memory_bytes, so it makes a convenient
  // size dial for eviction tests.
  entry->route_history.assign(extra / sizeof(double), 0.0);
  entry->converged = true;
  return entry;
}

TEST(ResultCacheTest, FindMissThenHit) {
  ResultCache cache;
  const ResultCache::Key key{1, 2, 3};
  EXPECT_EQ(cache.find(key), nullptr);
  cache.insert(key, entry_of_bytes(64));
  EXPECT_NE(cache.find(key), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GE(stats.bytes, sizeof(CachedMapResult));
}

TEST(ResultCacheTest, BudgetEvictsLeastRecentlyUsed) {
  ResultCache cache;
  const std::size_t entry_bytes = entry_of_bytes(4096)->memory_bytes();
  cache.set_budget_bytes(2 * entry_bytes + entry_bytes / 2);

  const ResultCache::Key a{1, 0, 0};
  const ResultCache::Key b{2, 0, 0};
  const ResultCache::Key c{3, 0, 0};
  cache.insert(a, entry_of_bytes(4096));
  cache.insert(b, entry_of_bytes(4096));
  EXPECT_NE(cache.find(a), nullptr);  // refresh a: b is now the LRU entry
  cache.insert(c, entry_of_bytes(4096));

  EXPECT_EQ(cache.find(b), nullptr);  // evicted as LRU
  EXPECT_NE(cache.find(a), nullptr);
  EXPECT_NE(cache.find(c), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes, 2 * entry_bytes + entry_bytes / 2);
}

TEST(ResultCacheTest, TinyBudgetDegradesToCacheOfOne) {
  ResultCache cache;
  cache.set_budget_bytes(1);
  const ResultCache::Key a{1, 0, 0};
  const ResultCache::Key b{2, 0, 0};
  cache.insert(a, entry_of_bytes(1024));
  // The just-inserted entry is protected; everything else goes.
  EXPECT_EQ(cache.size(), 1u);
  cache.insert(b, entry_of_bytes(1024));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.find(a), nullptr);
  EXPECT_NE(cache.find(b), nullptr);
}

TEST(ResultCacheTest, ZeroBudgetIsUnlimited) {
  ResultCache cache;
  for (std::uint64_t i = 0; i < 16; ++i) {
    cache.insert({i, 0, 0}, entry_of_bytes(4096));
  }
  EXPECT_EQ(cache.size(), 16u);
  EXPECT_EQ(cache.stats().evictions, 0);
}

TEST(ResultCacheTest, MemoryBytesCountsNegotiationState) {
  // The warm-start negotiation state rides in every cached result; the
  // budget must see it or a history-heavy cache blows past its cap.
  const auto lean = entry_of_bytes(0);
  const auto heavy = entry_of_bytes(1 << 16);
  EXPECT_GE(heavy->memory_bytes(),
            lean->memory_bytes() + (std::size_t{1} << 16));
}

}  // namespace
}  // namespace qspr
