// Minimal downstream program: build a fabric, precompute ALT landmark
// tables, and route one net through the negotiated PathFinder — touching
// enough of the public surface (fabric, routing graph, landmarks, options)
// that a packaging break in headers, link line or the exported target shows
// up as a compile/link/run failure rather than passing vacuously.
#include <cstdio>

#include "fabric/quale_fabric.hpp"
#include "route/landmarks.hpp"
#include "route/pathfinder.hpp"

int main() {
  const qspr::Fabric fabric = qspr::make_quale_fabric({2, 2, 4});
  const qspr::RoutingGraph graph(fabric);
  const qspr::TechnologyParams params;
  const qspr::LandmarkTables tables = qspr::build_landmark_tables(
      graph, static_cast<double>(params.t_move),
      static_cast<double>(params.t_turn), 4);

  qspr::PathFinderOptions options;
  options.alt_landmarks = tables.k();
  options.landmarks = &tables;
  const auto traps = fabric.traps_by_distance(fabric.center());
  const qspr::PathFinderResult result = qspr::route_nets_negotiated(
      graph, params, {{traps.front(), traps.back()}}, options);

  std::printf("consumer: routed 1 net, delay %lld us, %d landmarks\n",
              static_cast<long long>(result.total_delay),
              result.landmarks_used);
  return result.paths.size() == 1 && result.landmarks_used == tables.k() &&
                 result.converged
             ? 0
             : 1;
}
