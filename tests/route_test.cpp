// Unit tests for the routing graph, congestion state, Dijkstra router and
// path lowering. Expected delays are hand-computed on the 5x5 tile fabric:
//
//     J---J        traps at (1,1),(1,3),(3,1),(3,3); every trap has a
//     |T.T|        horizontal port on the top/bottom channel row and a
//     |...|        vertical port on the left/right channel column.
//     |T.T|
//     J---J
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "fabric/quale_fabric.hpp"
#include "fabric/text_io.hpp"
#include "route/congestion.hpp"
#include "route/path.hpp"
#include "route/router.hpp"
#include "route/routing_graph.hpp"

namespace qspr {
namespace {

class RouteTest : public ::testing::Test {
 protected:
  RouteTest()
      : fabric_(make_quale_fabric({2, 2, 4})),
        graph_(fabric_),
        congestion_(fabric_.segment_count(), fabric_.junction_count()) {}

  TrapId trap_at(int row, int col) const {
    const TrapId id = fabric_.trap_at({row, col});
    EXPECT_TRUE(id.is_valid());
    return id;
  }

  Fabric fabric_;
  RoutingGraph graph_;
  CongestionState congestion_;
  TechnologyParams params_;
  SearchArena<Duration> arena_;
};

TEST_F(RouteTest, GraphNodesFollowConnectivity) {
  // Junctions carry both orientations.
  EXPECT_TRUE(graph_.node_at({0, 0}, Orientation::Horizontal).is_valid());
  EXPECT_TRUE(graph_.node_at({0, 0}, Orientation::Vertical).is_valid());
  // A mid-column channel cell with no trap beside it is vertical-only.
  EXPECT_TRUE(graph_.node_at({2, 0}, Orientation::Vertical).is_valid());
  EXPECT_FALSE(graph_.node_at({2, 0}, Orientation::Horizontal).is_valid());
  // A channel cell with a trap beside it gains the perpendicular vertex.
  EXPECT_TRUE(graph_.node_at({1, 0}, Orientation::Horizontal).is_valid());
  // Empty cells have no vertices.
  EXPECT_FALSE(graph_.node_at({2, 2}, Orientation::Horizontal).is_valid());
  EXPECT_FALSE(graph_.node_at({2, 2}, Orientation::Vertical).is_valid());
}

TEST_F(RouteTest, TrapNodesExist) {
  for (const Trap& trap : fabric_.traps()) {
    const RouteNodeId node = graph_.trap_node(trap.id);
    ASSERT_TRUE(node.is_valid());
    EXPECT_TRUE(graph_.node(node).is_trap);
    EXPECT_EQ(graph_.node(node).trap, trap.id);
    EXPECT_FALSE(graph_.edges(node).empty());
  }
}

TEST_F(RouteTest, TurnEdgesLinkOrientations) {
  const RouteNodeId h = graph_.node_at({0, 0}, Orientation::Horizontal);
  const RouteNodeId v = graph_.node_at({0, 0}, Orientation::Vertical);
  bool found = false;
  for (const RouteEdge& edge : graph_.edges(h)) {
    if (edge.to == v) {
      EXPECT_TRUE(edge.is_turn);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(RouteTest, AdjacentTrapToTrapDelay) {
  // (1,1) -> (1,3): out the north port, turn, 2 cells along the top channel,
  // turn, in through the north port: 4 moves + 2 turns = 4 + 20 = 24 us.
  Router router(graph_, params_);
  const auto path = router.route_trap_to_trap(trap_at(1, 1), trap_at(1, 3),
                                              congestion_, arena_);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->total_delay(), 24);
  EXPECT_EQ(path->move_count(), 4);
  EXPECT_EQ(path->turn_count(), 2);
}

TEST_F(RouteTest, SameTrapIsEmptyPath) {
  Router router(graph_, params_);
  const auto path = router.route_trap_to_trap(trap_at(1, 1), trap_at(1, 1),
                                              congestion_, arena_);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->empty());
  EXPECT_EQ(path->total_delay(), 0);
}

TEST_F(RouteTest, PathStepsAreContinuous) {
  Router router(graph_, params_);
  const auto path = router.route_trap_to_trap(trap_at(1, 1), trap_at(3, 3),
                                              congestion_, arena_);
  ASSERT_TRUE(path.has_value());
  Position position = fabric_.trap(trap_at(1, 1)).position;
  for (const PathStep& step : path->steps) {
    EXPECT_EQ(step.from, position);
    if (step.kind == StepKind::Move) {
      EXPECT_TRUE(are_adjacent(step.from, step.to));
      position = step.to;
    } else {
      EXPECT_EQ(step.from, step.to);
    }
  }
  EXPECT_EQ(position, fabric_.trap(trap_at(3, 3)).position);
}

TEST_F(RouteTest, ResourceUsesCoverTheRoute) {
  Router router(graph_, params_);
  const auto path = router.route_trap_to_trap(trap_at(1, 1), trap_at(1, 3),
                                              congestion_, arena_);
  ASSERT_TRUE(path.has_value());
  // The whole route lives in the single top channel segment.
  ASSERT_EQ(path->resource_uses.size(), 1u);
  const ResourceUse& use = path->resource_uses[0];
  EXPECT_EQ(use.resource.kind, ResourceRef::Kind::Segment);
  EXPECT_EQ(use.resource.index, fabric_.segment_at({0, 2}).value());
  EXPECT_EQ(use.enter_offset, 0);
  EXPECT_EQ(use.exit_offset, path->total_delay());
}

TEST_F(RouteTest, CongestionWeightsSteerAroundLoadedChannels) {
  Router router(graph_, params_);
  TechnologyParams strict = params_;
  strict.channel_capacity = 1;
  Router strict_router(graph_, strict);

  // Fill the top channel: the direct 24 us route is blocked under capacity 1
  // and the router detours via the left column, bottom row and right column.
  congestion_.acquire(ResourceRef::segment(fabric_.segment_at({0, 2})));
  const auto detour = strict_router.route_trap_to_trap(
      trap_at(1, 1), trap_at(1, 3), congestion_, arena_);
  ASSERT_TRUE(detour.has_value());
  EXPECT_EQ(detour->total_delay(), 52);  // 12 moves + 4 turns
  EXPECT_EQ(detour->move_count(), 12);
  EXPECT_EQ(detour->turn_count(), 4);

  // With capacity 2 the loaded channel is pricier but still usable.
  const auto direct = router.route_trap_to_trap(trap_at(1, 1), trap_at(1, 3),
                                                congestion_, arena_);
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(direct->total_delay(), 24);
}

TEST_F(RouteTest, FullyBlockedRouteReturnsNullopt) {
  TechnologyParams strict = params_;
  strict.channel_capacity = 1;
  strict.junction_capacity = 1;
  Router router(graph_, strict);
  // Block the top channel and both bottom junctions: no route remains.
  congestion_.acquire(ResourceRef::segment(fabric_.segment_at({0, 2})));
  congestion_.acquire(ResourceRef::junction(fabric_.junction_at({4, 0})));
  congestion_.acquire(ResourceRef::junction(fabric_.junction_at({4, 4})));
  const auto path = router.route_trap_to_trap(trap_at(1, 1), trap_at(1, 3),
                                              congestion_, arena_);
  EXPECT_FALSE(path.has_value());
}

TEST_F(RouteTest, TurnUnawareSelectionIgnoresTurnCosts) {
  Router aware(graph_, params_, RouterOptions{true});
  Router naive(graph_, params_, RouterOptions{false});

  Duration naive_cost = 0;
  const auto aware_path = aware.route_trap_to_trap(
      trap_at(1, 1), trap_at(3, 3), congestion_, arena_);
  const auto naive_path = naive.route_trap_to_trap(
      trap_at(1, 1), trap_at(3, 3), congestion_, arena_, &naive_cost);
  ASSERT_TRUE(aware_path.has_value());
  ASSERT_TRUE(naive_path.has_value());
  // The turn-aware router minimises physical delay, so it can only be better.
  EXPECT_LE(aware_path->total_delay(), naive_path->total_delay());
  // The naive selection cost counts no turn delay at all.
  EXPECT_EQ(naive_cost,
            static_cast<Duration>(naive_path->move_count()) * params_.t_move);
}

TEST_F(RouteTest, DeterministicAcrossCalls) {
  Router router(graph_, params_);
  const auto a = router.route_trap_to_trap(trap_at(1, 1), trap_at(3, 3),
                                           congestion_, arena_);
  const auto b = router.route_trap_to_trap(trap_at(1, 1), trap_at(3, 3),
                                           congestion_, arena_);
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(a->nodes, b->nodes);
}

TEST(CongestionState, AcquireReleaseRoundTrip) {
  CongestionState state(3, 2);
  const auto seg = ResourceRef::segment(SegmentId(1));
  const auto jct = ResourceRef::junction(JunctionId(0));
  EXPECT_EQ(state.load(seg), 0);
  state.acquire(seg);
  state.acquire(seg);
  state.acquire(jct);
  EXPECT_EQ(state.segment_load(SegmentId(1)), 2);
  EXPECT_EQ(state.junction_load(JunctionId(0)), 1);
  EXPECT_EQ(state.total_load(), 3);
  state.release(seg);
  EXPECT_EQ(state.load(seg), 1);
  state.release(seg);
  EXPECT_THROW(state.release(seg), SimulationError);
}

TEST(RoutingGraphLarge, PaperFabricIsFullyConnected) {
  const Fabric fabric = make_paper_fabric();
  const RoutingGraph graph(fabric);
  CongestionState congestion(fabric.segment_count(), fabric.junction_count());
  Router router(graph, TechnologyParams{});
  SearchArena<Duration> arena;
  // Far corners of the fabric are mutually reachable.
  const TrapId first = fabric.traps().front().id;
  const TrapId last = fabric.traps().back().id;
  const auto path = router.route_trap_to_trap(first, last, congestion, arena);
  ASSERT_TRUE(path.has_value());
  EXPECT_GT(path->move_count(), 50);
  // Physical delay is bounded below by the Manhattan distance.
  const int distance = manhattan_distance(fabric.trap(first).position,
                                          fabric.trap(last).position);
  EXPECT_GE(path->total_delay(), distance);
}

}  // namespace
}  // namespace qspr
