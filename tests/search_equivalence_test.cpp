// Equivalence and determinism guarantees of the optimized routing core.
//
// The arena-backed A* engine must negotiate the same solution quality as the
// reference Dijkstra engine (same total delay, same convergence), and the
// whole pipeline must be bit-for-bit deterministic across runs. The CSR
// adjacency layout is also checked structurally against the graph
// invariants the searches rely on.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "fabric/linear_fabric.hpp"
#include "fabric/quale_fabric.hpp"
#include "route/heuristic.hpp"
#include "route/pathfinder.hpp"
#include "route/router.hpp"

namespace qspr {
namespace {

std::vector<NetRequest> random_nets(const Fabric& fabric, int count,
                                    std::uint64_t seed) {
  const auto traps = fabric.traps_by_distance(fabric.center());
  Rng rng(seed);
  std::vector<NetRequest> nets;
  const std::size_t pool = std::min<std::size_t>(traps.size(), 64);
  for (int i = 0; i < count; ++i) {
    const TrapId from = traps[rng.uniform_index(pool)];
    TrapId to = traps[rng.uniform_index(pool)];
    while (to == from) to = traps[rng.uniform_index(pool)];
    nets.push_back({from, to});
  }
  return nets;
}

PathFinderOptions with_engine(PathFinderEngine engine, bool turn_aware) {
  PathFinderOptions options;
  options.engine = engine;
  options.turn_aware = turn_aware;
  return options;
}

// Strict negotiation-level equality (total delay, iterations, overuse) is
// slightly stronger than A* optimality guarantees: both engines find
// minimum-negotiated-cost paths per query, but equal-cost ties could in
// principle resolve to paths with different footprints and steer later
// iterations apart. The fabrics and seeds here are fixed, so the check is
// deterministic; if a future fabric/seed trips only the strict fields while
// per-query costs still match, weaken those assertions — that is a tie
// artifact, not an engine bug.
void expect_equivalent(const Fabric& fabric, const std::vector<NetRequest>& nets,
                       bool turn_aware) {
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  const PathFinderResult reference = route_nets_negotiated(
      graph, params, nets,
      with_engine(PathFinderEngine::ReferenceDijkstra, turn_aware));
  const PathFinderResult optimized = route_nets_negotiated(
      graph, params, nets,
      with_engine(PathFinderEngine::AStarArena, turn_aware));

  EXPECT_EQ(optimized.total_delay, reference.total_delay);
  EXPECT_EQ(optimized.converged, reference.converged);
  EXPECT_EQ(optimized.iterations_used, reference.iterations_used);
  EXPECT_EQ(optimized.overused_resources, reference.overused_resources);
}

TEST(SearchEquivalenceTest, LinearFabricMatchesReference) {
  const Fabric fabric = make_linear_fabric(10);
  for (const std::uint64_t seed : {1u, 7u, 23u}) {
    expect_equivalent(fabric, random_nets(fabric, 6, seed),
                      /*turn_aware=*/true);
  }
}

TEST(SearchEquivalenceTest, QualeFabricMatchesReference) {
  const Fabric fabric = make_quale_fabric({3, 3, 4});
  for (const std::uint64_t seed : {3u, 11u, 42u}) {
    expect_equivalent(fabric, random_nets(fabric, 8, seed),
                      /*turn_aware=*/true);
  }
}

TEST(SearchEquivalenceTest, TurnUnawareModeMatchesReference) {
  const Fabric fabric = make_quale_fabric({3, 3, 4});
  expect_equivalent(fabric, random_nets(fabric, 8, 5),
                    /*turn_aware=*/false);
}

TEST(SearchEquivalenceTest, ContendedNetsStillMatchReference) {
  // All nets share one corridor so negotiation must actually iterate.
  const Fabric fabric = make_quale_fabric({3, 3, 4});
  std::vector<NetRequest> nets;
  const TrapId left = fabric.trap_at({1, 1});
  const TrapId right = fabric.trap_at({1, 7});
  ASSERT_TRUE(left.is_valid());
  ASSERT_TRUE(right.is_valid());
  for (int i = 0; i < 4; ++i) nets.push_back({left, right});
  expect_equivalent(fabric, nets, /*turn_aware=*/true);
}

TEST(SearchDeterminismTest, RepeatedRunsProduceIdenticalPaths) {
  const Fabric fabric = make_quale_fabric({3, 3, 4});
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  const auto nets = random_nets(fabric, 10, 17);

  const PathFinderResult first = route_nets_negotiated(graph, params, nets);
  const PathFinderResult second = route_nets_negotiated(graph, params, nets);
  ASSERT_EQ(first.paths.size(), second.paths.size());
  for (std::size_t i = 0; i < first.paths.size(); ++i) {
    EXPECT_EQ(first.paths[i].nodes, second.paths[i].nodes) << "net " << i;
  }
  EXPECT_EQ(first.total_delay, second.total_delay);
  EXPECT_EQ(first.iterations_used, second.iterations_used);
}

TEST(SearchDeterminismTest, PathFinderScratchReuseDoesNotPerturbResults) {
  // One PathFinderScratch reused across batches (the per-worker ownership
  // pattern) must negotiate exactly like a fresh scratch per batch.
  const Fabric fabric = make_quale_fabric({3, 3, 4});
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  PathFinderScratch shared;
  for (const std::uint64_t seed : {2u, 9u, 31u}) {
    const auto nets = random_nets(fabric, 8, seed);
    const PathFinderResult reused =
        route_nets_negotiated(graph, params, nets, {}, shared);
    const PathFinderResult fresh = route_nets_negotiated(graph, params, nets);
    ASSERT_EQ(reused.paths.size(), fresh.paths.size());
    for (std::size_t i = 0; i < reused.paths.size(); ++i) {
      EXPECT_EQ(reused.paths[i].nodes, fresh.paths[i].nodes) << "net " << i;
    }
    EXPECT_EQ(reused.total_delay, fresh.total_delay);
    EXPECT_EQ(reused.iterations_used, fresh.iterations_used);
  }
}

TEST(SearchDeterminismTest, RouterArenaReuseDoesNotPerturbResults) {
  // An arena reused across queries (the per-worker TrialContext pattern)
  // must answer exactly like a fresh arena per query.
  const Fabric fabric = make_quale_fabric({3, 3, 4});
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  CongestionState congestion(fabric.segment_count(), fabric.junction_count());
  const Router router(graph, params);
  SearchArena<Duration> shared_arena;

  const auto traps = fabric.traps_by_distance(fabric.center());
  for (std::size_t i = 0; i + 1 < std::min<std::size_t>(traps.size(), 12);
       ++i) {
    SearchArena<Duration> fresh_arena;
    Duration shared_cost = 0;
    Duration fresh_cost = 0;
    const auto a = router.route_trap_to_trap(
        traps[i], traps[i + 1], congestion, shared_arena, &shared_cost);
    const auto b = router.route_trap_to_trap(
        traps[i], traps[i + 1], congestion, fresh_arena, &fresh_cost);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->nodes, b->nodes);
    EXPECT_EQ(shared_cost, fresh_cost);
  }
}

PathFinderOptions with_mechanisms(bool partial, bool adaptive, bool bidi) {
  PathFinderOptions options;
  options.partial_ripup = partial;
  options.adaptive_bound = adaptive;
  options.bidirectional = bidi;
  if (bidi) options.bidirectional_min_cells = 0;  // force it for every query
  // Pin the classic negotiation schedule so each mechanism is isolated
  // against the same fixed trajectory (the adaptive schedule is ablated
  // separately in the saturated_overload bench suite).
  options.adaptive_schedule = false;
  return options;
}

TEST(PartialRipupTest, MatchesFullRipupOnConvergingCases) {
  // Partial rip-up only skips nets whose paths are conflict-free; on every
  // converging suite the negotiated solution must land on the same total
  // delay as the classic full-sweep loop (the trajectories may visit
  // different intermediate states, but the converged result may not differ).
  // Seeds are pinned to cases where the full-sweep loop converges. (On rare
  // other seeds partial rip-up converges to an equal-or-better delay via a
  // different tie resolution — e.g. {3,3,4} seed 47 lands 284 vs 320 — which
  // is a solution-quality difference, not an equivalence bug.)
  struct Case {
    Fabric fabric;
    int nets;
    std::vector<std::uint64_t> seeds;
  };
  const std::vector<Case> cases = {
      {make_quale_fabric({3, 3, 4}), 8, {1u, 2u, 3u}},
      {make_quale_fabric({4, 4, 4}), 10, {1u, 2u, 4u}},
  };
  for (const Case& c : cases) {
    const RoutingGraph graph(c.fabric);
    const TechnologyParams params;
    for (const std::uint64_t seed : c.seeds) {
      const auto nets = random_nets(c.fabric, c.nets, seed);
      const PathFinderResult full = route_nets_negotiated(
          graph, params, nets,
          with_mechanisms(/*partial=*/false, false, false));
      const PathFinderResult partial = route_nets_negotiated(
          graph, params, nets,
          with_mechanisms(/*partial=*/true, false, false));
      ASSERT_TRUE(full.converged) << "pick a converging seed";
      ASSERT_TRUE(partial.converged) << "seed " << seed;
      EXPECT_EQ(partial.total_delay, full.total_delay) << "seed " << seed;
      // Partial rip-up must actually skip work once nets settle.
      EXPECT_LE(partial.searches_performed,
                static_cast<long long>(nets.size()) * partial.iterations_used);
    }
  }
}

TEST(BidirectionalSearchTest, MatchesUnidirectionalPathCostsUncontended) {
  // One net at a time (no congestion): selection cost equals physical delay,
  // so equal optimal costs mean equal total_delay per path. Includes the
  // corner-to-corner hauls the bidirectional search exists for.
  const Fabric fabric = make_paper_fabric();
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  std::vector<NetRequest> pairs = {
      {fabric.traps().front().id, fabric.traps().back().id},
  };
  const auto random = random_nets(fabric, 12, 97);
  pairs.insert(pairs.end(), random.begin(), random.end());
  for (const NetRequest& net : pairs) {
    const PathFinderResult uni = route_nets_negotiated(
        graph, params, {net}, with_mechanisms(false, false, false));
    const PathFinderResult bidi = route_nets_negotiated(
        graph, params, {net}, with_mechanisms(false, false, true));
    EXPECT_EQ(bidi.total_delay, uni.total_delay)
        << net.from << " -> " << net.to;
  }
}

TEST(BidirectionalSearchTest, NegotiatedBatchesStayLegalAndConverge) {
  // Under contention equal-cost ties may resolve to different paths, so the
  // cross-engine guarantee is per-query cost optimality, not identical
  // trajectories: the bidirectional negotiation must still converge with a
  // capacity-legal solution wherever the unidirectional one does.
  const Fabric fabric = make_quale_fabric({4, 4, 4});
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  // Seeds pinned to cases where both variants converge (equal-cost ties can
  // otherwise steer the negotiation to different converged solutions).
  for (const std::uint64_t seed : {1u, 2u, 4u}) {
    const auto nets = random_nets(fabric, 10, seed);
    const PathFinderResult uni = route_nets_negotiated(
        graph, params, nets, with_mechanisms(false, false, false));
    const PathFinderResult bidi = route_nets_negotiated(
        graph, params, nets, with_mechanisms(false, false, true));
    ASSERT_TRUE(uni.converged);
    EXPECT_TRUE(bidi.converged) << "seed " << seed;
    EXPECT_EQ(bidi.total_delay, uni.total_delay) << "seed " << seed;
  }
}

TEST(CsrGraphTest, EdgeSpansCoverSymmetricGraph) {
  const Fabric fabric = make_quale_fabric({2, 2, 4});
  const RoutingGraph graph(fabric);

  std::size_t total = 0;
  for (std::size_t u = 0; u < graph.node_count(); ++u) {
    const RouteNodeId id = RouteNodeId::from_index(u);
    const EdgeSpan span = graph.edges(id);
    EXPECT_FALSE(span.empty()) << "isolated route node " << u;
    total += span.size();
    for (const RouteEdge& edge : span) {
      ASSERT_TRUE(edge.to.is_valid());
      ASSERT_LT(edge.to.index(), graph.node_count());
      // Symmetry: the reverse edge exists with the same turn flag.
      bool found = false;
      for (const RouteEdge& back : graph.edges(edge.to)) {
        if (back.to == id && back.is_turn == edge.is_turn) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "missing reverse edge " << edge.to << " -> " << u;
    }
  }
  EXPECT_EQ(total, graph.edge_count());
}

TEST(HeuristicTest, GridLowerBoundIsConsistentAcrossAllEdges) {
  // h(u) <= w(u, v) + h(v) for every directed edge and every trap target —
  // the property that keeps A*'s settled-node shortcut exact.
  const Fabric fabric = make_quale_fabric({2, 2, 4});
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  const Duration turn_cost = params.t_turn;

  for (const Trap& trap : fabric.traps()) {
    const Position target = trap.position;
    const RouteNodeId target_node = graph.trap_node(trap.id);
    for (std::size_t u = 0; u < graph.node_count(); ++u) {
      const RouteNodeId id = RouteNodeId::from_index(u);
      const Duration hu =
          grid_lower_bound(graph.node(id), target, params.t_move, turn_cost);
      for (const RouteEdge& edge : graph.edges(id)) {
        // Edges into non-target traps are pruned by every search (traps are
        // endpoints only), so consistency is only required elsewhere.
        const RouteNode& v = graph.node(edge.to);
        if (v.is_trap && edge.to != target_node) continue;
        // Minimum possible selection weight of this edge.
        const Duration weight = edge.is_turn ? turn_cost : params.t_move;
        const Duration hv =
            grid_lower_bound(v, target, params.t_move, turn_cost);
        EXPECT_LE(hu, weight + hv)
            << "inconsistent bound on edge " << u << " -> " << edge.to;
      }
    }
  }
}

TEST(HeuristicTest, CongestionScaledBoundIsConsistentForBothFrontiers) {
  // The congestion-adaptive bound must stay consistent under the *floored*
  // edge weights (every move into a resource costs >= floor * t_move, moves
  // into traps exactly t_move, turns exactly turn_cost):
  //   forward frontier:  h_f(u) <= w_min(u,v) + h_f(v)
  //   backward frontier: h_b(v) <= w_min(u,v) + h_b(u)
  // for every edge u -> v and every trap endpoint. Consistency plus
  // h(endpoint) == 0 implies admissibility, and it is what lets both A*
  // frontiers treat settled nodes as final.
  const Fabric fabric = make_quale_fabric({2, 2, 4});
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  const double t_move = static_cast<double>(params.t_move);
  const double turn_cost = static_cast<double>(params.t_turn);
  constexpr double kEps = 1e-9;

  for (const double floor : {1.0, 1.6, 2.5}) {
    for (const Trap& trap : fabric.traps()) {
      const Position endpoint = trap.position;
      const RouteNodeId endpoint_node = graph.trap_node(trap.id);
      for (std::size_t u = 0; u < graph.node_count(); ++u) {
        const RouteNodeId id = RouteNodeId::from_index(u);
        const RouteNode& unode = graph.node(id);
        const double hf_u = congestion_scaled_bound(
            unode, endpoint, t_move, turn_cost, floor, true);
        const double hb_u = congestion_scaled_bound(
            unode, endpoint, t_move, turn_cost, floor, unode.is_trap);
        for (const RouteEdge& edge : graph.edges(id)) {
          const RouteNode& vnode = graph.node(edge.to);
          // Edges into non-endpoint traps are pruned by every search.
          if (vnode.is_trap && edge.to != endpoint_node) continue;
          if (unode.is_trap && id != endpoint_node) continue;
          const double weight =
              edge.is_turn ? turn_cost
                           : (vnode.is_trap ? t_move : floor * t_move);
          const double hf_v = congestion_scaled_bound(
              vnode, endpoint, t_move, turn_cost, floor, true);
          const double hb_v = congestion_scaled_bound(
              vnode, endpoint, t_move, turn_cost, floor, vnode.is_trap);
          EXPECT_LE(hf_u, weight + hf_v + kEps)
              << "forward, floor " << floor << ", edge " << u << " -> "
              << edge.to;
          EXPECT_LE(hb_v, weight + hb_u + kEps)
              << "backward, floor " << floor << ", edge " << u << " -> "
              << edge.to;
        }
      }
    }
  }
}

}  // namespace
}  // namespace qspr
