// Tests for the calibrated cyclic-encoder builder, the trajectory renderer
// and the congestion-aware trap-selection extension.
#include <gtest/gtest.h>

#include "circuit/dependency_graph.hpp"
#include "common/error.hpp"
#include "core/mapper.hpp"
#include "fabric/quale_fabric.hpp"
#include "qecc/codes.hpp"
#include "qecc/cyclic_builder.hpp"
#include "sim/trace_validator.hpp"
#include "sim/trajectory.hpp"

namespace qspr {
namespace {

// ---------------------------------------------------------------------------
// Cyclic encoder builder: the calibration contract, swept over specs.
// ---------------------------------------------------------------------------

class CyclicBuilderCalibration
    : public ::testing::TestWithParam<CyclicEncoderSpec> {};

TEST_P(CyclicBuilderCalibration, CriticalPathMatchesPrediction) {
  const CyclicEncoderSpec& spec = GetParam();
  const Program program = make_cyclic_encoder(spec);
  const DependencyGraph graph = DependencyGraph::build(program);
  const TechnologyParams params;
  EXPECT_EQ(graph.critical_path_latency(params),
            predicted_baseline(spec, params))
      << spec.name;
  EXPECT_EQ(program.qubit_count(), static_cast<std::size_t>(spec.qubits));
}

std::vector<CyclicEncoderSpec> calibration_specs() {
  std::vector<CyclicEncoderSpec> specs;
  int counter = 0;
  for (const int qubits : {8, 11, 14, 19, 23}) {
    for (const int chain : {5, 9, 14, 25, 40}) {
      for (const bool seeded : {false, true}) {
        for (const int lanes : {0, 1, 2}) {
          CyclicEncoderSpec spec;
          spec.name = "sweep_" + std::to_string(counter++);
          spec.qubits = qubits;
          spec.data_qubits = 1 + (counter % 3);
          spec.chain_gates = chain;
          spec.seed_hadamard = seeded;
          spec.chord_lanes = lanes;
          if (chain >= 10) spec.slack_hadamards = {1, 4};
          specs.push_back(spec);
        }
      }
    }
  }
  return specs;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CyclicBuilderCalibration,
                         ::testing::ValuesIn(calibration_specs()),
                         [](const auto& info) { return info.param.name; });

TEST(CyclicBuilder, RejectsInvalidSpecs) {
  CyclicEncoderSpec spec;
  spec.qubits = 3;
  EXPECT_THROW(make_cyclic_encoder(spec), ValidationError);
  spec = {};
  spec.data_qubits = 99;
  EXPECT_THROW(make_cyclic_encoder(spec), ValidationError);
  spec = {};
  spec.chain_gates = 0;
  EXPECT_THROW(make_cyclic_encoder(spec), ValidationError);
  spec = {};
  spec.chord_lanes = 3;
  EXPECT_THROW(make_cyclic_encoder(spec), ValidationError);
  spec = {};
  spec.qubits = 6;
  spec.chain_gates = 12;  // wraps on a small block with chords
  EXPECT_THROW(make_cyclic_encoder(spec), ValidationError);
  spec = {};
  spec.slack_hadamards = {1, 2, 3, 4, 5, 6};
  EXPECT_THROW(make_cyclic_encoder(spec), ValidationError);
  spec = {};
  spec.slack_hadamards = {0};  // before the chain head
  EXPECT_THROW(make_cyclic_encoder(spec), ValidationError);
}

TEST(CyclicBuilder, ChordLanesAddWidthNotDepth) {
  CyclicEncoderSpec narrow;
  narrow.qubits = 14;
  narrow.chain_gates = 20;
  narrow.chord_lanes = 0;
  CyclicEncoderSpec wide = narrow;
  wide.chord_lanes = 2;
  const Program narrow_program = make_cyclic_encoder(narrow);
  const Program wide_program = make_cyclic_encoder(wide);
  EXPECT_GT(wide_program.instruction_count(),
            narrow_program.instruction_count() + 20);
  const TechnologyParams params;
  EXPECT_EQ(
      DependencyGraph::build(wide_program).critical_path_latency(params),
      DependencyGraph::build(narrow_program).critical_path_latency(params));
}

TEST(CyclicBuilder, DataQubitsAreTrailingAndUninitialised) {
  CyclicEncoderSpec spec;
  spec.qubits = 10;
  spec.data_qubits = 3;
  const Program program = make_cyclic_encoder(spec);
  for (std::size_t q = 0; q < 7; ++q) {
    EXPECT_TRUE(program.qubits()[q].init_value.has_value());
  }
  for (std::size_t q = 7; q < 10; ++q) {
    EXPECT_FALSE(program.qubits()[q].init_value.has_value());
  }
}

// ---------------------------------------------------------------------------
// Trajectory rendering.
// ---------------------------------------------------------------------------

TEST(Trajectory, MarksVisitedCellsAndGates) {
  const Fabric fabric = make_quale_fabric({2, 2, 4});
  const RoutingGraph routing(fabric);
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  program.add_gate(GateKind::CX, a, b);
  const DependencyGraph graph = DependencyGraph::build(program);
  Placement placement(2);
  placement.set(a, fabric.trap_at({1, 1}));
  placement.set(b, fabric.trap_at({1, 3}));
  const ExecutionResult result = execute_circuit(
      graph, fabric, routing, {0}, placement, ExecutionOptions{});

  // One of the qubits moved; find it and check its drawing.
  for (const QubitId q : {a, b}) {
    const TravelSummary travel = summarize_travel(result.trace, q);
    const std::string drawing =
        render_trajectory(result.trace, fabric, q, &graph);
    EXPECT_NE(drawing.find('@'), std::string::npos);  // gate site marked
    if (travel.moves > 0) {
      EXPECT_EQ(travel.moves, 4);
      EXPECT_EQ(travel.turns, 2);
      EXPECT_EQ(travel.travel_time, 24);
      EXPECT_NE(drawing.find('*'), std::string::npos);
      EXPECT_NE(drawing.find('o'), std::string::npos);
    } else {
      EXPECT_EQ(drawing.find('*'), std::string::npos);
    }
  }
}

TEST(Trajectory, StationaryQubitDrawsOnlyItsGateSites) {
  const Fabric fabric = make_quale_fabric({2, 2, 4});
  const std::string drawing =
      render_trajectory(Trace{}, fabric, QubitId(0));
  // No ops at all: the plain fabric rendering.
  EXPECT_EQ(drawing.find('*'), std::string::npos);
  EXPECT_EQ(drawing.find('@'), std::string::npos);
}

// ---------------------------------------------------------------------------
// Congestion-aware trap selection.
// ---------------------------------------------------------------------------

TEST(TrapSelection, PolicyPlumbsThroughMapperOptions) {
  MapperOptions options;
  EXPECT_EQ(execution_options_for(options).trap_selection,
            TrapSelectionPolicy::NearestToAnchor);
  options.trap_selection = TrapSelectionPolicy::CongestionAware;
  EXPECT_EQ(execution_options_for(options).trap_selection,
            TrapSelectionPolicy::CongestionAware);
}

TEST(TrapSelection, CongestionAwareProducesValidMappings) {
  const Fabric fabric = make_paper_fabric();
  const Program program = make_encoder(QeccCode::Q9_1_3);
  const DependencyGraph graph = DependencyGraph::build(program);
  MapperOptions options;
  options.placer = PlacerKind::Center;
  options.trap_selection = TrapSelectionPolicy::CongestionAware;
  const MapResult result = map_program(program, fabric, options);
  EXPECT_GE(result.latency, result.ideal_latency);
  EXPECT_TRUE(validate_trace(result.trace, graph, fabric,
                             result.initial_placement, TechnologyParams{})
                  .empty());
}

TEST(TrapSelection, BothPoliciesAgreeWithoutCongestion) {
  // A single 2-qubit gate: no congestion anywhere, so the congestion-aware
  // policy (ties broken toward the anchor) picks the same trap.
  const Fabric fabric = make_quale_fabric({3, 3, 4});
  const RoutingGraph routing(fabric);
  Program program;
  const QubitId a = program.add_qubit("a");
  const QubitId b = program.add_qubit("b");
  program.add_gate(GateKind::CX, a, b);
  const DependencyGraph graph = DependencyGraph::build(program);
  Placement placement(2);
  placement.set(a, fabric.trap_at({1, 1}));
  placement.set(b, fabric.trap_at({5, 5}));

  ExecutionOptions nearest;
  ExecutionOptions aware;
  aware.trap_selection = TrapSelectionPolicy::CongestionAware;
  const ExecutionResult r1 =
      execute_circuit(graph, fabric, routing, {0}, placement, nearest);
  const ExecutionResult r2 =
      execute_circuit(graph, fabric, routing, {0}, placement, aware);
  EXPECT_EQ(r1.latency, r2.latency);
  EXPECT_EQ(r1.timings[0].trap, r2.timings[0].trap);
}

}  // namespace
}  // namespace qspr
