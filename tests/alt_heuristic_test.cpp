// ALT landmark heuristic layer: table determinism, edge-exhaustive
// consistency of the combined (grid + ALT) potentials for both frontiers at
// several penalty floors and after a floored refresh, the w = 1.0
// bit-identity contract of the bounded-suboptimal knob, the w > 1 quality
// bound, and bit-identity of the ALT-enabled speculative parallel loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/executor.hpp"
#include "common/rng.hpp"
#include "fabric/linear_fabric.hpp"
#include "fabric/quale_fabric.hpp"
#include "route/heuristic.hpp"
#include "route/landmarks.hpp"
#include "route/pathfinder.hpp"

namespace qspr {
namespace {

std::vector<NetRequest> random_nets(const Fabric& fabric, int count,
                                    std::uint64_t seed) {
  const auto traps = fabric.traps_by_distance(fabric.center());
  Rng rng(seed);
  std::vector<NetRequest> nets;
  const std::size_t pool = std::min<std::size_t>(traps.size(), 64);
  for (int i = 0; i < count; ++i) {
    const TrapId from = traps[rng.uniform_index(pool)];
    TrapId to = traps[rng.uniform_index(pool)];
    while (to == from) to = traps[rng.uniform_index(pool)];
    nets.push_back({from, to});
  }
  return nets;
}

// ---------------------------------------------------------------------------
// Landmark-table construction
// ---------------------------------------------------------------------------

TEST(AltTables, SelectionAndTablesAreDeterministicAcrossRebuilds) {
  const Fabric fabric = make_quale_fabric({3, 3, 4});
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  const double t_move = static_cast<double>(params.t_move);
  const double turn = static_cast<double>(params.t_turn);

  const LandmarkTables first = build_landmark_tables(graph, t_move, turn, 8);
  const LandmarkTables second = build_landmark_tables(graph, t_move, turn, 8);
  ASSERT_EQ(first.k(), 8);
  EXPECT_EQ(first.landmarks, second.landmarks);
  EXPECT_EQ(first.forward, second.forward);   // bit-identical doubles
  EXPECT_EQ(first.backward, second.backward);

  // A floored refresh reuses the landmark set and is itself deterministic.
  SearchArena<double> arena;
  LandmarkTables floored_a;
  LandmarkTables floored_b;
  build_landmark_tables(graph, t_move, turn, 1.6, first.landmarks, arena,
                        floored_a);
  build_landmark_tables(graph, t_move, turn, 1.6, first.landmarks, arena,
                        floored_b);
  EXPECT_EQ(floored_a.landmarks, first.landmarks);
  EXPECT_EQ(floored_a.forward, floored_b.forward);
  EXPECT_EQ(floored_a.backward, floored_b.backward);
  // Raising the floor can only raise (or keep) every table distance.
  for (std::size_t i = 0; i < first.forward.size(); ++i) {
    EXPECT_GE(floored_a.forward[i], first.forward[i]);
    EXPECT_GE(floored_a.backward[i], first.backward[i]);
  }
}

TEST(AltTables, LandmarksAreDistinctAndSpread) {
  const Fabric fabric = make_quale_fabric({3, 3, 4});
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  const LandmarkTables tables =
      build_landmark_tables(graph, static_cast<double>(params.t_move),
                            static_cast<double>(params.t_turn), 6);
  ASSERT_EQ(tables.k(), 6);
  std::vector<RouteNodeId> sorted = tables.landmarks;
  std::sort(sorted.begin(), sorted.end(),
            [](RouteNodeId a, RouteNodeId b) { return a.index() < b.index(); });
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
      << "duplicate landmark selected";
  // Every landmark's self-distance is zero in both tables.
  for (int i = 0; i < tables.k(); ++i) {
    const std::size_t v = tables.landmarks[i].index();
    EXPECT_EQ(tables.forward_row(v)[i], 0.0);
    EXPECT_EQ(tables.backward_row(v)[i], 0.0);
  }
}

// ---------------------------------------------------------------------------
// Consistency of the combined potentials (both frontiers)
// ---------------------------------------------------------------------------

// The searches combine the scaled grid bound and the ALT bound by max. Both
// must be consistent under the floored edge weights (turn -> turn_cost,
// move into trap -> t_move, move into channel/junction -> floor * t_move)
// whenever the tables' build floor is <= the live floor:
//   forward frontier:  h_f(u) <= w_min(u,v) + h_f(v)
//   backward frontier: h_b(v) <= w_min(u,v) + h_b(u)
// for every un-pruned edge u -> v and every trap endpoint pair.
void expect_combined_bound_consistent(const RoutingGraph& graph,
                                      const LandmarkTables& tables,
                                      double live_floor) {
  const Fabric& fabric = graph.fabric();
  const double t_move = tables.t_move;
  const double turn_cost = tables.turn_cost;
  const int k = tables.k();
  constexpr double kEps = 1e-9;

  for (const Trap& trap : fabric.traps()) {
    const Position endpoint = trap.position;
    const RouteNodeId endpoint_node = graph.trap_node(trap.id);
    const double* end_fwd = tables.forward_row(endpoint_node.index());
    const double* end_bwd = tables.backward_row(endpoint_node.index());
    const auto h_forward = [&](RouteNodeId id, const RouteNode& node) {
      return std::max(
          congestion_scaled_bound(node, endpoint, t_move, turn_cost,
                                  live_floor, true),
          alt_lower_bound(tables.forward_row(id.index()),
                          tables.backward_row(id.index()), end_fwd, end_bwd,
                          k));
    };
    const auto h_backward = [&](RouteNodeId id, const RouteNode& node) {
      return std::max(
          congestion_scaled_bound(node, endpoint, t_move, turn_cost,
                                  live_floor, node.is_trap),
          alt_lower_bound(end_fwd, end_bwd, tables.forward_row(id.index()),
                          tables.backward_row(id.index()), k));
    };
    for (std::size_t u = 0; u < graph.node_count(); ++u) {
      const RouteNodeId id = RouteNodeId::from_index(u);
      const RouteNode& unode = graph.node(id);
      const double hf_u = h_forward(id, unode);
      const double hb_u = h_backward(id, unode);
      for (const RouteEdge& edge : graph.edges(id)) {
        const RouteNode& vnode = graph.node(edge.to);
        // Edges into non-endpoint traps are pruned by every search.
        if (vnode.is_trap && edge.to != endpoint_node) continue;
        if (unode.is_trap && id != endpoint_node) continue;
        const double weight =
            edge.is_turn ? turn_cost
                         : (vnode.is_trap ? t_move : live_floor * t_move);
        EXPECT_LE(hf_u, weight + h_forward(edge.to, vnode) + kEps)
            << "forward, floor " << live_floor << ", edge " << u << " -> "
            << edge.to;
        EXPECT_LE(h_backward(edge.to, vnode), weight + hb_u + kEps)
            << "backward, floor " << live_floor << ", edge " << u << " -> "
            << edge.to;
      }
    }
  }
}

TEST(AltConsistency, CombinedPotentialsConsistentAtAllFloors) {
  const Fabric fabric = make_quale_fabric({2, 2, 4});
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  const LandmarkTables base =
      build_landmark_tables(graph, static_cast<double>(params.t_move),
                            static_cast<double>(params.t_turn), 8);
  // Base (floor 1) tables stay valid at every live floor >= 1.
  for (const double floor : {1.0, 1.6, 2.5}) {
    expect_combined_bound_consistent(graph, base, floor);
  }
}

TEST(AltConsistency, RefreshedTablesConsistentAtAndAboveTheirFloor) {
  // After a floor refresh the tables are rebuilt at the raised floor over
  // the same landmark set; they must be consistent for every live floor at
  // or above their build floor (below it the negotiation falls back to the
  // base tables, so that regime needs no guarantee).
  const Fabric fabric = make_quale_fabric({2, 2, 4});
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  const double t_move = static_cast<double>(params.t_move);
  const double turn = static_cast<double>(params.t_turn);
  const LandmarkTables base = build_landmark_tables(graph, t_move, turn, 8);
  SearchArena<double> arena;
  LandmarkTables refreshed;
  build_landmark_tables(graph, t_move, turn, 1.6, base.landmarks, arena,
                        refreshed);
  for (const double floor : {1.6, 2.5}) {
    expect_combined_bound_consistent(graph, refreshed, floor);
  }
}

TEST(AltConsistency, HistoryPricedTablesConsistentUnderDominatingWeights) {
  // The negotiation-loop refresh rebuilds the tables over per-node prices
  // t_move * (1 + history(v)). The ALT bound from such tables must be
  // consistent under *any* edge weights that dominate the prices entry for
  // entry — checked edge-exhaustively at the prices themselves, the tightest
  // dominating weights (consistency is preserved by raising weights).
  const Fabric fabric = make_quale_fabric({2, 2, 4});
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  const double t_move = static_cast<double>(params.t_move);
  const double turn = static_cast<double>(params.t_turn);
  const LandmarkTables base = build_landmark_tables(graph, t_move, turn, 8);

  // Synthetic but irregular history profile, deterministic in the node index.
  std::vector<double> price(graph.node_count());
  for (std::size_t v = 0; v < price.size(); ++v) {
    const double history = 0.25 * static_cast<double>((v * 7) % 5);
    price[v] = t_move * (1.0 + history);
  }
  SearchArena<double> arena;
  LandmarkTables priced;
  build_landmark_tables_priced(graph, turn, price, base.landmarks, arena,
                               priced);
  const int k = priced.k();
  constexpr double kEps = 1e-9;
  for (const Trap& trap : fabric.traps()) {
    const RouteNodeId endpoint = graph.trap_node(trap.id);
    const double* end_fwd = priced.forward_row(endpoint.index());
    const double* end_bwd = priced.backward_row(endpoint.index());
    const auto h = [&](RouteNodeId id) {
      return alt_lower_bound(priced.forward_row(id.index()),
                             priced.backward_row(id.index()), end_fwd, end_bwd,
                             k);
    };
    for (std::size_t u = 0; u < graph.node_count(); ++u) {
      const RouteNodeId id = RouteNodeId::from_index(u);
      if (graph.node(id).is_trap && id != endpoint) continue;
      for (const RouteEdge& edge : graph.edges(id)) {
        if (graph.node(edge.to).is_trap && edge.to != endpoint) continue;
        const double weight =
            edge.is_turn ? turn : price[edge.to.index()];
        EXPECT_LE(h(id), weight + h(edge.to) + kEps)
            << "edge " << u << " -> " << edge.to;
      }
    }
  }
}

TEST(AltRefresh, HistoryRefreshFiresAndPreservesExactDelays) {
  // A congested batch with an eager refresh threshold: the history-priced
  // rebuilds must actually fire and, at w = 1.0, leave the negotiated
  // outcome identical to the grid-only run — the refreshed bound is still
  // admissible, so the exact search finds the same-cost paths.
  const Fabric fabric = make_quale_fabric({3, 3, 4});
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  const LandmarkTables tables =
      build_landmark_tables(graph, static_cast<double>(params.t_move),
                            static_cast<double>(params.t_turn), 8);
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto nets = random_nets(fabric, 20, seed);
    PathFinderOptions grid;
    PathFinderOptions alt;
    alt.alt_landmarks = 8;
    alt.landmarks = &tables;
    alt.alt_refresh_threshold = 1.05;
    const PathFinderResult g = route_nets_negotiated(graph, params, nets,
                                                     grid);
    const PathFinderResult a = route_nets_negotiated(graph, params, nets,
                                                     alt);
    ASSERT_GE(a.alt_refreshes, 1)
        << "load too light to ramp history; pick a denser seed";
    EXPECT_EQ(a.total_delay, g.total_delay) << "seed " << seed;
    EXPECT_EQ(a.iterations_used, g.iterations_used) << "seed " << seed;
    EXPECT_EQ(a.converged, g.converged) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// w = 1.0 bit-identity and ALT/grid negotiation equality
// ---------------------------------------------------------------------------

TEST(AltSearch, ExplicitUnitWeightIsBitIdenticalToDefault) {
  // heuristic_weight = 1.0 multiplies every f-value by 1.0 — an IEEE no-op —
  // so the search trajectory, paths and diagnostics are bit-identical to
  // the default options, ALT on or off.
  const Fabric fabric = make_quale_fabric({4, 4, 4});
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  for (const int landmarks : {0, 8}) {
    for (const std::uint64_t seed : {1u, 7u, 23u}) {
      const auto nets = random_nets(fabric, 12, seed);
      PathFinderOptions plain;
      plain.alt_landmarks = landmarks;
      PathFinderOptions weighted = plain;
      weighted.heuristic_weight = 1.0;  // explicit, same value
      const PathFinderResult a = route_nets_negotiated(graph, params, nets,
                                                       plain);
      const PathFinderResult b = route_nets_negotiated(graph, params, nets,
                                                       weighted);
      ASSERT_EQ(a.paths.size(), b.paths.size());
      for (std::size_t i = 0; i < a.paths.size(); ++i) {
        EXPECT_EQ(a.paths[i].nodes, b.paths[i].nodes) << "net " << i;
      }
      EXPECT_EQ(a.total_delay, b.total_delay);
      EXPECT_EQ(a.iterations_used, b.iterations_used);
      EXPECT_EQ(a.nodes_settled, b.nodes_settled);
    }
  }
}

TEST(AltSearch, MatchesGridHeuristicDelayOnUncontendedQueries) {
  // One net at a time: both heuristics are admissible and consistent, so
  // both searches return minimum-cost paths — equal total_delay per query,
  // including the corner-to-corner hauls that exercise the bidirectional
  // frontier. The ALT search must also settle no *more* nodes in aggregate.
  const Fabric fabric = make_paper_fabric();
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  const LandmarkTables tables =
      build_landmark_tables(graph, static_cast<double>(params.t_move),
                            static_cast<double>(params.t_turn), 8);
  std::vector<NetRequest> pairs = {
      {fabric.traps().front().id, fabric.traps().back().id},
  };
  const auto random = random_nets(fabric, 12, 97);
  pairs.insert(pairs.end(), random.begin(), random.end());
  long long grid_settled = 0;
  long long alt_settled = 0;
  for (const NetRequest& net : pairs) {
    PathFinderOptions grid;
    PathFinderOptions alt;
    alt.alt_landmarks = 8;
    alt.landmarks = &tables;
    const PathFinderResult g = route_nets_negotiated(graph, params, {net},
                                                     grid);
    const PathFinderResult a = route_nets_negotiated(graph, params, {net},
                                                     alt);
    EXPECT_EQ(a.total_delay, g.total_delay) << net.from << " -> " << net.to;
    EXPECT_EQ(a.landmarks_used, 8);
    grid_settled += g.nodes_settled;
    alt_settled += a.nodes_settled;
  }
  EXPECT_LE(alt_settled, grid_settled);
}

TEST(AltSearch, MatchesGridHeuristicOnConvergingNegotiations) {
  // Negotiated batches on pinned converging seeds: different consistent
  // heuristics may resolve equal-cost ties to different paths, but the
  // converged solution quality must coincide. Seeds are pinned to cases
  // where both variants converge (the PartialRipupTest precedent).
  const Fabric fabric = make_quale_fabric({4, 4, 4});
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  const LandmarkTables tables =
      build_landmark_tables(graph, static_cast<double>(params.t_move),
                            static_cast<double>(params.t_turn), 8);
  for (const std::uint64_t seed : {1u, 2u, 4u}) {
    const auto nets = random_nets(fabric, 10, seed);
    PathFinderOptions grid;
    PathFinderOptions alt;
    alt.alt_landmarks = 8;
    alt.landmarks = &tables;
    const PathFinderResult g = route_nets_negotiated(graph, params, nets,
                                                     grid);
    const PathFinderResult a = route_nets_negotiated(graph, params, nets,
                                                     alt);
    ASSERT_TRUE(g.converged) << "pick a converging seed";
    EXPECT_TRUE(a.converged) << "seed " << seed;
    EXPECT_EQ(a.total_delay, g.total_delay) << "seed " << seed;
  }
}

TEST(AltSearch, PrebuiltAndSelfBuiltTablesAgree) {
  // Passing cached tables must be invisible in the result: the negotiation
  // builds the same tables itself when none are provided.
  const Fabric fabric = make_quale_fabric({3, 3, 4});
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  const LandmarkTables tables =
      build_landmark_tables(graph, static_cast<double>(params.t_move),
                            static_cast<double>(params.t_turn), 8);
  const auto nets = random_nets(fabric, 10, 11);
  PathFinderOptions self_built;
  self_built.alt_landmarks = 8;
  PathFinderOptions prebuilt = self_built;
  prebuilt.landmarks = &tables;
  const PathFinderResult a = route_nets_negotiated(graph, params, nets,
                                                   self_built);
  const PathFinderResult b = route_nets_negotiated(graph, params, nets,
                                                   prebuilt);
  ASSERT_EQ(a.paths.size(), b.paths.size());
  for (std::size_t i = 0; i < a.paths.size(); ++i) {
    EXPECT_EQ(a.paths[i].nodes, b.paths[i].nodes) << "net " << i;
  }
  EXPECT_EQ(a.total_delay, b.total_delay);
  EXPECT_EQ(a.nodes_settled, b.nodes_settled);
}

// ---------------------------------------------------------------------------
// Bounded-suboptimal search (w > 1)
// ---------------------------------------------------------------------------

TEST(AltWeighted, UncontendedDelaysBoundedByWeight) {
  // One net at a time, no congestion: the negotiated cost equals the
  // physical delay, so each weighted path's delay must stay within w times
  // the exact search's. Checked for both frontiers (the corner haul goes
  // bidirectional) and both heuristics.
  const Fabric fabric = make_paper_fabric();
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  const LandmarkTables tables =
      build_landmark_tables(graph, static_cast<double>(params.t_move),
                            static_cast<double>(params.t_turn), 8);
  std::vector<NetRequest> pairs = {
      {fabric.traps().front().id, fabric.traps().back().id},
  };
  const auto random = random_nets(fabric, 12, 53);
  pairs.insert(pairs.end(), random.begin(), random.end());
  for (const double w : {1.1, 1.5}) {
    for (const int landmarks : {0, 8}) {
      for (const NetRequest& net : pairs) {
        PathFinderOptions exact;
        exact.alt_landmarks = landmarks;
        if (landmarks) exact.landmarks = &tables;
        PathFinderOptions weighted = exact;
        weighted.heuristic_weight = w;
        const PathFinderResult opt = route_nets_negotiated(graph, params,
                                                           {net}, exact);
        const PathFinderResult sub = route_nets_negotiated(graph, params,
                                                           {net}, weighted);
        EXPECT_LE(static_cast<double>(sub.total_delay),
                  w * static_cast<double>(opt.total_delay) + 1e-9)
            << "w=" << w << " landmarks=" << landmarks << " " << net.from
            << " -> " << net.to;
      }
    }
  }
}

TEST(AltWeighted, RejectsWeightBelowOne) {
  const Fabric fabric = make_quale_fabric({2, 2, 4});
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  const auto nets = random_nets(fabric, 2, 1);
  PathFinderOptions options;
  options.heuristic_weight = 0.9;
  EXPECT_THROW(route_nets_negotiated(graph, params, nets, options), Error);
}

// ---------------------------------------------------------------------------
// Parallel bit-identity with ALT enabled
// ---------------------------------------------------------------------------

TEST(AltParallel, SpeculativeLoopBitIdenticalWithAltAndWeight) {
  // The wave protocol's bit-identity contract must survive ALT potentials
  // and the suboptimality knob: route_jobs ∈ {2, 4} equals the serial loop
  // field for field, nodes_settled included.
  const Fabric fabric = make_quale_fabric({4, 4, 4});
  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  const LandmarkTables tables =
      build_landmark_tables(graph, static_cast<double>(params.t_move),
                            static_cast<double>(params.t_turn), 8);
  for (const double w : {1.0, 1.5}) {
    for (const std::uint64_t seed : {5u, 21u}) {
      const auto nets = random_nets(fabric, 24, seed);
      PathFinderOptions options;
      options.alt_landmarks = 8;
      options.landmarks = &tables;
      options.heuristic_weight = w;
      const PathFinderResult serial = route_nets_negotiated(graph, params,
                                                            nets, options);
      for (const int route_jobs : {2, 4}) {
        Executor executor(route_jobs);
        PathFinderScratch scratch;
        PathFinderScratchPool pool;
        PathFinderOptions parallel = options;
        parallel.route_jobs = route_jobs;
        const PathFinderResult result = route_nets_negotiated(
            graph, params, nets, parallel, scratch, executor, pool);
        ASSERT_EQ(result.paths.size(), serial.paths.size());
        for (std::size_t i = 0; i < result.paths.size(); ++i) {
          EXPECT_EQ(result.paths[i].nodes, serial.paths[i].nodes)
              << "net " << i << " route_jobs " << route_jobs << " w " << w;
        }
        EXPECT_EQ(result.total_delay, serial.total_delay);
        EXPECT_EQ(result.iterations_used, serial.iterations_used);
        EXPECT_EQ(result.total_excess, serial.total_excess);
        EXPECT_EQ(result.searches_performed, serial.searches_performed);
        EXPECT_EQ(result.nodes_settled, serial.nodes_settled);
        EXPECT_EQ(result.alt_refreshes, serial.alt_refreshes);
      }
    }
  }
}

}  // namespace
}  // namespace qspr
