// Lesion study: walk from QSPR to the QUALE configuration one design choice
// at a time, measuring the latency cost of removing each feature. This
// decomposes the Table 2 gap into the paper's §I contribution bullets:
// MVFB placement, dual-qubit median movement, turn-aware costs, channel
// multiplexing, the stay-where-you-interacted discipline, and the scheduler.
#include "bench_util.hpp"

using namespace qspr;

namespace {

struct Step {
  std::string name;
  MapperOptions options;
};

}  // namespace

int main() {
  qspr_bench::print_header(
      "Lesion study - removing QSPR features one at a time toward QUALE");

  std::vector<Step> steps;
  {
    MapperOptions full;
    full.mvfb_seeds = 25;
    steps.push_back({"QSPR (MVFB m=25)", full});

    MapperOptions no_mvfb = full;
    no_mvfb.placer = PlacerKind::Center;
    steps.push_back({"- MVFB (center placement)", no_mvfb});

    MapperOptions no_dual = no_mvfb;
    no_dual.dual_move = false;
    steps.push_back({"- dual-qubit movement", no_dual});

    MapperOptions no_turn = no_dual;
    no_turn.turn_aware = false;
    steps.push_back({"- turn-aware costs", no_turn});

    MapperOptions no_multiplex = no_turn;
    no_multiplex.channel_capacity = 1;
    steps.push_back({"- channel multiplexing", no_multiplex});

    MapperOptions return_home = no_multiplex;
    return_home.return_home = true;
    steps.push_back({"- stay-in-place (ions return home)", return_home});

    MapperOptions alap = return_home;
    alap.schedule_policy = SchedulePolicy::Alap;
    steps.push_back({"- QSPR priority (= QUALE)", alap});
  }

  std::vector<std::string> headers = {"Configuration"};
  for (const PaperNumbers& paper : paper_benchmarks()) {
    headers.push_back(code_name(paper.code));
  }
  headers.push_back("total");
  headers.push_back("vs QSPR");
  TextTable table(headers);

  Duration qspr_total = 0;
  for (const Step& step : steps) {
    std::vector<std::string> row = {step.name};
    Duration total = 0;
    for (const PaperNumbers& paper : paper_benchmarks()) {
      const Program program = make_encoder(paper.code);
      const Duration latency =
          map_program(program, make_paper_fabric(), step.options).latency;
      total += latency;
      row.push_back(std::to_string(latency));
    }
    if (qspr_total == 0) qspr_total = total;
    row.push_back(std::to_string(total));
    row.push_back("+" + format_fixed(100.0 *
                                         static_cast<double>(total - qspr_total) /
                                         static_cast<double>(qspr_total),
                                     1) +
                  "%");
    table.add_row(row);
  }
  std::cout << table.to_string();
  std::cout << "\nlatencies in us over the six QECC circuits; each row "
               "removes one more QSPR feature (cumulative). The last row is "
               "the QUALE configuration of Table 2.\n";
  return 0;
}
