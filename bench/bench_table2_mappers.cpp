// Reproduces paper Table 2: execution latency of the six QECC encoding
// circuits under the ideal baseline, the QUALE re-implementation and QSPR
// (MVFB placer, m = 100) on the 45x85 fabric, with the paper's reported
// values beside the measured ones.
#include "bench_util.hpp"

using namespace qspr;

int main() {
  qspr_bench::print_header(
      "Table 2 - Baseline vs QUALE vs QSPR execution latency (us)");

  const Fabric fabric = make_paper_fabric();
  TextTable table({"Circuit", "Heuristic", "Latency (us)", "Diff wrt base",
                   "Improv. wrt QUALE", "Paper latency", "Paper improv."});

  double total_measured_improvement = 0.0;
  double total_paper_improvement = 0.0;

  for (const PaperNumbers& paper : paper_benchmarks()) {
    const Program program = make_encoder(paper.code);

    MapperOptions baseline_options;
    baseline_options.kind = MapperKind::IdealBaseline;
    const MapResult baseline = map_program(program, fabric, baseline_options);

    MapperOptions quale_options;
    quale_options.kind = MapperKind::Quale;
    const MapResult quale = map_program(program, fabric, quale_options);

    MapperOptions qspr_options;
    qspr_options.kind = MapperKind::Qspr;
    qspr_options.placer = PlacerKind::Mvfb;
    qspr_options.mvfb_seeds = 100;
    const MapResult qspr = map_program(program, fabric, qspr_options);

    const std::string improv = qspr_bench::improvement(quale.latency,
                                                       qspr.latency);
    total_measured_improvement +=
        100.0 * static_cast<double>(quale.latency - qspr.latency) /
        static_cast<double>(quale.latency);
    total_paper_improvement += paper.improvement_percent;

    table.add_separator();
    table.add_row({code_name(paper.code), "Baseline",
                   std::to_string(baseline.latency), "-", "",
                   std::to_string(paper.baseline_latency), ""});
    table.add_row({"", "QUALE", std::to_string(quale.latency),
                   std::to_string(quale.latency - baseline.latency), "",
                   std::to_string(paper.quale_latency), ""});
    table.add_row({"", "QSPR", std::to_string(qspr.latency),
                   std::to_string(qspr.latency - baseline.latency), improv,
                   std::to_string(paper.qspr_latency),
                   format_fixed(paper.improvement_percent, 2) + "%"});
  }
  std::cout << table.to_string();

  std::cout << "\nmean improvement wrt QUALE: measured "
            << format_fixed(total_measured_improvement / 6.0, 1)
            << "%, paper " << format_fixed(total_paper_improvement / 6.0, 1)
            << "%\n"
            << "shape checks: QSPR < QUALE on every circuit; baseline is a "
               "lower bound; routing+congestion overhead grows with circuit "
               "size.\n";
  return 0;
}
