// Routing-core benchmark harness: runs the micro-router, PathFinder,
// saturated-overload ablation, scaling, trial-parallel and batch-throughput
// benches and emits a machine-readable BENCH_routing.json so every perf PR
// leaves a recorded trajectory.
//
//   bench_runner [--smoke] [--output PATH] [--jobs N] [--baseline PATH]
//
// --smoke shrinks repetition counts to a few iterations (CI bitrot guard)
// and, when a baseline BENCH_routing.json is readable, gates the pathfinder_*
// per-query numbers against it (>2x regression fails the run; set
// QSPR_SMOKE_NO_PERF_GATE=1 on slow runners to skip the gate); suites
// missing from the baseline are reported explicitly, never skipped in
// silence. --output defaults to BENCH_routing.json in the working directory;
// --baseline defaults to the checked-in BENCH_routing.json (repo root);
// --jobs caps the worker counts exercised by the parallel-scaling and
// batch-throughput suites (default 8; both always start from 1 worker).
//
// Reported per bench: ns/query (one nominal inner search: nets x iterations),
// ns/rep (one whole negotiation — the number that multiplies through the
// trial pipeline), searches actually performed (partial rip-up skips clean
// nets), negotiation iterations, convergence and residual over-use. The
// PathFinder suites run the optimized stack against the PR-1 baseline
// configuration (reference Dijkstra engine, full rip-up, classic schedule),
// so speedups are measured against live pre-optimization behaviour — never
// against a number frozen in a doc. batch_throughput likewise measures the
// batch service against a live sequential map_program loop.
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/executor.hpp"
#include "common/json.hpp"
#include "common/net.hpp"
#include "common/thread_pool.hpp"
#include "route/landmarks.hpp"
#include "route/pathfinder.hpp"
#include "service/batch_mapper.hpp"
#include "service/corpus.hpp"
#include "service/serve_loop.hpp"
#include "service/shard_client.hpp"
#include "service/shard_supervisor.hpp"

using namespace qspr;
using qspr_bench::JsonWriter;

namespace {

struct PathFinderSample {
  std::string name;
  std::string engine;
  std::string config;  // mechanism set: baseline | none | partial | ... | all
  int nets = 0;
  int repetitions = 0;
  double ns_per_query = 0.0;
  double ns_per_rep = 0.0;
  long long queries = 0;
  long long searches = 0;
  long long nodes_settled = 0;
  int iterations_used = 0;
  bool converged = false;
  int max_overuse = 0;
  int total_excess = 0;
  int min_feasible_excess = 0;
  int alt_refreshes = 0;
  Duration total_delay = 0;
  /// Per-net final path delays, in net order — the bounded-suboptimality
  /// assertion compares these against the exact run's, net for net.
  std::vector<Duration> net_delays;
  PathFinderOptions options;
};

/// The PR-1 negotiation loop: reference Dijkstra engine, full rip-up every
/// iteration, uncapped schedule — the live baseline every suite compares
/// against.
PathFinderOptions baseline_options() {
  PathFinderOptions options;
  options.engine = PathFinderEngine::ReferenceDijkstra;
  options.partial_ripup = false;
  options.adaptive_bound = false;
  options.adaptive_schedule = false;
  options.bidirectional = false;
  return options;
}

std::vector<NetRequest> central_nets(const Fabric& fabric, int count,
                                     std::uint64_t seed) {
  const auto central = fabric.traps_by_distance(fabric.center());
  const std::size_t pool = std::min<std::size_t>(central.size(), 64);
  Rng rng(seed);
  std::vector<NetRequest> nets;
  for (int i = 0; i < count; ++i) {
    const TrapId from = central[rng.uniform_index(pool)];
    TrapId to = central[rng.uniform_index(pool)];
    while (to == from) to = central[rng.uniform_index(pool)];
    nets.push_back({from, to});
  }
  return nets;
}

/// Long-haul uncontended pool for the ALT suite: shuffle *every* trap on the
/// fabric and greedily pair traps at least `min_cells` apart (Manhattan over
/// cell coordinates), so each net crosses a large fraction of the fabric and
/// no endpoint repeats. With this few nets the negotiation converges without
/// contention — the regime where per-search guarantees transfer to per-net
/// delays.
std::vector<NetRequest> longhaul_nets(const Fabric& fabric, int count,
                                      int min_cells, std::uint64_t seed) {
  auto traps = fabric.traps_by_distance(fabric.center());
  Rng rng(seed);
  for (std::size_t i = traps.size(); i > 1; --i) {
    std::swap(traps[i - 1], traps[rng.uniform_index(i)]);
  }
  std::vector<NetRequest> nets;
  for (std::size_t i = 0;
       i + 1 < traps.size() && static_cast<int>(nets.size()) < count; ++i) {
    const Position a = fabric.trap(traps[i]).position;
    for (std::size_t j = i + 1; j < traps.size(); ++j) {
      const Position b = fabric.trap(traps[j]).position;
      if (std::abs(a.row - b.row) + std::abs(a.col - b.col) >= min_cells) {
        nets.push_back({traps[i], traps[j]});
        std::swap(traps[j], traps[i + 1]);
        ++i;
        break;
      }
    }
  }
  if (static_cast<int>(nets.size()) != count) {
    std::cerr << "longhaul_nets: only " << nets.size() << " of " << count
              << " pairs at >= " << min_cells << " cells\n";
    std::exit(2);
  }
  return nets;
}

/// Saturated-but-structurally-feasible load: pair up a shuffled pool of
/// distinct central traps, so no endpoint is shared (structural floor 0) and
/// residual over-use is genuinely negotiable contention, not port demand no
/// router can remove.
std::vector<NetRequest> distinct_nets(const Fabric& fabric, int count,
                                      std::uint64_t seed) {
  const auto central = fabric.traps_by_distance(fabric.center());
  const std::size_t pool =
      std::min<std::size_t>(central.size(),
                            std::max<std::size_t>(128, 2 * count));
  if (pool < 2 * static_cast<std::size_t>(count)) {
    std::cerr << "distinct_nets: fabric has only " << central.size()
              << " traps, cannot draw " << count << " disjoint pairs\n";
    std::exit(2);
  }
  Rng rng(seed);
  std::vector<TrapId> traps(central.begin(), central.begin() + pool);
  for (std::size_t i = traps.size(); i > 1; --i) {
    std::swap(traps[i - 1], traps[rng.uniform_index(i)]);
  }
  std::vector<NetRequest> nets;
  for (int i = 0; i < count; ++i) {
    nets.push_back({traps[2 * i], traps[2 * i + 1]});
  }
  return nets;
}

PathFinderSample run_pathfinder(const std::string& name,
                                const std::string& config,
                                const RoutingGraph& graph,
                                const TechnologyParams& params,
                                const std::vector<NetRequest>& nets,
                                const PathFinderOptions& options,
                                int repetitions) {
  PathFinderSample sample;
  sample.name = name;
  sample.config = config;
  sample.engine = options.engine == PathFinderEngine::AStarArena
                      ? "astar_arena"
                      : "reference_dijkstra";
  sample.nets = static_cast<int>(nets.size());
  sample.repetitions = repetitions;
  sample.options = options;

  PathFinderResult result;
  // One scratch reused across repetitions and samples — the per-worker
  // ownership pattern of the trial-parallel pipeline. Besides keeping
  // allocations out of the timed loop, reusing one long-lived arena makes
  // samples comparable: fresh per-sample allocations can land on unlucky
  // cache-aliasing addresses and skew an arena-based sample by tens of
  // percent depending on what the earlier suites left on the heap.
  static PathFinderScratch scratch;
  sample.ns_per_rep = qspr_bench::time_ns_per_rep(repetitions, [&] {
    result = route_nets_negotiated(graph, params, nets, options, scratch);
  });
  // One nominal "query" is one net in one negotiation iteration; with
  // partial rip-up the searches actually performed can be fewer (recorded
  // separately as `searches_per_rep`).
  const long long queries =
      static_cast<long long>(nets.size()) * result.iterations_used;
  sample.queries = queries;
  sample.ns_per_query =
      queries > 0 ? sample.ns_per_rep / static_cast<double>(queries) : 0.0;
  sample.searches = result.searches_performed;
  sample.nodes_settled = result.nodes_settled;
  sample.iterations_used = result.iterations_used;
  sample.converged = result.converged;
  sample.max_overuse = result.max_overuse;
  sample.total_excess = result.total_excess;
  sample.min_feasible_excess = result.min_feasible_excess;
  sample.alt_refreshes = result.alt_refreshes;
  sample.total_delay = result.total_delay;
  sample.net_delays.reserve(result.paths.size());
  for (const RoutedPath& path : result.paths) {
    sample.net_delays.push_back(path.total_delay());
  }
  return sample;
}

void write_sample(JsonWriter& json, const PathFinderSample& sample) {
  json.begin_object()
      .field("name", sample.name)
      .field("engine", sample.engine)
      .field("config", sample.config)
      .field("nets", sample.nets)
      .field("repetitions", sample.repetitions)
      .field("queries_per_rep", sample.queries)
      .field("searches_per_rep", sample.searches)
      .field("nodes_settled", sample.nodes_settled)
      .field("ns_per_query", sample.ns_per_query)
      .field("ns_per_rep", sample.ns_per_rep)
      .field("iterations_used", sample.iterations_used)
      .field("converged", sample.converged)
      .field("max_overuse", sample.max_overuse)
      .field("total_excess", sample.total_excess)
      .field("min_feasible_excess", sample.min_feasible_excess)
      .field("partial_ripup", sample.options.partial_ripup)
      .field("adaptive_bound", sample.options.adaptive_bound)
      .field("adaptive_schedule", sample.options.adaptive_schedule)
      .field("bidirectional", sample.options.bidirectional)
      .field("alt_landmarks", sample.options.alt_landmarks)
      .field("heuristic_weight", sample.options.heuristic_weight)
      .field("alt_refreshes", sample.alt_refreshes)
      .field("total_delay_us", static_cast<long long>(sample.total_delay))
      .end_object();
}

std::string speedup_cell(double baseline_ns, double ns) {
  return ns > 0.0 ? format_fixed(baseline_ns / ns, 2) + "x" : "n/a";
}

/// Perf-gate extractor over a *parsed* baseline BENCH_routing.json: the
/// `ns_per_query` of the sample with the given name, engine and config,
/// looked up across every gated suite array (pathfinder_runs, alt_longhaul,
/// frontier_queue and incremental_remap). Field order and formatting no
/// longer matter (the shared JSON reader handles both), and a malformed
/// baseline fails the gate loudly instead of silently matching nothing.
/// Returns a negative value when the sample is absent.
double baseline_ns_per_query(const JsonValue& baseline,
                             const std::string& name,
                             const std::string& engine,
                             const std::string& config) {
  for (const char* suite : {"pathfinder_runs", "alt_longhaul",
                            "frontier_queue", "incremental_remap"}) {
    const JsonValue* runs = baseline.find(suite);
    if (runs == nullptr || !runs->is_array()) continue;
    for (const JsonValue& sample : runs->items()) {
      if (sample.string_or("name", "") == name &&
          sample.string_or("engine", "") == engine &&
          sample.string_or("config", "") == config) {
        return sample.number_or("ns_per_query", -1.0);
      }
    }
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string output = "BENCH_routing.json";
  std::string baseline_path = "BENCH_routing.json";
  int max_jobs = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--output" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      try {
        max_jobs = std::stoi(argv[++i]);
      } catch (const std::exception&) {
        max_jobs = 0;
      }
      if (max_jobs < 1) {
        std::cerr << "--jobs must be a positive integer\n";
        return 2;
      }
    } else {
      std::cerr << "usage: bench_runner [--smoke] [--output PATH] "
                   "[--baseline PATH] [--jobs N]\n";
      return 2;
    }
  }

  qspr_bench::print_header("Routing core benchmark harness");
  const TechnologyParams params;

  JsonWriter json;
  json.begin_object();
  json.field("schema", "qspr-bench-routing/v2");
  json.field("smoke", smoke);

  // Gate bookkeeping: pathfinder_* samples of this run, checked against the
  // baseline JSON at the end when --smoke.
  std::vector<PathFinderSample> gated_samples;

  // ------------------------------------------------------- micro-router ---
  // Single-query A* latency on the paper fabric (45x85, Fig. 4), the
  // greedy/incremental router used by the event simulator.
  {
    const Fabric fabric = make_paper_fabric();
    const RoutingGraph graph(fabric);
    CongestionState congestion(fabric.segment_count(),
                               fabric.junction_count());
    Router router(graph, params);
    SearchArena<Duration> arena;
    const auto central = fabric.traps_by_distance(fabric.center());
    const TrapId corner_a = fabric.traps().front().id;
    const TrapId corner_b = fabric.traps().back().id;
    const int reps = smoke ? 20 : 2000;

    json.key("micro_router").begin_array();
    struct Case {
      const char* name;
      TrapId from;
      TrapId to;
    };
    for (const Case c : {Case{"corner_to_corner", corner_a, corner_b},
                         Case{"neighbour_traps", central[0], central[1]}}) {
      Duration delay = 0;
      const double ns = qspr_bench::time_ns_per_rep(reps, [&] {
        const auto path =
            router.route_trap_to_trap(c.from, c.to, congestion, arena);
        delay = path.has_value() ? path->total_delay() : -1;
      });
      std::cout << "micro_router/" << c.name << ": "
                << format_fixed(ns, 0) << " ns/query, delay " << delay
                << " us\n";
      json.begin_object()
          .field("name", std::string(c.name))
          .field("fabric", "paper_45x85")
          .field("repetitions", reps)
          .field("ns_per_query", ns)
          .field("path_delay_us", static_cast<long long>(delay))
          .end_object();
    }
    json.end_array();
  }

  // ------------------------------------------------------ frontier-queue ---
  // The integer-cost Router Dijkstra under each frontier kind (binary heap /
  // monotone bucket queue / 4-ary heap) over a mixed long-haul + local
  // workload. The kinds pop the identical (f, g, node) order, so path delays
  // must agree exactly (asserted below); the rows measure the pure
  // constant-factor difference. The bucket row is the PR-9 acceptance
  // figure and every row feeds the --smoke perf gate.
  {
    const Fabric fabric = make_paper_fabric();
    const RoutingGraph graph(fabric);
    CongestionState congestion(fabric.segment_count(),
                               fabric.junction_count());
    Router router(graph, params);
    const auto central = fabric.traps_by_distance(fabric.center());
    const TrapId corner_a = fabric.traps().front().id;
    const TrapId corner_b = fabric.traps().back().id;
    struct Query {
      TrapId from;
      TrapId to;
    };
    const std::vector<Query> queries = {
        {corner_a, corner_b},        // corner-to-corner haul
        {central[0], central[1]},    // neighbour hop
        {corner_a, central[0]},      // corner to center
        {central[2], corner_b},      // center to corner
    };
    const int reps = smoke ? 20 : 2000;

    json.key("frontier_queue").begin_array();
    Duration reference_delay = -1;
    for (const FrontierKind kind :
         {FrontierKind::Binary, FrontierKind::Bucket, FrontierKind::Dary4}) {
      SearchArena<Duration> arena;
      arena.set_frontier(kind);
      Duration delay_sum = 0;
      const std::uint64_t settles_before = arena.settle_count();
      const double ns_per_rep = qspr_bench::time_ns_per_rep(reps, [&] {
        delay_sum = 0;
        for (const Query& q : queries) {
          const auto path =
              router.route_trap_to_trap(q.from, q.to, congestion, arena);
          delay_sum += path.has_value() ? path->total_delay() : -1;
        }
      });
      const auto settles = static_cast<long long>(
          arena.settle_count() - settles_before);
      const double ns_per_query =
          ns_per_rep / static_cast<double>(queries.size());
      const double settles_per_sec =
          ns_per_rep > 0.0
              ? static_cast<double>(settles) / static_cast<double>(reps) /
                    (ns_per_rep * 1e-9)
              : 0.0;
      if (reference_delay < 0) {
        reference_delay = delay_sum;
      } else if (delay_sum != reference_delay) {
        // The equivalence contract broke: the frontier is no longer a pure
        // constant-factor knob. Numbers recorded against it are garbage.
        std::cerr << "frontier_queue: " << to_string(kind)
                  << " path delays diverged from binary (" << delay_sum
                  << " vs " << reference_delay << ")\n";
        return 1;
      }
      std::cout << "frontier_queue/" << to_string(kind) << ": "
                << format_fixed(ns_per_query, 0) << " ns/query, "
                << format_fixed(settles_per_sec / 1e6, 2) << " M settles/s\n";
      json.begin_object()
          .field("name", "router_dijkstra")
          .field("engine", std::string(to_string(kind)))
          .field("config", "paper_45x85_mixed")
          .field("repetitions", reps)
          .field("queries_per_rep", static_cast<long long>(queries.size()))
          .field("ns_per_query", ns_per_query)
          .field("nodes_settled", settles)
          .field("settles_per_sec", settles_per_sec)
          .field("path_delay_us", static_cast<long long>(delay_sum))
          .end_object();
      PathFinderSample gate_row;
      gate_row.name = "router_dijkstra";
      gate_row.engine = to_string(kind);
      gate_row.config = "paper_45x85_mixed";
      gate_row.repetitions = reps;
      gate_row.ns_per_query = ns_per_query;
      gate_row.nodes_settled = settles;
      gated_samples.push_back(std::move(gate_row));
    }
    json.end_array();
  }

  // --------------------------------------------------------- pathfinder ---
  // Negotiated batch routing on the paper fabric: the full optimized stack
  // (all mechanisms, default options) against the PR-1 baseline per load
  // level. Two speedup columns: per nominal query (net x iteration) and per
  // whole negotiation (the trial-pipeline number).
  {
    const Fabric fabric = make_paper_fabric();
    const RoutingGraph graph(fabric);
    const std::vector<int> loads = smoke ? std::vector<int>{8, 32}
                                         : std::vector<int>{8, 16, 32};
    // Smoke runs feed the perf gate: light loads need more repetitions to
    // climb out of timer noise, heavy ones are stable (and slow) at two.
    const auto reps_for = [&](int load) {
      return smoke ? (load <= 16 ? 30 : 2) : 25;
    };

    TextTable table({"Nets", "Engine", "ns/query", "iters", "converged",
                     "delay (us)", "q speedup", "rep speedup"});
    std::vector<PathFinderSample> samples;
    for (const int load : loads) {
      const auto nets = central_nets(fabric, load, 11);
      const std::string name = "pathfinder_" + std::to_string(load) + "nets";
      const int reps = reps_for(load);
      const PathFinderSample reference =
          run_pathfinder(name, "baseline", graph, params, nets,
                         baseline_options(), reps);
      const PathFinderSample optimized = run_pathfinder(
          name, "all", graph, params, nets, PathFinderOptions{}, reps);
      table.add_row({std::to_string(load), reference.engine,
                     format_fixed(reference.ns_per_query, 0),
                     std::to_string(reference.iterations_used),
                     reference.converged ? "yes" : "no",
                     std::to_string(reference.total_delay), "1.00x",
                     "1.00x"});
      table.add_row({std::to_string(load), optimized.engine,
                     format_fixed(optimized.ns_per_query, 0),
                     std::to_string(optimized.iterations_used),
                     optimized.converged ? "yes" : "no",
                     std::to_string(optimized.total_delay),
                     speedup_cell(reference.ns_per_query,
                                  optimized.ns_per_query),
                     speedup_cell(reference.ns_per_rep,
                                  optimized.ns_per_rep)});
      samples.push_back(reference);
      samples.push_back(optimized);
    }
    std::cout << table.to_string();
    json.key("pathfinder_runs").begin_array();
    for (const PathFinderSample& sample : samples) {
      write_sample(json, sample);
      gated_samples.push_back(sample);
    }
    json.end_array();
  }

  // --------------------------------------------------- incremental remap ---
  // Warm-start remapping speedup as a function of edit distance: a base net
  // set is routed cold to convergence once, then each edited variant
  // (replace d nets) is routed cold and warm (seeded via make_warm_seed from
  // the converged prior) on identical inputs. Two contracts are enforced
  // in-process, failing the run with exit code 6 rather than recording a
  // silently broken table:
  //   * empty edit (d = 0): the warm run must perform ZERO searches, keep
  //     every seeded path, and produce node-for-node the cold run's paths
  //     (the bit-identity contract the serve session API depends on);
  //   * the warm run must converge wherever the cold run does.
  // The warm rows feed the --smoke perf gate like every pathfinder suite.
  {
    const Fabric fabric = make_paper_fabric();
    const RoutingGraph graph(fabric);
    // Disjoint endpoints (structural floor 0) so the base set genuinely
    // converges — the regime incremental sessions live in; the shared-
    // endpoint saturated regime never converges and thus never seeds. Load
    // 16 keeps the central corridors contested (cold runs take ~10
    // iterations) but below saturation — past ~24 even a one-net edit
    // shifts the equilibrium globally and every warm run degenerates to
    // its cold-restart fallback, which benchmarks the fallback, not the
    // warm path.
    const int load = 16;
    const auto base = distinct_nets(fabric, load, 11);
    const int cold_reps = smoke ? 2 : 25;
    const int warm_reps = smoke ? 30 : 50;

    // The converged prior every warm run seeds from (routed once, untimed).
    static PathFinderScratch prior_scratch;
    const PathFinderResult prior = route_nets_negotiated(
        graph, params, base, PathFinderOptions{}, prior_scratch);
    if (!prior.converged) {
      std::cerr << "incremental_remap: base negotiation did not converge — "
                   "warm-start speedups against a non-converged prior are "
                   "meaningless\n";
      return 6;
    }

    // Replacement endpoints drawn with a different seed; a candidate equal
    // to the net it would displace is a zero-distance edit and is skipped.
    const auto candidates = distinct_nets(fabric, load, 97);

    TextTable table({"Edit", "cold ns/rep", "warm ns/rep", "speedup",
                     "seeded", "kept", "warm searches", "cold searches"});
    json.key("incremental_remap").begin_array();
    for (const int distance : {0, 1, 2, 4, 8}) {
      std::vector<NetRequest> nets = base;
      int replaced = 0;
      for (std::size_t c = 0;
           c < candidates.size() && replaced < distance; ++c) {
        NetRequest& slot =
            nets[nets.size() - 1 - static_cast<std::size_t>(replaced)];
        if (candidates[c].from == slot.from && candidates[c].to == slot.to) {
          continue;
        }
        slot = candidates[c];
        ++replaced;
      }
      if (replaced != distance) {
        std::cerr << "incremental_remap: only " << replaced << " of "
                  << distance << " replacement nets found\n";
        return 6;
      }
      const std::string name =
          "incremental_remap_d" + std::to_string(distance);

      static PathFinderScratch cold_scratch;
      PathFinderResult cold;
      const double cold_ns = qspr_bench::time_ns_per_rep(cold_reps, [&] {
        cold = route_nets_negotiated(graph, params, nets, PathFinderOptions{},
                                     cold_scratch);
      });

      const WarmStartSeed seed = make_warm_seed(
          base, prior.paths, nets, prior.history, prior.final_present_factor);
      PathFinderOptions warm_options;
      warm_options.warm = &seed;
      static PathFinderScratch warm_scratch;
      PathFinderResult warm;
      const double warm_ns = qspr_bench::time_ns_per_rep(warm_reps, [&] {
        warm = route_nets_negotiated(graph, params, nets, warm_options,
                                     warm_scratch);
      });

      if (cold.converged && !warm.converged) {
        std::cerr << name << ": warm run failed to converge where the cold "
                     "run did\n";
        return 6;
      }
      if (distance == 0) {
        bool identical = warm.searches_performed == 0 &&
                         warm.warm_seeded == load &&
                         warm.warm_kept == load &&
                         warm.total_delay == cold.total_delay &&
                         warm.paths.size() == cold.paths.size();
        for (std::size_t i = 0; identical && i < cold.paths.size(); ++i) {
          identical = warm.paths[i].nodes == cold.paths[i].nodes;
        }
        if (!identical) {
          std::cerr << name << ": empty edit is not bit-identical to the "
                       "cold run (searches=" << warm.searches_performed
                    << ", kept=" << warm.warm_kept << "/" << load
                    << ") — the warm-start identity contract is broken\n";
          return 6;
        }
      }

      const auto write_row = [&](const char* config, double ns_per_rep,
                                 int repetitions,
                                 const PathFinderResult& result) {
        const long long queries = static_cast<long long>(nets.size()) *
                                  result.iterations_used;
        const double ns_per_query =
            queries > 0 ? ns_per_rep / static_cast<double>(queries) : 0.0;
        json.begin_object()
            .field("name", name)
            .field("engine", "astar_arena")
            .field("config", std::string(config))
            .field("edit_distance", distance)
            .field("nets", load)
            .field("repetitions", repetitions)
            .field("ns_per_rep", ns_per_rep)
            .field("ns_per_query", ns_per_query)
            .field("speedup_vs_cold",
                   ns_per_rep > 0.0 ? cold_ns / ns_per_rep : 0.0)
            .field("searches_per_rep", result.searches_performed)
            .field("iterations_used", result.iterations_used)
            .field("converged", result.converged)
            .field("warm_seeded", result.warm_seeded)
            .field("warm_kept", result.warm_kept)
            .field("warm_restarted", result.warm_restarted)
            .field("total_delay_us",
                   static_cast<long long>(result.total_delay))
            .end_object();
        PathFinderSample gate_row;
        gate_row.name = name;
        gate_row.engine = "astar_arena";
        gate_row.config = config;
        gate_row.repetitions = repetitions;
        gate_row.ns_per_query = ns_per_query;
        gated_samples.push_back(std::move(gate_row));
      };
      write_row("cold", cold_ns, cold_reps, cold);
      write_row("warm", warm_ns, warm_reps, warm);

      table.add_row({std::to_string(distance), format_fixed(cold_ns, 0),
                     format_fixed(warm_ns, 0),
                     speedup_cell(cold_ns, warm_ns),
                     std::to_string(warm.warm_seeded),
                     std::to_string(warm.warm_kept),
                     std::to_string(warm.searches_performed),
                     std::to_string(cold.searches_performed)});
    }
    json.end_array();
    std::cout << "\nincremental remap (" << load
              << " nets, warm seeded from the converged prior, empty-edit "
                 "bit-identity asserted):\n"
              << table.to_string();
  }

  // -------------------------------------------------- saturated overload ---
  // Heavy contention with distinct endpoints (structural floor 0): the
  // regime where the classic loop burns its iteration cap. Each mechanism
  // of the optimized stack is toggled individually so the ablation lands in
  // the JSON next to the baseline and the all-on stack. The alt* rows record
  // the landmark bound honestly: under saturation the searches are walled in
  // by *present* congestion penalties (up to present_factor_max per unit of
  // over-use) that no admissible precomputed table may anticipate, so ALT
  // trims settled nodes by only a few percent while paying a per-node bound
  // evaluation — the ablation shows the win lives in the weight knob here,
  // and in the alt_longhaul suite below for the heuristic itself.
  {
    const Fabric fabric = make_paper_fabric();
    const RoutingGraph graph(fabric);
    const int reps = smoke ? 1 : 5;
    const std::vector<int> loads = smoke ? std::vector<int>{24}
                                         : std::vector<int>{24, 32, 48};
    const LandmarkTables tables = build_landmark_tables(
        graph, static_cast<double>(params.t_move),
        static_cast<double>(params.t_turn), 8);

    struct Config {
      const char* name;
      PathFinderOptions options;
    };
    const auto astar_with = [](bool partial, bool bound, bool schedule,
                               bool bidi) {
      PathFinderOptions options;  // engine defaults to AStarArena
      options.partial_ripup = partial;
      options.adaptive_bound = bound;
      options.adaptive_schedule = schedule;
      options.bidirectional = bidi;
      return options;
    };
    const auto alt_with = [&tables](double weight) {
      PathFinderOptions options;  // the all-on stack plus landmarks
      options.alt_landmarks = tables.k();
      options.landmarks = &tables;
      options.heuristic_weight = weight;
      return options;
    };
    const std::vector<Config> configs = {
        {"baseline", baseline_options()},
        {"none", astar_with(false, false, false, false)},
        {"partial", astar_with(true, false, false, false)},
        {"bound", astar_with(false, true, false, false)},
        {"schedule", astar_with(false, false, true, false)},
        {"bidi", astar_with(false, false, false, true)},
        {"all", PathFinderOptions{}},
        {"alt", alt_with(1.0)},
        {"alt_w1.1", alt_with(1.1)},
        {"alt_w1.5", alt_with(1.5)},
    };

    TextTable table({"Nets", "Config", "ns/query", "iters", "searches",
                     "settled", "conv", "excess", "delay (us)",
                     "rep speedup"});
    json.key("saturated_overload").begin_array();
    for (const int load : loads) {
      const auto nets = distinct_nets(fabric, load, 11);
      const std::string name = "saturated_" + std::to_string(load) + "nets";
      double baseline_rep_ns = 0.0;
      for (const Config& config : configs) {
        const PathFinderSample sample = run_pathfinder(
            name, config.name, graph, params, nets, config.options, reps);
        if (sample.config == "baseline") baseline_rep_ns = sample.ns_per_rep;
        table.add_row({std::to_string(load), config.name,
                       format_fixed(sample.ns_per_query, 0),
                       std::to_string(sample.iterations_used),
                       std::to_string(sample.searches),
                       std::to_string(sample.nodes_settled),
                       sample.converged ? "yes" : "no",
                       std::to_string(sample.total_excess),
                       std::to_string(sample.total_delay),
                       speedup_cell(baseline_rep_ns, sample.ns_per_rep)});
        write_sample(json, sample);
      }
    }
    json.end_array();
    std::cout << "\nsaturated overload (distinct endpoints, ablation):\n"
              << table.to_string();
  }

  // --------------------------------------------------- ALT long-haul runs ---
  // Where the landmark bound genuinely earns its keep: long uncontended
  // hauls across the whole fabric, the regime where the turn-blind grid
  // bound goes flat on equally-long detours. Unidirectional grid vs ALT on
  // identical nets isolates the heuristic (same engine, same frontier
  // discipline); the default bidirectional stack rides along for context.
  // Two contracts are enforced in-process, failing the run with a distinct
  // exit code rather than recording a silently broken table:
  //   * ALT (w = 1.0) must settle >= 1.5x fewer nodes than the grid bound —
  //     the tentpole acceptance, asserted on every run including --smoke;
  //   * every weighted row's per-net delay must stay within w x the exact
  //     row's per-net delay (the bounded-suboptimality contract; the suite
  //     converges without contention, so the per-search bound applies
  //     net for net).
  {
    const Fabric fabric = make_paper_fabric();
    const RoutingGraph graph(fabric);
    const auto nets = longhaul_nets(fabric, 8, 48, 11);
    const int reps = smoke ? 30 : 300;
    // More landmarks than the saturated ablation: long hauls benefit from
    // directional coverage, and the table build is off the timed path.
    const LandmarkTables tables = build_landmark_tables(
        graph, static_cast<double>(params.t_move),
        static_cast<double>(params.t_turn), 16);

    struct Config {
      const char* name;
      bool bidirectional;
      int landmarks;
      double weight;
    };
    const std::vector<Config> configs = {
        {"grid_uni", false, 0, 1.0},
        {"alt_uni", false, 16, 1.0},
        {"grid_bidi", true, 0, 1.0},
        {"alt_uni_w1.1", false, 16, 1.1},
        {"alt_uni_w1.5", false, 16, 1.5},
    };

    TextTable table({"Config", "ns/query", "settled", "delay (us)",
                     "settled speedup", "q speedup"});
    std::vector<PathFinderSample> samples;
    for (const Config& config : configs) {
      PathFinderOptions options;
      options.bidirectional = config.bidirectional;
      options.alt_landmarks = config.landmarks;
      if (config.landmarks > 0) options.landmarks = &tables;
      options.heuristic_weight = config.weight;
      samples.push_back(run_pathfinder("alt_longhaul", config.name, graph,
                                       params, nets, options, reps));
    }
    const PathFinderSample& grid_uni = samples[0];
    const PathFinderSample& alt_uni = samples[1];
    json.key("alt_longhaul").begin_array();
    for (const PathFinderSample& sample : samples) {
      table.add_row({sample.config, format_fixed(sample.ns_per_query, 0),
                     std::to_string(sample.nodes_settled),
                     std::to_string(sample.total_delay),
                     sample.nodes_settled > 0
                         ? format_fixed(
                               static_cast<double>(grid_uni.nodes_settled) /
                                   static_cast<double>(sample.nodes_settled),
                               2) + "x"
                         : "n/a",
                     speedup_cell(grid_uni.ns_per_query,
                                  sample.ns_per_query)});
      write_sample(json, sample);
      gated_samples.push_back(sample);
    }
    json.end_array();
    std::cout << "\nALT long-haul (8 nets, >= 48 cells apart, "
              << tables.k() << " landmarks):\n"
              << table.to_string();

    if (3 * alt_uni.nodes_settled > 2 * grid_uni.nodes_settled) {
      std::cerr << "alt_longhaul: ALT settled " << alt_uni.nodes_settled
                << " nodes vs grid " << grid_uni.nodes_settled
                << " — below the required 1.5x reduction\n";
      return 5;
    }
    for (const PathFinderSample& sample : samples) {
      const double w = sample.options.heuristic_weight;
      if (w <= 1.0 || sample.net_delays.size() != alt_uni.net_delays.size()) {
        continue;
      }
      for (std::size_t i = 0; i < sample.net_delays.size(); ++i) {
        const double bound =
            w * static_cast<double>(alt_uni.net_delays[i]) + 1e-9;
        if (static_cast<double>(sample.net_delays[i]) > bound) {
          std::cerr << "alt_longhaul: " << sample.config << " net " << i
                    << " delay " << sample.net_delays[i] << " exceeds " << w
                    << " x exact delay " << alt_uni.net_delays[i] << "\n";
          return 5;
        }
      }
    }
  }

  // ------------------------------------------------ parallel negotiation ---
  // Speculative intra-iteration net parallelism on the saturated_overload
  // nets: the all-on stack at 1/2/4/8 route workers against the serial loop.
  // The wave protocol commits speculative routes only while the live
  // penalty landscape still matches the wave snapshot, so results are
  // bit-identical to the serial loop at every worker count — asserted here
  // per run ("identical"), with the commit/re-route split recorded so the
  // acceptance rate of the speculation is visible in the trajectory.
  {
    const Fabric fabric = make_paper_fabric();
    const RoutingGraph graph(fabric);
    const int reps = smoke ? 1 : 5;
    const std::vector<int> loads = smoke ? std::vector<int>{24}
                                         : std::vector<int>{24, 48};
    std::vector<int> worker_levels;
    for (const int workers : {1, 2, 4, 8}) {
      if (workers <= max_jobs || workers == 1) worker_levels.push_back(workers);
    }

    TextTable table({"Nets", "Route jobs", "ns/rep", "speedup", "commits",
                     "reroutes", "identical"});
    json.key("parallel_negotiation").begin_object();
    json.field("fabric", "paper_45x85");
    json.field("hardware_concurrency",
               static_cast<long long>(ThreadPool::default_worker_count()));
    json.key("runs").begin_array();
    for (const int load : loads) {
      const auto nets = distinct_nets(fabric, load, 11);
      const std::string name =
          "parallel_negotiation_" + std::to_string(load) + "nets";
      static PathFinderScratch serial_scratch;
      PathFinderResult serial;
      const double serial_ns = qspr_bench::time_ns_per_rep(reps, [&] {
        serial = route_nets_negotiated(graph, params, nets,
                                       PathFinderOptions{}, serial_scratch);
      });
      for (const int workers : worker_levels) {
        Executor executor(workers);
        PathFinderScratchPool pool;
        PathFinderScratch scratch;
        PathFinderOptions options;
        options.route_jobs = workers;
        PathFinderResult result;
        const double ns = qspr_bench::time_ns_per_rep(reps, [&] {
          result = route_nets_negotiated(graph, params, nets, options,
                                         scratch, executor, pool);
        });
        bool identical =
            result.iterations_used == serial.iterations_used &&
            result.converged == serial.converged &&
            result.total_delay == serial.total_delay &&
            result.total_excess == serial.total_excess &&
            result.searches_performed == serial.searches_performed &&
            result.paths.size() == serial.paths.size();
        for (std::size_t i = 0; identical && i < serial.paths.size(); ++i) {
          identical = result.paths[i].nodes == serial.paths[i].nodes;
        }
        if (!identical) {
          std::cerr << name << ": route_jobs " << workers
                    << " diverged from the serial loop — determinism "
                       "contract broken\n";
          return 4;
        }
        const double speedup = ns > 0.0 ? serial_ns / ns : 0.0;
        table.add_row({std::to_string(load), std::to_string(workers),
                       format_fixed(ns, 0), format_fixed(speedup, 2) + "x",
                       std::to_string(result.speculative_commits),
                       std::to_string(result.speculative_reroutes),
                       identical ? "yes" : "NO"});
        json.begin_object()
            .field("name", name)
            .field("nets", load)
            .field("route_jobs", workers)
            .field("repetitions", reps)
            .field("ns_per_rep", ns)
            .field("serial_ns_per_rep", serial_ns)
            .field("speedup_vs_serial", speedup)
            .field("speculative_commits", result.speculative_commits)
            .field("speculative_reroutes", result.speculative_reroutes)
            .field("iterations_used", result.iterations_used)
            .field("converged", result.converged)
            .field("total_excess", result.total_excess)
            .field("identical_to_serial", identical)
            .field("total_delay_us",
                   static_cast<long long>(result.total_delay))
            .end_object();
      }
    }
    json.end_array().end_object();
    std::cout << "\nparallel negotiation (speculative waves, "
              << "bit-identity asserted per run):\n"
              << table.to_string();
  }

  // ------------------------------------------------------------ scaling ---
  // Optimized engine across growing QUALE fabrics at a fixed load.
  {
    json.key("scaling").begin_array();
    struct Size {
      const char* name;
      QualeFabricParams quale;
    };
    const std::vector<Size> sizes = {
        {"quale_6x11", {6, 11, 4}},
        {"quale_12x22", {12, 22, 4}},
    };
    const int reps = smoke ? 1 : 10;
    for (const Size& size : sizes) {
      const Fabric fabric = make_quale_fabric(size.quale);
      const RoutingGraph graph(fabric);
      const auto nets = central_nets(fabric, 16, 7);
      const PathFinderSample sample =
          run_pathfinder(std::string("scaling_") + size.name, "all", graph,
                         params, nets, PathFinderOptions{}, reps);
      std::cout << "scaling/" << size.name << ": "
                << format_fixed(sample.ns_per_query, 0) << " ns/query, "
                << sample.iterations_used << " iters, delay "
                << sample.total_delay << " us\n";
      write_sample(json, sample);
    }
    json.end_array();
  }

  // --------------------------------------------------- parallel scaling ---
  // Trial-parallel mapping throughput: the Monte-Carlo trial loop and the
  // MVFB seed loop on the [[7,1,3]] benchmark, at growing worker counts.
  // Results are bit-identical at any worker count (checked below), so the
  // only thing that varies is trials/sec.
  {
    const Program program = make_encoder(QeccCode::Q7_1_3);
    const Fabric fabric = make_paper_fabric();
    std::vector<int> job_levels;
    for (const int jobs : {1, 2, 4, 8}) {
      if (jobs <= max_jobs) job_levels.push_back(jobs);
    }

    struct Flow {
      const char* name;
      PlacerKind placer;
      int trials;
    };
    const std::vector<Flow> flows = {
        {"monte_carlo", PlacerKind::MonteCarlo, smoke ? 10 : 100},
        {"mvfb", PlacerKind::Mvfb, smoke ? 4 : 100},
    };

    TextTable table({"Flow", "Trials", "Jobs", "wall ms", "trials/sec",
                     "speedup", "identical"});
    json.key("parallel_scaling").begin_object();
    json.field("code", "[[7,1,3]]");
    json.field("hardware_concurrency",
               static_cast<long long>(ThreadPool::default_worker_count()));
    json.key("runs").begin_array();
    for (const Flow& flow : flows) {
      double serial_ms = 0.0;
      Duration serial_latency = 0;
      Placement serial_placement;
      Placement serial_final;
      std::string serial_trace;
      for (const int jobs : job_levels) {
        MapperOptions options;
        options.placer = flow.placer;
        options.monte_carlo_trials = flow.trials;
        options.mvfb_seeds = flow.trials;
        options.jobs = jobs;
        const MapResult result = map_program(program, fabric, options);
        if (jobs == 1) {
          serial_ms = result.cpu_ms;
          serial_latency = result.latency;
          serial_placement = result.initial_placement;
          serial_final = result.final_placement;
          serial_trace = result.trace.to_string();
        }
        const bool identical = result.latency == serial_latency &&
                               result.initial_placement == serial_placement &&
                               result.final_placement == serial_final &&
                               result.trace.to_string() == serial_trace;
        const double trials_per_sec =
            result.cpu_ms > 0.0
                ? static_cast<double>(result.placement_runs) * 1000.0 /
                      result.cpu_ms
                : 0.0;
        const double speedup =
            result.cpu_ms > 0.0 ? serial_ms / result.cpu_ms : 0.0;
        table.add_row({flow.name, std::to_string(result.placement_runs),
                       std::to_string(jobs), format_fixed(result.cpu_ms, 1),
                       format_fixed(trials_per_sec, 1),
                       format_fixed(speedup, 2) + "x",
                       identical ? "yes" : "NO"});
        json.begin_object()
            .field("flow", std::string(flow.name))
            .field("trials", flow.trials)
            .field("placement_runs", static_cast<long long>(result.placement_runs))
            .field("jobs", jobs)
            .field("wall_ms", result.cpu_ms)
            .field("trial_cpu_ms", result.trial_cpu_ms)
            .field("trials_per_sec", trials_per_sec)
            .field("speedup_vs_serial", speedup)
            .field("latency_us", static_cast<long long>(result.latency))
            .field("identical_to_serial", identical)
            .end_object();
      }
    }
    json.end_array().end_object();
    std::cout << "\nparallel scaling ([[7,1,3]], "
              << ThreadPool::default_worker_count()
              << " hardware threads):\n"
              << table.to_string();
  }

  // --------------------------------------------------- batch throughput ---
  // The batch mapping service over a mixed-size corpus: programs/sec of
  // BatchMapper on a shared MappingEngine at growing worker counts, against
  // a live sequential map_program loop over the same manifest. Per-program
  // results are bit-identical to the loop at any worker count (checked),
  // and the per-fabric artifact cache must build exactly once for the whole
  // batch.
  {
    const std::vector<Program> corpus = make_batch_corpus(/*full=*/!smoke);
    const Fabric fabric = make_paper_fabric();
    MapperOptions options;
    options.placer = PlacerKind::MonteCarlo;
    options.monte_carlo_trials = smoke ? 4 : 12;
    options.rng_seed = 11;

    std::vector<BatchJob> manifest;
    for (const Program& program : corpus) {
      BatchJob job;
      job.name = program.name();
      job.program = &program;
      job.fabric = &fabric;
      job.options = options;
      manifest.push_back(job);
    }

    // Live sequential baseline: one map_program call per program, one
    // worker, no shared artifacts.
    std::vector<Duration> sequential_latencies;
    std::vector<std::string> sequential_traces;
    const Stopwatch sequential_watch;
    for (const Program& program : corpus) {
      const MapResult result = map_program(program, fabric, options);
      sequential_latencies.push_back(result.latency);
      sequential_traces.push_back(result.trace.to_string());
    }
    const double sequential_ms = sequential_watch.elapsed_ms();

    std::vector<int> job_levels;
    for (const int jobs : {1, 2, 4, 8}) {
      if (jobs <= max_jobs) job_levels.push_back(jobs);
    }

    TextTable table({"Workers", "Programs", "wall ms", "programs/sec",
                     "speedup", "identical", "artifact builds"});
    json.key("batch_throughput").begin_object();
    json.field("fabric", "paper_45x85");
    json.field("trials_per_program", options.monte_carlo_trials);
    json.key("programs").begin_array();
    for (const Program& program : corpus) json.value(program.name());
    json.end_array();
    json.field("sequential_wall_ms", sequential_ms);
    json.field("hardware_concurrency",
               static_cast<long long>(ThreadPool::default_worker_count()));
    json.key("runs").begin_array();
    for (const int workers : job_levels) {
      MappingEngine engine(workers);
      BatchMapper batch(engine);
      const BatchResult result = batch.run(manifest);
      bool identical = result.summary.failed == 0;
      for (std::size_t i = 0; identical && i < corpus.size(); ++i) {
        identical = result.records[i].ok &&
                    result.records[i].result.latency ==
                        sequential_latencies[i] &&
                    result.records[i].result.trace.to_string() ==
                        sequential_traces[i];
      }
      const double speedup = result.summary.wall_ms > 0.0
                                 ? sequential_ms / result.summary.wall_ms
                                 : 0.0;
      table.add_row({std::to_string(workers),
                     std::to_string(result.summary.jobs),
                     format_fixed(result.summary.wall_ms, 1),
                     format_fixed(result.summary.programs_per_sec, 2),
                     format_fixed(speedup, 2) + "x",
                     identical ? "yes" : "NO",
                     std::to_string(result.summary.artifact_builds)});
      json.begin_object()
          .field("workers", workers)
          .field("wall_ms", result.summary.wall_ms)
          .field("programs_per_sec", result.summary.programs_per_sec)
          .field("speedup_vs_sequential", speedup)
          .field("trial_cpu_ms", result.summary.trial_cpu_ms)
          .field("identical_to_sequential", identical)
          .field("artifact_builds", result.summary.artifact_builds)
          .field("artifact_hits", result.summary.artifact_hits)
          .end_object();
    }
    json.end_array().end_object();
    std::cout << "\nbatch throughput (" << corpus.size()
              << " mixed-size programs, MC m=" << options.monte_carlo_trials
              << ", sequential loop " << format_fixed(sequential_ms, 1)
              << " ms):\n"
              << table.to_string();
  }

  // --------------------------------------------------- serve throughput ---
  // qspr_serve's daemon core measured end-to-end over loopback TCP: closed-
  // loop requests/sec and reply-latency percentiles at 1/2/4 concurrent
  // clients, plus the explicit shed rate when a pipelined burst overruns the
  // admission queue. Caveat: client threads, mapper threads, and the poll
  // loop all share this host's cores (CI pins one), so absolute RPS is a
  // lower bound — track the trajectory, don't capacity-plan from it.
  {
    const std::string qasm =
        "QUBIT q0,0\nQUBIT q1,0\nQUBIT q2,0\nH q0\nC-X q0,q1\nC-X q1,q2\n"
        "MEASURE q2\n";
    const int trials = smoke ? 3 : 8;
    const int per_client = smoke ? 8 : 48;

    const auto map_line = [&](const std::string& id, int m) {
      JsonWriter request;
      request.begin_object()
          .field("type", "map")
          .field("id", id)
          .field("qasm", qasm)
          .field("placer", "mc")
          .field("m", m)
          .field("seed", 3)
          .end_object();
      return request.str() + "\n";
    };
    const auto send_all = [](int fd, std::string_view data) {
      while (!data.empty()) {
        const IoResult io = write_some(fd, data);
        if (io.status == IoStatus::Error) return false;
        data.remove_prefix(io.bytes);
      }
      return true;
    };
    const auto read_line = [](int fd, std::string& buffer) {
      for (;;) {
        const std::size_t newline = buffer.find('\n');
        if (newline != std::string::npos) {
          std::string line = buffer.substr(0, newline);
          buffer.erase(0, newline + 1);
          return line;
        }
        char chunk[4096];
        const IoResult io = read_some(fd, chunk, sizeof chunk);
        if (io.status != IoStatus::Ok || io.bytes == 0) return std::string();
        buffer.append(chunk, io.bytes);
      }
    };
    const auto percentile = [](std::vector<double> sorted, double q) {
      if (sorted.empty()) return 0.0;
      std::sort(sorted.begin(), sorted.end());
      const auto index = static_cast<std::size_t>(
          q * static_cast<double>(sorted.size() - 1) + 0.5);
      return sorted[std::min(index, sorted.size() - 1)];
    };

    TextTable table({"Clients", "Requests", "wall ms", "req/sec", "p50 ms",
                     "p99 ms", "errors"});
    json.key("serve_throughput").begin_object();
    json.field("trials_per_request", trials);
    json.field("requests_per_client", per_client);
    json.field("single_core_caveat",
               "clients, mappers, and poll loop share this host's cores; "
               "RPS is a lower bound on daemon capacity");
    json.key("runs").begin_array();
    for (const int clients : {1, 2, 4}) {
      ServeOptions serve_options;
      serve_options.port = 0;
      serve_options.workers = 1;
      serve_options.mapper_threads = std::min(clients, std::max(1, max_jobs));
      serve_options.max_queue = 64;
      MappingServer server(serve_options);
      server.start();
      std::thread serving([&server] { (void)server.serve(); });

      std::mutex merge_mutex;
      std::vector<double> latencies_ms;
      long long ok = 0;
      long long errors = 0;
      const Stopwatch wall;
      std::vector<std::thread> pumps;
      pumps.reserve(static_cast<std::size_t>(clients));
      for (int c = 0; c < clients; ++c) {
        pumps.emplace_back([&, c] {
          const FileDescriptor fd = connect_client("127.0.0.1", server.port());
          std::string buffer;
          std::vector<double> laps;
          long long local_ok = 0;
          long long local_errors = 0;
          for (int r = 0; r < per_client; ++r) {
            const std::string line = map_line(
                "c" + std::to_string(c) + "-" + std::to_string(r), trials);
            const Stopwatch lap;
            if (!send_all(fd.get(), line)) {
              ++local_errors;
              break;
            }
            const std::string reply = read_line(fd.get(), buffer);
            laps.push_back(lap.elapsed_ms());
            if (reply.find("\"ok\":true") != std::string::npos) {
              ++local_ok;
            } else {
              ++local_errors;
            }
          }
          const std::lock_guard<std::mutex> lock(merge_mutex);
          latencies_ms.insert(latencies_ms.end(), laps.begin(), laps.end());
          ok += local_ok;
          errors += local_errors;
        });
      }
      for (std::thread& pump : pumps) pump.join();
      const double wall_ms = wall.elapsed_ms();
      server.request_drain();
      serving.join();

      const long long requests = ok + errors;
      const double rps =
          wall_ms > 0.0 ? static_cast<double>(ok) * 1000.0 / wall_ms : 0.0;
      const double p50 = percentile(latencies_ms, 0.50);
      const double p99 = percentile(latencies_ms, 0.99);
      table.add_row({std::to_string(clients), std::to_string(requests),
                     format_fixed(wall_ms, 1), format_fixed(rps, 2),
                     format_fixed(p50, 2), format_fixed(p99, 2),
                     std::to_string(errors)});
      json.begin_object()
          .field("clients", clients)
          .field("requests", requests)
          .field("wall_ms", wall_ms)
          .field("requests_per_sec", rps)
          .field("p50_ms", p50)
          .field("p99_ms", p99)
          .field("errors", errors)
          .end_object();
    }
    json.end_array();

    // Overload shed: one slow mapper behind a 2-slot queue against a
    // pipelined burst. Every request must get an explicit reply — shed ones
    // say overloaded with retry_after_ms — and the shed rate is the metric.
    {
      ServeOptions serve_options;
      serve_options.port = 0;
      serve_options.workers = 1;
      serve_options.mapper_threads = 1;
      serve_options.max_queue = 2;
      serve_options.retry_after_ms = 5;
      MappingServer server(serve_options);
      server.start();
      std::thread serving([&server] { (void)server.serve(); });

      const int burst = smoke ? 12 : 32;
      const FileDescriptor fd = connect_client("127.0.0.1", server.port());
      std::string pipelined;
      for (int r = 0; r < burst; ++r) {
        pipelined += map_line("burst-" + std::to_string(r),
                              std::max(trials, smoke ? 8 : 24));
      }
      long long shed = 0;
      long long answered = 0;
      if (send_all(fd.get(), pipelined)) {
        std::string buffer;
        for (int r = 0; r < burst; ++r) {
          const std::string reply = read_line(fd.get(), buffer);
          if (reply.empty()) break;
          ++answered;
          if (reply.find("\"code\":\"overloaded\"") != std::string::npos) {
            ++shed;
          }
        }
      }
      server.request_drain();
      serving.join();

      const double shed_rate =
          burst > 0 ? static_cast<double>(shed) / burst : 0.0;
      json.key("overload").begin_object();
      json.field("burst", burst);
      json.field("max_queue", 2);
      json.field("answered", answered);
      json.field("shed", shed);
      json.field("shed_rate", shed_rate);
      json.end_object();
      std::cout << "\nserve throughput (loopback TCP, MC m=" << trials
                << ", " << per_client << " requests/client; overload burst "
                << burst << " -> " << shed << " shed, " << answered
                << " answered):\n"
                << table.to_string();
    }
    json.end_object();
  }

  // ------------------------------------------------------ shard failover ---
  // Availability of the sharded front-end under seeded worker SIGKILLs:
  // real qspr_serve processes behind an in-process ShardSupervisor, one
  // retrying client. Three numbers matter: availability (requests answered
  // ok / sent — the exactly-once ledger makes lost a hard failure, not a
  // statistic), tail latency including the kills, and recovery (kill ->
  // both shards Up again). Skipped with a notice when the worker binary is
  // not next to this one (set QSPR_SERVE_BIN to point at it).
  {
    const auto worker_binary = [] {
      const char* env = std::getenv("QSPR_SERVE_BIN");
      if (env != nullptr && *env != '\0') return std::string(env);
      char buffer[4096];
      const ssize_t n =
          ::readlink("/proc/self/exe", buffer, sizeof buffer - 1);
      if (n <= 0) return std::string();
      buffer[n] = '\0';
      const std::string path(buffer);
      const std::size_t slash = path.find_last_of('/');
      if (slash == std::string::npos) return std::string();
      return path.substr(0, slash + 1) + "qspr_serve";
    }();
    if (worker_binary.empty() ||
        ::access(worker_binary.c_str(), X_OK) != 0) {
      std::cout << "\nshard_failover: skipped (no qspr_serve next to "
                   "bench_runner; set QSPR_SERVE_BIN)\n";
      json.key("shard_failover").begin_object();
      json.field("skipped", true);
      json.end_object();
    } else {
      ShardSupervisorOptions sup;
      sup.shard_count = 2;
      sup.worker_binary = worker_binary;
      sup.worker_args = {"--mapper-threads", "1", "--jobs", "1"};
      sup.health_interval_ms = 100;
      sup.health_timeout_ms = 1500;
      sup.restart_backoff.base_ms = 50;
      sup.restart_backoff.cap_ms = 500;
      sup.restart_backoff.seed = 1;
      sup.max_redispatch = 8;
      sup.drain_deadline_ms = 30'000;
      ShardSupervisor supervisor(sup);
      supervisor.start();
      std::thread serving([&supervisor] { (void)supervisor.serve(); });

      ShardClientOptions copts;
      copts.port = supervisor.port();
      copts.request_timeout_ms = 120'000;
      copts.max_attempts = 40;
      copts.backoff.base_ms = 20;
      copts.backoff.cap_ms = 200;
      copts.backoff.seed = 7;
      ShardClient client(copts);

      const auto shards_up = [&client]() -> int {
        std::string reply;
        if (!client.try_request(R"({"type":"health","id":"h"})", reply)) {
          return -1;
        }
        const std::size_t pos = reply.find("\"shards_up\":");
        if (pos == std::string::npos) return -1;
        return std::atoi(reply.c_str() + pos + 12);
      };
      const auto wait_for_up = [&shards_up](int want) {
        const Stopwatch waited;
        while (shards_up() < want && waited.elapsed_ms() < 30'000.0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        return waited.elapsed_ms();
      };
      const auto map_line = [](const std::string& id, int m) {
        qspr::JsonWriter request;
        request.begin_object()
            .field("type", "map")
            .field("id", id)
            .field("qasm", "QUBIT q0,0\nQUBIT q1,0\nH q0\nC-X q0,q1\n"
                           "MEASURE q1\n")
            .field("placer", "mc")
            .field("m", m)
            .field("seed", 3)
            .end_object();
        return request.str();
      };
      const auto percentile = [](std::vector<double> values, double q) {
        if (values.empty()) return 0.0;
        std::sort(values.begin(), values.end());
        const auto index = static_cast<std::size_t>(
            q * static_cast<double>(values.size() - 1) + 0.5);
        return values[std::min(index, values.size() - 1)];
      };
      wait_for_up(2);

      // Recovery: SIGKILL the shard all requests route to, time until both
      // shards report Up again (cooldown escalates per consecutive trip,
      // resetting on the health success in between).
      const int target = shard_for_fabric("", 2);
      std::vector<double> recovery_ms;
      const int recovery_reps = smoke ? 2 : 3;
      for (int rep = 0; rep < recovery_reps; ++rep) {
        const std::vector<int> pids = supervisor.worker_pids();
        if (pids[static_cast<std::size_t>(target)] > 0) {
          ::kill(pids[static_cast<std::size_t>(target)], SIGKILL);
        }
        recovery_ms.push_back(wait_for_up(2));
      }

      // Availability: sequential requests with SIGKILLs landing every
      // `kill_every` requests; the retrying client must see every one of
      // them answered ok. A request() throw is a LOST reply — the one
      // outcome this whole subsystem exists to rule out — and fails the
      // bench run outright.
      const int requests = smoke ? 16 : 48;
      const int kill_every = smoke ? 6 : 12;
      const int trials = smoke ? 24 : 48;
      long long ok = 0;
      long long error_replies = 0;
      long long lost = 0;
      int kills = recovery_reps;
      std::vector<double> laps;
      const Stopwatch wall;
      for (int r = 0; r < requests; ++r) {
        if (r > 0 && r % kill_every == 0) {
          const std::vector<int> pids = supervisor.worker_pids();
          if (pids[static_cast<std::size_t>(target)] > 0) {
            ::kill(pids[static_cast<std::size_t>(target)], SIGKILL);
            ++kills;
          }
        }
        const Stopwatch lap;
        try {
          const std::string reply =
              client.request(map_line("fo-" + std::to_string(r), trials));
          laps.push_back(lap.elapsed_ms());
          if (reply.find("\"ok\":true") != std::string::npos) {
            ++ok;
          } else {
            ++error_replies;
          }
        } catch (const Error&) {
          ++lost;
        }
      }
      const double wall_ms = wall.elapsed_ms();
      wait_for_up(2);
      const SupervisorMetrics metrics = supervisor.metrics();
      supervisor.request_drain();
      serving.join();

      const double availability =
          requests > 0 ? static_cast<double>(ok) / requests : 0.0;
      double recovery_p50 = percentile(recovery_ms, 0.50);
      json.key("shard_failover").begin_object();
      json.field("shards", 2);
      json.field("requests", static_cast<long long>(requests));
      json.field("kills", static_cast<long long>(kills));
      json.field("ok", ok);
      json.field("error_replies", error_replies);
      json.field("lost", lost);
      json.field("availability", availability);
      json.field("wall_ms", wall_ms);
      json.field("p50_ms", percentile(laps, 0.50));
      json.field("p99_ms", percentile(laps, 0.99));
      json.field("recovery_p50_ms", recovery_p50);
      json.field("redispatches", metrics.redispatches);
      json.field("crashes", metrics.crashes);
      json.field("accepted", metrics.accepted);
      json.field("answered", metrics.answered);
      json.field("single_core_caveat",
                 "supervisor, two workers, and the client share this "
                 "host's cores; latency tails and recovery are upper "
                 "bounds");
      json.end_object();
      std::cout << "\nshard failover (2 shards, " << kills << " SIGKILLs, "
                << requests << " requests): availability "
                << format_fixed(availability * 100.0, 1) << "%, lost "
                << lost << ", p99 " << format_fixed(percentile(laps, 0.99), 1)
                << " ms, recovery p50 " << format_fixed(recovery_p50, 0)
                << " ms\n";
      if (lost != 0 || metrics.accepted != metrics.answered) {
        std::cerr << "shard_failover: reply ledger broken (lost=" << lost
                  << ", accepted=" << metrics.accepted
                  << ", answered=" << metrics.answered << ")\n";
        return 1;
      }
    }
  }

  json.end_object();

  std::ofstream file(output);
  if (!file) {
    std::cerr << "cannot write " << output << "\n";
    return 1;
  }
  file << json.str() << "\n";
  std::cout << "\nwrote " << output << "\n";

  // -------------------------------------------------- smoke perf gate ---
  // Catch order-of-magnitude routing regressions in CI: every pathfinder_*
  // sample of this smoke run must stay within 2x of the checked-in
  // trajectory's ns_per_query. The factor absorbs smoke-sized repetition
  // noise; genuinely slower runners can export QSPR_SMOKE_NO_PERF_GATE=1.
  if (smoke) {
    if (std::getenv("QSPR_SMOKE_NO_PERF_GATE") != nullptr) {
      std::cout << "perf gate: skipped (QSPR_SMOKE_NO_PERF_GATE set)\n";
      return 0;
    }
    std::ifstream baseline_file(baseline_path);
    if (!baseline_file) {
      std::cout << "perf gate: no baseline at " << baseline_path
                << ", skipped\n";
      return 0;
    }
    std::ostringstream baseline_stream;
    baseline_stream << baseline_file.rdbuf();
    JsonValue baseline;
    try {
      baseline = parse_json(baseline_stream.str());
    } catch (const std::exception& e) {
      // A baseline the reader cannot parse would silently disarm the gate
      // CI relies on: fail loudly instead.
      std::cerr << "perf gate: baseline " << baseline_path
                << " is not valid JSON (" << e.what()
                << ") — re-record it with this harness\n";
      return 3;
    }

    bool failed = false;
    int matched = 0;
    int missing = 0;
    for (const PathFinderSample& sample : gated_samples) {
      const double recorded = baseline_ns_per_query(
          baseline, sample.name, sample.engine, sample.config);
      if (recorded <= 0.0) {
        // New suite with nothing recorded yet: not a regression, but say so
        // explicitly — a silently skipped suite reads as "gated" when it
        // is not.
        ++missing;
        std::cout << "perf gate: " << sample.name << "/" << sample.engine
                  << "/" << sample.config << " missing from baseline "
                  << baseline_path
                  << " — not gated; re-record to arm it\n";
        continue;
      }
      ++matched;
      const double ratio = sample.ns_per_query / recorded;
      const bool regressed = ratio > 2.0;
      std::cout << "perf gate: " << sample.name << "/" << sample.engine
                << "/" << sample.config << " "
                << format_fixed(sample.ns_per_query, 0)
                << " ns/query vs recorded " << format_fixed(recorded, 0)
                << " (" << format_fixed(ratio, 2) << "x)"
                << (regressed ? "  REGRESSION" : "") << "\n";
      failed = failed || regressed;
    }
    if (failed) {
      std::cerr << "perf gate: pathfinder regression above 2x against "
                << baseline_path << "\n";
      return 3;
    }
    if (matched == 0 && !gated_samples.empty()) {
      // A baseline that matches no sample at all means the recorded file
      // and this harness disagree wholesale (renamed suites/fields):
      // fail loudly instead of silently disarming the gate.
      std::cerr << "perf gate: baseline " << baseline_path << " matched 0/"
                << gated_samples.size()
                << " pathfinder samples — re-record it with this harness\n";
      return 3;
    }
  }
  return 0;
}
