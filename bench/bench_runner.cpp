// Routing-core benchmark harness: runs the micro-router, PathFinder and
// scaling benches and emits a machine-readable BENCH_routing.json so every
// perf PR leaves a recorded trajectory.
//
//   bench_runner [--smoke] [--output PATH]
//
// --smoke shrinks repetition counts to a few iterations (CI bitrot guard);
// --output defaults to BENCH_routing.json in the working directory.
//
// Reported per bench: ns/query (a query is one inner shortest-path search),
// negotiation iterations-to-converge, and total routed delay. The PathFinder
// benches run both engines — the reference allocating Dijkstra and the
// arena-backed A* — so the speedup of the optimized core is measured against
// a live baseline, not a number frozen in a doc.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "route/pathfinder.hpp"

using namespace qspr;
using qspr_bench::JsonWriter;

namespace {

struct PathFinderSample {
  std::string name;
  std::string engine;
  int nets = 0;
  int repetitions = 0;
  double ns_per_query = 0.0;
  long long queries = 0;
  int iterations = 0;
  bool converged = false;
  Duration total_delay = 0;
};

std::vector<NetRequest> central_nets(const Fabric& fabric, int count,
                                     std::uint64_t seed) {
  const auto central = fabric.traps_by_distance(fabric.center());
  const std::size_t pool = std::min<std::size_t>(central.size(), 64);
  Rng rng(seed);
  std::vector<NetRequest> nets;
  for (int i = 0; i < count; ++i) {
    const TrapId from = central[rng.uniform_index(pool)];
    TrapId to = central[rng.uniform_index(pool)];
    while (to == from) to = central[rng.uniform_index(pool)];
    nets.push_back({from, to});
  }
  return nets;
}

PathFinderSample run_pathfinder(const std::string& name,
                                const RoutingGraph& graph,
                                const TechnologyParams& params,
                                const std::vector<NetRequest>& nets,
                                PathFinderEngine engine, int repetitions) {
  PathFinderOptions options;
  options.engine = engine;

  PathFinderSample sample;
  sample.name = name;
  sample.engine = engine == PathFinderEngine::AStarArena ? "astar_arena"
                                                         : "reference_dijkstra";
  sample.nets = static_cast<int>(nets.size());
  sample.repetitions = repetitions;

  PathFinderResult result;
  const double ns_per_rep = qspr_bench::time_ns_per_rep(repetitions, [&] {
    result = route_nets_negotiated(graph, params, nets, options);
  });
  // One "query" is one inner shortest-path search: every net is re-routed
  // once per negotiation iteration.
  const long long queries =
      static_cast<long long>(nets.size()) * result.iterations;
  sample.queries = queries;
  sample.ns_per_query = queries > 0 ? ns_per_rep / static_cast<double>(queries)
                                    : 0.0;
  sample.iterations = result.iterations;
  sample.converged = result.converged;
  sample.total_delay = result.total_delay;
  return sample;
}

void write_sample(JsonWriter& json, const PathFinderSample& sample) {
  json.begin_object()
      .field("name", sample.name)
      .field("engine", sample.engine)
      .field("nets", sample.nets)
      .field("repetitions", sample.repetitions)
      .field("queries_per_rep", sample.queries)
      .field("ns_per_query", sample.ns_per_query)
      .field("iterations_to_converge", sample.iterations)
      .field("converged", sample.converged)
      .field("total_delay_us", static_cast<long long>(sample.total_delay))
      .end_object();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string output = "BENCH_routing.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--output" && i + 1 < argc) {
      output = argv[++i];
    } else {
      std::cerr << "usage: bench_runner [--smoke] [--output PATH]\n";
      return 2;
    }
  }

  qspr_bench::print_header("Routing core benchmark harness");
  const TechnologyParams params;

  JsonWriter json;
  json.begin_object();
  json.field("schema", "qspr-bench-routing/v1");
  json.field("smoke", smoke);

  // ------------------------------------------------------- micro-router ---
  // Single-query A* latency on the paper fabric (45x85, Fig. 4), the
  // greedy/incremental router used by the event simulator.
  {
    const Fabric fabric = make_paper_fabric();
    const RoutingGraph graph(fabric);
    CongestionState congestion(fabric.segment_count(),
                               fabric.junction_count());
    Router router(graph, params);
    const auto central = fabric.traps_by_distance(fabric.center());
    const TrapId corner_a = fabric.traps().front().id;
    const TrapId corner_b = fabric.traps().back().id;
    const int reps = smoke ? 20 : 2000;

    json.key("micro_router").begin_array();
    struct Case {
      const char* name;
      TrapId from;
      TrapId to;
    };
    for (const Case c : {Case{"corner_to_corner", corner_a, corner_b},
                         Case{"neighbour_traps", central[0], central[1]}}) {
      Duration delay = 0;
      const double ns = qspr_bench::time_ns_per_rep(reps, [&] {
        const auto path = router.route_trap_to_trap(c.from, c.to, congestion);
        delay = path.has_value() ? path->total_delay() : -1;
      });
      std::cout << "micro_router/" << c.name << ": "
                << format_fixed(ns, 0) << " ns/query, delay " << delay
                << " us\n";
      json.begin_object()
          .field("name", std::string(c.name))
          .field("fabric", "paper_45x85")
          .field("repetitions", reps)
          .field("ns_per_query", ns)
          .field("path_delay_us", static_cast<long long>(delay))
          .end_object();
    }
    json.end_array();
  }

  // --------------------------------------------------------- pathfinder ---
  // Negotiated batch routing on the paper fabric, both engines per load
  // level; the speedup column is the per-query ratio reference/optimized.
  {
    const Fabric fabric = make_paper_fabric();
    const RoutingGraph graph(fabric);
    const int reps = smoke ? 1 : 25;
    const std::vector<int> loads = smoke ? std::vector<int>{4}
                                         : std::vector<int>{8, 16, 32};

    TextTable table({"Nets", "Engine", "ns/query", "iters", "converged",
                     "delay (us)", "speedup"});
    std::vector<PathFinderSample> samples;
    for (const int load : loads) {
      const auto nets = central_nets(fabric, load, 11);
      const PathFinderSample reference = run_pathfinder(
          "pathfinder_" + std::to_string(load) + "nets", graph, params, nets,
          PathFinderEngine::ReferenceDijkstra, reps);
      const PathFinderSample optimized = run_pathfinder(
          "pathfinder_" + std::to_string(load) + "nets", graph, params, nets,
          PathFinderEngine::AStarArena, reps);
      const double speedup =
          optimized.ns_per_query > 0.0
              ? reference.ns_per_query / optimized.ns_per_query
              : 0.0;
      table.add_row({std::to_string(load), reference.engine,
                     format_fixed(reference.ns_per_query, 0),
                     std::to_string(reference.iterations),
                     reference.converged ? "yes" : "no",
                     std::to_string(reference.total_delay), "1.00x"});
      table.add_row({std::to_string(load), optimized.engine,
                     format_fixed(optimized.ns_per_query, 0),
                     std::to_string(optimized.iterations),
                     optimized.converged ? "yes" : "no",
                     std::to_string(optimized.total_delay),
                     format_fixed(speedup, 2) + "x"});
      samples.push_back(reference);
      samples.push_back(optimized);
    }
    std::cout << table.to_string();
    json.key("pathfinder_runs").begin_array();
    for (const PathFinderSample& sample : samples) {
      write_sample(json, sample);
    }
    json.end_array();
  }

  // ------------------------------------------------------------ scaling ---
  // Optimized engine across growing QUALE fabrics at a fixed load.
  {
    json.key("scaling").begin_array();
    struct Size {
      const char* name;
      QualeFabricParams quale;
    };
    const std::vector<Size> sizes = {
        {"quale_6x11", {6, 11, 4}},
        {"quale_12x22", {12, 22, 4}},
    };
    const int reps = smoke ? 1 : 10;
    for (const Size& size : sizes) {
      const Fabric fabric = make_quale_fabric(size.quale);
      const RoutingGraph graph(fabric);
      const auto nets = central_nets(fabric, 16, 7);
      const PathFinderSample sample =
          run_pathfinder(std::string("scaling_") + size.name, graph, params,
                         nets, PathFinderEngine::AStarArena, reps);
      std::cout << "scaling/" << size.name << ": "
                << format_fixed(sample.ns_per_query, 0) << " ns/query, "
                << sample.iterations << " iters, delay " << sample.total_delay
                << " us\n";
      write_sample(json, sample);
    }
    json.end_array();
  }

  json.end_object();

  std::ofstream file(output);
  if (!file) {
    std::cerr << "cannot write " << output << "\n";
    return 1;
  }
  file << json.str() << "\n";
  std::cout << "\nwrote " << output << "\n";
  return 0;
}
