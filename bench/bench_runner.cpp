// Routing-core benchmark harness: runs the micro-router, PathFinder and
// scaling benches and emits a machine-readable BENCH_routing.json so every
// perf PR leaves a recorded trajectory.
//
//   bench_runner [--smoke] [--output PATH] [--jobs N]
//
// --smoke shrinks repetition counts to a few iterations (CI bitrot guard);
// --output defaults to BENCH_routing.json in the working directory;
// --jobs caps the worker counts exercised by the parallel-scaling suite
// (default 8; the suite always starts from 1 worker).
//
// Reported per bench: ns/query (a query is one inner shortest-path search),
// negotiation iterations-to-converge, and total routed delay. The PathFinder
// benches run both engines — the reference allocating Dijkstra and the
// arena-backed A* — so the speedup of the optimized core is measured against
// a live baseline, not a number frozen in a doc.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "route/pathfinder.hpp"

using namespace qspr;
using qspr_bench::JsonWriter;

namespace {

struct PathFinderSample {
  std::string name;
  std::string engine;
  int nets = 0;
  int repetitions = 0;
  double ns_per_query = 0.0;
  long long queries = 0;
  int iterations = 0;
  bool converged = false;
  Duration total_delay = 0;
};

std::vector<NetRequest> central_nets(const Fabric& fabric, int count,
                                     std::uint64_t seed) {
  const auto central = fabric.traps_by_distance(fabric.center());
  const std::size_t pool = std::min<std::size_t>(central.size(), 64);
  Rng rng(seed);
  std::vector<NetRequest> nets;
  for (int i = 0; i < count; ++i) {
    const TrapId from = central[rng.uniform_index(pool)];
    TrapId to = central[rng.uniform_index(pool)];
    while (to == from) to = central[rng.uniform_index(pool)];
    nets.push_back({from, to});
  }
  return nets;
}

PathFinderSample run_pathfinder(const std::string& name,
                                const RoutingGraph& graph,
                                const TechnologyParams& params,
                                const std::vector<NetRequest>& nets,
                                PathFinderEngine engine, int repetitions) {
  PathFinderOptions options;
  options.engine = engine;

  PathFinderSample sample;
  sample.name = name;
  sample.engine = engine == PathFinderEngine::AStarArena ? "astar_arena"
                                                         : "reference_dijkstra";
  sample.nets = static_cast<int>(nets.size());
  sample.repetitions = repetitions;

  PathFinderResult result;
  // One scratch reused across repetitions — the per-worker ownership pattern
  // of the trial-parallel pipeline, and it keeps allocations out of the
  // timed loop.
  PathFinderScratch scratch;
  const double ns_per_rep = qspr_bench::time_ns_per_rep(repetitions, [&] {
    result = route_nets_negotiated(graph, params, nets, options, scratch);
  });
  // One "query" is one inner shortest-path search: every net is re-routed
  // once per negotiation iteration.
  const long long queries =
      static_cast<long long>(nets.size()) * result.iterations;
  sample.queries = queries;
  sample.ns_per_query = queries > 0 ? ns_per_rep / static_cast<double>(queries)
                                    : 0.0;
  sample.iterations = result.iterations;
  sample.converged = result.converged;
  sample.total_delay = result.total_delay;
  return sample;
}

void write_sample(JsonWriter& json, const PathFinderSample& sample) {
  json.begin_object()
      .field("name", sample.name)
      .field("engine", sample.engine)
      .field("nets", sample.nets)
      .field("repetitions", sample.repetitions)
      .field("queries_per_rep", sample.queries)
      .field("ns_per_query", sample.ns_per_query)
      .field("iterations_to_converge", sample.iterations)
      .field("converged", sample.converged)
      .field("total_delay_us", static_cast<long long>(sample.total_delay))
      .end_object();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string output = "BENCH_routing.json";
  int max_jobs = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--output" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      try {
        max_jobs = std::stoi(argv[++i]);
      } catch (const std::exception&) {
        max_jobs = 0;
      }
      if (max_jobs < 1) {
        std::cerr << "--jobs must be a positive integer\n";
        return 2;
      }
    } else {
      std::cerr << "usage: bench_runner [--smoke] [--output PATH] "
                   "[--jobs N]\n";
      return 2;
    }
  }

  qspr_bench::print_header("Routing core benchmark harness");
  const TechnologyParams params;

  JsonWriter json;
  json.begin_object();
  json.field("schema", "qspr-bench-routing/v1");
  json.field("smoke", smoke);

  // ------------------------------------------------------- micro-router ---
  // Single-query A* latency on the paper fabric (45x85, Fig. 4), the
  // greedy/incremental router used by the event simulator.
  {
    const Fabric fabric = make_paper_fabric();
    const RoutingGraph graph(fabric);
    CongestionState congestion(fabric.segment_count(),
                               fabric.junction_count());
    Router router(graph, params);
    SearchArena<Duration> arena;
    const auto central = fabric.traps_by_distance(fabric.center());
    const TrapId corner_a = fabric.traps().front().id;
    const TrapId corner_b = fabric.traps().back().id;
    const int reps = smoke ? 20 : 2000;

    json.key("micro_router").begin_array();
    struct Case {
      const char* name;
      TrapId from;
      TrapId to;
    };
    for (const Case c : {Case{"corner_to_corner", corner_a, corner_b},
                         Case{"neighbour_traps", central[0], central[1]}}) {
      Duration delay = 0;
      const double ns = qspr_bench::time_ns_per_rep(reps, [&] {
        const auto path =
            router.route_trap_to_trap(c.from, c.to, congestion, arena);
        delay = path.has_value() ? path->total_delay() : -1;
      });
      std::cout << "micro_router/" << c.name << ": "
                << format_fixed(ns, 0) << " ns/query, delay " << delay
                << " us\n";
      json.begin_object()
          .field("name", std::string(c.name))
          .field("fabric", "paper_45x85")
          .field("repetitions", reps)
          .field("ns_per_query", ns)
          .field("path_delay_us", static_cast<long long>(delay))
          .end_object();
    }
    json.end_array();
  }

  // --------------------------------------------------------- pathfinder ---
  // Negotiated batch routing on the paper fabric, both engines per load
  // level; the speedup column is the per-query ratio reference/optimized.
  {
    const Fabric fabric = make_paper_fabric();
    const RoutingGraph graph(fabric);
    const int reps = smoke ? 1 : 25;
    const std::vector<int> loads = smoke ? std::vector<int>{4}
                                         : std::vector<int>{8, 16, 32};

    TextTable table({"Nets", "Engine", "ns/query", "iters", "converged",
                     "delay (us)", "speedup"});
    std::vector<PathFinderSample> samples;
    for (const int load : loads) {
      const auto nets = central_nets(fabric, load, 11);
      const PathFinderSample reference = run_pathfinder(
          "pathfinder_" + std::to_string(load) + "nets", graph, params, nets,
          PathFinderEngine::ReferenceDijkstra, reps);
      const PathFinderSample optimized = run_pathfinder(
          "pathfinder_" + std::to_string(load) + "nets", graph, params, nets,
          PathFinderEngine::AStarArena, reps);
      const double speedup =
          optimized.ns_per_query > 0.0
              ? reference.ns_per_query / optimized.ns_per_query
              : 0.0;
      table.add_row({std::to_string(load), reference.engine,
                     format_fixed(reference.ns_per_query, 0),
                     std::to_string(reference.iterations),
                     reference.converged ? "yes" : "no",
                     std::to_string(reference.total_delay), "1.00x"});
      table.add_row({std::to_string(load), optimized.engine,
                     format_fixed(optimized.ns_per_query, 0),
                     std::to_string(optimized.iterations),
                     optimized.converged ? "yes" : "no",
                     std::to_string(optimized.total_delay),
                     format_fixed(speedup, 2) + "x"});
      samples.push_back(reference);
      samples.push_back(optimized);
    }
    std::cout << table.to_string();
    json.key("pathfinder_runs").begin_array();
    for (const PathFinderSample& sample : samples) {
      write_sample(json, sample);
    }
    json.end_array();
  }

  // ------------------------------------------------------------ scaling ---
  // Optimized engine across growing QUALE fabrics at a fixed load.
  {
    json.key("scaling").begin_array();
    struct Size {
      const char* name;
      QualeFabricParams quale;
    };
    const std::vector<Size> sizes = {
        {"quale_6x11", {6, 11, 4}},
        {"quale_12x22", {12, 22, 4}},
    };
    const int reps = smoke ? 1 : 10;
    for (const Size& size : sizes) {
      const Fabric fabric = make_quale_fabric(size.quale);
      const RoutingGraph graph(fabric);
      const auto nets = central_nets(fabric, 16, 7);
      const PathFinderSample sample =
          run_pathfinder(std::string("scaling_") + size.name, graph, params,
                         nets, PathFinderEngine::AStarArena, reps);
      std::cout << "scaling/" << size.name << ": "
                << format_fixed(sample.ns_per_query, 0) << " ns/query, "
                << sample.iterations << " iters, delay " << sample.total_delay
                << " us\n";
      write_sample(json, sample);
    }
    json.end_array();
  }

  // --------------------------------------------------- parallel scaling ---
  // Trial-parallel mapping throughput: the Monte-Carlo trial loop and the
  // MVFB seed loop on the [[7,1,3]] benchmark, at growing worker counts.
  // Results are bit-identical at any worker count (checked below), so the
  // only thing that varies is trials/sec.
  {
    const Program program = make_encoder(QeccCode::Q7_1_3);
    const Fabric fabric = make_paper_fabric();
    std::vector<int> job_levels;
    for (const int jobs : {1, 2, 4, 8}) {
      if (jobs <= max_jobs) job_levels.push_back(jobs);
    }

    struct Flow {
      const char* name;
      PlacerKind placer;
      int trials;
    };
    const std::vector<Flow> flows = {
        {"monte_carlo", PlacerKind::MonteCarlo, smoke ? 10 : 100},
        {"mvfb", PlacerKind::Mvfb, smoke ? 4 : 100},
    };

    TextTable table({"Flow", "Trials", "Jobs", "wall ms", "trials/sec",
                     "speedup", "identical"});
    json.key("parallel_scaling").begin_object();
    json.field("code", "[[7,1,3]]");
    json.field("hardware_concurrency",
               static_cast<long long>(ThreadPool::default_worker_count()));
    json.key("runs").begin_array();
    for (const Flow& flow : flows) {
      double serial_ms = 0.0;
      Duration serial_latency = 0;
      Placement serial_placement;
      Placement serial_final;
      std::string serial_trace;
      for (const int jobs : job_levels) {
        MapperOptions options;
        options.placer = flow.placer;
        options.monte_carlo_trials = flow.trials;
        options.mvfb_seeds = flow.trials;
        options.jobs = jobs;
        const MapResult result = map_program(program, fabric, options);
        if (jobs == 1) {
          serial_ms = result.cpu_ms;
          serial_latency = result.latency;
          serial_placement = result.initial_placement;
          serial_final = result.final_placement;
          serial_trace = result.trace.to_string();
        }
        const bool identical = result.latency == serial_latency &&
                               result.initial_placement == serial_placement &&
                               result.final_placement == serial_final &&
                               result.trace.to_string() == serial_trace;
        const double trials_per_sec =
            result.cpu_ms > 0.0
                ? static_cast<double>(result.placement_runs) * 1000.0 /
                      result.cpu_ms
                : 0.0;
        const double speedup =
            result.cpu_ms > 0.0 ? serial_ms / result.cpu_ms : 0.0;
        table.add_row({flow.name, std::to_string(result.placement_runs),
                       std::to_string(jobs), format_fixed(result.cpu_ms, 1),
                       format_fixed(trials_per_sec, 1),
                       format_fixed(speedup, 2) + "x",
                       identical ? "yes" : "NO"});
        json.begin_object()
            .field("flow", std::string(flow.name))
            .field("trials", flow.trials)
            .field("placement_runs", static_cast<long long>(result.placement_runs))
            .field("jobs", jobs)
            .field("wall_ms", result.cpu_ms)
            .field("trial_cpu_ms", result.trial_cpu_ms)
            .field("trials_per_sec", trials_per_sec)
            .field("speedup_vs_serial", speedup)
            .field("latency_us", static_cast<long long>(result.latency))
            .field("identical_to_serial", identical)
            .end_object();
      }
    }
    json.end_array().end_object();
    std::cout << "\nparallel scaling ([[7,1,3]], "
              << ThreadPool::default_worker_count()
              << " hardware threads):\n"
              << table.to_string();
  }

  json.end_object();

  std::ofstream file(output);
  if (!file) {
    std::cerr << "cannot write " << output << "\n";
    return 1;
  }
  file << json.str() << "\n";
  std::cout << "\nwrote " << output << "\n";
  return 0;
}
