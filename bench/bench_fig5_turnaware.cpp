// Reproduces paper Fig. 5: routing on the naive graph model (turns are
// invisible to the cost function, Fig. 5.b) versus the enhanced model with
// orientation-split vertices and turn edges (Fig. 5.c).
//
// As in the figure, three corner-to-corner routes of equal Manhattan length
// are compared: the single-corner path (1), a Z-shaped path (2) and a
// staircase (3). Under the naive model all three have identical cost — the
// router is "free to select any of the paths with equal Manhattan
// distances" — while the enhanced model separates them by turn count and its
// Dijkstra provably returns a minimum-physical-delay route.
#include <vector>

#include "bench_util.hpp"
#include "fabric/text_io.hpp"
#include "route/router.hpp"

using namespace qspr;

namespace {

/// Builds the vertex sequence of a concrete route given the trap endpoints
/// and the waypoints (first cell after the source trap, every corner cell,
/// last cell before the target trap). Consecutive legs both visit the shared
/// corner cell, once per orientation, which yields the turn edge; the trap
/// access ports contribute their own (perpendicular-entry) turns.
std::vector<RouteNodeId> build_route(const RoutingGraph& graph, TrapId from,
                                     const std::vector<Position>& waypoints,
                                     TrapId to) {
  const Fabric& fabric = graph.fabric();
  std::vector<RouteNodeId> nodes;
  nodes.push_back(graph.trap_node(from));
  // Leave the source trap along the port axis.
  nodes.push_back(graph.node_at(
      waypoints.front(),
      axis_of(direction_between(fabric.trap(from).position,
                                waypoints.front()))));
  for (std::size_t i = 0; i + 1 < waypoints.size(); ++i) {
    const Position a = waypoints[i];
    const Position b = waypoints[i + 1];
    const Orientation axis = a.row == b.row ? Orientation::Horizontal
                                            : Orientation::Vertical;
    Position p = a;
    while (true) {
      const RouteNodeId node = graph.node_at(p, axis);
      if (node.is_valid() && nodes.back() != node) nodes.push_back(node);
      if (p == b) break;
      p = step(p, direction_between(
                      p, {p.row + (b.row > p.row ? 1 : b.row < p.row ? -1 : 0),
                          p.col +
                              (b.col > p.col ? 1 : b.col < p.col ? -1 : 0)}));
    }
  }
  // Enter the target trap along its port axis.
  const RouteNodeId entry = graph.node_at(
      waypoints.back(),
      axis_of(direction_between(waypoints.back(),
                                fabric.trap(to).position)));
  if (nodes.back() != entry) nodes.push_back(entry);
  nodes.push_back(graph.trap_node(to));
  return nodes;
}

}  // namespace

int main() {
  qspr_bench::print_header(
      "Figure 5 - turn-aware routing graph vs the naive model");

  const Fabric fabric = make_quale_fabric({3, 3, 4});
  std::cout << render_fabric(fabric) << "\n"
            << "route: bottom-left trap (7,1) -> top-right trap (1,7)\n\n";

  const RoutingGraph graph(fabric);
  const TechnologyParams params;
  const TrapId from = fabric.trap_at({7, 1});
  const TrapId to = fabric.trap_at({1, 7});

  // The figure's three equal-Manhattan-length candidates.
  struct Candidate {
    const char* name;
    std::vector<Position> waypoints;
  };
  const std::vector<Candidate> candidates = {
      {"(1) single corner", {{7, 0}, {0, 0}, {0, 7}}},
      {"(2) Z-shaped", {{7, 0}, {4, 0}, {4, 8}, {1, 8}}},
      {"(3) staircase", {{7, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 7}}},
  };

  TextTable table({"Path", "Moves", "Turns", "Naive cost (Fig. 5.b)",
                   "Enhanced cost (Fig. 5.c)", "Physical delay (us)"});
  for (const Candidate& candidate : candidates) {
    const auto nodes = build_route(graph, from, candidate.waypoints, to);
    const RoutedPath path = lower_path(graph, nodes, params);
    const Duration naive_cost =
        static_cast<Duration>(path.move_count()) * params.t_move;
    const Duration enhanced_cost =
        naive_cost + static_cast<Duration>(path.turn_count()) * params.t_turn;
    table.add_row({candidate.name, std::to_string(path.move_count()),
                   std::to_string(path.turn_count()),
                   std::to_string(naive_cost), std::to_string(enhanced_cost),
                   std::to_string(path.total_delay())});
  }
  std::cout << table.to_string();

  // What the routers actually select.
  CongestionState congestion(fabric.segment_count(), fabric.junction_count());
  Router naive(graph, params, RouterOptions{/*turn_aware=*/false});
  Router enhanced(graph, params, RouterOptions{/*turn_aware=*/true});
  SearchArena<Duration> arena;
  Duration naive_selection = 0;
  Duration enhanced_selection = 0;
  const auto naive_path =
      naive.route_trap_to_trap(from, to, congestion, arena, &naive_selection);
  const auto enhanced_path = enhanced.route_trap_to_trap(
      from, to, congestion, arena, &enhanced_selection);
  std::cout << "\nnaive router pick:    " << naive_path->move_count()
            << " moves, " << naive_path->turn_count() << " turns, "
            << naive_path->total_delay()
            << " us physical (selection cost " << naive_selection
            << " - blind to turns, any of the paths above is 'optimal')\n"
            << "enhanced router pick: " << enhanced_path->move_count()
            << " moves, " << enhanced_path->turn_count() << " turns, "
            << enhanced_path->total_delay()
            << " us physical (selection cost " << enhanced_selection
            << " - guaranteed minimum delay)\n";

  // Sweep: the guaranteed advantage across random trap pairs on the 45x85
  // fabric (our naive tie-breaking is deterministic, so this measures the
  // *floor* of the naive model's loss, not its typical arbitrary pick).
  const Fabric big = make_paper_fabric();
  const RoutingGraph big_graph(big);
  CongestionState big_congestion(big.segment_count(), big.junction_count());
  Router big_naive(big_graph, params, RouterOptions{false});
  Router big_enhanced(big_graph, params, RouterOptions{true});
  Rng rng(7);
  RunningStats saved;
  for (int i = 0; i < 200; ++i) {
    const TrapId a = big.traps()[rng.uniform_index(big.trap_count())].id;
    const TrapId b = big.traps()[rng.uniform_index(big.trap_count())].id;
    if (a == b) continue;
    const auto pn = big_naive.route_trap_to_trap(a, b, big_congestion, arena);
    const auto pe = big_enhanced.route_trap_to_trap(a, b, big_congestion,
                                                    arena);
    saved.add(static_cast<double>(pn->total_delay() - pe->total_delay()));
  }
  std::cout << "\nrandom trap pairs on the 45x85 fabric (n=" << saved.count()
            << "): mean physical delay saved by turn-awareness "
            << format_fixed(saved.mean(), 1) << " us, max "
            << format_fixed(saved.max(), 0)
            << " us, even against this implementation's benign naive "
               "tie-breaking.\n";
  return 0;
}
