// Sweep of the turn/move delay ratio. §II.B: "a turn typically takes 5 to 30
// times longer than a move" (ref. [1]); the paper's experiments use 10x.
// The value of turn-aware routing should grow with the ratio.
#include "bench_util.hpp"

using namespace qspr;

int main() {
  qspr_bench::print_header("Turn/move delay ratio sweep (T_turn = 5..30 us)");

  const Fabric fabric = make_paper_fabric();
  const Duration ratios[] = {5, 10, 20, 30};

  TextTable table({"T_turn (us)", "QSPR (us)", "QSPR turn-blind (us)",
                   "turn-aware advantage", "QUALE (us)", "improv. wrt QUALE"});

  for (const Duration t_turn : ratios) {
    Duration qspr_total = 0;
    Duration blind_total = 0;
    Duration quale_total = 0;
    for (const PaperNumbers& paper : paper_benchmarks()) {
      const Program program = make_encoder(paper.code);
      MapperOptions qspr_options;
      qspr_options.mvfb_seeds = 10;
      qspr_options.tech.t_turn = t_turn;
      MapperOptions blind_options = qspr_options;
      blind_options.turn_aware = false;
      MapperOptions quale_options;
      quale_options.kind = MapperKind::Quale;
      quale_options.tech.t_turn = t_turn;

      qspr_total += map_program(program, fabric, qspr_options).latency;
      blind_total += map_program(program, fabric, blind_options).latency;
      quale_total += map_program(program, fabric, quale_options).latency;
    }
    table.add_row({std::to_string(t_turn), std::to_string(qspr_total),
                   std::to_string(blind_total),
                   qspr_bench::improvement(blind_total, qspr_total),
                   std::to_string(quale_total),
                   qspr_bench::improvement(quale_total, qspr_total)});
  }
  std::cout << table.to_string();
  std::cout << "\nsuite totals over the six QECC circuits. The benefit of "
               "modelling turns grows with the turn delay, and QSPR's edge "
               "over QUALE widens with it.\n";
  return 0;
}
