// Batch routing comparison: PathFinder negotiated congestion (QUALE's
// router, paper ref. [3]) versus greedy sequential reservation (Eq. 2) for
// sets of simultaneous relocations.
#include "bench_util.hpp"
#include "route/pathfinder.hpp"

using namespace qspr;

int main() {
  qspr_bench::print_header(
      "Batch routing - PathFinder negotiation vs greedy sequential");

  const Fabric fabric = make_paper_fabric();
  const RoutingGraph graph(fabric);
  const TechnologyParams params;

  TextTable table({"Nets", "PathFinder delay (us)", "iterations", "converged",
                   "Greedy delay (us)", "Greedy blocked nets"});

  Rng rng(11);
  for (const int net_count : {2, 4, 8, 16, 32}) {
    // Random relocations between traps near the fabric center (where center
    // placement puts the qubits, i.e. the contended region).
    const auto central = fabric.traps_by_distance(fabric.center());
    std::vector<NetRequest> nets;
    for (int i = 0; i < net_count; ++i) {
      const TrapId from = central[rng.uniform_index(64)];
      TrapId to = central[rng.uniform_index(64)];
      while (to == from) to = central[rng.uniform_index(64)];
      nets.push_back({from, to});
    }

    const PathFinderResult negotiated =
        route_nets_negotiated(graph, params, nets);

    // Greedy: route one net after another with hard Eq. 2 reservations.
    Router router(graph, params);
    SearchArena<Duration> arena;
    CongestionState congestion(fabric.segment_count(),
                               fabric.junction_count());
    Duration greedy_delay = 0;
    int blocked = 0;
    for (const NetRequest& net : nets) {
      const auto path = router.route_trap_to_trap(net.from, net.to,
                                                  congestion, arena);
      if (!path.has_value()) {
        ++blocked;  // would wait in the busy queue
        continue;
      }
      greedy_delay += path->total_delay();
      for (const ResourceUse& use : path->resource_uses) {
        congestion.acquire(use.resource);
      }
    }

    table.add_row({std::to_string(net_count),
                   std::to_string(negotiated.total_delay),
                   std::to_string(negotiated.iterations_used),
                   negotiated.converged ? "yes" : "no",
                   std::to_string(greedy_delay), std::to_string(blocked)});
  }
  std::cout << table.to_string();
  std::cout << "\nnegotiation re-balances all nets globally; greedy "
               "reservation commits first-come-first-served and must park "
               "blocked nets in the busy queue (counted, not timed here).\n";
  return 0;
}
