// Reproduces paper Table 1: MVFB vs the Monte Carlo placer at m = 25 and
// m = 100 — execution latency, CPU runtime and number of placement runs.
//
// Budgeting follows the paper's design of experiment: MVFB uses a variable
// number of runs per seed (stop after 3 consecutive non-improving placement
// runs); the MC placer is then given exactly twice the number of MVFB
// *iterations* (forward+backward pairs), i.e. the same number of full
// schedule-and-route passes, so CPU runtimes are comparable by construction.
#include "bench_util.hpp"

using namespace qspr;

namespace {

struct Row {
  Duration mvfb_latency = 0;
  double mvfb_ms = 0;
  int mvfb_runs = 0;
  Duration mc_latency = 0;
  double mc_ms = 0;
  int mc_trials = 0;
};

Row run_case(const Program& program, const Fabric& fabric,
             const RoutingGraph& routing, int m) {
  const DependencyGraph graph = DependencyGraph::build(program);
  const ExecutionOptions exec;  // QSPR physics
  const auto rank = make_schedule_rank(graph, exec.tech);

  Row row;
  {
    Stopwatch watch;
    MvfbPlacer placer(graph, fabric, routing, rank, exec,
                      MvfbOptions{m, 3, 64, 1});
    const MvfbResult result = placer.place_and_execute();
    row.mvfb_ms = watch.elapsed_ms();
    row.mvfb_latency = result.best_latency;
    row.mvfb_runs = result.total_runs;
  }
  {
    // 2x the MVFB iterations = as many full passes as MVFB performed.
    const int trials = row.mvfb_runs;
    Stopwatch watch;
    const MonteCarloResult result = monte_carlo_place_and_execute(
        graph, fabric, routing, rank, exec, trials, 1);
    row.mc_ms = watch.elapsed_ms();
    row.mc_latency = result.best_latency;
    row.mc_trials = result.trials;
  }
  return row;
}

}  // namespace

int main() {
  qspr_bench::print_header(
      "Table 1 - MVFB vs Monte Carlo placer (m = 25 and m = 100)");

  const Fabric fabric = make_paper_fabric();
  const RoutingGraph routing(fabric);

  TextTable table({"Circuit", "Heuristic", "m=25 latency", "m=25 cpu (ms)",
                   "m=25 runs", "m=100 latency", "m=100 cpu (ms)",
                   "m=100 runs", "paper m=25/m=100 latency"});

  int mvfb_wins = 0;
  for (const PaperNumbers& paper : paper_benchmarks()) {
    const Program program = make_encoder(paper.code);
    const Row m25 = run_case(program, fabric, routing, 25);
    const Row m100 = run_case(program, fabric, routing, 100);

    table.add_separator();
    table.add_row({code_name(paper.code), "MVFB",
                   std::to_string(m25.mvfb_latency),
                   format_fixed(m25.mvfb_ms, 0),
                   std::to_string(m25.mvfb_runs),
                   std::to_string(m100.mvfb_latency),
                   format_fixed(m100.mvfb_ms, 0),
                   std::to_string(m100.mvfb_runs),
                   std::to_string(paper.mvfb_latency_m25) + " / " +
                       std::to_string(paper.mvfb_latency_m100)});
    table.add_row({"", "MC", std::to_string(m25.mc_latency),
                   format_fixed(m25.mc_ms, 0), std::to_string(m25.mc_trials),
                   std::to_string(m100.mc_latency),
                   format_fixed(m100.mc_ms, 0),
                   std::to_string(m100.mc_trials),
                   std::to_string(paper.mc_latency_m25) + " / " +
                       std::to_string(paper.mc_latency_m100)});
    if (m25.mvfb_latency <= m25.mc_latency &&
        m100.mvfb_latency <= m100.mc_latency) {
      ++mvfb_wins;
    }
  }
  std::cout << table.to_string();
  std::cout << "\nMVFB <= MC at both budgets on " << mvfb_wins
            << "/6 circuits (paper: 6/6).\n"
            << "Paper run counts for reference (m=25 / m=100): 88/312, "
               "78/312, 86/308, 83/316, 82/311, 89/315.\n";
  return 0;
}
