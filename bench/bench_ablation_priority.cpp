// Ablation: the scheduling priority function (§III). QSPR's priority is a
// linear combination of the dependent count (alpha) and the longest path
// delay to the sink (beta); prior art used ALAP (QUALE), dependent counts
// (QPOS) or total dependent delay (ref. [5]).
#include "bench_util.hpp"

using namespace qspr;

namespace {

struct Policy {
  std::string name;
  MapperOptions options;
};

}  // namespace

int main() {
  qspr_bench::print_header("Ablation - scheduling priority policies");

  const Fabric fabric = make_paper_fabric();

  std::vector<Policy> policies;
  {
    MapperOptions base;
    base.mvfb_seeds = 10;
    Policy combined{"alpha+beta (QSPR)", base};
    Policy alpha_only{"alpha only (dependents)", base};
    alpha_only.options.priority_beta = 0.0;
    Policy beta_only{"beta only (longest path)", base};
    beta_only.options.priority_alpha = 0.0;
    Policy alap{"ALAP (QUALE's)", base};
    alap.options.schedule_policy = SchedulePolicy::Alap;
    Policy qpos{"dependents (QPOS's)", base};
    qpos.options.schedule_policy = SchedulePolicy::AsapDependents;
    Policy whitney{"total dependent delay [5]", base};
    whitney.options.schedule_policy = SchedulePolicy::TotalDependentDelay;
    policies = {combined, alpha_only, beta_only, alap, qpos, whitney};
  }

  std::vector<std::string> headers = {"Policy"};
  for (const PaperNumbers& paper : paper_benchmarks()) {
    headers.push_back(code_name(paper.code));
  }
  headers.push_back("total");
  TextTable table(headers);

  for (const Policy& policy : policies) {
    std::vector<std::string> row = {policy.name};
    Duration total = 0;
    for (const PaperNumbers& paper : paper_benchmarks()) {
      const Program program = make_encoder(paper.code);
      const Duration latency =
          map_program(program, fabric, policy.options).latency;
      total += latency;
      row.push_back(std::to_string(latency));
    }
    row.push_back(std::to_string(total));
    table.add_row(row);
  }
  std::cout << table.to_string();
  std::cout << "\nall latencies in us; lower is better. The combined QSPR "
               "priority should be at or near the best total.\n";
  return 0;
}
