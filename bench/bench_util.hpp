// Shared helpers for the experiment-reproduction benches: console formatting
// and steady-clock micro-timing. The JSON writer the benches use for the
// machine-readable perf trajectory (BENCH_*.json) lives in common/json.hpp,
// shared with the batch mapping service's JSONL output.
#pragma once

#include <chrono>
#include <iostream>
#include <string>

#include "common/json.hpp"
#include "core/qspr.hpp"

namespace qspr_bench {

using JsonWriter = ::qspr::JsonWriter;

inline void print_header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

/// "x.x%" improvement of `better` over `worse`.
inline std::string improvement(qspr::Duration worse, qspr::Duration better) {
  if (worse == 0) return "n/a";
  return qspr::format_fixed(
             100.0 * static_cast<double>(worse - better) /
                 static_cast<double>(worse),
             2) +
         "%";
}

/// Wall-clock nanoseconds per repetition of `fn` over `reps` runs (reps>=1).
template <typename Fn>
double time_ns_per_rep(int reps, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::nano>(elapsed).count() /
         static_cast<double>(reps);
}

}  // namespace qspr_bench
