// Shared helpers for the experiment-reproduction benches: console formatting,
// steady-clock micro-timing, and a minimal JSON writer for the
// machine-readable perf trajectory (BENCH_*.json).
#pragma once

#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/qspr.hpp"

namespace qspr_bench {

inline void print_header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

/// "x.x%" improvement of `better` over `worse`.
inline std::string improvement(qspr::Duration worse, qspr::Duration better) {
  if (worse == 0) return "n/a";
  return qspr::format_fixed(
             100.0 * static_cast<double>(worse - better) /
                 static_cast<double>(worse),
             2) +
         "%";
}

/// Wall-clock nanoseconds per repetition of `fn` over `reps` runs (reps>=1).
template <typename Fn>
double time_ns_per_rep(int reps, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::nano>(elapsed).count() /
         static_cast<double>(reps);
}

/// Streaming JSON writer, just enough for flat-ish benchmark reports:
/// objects, arrays, string/number/bool scalars, correct comma placement.
class JsonWriter {
 public:
  [[nodiscard]] std::string str() const { return out_.str(); }

  JsonWriter& begin_object() {
    separate();
    out_ << "{";
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& end_object() {
    out_ << "}";
    stack_.pop_back();
    return *this;
  }
  JsonWriter& begin_array() {
    separate();
    out_ << "[";
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& end_array() {
    out_ << "]";
    stack_.pop_back();
    return *this;
  }

  JsonWriter& key(const std::string& name) {
    separate();
    out_ << '"' << escape(name) << "\":";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(const std::string& v) {
    separate();
    out_ << '"' << escape(v) << '"';
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v) {
    separate();
    std::ostringstream number;
    number.precision(15);
    number << v;
    out_ << number.str();
    return *this;
  }
  JsonWriter& value(long long v) {
    separate();
    out_ << v;
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(std::size_t v) {
    return value(static_cast<long long>(v));
  }
  JsonWriter& value(bool v) {
    separate();
    out_ << (v ? "true" : "false");
    return *this;
  }

  template <typename T>
  JsonWriter& field(const std::string& name, const T& v) {
    return key(name).value(v);
  }

 private:
  static std::string escape(const std::string& s) {
    std::string escaped;
    escaped.reserve(s.size());
    for (const char c : s) {
      switch (c) {
        case '"': escaped += "\\\""; break;
        case '\\': escaped += "\\\\"; break;
        case '\n': escaped += "\\n"; break;
        case '\t': escaped += "\\t"; break;
        default: escaped += c;
      }
    }
    return escaped;
  }

  /// Emits the comma before a sibling; the first element of a container and
  /// the value right after a key are comma-free.
  void separate() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back()) out_ << ",";
      stack_.back() = true;
    }
  }

  std::ostringstream out_;
  std::vector<bool> stack_;  // per open container: "has emitted an element"
  bool pending_value_ = false;
};

}  // namespace qspr_bench
