// Shared helpers for the experiment-reproduction benches.
#pragma once

#include <iostream>
#include <string>

#include "core/qspr.hpp"

namespace qspr_bench {

inline void print_header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

/// "x.x%" improvement of `better` over `worse`.
inline std::string improvement(qspr::Duration worse, qspr::Duration better) {
  if (worse == 0) return "n/a";
  return qspr::format_fixed(
             100.0 * static_cast<double>(worse - better) /
                 static_cast<double>(worse),
             2) +
         "%";
}

}  // namespace qspr_bench
