// Ablation: channel capacity (ion multiplexing, §II.B). The paper sets the
// capacity to 2 based on refs [8-10]; prior tools used 1. We sweep 1/2/4.
#include "bench_util.hpp"

using namespace qspr;

int main() {
  qspr_bench::print_header("Ablation - channel capacity (ion multiplexing)");

  const Fabric fabric = make_paper_fabric();
  TextTable table({"Circuit", "cap=1 (us)", "cap=2 (us, paper)", "cap=4 (us)",
                   "cap2 vs cap1"});

  Duration totals[3] = {0, 0, 0};
  for (const PaperNumbers& paper : paper_benchmarks()) {
    const Program program = make_encoder(paper.code);
    Duration latency[3];
    const int caps[3] = {1, 2, 4};
    for (int i = 0; i < 3; ++i) {
      MapperOptions options;
      options.mvfb_seeds = 10;
      options.channel_capacity = caps[i];
      latency[i] = map_program(program, fabric, options).latency;
      totals[i] += latency[i];
    }
    table.add_row({code_name(paper.code), std::to_string(latency[0]),
                   std::to_string(latency[1]), std::to_string(latency[2]),
                   qspr_bench::improvement(latency[0], latency[1])});
  }
  std::cout << table.to_string();
  std::cout << "\nsuite totals: cap1 " << totals[0] << ", cap2 " << totals[1]
            << ", cap4 " << totals[2]
            << " us - multiplexing (cap 2) captures most of the benefit; "
               "higher capacities see diminishing returns.\n";
  return 0;
}
