// Placement-engine comparison (§IV.A discussion): center placement (QUALE),
// connectivity-driven placement ("standard VLSI" — netlist only, schedule
// ignored), best-of-N Monte Carlo, and MVFB, all feeding the same QSPR
// scheduler/router.
#include "bench_util.hpp"

using namespace qspr;

int main() {
  qspr_bench::print_header(
      "Placer comparison - center vs connectivity vs Monte Carlo vs MVFB");

  const Fabric fabric = make_paper_fabric();
  const RoutingGraph routing(fabric);

  TextTable table({"Circuit", "Center", "Connectivity", "MC (matched)",
                   "MVFB m=25", "MVFB gain vs center"});
  Duration totals[4] = {0, 0, 0, 0};
  for (const PaperNumbers& paper : paper_benchmarks()) {
    const Program program = make_encoder(paper.code);
    const DependencyGraph graph = DependencyGraph::build(program);
    const ExecutionOptions exec;
    const auto rank = make_schedule_rank(graph, exec.tech);
    EventSimulator sim(graph, fabric, routing, rank, exec);

    const Duration center =
        sim.run(center_placement(fabric, program.qubit_count())).latency;
    const Duration connectivity =
        sim.run(connectivity_placement(fabric, program)).latency;

    MvfbPlacer mvfb_placer(graph, fabric, routing, rank, exec,
                           MvfbOptions{25, 3, 64, 1});
    const MvfbResult mvfb = mvfb_placer.place_and_execute();
    const MonteCarloResult mc = monte_carlo_place_and_execute(
        graph, fabric, routing, rank, exec, mvfb.total_runs, 1);

    totals[0] += center;
    totals[1] += connectivity;
    totals[2] += mc.best_latency;
    totals[3] += mvfb.best_latency;
    table.add_row({code_name(paper.code), std::to_string(center),
                   std::to_string(connectivity),
                   std::to_string(mc.best_latency),
                   std::to_string(mvfb.best_latency),
                   qspr_bench::improvement(center, mvfb.best_latency)});
  }
  table.add_separator();
  table.add_row({"total", std::to_string(totals[0]),
                 std::to_string(totals[1]), std::to_string(totals[2]),
                 std::to_string(totals[3]),
                 qspr_bench::improvement(totals[0], totals[3])});
  std::cout << table.to_string();
  std::cout << "\nMVFB exploits the *schedule* (forward/backward executions), "
               "which connectivity-only placement cannot see (§IV.A) — it "
               "should post the lowest totals.\n";
  return 0;
}
