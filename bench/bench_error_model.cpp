// Latency-to-fidelity analysis — the paper's motivation quantified (§I:
// latency is minimised "to minimize the amount of noise a quantum circuit
// absorbs"). Estimates end-to-end circuit fidelity for each mapper's output
// under an ion-trap error model.
#include "bench_util.hpp"

using namespace qspr;

int main() {
  qspr_bench::print_header(
      "Error-model analysis - mapped fidelity per mapper (T2 = 50 ms)");

  const Fabric fabric = make_paper_fabric();
  ErrorModelParams error_params;
  error_params.t2_us = 5e4;

  TextTable table({"Circuit", "Mapper", "Latency (us)", "Fidelity",
                   "Reliability (nines)", "Op-only fidelity"});
  for (const PaperNumbers& paper : paper_benchmarks()) {
    const Program program = make_encoder(paper.code);
    table.add_separator();
    for (const MapperKind kind : {MapperKind::Qspr, MapperKind::Quale}) {
      MapperOptions options;
      options.kind = kind;
      options.mvfb_seeds = 25;
      const MapResult result = map_program(program, fabric, options);
      const FidelityEstimate estimate = estimate_fidelity(
          result.trace, program.qubit_count(),
          program.two_qubit_gate_count(), error_params);
      table.add_row({kind == MapperKind::Qspr ? code_name(paper.code) : "",
                     std::string(to_string(kind)),
                     std::to_string(result.latency),
                     format_fixed(estimate.circuit_fidelity, 4),
                     format_fixed(reliability_nines(estimate), 2),
                     format_fixed(estimate.operation_fidelity, 4)});
    }
  }
  std::cout << table.to_string();
  std::cout << "\nQSPR's lower latencies translate directly into higher "
               "circuit fidelity: less idle decoherence (exp(-n*T/T2)) and "
               "fewer transport operations.\n";
  return 0;
}
