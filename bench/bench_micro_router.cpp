// Microbenchmarks (google-benchmark): the hot paths of the mapper — routing
// graph construction, single Dijkstra queries, QIDG analyses and a full
// center-placement mapping pass.
#include <benchmark/benchmark.h>

#include "core/qspr.hpp"

namespace {

using namespace qspr;

const Fabric& paper_fabric() {
  static const Fabric fabric = make_paper_fabric();
  return fabric;
}

const RoutingGraph& paper_routing() {
  static const RoutingGraph graph(paper_fabric());
  return graph;
}

void BM_RoutingGraphConstruction(benchmark::State& state) {
  const Fabric& fabric = paper_fabric();
  for (auto _ : state) {
    RoutingGraph graph(fabric);
    benchmark::DoNotOptimize(graph.node_count());
  }
}
BENCHMARK(BM_RoutingGraphConstruction);

void BM_DijkstraCornerToCorner(benchmark::State& state) {
  const Fabric& fabric = paper_fabric();
  CongestionState congestion(fabric.segment_count(), fabric.junction_count());
  Router router(paper_routing(), TechnologyParams{});
  SearchArena<Duration> arena;
  const TrapId from = fabric.traps().front().id;
  const TrapId to = fabric.traps().back().id;
  for (auto _ : state) {
    auto path = router.route_trap_to_trap(from, to, congestion, arena);
    benchmark::DoNotOptimize(path);
  }
}
BENCHMARK(BM_DijkstraCornerToCorner);

void BM_DijkstraNeighbourTraps(benchmark::State& state) {
  const Fabric& fabric = paper_fabric();
  CongestionState congestion(fabric.segment_count(), fabric.junction_count());
  Router router(paper_routing(), TechnologyParams{});
  SearchArena<Duration> arena;
  const auto near_center = fabric.traps_by_distance(fabric.center());
  for (auto _ : state) {
    auto path = router.route_trap_to_trap(near_center[0], near_center[1],
                                          congestion, arena);
    benchmark::DoNotOptimize(path);
  }
}
BENCHMARK(BM_DijkstraNeighbourTraps);

// One integer-cost Dijkstra haul per frontier kind (0 = binary heap,
// 1 = bucket queue, 2 = 4-ary heap). Identical pop order by contract — the
// spread across rows is the frontier's pure constant factor.
void BM_FrontierQueue(benchmark::State& state) {
  const Fabric& fabric = paper_fabric();
  CongestionState congestion(fabric.segment_count(), fabric.junction_count());
  Router router(paper_routing(), TechnologyParams{});
  SearchArena<Duration> arena;
  arena.set_frontier(static_cast<FrontierKind>(state.range(0)));
  const TrapId from = fabric.traps().front().id;
  const TrapId to = fabric.traps().back().id;
  const std::uint64_t settles_before = arena.settle_count();
  for (auto _ : state) {
    auto path = router.route_trap_to_trap(from, to, congestion, arena);
    benchmark::DoNotOptimize(path);
  }
  state.counters["settles_per_query"] = benchmark::Counter(
      static_cast<double>(arena.settle_count() - settles_before),
      benchmark::Counter::kAvgIterations);
  state.SetLabel(to_string(arena.frontier()));
}
BENCHMARK(BM_FrontierQueue)->DenseRange(0, 2);

void BM_QidgBuildAndAnalyses(benchmark::State& state) {
  const Program program = make_encoder(QeccCode::Q23_1_7);
  const TechnologyParams params;
  for (auto _ : state) {
    const DependencyGraph graph = DependencyGraph::build(program);
    benchmark::DoNotOptimize(graph.critical_path_latency(params));
    benchmark::DoNotOptimize(graph.descendant_counts());
    benchmark::DoNotOptimize(graph.longest_path_to_sink(params));
  }
}
BENCHMARK(BM_QidgBuildAndAnalyses);

void BM_MapCenterPlacement(benchmark::State& state) {
  const Program program = make_encoder(QeccCode::Q5_1_3);
  const Fabric& fabric = paper_fabric();
  MapperOptions options;
  options.placer = PlacerKind::Center;
  for (auto _ : state) {
    const MapResult result = map_program(program, fabric, options);
    benchmark::DoNotOptimize(result.latency);
  }
}
BENCHMARK(BM_MapCenterPlacement);

void BM_MvfbIteration(benchmark::State& state) {
  const Program program = make_encoder(QeccCode::Q5_1_3);
  const Fabric& fabric = paper_fabric();
  MapperOptions options;
  options.mvfb_seeds = 1;
  for (auto _ : state) {
    const MapResult result = map_program(program, fabric, options);
    benchmark::DoNotOptimize(result.latency);
  }
}
BENCHMARK(BM_MvfbIteration);

}  // namespace

BENCHMARK_MAIN();
