// Fabric-size scaling: the same circuits mapped onto lattices from cramped
// to the paper's 12x22. Center placement keeps qubits near the middle, so
// beyond a modest size the latency flattens — the paper's 45x85 fabric is
// comfortably in the flat region for these benchmarks, while cramped
// fabrics pay congestion.
#include "bench_util.hpp"

using namespace qspr;

int main() {
  qspr_bench::print_header("Fabric-size scaling (QSPR, MVFB m=10)");

  const QualeFabricParams sizes[] = {
      {4, 4, 4}, {4, 8, 4}, {8, 8, 4}, {8, 16, 4}, {12, 22, 4}};

  std::vector<std::string> headers = {"Fabric (junctions)", "Cells", "Traps"};
  for (const PaperNumbers& paper : paper_benchmarks()) {
    headers.push_back(code_name(paper.code));
  }
  TextTable table(headers);

  for (const QualeFabricParams& params : sizes) {
    const Fabric fabric = make_quale_fabric(params);
    std::vector<std::string> row = {
        std::to_string(params.junction_rows) + "x" +
            std::to_string(params.junction_cols),
        std::to_string(fabric.rows()) + "x" + std::to_string(fabric.cols()),
        std::to_string(fabric.trap_count())};
    for (const PaperNumbers& paper : paper_benchmarks()) {
      const Program program = make_encoder(paper.code);
      if (fabric.trap_count() < program.qubit_count()) {
        row.push_back("n/a");
        continue;
      }
      MapperOptions options;
      options.mvfb_seeds = 10;
      row.push_back(
          std::to_string(map_program(program, fabric, options).latency));
    }
    table.add_row(row);
  }
  std::cout << table.to_string();
  std::cout << "\nlatencies in us. Small fabrics congest; beyond ~8x8 "
               "junctions the curves flatten (center placement keeps routes "
               "short regardless of the outer fabric size).\n";
  return 0;
}
