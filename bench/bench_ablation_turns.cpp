// Ablation: QSPR with and without turn-aware routing (design choice §IV.B,
// Fig. 5). Everything else (scheduler, placer, capacities) stays QSPR.
#include "bench_util.hpp"

using namespace qspr;

int main() {
  qspr_bench::print_header("Ablation - turn-aware path costs on/off");

  const Fabric fabric = make_paper_fabric();
  TextTable table({"Circuit", "turn-aware (us)", "turn-blind (us)",
                   "penalty", "turns aware/blind"});

  Duration aware_total = 0;
  Duration blind_total = 0;
  for (const PaperNumbers& paper : paper_benchmarks()) {
    const Program program = make_encoder(paper.code);
    MapperOptions aware;
    aware.mvfb_seeds = 10;
    MapperOptions blind = aware;
    blind.turn_aware = false;

    const MapResult with = map_program(program, fabric, aware);
    const MapResult without = map_program(program, fabric, blind);
    aware_total += with.latency;
    blind_total += without.latency;
    table.add_row({code_name(paper.code), std::to_string(with.latency),
                   std::to_string(without.latency),
                   qspr_bench::improvement(without.latency, with.latency),
                   std::to_string(with.stats.turns) + "/" +
                       std::to_string(without.stats.turns)});
  }
  std::cout << table.to_string();
  std::cout << "\nsuite totals: turn-aware " << aware_total
            << " us vs turn-blind " << blind_total << " us ("
            << qspr_bench::improvement(blind_total, aware_total)
            << " saved by modelling turns in the cost, paper Fig. 5).\n";
  return 0;
}
