// Ablation (extension beyond the paper): target-trap selection policy.
// The paper picks the nearest available trap to the operand median (§IV.B);
// the CongestionAware extension trades a slightly longer trip for less
// loaded access channels. Evaluated on the standard suite and on the
// congestion-heavy linear corridor fabric.
#include "bench_util.hpp"
#include "fabric/linear_fabric.hpp"

using namespace qspr;

namespace {

Duration run_suite(const Fabric& fabric, TrapSelectionPolicy policy,
                   std::vector<Duration>* per_circuit) {
  Duration total = 0;
  for (const PaperNumbers& paper : paper_benchmarks()) {
    const Program program = make_encoder(paper.code);
    if (fabric.trap_count() < program.qubit_count()) continue;
    MapperOptions options;
    options.mvfb_seeds = 10;
    options.trap_selection = policy;
    const Duration latency = map_program(program, fabric, options).latency;
    total += latency;
    if (per_circuit != nullptr) per_circuit->push_back(latency);
  }
  return total;
}

}  // namespace

int main() {
  qspr_bench::print_header(
      "Ablation (extension) - nearest-to-median vs congestion-aware trap "
      "selection");

  const Fabric grid = make_paper_fabric();
  std::vector<Duration> nearest_grid;
  std::vector<Duration> aware_grid;
  const Duration nearest_total =
      run_suite(grid, TrapSelectionPolicy::NearestToAnchor, &nearest_grid);
  const Duration aware_total =
      run_suite(grid, TrapSelectionPolicy::CongestionAware, &aware_grid);

  TextTable table({"Circuit", "nearest (us)", "congestion-aware (us)"});
  std::size_t row = 0;
  for (const PaperNumbers& paper : paper_benchmarks()) {
    table.add_row({code_name(paper.code), std::to_string(nearest_grid[row]),
                   std::to_string(aware_grid[row])});
    ++row;
  }
  table.add_separator();
  table.add_row({"total (45x85 grid)", std::to_string(nearest_total),
                 std::to_string(aware_total)});
  std::cout << table.to_string();

  // The linear corridor concentrates all transport on one channel row,
  // where access-channel load matters most.
  const Fabric corridor = make_linear_fabric(30, 4);
  const Duration nearest_corridor =
      run_suite(corridor, TrapSelectionPolicy::NearestToAnchor, nullptr);
  const Duration aware_corridor =
      run_suite(corridor, TrapSelectionPolicy::CongestionAware, nullptr);
  std::cout << "\nlinear corridor (30 traps): nearest " << nearest_corridor
            << " us vs congestion-aware " << aware_corridor << " us ("
            << qspr_bench::improvement(nearest_corridor, aware_corridor)
            << ")\n"
            << "negative result: biasing the trap choice away from loaded "
               "access channels costs more distance than it saves in "
               "queueing, on both fabrics - the paper's nearest-to-median "
               "policy plus Eq. 2 route weights already handle congestion "
               "where it matters (on the route, not at the endpoint).\n";
  return 0;
}
