// Ablation: QSPR's simultaneous dual-qubit movement toward the median trap
// (§IV.B) versus the destination-fixed routing of QUALE/QPOS (§I).
#include "bench_util.hpp"

using namespace qspr;

int main() {
  qspr_bench::print_header(
      "Ablation - dual-qubit median movement vs destination-fixed");

  const Fabric fabric = make_paper_fabric();
  TextTable table({"Circuit", "dual-move (us)", "dest-fixed (us)", "saved",
                   "moves dual/fixed"});

  Duration dual_total = 0;
  Duration fixed_total = 0;
  for (const PaperNumbers& paper : paper_benchmarks()) {
    const Program program = make_encoder(paper.code);
    MapperOptions dual;
    dual.mvfb_seeds = 10;
    MapperOptions fixed = dual;
    fixed.dual_move = false;

    const MapResult with = map_program(program, fabric, dual);
    const MapResult without = map_program(program, fabric, fixed);
    dual_total += with.latency;
    fixed_total += without.latency;
    table.add_row({code_name(paper.code), std::to_string(with.latency),
                   std::to_string(without.latency),
                   qspr_bench::improvement(without.latency, with.latency),
                   std::to_string(with.stats.moves) + "/" +
                       std::to_string(without.stats.moves)});
  }
  std::cout << table.to_string();
  std::cout << "\nsuite totals: dual-move " << dual_total
            << " us vs destination-fixed " << fixed_total << " us ("
            << qspr_bench::improvement(fixed_total, dual_total)
            << " saved by moving both operands toward the median trap).\n";
  return 0;
}
