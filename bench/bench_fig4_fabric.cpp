// Reproduces paper Fig. 4: the 45x85 ion-trap fabric — structure statistics
// and a rendering of the layout (the full drawing plus a magnified corner).
#include "bench_util.hpp"
#include "fabric/text_io.hpp"

using namespace qspr;

int main() {
  qspr_bench::print_header("Figure 4 - the 45x85 ion-trap circuit fabric");

  const Fabric fabric = make_paper_fabric();
  std::cout << describe_fabric(fabric) << "\n"
            << "legend: J junction, T trap, -/| channel, . empty\n\n";

  TextTable stats({"Property", "Value", "Paper (Fig. 4)"});
  stats.add_row({"grid", std::to_string(fabric.rows()) + "x" +
                             std::to_string(fabric.cols()),
                 "45x85"});
  stats.add_row({"junctions", std::to_string(fabric.junction_count()),
                 "12x22 lattice"});
  stats.add_row({"channel segments", std::to_string(fabric.segment_count()),
                 "unit squares in straight runs"});
  stats.add_row({"traps", std::to_string(fabric.trap_count()),
                 "trap sites connected to channels"});
  stats.add_row({"channel capacity", "2 (QSPR) / 1 (prior art)",
                 "2 qubits per channel"});
  std::cout << stats.to_string() << "\n";

  // Magnified top-left corner (2x2 tiles), then the full fabric.
  const std::string drawing = render_fabric(fabric);
  std::cout << "top-left corner (9x17 cells):\n";
  std::size_t line_start = 0;
  for (int row = 0; row < 9; ++row) {
    const std::size_t line_end = drawing.find('\n', line_start);
    std::cout << "  " << drawing.substr(line_start, 17) << "\n";
    line_start = line_end + 1;
  }
  std::cout << "\nfull fabric:\n" << drawing;
  return 0;
}
