// Sensitivity of MVFB to the number of random seeds m (§IV.A / §V.B: more
// seeds help; MVFB beats the best of an equal budget of random center
// placements).
#include "bench_util.hpp"

using namespace qspr;

int main() {
  qspr_bench::print_header("MVFB sensitivity to the multi-start count m");

  const Fabric fabric = make_paper_fabric();
  const RoutingGraph routing(fabric);
  const int sweep[] = {1, 5, 10, 25, 50, 100};

  for (const QeccCode code : {QeccCode::Q9_1_3, QeccCode::Q23_1_7}) {
    const Program program = make_encoder(code);
    const DependencyGraph graph = DependencyGraph::build(program);
    const ExecutionOptions exec;
    const auto rank = make_schedule_rank(graph, exec.tech);

    std::cout << code_name(code) << " (ideal baseline "
              << graph.critical_path_latency(exec.tech) << " us)\n";
    TextTable table({"m", "MVFB latency", "MVFB runs", "MC latency (same "
                     "budget)", "MVFB wins"});
    Duration previous = kInfiniteDuration;
    bool monotone = true;
    for (const int m : sweep) {
      MvfbPlacer placer(graph, fabric, routing, rank, exec,
                        MvfbOptions{m, 3, 64, 1});
      const MvfbResult mvfb = placer.place_and_execute();
      const MonteCarloResult mc = monte_carlo_place_and_execute(
          graph, fabric, routing, rank, exec, mvfb.total_runs, 1);
      table.add_row({std::to_string(m), std::to_string(mvfb.best_latency),
                     std::to_string(mvfb.total_runs),
                     std::to_string(mc.best_latency),
                     mvfb.best_latency <= mc.best_latency ? "yes" : "no"});
      if (mvfb.best_latency > previous) monotone = false;
      previous = mvfb.best_latency;
    }
    std::cout << table.to_string();
    std::cout << "latency non-increasing in m: " << (monotone ? "yes" : "no")
              << " (same RNG stream, larger m explores a superset)\n\n";
  }
  return 0;
}
