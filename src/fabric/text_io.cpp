#include "fabric/text_io.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace qspr {

Fabric parse_fabric(std::string_view text, std::string name) {
  std::vector<std::string> lines;
  {
    std::size_t begin = 0;
    while (begin <= text.size()) {
      std::size_t end = text.find('\n', begin);
      if (end == std::string_view::npos) end = text.size();
      std::string_view line = text.substr(begin, end - begin);
      const std::size_t hash = line.find('#');
      if (hash != std::string_view::npos) line = line.substr(0, hash);
      // Trim only trailing whitespace: leading spaces are empty cells.
      std::size_t last = line.size();
      while (last > 0 && (line[last - 1] == ' ' || line[last - 1] == '\t' ||
                          line[last - 1] == '\r')) {
        --last;
      }
      lines.emplace_back(line.substr(0, last));
      if (end == text.size()) break;
      begin = end + 1;
    }
  }
  // Drop leading/trailing blank lines.
  while (!lines.empty() && lines.front().empty()) lines.erase(lines.begin());
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.empty()) throw ValidationError("fabric drawing is empty");

  std::size_t width = 0;
  for (const std::string& line : lines) width = std::max(width, line.size());

  const int rows = static_cast<int>(lines.size());
  const int cols = static_cast<int>(width);
  std::vector<CellType> cells(
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
      CellType::Empty);
  for (int row = 0; row < rows; ++row) {
    const std::string& line = lines[static_cast<std::size_t>(row)];
    for (int col = 0; col < static_cast<int>(line.size()); ++col) {
      const char c = static_cast<char>(
          std::toupper(static_cast<unsigned char>(line[static_cast<std::size_t>(col)])));
      CellType type = CellType::Empty;
      switch (c) {
        case 'J': type = CellType::Junction; break;
        case 'T': type = CellType::Trap; break;
        case 'C':
        case '-':
        case '|': type = CellType::Channel; break;
        case '.':
        case ' ': type = CellType::Empty; break;
        default:
          throw ParseError(std::string("unknown fabric cell character '") + c +
                               "'",
                           row + 1, col + 1);
      }
      cells[static_cast<std::size_t>(row) * static_cast<std::size_t>(cols) +
            static_cast<std::size_t>(col)] = type;
    }
  }
  return Fabric::from_cells(rows, cols, std::move(cells), std::move(name));
}

Fabric parse_fabric_file(const std::string& path) {
  std::ifstream input(path);
  if (!input) throw Error("cannot open fabric file: " + path);
  std::ostringstream buffer;
  buffer << input.rdbuf();
  return parse_fabric(buffer.str(), path);
}

std::string render_fabric(const Fabric& fabric) {
  std::string out;
  out.reserve(static_cast<std::size_t>(fabric.rows()) *
              static_cast<std::size_t>(fabric.cols() + 1));
  for (int row = 0; row < fabric.rows(); ++row) {
    for (int col = 0; col < fabric.cols(); ++col) {
      const Position p{row, col};
      switch (fabric.cell(p)) {
        case CellType::Empty: out += '.'; break;
        case CellType::Junction: out += 'J'; break;
        case CellType::Trap: out += 'T'; break;
        case CellType::Channel: {
          const SegmentId seg = fabric.segment_at(p);
          out += fabric.segment(seg).orientation == Orientation::Horizontal
                     ? '-'
                     : '|';
          break;
        }
      }
    }
    out += '\n';
  }
  return out;
}

std::string describe_fabric(const Fabric& fabric) {
  std::ostringstream os;
  os << (fabric.name().empty() ? "fabric" : fabric.name()) << ": "
     << fabric.rows() << "x" << fabric.cols() << " cells, "
     << fabric.junction_count() << " junctions, " << fabric.segment_count()
     << " channel segments, " << fabric.trap_count() << " traps";
  return os.str();
}

}  // namespace qspr
