#include "fabric/linear_fabric.hpp"

#include "common/error.hpp"

namespace qspr {

Fabric make_linear_fabric(int num_traps, int pitch) {
  if (num_traps < 1) {
    throw ValidationError("linear fabric needs at least one trap");
  }
  if (pitch < 2) {
    throw ValidationError("linear fabric pitch must be at least 2");
  }
  const int rows = 2;
  const int cols = num_traps * pitch + 1;
  std::vector<CellType> cells(
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
      CellType::Empty);
  const auto at = [&](int row, int col) -> CellType& {
    return cells[static_cast<std::size_t>(row) * static_cast<std::size_t>(cols) +
                 static_cast<std::size_t>(col)];
  };

  for (int col = 0; col < cols; ++col) {
    at(0, col) = col % pitch == 0 ? CellType::Junction : CellType::Channel;
  }
  for (int section = 0; section < num_traps; ++section) {
    at(1, section * pitch + pitch / 2) = CellType::Trap;
  }
  return Fabric::from_cells(rows, cols, std::move(cells),
                            "linear-" + std::to_string(num_traps));
}

}  // namespace qspr
