// Linear (QCCD-chain) fabric generator: a single horizontal transport
// channel with junction-separated sections and one trap hanging below each
// section — the minimal architecture of early ion-trap proposals
// (Kielpinski et al., paper ref. [7]). Useful as a stress topology: every
// route shares the one corridor, so congestion effects are maximal.
#pragma once

#include "fabric/fabric.hpp"

namespace qspr {

/// Builds a 2-row fabric: `num_traps` sections of `pitch` cells along one
/// horizontal channel, a junction between sections, and one trap below the
/// middle of each section. Throws ValidationError on bad parameters.
Fabric make_linear_fabric(int num_traps, int pitch = 4);

}  // namespace qspr
