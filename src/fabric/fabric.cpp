#include "fabric/fabric.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qspr {

namespace {

bool is_channel_or_junction(CellType type) {
  return type == CellType::Channel || type == CellType::Junction;
}

}  // namespace

Fabric Fabric::from_cells(int rows, int cols, std::vector<CellType> cells,
                          std::string name) {
  if (rows <= 0 || cols <= 0) {
    throw ValidationError("fabric dimensions must be positive");
  }
  if (cells.size() != static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols)) {
    throw ValidationError("fabric cell array size does not match dimensions");
  }
  Fabric fabric;
  fabric.name_ = std::move(name);
  fabric.rows_ = rows;
  fabric.cols_ = cols;
  fabric.cells_ = std::move(cells);
  fabric.derive_structures();
  return fabric;
}

void Fabric::derive_structures() {
  const std::size_t n = cells_.size();
  trap_index_.assign(n, -1);
  junction_index_.assign(n, -1);
  segment_index_.assign(n, -1);
  derive_traps();
  derive_junctions();
  derive_segments();
}

void Fabric::derive_traps() {
  for (int row = 0; row < rows_; ++row) {
    for (int col = 0; col < cols_; ++col) {
      const Position p{row, col};
      if (cell(p) != CellType::Trap) continue;
      Trap trap;
      trap.id = TrapId::from_index(traps_.size());
      trap.position = p;
      for (const Direction d : kAllDirections) {
        const Position neighbour = step(p, d);
        if (cell(neighbour) == CellType::Channel) {
          trap.ports.push_back(TrapPort{neighbour, d});
        }
      }
      if (trap.ports.empty()) {
        throw ValidationError("trap at " + to_string(p) +
                              " has no adjacent channel (unreachable)");
      }
      trap_index_[cell_index(p)] = trap.id.value();
      traps_.push_back(std::move(trap));
    }
  }
}

void Fabric::derive_junctions() {
  for (int row = 0; row < rows_; ++row) {
    for (int col = 0; col < cols_; ++col) {
      const Position p{row, col};
      if (cell(p) != CellType::Junction) continue;
      const JunctionId id = JunctionId::from_index(junctions_.size());
      junction_index_[cell_index(p)] = id.value();
      junctions_.push_back(Junction{id, p});
    }
  }
}

void Fabric::derive_segments() {
  std::vector<bool> visited(cells_.size(), false);
  for (int row = 0; row < rows_; ++row) {
    for (int col = 0; col < cols_; ++col) {
      const Position p{row, col};
      if (cell(p) != CellType::Channel || visited[cell_index(p)]) continue;

      // Determine the axis of the run through this cell. A channel cell may
      // connect (to channels or junctions) along exactly one axis; anything
      // else is a crossing without a junction and is rejected.
      const bool connects_horizontally =
          is_channel_or_junction(cell(step(p, Direction::East))) ||
          is_channel_or_junction(cell(step(p, Direction::West)));
      const bool connects_vertically =
          is_channel_or_junction(cell(step(p, Direction::North))) ||
          is_channel_or_junction(cell(step(p, Direction::South)));
      if (connects_horizontally && connects_vertically) {
        throw ValidationError("channel crossing without a junction at " +
                              to_string(p));
      }
      if (!connects_horizontally && !connects_vertically) {
        throw ValidationError("isolated channel cell at " + to_string(p));
      }

      ChannelSegment segment;
      segment.id = SegmentId::from_index(segments_.size());
      segment.orientation = connects_horizontally ? Orientation::Horizontal
                                                  : Orientation::Vertical;
      const Direction backward = connects_horizontally ? Direction::West
                                                       : Direction::North;
      const Direction forward = opposite(backward);

      // Walk to the start of the maximal run, then collect forward.
      Position start = p;
      while (cell(step(start, backward)) == CellType::Channel) {
        start = step(start, backward);
      }
      for (Position q = start; cell(q) == CellType::Channel;
           q = step(q, forward)) {
        // Every cell of the run must agree with the segment axis.
        const Direction side_a = connects_horizontally ? Direction::North
                                                       : Direction::West;
        const Direction side_b = opposite(side_a);
        if (is_channel_or_junction(cell(step(q, side_a))) ||
            is_channel_or_junction(cell(step(q, side_b)))) {
          throw ValidationError("channel crossing without a junction at " +
                                to_string(q));
        }
        visited[cell_index(q)] = true;
        segment_index_[cell_index(q)] = segment.id.value();
        segment.cells.push_back(q);
      }

      segment.junction_before =
          junction_at(step(segment.cells.front(), backward));
      segment.junction_after = junction_at(step(segment.cells.back(), forward));
      segments_.push_back(std::move(segment));
    }
  }
}

const Trap& Fabric::trap(TrapId id) const {
  require(id.is_valid() && id.index() < traps_.size(), "trap id out of range");
  return traps_[id.index()];
}

TrapId Fabric::trap_at(Position p) const {
  if (!in_bounds(p)) return TrapId::invalid();
  const std::int32_t index = trap_index_[cell_index(p)];
  return index < 0 ? TrapId::invalid() : TrapId(index);
}

const Junction& Fabric::junction(JunctionId id) const {
  require(id.is_valid() && id.index() < junctions_.size(),
          "junction id out of range");
  return junctions_[id.index()];
}

JunctionId Fabric::junction_at(Position p) const {
  if (!in_bounds(p)) return JunctionId::invalid();
  const std::int32_t index = junction_index_[cell_index(p)];
  return index < 0 ? JunctionId::invalid() : JunctionId(index);
}

const ChannelSegment& Fabric::segment(SegmentId id) const {
  require(id.is_valid() && id.index() < segments_.size(),
          "segment id out of range");
  return segments_[id.index()];
}

SegmentId Fabric::segment_at(Position p) const {
  if (!in_bounds(p)) return SegmentId::invalid();
  const std::int32_t index = segment_index_[cell_index(p)];
  return index < 0 ? SegmentId::invalid() : SegmentId(index);
}

std::vector<TrapId> Fabric::traps_by_distance(Position from) const {
  std::vector<TrapId> order(traps_.size());
  for (std::size_t i = 0; i < traps_.size(); ++i) {
    order[i] = TrapId::from_index(i);
  }
  std::sort(order.begin(), order.end(), [&](TrapId a, TrapId b) {
    const int da = manhattan_distance(traps_[a.index()].position, from);
    const int db = manhattan_distance(traps_[b.index()].position, from);
    if (da != db) return da < db;
    return traps_[a.index()].position < traps_[b.index()].position;
  });
  return order;
}

}  // namespace qspr
