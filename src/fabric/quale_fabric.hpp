// Generator for QUALE-style regular fabrics (paper Fig. 4).
//
// The original 45x85 fabric file released with the QUALE package is no longer
// available, so we reproduce its printed structure parametrically: junctions
// on a `pitch`-spaced lattice, straight channels of `pitch - 1` cells between
// adjacent junctions, and traps in the tile interiors adjacent to the
// channels. The default parameters yield exactly a 45x85 grid with 12x22
// junctions and 4 traps per tile (924 traps), matching the figure's scale.
#pragma once

#include "fabric/fabric.hpp"

namespace qspr {

struct QualeFabricParams {
  /// Number of junction rows / columns.
  int junction_rows = 12;
  int junction_cols = 22;
  /// Lattice pitch in cells; channels between junctions have pitch-1 cells.
  /// Must be >= 2. Pitch >= 3 places 4 traps per tile, pitch 2 places 1.
  int pitch = 4;

  [[nodiscard]] int rows() const { return (junction_rows - 1) * pitch + 1; }
  [[nodiscard]] int cols() const { return (junction_cols - 1) * pitch + 1; }
};

/// Builds the parametric QUALE fabric. Throws ValidationError on bad params.
Fabric make_quale_fabric(const QualeFabricParams& params = {});

/// The paper's evaluation fabric: 45x85 cells (Fig. 4).
inline Fabric make_paper_fabric() { return make_quale_fabric(); }

}  // namespace qspr
