// Textual fabric representation, so users with their own layouts (including
// the original QUALE fabric file) can load them, and so tests can build small
// fabrics inline.
//
// Legend (parsing is case-insensitive; '-' '|' 'c' all mean channel):
//   J  junction        T  trap
//   C  channel         .  or space: empty
// Lines may carry '#' comments; trailing whitespace is ignored; short lines
// are padded with empty cells to the widest line.
#pragma once

#include <string>
#include <string_view>

#include "fabric/fabric.hpp"

namespace qspr {

/// Parses a fabric from its text drawing. Throws ParseError on unknown
/// characters and ValidationError on structurally invalid layouts.
Fabric parse_fabric(std::string_view text, std::string name = "");

/// Reads and parses a fabric file.
Fabric parse_fabric_file(const std::string& path);

/// Renders the fabric: 'J', 'T', '-' / '|' for channels (by segment
/// orientation), '.' for empty. parse_fabric(render_fabric(f)) == f.
std::string render_fabric(const Fabric& fabric);

/// One-line summary: dimensions and trap/junction/segment counts.
std::string describe_fabric(const Fabric& fabric);

}  // namespace qspr
