// The ion-trap quantum circuit fabric (paper §II.B, Fig. 4): a finite 2-D
// grid of unit cells, each a junction (J), a channel square (C), a trap (T)
// or empty. On construction the fabric derives and validates the structures
// the router needs:
//
//  * traps, each with its access ports (adjacent channel cells);
//  * junctions, where qubits turn between horizontal and vertical travel;
//  * channel segments — maximal straight runs of channel cells delimited by
//    junctions (or dead ends). A segment is the capacity-limited resource of
//    the paper's Eq. 2 ("channel"); its length is its cell count.
#pragma once

#include <string>
#include <vector>

#include "common/geometry.hpp"
#include "common/ids.hpp"

namespace qspr {

enum class CellType : std::uint8_t { Empty, Channel, Junction, Trap };

/// One access port of a trap: the adjacent channel cell through which qubits
/// enter and leave, and the direction of that cell as seen from the trap.
struct TrapPort {
  Position channel_cell;
  Direction direction_from_trap;
};

struct Trap {
  TrapId id;
  Position position;
  std::vector<TrapPort> ports;
};

struct Junction {
  JunctionId id;
  Position position;
};

struct ChannelSegment {
  SegmentId id;
  Orientation orientation = Orientation::Horizontal;
  /// Cells ordered by increasing row (vertical) or column (horizontal).
  std::vector<Position> cells;
  /// Junction adjacent to cells.front() / cells.back() along the axis, or
  /// invalid for a dead end.
  JunctionId junction_before;
  JunctionId junction_after;

  [[nodiscard]] int length() const { return static_cast<int>(cells.size()); }
};

class Fabric {
 public:
  /// Builds a fabric from a row-major cell array and derives all structures.
  /// Throws ValidationError when the layout is malformed (crossing channels
  /// without a junction, traps without channel access, ...).
  static Fabric from_cells(int rows, int cols, std::vector<CellType> cells,
                           std::string name = "");

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] Position center() const { return {rows_ / 2, cols_ / 2}; }

  [[nodiscard]] bool in_bounds(Position p) const {
    return p.row >= 0 && p.row < rows_ && p.col >= 0 && p.col < cols_;
  }
  /// Cell type at `p`; out-of-bounds positions read as Empty.
  [[nodiscard]] CellType cell(Position p) const {
    return in_bounds(p) ? cells_[cell_index(p)] : CellType::Empty;
  }

  [[nodiscard]] std::size_t trap_count() const { return traps_.size(); }
  [[nodiscard]] const Trap& trap(TrapId id) const;
  [[nodiscard]] const std::vector<Trap>& traps() const { return traps_; }
  /// Trap occupying `p`, or an invalid id.
  [[nodiscard]] TrapId trap_at(Position p) const;

  [[nodiscard]] std::size_t junction_count() const { return junctions_.size(); }
  [[nodiscard]] const Junction& junction(JunctionId id) const;
  [[nodiscard]] const std::vector<Junction>& junctions() const {
    return junctions_;
  }
  [[nodiscard]] JunctionId junction_at(Position p) const;

  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }
  [[nodiscard]] const ChannelSegment& segment(SegmentId id) const;
  [[nodiscard]] const std::vector<ChannelSegment>& segments() const {
    return segments_;
  }
  /// Segment containing channel cell `p`, or an invalid id.
  [[nodiscard]] SegmentId segment_at(Position p) const;

  /// All traps ordered by Manhattan distance from `from` (ties by position),
  /// the order used by center placement (paper §I) and target-trap search.
  [[nodiscard]] std::vector<TrapId> traps_by_distance(Position from) const;

 private:
  Fabric() = default;

  [[nodiscard]] std::size_t cell_index(Position p) const {
    return static_cast<std::size_t>(p.row) * static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(p.col);
  }

  void derive_structures();
  void derive_traps();
  void derive_junctions();
  void derive_segments();

  std::string name_;
  int rows_ = 0;
  int cols_ = 0;
  std::vector<CellType> cells_;

  std::vector<Trap> traps_;
  std::vector<Junction> junctions_;
  std::vector<ChannelSegment> segments_;
  // Per-cell reverse lookups (-1 when not applicable).
  std::vector<std::int32_t> trap_index_;
  std::vector<std::int32_t> junction_index_;
  std::vector<std::int32_t> segment_index_;
};

}  // namespace qspr
