#include "fabric/quale_fabric.hpp"

#include <vector>

#include "common/error.hpp"

namespace qspr {

Fabric make_quale_fabric(const QualeFabricParams& params) {
  if (params.junction_rows < 2 || params.junction_cols < 2) {
    throw ValidationError("QUALE fabric needs at least a 2x2 junction lattice");
  }
  if (params.pitch < 2) {
    throw ValidationError("QUALE fabric pitch must be at least 2");
  }

  const int rows = params.rows();
  const int cols = params.cols();
  const int pitch = params.pitch;
  std::vector<CellType> cells(
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
      CellType::Empty);
  const auto at = [&](int row, int col) -> CellType& {
    return cells[static_cast<std::size_t>(row) * static_cast<std::size_t>(cols) +
                 static_cast<std::size_t>(col)];
  };

  // Junctions on the lattice; channels along every lattice line.
  for (int row = 0; row < rows; ++row) {
    for (int col = 0; col < cols; ++col) {
      const bool on_row_line = row % pitch == 0;
      const bool on_col_line = col % pitch == 0;
      if (on_row_line && on_col_line) {
        at(row, col) = CellType::Junction;
      } else if (on_row_line || on_col_line) {
        at(row, col) = CellType::Channel;
      }
    }
  }

  // Traps at the four interior corners of each tile (deduplicated for small
  // pitches), each adjacent to one horizontal and one vertical channel cell.
  for (int tile_row = 0; tile_row + 1 < params.junction_rows; ++tile_row) {
    for (int tile_col = 0; tile_col + 1 < params.junction_cols; ++tile_col) {
      const int base_row = tile_row * pitch;
      const int base_col = tile_col * pitch;
      const int offsets[2] = {1, pitch - 1};
      for (const int dr : offsets) {
        for (const int dc : offsets) {
          at(base_row + dr, base_col + dc) = CellType::Trap;
        }
      }
    }
  }

  return Fabric::from_cells(rows, cols, std::move(cells),
                            "quale-" + std::to_string(rows) + "x" +
                                std::to_string(cols));
}

}  // namespace qspr
