// QASM serialisation: the inverse of the parser, used for round-tripping the
// generated QECC benchmarks to disk and for dumping programmatic circuits.
#pragma once

#include <string>

#include "circuit/program.hpp"

namespace qspr {

/// Renders `program` in the paper's QASM dialect. Parsing the result yields
/// an equivalent Program (same qubits, same instruction sequence).
std::string write_qasm(const Program& program);

/// Writes the QASM text to `path`. Throws qspr::Error on I/O failure.
void write_qasm_file(const Program& program, const std::string& path);

}  // namespace qspr
