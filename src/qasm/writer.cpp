#include "qasm/writer.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace qspr {

std::string write_qasm(const Program& program) {
  std::ostringstream os;
  if (!program.name().empty()) {
    os << "# " << program.name() << "\n";
  }
  for (const QubitDecl& qubit : program.qubits()) {
    os << "QUBIT " << qubit.name;
    if (qubit.init_value.has_value()) os << ',' << *qubit.init_value;
    os << '\n';
  }
  for (const Instruction& instr : program.instructions()) {
    os << mnemonic(instr.kind) << ' ';
    if (instr.is_two_qubit()) {
      os << program.qubit(instr.control).name << ','
         << program.qubit(instr.target).name;
    } else {
      os << program.qubit(instr.target).name;
    }
    os << '\n';
  }
  return os.str();
}

void write_qasm_file(const Program& program, const std::string& path) {
  std::ofstream output(path);
  if (!output) throw Error("cannot open file for writing: " + path);
  output << write_qasm(program);
  if (!output) throw Error("failed writing QASM file: " + path);
}

}  // namespace qspr
