#include "qasm/parser.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace qspr {

namespace {

/// Strips `#` and `//` comments.
std::string_view strip_comment(std::string_view line) {
  const std::size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  const std::size_t slashes = line.find("//");
  if (slashes != std::string_view::npos) line = line.substr(0, slashes);
  return line;
}

[[noreturn]] void fail(const std::string& message, int line_number) {
  throw ParseError(message, line_number, 1);
}

QubitId resolve_qubit(const Program& program, std::string_view name,
                      int line_number) {
  const QubitId id = program.find_qubit(name);
  if (!id.is_valid()) {
    fail("reference to undeclared qubit '" + std::string(name) + "'",
         line_number);
  }
  return id;
}

void parse_qubit_declaration(Program& program,
                             const std::vector<std::string_view>& operands,
                             int line_number) {
  if (operands.empty() || operands.size() > 2) {
    fail("QUBIT expects 'name' or 'name,init'", line_number);
  }
  const std::string_view name = trim(operands[0]);
  if (name.empty()) fail("QUBIT with empty name", line_number);
  std::optional<int> init;
  if (operands.size() == 2) {
    const std::string_view init_text = trim(operands[1]);
    if (!is_integer(init_text)) {
      fail("QUBIT init value must be an integer", line_number);
    }
    long long value = -1;
    try {
      value = parse_integer(init_text);
    } catch (const Error&) {
      // All-digit text can still overflow long long; report it as a parse
      // error with the line, like every other malformed declaration.
      fail("QUBIT init value out of range", line_number);
    }
    if (value != 0 && value != 1) {
      fail("QUBIT init value must be 0 or 1", line_number);
    }
    init = static_cast<int>(value);
  }
  try {
    program.add_qubit(std::string(name), init);
  } catch (const ValidationError& e) {
    fail(e.what(), line_number);
  }
}

void parse_gate(Program& program, GateKind kind,
                const std::vector<std::string_view>& operands,
                int line_number) {
  const int expected = arity(kind);
  if (static_cast<int>(operands.size()) != expected) {
    fail(std::string(mnemonic(kind)) + " expects " +
             std::to_string(expected) + " operand(s), got " +
             std::to_string(operands.size()),
         line_number);
  }
  if (expected == 1) {
    program.add_gate(kind, resolve_qubit(program, trim(operands[0]), line_number));
    return;
  }
  const QubitId control = resolve_qubit(program, trim(operands[0]), line_number);
  const QubitId target = resolve_qubit(program, trim(operands[1]), line_number);
  if (control == target) {
    fail("2-qubit gate with identical operands", line_number);
  }
  program.add_gate(kind, control, target);
}

}  // namespace

std::optional<GateKind> gate_from_mnemonic(std::string_view word) {
  const std::string upper = to_upper(word);
  if (upper == "H") return GateKind::H;
  if (upper == "X") return GateKind::X;
  if (upper == "Y") return GateKind::Y;
  if (upper == "Z") return GateKind::Z;
  if (upper == "S") return GateKind::S;
  if (upper == "SDG" || upper == "S-DG") return GateKind::Sdg;
  if (upper == "T") return GateKind::T;
  if (upper == "TDG" || upper == "T-DG") return GateKind::Tdg;
  if (upper == "MEASURE" || upper == "M" || upper == "MEASZ") {
    return GateKind::Measure;
  }
  if (upper == "C-X" || upper == "CX" || upper == "CNOT") return GateKind::CX;
  if (upper == "C-Y" || upper == "CY") return GateKind::CY;
  if (upper == "C-Z" || upper == "CZ") return GateKind::CZ;
  if (upper == "SWAP") return GateKind::Swap;
  return std::nullopt;
}

Program parse_qasm(std::string_view text, std::string program_name) {
  Program program(std::move(program_name));
  int line_number = 0;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    ++line_number;
    std::size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view raw = text.substr(begin, end - begin);
    begin = end + 1;

    const std::string_view line = trim(strip_comment(raw));
    if (line.empty()) {
      if (end == text.size()) break;
      continue;
    }

    // Mnemonic is the first whitespace-delimited word; the rest is a
    // comma-separated operand list (whitespace around commas is ignored).
    const std::size_t word_end = line.find_first_of(" \t");
    const std::string_view word =
        word_end == std::string_view::npos ? line : line.substr(0, word_end);
    const std::string_view rest =
        word_end == std::string_view::npos ? std::string_view{}
                                           : trim(line.substr(word_end));

    std::vector<std::string_view> operands;
    if (!rest.empty()) {
      for (const std::string_view field : split(rest, ',')) {
        const std::string_view operand = trim(field);
        if (operand.empty()) {
          fail("empty operand in instruction", line_number);
        }
        operands.push_back(operand);
      }
    }

    if (to_upper(word) == "QUBIT") {
      parse_qubit_declaration(program, operands, line_number);
      continue;
    }
    const std::optional<GateKind> kind = gate_from_mnemonic(word);
    if (!kind.has_value()) {
      fail("unknown instruction '" + std::string(word) + "'", line_number);
    }
    parse_gate(program, *kind, operands, line_number);

    if (end == text.size()) break;
  }
  return program;
}

Program parse_qasm_file(const std::string& path) {
  std::ifstream input(path);
  if (!input) throw Error("cannot open QASM file: " + path);
  std::ostringstream buffer;
  buffer << input.rdbuf();
  // Program name = file stem.
  std::string name = path;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return parse_qasm(buffer.str(), name);
}

}  // namespace qspr
