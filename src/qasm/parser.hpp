// Parser for the QASM dialect used by the paper (Fig. 3), which follows the
// QUALE/MIT quantum assembly conventions:
//
//   QUBIT q0,0        # declare qubit q0 initialised to |0>
//   QUBIT q3          # declare data qubit (no initial value)
//   H q0              # 1-qubit gate
//   C-X q3,q2         # 2-qubit gate: control q3 (source), target q2 (dest.)
//
// Mnemonics are case-insensitive and `#` / `//` start comments. Supported
// gates: H X Y Z S SDG T TDG MEASURE (alias M) and C-X (CX, CNOT), C-Y (CY),
// C-Z (CZ), SWAP.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "circuit/program.hpp"

namespace qspr {

/// Parses QASM text into a Program. Throws ParseError (with line/column) on
/// malformed input, including gates referencing undeclared qubits.
Program parse_qasm(std::string_view text, std::string program_name = "");

/// Reads and parses a QASM file. Throws qspr::Error if unreadable.
Program parse_qasm_file(const std::string& path);

/// Maps a mnemonic (any case) to a gate kind; nullopt when unknown.
std::optional<GateKind> gate_from_mnemonic(std::string_view word);

}  // namespace qspr
