// Admission control for the mapping daemon: a bounded job queue with
// explicit backpressure, plus the service metrics a `stats` request reports.
//
// The daemon never buffers unboundedly. A map request either takes a queue
// slot immediately or is rejected with an explicit retry-after reply — the
// load-shedding generalisation of the BatchMapper's bounded in-flight
// pipeline. Slots are released on every exit path: completion, failure,
// cancellation, deadline expiry, and drain, which the fault-injection suite
// asserts by flooding the queue and then demanding it come back empty.
//
// AdmissionQueue is deliberately engine-agnostic (it queues ServeTickets,
// not sockets or programs), so the overload and drain behaviour unit-tests
// without a single byte of network I/O.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/cancel.hpp"
#include "core/result_cache.hpp"
#include "service/request_codec.hpp"

namespace qspr {

/// Server-scoped incremental-remapping session (the `session_open` API).
/// Ownership split: the poll thread owns the registry and the `busy` flag
/// (one in-flight map per session); the circuit text and warm prior are
/// written only by the mapper thread running the session's admitted map and
/// read by the poll thread after its completion is delivered — the admission
/// queue and completion queue mutexes order those hand-offs, so the fields
/// themselves need no lock.
struct ServeSession {
  std::string name;    ///< wire id ("s<N>")
  std::string fabric;  ///< fabric spec, fixed at session_open
  /// Full QASM text of the circuit after the last successful map.
  std::string qasm;
  /// Last converged mapping: the warm-start seed for the next edit.
  std::shared_ptr<const CachedMapResult> prior;
  /// Poll-thread-only: a map for this session is queued or running.
  bool busy = false;
};

/// One admitted map request, queued between the connection layer and the
/// mapper threads. The cancel source is shared with the connection's
/// in-flight registry so a client cancel / disconnect / drain can fire it
/// while the ticket sits in the queue or runs on a mapper thread.
struct ServeTicket {
  std::uint64_t connection = 0;
  ServeRequest request;
  CancelSource cancel;
  std::chrono::steady_clock::time_point admitted_at;
  /// Session this map runs under (null = stateless request).
  std::shared_ptr<ServeSession> session;
};

/// Test hook gating the moment an admitted map starts mapping: when
/// installed (ServeOptions::map_start_gate), every mapper thread blocks here
/// — after taking its in-flight slot, before touching the engine — until the
/// gate opens or the ticket's cancel fires. Production servers never install
/// one. This is what lets the fault-injection suite hold jobs "running" for
/// a deterministic window instead of racing wall-clock mapping durations.
class MapStartGate {
 public:
  void open() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

  /// Returns when the gate is open or `token` fires (poll-granularity: the
  /// cancel has no waiter hook, so the wait wakes every millisecond to
  /// check it).
  void wait(const CancelToken& token) {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!open_ && token.reason() == CancelReason::None) {
      cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

/// Why try_admit refused a ticket.
enum class AdmitError : std::uint8_t { QueueFull, Draining };

/// Bounded MPSC/MPMC ticket queue with drain support.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(int max_depth);

  /// Takes a queue slot or reports why not; never blocks.
  [[nodiscard]] bool try_admit(std::shared_ptr<ServeTicket> ticket,
                               AdmitError& why);

  /// Blocks for the next ticket; nullptr once the queue is closed *and*
  /// empty (mapper threads exit on nullptr; close() never drops queued
  /// tickets — drain cancels them instead, and each still flows through a
  /// mapper thread to produce its reply).
  [[nodiscard]] std::shared_ptr<ServeTicket> pop();

  /// Stops admission (try_admit reports Draining) without waking poppers.
  void begin_drain();
  /// Stops admission and wakes every blocked pop() once drained.
  void close();

  /// Fires every queued ticket's cancel source (drain deadline).
  void cancel_queued();

  [[nodiscard]] int depth() const;
  [[nodiscard]] bool draining() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::shared_ptr<ServeTicket>> queue_;
  int max_depth_;
  bool draining_ = false;
  bool closed_ = false;
};

/// Tuning for RetryAfterEstimator. The floor is what the fixed
/// `retry_after_ms` constant used to be; the ceiling stops a momentary cost
/// spike from telling clients to go away for minutes.
struct RetryEstimatorOptions {
  /// EWMA smoothing factor for observed per-request cost (1.0 = latest
  /// sample wins outright, 0.0 = frozen).
  double alpha = 0.2;
  int floor_ms = 50;
  int ceiling_ms = 2000;
};

/// Derives the `retry_after_ms` overload hint from the observed queue drain
/// rate instead of a fixed constant: an EWMA of recent per-request mapping
/// cost times the current queue depth, divided by the threads draining it,
/// clamped to [floor, ceiling]. Monotone by construction in both the queue
/// depth and the observed cost, so a deeper backlog or slower requests can
/// only push the hint up, never down. Thread-safe: mapper threads observe,
/// the poll thread suggests.
class RetryAfterEstimator {
 public:
  explicit RetryAfterEstimator(RetryEstimatorOptions options = {});

  /// Folds one completed request's mapping cost into the EWMA. Negative
  /// samples are ignored (a clock hiccup must not poison the estimate).
  void observe_request_ms(double ms);

  /// The back-off hint for a request shed with `queue_depth` tickets ahead
  /// of it and `drain_threads` mapper threads clearing them. With no
  /// observations yet, returns the floor (the legacy fixed constant).
  [[nodiscard]] int suggest_ms(int queue_depth, int drain_threads) const;

  /// Current smoothed per-request cost estimate (0 until first sample).
  [[nodiscard]] double ewma_ms() const;

 private:
  RetryEstimatorOptions options_;
  mutable std::mutex mutex_;
  double ewma_ = 0.0;
  bool seeded_ = false;
};

/// Monotonic service counters plus a bounded reservoir of recent per-request
/// mapping CPU times for p50/p99. All methods thread-safe.
class ServeMetrics {
 public:
  struct Snapshot {
    long long accepted = 0;
    long long rejected = 0;    // backpressure replies (queue full / draining)
    long long completed = 0;   // ok:true map replies
    long long failed = 0;      // map_failed replies
    long long cancelled = 0;   // client-cancel + drain-cancel replies
    long long expired = 0;     // deadline replies
    long long bad_requests = 0;
    long long health_probes = 0;  // queue-bypassing liveness checks answered
    long long connections_opened = 0;
    long long connections_failed = 0;  // closed for cause (oversize, slow, io)
    int in_flight = 0;
    double p50_trial_cpu_ms = 0.0;
    double p99_trial_cpu_ms = 0.0;
    int latency_samples = 0;
    /// Setup-vs-search split over every completed map: thread-CPU ms spent
    /// in program-derived setup and Dijkstra nodes the routing searches
    /// settled (both monotone totals, not reservoir percentiles).
    double setup_ms_total = 0.0;
    long long nodes_settled_total = 0;
  };

  void count_accepted() { bump(&Counters::accepted); }
  void count_rejected() { bump(&Counters::rejected); }
  void count_completed() { bump(&Counters::completed); }
  void count_failed() { bump(&Counters::failed); }
  void count_cancelled() { bump(&Counters::cancelled); }
  void count_expired() { bump(&Counters::expired); }
  void count_bad_request() { bump(&Counters::bad_requests); }
  void count_health_probe() { bump(&Counters::health_probes); }
  void count_connection_opened() { bump(&Counters::connections_opened); }
  void count_connection_failed() { bump(&Counters::connections_failed); }

  void enter_flight();
  void leave_flight();

  /// Records one completed request's trial CPU time into the percentile
  /// reservoir (ring of the most recent kReservoirCapacity samples).
  void record_trial_cpu_ms(double ms);

  /// Folds one completed request's setup CPU time and settled-node count
  /// into the monotone totals surfaced by the stats endpoint.
  void record_map_work(double setup_ms, long long nodes_settled);

  [[nodiscard]] Snapshot snapshot() const;

 private:
  static constexpr std::size_t kReservoirCapacity = 1024;

  struct Counters {
    long long accepted = 0;
    long long rejected = 0;
    long long completed = 0;
    long long failed = 0;
    long long cancelled = 0;
    long long expired = 0;
    long long bad_requests = 0;
    long long health_probes = 0;
    long long connections_opened = 0;
    long long connections_failed = 0;
  };

  void bump(long long Counters::* counter);

  mutable std::mutex mutex_;
  Counters counters_;
  int in_flight_ = 0;
  double setup_ms_total_ = 0.0;
  long long nodes_settled_total_ = 0;
  std::vector<double> reservoir_;
  std::size_t reservoir_next_ = 0;
};

}  // namespace qspr
