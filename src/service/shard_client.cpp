#include "service/shard_client.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/json.hpp"

namespace qspr {

namespace {

/// splitmix64 finaliser: a cheap, well-mixed pure hash for jitter.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

int remaining_ms(std::chrono::steady_clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - std::chrono::steady_clock::now())
                        .count();
  return static_cast<int>(std::max<long long>(left, 0));
}

/// True when `code` is back-pressure the client should wait out rather than
/// surface: the request itself was fine, the service just cannot take it
/// right now.
bool retryable_code(const std::string& code) {
  return code == "overloaded" || code == "shard_down" || code == "draining";
}

}  // namespace

BackoffPolicy::BackoffPolicy(BackoffOptions options) : options_(options) {
  require(options_.base_ms >= 0, "backoff base must be >= 0");
  require(options_.cap_ms >= options_.base_ms,
          "backoff cap must be >= base");
  require(options_.jitter_frac >= 0.0 && options_.jitter_frac <= 1.0,
          "backoff jitter fraction must be in [0, 1]");
}

int BackoffPolicy::delay_ms(int attempt) const {
  const int bounded = std::clamp(attempt, 0, 62);
  // Compute in double: base * 2^attempt overflows integers long before the
  // cap clamps it.
  const double scaled = static_cast<double>(options_.base_ms) *
                        std::min(std::pow(2.0, bounded), 1e12);
  const std::uint64_t h = mix64(
      options_.seed ^ (0x5bd1e995ull * (static_cast<std::uint64_t>(bounded) + 1)));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  const double jittered = scaled * (1.0 + options_.jitter_frac * u);
  return static_cast<int>(
      std::min(jittered, static_cast<double>(options_.cap_ms)));
}

ShardClient::ShardClient(ShardClientOptions options)
    : options_(std::move(options)), backoff_(options_.backoff) {
  require(options_.port > 0, "shard client needs a port");
  require(options_.max_attempts >= 1, "shard client needs >= 1 attempt");
}

void ShardClient::disconnect() {
  fd_.reset();
  inbox_.clear();
}

bool ShardClient::ensure_connected() {
  if (fd_.valid()) return true;
  inbox_.clear();
  bool pending = false;
  FileDescriptor fd;
  try {
    fd = connect_nonblocking(options_.host, options_.port, pending);
  } catch (const std::exception&) {
    return false;
  }
  if (!fd.valid()) return false;  // synchronous refusal
  if (pending) {
    std::vector<PollEntry> entries(1);
    entries[0].fd = fd.get();
    entries[0].want_write = true;
    poll_fds(entries, options_.connect_timeout_ms);
    if (!entries[0].writable && !entries[0].broken) return false;  // timeout
    if (pending_connect_error(fd.get()) != 0) return false;
  }
  fd_ = std::move(fd);
  return true;
}

bool ShardClient::send_all(const std::string& payload, int deadline_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  std::size_t at = 0;
  while (at < payload.size()) {
    const IoResult io =
        write_some(fd_.get(), std::string_view(payload).substr(at));
    if (io.status == IoStatus::Ok) {
      at += io.bytes;
      continue;
    }
    if (io.status != IoStatus::WouldBlock) return false;
    std::vector<PollEntry> entries(1);
    entries[0].fd = fd_.get();
    entries[0].want_write = true;
    const int left = remaining_ms(deadline);
    if (left <= 0) return false;
    poll_fds(entries, left);
    if (entries[0].broken) return false;
    if (!entries[0].writable) return false;  // timed out
  }
  return true;
}

bool ShardClient::recv_line(std::string& reply, int deadline_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  char buffer[16384];
  while (true) {
    const std::size_t newline = inbox_.find('\n');
    if (newline != std::string::npos) {
      reply = inbox_.substr(0, newline);
      inbox_.erase(0, newline + 1);
      if (!reply.empty() && reply.back() == '\r') reply.pop_back();
      return true;
    }
    const IoResult io = read_some(fd_.get(), buffer, sizeof buffer);
    if (io.status == IoStatus::Ok) {
      inbox_.append(buffer, io.bytes);
      continue;
    }
    if (io.status == IoStatus::Closed || io.status == IoStatus::Error) {
      return false;  // EOF/reset before a full line: transport failure
    }
    std::vector<PollEntry> entries(1);
    entries[0].fd = fd_.get();
    entries[0].want_read = true;
    const int left = remaining_ms(deadline);
    if (left <= 0) return false;
    poll_fds(entries, left);
    if (!entries[0].readable && !entries[0].broken) return false;  // timeout
  }
}

bool ShardClient::try_request(const std::string& line, std::string& reply) {
  if (!ensure_connected()) {
    ++transport_failures_;
    return false;
  }
  if (!send_all(line + "\n", options_.request_timeout_ms) ||
      !recv_line(reply, options_.request_timeout_ms)) {
    // A half-done round trip poisons the framing (a late reply would pair
    // with the wrong request), so the connection never survives a failure.
    disconnect();
    ++transport_failures_;
    return false;
  }
  return true;
}

std::string ShardClient::request(const std::string& line) {
  std::string reply;
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    int wait_ms = backoff_.delay_ms(attempt);
    if (try_request(line, reply)) {
      // Parse just enough to spot back-pressure; anything else — results
      // and terminal errors alike — is the caller's to interpret.
      std::string code;
      int hinted = 0;
      try {
        const JsonValue root = parse_json(reply);
        const JsonValue* code_value = root.find("code");
        if (code_value != nullptr &&
            code_value->kind() == JsonValue::Kind::String) {
          code = code_value->as_string();
        }
        const JsonValue* hint = root.find("retry_after_ms");
        if (hint != nullptr && hint->kind() == JsonValue::Kind::Number) {
          hinted = static_cast<int>(hint->as_number());
        }
      } catch (const std::exception&) {
        throw Error("shard client: unparseable reply: " + reply);
      }
      if (!retryable_code(code)) return reply;
      wait_ms = std::max(wait_ms, hinted);
    }
    if (attempt + 1 >= options_.max_attempts) break;
    if (wait_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
    }
  }
  throw Error("shard client: retry budget exhausted after " +
              std::to_string(options_.max_attempts) + " attempts");
}

}  // namespace qspr
