// ShardSupervisor: the crash-tolerant front-end of a fleet of qspr_serve
// worker processes (the tentpole of the sharded mapping service).
//
// One poll-loop thread owns everything: the client listener, one NDJSON
// "lane" per (client, shard) pair for verbatim frame forwarding, one
// supervisor-owned control lane per shard for queue-bypassing health
// probes, and the worker process lifecycle (fork/exec on ephemeral ports
// with --port-file discovery, waitpid(WNOHANG) reaping each iteration —
// no SIGCHLD handler, dying workers additionally wake the loop through
// their lanes' POLLHUP).
//
// Failure semantics (what tests/shard_chaos_test.cpp asserts):
//   * crash (SIGKILL, abort): detected via waitpid + lane EOF; replies the
//     worker already wrote are still delivered (the kernel holds them),
//     then every unanswered in-flight request is transparently
//     re-dispatched — to a live sibling shard, or parked until a restart —
//     which is safe because mapping is pure: a re-run returns a
//     bit-identical result (same result_fp);
//   * wedge (SIGSTOP, infinite loop): the health probe times out, the
//     supervisor SIGKILLs the worker and treats it as a crash;
//   * restart: deterministic exponential backoff with seeded jitter and a
//     cap; a per-shard circuit breaker (closed -> open -> half-open) gates
//     bring-up, and while it is open NEW requests routed to that shard are
//     shed with an explicit `shard_down` reply + retry hint — no silent
//     rerouting, so cache affinity is preserved for well-behaved clients;
//   * drain (SIGTERM): cascades SIGTERM to the workers (they answer their
//     in-flight work), parks nothing new, answers parked requests with
//     `draining`, cancels what is left past the deadline, reaps every
//     child, and serve() returns 0. No worker outlives the supervisor.
//
// Routing: requests hash by fabric spec (FNV-1a 64 of the canonical spec,
// "" == "paper") to a shard, so every request against one fabric lands on
// the worker whose artifact/landmark caches are already warm. The hash is
// a pure function — routing is stable across worker restarts.
//
// Sessions: a `session_open` routes by fabric like a map; the worker's
// reply names the session ("s<shard>.<n>", fleet-unique) and the
// supervisor records session -> shard affinity from it. Frames carrying a
// `session` then route by that affinity, byte-verbatim like everything
// else — the session's warm prior lives in that worker's ResultCache.
// Session state dies with its worker: a crash drops the affinity entries,
// and a session frame that can no longer reach its shard (or was
// re-dispatched to a sibling after a death) gets an explicit
// unknown_session reply — the client reopens and resubmits cold.
//
// Exactly-once: every accepted map frame produces exactly one reply line to
// its client — the forwarded worker reply, or one supervisor-built
// shard_down / draining / cancelled error. The pending registry is erased
// at forward time and re-dispatch only ever resends unanswered entries.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/net.hpp"
#include "service/request_codec.hpp"
#include "service/shard_client.hpp"

namespace qspr {

// ---------------------------------------------------------------------------
// Circuit breaker (pure state machine; the caller supplies every clock
// reading, so the unit tests drive it with a fake clock).

enum class BreakerState : std::uint8_t { Closed, Open, HalfOpen };

struct CircuitBreakerOptions {
  /// Consecutive recorded failures that trip Closed -> Open. A failure in
  /// HalfOpen re-opens immediately regardless.
  int failure_threshold = 3;
  /// Open -> HalfOpen cooldown schedule; the delay escalates with the trip
  /// count and resets on success.
  BackoffOptions cooldown;
};

/// Per-shard breaker: Closed admits traffic; Open sheds it until the
/// cooldown lapses; HalfOpen admits exactly the probe traffic needed to
/// decide. Time is injected (steady_clock::time_point) — no internal clock.
class CircuitBreaker {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit CircuitBreaker(CircuitBreakerOptions options = {});

  /// Healthy evidence: -> Closed, consecutive failures and trips reset.
  void record_success();

  /// Unhealthy evidence at `now`. HalfOpen re-opens immediately; Closed
  /// opens once failure_threshold consecutive failures accumulate.
  void record_failure(TimePoint now);

  /// Hard failure (crash, wedge): -> Open immediately at `now`.
  void force_open(TimePoint now);

  /// True when a bring-up/probe attempt may proceed at `now`: always in
  /// Closed and HalfOpen; in Open only once the cooldown has lapsed, which
  /// transitions to HalfOpen (one caller gets the probe).
  [[nodiscard]] bool allow_probe(TimePoint now);

  [[nodiscard]] BreakerState state() const { return state_; }
  /// When an Open breaker next admits a probe (meaningless otherwise).
  [[nodiscard]] TimePoint reopen_at() const { return reopen_at_; }
  [[nodiscard]] int trips() const { return trips_; }

 private:
  void open(TimePoint now);

  CircuitBreakerOptions options_;
  BackoffPolicy cooldown_;
  BreakerState state_ = BreakerState::Closed;
  TimePoint reopen_at_{};
  int consecutive_failures_ = 0;
  int trips_ = 0;  // escalates the cooldown; reset by success
};

// ---------------------------------------------------------------------------
// Routing.

/// FNV-1a 64 of the canonical fabric spec ("" canonicalises to "paper", the
/// built-in fabric, so both spellings land on one shard). Pure function:
/// routing survives worker restarts and supervisor reboots unchanged.
[[nodiscard]] std::uint64_t fabric_route_fingerprint(const std::string& spec);

/// The shard a fabric spec routes to among `shard_count` shards.
[[nodiscard]] int shard_for_fabric(const std::string& spec, int shard_count);

// ---------------------------------------------------------------------------
// Supervisor.

struct ShardSupervisorOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = kernel-assigned; read back via port()
  int shard_count = 2;
  /// Worker executable (absolute or PATH-resolved by execv semantics: no
  /// PATH search, pass a real path).
  std::string worker_binary;
  /// Extra argv forwarded to every worker after the supervisor's own
  /// --port 0 --port-file <file> --shard-id <i> --quiet.
  std::vector<std::string> worker_args;
  /// Directory for the per-shard port files (stale ones are unlinked
  /// before each spawn).
  std::string port_file_dir = "/tmp";
  int health_interval_ms = 500;
  /// A health probe unanswered for this long marks the worker wedged: it
  /// is SIGKILLed and cycled through the crash path.
  int health_timeout_ms = 2000;
  /// How long a spawned worker gets to publish its port file and pass its
  /// first health probe before the attempt counts as a failure.
  int spawn_deadline_ms = 10'000;
  /// Restart schedule (shared shape with the client's retry pacing).
  BackoffOptions restart_backoff;
  int breaker_threshold = 3;
  /// Times one request may be re-dispatched after worker deaths before the
  /// client gets a shard_down reply instead.
  int max_redispatch = 2;
  double drain_deadline_ms = 5000.0;
  int max_connections = 64;
  std::size_t max_frame_bytes = 1 << 20;
  std::size_t max_outbox_bytes = 4u << 20;
  bool quiet = true;
};

/// Monotonic supervisor counters (thread-safe snapshot for tests/stats).
struct SupervisorMetrics {
  long long spawns = 0;          // fork/exec attempts
  long long reaps = 0;           // children collected via waitpid
  long long restarts = 0;        // spawns after the initial bring-up
  long long crashes = 0;         // unexpected worker exits while Up
  long long wedges = 0;          // health-timeout SIGKILLs
  long long health_ok = 0;
  long long health_failures = 0;
  long long accepted = 0;        // map frames taken on (one reply owed each)
  long long answered = 0;        // replies actually delivered to outboxes
  long long redispatches = 0;    // in-flight frames resent after a death
  long long shed_shard_down = 0; // shard_down replies (incl. redispatch cap)
  long long parked = 0;          // frames that waited for a restart
};

class ShardSupervisor {
 public:
  explicit ShardSupervisor(ShardSupervisorOptions options);
  ~ShardSupervisor();

  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  /// Binds the client listener and spawns the first generation of workers
  /// (does not wait for them to come Up — serve() brings them up). Throws
  /// qspr::Error on bind/setup failure.
  void start();

  [[nodiscard]] int port() const;

  /// Async-signal-safe drain request (atomic store + pipe write).
  void request_drain();

  /// Runs the supervision loop until a drain completes; returns the
  /// process exit code (0 on clean drain, workers reaped).
  int serve();

  [[nodiscard]] SupervisorMetrics metrics() const;

  /// Live worker pids, index-aligned with shards (-1 = no process). The
  /// chaos harness SIGKILLs/SIGSTOPs through this.
  [[nodiscard]] std::vector<int> worker_pids() const;

 private:
  enum class ShardPhase : std::uint8_t {
    Down,        // no process; respawn gated by the breaker cooldown
    Spawning,    // forked; waiting for the port file
    Connecting,  // port known; control-lane connect in flight
    Probing,     // control lane up; first health probe outstanding
    Up,          // serving
  };

  struct Shard;
  struct Lane;
  struct Client;
  struct ParkedFrame;

  // Worker lifecycle.
  void spawn_shard(int index);
  void shard_failed(int index, const char* why);
  void kill_shard(int index, int signal);
  void reap_children();
  void pump_shard_bringup(int index);
  void send_health_probes();
  void check_health_timeouts();
  void flush_control(int index);
  void read_control(int index);

  // Client plumbing. route_map also carries session_open / session_close
  // frames — same accept/shed/dispatch path, only the target shard differs
  // (fabric hash for stateless + open, recorded affinity for the rest).
  void accept_clients();
  void read_client(Client& client);
  void handle_client_frame(Client& client, std::string frame);
  void route_map(Client& client, const ServeRequest& request,
                 std::string frame);
  void dispatch(Client& client, const std::string& request_id,
                std::string frame, int shard_index, int attempts);
  void enqueue_client_reply(Client& client, std::string line);
  void flush_client(Client& client);
  void destroy_client(std::uint64_t id);

  // Lane plumbing.
  Lane& lane_for(Client& client, int shard_index);
  void pump_lane_connect(Client& client, int shard_index, Lane& lane);
  void read_lane(Client& client, int shard_index, Lane& lane);
  void flush_lane(Lane& lane);
  void fail_lane(Client& client, int shard_index);

  // Failure routing.
  void redispatch_or_park(Client& client, const std::string& request_id,
                          std::string frame, int attempts);
  void flush_parked(int up_shard);
  void shed(Client& client, const std::string& request_id, int shard_index);
  /// Drops supervisor state that died with the worker on shard `index` —
  /// today that is its session-affinity entries.
  void on_shard_down(int index);

  // Drain.
  void begin_drain();
  void finish_drain();

  [[nodiscard]] int poll_timeout_ms() const;
  [[nodiscard]] int pick_up_shard(int preferred) const;
  [[nodiscard]] int shard_retry_hint_ms(int index) const;
  [[nodiscard]] std::string stats_json(const std::string& id) const;
  [[nodiscard]] std::string health_json(const std::string& id) const;
  void count(long long SupervisorMetrics::* field, long long delta = 1);
  void set_worker_pid(int index, int pid);

  ShardSupervisorOptions options_;
  CodecLimits codec_limits_;
  WakePipe wake_;
  ListenSocket listen_;
  bool started_ = false;
  std::chrono::steady_clock::time_point started_at_{};

  std::vector<std::unique_ptr<Shard>> shards_;
  std::deque<ParkedFrame> parked_;

  // session name -> shard index, learned from worker replies that name a
  // session and released on close replies (open:false) and shard deaths
  // (on_shard_down — mandatory, not hygiene: a replacement worker restarts
  // its session counter, so a stale entry could alias a new session).
  std::unordered_map<std::string, int> session_shards_;

  std::atomic<bool> drain_requested_{false};
  bool draining_ = false;
  bool drain_killed_ = false;
  std::chrono::steady_clock::time_point drain_deadline_{};

  std::uint64_t next_client_id_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<Client>> clients_;

  mutable std::mutex shared_mutex_;  // metrics_ + worker_pids_ (test access)
  SupervisorMetrics metrics_;
  std::vector<int> worker_pids_;
};

}  // namespace qspr
