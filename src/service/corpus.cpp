#include "service/corpus.hpp"

#include "common/rng.hpp"
#include "qecc/codes.hpp"
#include "qecc/random_circuit.hpp"

namespace qspr {

std::vector<Program> make_batch_corpus(bool full) {
  // Mixed sizes on purpose: large members interleave with small ones on the
  // shared executor instead of serialising the batch.
  std::vector<Program> corpus;
  corpus.push_back(make_encoder(QeccCode::Q5_1_3));
  corpus.push_back(make_encoder(QeccCode::Q7_1_3));
  if (full) {
    corpus.push_back(make_encoder(QeccCode::Q9_1_3));
    corpus.push_back(make_encoder(QeccCode::Q14_8_3));
  }
  Rng rng(7);
  Program random_small = make_random_circuit({8, 40, 0.7}, rng);
  random_small.set_name("random_8q_40g");
  corpus.push_back(std::move(random_small));
  if (full) {
    Program random_large = make_random_circuit({12, 60, 0.7}, rng);
    random_large.set_name("random_12q_60g");
    corpus.push_back(std::move(random_large));
  }
  return corpus;
}

}  // namespace qspr
