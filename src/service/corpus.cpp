#include "service/corpus.hpp"

#include "common/rng.hpp"
#include "qecc/codes.hpp"
#include "qecc/random_circuit.hpp"

namespace qspr {

std::vector<Program> make_batch_corpus(bool full) {
  // Mixed sizes on purpose: large members interleave with small ones on the
  // shared executor instead of serialising the batch.
  std::vector<Program> corpus;
  corpus.push_back(make_encoder(QeccCode::Q5_1_3));
  corpus.push_back(make_encoder(QeccCode::Q7_1_3));
  if (full) {
    corpus.push_back(make_encoder(QeccCode::Q9_1_3));
    corpus.push_back(make_encoder(QeccCode::Q14_8_3));
  }
  Rng rng(7);
  Program random_small = make_random_circuit({8, 40, 0.7}, rng);
  random_small.set_name("random_8q_40g");
  corpus.push_back(std::move(random_small));
  if (full) {
    Program random_large = make_random_circuit({12, 60, 0.7}, rng);
    random_large.set_name("random_12q_60g");
    corpus.push_back(std::move(random_large));
  }
  return corpus;
}

const std::vector<BrokenQasm>& broken_qasm_corpus() {
  // Every entry must fail with a clean Error — the parser-robustness tests
  // assert exactly that, and the CI batch smoke feeds the first entry
  // through qspr_batch to check per-job fault isolation.
  static const std::vector<BrokenQasm> corpus = {
      {"broken", "unknown gate mnemonic",
       "QUBIT q0,0\nQUBIT q1,0\nH q0\nFROB q1 # no such gate\n"},
      {"truncated_mid_instruction", "file ends inside an instruction",
       "QUBIT q0,0\nQUBIT q1,0\nH q0\nC-X"},
      {"truncated_operand_list", "2-qubit gate missing its second operand",
       "QUBIT q0\nQUBIT q1\nC-X q0,"},
      {"oversized_init_value", "init value overflows long long",
       "QUBIT q0,99999999999999999999999999\nH q0\n"},
      {"init_value_not_bit", "init value outside {0,1}",
       "QUBIT q0,7\n"},
      {"duplicate_register", "same qubit name declared twice",
       "QUBIT data,0\nQUBIT data,1\nH data\n"},
      {"undeclared_operand", "gate references a qubit never declared",
       "QUBIT q0\nC-X q0,ghost\n"},
      {"identical_operands", "2-qubit gate with control == target",
       "QUBIT q0\nC-X q0,q0\n"},
      {"empty_operand", "empty field in the operand list",
       "QUBIT q0\nQUBIT q1\nC-X q0,,q1\n"},
      {"declaration_arity", "QUBIT with too many fields",
       "QUBIT q0,0,1\n"},
      {"whitespace_only_name", "QUBIT whose name trims to nothing",
       "QUBIT  \t ,0\n"},
      {"crlf_unknown_gate", "CRLF line endings around a bogus mnemonic",
       "QUBIT q0,0\r\nQUBIT q1,0\r\nH q0\r\nBOGUS q1\r\n"},
  };
  return corpus;
}

}  // namespace qspr
