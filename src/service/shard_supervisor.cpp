#include "service/shard_supervisor.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <iostream>
#include <utility>

#include "common/error.hpp"
#include "common/json.hpp"

namespace qspr {

namespace {

double ms_between(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

std::chrono::steady_clock::time_point after_ms(
    std::chrono::steady_clock::time_point from, double ms) {
  return from + std::chrono::microseconds(static_cast<long long>(ms * 1000.0));
}

/// Pulls the "id" out of one reply line, plus the optional "session" the
/// worker names (session_open acks and session-map results both carry it;
/// a close ack additionally carries open:false, reported via
/// `session_closed`). Returns false when the line is not a JSON object —
/// the caller drops it.
bool reply_id(const std::string& line, std::string& id, std::string& session,
              bool& session_closed) {
  session.clear();
  session_closed = false;
  try {
    const JsonValue root = parse_json(line);
    if (!root.is_object()) return false;
    const JsonValue* value = root.find("id");
    if (value != nullptr && value->kind() == JsonValue::Kind::String) {
      id = value->as_string();
    } else {
      id.clear();
    }
    const JsonValue* named = root.find("session");
    if (named != nullptr && named->kind() == JsonValue::Kind::String) {
      session = named->as_string();
      const JsonValue* open = root.find("open");
      session_closed = open != nullptr &&
                       open->kind() == JsonValue::Kind::Bool &&
                       !open->as_bool();
    }
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Circuit breaker.

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(options), cooldown_(options.cooldown) {
  require(options_.failure_threshold >= 1,
          "breaker needs a failure threshold of at least 1");
}

void CircuitBreaker::record_success() {
  state_ = BreakerState::Closed;
  consecutive_failures_ = 0;
  trips_ = 0;
}

void CircuitBreaker::record_failure(TimePoint now) {
  ++consecutive_failures_;
  if (state_ == BreakerState::HalfOpen ||
      consecutive_failures_ >= options_.failure_threshold) {
    open(now);
  }
}

void CircuitBreaker::force_open(TimePoint now) { open(now); }

void CircuitBreaker::open(TimePoint now) {
  state_ = BreakerState::Open;
  consecutive_failures_ = 0;
  reopen_at_ = after_ms(now, static_cast<double>(cooldown_.delay_ms(trips_)));
  ++trips_;
}

bool CircuitBreaker::allow_probe(TimePoint now) {
  switch (state_) {
    case BreakerState::Closed:
    case BreakerState::HalfOpen:
      return true;
    case BreakerState::Open:
      if (now >= reopen_at_) {
        state_ = BreakerState::HalfOpen;
        return true;
      }
      return false;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Routing.

std::uint64_t fabric_route_fingerprint(const std::string& spec) {
  // "" and "paper" both mean the built-in fabric; canonicalise so they
  // share a shard (and its warm artifact caches).
  const std::string& canonical = spec.empty() ? std::string("paper") : spec;
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : canonical) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

int shard_for_fabric(const std::string& spec, int shard_count) {
  require(shard_count >= 1, "routing needs at least one shard");
  return static_cast<int>(fabric_route_fingerprint(spec) %
                          static_cast<std::uint64_t>(shard_count));
}

// ---------------------------------------------------------------------------
// Internal structures.

/// One upstream NDJSON connection from a specific client to a specific
/// shard. Frames forward byte-verbatim in both directions, so the worker's
/// replies need no id rewriting — and closing the lane is exactly a client
/// disconnect from the worker's point of view (it cancels that
/// connection's in-flight work), which is how client death propagates.
struct ShardSupervisor::Lane {
  explicit Lane(std::size_t max_frame_bytes) : reader(max_frame_bytes) {}

  FileDescriptor fd;
  bool connecting = false;
  bool broken = false;
  FrameReader reader;
  std::string outbox;  // frames buffered until the connect completes
  std::size_t outbox_at = 0;

  [[nodiscard]] bool outbox_empty() const { return outbox_at >= outbox.size(); }
};

/// What the supervisor owes a reply for: one accepted map frame, its
/// original bytes (for re-dispatch), and how many worker deaths it has
/// already survived.
struct ShardSupervisor::ParkedFrame {
  std::uint64_t client = 0;
  std::string request_id;
  std::string frame;
  int attempts = 0;
};

struct ShardSupervisor::Client {
  Client(std::uint64_t id_in, FileDescriptor fd_in, std::size_t max_frame)
      : id(id_in), fd(std::move(fd_in)), reader(max_frame) {}

  std::uint64_t id;
  FileDescriptor fd;
  FrameReader reader;
  std::string outbox;
  std::size_t outbox_at = 0;
  bool read_closed = false;
  bool close_after_flush = false;
  bool broken = false;

  struct Pending {
    int shard = -1;
    std::string frame;
    int attempts = 0;
  };
  std::unordered_map<std::string, Pending> pending;
  std::unordered_map<int, Lane> lanes;  // shard index -> upstream socket

  [[nodiscard]] bool outbox_empty() const { return outbox_at >= outbox.size(); }
};

struct ShardSupervisor::Shard {
  int index = 0;
  ShardPhase phase = ShardPhase::Down;
  int pid = -1;
  int port = 0;
  std::string port_file;
  bool spawned_ever = false;
  CircuitBreaker breaker;
  std::chrono::steady_clock::time_point phase_deadline{};

  // Supervisor-owned control lane: health probes only. Kept separate from
  // client lanes so a probe never queues behind client traffic.
  FileDescriptor control;
  bool control_connecting = false;
  FrameReader control_reader{1 << 16};
  std::string control_outbox;
  std::size_t control_outbox_at = 0;
  bool probe_outstanding = false;
  std::chrono::steady_clock::time_point probe_sent_at{};
  std::chrono::steady_clock::time_point next_probe_at{};

  explicit Shard(int index_in, const CircuitBreakerOptions& breaker_options)
      : index(index_in), breaker(breaker_options) {}

  void reset_control() {
    control.reset();
    control_connecting = false;
    control_reader = FrameReader(1 << 16);
    control_outbox.clear();
    control_outbox_at = 0;
    probe_outstanding = false;
  }
};

// ---------------------------------------------------------------------------
// Lifecycle.

ShardSupervisor::ShardSupervisor(ShardSupervisorOptions options)
    : options_(std::move(options)) {
  require(options_.shard_count >= 1, "qspr_shard needs at least one shard");
  require(!options_.worker_binary.empty(), "qspr_shard needs a worker binary");
  require(options_.max_redispatch >= 0, "max_redispatch must be >= 0");
  require(options_.health_interval_ms >= 1 && options_.health_timeout_ms >= 1,
          "health interval/timeout must be >= 1 ms");
  codec_limits_.max_frame_bytes = options_.max_frame_bytes;
}

ShardSupervisor::~ShardSupervisor() {
  // serve() normally reaps every child; cover early-throw lifetimes so a
  // failed test never leaks worker processes.
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (shard->pid > 0) {
      ::kill(shard->pid, SIGKILL);
      int status = 0;
      (void)::waitpid(shard->pid, &status, 0);
    }
    if (!shard->port_file.empty()) (void)::unlink(shard->port_file.c_str());
  }
}

void ShardSupervisor::start() {
  require(!started_, "start() called twice");
  started_at_ = std::chrono::steady_clock::now();
  listen_ = ListenSocket(options_.host, options_.port);

  CircuitBreakerOptions breaker_options;
  breaker_options.failure_threshold = options_.breaker_threshold;
  breaker_options.cooldown = options_.restart_backoff;

  shards_.reserve(static_cast<std::size_t>(options_.shard_count));
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    worker_pids_.assign(static_cast<std::size_t>(options_.shard_count), -1);
  }
  for (int i = 0; i < options_.shard_count; ++i) {
    auto shard = std::make_unique<Shard>(i, breaker_options);
    // Seed each shard's restart schedule differently so a mass failure
    // does not restart every worker in lockstep.
    shard->breaker = CircuitBreaker([&] {
      CircuitBreakerOptions per_shard = breaker_options;
      per_shard.cooldown.seed =
          breaker_options.cooldown.seed + static_cast<std::uint64_t>(i);
      return per_shard;
    }());
    shard->port_file = options_.port_file_dir + "/qspr_shard_" +
                       std::to_string(::getpid()) + "_" + std::to_string(i) +
                       ".port";
    shards_.push_back(std::move(shard));
  }
  started_ = true;
  for (int i = 0; i < options_.shard_count; ++i) spawn_shard(i);
}

int ShardSupervisor::port() const { return listen_.port(); }

void ShardSupervisor::request_drain() {
  drain_requested_.store(true, std::memory_order_relaxed);
  wake_.notify();
}

SupervisorMetrics ShardSupervisor::metrics() const {
  const std::lock_guard<std::mutex> lock(shared_mutex_);
  return metrics_;
}

std::vector<int> ShardSupervisor::worker_pids() const {
  const std::lock_guard<std::mutex> lock(shared_mutex_);
  return worker_pids_;
}

void ShardSupervisor::count(long long SupervisorMetrics::* field,
                            long long delta) {
  const std::lock_guard<std::mutex> lock(shared_mutex_);
  metrics_.*field += delta;
}

void ShardSupervisor::set_worker_pid(int index, int pid) {
  const std::lock_guard<std::mutex> lock(shared_mutex_);
  worker_pids_[static_cast<std::size_t>(index)] = pid;
}

// ---------------------------------------------------------------------------
// Worker lifecycle.

void ShardSupervisor::spawn_shard(int index) {
  Shard& shard = *shards_[static_cast<std::size_t>(index)];
  if (shard.pid > 0) return;  // previous process not reaped yet
  (void)::unlink(shard.port_file.c_str());

  std::vector<std::string> args;
  args.push_back(options_.worker_binary);
  args.push_back("--port");
  args.push_back("0");
  args.push_back("--port-file");
  args.push_back(shard.port_file);
  args.push_back("--shard-id");
  args.push_back(std::to_string(index));
  args.push_back("--quiet");
  for (const std::string& extra : options_.worker_args) args.push_back(extra);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    shard_failed(index, "fork failed");
    return;
  }
  if (pid == 0) {
    // Child: drop every inherited descriptor beyond stdio (the listener,
    // wake pipe, sibling lanes...), then become the worker. Only
    // async-signal-safe calls between fork and execv.
    for (int fd = 3; fd < 4096; ++fd) ::close(fd);
    ::execv(argv[0], argv.data());
    _exit(127);
  }

  shard.pid = static_cast<int>(pid);
  shard.phase = ShardPhase::Spawning;
  shard.phase_deadline = after_ms(std::chrono::steady_clock::now(),
                                  static_cast<double>(options_.spawn_deadline_ms));
  shard.reset_control();
  set_worker_pid(index, shard.pid);
  count(&SupervisorMetrics::spawns);
  if (shard.spawned_ever) count(&SupervisorMetrics::restarts);
  shard.spawned_ever = true;
  if (!options_.quiet) {
    std::cerr << "qspr_shard: shard " << index << " spawned pid " << shard.pid
              << "\n";
  }
}

void ShardSupervisor::kill_shard(int index, int signal) {
  Shard& shard = *shards_[static_cast<std::size_t>(index)];
  if (shard.pid > 0) ::kill(shard.pid, signal);
}

/// A bring-up or health failure: put the shard Down, ensure the process is
/// on its way out, and let the breaker schedule the next attempt.
void ShardSupervisor::shard_failed(int index, const char* why) {
  Shard& shard = *shards_[static_cast<std::size_t>(index)];
  if (!options_.quiet) {
    std::cerr << "qspr_shard: shard " << index << " failed: " << why << "\n";
  }
  if (shard.pid > 0) ::kill(shard.pid, SIGKILL);
  const bool was_up = shard.phase == ShardPhase::Up;
  shard.phase = ShardPhase::Down;
  shard.reset_control();
  on_shard_down(index);
  // Whichever detector notices a death first — this one (lane EOF, probe
  // timeout) or the waitpid sweep — applies the one breaker action; the
  // other sees phase Down and only reaps.
  if (was_up) {
    count(&SupervisorMetrics::crashes);
    shard.breaker.force_open(std::chrono::steady_clock::now());
  } else {
    shard.breaker.record_failure(std::chrono::steady_clock::now());
  }
}

void ShardSupervisor::reap_children() {
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    if (shard.pid <= 0) continue;
    int status = 0;
    const pid_t got = ::waitpid(shard.pid, &status, WNOHANG);
    if (got != shard.pid) continue;
    count(&SupervisorMetrics::reaps);
    set_worker_pid(shard.index, -1);
    shard.pid = -1;
    if (draining_ || shard.phase == ShardPhase::Down) {
      // Drain exits are expected; Down means shard_failed already
      // classified this death and charged the breaker.
      shard.phase = ShardPhase::Down;
      shard.reset_control();
      continue;
    }
    const bool was_up = shard.phase == ShardPhase::Up;
    shard.reset_control();
    shard.phase = ShardPhase::Down;
    on_shard_down(shard.index);
    const auto now = std::chrono::steady_clock::now();
    if (was_up) {
      // Unexpected death of a serving worker: crash. Client lanes to it
      // will EOF — buffered replies still arrive, then the unanswered
      // remainder re-dispatches through fail_lane.
      count(&SupervisorMetrics::crashes);
      shard.breaker.force_open(now);
    } else {
      // Died during bring-up (exec failure exits 127, crash on boot...).
      shard.breaker.record_failure(now);
    }
    if (!options_.quiet) {
      std::cerr << "qspr_shard: shard " << shard.index << " exited ("
                << (was_up ? "crash" : "bring-up failure") << ")\n";
    }
  }
}

void ShardSupervisor::pump_shard_bringup(int index) {
  Shard& shard = *shards_[static_cast<std::size_t>(index)];
  const auto now = std::chrono::steady_clock::now();
  if (shard.phase == ShardPhase::Spawning ||
      shard.phase == ShardPhase::Connecting ||
      shard.phase == ShardPhase::Probing) {
    if (now >= shard.phase_deadline) {
      shard_failed(index, "bring-up deadline");
      return;
    }
  }

  if (shard.phase == ShardPhase::Spawning) {
    std::ifstream in(shard.port_file);
    int port = 0;
    if (!(in >> port) || port <= 0) return;  // not published yet
    shard.port = port;
    shard.phase = ShardPhase::Connecting;
  }

  if (shard.phase == ShardPhase::Connecting && !shard.control.valid()) {
    bool pending = false;
    FileDescriptor fd;
    try {
      fd = connect_nonblocking(options_.host, shard.port, pending);
    } catch (const std::exception&) {
      shard_failed(index, "control connect setup");
      return;
    }
    if (!fd.valid()) return;  // refused outright; retry until the deadline
    shard.control = std::move(fd);
    shard.control_connecting = pending;
    if (!pending) {
      shard.phase = ShardPhase::Probing;
      shard.control_outbox += "{\"type\":\"health\",\"id\":\"hb\"}\n";
      shard.probe_outstanding = true;
      shard.probe_sent_at = now;
      flush_control(index);
    }
  }
}

void ShardSupervisor::flush_control(int index) {
  Shard& shard = *shards_[static_cast<std::size_t>(index)];
  while (shard.control.valid() && !shard.control_connecting &&
         shard.control_outbox_at < shard.control_outbox.size()) {
    const IoResult io = write_some(
        shard.control.get(),
        std::string_view(shard.control_outbox).substr(shard.control_outbox_at));
    if (io.status == IoStatus::Ok) {
      shard.control_outbox_at += io.bytes;
      continue;
    }
    if (io.status == IoStatus::WouldBlock) return;
    shard_failed(index, "control lane write");
    return;
  }
  if (shard.control_outbox_at >= shard.control_outbox.size()) {
    shard.control_outbox.clear();
    shard.control_outbox_at = 0;
  }
}

void ShardSupervisor::send_health_probes() {
  const auto now = std::chrono::steady_clock::now();
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    if (shard.phase != ShardPhase::Up) continue;
    if (shard.probe_outstanding || now < shard.next_probe_at) continue;
    shard.control_outbox += "{\"type\":\"health\",\"id\":\"hb\"}\n";
    shard.probe_outstanding = true;
    shard.probe_sent_at = now;
    flush_control(shard.index);
  }
}

void ShardSupervisor::check_health_timeouts() {
  const auto now = std::chrono::steady_clock::now();
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    if (shard.phase != ShardPhase::Up || !shard.probe_outstanding) continue;
    if (ms_between(shard.probe_sent_at, now) <
        static_cast<double>(options_.health_timeout_ms)) {
      continue;
    }
    // Wedged: the process is alive (waitpid saw nothing) but the poll-loop
    // health probe — which bypasses the admission queue — went unanswered.
    // SIGKILL it and run the crash path.
    count(&SupervisorMetrics::wedges);
    count(&SupervisorMetrics::health_failures);
    if (!options_.quiet) {
      std::cerr << "qspr_shard: shard " << shard.index
                << " wedged (health timeout); killing\n";
    }
    kill_shard(shard.index, SIGKILL);
    shard.phase = ShardPhase::Down;
    shard.reset_control();
    shard.breaker.force_open(now);
  }
}

void ShardSupervisor::read_control(int index) {
  Shard& shard = *shards_[static_cast<std::size_t>(index)];
  char buffer[4096];
  std::vector<std::string> frames;
  while (shard.control.valid()) {
    const IoResult io = read_some(shard.control.get(), buffer, sizeof buffer);
    if (io.status == IoStatus::WouldBlock) break;
    if (io.status == IoStatus::Closed || io.status == IoStatus::Error) {
      if (shard.phase == ShardPhase::Up ||
          shard.phase == ShardPhase::Probing) {
        shard_failed(index, "control lane closed");
      }
      return;
    }
    frames.clear();
    if (!shard.control_reader.feed(std::string_view(buffer, io.bytes),
                                   frames)) {
      shard_failed(index, "oversized control reply");
      return;
    }
    const auto now = std::chrono::steady_clock::now();
    for (const std::string& frame : frames) {
      bool healthy = false;
      try {
        const JsonValue root = parse_json(frame);
        const JsonValue* ok = root.find("ok");
        const JsonValue* health = root.find("health");
        healthy = ok != nullptr && ok->kind() == JsonValue::Kind::Bool &&
                  ok->as_bool() && health != nullptr;
      } catch (const std::exception&) {
        healthy = false;
      }
      shard.probe_outstanding = false;
      shard.next_probe_at =
          after_ms(now, static_cast<double>(options_.health_interval_ms));
      if (healthy) {
        count(&SupervisorMetrics::health_ok);
        shard.breaker.record_success();
        if (shard.phase == ShardPhase::Probing) {
          shard.phase = ShardPhase::Up;
          if (!options_.quiet) {
            std::cerr << "qspr_shard: shard " << index << " up on port "
                      << shard.port << "\n";
          }
          flush_parked(index);
        }
      } else {
        count(&SupervisorMetrics::health_failures);
        shard.breaker.record_failure(now);
        if (shard.breaker.state() == BreakerState::Open) {
          shard_failed(index, "health probe rejected");
          return;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Client side.

void ShardSupervisor::accept_clients() {
  while (true) {
    FileDescriptor client_fd = listen_.accept_client();
    if (!client_fd.valid()) return;
    if (static_cast<int>(clients_.size()) >= options_.max_connections) {
      const std::string refusal =
          serve_error_json("", "overloaded", "connection limit reached", 100) +
          "\n";
      (void)write_some(client_fd.get(), refusal);
      continue;
    }
    const std::uint64_t id = next_client_id_++;
    clients_.emplace(id, std::make_unique<Client>(id, std::move(client_fd),
                                                  options_.max_frame_bytes));
  }
}

void ShardSupervisor::read_client(Client& client) {
  char buffer[16384];
  std::vector<std::string> frames;
  while (!client.close_after_flush && !client.broken) {
    const IoResult io = read_some(client.fd.get(), buffer, sizeof buffer);
    if (io.status == IoStatus::WouldBlock) return;
    if (io.status == IoStatus::Closed) {
      client.read_closed = true;
      return;
    }
    if (io.status == IoStatus::Error) {
      client.broken = true;
      return;
    }
    frames.clear();
    if (!client.reader.feed(std::string_view(buffer, io.bytes), frames)) {
      enqueue_client_reply(
          client, serve_error_json("", "oversized",
                                   "frame exceeds max_frame_bytes; closing"));
      client.close_after_flush = true;
    }
    for (std::string& frame : frames) {
      if (frame.empty()) continue;
      handle_client_frame(client, std::move(frame));
      if (client.close_after_flush || client.broken) break;
    }
  }
}

void ShardSupervisor::handle_client_frame(Client& client, std::string frame) {
  ServeRequest request;
  try {
    request = parse_serve_request(frame, codec_limits_, MapperOptions{});
  } catch (const std::exception& e) {
    enqueue_client_reply(client,
                         serve_error_json("", "bad_request", e.what()));
    return;
  }
  switch (request.kind) {
    case RequestKind::Ping:
      enqueue_client_reply(client, serve_pong_json(request.id));
      return;
    case RequestKind::Stats:
      enqueue_client_reply(client, stats_json(request.id));
      return;
    case RequestKind::Health:
      enqueue_client_reply(client, health_json(request.id));
      return;
    case RequestKind::Cancel: {
      // Forward to the worker that holds the target; its ack flows back on
      // the same lane byte-verbatim. An unknown target is acked locally.
      const auto it = client.pending.find(request.cancel_target);
      if (it == client.pending.end()) {
        enqueue_client_reply(client, serve_cancel_ack_json(
                                         request.id, request.cancel_target,
                                         /*found=*/false));
        return;
      }
      const auto lane_it = client.lanes.find(it->second.shard);
      if (lane_it == client.lanes.end() || lane_it->second.broken) {
        // The worker died; the map request itself is already on the
        // re-dispatch path, so the cancel finds nothing to stop.
        enqueue_client_reply(client, serve_cancel_ack_json(
                                         request.id, request.cancel_target,
                                         /*found=*/false));
        return;
      }
      lane_it->second.outbox += frame;
      lane_it->second.outbox.push_back('\n');
      flush_lane(lane_it->second);
      return;
    }
    case RequestKind::SessionOpen:
    case RequestKind::SessionClose:
    case RequestKind::Map:
      // All three take the accepted/pending path and are owed exactly one
      // reply; route_map picks the shard (fabric hash vs session affinity).
      route_map(client, request, std::move(frame));
      return;
  }
}

void ShardSupervisor::route_map(Client& client, const ServeRequest& request,
                                std::string frame) {
  if (client.pending.count(request.id) != 0) {
    enqueue_client_reply(client,
                         serve_error_json(request.id, "bad_request",
                                          "duplicate in-flight request id"));
    return;
  }
  if (draining_) {
    enqueue_client_reply(client,
                         serve_error_json(request.id, "draining",
                                          "supervisor is draining; retry "
                                          "against a healthy instance"));
    return;
  }
  int target;
  if (!request.session.empty()) {
    // Session frames follow the session, not the fabric: the warm prior
    // lives in exactly one worker's ResultCache. No affinity entry means
    // the session never opened here or died with its shard — tell the
    // client to reopen rather than guessing a shard.
    const auto it = session_shards_.find(request.session);
    if (it == session_shards_.end()) {
      enqueue_client_reply(
          client,
          serve_error_json(request.id, "unknown_session",
                           "session not open on this fleet (its shard may "
                           "have restarted; reopen): " + request.session));
      return;
    }
    target = it->second;
  } else {
    target = shard_for_fabric(request.fabric, options_.shard_count);
  }
  if (shards_[static_cast<std::size_t>(target)]->phase != ShardPhase::Up) {
    // Explicit shedding, no silent rerouting: affinity-preserving clients
    // retry after the hint and land back on their warm shard.
    shed(client, request.id, target);
    return;
  }
  count(&SupervisorMetrics::accepted);
  dispatch(client, request.id, std::move(frame), target, /*attempts=*/0);
}

void ShardSupervisor::on_shard_down(int index) {
  // Sessions live in the worker process; its death loses them. Dropping
  // the affinity entries now is what turns the next frame for such a
  // session into an explicit unknown_session instead of silently aliasing
  // a fresh session minted by the replacement worker (which restarts its
  // session counter).
  for (auto it = session_shards_.begin(); it != session_shards_.end();) {
    if (it->second == index) {
      it = session_shards_.erase(it);
    } else {
      ++it;
    }
  }
}

void ShardSupervisor::shed(Client& client, const std::string& request_id,
                           int shard_index) {
  count(&SupervisorMetrics::shed_shard_down);
  enqueue_client_reply(
      client, serve_error_json(request_id, "shard_down",
                               "shard " + std::to_string(shard_index) +
                                   " is down; retry after the hint",
                               shard_retry_hint_ms(shard_index)));
}

void ShardSupervisor::dispatch(Client& client, const std::string& request_id,
                               std::string frame, int shard_index,
                               int attempts) {
  Lane& lane = lane_for(client, shard_index);
  lane.outbox += frame;
  lane.outbox.push_back('\n');
  Client::Pending pending;
  pending.shard = shard_index;
  pending.frame = std::move(frame);
  pending.attempts = attempts;
  client.pending[request_id] = std::move(pending);
  if (!lane.connecting) flush_lane(lane);
}

ShardSupervisor::Lane& ShardSupervisor::lane_for(Client& client,
                                                 int shard_index) {
  const auto it = client.lanes.find(shard_index);
  if (it != client.lanes.end() && !it->second.broken) return it->second;
  client.lanes.erase(shard_index);
  auto [inserted, _] = client.lanes.emplace(
      shard_index, Lane(options_.max_frame_bytes));
  Lane& lane = inserted->second;
  const Shard& shard = *shards_[static_cast<std::size_t>(shard_index)];
  bool pending = false;
  try {
    lane.fd = connect_nonblocking(options_.host, shard.port, pending);
  } catch (const std::exception&) {
    lane.broken = true;
    return lane;
  }
  if (!lane.fd.valid()) {
    lane.broken = true;  // refused: the shard just died; fail_lane handles it
    return lane;
  }
  lane.connecting = pending;
  return lane;
}

void ShardSupervisor::pump_lane_connect(Client& client, int shard_index,
                                        Lane& lane) {
  if (!lane.connecting) return;
  const int error = pending_connect_error(lane.fd.get());
  lane.connecting = false;
  if (error != 0) {
    fail_lane(client, shard_index);
    return;
  }
  flush_lane(lane);
}

void ShardSupervisor::flush_lane(Lane& lane) {
  while (!lane.broken && lane.fd.valid() && !lane.connecting &&
         lane.outbox_at < lane.outbox.size()) {
    const IoResult io = write_some(
        lane.fd.get(), std::string_view(lane.outbox).substr(lane.outbox_at));
    if (io.status == IoStatus::Ok) {
      lane.outbox_at += io.bytes;
      continue;
    }
    if (io.status == IoStatus::WouldBlock) return;
    lane.broken = true;  // fail_lane runs from the poll pass
    return;
  }
  if (lane.outbox_at >= lane.outbox.size()) {
    lane.outbox.clear();
    lane.outbox_at = 0;
  }
}

void ShardSupervisor::read_lane(Client& client, int shard_index, Lane& lane) {
  char buffer[16384];
  std::vector<std::string> frames;
  while (lane.fd.valid() && !lane.broken) {
    const IoResult io = read_some(lane.fd.get(), buffer, sizeof buffer);
    if (io.status == IoStatus::WouldBlock) return;
    if (io.status == IoStatus::Closed || io.status == IoStatus::Error) {
      // EOF after a worker death: everything the worker managed to write
      // was already forwarded above; a partial trailing frame is dropped
      // (never half-forwarded) and its request re-dispatches with the rest.
      fail_lane(client, shard_index);
      return;
    }
    frames.clear();
    if (!lane.reader.feed(std::string_view(buffer, io.bytes), frames)) {
      fail_lane(client, shard_index);
      return;
    }
    for (const std::string& frame : frames) {
      std::string id;
      std::string session;
      bool session_closed = false;
      if (!reply_id(frame, id, session, session_closed)) {
        continue;  // not JSON: drop, never forward
      }
      const auto pending_it = client.pending.find(id);
      if (pending_it != client.pending.end() &&
          pending_it->second.shard == shard_index) {
        // The one reply this accepted request gets: account and erase
        // BEFORE forwarding, so a crash later can only re-dispatch
        // requests that were truly never answered.
        client.pending.erase(pending_it);
        count(&SupervisorMetrics::answered);
      }
      // Affinity follows what the worker reports: an open ack or a
      // session-map result pins the session to this shard (idempotent on
      // repeats), a close ack (open:false) releases it.
      if (!session.empty()) {
        if (session_closed) {
          session_shards_.erase(session);
        } else {
          session_shards_[session] = shard_index;
        }
      }
      enqueue_client_reply(client, frame);
    }
  }
}

void ShardSupervisor::fail_lane(Client& client, int shard_index) {
  const auto lane_it = client.lanes.find(shard_index);
  if (lane_it == client.lanes.end()) return;
  client.lanes.erase(lane_it);
  // Collect this lane's unanswered requests, then re-dispatch each — the
  // mapping is pure, so a duplicate execution elsewhere returns the
  // bit-identical result the client was promised.
  std::vector<std::pair<std::string, Client::Pending>> orphans;
  for (auto it = client.pending.begin(); it != client.pending.end();) {
    if (it->second.shard == shard_index) {
      orphans.emplace_back(it->first, std::move(it->second));
      it = client.pending.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& [request_id, pending] : orphans) {
    redispatch_or_park(client, request_id, std::move(pending.frame),
                       pending.attempts);
  }
}

void ShardSupervisor::redispatch_or_park(Client& client,
                                         const std::string& request_id,
                                         std::string frame, int attempts) {
  if (draining_) {
    count(&SupervisorMetrics::answered);
    enqueue_client_reply(
        client, serve_error_json(request_id, "cancelled",
                                 "supervisor drained before completion"));
    return;
  }
  if (attempts + 1 > options_.max_redispatch) {
    count(&SupervisorMetrics::answered);
    count(&SupervisorMetrics::shed_shard_down);
    enqueue_client_reply(
        client,
        serve_error_json(request_id, "shard_down",
                         "request outlived " + std::to_string(attempts + 1) +
                             " worker deaths; giving up",
                         shard_retry_hint_ms(-1)));
    return;
  }
  const int target = pick_up_shard(/*preferred=*/-1);
  if (target < 0) {
    // No shard alive right now: park until a restart comes Up. The client
    // just waits a little longer — its request is not lost.
    count(&SupervisorMetrics::parked);
    ParkedFrame parked;
    parked.client = client.id;
    parked.request_id = request_id;
    parked.frame = std::move(frame);
    parked.attempts = attempts + 1;
    parked_.push_back(std::move(parked));
    return;
  }
  count(&SupervisorMetrics::redispatches);
  dispatch(client, request_id, std::move(frame), target, attempts + 1);
}

void ShardSupervisor::flush_parked(int up_shard) {
  std::deque<ParkedFrame> waiting;
  waiting.swap(parked_);
  for (ParkedFrame& parked : waiting) {
    const auto it = clients_.find(parked.client);
    if (it == clients_.end()) {
      count(&SupervisorMetrics::answered);  // owed reply died with the client
      continue;
    }
    count(&SupervisorMetrics::redispatches);
    dispatch(*it->second, parked.request_id, std::move(parked.frame), up_shard,
             parked.attempts);
  }
}

void ShardSupervisor::enqueue_client_reply(Client& client, std::string line) {
  if (client.broken) return;
  const std::size_t buffered = client.outbox.size() - client.outbox_at;
  if (buffered + line.size() + 1 > options_.max_outbox_bytes) {
    client.broken = true;
    return;
  }
  if (client.outbox_at > 0 && client.outbox_at == client.outbox.size()) {
    client.outbox.clear();
    client.outbox_at = 0;
  }
  client.outbox += line;
  client.outbox.push_back('\n');
  flush_client(client);
}

void ShardSupervisor::flush_client(Client& client) {
  while (client.outbox_at < client.outbox.size()) {
    const IoResult io = write_some(
        client.fd.get(),
        std::string_view(client.outbox).substr(client.outbox_at));
    if (io.status == IoStatus::Ok) {
      client.outbox_at += io.bytes;
      continue;
    }
    if (io.status == IoStatus::WouldBlock) return;
    client.broken = true;
    return;
  }
  client.outbox.clear();
  client.outbox_at = 0;
}

void ShardSupervisor::destroy_client(std::uint64_t id) {
  const auto it = clients_.find(id);
  if (it == clients_.end()) return;
  // Closing the lanes is the cancellation: each worker sees its connection
  // from this client drop and cancels that connection's in-flight work.
  const long long owed = static_cast<long long>(it->second->pending.size());
  if (owed > 0) count(&SupervisorMetrics::answered, owed);
  for (auto parked_it = parked_.begin(); parked_it != parked_.end();) {
    if (parked_it->client == id) {
      count(&SupervisorMetrics::answered);
      parked_it = parked_.erase(parked_it);
    } else {
      ++parked_it;
    }
  }
  clients_.erase(it);
}

// ---------------------------------------------------------------------------
// Drain.

void ShardSupervisor::begin_drain() {
  draining_ = true;
  listen_.close();
  drain_deadline_ = after_ms(std::chrono::steady_clock::now(),
                             options_.drain_deadline_ms);
  // Cascade: workers drain themselves (answer in-flight, flush, exit 0);
  // their replies flow back over the lanes before the EOF.
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (shard->pid > 0) ::kill(shard->pid, SIGTERM);
  }
  // Parked frames are not running anywhere; answer them now.
  std::deque<ParkedFrame> waiting;
  waiting.swap(parked_);
  for (const ParkedFrame& parked : waiting) {
    const auto it = clients_.find(parked.client);
    count(&SupervisorMetrics::answered);
    if (it == clients_.end()) continue;
    enqueue_client_reply(
        *it->second,
        serve_error_json(parked.request_id, "draining",
                         "supervisor is draining; retry elsewhere"));
  }
  if (!options_.quiet) std::cerr << "qspr_shard: draining\n";
}

void ShardSupervisor::finish_drain() {
  // Past the deadline: stop waiting for worker drains. SIGKILL guarantees
  // prompt EOFs and waitpid results; unanswered requests get `cancelled`.
  drain_killed_ = true;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (shard->pid > 0) {
      ::kill(shard->pid, SIGKILL);
      int status = 0;
      (void)::waitpid(shard->pid, &status, 0);
      count(&SupervisorMetrics::reaps);
      set_worker_pid(shard->index, -1);
      shard->pid = -1;
    }
    shard->phase = ShardPhase::Down;
    shard->reset_control();
  }
  for (auto& [id, client] : clients_) {
    std::vector<std::string> owed;
    owed.reserve(client->pending.size());
    for (const auto& [request_id, pending] : client->pending) {
      owed.push_back(request_id);
    }
    client->pending.clear();
    client->lanes.clear();
    for (const std::string& request_id : owed) {
      count(&SupervisorMetrics::answered);
      enqueue_client_reply(
          *client, serve_error_json(request_id, "cancelled",
                                    "drain deadline cancelled the request"));
    }
  }
}

// ---------------------------------------------------------------------------
// The supervision loop.

int ShardSupervisor::poll_timeout_ms() const {
  const auto now = std::chrono::steady_clock::now();
  double timeout = -1.0;
  const auto consider = [&](std::chrono::steady_clock::time_point at) {
    const double ms = std::max(0.0, ms_between(now, at));
    if (timeout < 0.0 || ms < timeout) timeout = ms;
  };
  for (const std::unique_ptr<Shard>& shard : shards_) {
    switch (shard->phase) {
      case ShardPhase::Spawning:
      case ShardPhase::Connecting:
        // Port-file polling / connect retries have no fd to wake on.
        timeout = timeout < 0.0 ? 20.0 : std::min(timeout, 20.0);
        break;
      case ShardPhase::Probing:
        consider(shard->phase_deadline);
        break;
      case ShardPhase::Up:
        consider(shard->probe_outstanding
                     ? after_ms(shard->probe_sent_at,
                                static_cast<double>(options_.health_timeout_ms))
                     : shard->next_probe_at);
        break;
      case ShardPhase::Down:
        if (!draining_ && shard->pid <= 0) {
          if (shard->breaker.state() == BreakerState::Open) {
            consider(shard->breaker.reopen_at());
          } else {
            timeout = timeout < 0.0 ? 20.0 : std::min(timeout, 20.0);
          }
        } else if (shard->pid > 0) {
          // Awaiting the waitpid of a killed process: tick soon.
          timeout = timeout < 0.0 ? 20.0 : std::min(timeout, 20.0);
        }
        break;
    }
  }
  if (draining_ && !drain_killed_) consider(drain_deadline_);
  if (timeout < 0.0) return -1;
  return static_cast<int>(timeout) + 1;
}

int ShardSupervisor::pick_up_shard(int preferred) const {
  if (preferred >= 0 &&
      shards_[static_cast<std::size_t>(preferred)]->phase == ShardPhase::Up) {
    return preferred;
  }
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (shard->phase == ShardPhase::Up) return shard->index;
  }
  return -1;
}

int ShardSupervisor::shard_retry_hint_ms(int index) const {
  double hint = 100.0;
  if (index >= 0) {
    const Shard& shard = *shards_[static_cast<std::size_t>(index)];
    if (shard.breaker.state() == BreakerState::Open) {
      hint = std::max(
          hint, ms_between(std::chrono::steady_clock::now(),
                           shard.breaker.reopen_at()) +
                    100.0);
    }
  }
  return static_cast<int>(std::clamp(hint, 50.0, 5000.0));
}

int ShardSupervisor::serve() {
  require(started_, "serve() needs start()");

  struct EntryRef {
    enum class Kind : std::uint8_t { Wake, Listen, Control, ClientFd, LaneFd };
    Kind kind = Kind::Wake;
    std::uint64_t client = 0;
    int shard = -1;
  };
  std::vector<PollEntry> entries;
  std::vector<EntryRef> refs;
  std::vector<std::uint64_t> scratch_ids;

  while (true) {
    if (!draining_ && drain_requested_.load(std::memory_order_relaxed)) {
      begin_drain();
    }
    if (draining_ && !drain_killed_ &&
        std::chrono::steady_clock::now() >= drain_deadline_) {
      finish_drain();
    }

    reap_children();

    if (!draining_) {
      const auto now = std::chrono::steady_clock::now();
      for (const std::unique_ptr<Shard>& shard : shards_) {
        if (shard->phase == ShardPhase::Down && shard->pid <= 0 &&
            shard->breaker.allow_probe(now)) {
          spawn_shard(shard->index);
        }
      }
      for (const std::unique_ptr<Shard>& shard : shards_) {
        pump_shard_bringup(shard->index);
      }
      send_health_probes();
      check_health_timeouts();
    }

    // Reap clients exactly like the worker's serve loop does.
    scratch_ids.clear();
    for (const auto& [id, client] : clients_) {
      bool has_parked = false;
      for (const ParkedFrame& parked : parked_) {
        if (parked.client == id) {
          has_parked = true;
          break;
        }
      }
      const bool flushed = client->outbox_empty();
      if (client->broken || (client->close_after_flush && flushed) ||
          (client->read_closed && flushed && client->pending.empty() &&
           !has_parked)) {
        scratch_ids.push_back(id);
      }
    }
    for (const std::uint64_t id : scratch_ids) destroy_client(id);

    if (draining_) {
      bool workers_gone = true;
      for (const std::unique_ptr<Shard>& shard : shards_) {
        if (shard->pid > 0) workers_gone = false;
      }
      bool replies_owed = !parked_.empty();
      bool unflushed = false;
      for (const auto& [id, client] : clients_) {
        if (client->broken) continue;
        if (!client->pending.empty()) replies_owed = true;
        if (!client->outbox_empty()) unflushed = true;
      }
      if (workers_gone && !replies_owed && (!unflushed || drain_killed_)) {
        break;
      }
    }

    // Build the poll set.
    entries.clear();
    refs.clear();
    entries.push_back({wake_.read_fd(), /*want_read=*/true});
    refs.push_back({EntryRef::Kind::Wake, 0, -1});
    if (listen_.valid()) {
      entries.push_back({listen_.fd(), /*want_read=*/true});
      refs.push_back({EntryRef::Kind::Listen, 0, -1});
    }
    for (const std::unique_ptr<Shard>& shard : shards_) {
      if (!shard->control.valid()) continue;
      PollEntry entry;
      entry.fd = shard->control.get();
      entry.want_read = !shard->control_connecting;
      entry.want_write =
          shard->control_connecting ||
          shard->control_outbox_at < shard->control_outbox.size();
      entries.push_back(entry);
      refs.push_back({EntryRef::Kind::Control, 0, shard->index});
    }
    for (const auto& [id, client] : clients_) {
      PollEntry entry;
      entry.fd = client->fd.get();
      entry.want_read = !client->read_closed && !client->close_after_flush;
      entry.want_write = !client->outbox_empty();
      entries.push_back(entry);
      refs.push_back({EntryRef::Kind::ClientFd, id, -1});
      for (const auto& [shard_index, lane] : client->lanes) {
        if (!lane.fd.valid() || lane.broken) continue;
        PollEntry lane_entry;
        lane_entry.fd = lane.fd.get();
        lane_entry.want_read = !lane.connecting;
        lane_entry.want_write = lane.connecting || !lane.outbox_empty();
        entries.push_back(lane_entry);
        refs.push_back({EntryRef::Kind::LaneFd, id, shard_index});
      }
    }

    poll_fds(entries, poll_timeout_ms());

    for (std::size_t i = 0; i < entries.size(); ++i) {
      const PollEntry& entry = entries[i];
      const EntryRef& ref = refs[i];
      switch (ref.kind) {
        case EntryRef::Kind::Wake:
          if (entry.readable) wake_.drain();
          break;
        case EntryRef::Kind::Listen:
          if (entry.readable && listen_.valid()) accept_clients();
          break;
        case EntryRef::Kind::Control: {
          Shard& shard = *shards_[static_cast<std::size_t>(ref.shard)];
          if (!shard.control.valid() ||
              shard.control.get() != entry.fd) {
            break;  // phase changed earlier this pass
          }
          if (shard.control_connecting && (entry.writable || entry.broken)) {
            shard.control_connecting = false;
            if (pending_connect_error(shard.control.get()) != 0) {
              shard.control.reset();  // retried by pump_shard_bringup
              break;
            }
            if (shard.phase == ShardPhase::Connecting) {
              shard.phase = ShardPhase::Probing;
              shard.control_outbox += "{\"type\":\"health\",\"id\":\"hb\"}\n";
              shard.probe_outstanding = true;
              shard.probe_sent_at = std::chrono::steady_clock::now();
            }
            flush_control(ref.shard);
            break;
          }
          if (entry.readable || entry.broken) read_control(ref.shard);
          if (shard.control.valid() && entry.writable) {
            flush_control(ref.shard);
          }
          break;
        }
        case EntryRef::Kind::ClientFd: {
          const auto it = clients_.find(ref.client);
          if (it == clients_.end()) break;
          Client& client = *it->second;
          if (client.fd.get() != entry.fd) break;
          if (entry.broken) {
            client.broken = true;
            break;
          }
          if (entry.readable) read_client(client);
          if (entry.writable && !client.outbox_empty()) flush_client(client);
          break;
        }
        case EntryRef::Kind::LaneFd: {
          const auto it = clients_.find(ref.client);
          if (it == clients_.end()) break;
          Client& client = *it->second;
          const auto lane_it = client.lanes.find(ref.shard);
          if (lane_it == client.lanes.end()) break;
          Lane& lane = lane_it->second;
          if (!lane.fd.valid() || lane.fd.get() != entry.fd) break;
          if (lane.connecting && (entry.writable || entry.broken)) {
            pump_lane_connect(client, ref.shard, lane);
            break;
          }
          // Read before acting on broken: a dead worker's final replies
          // sit in the kernel buffer and must forward before the EOF
          // triggers re-dispatch of the remainder.
          if (entry.readable || entry.broken) {
            read_lane(client, ref.shard, lane);
          }
          const auto again = client.lanes.find(ref.shard);
          if (again != client.lanes.end()) {
            if (again->second.broken) {
              fail_lane(client, ref.shard);
            } else if (entry.writable) {
              flush_lane(again->second);
            }
          }
          break;
        }
      }
    }

    // Lanes whose writes failed outside a poll pass (dispatch to a
    // just-died worker) re-dispatch here.
    scratch_ids.clear();
    for (const auto& [id, client] : clients_) scratch_ids.push_back(id);
    for (const std::uint64_t id : scratch_ids) {
      const auto it = clients_.find(id);
      if (it == clients_.end()) continue;
      std::vector<int> broken_lanes;
      for (const auto& [shard_index, lane] : it->second->lanes) {
        if (lane.broken) broken_lanes.push_back(shard_index);
      }
      for (const int shard_index : broken_lanes) {
        fail_lane(*it->second, shard_index);
      }
    }
  }

  // Clean exit: every child reaped, every owed reply flushed or its client
  // cut at the deadline.
  for (const std::unique_ptr<Shard>& shard : shards_) {
    (void)::unlink(shard->port_file.c_str());
  }
  clients_.clear();
  if (!options_.quiet) {
    const SupervisorMetrics snap = metrics();
    std::cerr << "qspr_shard drained: accepted " << snap.accepted
              << ", answered " << snap.answered << ", redispatched "
              << snap.redispatches << ", restarts " << snap.restarts << "\n";
  }
  return 0;
}

std::string ShardSupervisor::stats_json(const std::string& id) const {
  const SupervisorMetrics snap = [&] {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    return metrics_;
  }();
  int up = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (shard->phase == ShardPhase::Up) ++up;
  }
  JsonWriter json;
  json.begin_object();
  json.field("id", id);
  json.field("ok", true);
  json.key("stats").begin_object();
  json.field("role", "supervisor");
  json.field("shards", options_.shard_count);
  json.field("shards_up", up);
  json.field("uptime_ms",
             ms_between(started_at_, std::chrono::steady_clock::now()));
  json.field("connections", static_cast<long long>(clients_.size()));
  json.field("sessions", static_cast<long long>(session_shards_.size()));
  json.field("accepted", snap.accepted);
  json.field("answered", snap.answered);
  json.field("redispatches", snap.redispatches);
  json.field("shed_shard_down", snap.shed_shard_down);
  json.field("parked", snap.parked);
  json.field("spawns", snap.spawns);
  json.field("restarts", snap.restarts);
  json.field("reaps", snap.reaps);
  json.field("crashes", snap.crashes);
  json.field("wedges", snap.wedges);
  json.field("health_ok", snap.health_ok);
  json.field("health_failures", snap.health_failures);
  json.end_object();
  json.end_object();
  return json.str();
}

std::string ShardSupervisor::health_json(const std::string& id) const {
  int up = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (shard->phase == ShardPhase::Up) ++up;
  }
  JsonWriter json;
  json.begin_object();
  json.field("id", id);
  json.field("ok", true);
  json.field("health", draining_ ? "draining" : "ok");
  json.field("uptime_ms",
             ms_between(started_at_, std::chrono::steady_clock::now()));
  json.field("shards", options_.shard_count);
  json.field("shards_up", up);
  json.end_object();
  return json.str();
}

}  // namespace qspr
