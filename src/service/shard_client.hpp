// Client-side plumbing for the sharded mapping service: a deterministic
// exponential-backoff policy (shared by the supervisor's restart schedule
// and the client's retry pacing) and a blocking framed NDJSON client with
// connect/request timeouts and a bounded retry budget.
//
// ShardClient is what the chaos harness and the failover bench use to talk
// to qspr_shard: it retries transport failures (connection refused, reset,
// timeout) and explicit back-off replies (`overloaded`, `shard_down`,
// `draining`) — honouring the server's retry_after_ms hint — and gives up
// with qspr::Error once the attempt budget is spent. Retrying a map request
// is safe by contract: mapping is pure, so a duplicate execution returns a
// bit-identical result (same result_fp).
#pragma once

#include <cstdint>
#include <string>

#include "common/net.hpp"
#include "service/request_codec.hpp"

namespace qspr {

/// Tuning for BackoffPolicy. jitter_frac spreads simultaneous retriers
/// apart; seed makes the spread reproducible (tests pin it).
struct BackoffOptions {
  int base_ms = 50;
  int cap_ms = 2000;
  /// Multiplicative jitter in [0, jitter_frac) added on top of the
  /// exponential delay; 0 = fully deterministic schedule.
  double jitter_frac = 0.25;
  std::uint64_t seed = 0;
};

/// Deterministic exponential backoff: delay(attempt) =
/// min(cap, base * 2^attempt * (1 + jitter_frac * u(seed, attempt))) with
/// u in [0, 1) from a splitmix-style hash — a pure function of
/// (options, attempt), so schedules replay exactly under a fixed seed and
/// unit tests need no clock.
class BackoffPolicy {
 public:
  explicit BackoffPolicy(BackoffOptions options = {});

  /// Delay before retry number `attempt` (0-based). Monotone
  /// non-decreasing in `attempt` up to the cap.
  [[nodiscard]] int delay_ms(int attempt) const;

  [[nodiscard]] const BackoffOptions& options() const { return options_; }

 private:
  BackoffOptions options_;
};

struct ShardClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  int connect_timeout_ms = 2000;
  /// Wall budget for one send+receive round trip (not the whole retry
  /// sequence). A request timing out tears the connection down — replies
  /// arriving later would desynchronise the line protocol.
  int request_timeout_ms = 30'000;
  /// Total tries request() spends before throwing (first attempt included).
  int max_attempts = 5;
  BackoffOptions backoff;
};

/// Blocking NDJSON request/reply client with reconnection, timeouts, and a
/// retry budget. Not thread-safe: one ShardClient per client thread.
class ShardClient {
 public:
  explicit ShardClient(ShardClientOptions options);

  /// One round trip, no retries: sends `line` (newline appended) and
  /// returns the next reply line. Returns false on any transport failure
  /// (connect/send/receive error or timeout); the connection is then torn
  /// down so the next call reconnects.
  [[nodiscard]] bool try_request(const std::string& line, std::string& reply);

  /// Retrying round trip: retries transport failures and replies whose
  /// `code` is overloaded / shard_down / draining, waiting the larger of
  /// the server's retry_after_ms hint and the backoff schedule between
  /// tries. Returns the first reply that is neither (ok:true results AND
  /// terminal errors like bad_request both count — only back-pressure is
  /// retried). Throws qspr::Error once max_attempts is exhausted.
  [[nodiscard]] std::string request(const std::string& line);

  /// Drops the current connection (next request reconnects).
  void disconnect();

  [[nodiscard]] bool connected() const { return fd_.valid(); }

  /// Transport attempts that failed so far (diagnostics for the bench).
  [[nodiscard]] long long transport_failures() const {
    return transport_failures_;
  }

 private:
  [[nodiscard]] bool ensure_connected();
  [[nodiscard]] bool send_all(const std::string& payload, int deadline_ms);
  [[nodiscard]] bool recv_line(std::string& reply, int deadline_ms);

  ShardClientOptions options_;
  BackoffPolicy backoff_;
  FileDescriptor fd_;
  std::string inbox_;  // bytes received past the last returned line
  long long transport_failures_ = 0;
};

}  // namespace qspr
