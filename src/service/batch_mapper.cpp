#include "service/batch_mapper.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/stopwatch.hpp"
#include "qasm/parser.hpp"

namespace qspr {

BatchMapper::BatchMapper(MappingEngine& engine, BatchOptions options)
    : engine_(&engine), options_(options) {
  require(options_.max_in_flight >= 0,
          "batch max_in_flight must be non-negative");
}

BatchResult BatchMapper::run(const std::vector<BatchJob>& manifest,
                             const RecordSink& sink) {
  const Stopwatch watch;
  const FabricArtifactCache::Stats cache_before =
      engine_->artifacts().stats();

  BatchResult batch;
  batch.records.resize(manifest.size());

  /// One staged job: the parsed program it owns (when loaded from disk) and
  /// its in-flight trials.
  struct InFlight {
    std::size_t index = 0;
    std::unique_ptr<Program> owned_program;
    std::shared_ptr<const Fabric> owned_fabric;
    MappingEngine::PendingMap pending;
  };
  std::deque<InFlight> in_flight;
  const std::size_t cap = static_cast<std::size_t>(
      options_.max_in_flight > 0 ? options_.max_in_flight
                                 : std::max(2, 2 * engine_->worker_count()));

  /// One QASM parse submitted ahead of the staging cursor as a 1-index
  /// executor job, so disk + parse work overlaps in-flight trials instead of
  /// serialising on the coordinator thread. Heap-held: the job body writes
  /// `program` through a stable pointer. Errors are captured by the executor
  /// and rethrow at the staging wait, landing in that record like any other
  /// staging failure.
  struct PendingParse {
    std::size_t index = 0;
    Executor::Job job;
    std::unique_ptr<Program> program;
  };
  std::deque<std::unique_ptr<PendingParse>> parses;
  std::size_t next_parse = 0;
  const auto top_up_parses = [&] {
    // Same in-flight window as the trial pipeline: at most `cap` parsed
    // programs live ahead of the cursor, so lookahead cannot balloon memory
    // on a long manifest.
    while (next_parse < manifest.size() && parses.size() < cap) {
      const BatchJob& ahead = manifest[next_parse];
      if (ahead.program == nullptr && !ahead.qasm_path.empty()) {
        auto parse = std::make_unique<PendingParse>();
        parse->index = next_parse;
        PendingParse* p = parse.get();
        parse->job = engine_->executor().submit(
            1, [p, path = ahead.qasm_path](std::size_t, int) {
              p->program = std::make_unique<Program>(parse_qasm_file(path));
            });
        parses.push_back(std::move(parse));
      }
      ++next_parse;
    }
  };

  const auto finalize_front = [&] {
    InFlight entry = std::move(in_flight.front());
    in_flight.pop_front();
    BatchJobRecord& record = batch.records[entry.index];
    try {
      record.result = engine_->finish(std::move(entry.pending));
      record.ok = true;
      ++batch.summary.succeeded;
      batch.summary.trial_cpu_ms += record.result.trial_cpu_ms;
    } catch (const std::exception& e) {
      record.ok = false;
      record.error = e.what();
      ++batch.summary.failed;
    }
    if (sink) sink(record);
  };

  for (std::size_t i = 0; i < manifest.size(); ++i) {
    const BatchJob& job = manifest[i];
    BatchJobRecord& record = batch.records[i];
    record.name = job.name;

    // Launch lookahead parses before blocking on the oldest job, then keep
    // the pipeline bounded: finalize the oldest job first. Records
    // therefore stream strictly in manifest order.
    top_up_parses();
    while (in_flight.size() >= cap) finalize_front();

    InFlight entry;
    entry.index = i;
    try {
      const Program* program = job.program;
      if (program == nullptr) {
        require(!job.qasm_path.empty(),
                "batch job needs a program or a qasm_path");
        if (!parses.empty() && parses.front()->index == i) {
          auto parse = std::move(parses.front());
          parses.pop_front();
          engine_->executor().wait(parse->job);  // rethrows parse failures
          entry.owned_program = std::move(parse->program);
        } else {
          entry.owned_program =
              std::make_unique<Program>(parse_qasm_file(job.qasm_path));
        }
        program = entry.owned_program.get();
      }
      const Fabric* fabric = job.fabric;
      if (!job.fabric_spec.empty()) {
        record.fabric = job.fabric_spec;
        entry.owned_fabric = fabrics_.get(job.fabric_spec);
        fabric = entry.owned_fabric.get();
      }
      require(fabric != nullptr, "batch job needs a fabric");
      record.qubits = program->qubit_count();
      record.instructions = program->instruction_count();
      if (record.name.empty()) record.name = program->name();

      MapJob map_job;
      map_job.program = program;
      map_job.fabric = fabric;
      map_job.options = job.options;
      map_job.name = record.name;
      entry.pending = engine_->begin(map_job);
      in_flight.push_back(std::move(entry));
    } catch (const std::exception& e) {
      // Staging failures (unreadable/malformed QASM, bad manifest entry,
      // infeasible setup) fail only this record.
      record.ok = false;
      record.error = e.what();
      ++batch.summary.failed;
      if (sink) sink(record);
    }
  }
  // Every parse entry is normally consumed by its manifest index; drain any
  // stragglers so no job body outlives the state it writes into.
  for (auto& parse : parses) {
    try {
      engine_->executor().wait(parse->job);
    } catch (...) {  // NOLINT(bugprone-empty-catch) — already reported or moot
    }
  }
  while (!in_flight.empty()) finalize_front();

  batch.summary.jobs = static_cast<int>(manifest.size());
  batch.summary.workers = engine_->worker_count();
  batch.summary.wall_ms = watch.elapsed_ms();
  batch.summary.programs_per_sec =
      batch.summary.wall_ms > 0.0
          ? static_cast<double>(batch.summary.jobs) * 1000.0 /
                batch.summary.wall_ms
          : 0.0;
  const FabricArtifactCache::Stats cache_after = engine_->artifacts().stats();
  batch.summary.artifact_builds = cache_after.builds - cache_before.builds;
  batch.summary.artifact_hits = cache_after.hits - cache_before.hits;
  return batch;
}

std::string batch_record_json(const BatchJobRecord& record) {
  JsonWriter json;
  json.begin_object();
  json.field("name", record.name);
  if (!record.fabric.empty()) json.field("fabric", record.fabric);
  json.field("ok", record.ok);
  if (!record.ok) {
    json.field("error", record.error);
  }
  json.field("qubits", record.qubits);
  json.field("instructions", record.instructions);
  if (record.ok) {
    const MapResult& result = record.result;
    json.field("mapper", to_string(result.kind));
    json.field("latency_us", static_cast<long long>(result.latency));
    json.field("ideal_latency_us",
               static_cast<long long>(result.ideal_latency));
    json.field("routing_us",
               static_cast<long long>(result.stats.total_routing));
    json.field("congestion_us",
               static_cast<long long>(result.stats.total_congestion));
    json.field("moves", result.stats.moves);
    json.field("turns", result.stats.turns);
    json.field("placement_runs", result.placement_runs);
    json.field("wall_ms", result.cpu_ms);
    json.field("trial_cpu_ms", result.trial_cpu_ms);
    json.field("setup_ms", result.setup_ms);
    json.field("nodes_settled", result.stats.nodes_settled);
    if (result.negotiation.has_value()) {
      // Per-job PathFinder negotiation diagnostic (negotiation_report /
      // qspr_batch --report), bit-identical at any route_jobs.
      const NegotiationDiagnostics& n = *result.negotiation;
      json.key("negotiation").begin_object();
      json.field("nets", n.nets);
      json.field("iterations", n.iterations_used);
      json.field("converged", n.converged);
      json.field("overused_resources", n.overused_resources);
      json.field("max_overuse", n.max_overuse);
      json.field("total_excess", n.total_excess);
      json.field("min_feasible_excess", n.min_feasible_excess);
      json.field("searches", n.searches_performed);
      json.field("batch_delay_us", static_cast<long long>(n.total_delay));
      json.field("route_jobs", n.route_jobs);
      json.field("speculative_commits", n.speculative_commits);
      json.field("speculative_reroutes", n.speculative_reroutes);
      json.field("landmarks_used", n.landmarks_used);
      json.field("heuristic_weight", n.heuristic_weight);
      json.field("alt_refreshes", n.alt_refreshes);
      json.field("nodes_settled", n.nodes_settled);
      json.end_object();
    }
  }
  json.end_object();
  return json.str();
}

std::string batch_summary_json(const BatchSummary& summary) {
  JsonWriter json;
  json.begin_object();
  json.field("summary", true);
  json.field("jobs", summary.jobs);
  json.field("succeeded", summary.succeeded);
  json.field("failed", summary.failed);
  json.field("workers", summary.workers);
  json.field("wall_ms", summary.wall_ms);
  json.field("programs_per_sec", summary.programs_per_sec);
  json.field("trial_cpu_ms", summary.trial_cpu_ms);
  json.field("artifact_builds", summary.artifact_builds);
  json.field("artifact_hits", summary.artifact_hits);
  json.end_object();
  return json.str();
}

}  // namespace qspr
