// Wire protocol of the mapping daemon: newline-delimited JSON (one request
// or response per line) with hard byte budgets at every stage, so a
// misbehaving client can cost the daemon at most one bounded buffer.
//
//   requests   {"type":"map","id":"r1","qasm":"...","fabric":"paper",
//               "placer":"mc","m":8,"seed":1,"deadline_ms":5000}
//              {"type":"stats","id":"s1"}   {"type":"ping","id":"p1"}
//              {"type":"cancel","id":"c1","target":"r1"}
//              {"type":"health","id":"h1"}   (poll-loop-served liveness)
//              {"type":"session_open","id":"o1","fabric":"paper"}
//              {"type":"map","id":"r2","session":"s1","qasm":"..."}
//              {"type":"map","id":"r3","session":"s1","qasm_append":"..."}
//              {"type":"session_close","id":"c2","session":"s1"}
//   responses  {"id":"r1","ok":true,"latency_us":...,"result_fp":"..."}
//              {"id":"r1","ok":false,"code":"overloaded","retry_after_ms":50}
//              {"id":"o1","ok":true,"session":"s1"}
//
// Error codes a client can rely on: bad_request (malformed frame/request —
// fix before retrying), oversized (frame over the byte cap; the connection
// closes), overloaded (admission queue full — back off retry_after_ms, then
// retry), draining (daemon shutting down — retry against a healthy
// instance), deadline (per-request deadline expired), cancelled
// (client-initiated), map_failed (the mapping itself failed; the message
// carries the diagnostic), unknown_request (cancel target not in flight),
// unknown_session (session id not open on this server — reopen and resubmit),
// session_busy (one map in flight per session; wait for its reply),
// shard_down (qspr_shard only: the target shard's breaker is open or the
// request outlived its re-dispatch budget — back off retry_after_ms).
//
// The codec is pure data-plane: framing, parsing, response building. It
// holds no sockets and no engine, which is what makes the fault-injection
// tests able to drive it byte-by-byte.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/mapper.hpp"
#include "fabric/fabric.hpp"

namespace qspr {

/// Splits a byte stream into newline-delimited frames under a hard cap.
/// feed() never throws: complete frames land in `frames`, and a partial or
/// complete frame exceeding `max_frame_bytes` trips overflowed() — the
/// caller should error the connection, since resynchronisation inside an
/// attacker-sized frame is guesswork. CR before LF is stripped (telnet/CRLF
/// clients). Bounded memory: at most max_frame_bytes of partial frame is
/// ever buffered.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame_bytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends bytes; pushes every completed frame (newline stripped) onto
  /// `frames`. Returns false — permanently — once the cap is exceeded.
  bool feed(std::string_view bytes, std::vector<std::string>& frames);

  [[nodiscard]] bool overflowed() const { return overflowed_; }
  /// Bytes of the unterminated trailing frame (mid-message disconnect
  /// diagnostics).
  [[nodiscard]] std::size_t partial_bytes() const { return partial_.size(); }

 private:
  std::size_t max_frame_bytes_;
  std::string partial_;
  bool overflowed_ = false;
};

enum class RequestKind : std::uint8_t {
  Map,
  Stats,
  Ping,
  Cancel,
  Health,
  SessionOpen,
  SessionClose,
};

/// One parsed request frame. For Map, one of `qasm` (full program text) or —
/// inside a session — `qasm_append` (gates appended to the session's
/// circuit) is required; `fabric` is a server-side fabric spec ("" = server
/// default, "paper" = the built-in 45x85 fabric, anything else a fabric
/// drawing path) — the same field qspr_batch manifests use per record.
struct ServeRequest {
  RequestKind kind = RequestKind::Ping;
  std::string id;
  std::string qasm;
  std::string fabric;
  /// Map/SessionClose: the session this request addresses ("" = stateless).
  std::string session;
  /// Map-in-session edit form: QASM instruction lines appended to the
  /// session's current circuit (mutually exclusive with `qasm`).
  std::string qasm_append;
  std::string cancel_target;  // Cancel: the id of the in-flight map request
  /// Client-requested deadline for this request, measured from admission;
  /// 0 = server default.
  double deadline_ms = 0.0;
  /// Mapping options parsed from the request (mapper/placer/m/seed/
  /// route_jobs/report), applied over the server's defaults.
  MapperOptions options;
};

/// Limits the codec enforces on a single frame.
struct CodecLimits {
  std::size_t max_frame_bytes = 1 << 20;
  int max_json_depth = 16;
};

/// Parses one request frame. Throws qspr::Error (or ParseError) with a
/// client-presentable message on any malformed input: bad JSON, unknown
/// type, wrong field kinds, out-of-range numbers, depth/byte violations.
[[nodiscard]] ServeRequest parse_serve_request(std::string_view frame,
                                               const CodecLimits& limits,
                                               const MapperOptions& defaults);

/// Process-stable FNV-1a fingerprint of a MapResult's contractual fields
/// (latency, placements, trace). Two results are bit-identical exactly when
/// their fingerprints match, so a client can compare a served result
/// against a local map_program run without shipping the trace.
[[nodiscard]] std::string map_result_fingerprint(const MapResult& result);

/// Response builders; each returns one JSON line (no trailing newline).
/// `session` (when non-empty) echoes the session the mapping ran under; the
/// result line always carries warm_hits / nets_rerouted (0 / all-nets for a
/// cold mapping, see MapResult).
[[nodiscard]] std::string serve_result_json(const std::string& id,
                                            const MapResult& result,
                                            double queue_ms, double map_ms,
                                            const std::string& session = "");
/// session_open / session_close acks.
[[nodiscard]] std::string serve_session_json(const std::string& id,
                                             const std::string& session,
                                             bool open);
[[nodiscard]] std::string serve_error_json(const std::string& id,
                                           std::string_view code,
                                           std::string_view message,
                                           int retry_after_ms = 0);
[[nodiscard]] std::string serve_pong_json(const std::string& id);
/// The `{"type":"health"}` liveness reply: always answered from the poll
/// loop (never queued), so it stays truthful when the admission queue is
/// full or the mappers are wedged — which is exactly when a supervisor
/// needs it. shard_id < 0 means "not launched by a supervisor" and omits
/// the field.
[[nodiscard]] std::string serve_health_json(const std::string& id,
                                            bool draining, double uptime_ms,
                                            int shard_id, int queue_depth,
                                            int in_flight);
[[nodiscard]] std::string serve_cancel_ack_json(const std::string& id,
                                                const std::string& target,
                                                bool found);

/// Thread-safe fabric resolver shared by qspr_serve and qspr_batch: maps a
/// fabric spec ("" / "paper" -> the built-in paper fabric, otherwise a
/// fabric drawing path) to a shared parsed Fabric, caching by spec so a
/// thousand requests against one drawing parse it once. Parse failures
/// throw qspr::Error and are NOT cached (a fixed file works on retry).
class FabricSource {
 public:
  std::shared_ptr<const Fabric> get(const std::string& spec);

 private:
  std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const Fabric>> cache_;
};

}  // namespace qspr
