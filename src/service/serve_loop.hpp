// MappingServer: the fault-tolerant daemon around one shared MappingEngine.
//
// Threading model: one poll-loop thread (serve()) owns every socket and all
// connection state; `mapper_threads` workers pop admitted tickets from the
// AdmissionQueue, run the engine, and hand the finished reply back through a
// completion queue + self-pipe wake. No connection state is ever touched off
// the poll thread, so per-connection fault handling needs no locks.
//
// Robustness contract (what the fault-injection suite asserts):
//   * a malformed frame costs its connection one bad_request reply, nothing
//     else; an oversized frame ends only that connection;
//   * a client that disconnects mid-message or mid-map fails only itself —
//     its in-flight jobs are cancelled and their replies dropped;
//   * a slow reader is bounded by max_outbox_bytes, then disconnected;
//   * overload is explicit: when the admission queue is full a map request
//     is rejected immediately with `overloaded` + retry_after_ms, never
//     buffered — backpressure instead of unbounded memory;
//   * every queue slot is released on every exit path (completion, failure,
//     cancel, deadline, disconnect, drain);
//   * request_drain() (SIGTERM) stops accepting, answers queued and
//     in-flight work — cancelling whatever is still running once the drain
//     deadline lapses — flushes replies, and serve() returns 0.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/net.hpp"
#include "core/engine.hpp"
#include "service/admission.hpp"
#include "service/request_codec.hpp"

namespace qspr {

struct ServeOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = kernel-assigned; read back via port()
  /// Executor workers inside the shared engine (trial parallelism).
  int workers = 1;
  /// Threads mapping admitted requests concurrently (request parallelism).
  int mapper_threads = 2;
  /// Admission queue depth; a full queue rejects with `overloaded`.
  int max_queue = 16;
  int max_connections = 64;
  std::size_t max_frame_bytes = 1 << 20;
  /// Per-connection reply buffer bound; a reader slower than this is cut.
  std::size_t max_outbox_bytes = 4u << 20;
  /// Floor of the back-off hint carried in `overloaded` replies. The hint
  /// itself is adaptive: an EWMA of recent per-request mapping cost times
  /// the queue depth ahead of the shed request (see RetryAfterEstimator),
  /// clamped to [retry_after_ms, retry_after_ceiling_ms]. With no completed
  /// requests observed yet the floor is the hint, which is exactly the old
  /// fixed-constant behaviour.
  int retry_after_ms = 50;
  int retry_after_ceiling_ms = 2000;
  /// Shard index stamped into health/stats replies when this daemon was
  /// launched by qspr_shard (-1 = standalone, field omitted).
  int shard_id = -1;
  /// How long a drain waits for queued + in-flight work before cancelling
  /// it; the daemon still exits cleanly either way.
  double drain_deadline_ms = 2000.0;
  /// Server-side deadline applied to requests that carry none (0 = none).
  double default_deadline_ms = 0.0;
  /// Fabric spec used when a request names none ("" = paper fabric).
  std::string default_fabric;
  MapperOptions default_options;
  /// Combined memory budget for the engine's fabric-artifact and
  /// program-result caches (split evenly; 0 = unlimited). Surfaced on the
  /// qspr_serve CLI as --cache-budget-mb; evictions show up in `stats`.
  std::size_t cache_budget_bytes = 0;
  /// Test hook: when set, admitted maps block at the gate before mapping
  /// (see MapStartGate). Never set in production.
  std::shared_ptr<MapStartGate> map_start_gate;
};

class MappingServer {
 public:
  explicit MappingServer(ServeOptions options);
  ~MappingServer();

  MappingServer(const MappingServer&) = delete;
  MappingServer& operator=(const MappingServer&) = delete;

  /// Binds the listener and spawns the mapper threads. Throws qspr::Error
  /// when the address cannot be bound.
  void start();

  /// The bound port (after start(); resolves port 0 to the real one).
  [[nodiscard]] int port() const;

  /// Requests a graceful drain. Async-signal-safe by construction (one
  /// atomic store + one pipe write), so a SIGTERM handler may call it.
  void request_drain();

  /// Runs the poll loop until a drain completes. Returns the process exit
  /// code: 0 on a clean drain (even if the deadline forced cancellations).
  int serve();

  [[nodiscard]] ServeMetrics::Snapshot metrics() const;

 private:
  struct Connection;
  struct Completion {
    std::uint64_t connection = 0;
    std::string request_id;
    std::string line;
    /// Session whose map this completes (busy flag cleared on delivery even
    /// when the client connection is already gone).
    std::shared_ptr<ServeSession> session;
  };

  void mapper_loop();
  std::string process_ticket(ServeTicket& ticket);

  void accept_clients();
  void observe_drain();
  void read_from(Connection& conn);
  void handle_frame(Connection& conn, std::string_view frame);
  void handle_map(Connection& conn, ServeRequest&& request);
  void handle_session_open(Connection& conn, const ServeRequest& request);
  void handle_session_close(Connection& conn, const ServeRequest& request);
  void enqueue_reply(Connection& conn, std::string line);
  void flush_outbox(Connection& conn);
  void deliver_completions();
  void destroy_connection(std::uint64_t id);
  [[nodiscard]] std::string stats_json(const std::string& id);
  [[nodiscard]] bool quiescent();
  [[nodiscard]] int retry_hint_ms() const;
  [[nodiscard]] double uptime_ms() const;

  ServeOptions options_;
  CodecLimits codec_limits_;
  MappingEngine engine_;
  FabricSource fabrics_;
  AdmissionQueue queue_;
  ServeMetrics metrics_;
  RetryAfterEstimator retry_estimator_;
  std::chrono::steady_clock::time_point started_at_{};
  WakePipe wake_;
  ListenSocket listen_;
  std::vector<std::thread> mappers_;
  bool started_ = false;

  std::mutex completions_mutex_;
  std::deque<Completion> completions_;

  std::atomic<bool> drain_requested_{false};
  bool draining_ = false;
  bool drain_cancelled_ = false;
  std::chrono::steady_clock::time_point drain_deadline_{};

  std::uint64_t next_connection_id_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> connections_;

  // Sessions are server-scoped (they survive their opener's disconnect and
  // die with the process — a drain drops them; see docs/serve.md) and
  // poll-thread-owned like the connections.
  std::uint64_t next_session_id_ = 1;
  std::unordered_map<std::string, std::shared_ptr<ServeSession>> sessions_;
};

}  // namespace qspr
