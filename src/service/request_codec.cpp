#include "service/request_codec.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/json.hpp"
#include "fabric/quale_fabric.hpp"
#include "fabric/text_io.hpp"

namespace qspr {

bool FrameReader::feed(std::string_view bytes,
                       std::vector<std::string>& frames) {
  if (overflowed_) return false;
  std::size_t at = 0;
  while (at < bytes.size()) {
    const std::size_t newline = bytes.find('\n', at);
    if (newline == std::string_view::npos) {
      partial_.append(bytes.substr(at));
      break;
    }
    partial_.append(bytes.substr(at, newline - at));
    at = newline + 1;
    // Strip the CR *before* the cap check: the cap bounds the logical frame,
    // and a CRLF client whose frame is exactly max_frame_bytes is within it.
    if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
    if (partial_.size() > max_frame_bytes_) {
      overflowed_ = true;
      return false;
    }
    frames.push_back(std::move(partial_));
    partial_.clear();
  }
  // The unterminated tail may still end in a CR whose LF is in the next
  // read; that CR is framing, not payload, so it doesn't count toward the
  // cap either.
  const std::size_t pending =
      (!partial_.empty() && partial_.back() == '\r') ? partial_.size() - 1
                                                     : partial_.size();
  if (pending > max_frame_bytes_) {
    overflowed_ = true;
    return false;
  }
  return true;
}

namespace {

/// Typed field extraction with client-presentable diagnostics.
std::string string_field(const JsonValue& object, std::string_view key,
                         bool required) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) {
    if (required) {
      throw Error("request is missing required field '" + std::string(key) +
                  "'");
    }
    return {};
  }
  if (value->kind() != JsonValue::Kind::String) {
    throw Error("request field '" + std::string(key) + "' must be a string");
  }
  return value->as_string();
}

double number_field(const JsonValue& object, std::string_view key,
                    double fallback, double min, double max) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) return fallback;
  if (value->kind() != JsonValue::Kind::Number) {
    throw Error("request field '" + std::string(key) + "' must be a number");
  }
  const double number = value->as_number();
  if (number < min || number > max) {
    throw Error("request field '" + std::string(key) + "' out of range");
  }
  return number;
}

}  // namespace

ServeRequest parse_serve_request(std::string_view frame,
                                 const CodecLimits& limits,
                                 const MapperOptions& defaults) {
  JsonLimits json_limits;
  json_limits.max_bytes = limits.max_frame_bytes;
  json_limits.max_depth = limits.max_json_depth;
  JsonValue root;
  try {
    root = parse_json(frame, json_limits);
  } catch (const std::exception& e) {
    throw Error(std::string("malformed request frame: ") + e.what());
  }
  if (!root.is_object()) throw Error("request frame must be a JSON object");

  ServeRequest request;
  request.id = string_field(root, "id", /*required=*/false);
  request.options = defaults;
  const std::string type = string_field(root, "type", /*required=*/true);
  if (type == "ping") {
    request.kind = RequestKind::Ping;
    return request;
  }
  if (type == "stats") {
    request.kind = RequestKind::Stats;
    return request;
  }
  if (type == "health") {
    request.kind = RequestKind::Health;
    return request;
  }
  if (type == "cancel") {
    request.kind = RequestKind::Cancel;
    request.cancel_target = string_field(root, "target", /*required=*/true);
    return request;
  }
  if (type == "session_open") {
    request.kind = RequestKind::SessionOpen;
    if (request.id.empty()) {
      throw Error("session_open needs a non-empty 'id' to address the reply");
    }
    request.fabric = string_field(root, "fabric", /*required=*/false);
    return request;
  }
  if (type == "session_close") {
    request.kind = RequestKind::SessionClose;
    if (request.id.empty()) {
      throw Error("session_close needs a non-empty 'id' to address the reply");
    }
    request.session = string_field(root, "session", /*required=*/true);
    return request;
  }
  if (type != "map") throw Error("unknown request type: " + type);

  request.kind = RequestKind::Map;
  if (request.id.empty()) {
    throw Error("map requests need a non-empty 'id' to address the reply");
  }
  request.session = string_field(root, "session", /*required=*/false);
  request.qasm = string_field(root, "qasm", /*required=*/false);
  request.qasm_append = string_field(root, "qasm_append", /*required=*/false);
  if (!request.qasm_append.empty() && request.session.empty()) {
    throw Error("'qasm_append' needs a 'session' to append to");
  }
  if (!request.qasm.empty() && !request.qasm_append.empty()) {
    throw Error("use either 'qasm' (replace) or 'qasm_append' (edit), "
                "not both");
  }
  if (request.qasm.empty() && request.qasm_append.empty()) {
    throw Error("request field 'qasm' is empty");
  }
  request.fabric = string_field(root, "fabric", /*required=*/false);
  request.deadline_ms =
      number_field(root, "deadline_ms", 0.0, 0.0, 86'400'000.0);

  const std::string mapper = string_field(root, "mapper", /*required=*/false);
  if (!mapper.empty()) {
    const auto kind = mapper_kind_from_name(mapper);
    if (!kind.has_value()) throw Error("unknown mapper: " + mapper);
    request.options.kind = *kind;
  }
  const std::string placer = string_field(root, "placer", /*required=*/false);
  if (!placer.empty()) {
    const auto kind = placer_kind_from_name(placer);
    if (!kind.has_value()) throw Error("unknown placer: " + placer);
    request.options.placer = *kind;
  }
  // "m": 0 means "use the service default", matching the documented
  // absent-field semantics (the range floor admits it; only m > 0 applies).
  const double m = number_field(root, "m", 0.0, 0.0, 1e6);
  if (m > 0.0) {
    request.options.mvfb_seeds = static_cast<int>(m);
    request.options.monte_carlo_trials = static_cast<int>(m);
  }
  const JsonValue* seed = root.find("seed");
  if (seed != nullptr) {
    // The JSON reader is double-typed: integers above 2^53 would round
    // silently, so seeds are clamped there instead (documented in
    // docs/serve.md). Every value up to 2^53 round-trips exactly.
    constexpr double kSeedMax = 9007199254740992.0;  // 2^53
    const double value = number_field(root, "seed", 0.0, 0.0, 1e18);
    request.options.rng_seed =
        static_cast<std::uint64_t>(value > kSeedMax ? kSeedMax : value);
  }
  // Search-quality knobs of the negotiation diagnostic (absent = the
  // service defaults): ALT landmark count and the bounded-suboptimality
  // weight (1.0 keeps the exact search).
  if (root.find("landmarks") != nullptr) {
    request.options.route_landmarks = static_cast<int>(
        number_field(root, "landmarks", 0.0, 0.0, 1024.0));
  }
  request.options.route_heuristic_weight =
      number_field(root, "heuristic_weight",
                   request.options.route_heuristic_weight, 1.0, 16.0);
  return request;
}

std::string map_result_fingerprint(const MapResult& result) {
  // FNV-1a 64: process-stable (unlike std::hash), so a client in another
  // process can reproduce it from its own map_program run.
  std::uint64_t hash = 1469598103934665603ull;
  const auto mix_bytes = [&hash](const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash ^= bytes[i];
      hash *= 1099511628211ull;
    }
  };
  const auto mix_i64 = [&](long long v) { mix_bytes(&v, sizeof(v)); };
  const auto mix_placement = [&](const Placement& placement) {
    mix_i64(static_cast<long long>(placement.qubit_count()));
    for (std::size_t q = 0; q < placement.qubit_count(); ++q) {
      mix_i64(placement.trap_of(QubitId::from_index(q)).value());
    }
  };
  mix_i64(static_cast<long long>(result.latency));
  mix_i64(static_cast<long long>(result.ideal_latency));
  mix_i64(result.placement_runs);
  mix_placement(result.initial_placement);
  mix_placement(result.final_placement);
  const std::string trace = result.trace.to_string();
  mix_bytes(trace.data(), trace.size());

  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[hash & 0xf];
    hash >>= 4;
  }
  return out;
}

std::string serve_result_json(const std::string& id, const MapResult& result,
                              double queue_ms, double map_ms,
                              const std::string& session) {
  JsonWriter json;
  json.begin_object();
  json.field("id", id);
  json.field("ok", true);
  if (!session.empty()) json.field("session", session);
  json.field("mapper", to_string(result.kind));
  json.field("latency_us", static_cast<long long>(result.latency));
  json.field("ideal_latency_us", static_cast<long long>(result.ideal_latency));
  json.field("routing_us", static_cast<long long>(result.stats.total_routing));
  json.field("congestion_us",
             static_cast<long long>(result.stats.total_congestion));
  json.field("moves", result.stats.moves);
  json.field("turns", result.stats.turns);
  json.field("placement_runs", result.placement_runs);
  json.field("trial_cpu_ms", result.trial_cpu_ms);
  json.field("setup_ms", result.setup_ms);
  json.field("nodes_settled", result.stats.nodes_settled);
  json.field("queue_ms", queue_ms);
  json.field("map_ms", map_ms);
  json.field("warm_hits", result.warm_hits);
  json.field("nets_rerouted", result.nets_rerouted);
  json.field("result_fp", map_result_fingerprint(result));
  json.end_object();
  return json.str();
}

std::string serve_session_json(const std::string& id,
                               const std::string& session, bool open) {
  JsonWriter json;
  json.begin_object();
  json.field("id", id);
  json.field("ok", true);
  json.field("session", session);
  json.field("open", open);
  json.end_object();
  return json.str();
}

std::string serve_error_json(const std::string& id, std::string_view code,
                             std::string_view message, int retry_after_ms) {
  JsonWriter json;
  json.begin_object();
  json.field("id", id);
  json.field("ok", false);
  json.field("code", std::string(code));
  json.field("error", std::string(message));
  if (retry_after_ms > 0) json.field("retry_after_ms", retry_after_ms);
  json.end_object();
  return json.str();
}

std::string serve_pong_json(const std::string& id) {
  JsonWriter json;
  json.begin_object();
  json.field("id", id);
  json.field("ok", true);
  json.field("pong", true);
  json.end_object();
  return json.str();
}

std::string serve_health_json(const std::string& id, bool draining,
                              double uptime_ms, int shard_id, int queue_depth,
                              int in_flight) {
  JsonWriter json;
  json.begin_object();
  json.field("id", id);
  json.field("ok", true);
  json.field("health", draining ? "draining" : "ok");
  json.field("uptime_ms", uptime_ms);
  if (shard_id >= 0) json.field("shard_id", shard_id);
  json.field("queue_depth", queue_depth);
  json.field("in_flight", in_flight);
  json.end_object();
  return json.str();
}

std::string serve_cancel_ack_json(const std::string& id,
                                  const std::string& target, bool found) {
  JsonWriter json;
  json.begin_object();
  json.field("id", id);
  json.field("ok", found);
  if (!found) {
    json.field("code", "unknown_request");
    json.field("error", "cancel target not in flight: " + target);
  }
  json.field("target", target);
  json.end_object();
  return json.str();
}

std::shared_ptr<const Fabric> FabricSource::get(const std::string& spec) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto hit = cache_.find(spec);
  if (hit != cache_.end()) return hit->second;
  // Parsing under the lock serialises concurrent first sights of one spec —
  // acceptable: it happens once per distinct fabric for the process life.
  std::shared_ptr<const Fabric> fabric;
  if (spec.empty() || spec == "paper") {
    fabric = std::make_shared<const Fabric>(make_paper_fabric());
  } else {
    fabric = std::make_shared<const Fabric>(parse_fabric_file(spec));
  }
  cache_.emplace(spec, fabric);
  return fabric;
}

}  // namespace qspr
