// The mixed-size batch corpus: one definition shared by the
// batch_throughput bench suite, the batch_corpus example (which writes it
// to .qasm files for qspr_batch), and the CI fault-isolation smoke — so
// "the bench corpus" and "the smoke corpus" stay the same workload.
#pragma once

#include <vector>

#include "circuit/program.hpp"

namespace qspr {

/// Deterministic mixed-size programs: QECC encoders plus named random
/// circuits. `full` adds the larger members (Q9/Q14 encoders, the 12-qubit
/// random circuit); the small set is what smoke runs use.
[[nodiscard]] std::vector<Program> make_batch_corpus(bool full);

}  // namespace qspr
