// The mixed-size batch corpus: one definition shared by the
// batch_throughput bench suite, the batch_corpus example (which writes it
// to .qasm files for qspr_batch), and the CI fault-isolation smoke — so
// "the bench corpus" and "the smoke corpus" stay the same workload.
#pragma once

#include <string>
#include <vector>

#include "circuit/program.hpp"

namespace qspr {

/// Deterministic mixed-size programs: QECC encoders plus named random
/// circuits. `full` adds the larger members (Q9/Q14 encoders, the 12-qubit
/// random circuit); the small set is what smoke runs use.
[[nodiscard]] std::vector<Program> make_batch_corpus(bool full);

/// One intentionally-broken QASM input: `text` must make parse_qasm throw a
/// clean Error (never crash, never parse). `reason` names what is wrong.
struct BrokenQasm {
  std::string name;
  std::string reason;
  std::string text;
};

/// The shared broken-file corpus: malformed, truncated and
/// torture-formatted QASM inputs. Driven by the parser-robustness tests in
/// tests/qasm_test.cpp and by the batch fault-isolation smoke (the
/// batch_corpus example writes the first member as broken.qasm).
[[nodiscard]] const std::vector<BrokenQasm>& broken_qasm_corpus();

}  // namespace qspr
