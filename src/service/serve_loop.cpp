#include "service/serve_loop.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/json.hpp"
#include "qasm/parser.hpp"

namespace qspr {

namespace {

double ms_between(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

RetryEstimatorOptions retry_options(const ServeOptions& options) {
  RetryEstimatorOptions opts;
  opts.floor_ms = options.retry_after_ms;
  // The floor is authoritative: a ceiling configured below it would make
  // the estimator unconstructible, so lift it instead of throwing.
  opts.ceiling_ms = std::max(options.retry_after_ceiling_ms, options.retry_after_ms);
  return opts;
}

}  // namespace

/// Poll-thread-only connection state. `pending` maps an in-flight map
/// request id to its ticket, which is where client cancels and disconnect /
/// drain cancellation find the CancelSource to fire.
struct MappingServer::Connection {
  Connection(std::uint64_t id_in, FileDescriptor fd_in,
             std::size_t max_frame_bytes)
      : id(id_in), fd(std::move(fd_in)), reader(max_frame_bytes) {}

  std::uint64_t id;
  FileDescriptor fd;
  FrameReader reader;
  std::string outbox;
  std::size_t outbox_at = 0;
  bool read_closed = false;       // orderly EOF: no more requests
  bool close_after_flush = false; // closed for cause once the outbox drains
  bool broken = false;            // destroy immediately, drop the outbox
  std::unordered_map<std::string, std::shared_ptr<ServeTicket>> pending;

  [[nodiscard]] bool outbox_empty() const { return outbox_at >= outbox.size(); }
};

MappingServer::MappingServer(ServeOptions options)
    : options_(std::move(options)),
      engine_(options_.workers),
      queue_(options_.max_queue),
      retry_estimator_(retry_options(options_)),
      started_at_(std::chrono::steady_clock::now()) {
  require(options_.mapper_threads >= 1, "qspr_serve needs >= 1 mapper thread");
  require(options_.max_connections >= 1, "qspr_serve needs >= 1 connection");
  codec_limits_.max_frame_bytes = options_.max_frame_bytes;
  engine_.set_cache_budget_bytes(options_.cache_budget_bytes);
}

MappingServer::~MappingServer() {
  // serve() normally joins the mappers; cover construction-only lifetimes
  // (tests that start() then throw) so threads never outlive the object.
  queue_.close();
  for (std::thread& thread : mappers_) {
    if (thread.joinable()) thread.join();
  }
}

void MappingServer::start() {
  require(!started_, "start() called twice");
  listen_ = ListenSocket(options_.host, options_.port);
  mappers_.reserve(static_cast<std::size_t>(options_.mapper_threads));
  for (int i = 0; i < options_.mapper_threads; ++i) {
    mappers_.emplace_back([this] { mapper_loop(); });
  }
  started_ = true;
}

int MappingServer::port() const { return listen_.port(); }

ServeMetrics::Snapshot MappingServer::metrics() const {
  return metrics_.snapshot();
}

void MappingServer::request_drain() {
  drain_requested_.store(true, std::memory_order_relaxed);
  wake_.notify();
}

// Observes a drain request (SIGTERM or API): stop accepting, stop
// admitting, arm the drain deadline. Checked at the top of every poll
// iteration, immediately after poll() returns, AND before every frame is
// handled. The per-frame check matters: read_from() drains a socket until
// WouldBlock and replies flush opportunistically, so a fast client can
// complete a full round-trip and send another frame inside one read loop —
// that frame must still see the drain a supervisor requested in between,
// or "request_drain() happens-before anything a client sends after calling
// it" silently stops being true.
void MappingServer::observe_drain() {
  if (!draining_ && drain_requested_.load(std::memory_order_relaxed)) {
    draining_ = true;
    listen_.close();
    queue_.begin_drain();
    drain_deadline_ =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(
            static_cast<long long>(options_.drain_deadline_ms * 1000.0));
  }
}

// ---------------------------------------------------------------------------
// Mapper threads: ticket -> reply line.

void MappingServer::mapper_loop() {
  while (std::shared_ptr<ServeTicket> ticket = queue_.pop()) {
    metrics_.enter_flight();
    std::string line = process_ticket(*ticket);
    metrics_.leave_flight();
    {
      const std::lock_guard<std::mutex> lock(completions_mutex_);
      completions_.push_back({ticket->connection, ticket->request.id,
                              std::move(line), ticket->session});
    }
    wake_.notify();
  }
}

std::string MappingServer::process_ticket(ServeTicket& ticket) {
  const auto started = std::chrono::steady_clock::now();
  const double queue_ms = ms_between(ticket.admitted_at, started);
  const std::string& id = ticket.request.id;
  const CancelToken token = ticket.cancel.token();

  // Test hook: hold the job at "running, not yet mapping" until the gate
  // opens or the ticket is cancelled. No-op in production (gate unset).
  if (options_.map_start_gate) options_.map_start_gate->wait(token);

  // A ticket cancelled or expired while queued (or while gated) releases
  // its slot without ever touching the engine.
  switch (token.reason()) {
    case CancelReason::Cancelled:
      metrics_.count_cancelled();
      return serve_error_json(id, "cancelled",
                              "request cancelled before mapping started");
    case CancelReason::DeadlineExpired:
      metrics_.count_expired();
      return serve_error_json(id, "deadline",
                              "deadline expired while queued");
    case CancelReason::None:
      break;
  }

  try {
    const Program program = parse_qasm(ticket.request.qasm, id);
    const std::shared_ptr<const Fabric> fabric =
        fabrics_.get(ticket.request.fabric);
    ServeSession* session = ticket.session.get();
    const std::string session_name = session != nullptr ? session->name : "";

    // Session fast path: an exact resubmission (same circuit, fabric,
    // options) is served straight from the program-level result cache —
    // no placement, no routing. Stateless maps never consult the cache, so
    // their behaviour (and memory profile) is unchanged.
    if (session != nullptr) {
      const ResultCache::Key key =
          MappingEngine::result_key(program, *fabric, ticket.request.options);
      if (std::shared_ptr<const CachedMapResult> cached =
              engine_.results().find(key)) {
        MapResult result = cached->result;
        result.warm_hits = static_cast<int>(cached->nets.size());
        result.nets_rerouted = 0;
        session->qasm = ticket.request.qasm;
        session->prior = cached;
        const double map_ms =
            ms_between(started, std::chrono::steady_clock::now());
        metrics_.count_completed();
        retry_estimator_.observe_request_ms(map_ms);
        return serve_result_json(id, result, queue_ms, map_ms, session_name);
      }
    }

    MapJob job;
    job.program = &program;
    job.fabric = fabric.get();
    job.options = ticket.request.options;
    job.name = id;
    job.cancel = token;
    if (session != nullptr) {
      job.warm = session->prior;
      job.cache_result = true;
    }
    MapResult result = engine_.finish(engine_.begin(job));
    if (session != nullptr) {
      // Remember the circuit and (when the negotiation converged) the
      // cached prior the next edit warms from. finish() inserted it under
      // the same key this thread computes.
      session->qasm = ticket.request.qasm;
      session->prior = engine_.results().find(
          MappingEngine::result_key(program, *fabric, job.options));
    }
    const double map_ms =
        ms_between(started, std::chrono::steady_clock::now());
    metrics_.count_completed();
    metrics_.record_trial_cpu_ms(result.trial_cpu_ms);
    metrics_.record_map_work(result.setup_ms, result.stats.nodes_settled);
    retry_estimator_.observe_request_ms(map_ms);
    return serve_result_json(id, result, queue_ms, map_ms, session_name);
  } catch (const CancelledError& e) {
    // Cancelled mid-mapping: the thread was still occupied for that long,
    // so the sample belongs in the drain-rate estimate.
    retry_estimator_.observe_request_ms(
        ms_between(started, std::chrono::steady_clock::now()));
    if (e.reason() == CancelReason::DeadlineExpired) {
      metrics_.count_expired();
      return serve_error_json(id, "deadline", "deadline expired during mapping");
    }
    metrics_.count_cancelled();
    return serve_error_json(id, "cancelled", "request cancelled");
  } catch (const std::exception& e) {
    // QASM parse errors, unknown fabric specs, infeasible placements: the
    // request was well-formed but the mapping failed. The connection
    // survives; the diagnostic rides the reply.
    retry_estimator_.observe_request_ms(
        ms_between(started, std::chrono::steady_clock::now()));
    metrics_.count_failed();
    return serve_error_json(id, "map_failed", e.what());
  }
}

// ---------------------------------------------------------------------------
// Poll loop.

int MappingServer::serve() {
  require(started_, "serve() needs start()");

  std::vector<PollEntry> entries;
  std::vector<std::uint64_t> entry_conn;
  std::vector<std::uint64_t> scratch_ids;

  // Reap: broken connections immediately; for-cause closes and orderly
  // EOFs once their replies are flushed (EOF additionally waits for
  // in-flight requests, so shutdown(SHUT_WR) clients still get answers).
  // Must run after anything that can change reapability — connection I/O
  // and completion delivery — and always before the next poll(), because a
  // reapable connection wants no events and would never wake it.
  const auto reap = [&] {
    scratch_ids.clear();
    for (const auto& [id, conn] : connections_) {
      const bool flushed = conn->outbox_empty();
      if (conn->broken || (conn->close_after_flush && flushed) ||
          (conn->read_closed && flushed && conn->pending.empty())) {
        scratch_ids.push_back(id);
      }
    }
    for (const std::uint64_t id : scratch_ids) destroy_connection(id);
  };

  while (true) {
    observe_drain();
    // Past the drain deadline, cancel whatever is still queued or running;
    // every ticket still produces a reply (cancelled), so slots drain.
    if (draining_ && !drain_cancelled_ &&
        std::chrono::steady_clock::now() >= drain_deadline_) {
      drain_cancelled_ = true;
      queue_.cancel_queued();
      for (auto& [id, conn] : connections_) {
        for (auto& [rid, ticket] : conn->pending) ticket->cancel.request_cancel();
      }
    }

    deliver_completions();
    reap();

    if (draining_ && quiescent()) break;

    // Build this round's poll set.
    entries.clear();
    entry_conn.clear();
    entries.push_back({wake_.read_fd(), /*want_read=*/true});
    entry_conn.push_back(0);
    if (listen_.valid()) {
      entries.push_back({listen_.fd(), /*want_read=*/true});
      entry_conn.push_back(0);
    }
    const std::size_t first_conn_entry = entries.size();
    for (const auto& [id, conn] : connections_) {
      PollEntry entry;
      entry.fd = conn->fd.get();
      entry.want_read = !conn->read_closed && !conn->close_after_flush;
      entry.want_write = !conn->outbox_empty();
      entries.push_back(entry);
      entry_conn.push_back(id);
    }

    int timeout_ms = -1;
    if (draining_ && !drain_cancelled_) {
      const double remaining = ms_between(std::chrono::steady_clock::now(),
                                          drain_deadline_);
      timeout_ms = std::max(0, static_cast<int>(remaining) + 1);
    }
    poll_fds(entries, timeout_ms);
    observe_drain();

    if (entries[0].readable) wake_.drain();
    if (listen_.valid() && entries.size() > 1 && entries[1].readable) {
      accept_clients();
    }

    // Connection I/O. Work over a snapshot of ids: handlers may destroy.
    for (std::size_t i = first_conn_entry; i < entries.size(); ++i) {
      const std::uint64_t id = entry_conn[i];
      const auto it = connections_.find(id);
      if (it == connections_.end()) continue;
      Connection& conn = *it->second;
      if (entries[i].broken) {
        conn.broken = true;
        continue;
      }
      if (entries[i].readable) read_from(conn);
      if (entries[i].writable && !conn.outbox_empty()) flush_outbox(conn);
    }

    reap();
  }

  // Drained: stop the mappers (the queue is already empty — quiescent()
  // saw depth 0 and in-flight 0), flush what the loop produced, exit clean.
  queue_.close();
  for (std::thread& thread : mappers_) thread.join();
  connections_.clear();
  return 0;
}

bool MappingServer::quiescent() {
  if (queue_.depth() != 0) return false;
  if (metrics_.snapshot().in_flight != 0) return false;
  {
    const std::lock_guard<std::mutex> lock(completions_mutex_);
    if (!completions_.empty()) return false;
  }
  for (const auto& [id, conn] : connections_) {
    if (conn->broken) continue;  // dropped regardless
    if (!conn->pending.empty() || !conn->outbox_empty()) return false;
  }
  return true;
}

void MappingServer::accept_clients() {
  while (true) {
    FileDescriptor client = listen_.accept_client();
    if (!client.valid()) return;
    if (static_cast<int>(connections_.size()) >= options_.max_connections) {
      // Best-effort refusal; the daemon sheds connections, never queues them.
      const std::string refusal =
          serve_error_json("", "overloaded", "connection limit reached",
                           retry_hint_ms()) +
          "\n";
      (void)write_some(client.get(), refusal);
      metrics_.count_connection_failed();
      continue;
    }
    const std::uint64_t id = next_connection_id_++;
    connections_.emplace(
        id, std::make_unique<Connection>(id, std::move(client),
                                         options_.max_frame_bytes));
    metrics_.count_connection_opened();
  }
}

void MappingServer::read_from(Connection& conn) {
  char buffer[16384];
  std::vector<std::string> frames;
  while (!conn.close_after_flush && !conn.broken) {
    const IoResult io = read_some(conn.fd.get(), buffer, sizeof buffer);
    if (io.status == IoStatus::WouldBlock) return;
    if (io.status == IoStatus::Closed) {
      // Orderly EOF. A non-empty partial frame is a mid-message disconnect:
      // the truncated request is dropped (never half-parsed), and only this
      // connection winds down.
      conn.read_closed = true;
      return;
    }
    if (io.status == IoStatus::Error) {
      conn.broken = true;
      metrics_.count_connection_failed();
      return;
    }
    frames.clear();
    if (!conn.reader.feed(std::string_view(buffer, io.bytes), frames)) {
      // Frame over the byte cap: resynchronising inside it is guesswork, so
      // answer once and close. Frames completed before the overflow still
      // get handled below.
      metrics_.count_bad_request();
      enqueue_reply(conn,
                    serve_error_json("", "oversized",
                                     "frame exceeds max_frame_bytes; closing"));
      conn.close_after_flush = true;
    }
    for (const std::string& frame : frames) {
      if (frame.empty()) continue;  // blank keep-alive lines are free
      handle_frame(conn, frame);
      if (conn.close_after_flush || conn.broken) break;
    }
  }
}

void MappingServer::handle_frame(Connection& conn, std::string_view frame) {
  observe_drain();
  ServeRequest request;
  try {
    request = parse_serve_request(frame, codec_limits_,
                                  options_.default_options);
  } catch (const std::exception& e) {
    // One malformed frame costs one reply; the connection (and every other
    // client) is untouched.
    metrics_.count_bad_request();
    enqueue_reply(conn, serve_error_json("", "bad_request", e.what()));
    return;
  }
  switch (request.kind) {
    case RequestKind::Ping:
      enqueue_reply(conn, serve_pong_json(request.id));
      return;
    case RequestKind::Stats:
      enqueue_reply(conn, stats_json(request.id));
      return;
    case RequestKind::Health:
      // Served here on the poll thread, never through the admission queue:
      // a supervisor probing liveness must get an answer precisely when the
      // queue is full or the mappers are wedged.
      metrics_.count_health_probe();
      enqueue_reply(conn, serve_health_json(request.id, draining_, uptime_ms(),
                                            options_.shard_id, queue_.depth(),
                                            metrics_.snapshot().in_flight));
      return;
    case RequestKind::Cancel: {
      const auto it = conn.pending.find(request.cancel_target);
      const bool found = it != conn.pending.end();
      // Fire-and-ack: the cancelled request still produces its own
      // `cancelled` reply when its ticket surfaces from the queue/engine.
      if (found) it->second->cancel.request_cancel();
      enqueue_reply(conn,
                    serve_cancel_ack_json(request.id, request.cancel_target,
                                          found));
      return;
    }
    case RequestKind::SessionOpen:
      handle_session_open(conn, request);
      return;
    case RequestKind::SessionClose:
      handle_session_close(conn, request);
      return;
    case RequestKind::Map:
      handle_map(conn, std::move(request));
      return;
  }
}

void MappingServer::handle_session_open(Connection& conn,
                                        const ServeRequest& request) {
  // Poll-thread-served, no queue slot: opening a session allocates a few
  // hundred bytes of registry state, not mapping work. A draining daemon
  // refuses — its sessions die with the process anyway.
  if (draining_) {
    enqueue_reply(conn, serve_error_json(request.id, "draining",
                                         "daemon is draining; open the "
                                         "session against a healthy instance"));
    return;
  }
  auto session = std::make_shared<ServeSession>();
  // Sharded workers prefix the shard index ("s2.7") so session names are
  // unique across a qspr_shard fleet — the supervisor keys its
  // session->shard affinity on the name and forwards frames verbatim, so
  // two workers minting the same name would collide there.
  session->name = options_.shard_id >= 0
                      ? "s" + std::to_string(options_.shard_id) + "." +
                            std::to_string(next_session_id_++)
                      : "s" + std::to_string(next_session_id_++);
  session->fabric =
      request.fabric.empty() ? options_.default_fabric : request.fabric;
  sessions_.emplace(session->name, session);
  enqueue_reply(conn, serve_session_json(request.id, session->name,
                                         /*open=*/true));
}

void MappingServer::handle_session_close(Connection& conn,
                                         const ServeRequest& request) {
  const auto it = sessions_.find(request.session);
  if (it == sessions_.end()) {
    enqueue_reply(conn, serve_error_json(request.id, "unknown_session",
                                         "session not open on this server: " +
                                             request.session));
    return;
  }
  // Closing while a map is in flight is fine: the mapper holds its own
  // shared_ptr, finishes against the detached state, and the reply still
  // reaches the client; only the registry entry goes away.
  sessions_.erase(it);
  enqueue_reply(conn, serve_session_json(request.id, request.session,
                                         /*open=*/false));
}

void MappingServer::handle_map(Connection& conn, ServeRequest&& request) {
  if (conn.pending.count(request.id) != 0) {
    metrics_.count_bad_request();
    enqueue_reply(conn, serve_error_json(request.id, "bad_request",
                                         "duplicate in-flight request id"));
    return;
  }

  // Session resolution happens here on the poll thread, where the registry
  // and busy flags live. The effective circuit text is assembled up front so
  // the mapper thread sees a self-contained ticket.
  std::shared_ptr<ServeSession> session;
  if (!request.session.empty()) {
    const auto it = sessions_.find(request.session);
    if (it == sessions_.end()) {
      metrics_.count_bad_request();
      enqueue_reply(conn,
                    serve_error_json(request.id, "unknown_session",
                                     "session not open on this server: " +
                                         request.session));
      return;
    }
    session = it->second;
    if (session->busy) {
      metrics_.count_bad_request();
      enqueue_reply(conn, serve_error_json(request.id, "session_busy",
                                           "one map in flight per session; "
                                           "wait for its reply"));
      return;
    }
    if (!request.qasm_append.empty()) {
      if (session->qasm.empty()) {
        metrics_.count_bad_request();
        enqueue_reply(conn, serve_error_json(
                                request.id, "bad_request",
                                "'qasm_append' needs a mapped circuit in the "
                                "session; submit 'qasm' first"));
        return;
      }
      request.qasm = session->qasm + "\n" + request.qasm_append;
      request.qasm_append.clear();
    }
    // The session pins the fabric; per-request fabric is ignored inside it.
    request.fabric = session->fabric;
    // Warm-start seeding and the result cache live behind the negotiation
    // diagnostic, so session maps always run it.
    request.options.negotiation_report = true;
  }
  if (request.fabric.empty()) request.fabric = options_.default_fabric;

  auto ticket = std::make_shared<ServeTicket>();
  ticket->connection = conn.id;
  ticket->admitted_at = std::chrono::steady_clock::now();
  const double deadline_ms = request.deadline_ms > 0.0
                                 ? request.deadline_ms
                                 : options_.default_deadline_ms;
  ticket->cancel.set_deadline_after_ms(deadline_ms);
  ticket->request = std::move(request);
  ticket->session = session;

  AdmitError why = AdmitError::QueueFull;
  if (!queue_.try_admit(ticket, why)) {
    metrics_.count_rejected();
    if (why == AdmitError::Draining) {
      enqueue_reply(conn, serve_error_json(ticket->request.id, "draining",
                                           "daemon is draining; retry against "
                                           "a healthy instance"));
    } else {
      enqueue_reply(conn,
                    serve_error_json(ticket->request.id, "overloaded",
                                     "admission queue full", retry_hint_ms()));
    }
    return;
  }
  if (session) session->busy = true;
  conn.pending.emplace(ticket->request.id, std::move(ticket));
  metrics_.count_accepted();
}

void MappingServer::enqueue_reply(Connection& conn, std::string line) {
  if (conn.broken) return;
  const std::size_t buffered = conn.outbox.size() - conn.outbox_at;
  if (buffered + line.size() + 1 > options_.max_outbox_bytes) {
    // Reader slower than the bound: cut it rather than buffer unboundedly.
    conn.broken = true;
    metrics_.count_connection_failed();
    return;
  }
  // Compact the consumed prefix opportunistically before growing.
  if (conn.outbox_at > 0 && conn.outbox_at == conn.outbox.size()) {
    conn.outbox.clear();
    conn.outbox_at = 0;
  }
  conn.outbox.append(line);
  conn.outbox.push_back('\n');
  flush_outbox(conn);
}

void MappingServer::flush_outbox(Connection& conn) {
  while (conn.outbox_at < conn.outbox.size()) {
    const IoResult io = write_some(
        conn.fd.get(), std::string_view(conn.outbox).substr(conn.outbox_at));
    if (io.status == IoStatus::Ok) {
      conn.outbox_at += io.bytes;
      continue;
    }
    if (io.status == IoStatus::WouldBlock) return;  // poll for POLLOUT
    conn.broken = true;
    metrics_.count_connection_failed();
    return;
  }
  conn.outbox.clear();
  conn.outbox_at = 0;
}

void MappingServer::deliver_completions() {
  std::deque<Completion> ready;
  {
    const std::lock_guard<std::mutex> lock(completions_mutex_);
    ready.swap(completions_);
  }
  for (Completion& done : ready) {
    // The session frees up regardless of whether the client survived to
    // read the reply — sessions are server-scoped, connections are not.
    if (done.session) done.session->busy = false;
    const auto it = connections_.find(done.connection);
    if (it == connections_.end()) continue;  // client gone: reply dropped
    it->second->pending.erase(done.request_id);
    enqueue_reply(*it->second, std::move(done.line));
  }
}

void MappingServer::destroy_connection(std::uint64_t id) {
  const auto it = connections_.find(id);
  if (it == connections_.end()) return;
  // Cancel whatever this client still has queued or running: the slots
  // drain (each ticket still produces a — now droppable — reply) and the
  // engine stops burning trials for a reader that will never see them.
  for (auto& [rid, ticket] : it->second->pending) {
    ticket->cancel.request_cancel();
  }
  connections_.erase(it);
}

int MappingServer::retry_hint_ms() const {
  return retry_estimator_.suggest_ms(queue_.depth(), options_.mapper_threads);
}

double MappingServer::uptime_ms() const {
  return ms_between(started_at_, std::chrono::steady_clock::now());
}

std::string MappingServer::stats_json(const std::string& id) {
  const ServeMetrics::Snapshot snap = metrics_.snapshot();
  const FabricArtifactCache::Stats cache = engine_.artifacts().stats();
  const long long lookups = cache.builds + cache.hits;
  JsonWriter json;
  json.begin_object();
  json.field("id", id);
  json.field("ok", true);
  json.key("stats").begin_object();
  json.field("queue_depth", queue_.depth());
  json.field("max_queue", options_.max_queue);
  json.field("in_flight", snap.in_flight);
  json.field("draining", draining_);
  json.field("uptime_ms", uptime_ms());
  if (options_.shard_id >= 0) json.field("shard_id", options_.shard_id);
  json.field("health_probes", snap.health_probes);
  json.field("retry_after_hint_ms", retry_hint_ms());
  json.field("retry_cost_ewma_ms", retry_estimator_.ewma_ms());
  json.field("accepted", snap.accepted);
  json.field("rejected", snap.rejected);
  json.field("completed", snap.completed);
  json.field("failed", snap.failed);
  json.field("cancelled", snap.cancelled);
  json.field("expired", snap.expired);
  json.field("bad_requests", snap.bad_requests);
  json.field("connections", static_cast<long long>(connections_.size()));
  json.field("connections_opened", snap.connections_opened);
  json.field("connections_failed", snap.connections_failed);
  json.field("artifact_builds", cache.builds);
  json.field("artifact_hits", cache.hits);
  json.field("artifact_hit_rate",
             lookups > 0 ? static_cast<double>(cache.hits) /
                               static_cast<double>(lookups)
                         : 0.0);
  json.field("artifact_evictions", cache.evictions);
  json.field("artifact_bytes", static_cast<long long>(cache.bytes));
  // Program-level result cache (warm-start sessions): hit/eviction and
  // resident-byte counters, so an operator can see both halves of the
  // --cache-budget-mb budget working.
  const ResultCache::Stats results = engine_.results().stats();
  json.field("result_hits", results.hits);
  json.field("result_misses", results.misses);
  json.field("result_insertions", results.insertions);
  json.field("result_evictions", results.evictions);
  json.field("result_bytes", static_cast<long long>(results.bytes));
  json.field("result_entries", static_cast<long long>(results.entries));
  json.field("cache_budget_bytes",
             static_cast<long long>(options_.cache_budget_bytes));
  json.field("open_sessions", static_cast<long long>(sessions_.size()));
  // ALT landmark tables built/reused across the cached fabrics (reporting
  // requests trigger the build; builds stay at one per distinct fabric).
  const LandmarkCacheStats landmarks = engine_.artifacts().landmark_stats();
  json.field("landmark_builds", landmarks.builds);
  json.field("landmark_hits", landmarks.hits);
  json.field("p50_trial_cpu_ms", snap.p50_trial_cpu_ms);
  json.field("p99_trial_cpu_ms", snap.p99_trial_cpu_ms);
  json.field("latency_samples", snap.latency_samples);
  json.field("setup_ms_total", snap.setup_ms_total);
  json.field("nodes_settled_total", snap.nodes_settled_total);
  json.field("mapper_threads", options_.mapper_threads);
  json.field("engine_workers", engine_.worker_count());
  json.end_object();
  json.end_object();
  return json.str();
}

}  // namespace qspr
