// BatchMapper: the multi-program mapping service over a shared
// MappingEngine.
//
// A manifest names many programs (inline or as QASM paths) to map against
// few fabrics. The batch runs as a bounded pipeline: up to `max_in_flight`
// jobs are staged at once, each with its placement trials submitted to the
// engine's shared executor, which interleaves trials from different jobs
// round-robin — so a large circuit in the manifest cannot starve the rest,
// and the workers never idle across job boundaries. Per-fabric artifacts
// (CSR routing graph, placement tables) come from the engine's cache, built
// once per distinct fabric.
//
// Fault isolation: a malformed QASM file, an infeasible fabric, or any
// other per-job failure marks only that job's record (ok = false plus the
// diagnostic) — the batch, the process, and every other job are unaffected.
// This rides on the executor's per-job error capture.
//
// Determinism: records are bit-identical to a sequential map_program loop
// over the same manifest, at any worker count and in-flight depth, because
// every job forks its trial RNGs up front by index and takes the
// (latency, index) minimum.
//
// Results stream in manifest order as JSON-lines (one record per program,
// one trailing summary) via batch_record_json / batch_summary_json, the
// format qspr_batch emits and the bench harness ingests.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "service/request_codec.hpp"

namespace qspr {

/// One manifest entry. Provide either `program` (borrowed; must outlive the
/// run) or `qasm_path` (parsed when the job is staged, so a bad file fails
/// only this job). `fabric` is borrowed and read only while the job is
/// staged.
struct BatchJob {
  std::string name;
  std::string qasm_path;
  const Program* program = nullptr;
  const Fabric* fabric = nullptr;
  /// Per-record fabric spec, overriding `fabric` when non-empty: "paper"
  /// names the built-in 45x85 fabric, anything else a fabric drawing path.
  /// Resolved through a shared FabricSource when the job is staged — a bad
  /// drawing fails only this record, and records naming the same spec share
  /// one parsed Fabric (and its cached routing artifacts). This is the same
  /// `fabric` field a qspr_serve map request carries.
  std::string fabric_spec;
  MapperOptions options;
};

/// Outcome of one manifest entry.
struct BatchJobRecord {
  std::string name;
  /// The per-record fabric spec, when the job carried one.
  std::string fabric;
  bool ok = false;
  /// Diagnostic when !ok (parse error, infeasible fabric, stalled
  /// execution, ...).
  std::string error;
  std::size_t qubits = 0;
  std::size_t instructions = 0;
  /// Valid when ok.
  MapResult result;
};

struct BatchOptions {
  /// Jobs staged concurrently on the shared executor (trial interleaving
  /// window and memory bound). 0 = auto: 2x the engine's workers, min 2.
  int max_in_flight = 0;
};

/// Aggregate throughput accounting of one batch run.
struct BatchSummary {
  int jobs = 0;
  int succeeded = 0;
  int failed = 0;
  int workers = 1;
  double wall_ms = 0.0;
  double programs_per_sec = 0.0;
  /// Thread-CPU milliseconds inside placement trials, summed over jobs.
  double trial_cpu_ms = 0.0;
  /// Fabric artifact cache activity during this run: builds counts distinct
  /// fabrics materialised, hits counts jobs served from a shared bundle.
  long long artifact_builds = 0;
  long long artifact_hits = 0;
};

struct BatchResult {
  BatchSummary summary;
  /// One record per manifest entry, in manifest order.
  std::vector<BatchJobRecord> records;
};

class BatchMapper {
 public:
  /// The engine (its executor and artifact cache) is borrowed and may be
  /// shared across successive batches.
  explicit BatchMapper(MappingEngine& engine, BatchOptions options = {});

  /// Called with each record, in manifest order, as it finalises.
  using RecordSink = std::function<void(const BatchJobRecord&)>;

  /// Maps every manifest entry. Never throws for per-job failures; those
  /// land in the records. Throws only for batch-level misuse (e.g. a job
  /// with neither program nor path... which is still captured per-job) or
  /// failures of the sink itself.
  BatchResult run(const std::vector<BatchJob>& manifest,
                  const RecordSink& sink = {});

 private:
  MappingEngine* engine_;
  BatchOptions options_;
  /// Resolves per-record fabric specs; caches by spec across batches.
  FabricSource fabrics_;
};

/// One JSONL line (no trailing newline) for a record / the batch summary.
[[nodiscard]] std::string batch_record_json(const BatchJobRecord& record);
[[nodiscard]] std::string batch_summary_json(const BatchSummary& summary);

}  // namespace qspr
