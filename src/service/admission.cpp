#include "service/admission.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace qspr {

AdmissionQueue::AdmissionQueue(int max_depth) : max_depth_(max_depth) {
  require(max_depth >= 1, "admission queue needs at least one slot");
}

bool AdmissionQueue::try_admit(std::shared_ptr<ServeTicket> ticket,
                               AdmitError& why) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ || closed_) {
      why = AdmitError::Draining;
      return false;
    }
    if (static_cast<int>(queue_.size()) >= max_depth_) {
      why = AdmitError::QueueFull;
      return false;
    }
    queue_.push_back(std::move(ticket));
  }
  ready_.notify_one();
  return true;
}

std::shared_ptr<ServeTicket> AdmissionQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return nullptr;
  std::shared_ptr<ServeTicket> ticket = std::move(queue_.front());
  queue_.pop_front();
  return ticket;
}

void AdmissionQueue::begin_drain() {
  const std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
}

void AdmissionQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
    closed_ = true;
  }
  ready_.notify_all();
}

void AdmissionQueue::cancel_queued() {
  std::vector<CancelSource> pending;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    pending.reserve(queue_.size());
    for (const std::shared_ptr<ServeTicket>& ticket : queue_) {
      pending.push_back(ticket->cancel);
    }
  }
  // Fire outside the lock: request_cancel is lock-free, but keeping the
  // queue lock narrow costs nothing and never risks ordering surprises.
  for (CancelSource& cancel : pending) cancel.request_cancel();
}

int AdmissionQueue::depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(queue_.size());
}

bool AdmissionQueue::draining() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

RetryAfterEstimator::RetryAfterEstimator(RetryEstimatorOptions options)
    : options_(options) {
  require(options_.alpha >= 0.0 && options_.alpha <= 1.0,
          "retry estimator alpha must be in [0, 1]");
  require(options_.floor_ms >= 0, "retry estimator floor must be >= 0");
  require(options_.ceiling_ms >= options_.floor_ms,
          "retry estimator ceiling must be >= floor");
}

void RetryAfterEstimator::observe_request_ms(double ms) {
  if (ms < 0.0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!seeded_) {
    ewma_ = ms;
    seeded_ = true;
    return;
  }
  ewma_ += options_.alpha * (ms - ewma_);
}

int RetryAfterEstimator::suggest_ms(int queue_depth, int drain_threads) const {
  double ewma = 0.0;
  bool seeded = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ewma = ewma_;
    seeded = seeded_;
  }
  if (!seeded) return options_.floor_ms;
  // Expected time until the backlog drains enough to admit a retry: the
  // depth+1 counts the slot the retrying client itself will need.
  const double depth = static_cast<double>(std::max(queue_depth, 0) + 1);
  const double threads = static_cast<double>(std::max(drain_threads, 1));
  const double hint = ewma * depth / threads;
  const double clamped =
      std::min(static_cast<double>(options_.ceiling_ms),
               std::max(static_cast<double>(options_.floor_ms), hint));
  return static_cast<int>(clamped);
}

double RetryAfterEstimator::ewma_ms() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ewma_;
}

void ServeMetrics::bump(long long Counters::* counter) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++(counters_.*counter);
}

void ServeMetrics::enter_flight() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++in_flight_;
}

void ServeMetrics::leave_flight() {
  const std::lock_guard<std::mutex> lock(mutex_);
  --in_flight_;
}

void ServeMetrics::record_trial_cpu_ms(double ms) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (reservoir_.size() < kReservoirCapacity) {
    reservoir_.push_back(ms);
  } else {
    reservoir_[reservoir_next_] = ms;
    reservoir_next_ = (reservoir_next_ + 1) % kReservoirCapacity;
  }
}

void ServeMetrics::record_map_work(double setup_ms, long long nodes_settled) {
  const std::lock_guard<std::mutex> lock(mutex_);
  setup_ms_total_ += setup_ms;
  nodes_settled_total_ += nodes_settled;
}

ServeMetrics::Snapshot ServeMetrics::snapshot() const {
  Snapshot snap;
  std::vector<double> samples;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    snap.accepted = counters_.accepted;
    snap.rejected = counters_.rejected;
    snap.completed = counters_.completed;
    snap.failed = counters_.failed;
    snap.cancelled = counters_.cancelled;
    snap.expired = counters_.expired;
    snap.bad_requests = counters_.bad_requests;
    snap.health_probes = counters_.health_probes;
    snap.connections_opened = counters_.connections_opened;
    snap.connections_failed = counters_.connections_failed;
    snap.in_flight = in_flight_;
    snap.setup_ms_total = setup_ms_total_;
    snap.nodes_settled_total = nodes_settled_total_;
    samples = reservoir_;
  }
  snap.latency_samples = static_cast<int>(samples.size());
  if (!samples.empty()) {
    std::sort(samples.begin(), samples.end());
    const auto at = [&](double quantile) {
      const auto rank = static_cast<std::size_t>(
          quantile * static_cast<double>(samples.size() - 1));
      return samples[rank];
    };
    snap.p50_trial_cpu_ms = at(0.50);
    snap.p99_trial_cpu_ms = at(0.99);
  }
  return snap;
}

}  // namespace qspr
