// Parametric generator for cyclic-code encoder circuits with a *calibrated*
// ideal-baseline latency — the construction behind the paper benchmarks
// (DESIGN.md: "calibrated so that the ideal-baseline critical path of each
// circuit equals the paper's Table 2 baseline exactly").
//
// Structure: a cyclically wrapped CNOT chain CX(j mod n, (j+1) mod n),
// j = 0..chain_gates-1, optionally seeded by a leading Hadamard; up to two
// parallel stabiliser "chord" lanes (CZ two steps and CY three steps behind
// the chain frontier) that give the circuit realistic gate width without
// touching the critical path; and optional Hadamards placed in slack.
//
// The resulting critical path is exactly
//     chain_gates * t_2q  (+ t_1q when seeded),
// verified by predicted_baseline() and by the property tests.
#pragma once

#include <string>
#include <vector>

#include "circuit/program.hpp"
#include "common/time.hpp"

namespace qspr {

struct CyclicEncoderSpec {
  std::string name = "cyclic";
  /// Number of physical qubits n (>= 4; >= 8 when the chain wraps).
  int qubits = 8;
  /// Number of data qubits k; the last k qubits are declared uninitialised.
  int data_qubits = 1;
  /// Length of the CNOT cascade — the critical path is chain_gates 2-qubit
  /// gates (may exceed n: the chain then wraps around the block).
  int chain_gates = 8;
  /// Lead the chain with H on q0 (adds one t_1q to the critical path).
  bool seed_hadamard = true;
  /// Parallel stabiliser lanes (0, 1 or 2).
  int chord_lanes = 2;
  /// Chain steps after which a slack Hadamard H(q_j) is appended; each one
  /// skews the chord lanes by t_1q, so at most a handful fit (validated).
  std::vector<int> slack_hadamards;
};

/// The ideal-baseline latency the generated circuit is calibrated to.
[[nodiscard]] Duration predicted_baseline(const CyclicEncoderSpec& spec,
                                          const TechnologyParams& params);

/// Generates the encoder. Throws ValidationError when the spec cannot be
/// calibrated (chain too short for the chord lanes to fit, wrap on a block
/// too small, too many slack Hadamards, ...).
[[nodiscard]] Program make_cyclic_encoder(const CyclicEncoderSpec& spec);

}  // namespace qspr
