#include "qecc/random_circuit.hpp"

#include <array>

#include "common/error.hpp"

namespace qspr {

Program make_random_circuit(const RandomCircuitOptions& options, Rng& rng) {
  require(options.qubits >= 2, "random circuit needs at least two qubits");
  require(options.gates >= 0, "negative gate count");

  Program program("random-" + std::to_string(options.qubits) + "q-" +
                  std::to_string(options.gates) + "g");
  std::vector<QubitId> qubits;
  for (int i = 0; i < options.qubits; ++i) {
    qubits.push_back(program.add_qubit("q" + std::to_string(i), 0));
  }

  constexpr std::array<GateKind, 6> one_qubit = {
      GateKind::H, GateKind::X, GateKind::Y,
      GateKind::Z, GateKind::S, GateKind::T};
  constexpr std::array<GateKind, 3> two_qubit = {GateKind::CX, GateKind::CY,
                                                 GateKind::CZ};

  for (int g = 0; g < options.gates; ++g) {
    if (rng.uniform_real() < options.two_qubit_fraction) {
      const auto kind = two_qubit[rng.uniform_index(two_qubit.size())];
      const std::size_t a = rng.uniform_index(qubits.size());
      std::size_t b = rng.uniform_index(qubits.size() - 1);
      if (b >= a) ++b;
      program.add_gate(kind, qubits[a], qubits[b]);
    } else {
      const auto kind = one_qubit[rng.uniform_index(one_qubit.size())];
      program.add_gate(kind, qubits[rng.uniform_index(qubits.size())]);
    }
  }
  return program;
}

}  // namespace qspr
