// Random circuit generation for property tests and stress benches.
#pragma once

#include <cstdint>

#include "circuit/program.hpp"
#include "common/rng.hpp"

namespace qspr {

struct RandomCircuitOptions {
  int qubits = 8;
  int gates = 40;
  /// Probability that a generated gate is a 2-qubit gate.
  double two_qubit_fraction = 0.7;
};

/// Generates a random program: `qubits` declared qubits followed by `gates`
/// uniformly chosen gates (H/X/Y/Z/S/T and CX/CY/CZ with distinct random
/// operands). Deterministic for a given Rng state.
Program make_random_circuit(const RandomCircuitOptions& options, Rng& rng);

}  // namespace qspr
