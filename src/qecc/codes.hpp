// The paper's benchmark workload: encoding circuits for six cyclic quantum
// error-correcting codes (§V.A, taken from Grassl's cyclic-QECC tables).
//
// Only the [[5,1,3]] encoder is printed in the paper (Fig. 2/3); the
// original QASM of the others is no longer available. We generate
// cyclic-structure encoders (a Hadamard column on seed qubits followed by
// cascades of controlled-Pauli gates with cyclic operand patterns) that are
// *calibrated*: the ideal-baseline critical path of each circuit equals the
// baseline latency the paper reports in Table 2 exactly. See DESIGN.md for
// the substitution rationale. Note that the verbatim Fig. 3 gate order
// yields a 610 us critical path under per-qubit sequential dependencies, so
// the [[5,1,3]] *benchmark* uses a depth-optimal linearisation of the same
// gate set (matching the paper's 510 us baseline); the verbatim order is
// available as make_figure3_program().
#pragma once

#include <string>
#include <vector>

#include "circuit/program.hpp"
#include "common/time.hpp"

namespace qspr {

enum class QeccCode : std::uint8_t {
  Q5_1_3,
  Q7_1_3,
  Q9_1_3,
  Q14_8_3,
  Q19_1_7,
  Q23_1_7,
};

/// "[[5,1,3]]"-style display name.
[[nodiscard]] std::string code_name(QeccCode code);

/// Number of physical qubits n of the code.
[[nodiscard]] int code_qubits(QeccCode code);

/// The calibrated encoder circuit for `code`.
[[nodiscard]] Program make_encoder(QeccCode code);

/// The [[5,1,3]] encoder with the paper's verbatim Fig. 3 instruction order
/// (critical path 610 us under sequential per-qubit dependencies).
[[nodiscard]] Program make_figure3_program();

/// Values the paper reports for this benchmark (Tables 1 and 2), kept next
/// to the generators so the bench harness can print paper-vs-measured rows.
struct PaperNumbers {
  QeccCode code = QeccCode::Q5_1_3;
  // Table 2.
  Duration baseline_latency = 0;
  Duration quale_latency = 0;
  Duration qspr_latency = 0;
  double improvement_percent = 0.0;
  // Table 1 (execution latency only; runtimes are machine-specific).
  Duration mvfb_latency_m25 = 0;
  Duration mc_latency_m25 = 0;
  Duration mvfb_latency_m100 = 0;
  Duration mc_latency_m100 = 0;
  int mvfb_runs_m25 = 0;
  int mvfb_runs_m100 = 0;
};

/// All six benchmarks in the paper's Table order.
[[nodiscard]] const std::vector<PaperNumbers>& paper_benchmarks();

[[nodiscard]] PaperNumbers paper_numbers(QeccCode code);

}  // namespace qspr
