#include "qecc/cyclic_builder.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qspr {

namespace {

void validate_spec(const CyclicEncoderSpec& spec) {
  if (spec.qubits < 4) {
    throw ValidationError("cyclic encoder needs at least 4 qubits");
  }
  if (spec.data_qubits < 0 || spec.data_qubits >= spec.qubits) {
    throw ValidationError("data qubit count must be in [0, n)");
  }
  if (spec.chain_gates < 1) {
    throw ValidationError("chain must have at least one gate");
  }
  if (spec.chord_lanes < 0 || spec.chord_lanes > 2) {
    throw ValidationError("chord lanes must be 0, 1 or 2");
  }
  // A wrapping chain revisits qubits every n steps; the chord lanes trail
  // the frontier by up to 3 steps and must never delay a revisit (see
  // DESIGN.md). n >= 8 keeps 6 clear steps of margin.
  if (spec.chain_gates > spec.qubits - 1 && spec.qubits < 8 &&
      spec.chord_lanes > 0) {
    throw ValidationError(
        "wrapping chains with chords need at least 8 qubits");
  }
  // Each slack Hadamard skews the chord lanes by t_1q; the lanes stop 4
  // steps early which leaves t_2q of margin, so bound the count well below
  // t_2q / t_1q (10 at the paper's parameters).
  if (spec.slack_hadamards.size() > 5) {
    throw ValidationError("at most 5 slack Hadamards fit in the margin");
  }
  for (const int j : spec.slack_hadamards) {
    if (j < 1 || j >= spec.chain_gates) {
      throw ValidationError("slack Hadamard index outside the chain");
    }
  }
}

}  // namespace

Duration predicted_baseline(const CyclicEncoderSpec& spec,
                            const TechnologyParams& params) {
  return static_cast<Duration>(spec.chain_gates) * params.t_gate_2q +
         (spec.seed_hadamard ? params.t_gate_1q : 0);
}

Program make_cyclic_encoder(const CyclicEncoderSpec& spec) {
  validate_spec(spec);

  Program program(spec.name);
  std::vector<QubitId> q;
  for (int i = 0; i < spec.qubits; ++i) {
    const bool is_data = i >= spec.qubits - spec.data_qubits;
    q.push_back(program.add_qubit(
        "q" + std::to_string(i),
        is_data ? std::nullopt : std::optional<int>(0)));
  }
  const auto idx = [n = spec.qubits](int v) {
    return static_cast<std::size_t>(((v % n) + n) % n);
  };

  if (spec.seed_hadamard) program.add_gate(GateKind::H, q[0]);
  // Chord lanes stop 4 steps early: the last lane-2 chord ends 3 steps after
  // its chain gate and slack-Hadamard skew needs the remaining margin.
  const int last_chord = spec.chain_gates - 4;
  for (int j = 0; j < spec.chain_gates; ++j) {
    program.add_gate(GateKind::CX, q[idx(j)], q[idx(j + 1)]);
    if (spec.chord_lanes >= 1 && j >= 2 && j <= last_chord) {
      program.add_gate(GateKind::CZ, q[idx(j - 2)], q[idx(j)]);
    }
    if (spec.chord_lanes >= 2 && j >= 3 && j <= last_chord) {
      program.add_gate(GateKind::CY, q[idx(j - 3)], q[idx(j)]);
    }
    if (std::find(spec.slack_hadamards.begin(), spec.slack_hadamards.end(),
                  j) != spec.slack_hadamards.end()) {
      program.add_gate(GateKind::H, q[idx(j)]);
    }
  }
  return program;
}

}  // namespace qspr
