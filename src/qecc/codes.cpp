#include "qecc/codes.hpp"

#include "common/error.hpp"
#include "qecc/cyclic_builder.hpp"

namespace qspr {

namespace {

/// Declares qubits q0..q{n-1}. Ancillae are initialised to |0>; the data
/// qubits (the code's k logical inputs) carry no initial value.
std::vector<QubitId> declare_qubits(Program& program, int n,
                                    const std::vector<int>& data_qubits) {
  std::vector<QubitId> qubits;
  qubits.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const bool is_data =
        std::find(data_qubits.begin(), data_qubits.end(), i) !=
        data_qubits.end();
    qubits.push_back(program.add_qubit(
        "q" + std::to_string(i),
        is_data ? std::nullopt : std::optional<int>(0)));
  }
  return qubits;
}

/// [[5,1,3]] — the cyclic code of Fig. 2, with a depth-optimal gate order
/// (critical path: H + 5 two-qubit layers = 510 us).
Program make_5_1_3() {
  Program program("[[5,1,3]]");
  const auto q = declare_qubits(program, 5, {3});
  for (const int h : {0, 1, 2, 4}) program.add_gate(GateKind::H, q[h]);
  program.add_gate(GateKind::CX, q[3], q[2]);
  program.add_gate(GateKind::CZ, q[4], q[2]);
  program.add_gate(GateKind::CY, q[3], q[1]);
  program.add_gate(GateKind::CY, q[2], q[1]);
  program.add_gate(GateKind::CY, q[3], q[0]);
  program.add_gate(GateKind::CX, q[4], q[1]);
  program.add_gate(GateKind::CZ, q[2], q[0]);
  program.add_gate(GateKind::CZ, q[4], q[0]);
  return program;
}

/// [[7,1,3]] — Steane-style: three seed qubits fan CNOT cascades over the
/// block in cyclic patterns; depth 5 (510 us).
Program make_7_1_3() {
  Program program("[[7,1,3]]");
  const auto q = declare_qubits(program, 7, {0});
  for (const int h : {4, 5, 6}) program.add_gate(GateKind::H, q[h]);
  const int layers[4][3][2] = {
      {{4, 0}, {5, 1}, {6, 2}},
      {{4, 1}, {5, 2}, {6, 3}},
      {{4, 2}, {5, 3}, {6, 0}},
      {{4, 3}, {5, 0}, {6, 1}},
  };
  for (const auto& layer : layers) {
    for (const auto& gate : layer) {
      program.add_gate(GateKind::CX, q[gate[0]], q[gate[1]]);
    }
  }
  program.add_gate(GateKind::CX, q[0], q[1]);
  program.add_gate(GateKind::CX, q[2], q[3]);
  return program;
}

/// [[9,1,3]] — a seeded 9-gate cyclic ring with chord lanes: H + 9 x 100 =
/// 910 us.
Program make_9_1_3() {
  CyclicEncoderSpec spec;
  spec.name = "[[9,1,3]]";
  spec.qubits = 9;
  spec.data_qubits = 1;
  spec.chain_gates = 9;
  spec.seed_hadamard = true;
  return make_cyclic_encoder(spec);
}

/// [[14,8,3]] — 25 cyclically wrapped CNOTs form the 2500 us chain (the
/// paper's baseline has no leading 1-qubit delay); chord lanes and Hadamards
/// sit in slack.
Program make_14_8_3() {
  CyclicEncoderSpec spec;
  spec.name = "[[14,8,3]]";
  spec.qubits = 14;
  spec.data_qubits = 8;
  spec.chain_gates = 25;
  spec.seed_hadamard = false;
  spec.slack_hadamards = {1, 3, 5};
  return make_cyclic_encoder(spec);
}

/// [[19,1,7]] — a seeded 25-gate cyclic cascade (H + 25 x 100 = 2510 us)
/// with two parallel chord lanes.
Program make_19_1_7() {
  CyclicEncoderSpec spec;
  spec.name = "[[19,1,7]]";
  spec.qubits = 19;
  spec.data_qubits = 1;
  spec.chain_gates = 25;
  spec.seed_hadamard = true;
  spec.slack_hadamards = {2, 4};
  return make_cyclic_encoder(spec);
}

/// [[23,1,7]] — Golay-code scale: a 14-deep main cascade (H + 14 x 100 =
/// 1410 us) beside a parallel secondary cascade and stabiliser chords.
Program make_23_1_7() {
  Program program("[[23,1,7]]");
  const auto q = declare_qubits(program, 23, {22});
  program.add_gate(GateKind::H, q[0]);
  program.add_gate(GateKind::H, q[15]);
  // Main 14-gate chain over q0..q14 with CZ chords two behind the frontier.
  for (int j = 0; j < 14; ++j) {
    program.add_gate(GateKind::CX, q[static_cast<std::size_t>(j)],
                     q[static_cast<std::size_t>(j + 1)]);
    if (j >= 2 && j % 2 == 0 && j <= 12) {
      program.add_gate(GateKind::CZ, q[static_cast<std::size_t>(j - 2)],
                       q[static_cast<std::size_t>(j)]);
    }
  }
  // Secondary cascade over q15..q22.
  for (int j = 15; j < 22; ++j) {
    program.add_gate(GateKind::CX, q[static_cast<std::size_t>(j)],
                     q[static_cast<std::size_t>(j + 1)]);
    if (j == 18) {
      program.add_gate(GateKind::CZ, q[16], q[18]);
    }
  }
  // Cross-coupling between the cascades, placed in slack.
  program.add_gate(GateKind::CZ, q[22], q[0]);
  return program;
}

}  // namespace

std::string code_name(QeccCode code) {
  switch (code) {
    case QeccCode::Q5_1_3: return "[[5,1,3]]";
    case QeccCode::Q7_1_3: return "[[7,1,3]]";
    case QeccCode::Q9_1_3: return "[[9,1,3]]";
    case QeccCode::Q14_8_3: return "[[14,8,3]]";
    case QeccCode::Q19_1_7: return "[[19,1,7]]";
    case QeccCode::Q23_1_7: return "[[23,1,7]]";
  }
  return "?";
}

int code_qubits(QeccCode code) {
  switch (code) {
    case QeccCode::Q5_1_3: return 5;
    case QeccCode::Q7_1_3: return 7;
    case QeccCode::Q9_1_3: return 9;
    case QeccCode::Q14_8_3: return 14;
    case QeccCode::Q19_1_7: return 19;
    case QeccCode::Q23_1_7: return 23;
  }
  return 0;
}

Program make_encoder(QeccCode code) {
  switch (code) {
    case QeccCode::Q5_1_3: return make_5_1_3();
    case QeccCode::Q7_1_3: return make_7_1_3();
    case QeccCode::Q9_1_3: return make_9_1_3();
    case QeccCode::Q14_8_3: return make_14_8_3();
    case QeccCode::Q19_1_7: return make_19_1_7();
    case QeccCode::Q23_1_7: return make_23_1_7();
  }
  throw Error("unknown QECC code");
}

Program make_figure3_program() {
  Program program("[[5,1,3]]-fig3");
  const auto q = declare_qubits(program, 5, {3});
  for (const int h : {0, 1, 2, 4}) program.add_gate(GateKind::H, q[h]);
  program.add_gate(GateKind::CX, q[3], q[2]);
  program.add_gate(GateKind::CZ, q[4], q[2]);
  program.add_gate(GateKind::CY, q[2], q[1]);
  program.add_gate(GateKind::CY, q[3], q[1]);
  program.add_gate(GateKind::CX, q[4], q[1]);
  program.add_gate(GateKind::CZ, q[2], q[0]);
  program.add_gate(GateKind::CY, q[3], q[0]);
  program.add_gate(GateKind::CZ, q[4], q[0]);
  return program;
}

const std::vector<PaperNumbers>& paper_benchmarks() {
  static const std::vector<PaperNumbers> table = {
      // code, T2: baseline quale qspr improv%, T1: mvfb25 mc25 mvfb100 mc100,
      // runs25 runs100
      {QeccCode::Q5_1_3, 510, 832, 634, 23.80, 634, 664, 634, 674, 88, 312},
      {QeccCode::Q7_1_3, 510, 798, 610, 23.56, 610, 618, 603, 622, 78, 312},
      {QeccCode::Q9_1_3, 910, 2216, 1159, 47.70, 1159, 1212, 1138, 1198, 86,
       308},
      {QeccCode::Q14_8_3, 2500, 7511, 3390, 54.87, 3390, 3540, 3342, 3429, 83,
       316},
      {QeccCode::Q19_1_7, 2510, 6838, 3393, 50.38, 3393, 3483, 3350, 3403, 82,
       311},
      {QeccCode::Q23_1_7, 1410, 3738, 2066, 44.73, 2066, 2183, 2061, 2085, 89,
       315},
  };
  return table;
}

PaperNumbers paper_numbers(QeccCode code) {
  for (const PaperNumbers& numbers : paper_benchmarks()) {
    if (numbers.code == code) return numbers;
  }
  throw Error("unknown QECC code");
}

}  // namespace qspr
