// In-memory representation of a quantum program: the declared qubits plus an
// ordered list of gate instructions. This is the mapper's input IR, produced
// by the QASM parser (or programmatically, e.g. by the QECC generators).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "circuit/gate.hpp"
#include "common/ids.hpp"

namespace qspr {

/// A declared qubit. `init_value` mirrors the QASM `QUBIT name,0` form: the
/// paper's encoder ancillae are initialised to |0>, while the data qubit is
/// declared without an initial value.
struct QubitDecl {
  std::string name;
  std::optional<int> init_value;
};

/// One gate-level instruction. For 2-qubit gates, `control` is the paper's
/// "source" operand and `target` the "destination". For 1-qubit gates only
/// `target` is used.
struct Instruction {
  InstructionId id;
  GateKind kind = GateKind::H;
  QubitId control;  // invalid for 1-qubit gates
  QubitId target;

  [[nodiscard]] bool is_two_qubit() const { return qspr::is_two_qubit(kind); }

  /// The qubits this instruction touches (1 or 2 entries).
  [[nodiscard]] std::vector<QubitId> operands() const;

  /// True if the instruction acts on `qubit`.
  [[nodiscard]] bool uses(QubitId qubit) const {
    return target == qubit || (control.is_valid() && control == qubit);
  }
};

class Program {
 public:
  Program() = default;
  explicit Program(std::string name) : name_(std::move(name)) {}

  /// Declares a qubit; names must be unique and non-empty.
  QubitId add_qubit(std::string qubit_name,
                    std::optional<int> init_value = std::nullopt);

  /// Appends a 1-qubit gate.
  InstructionId add_gate(GateKind kind, QubitId target);

  /// Appends a 2-qubit gate (control = source, target = destination).
  InstructionId add_gate(GateKind kind, QubitId control, QubitId target);

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] std::size_t qubit_count() const { return qubits_.size(); }
  [[nodiscard]] const QubitDecl& qubit(QubitId id) const;
  [[nodiscard]] const std::vector<QubitDecl>& qubits() const { return qubits_; }

  /// Looks a qubit up by name; returns an invalid id when absent.
  [[nodiscard]] QubitId find_qubit(std::string_view qubit_name) const;

  [[nodiscard]] std::size_t instruction_count() const {
    return instructions_.size();
  }
  [[nodiscard]] const Instruction& instruction(InstructionId id) const;
  [[nodiscard]] const std::vector<Instruction>& instructions() const {
    return instructions_;
  }

  [[nodiscard]] std::size_t one_qubit_gate_count() const;
  [[nodiscard]] std::size_t two_qubit_gate_count() const;

  /// Throws ValidationError if any instruction references an undeclared qubit
  /// or a 2-qubit gate has identical operands.
  void validate() const;

 private:
  std::string name_;
  std::vector<QubitDecl> qubits_;
  std::vector<Instruction> instructions_;
};

}  // namespace qspr
