#include "circuit/transform.hpp"

#include <vector>

namespace qspr {

namespace {

/// Copies the qubit declarations of `source` into a fresh program.
Program clone_declarations(const Program& source, const std::string& suffix) {
  Program result(source.name().empty() ? "" : source.name() + suffix);
  for (const QubitDecl& qubit : source.qubits()) {
    result.add_qubit(qubit.name, qubit.init_value);
  }
  return result;
}

void append(Program& program, const Instruction& instr) {
  if (instr.is_two_qubit()) {
    program.add_gate(instr.kind, instr.control, instr.target);
  } else {
    program.add_gate(instr.kind, instr.target);
  }
}

/// True when `a` followed by `b` is an identity: b is a's inverse on the
/// same operands (for 2-qubit gates the operand order must match, except for
/// the symmetric CZ and SWAP).
bool cancels(const Instruction& a, const Instruction& b) {
  if (a.kind == GateKind::Measure || b.kind == GateKind::Measure) return false;
  if (inverse_of(a.kind) != b.kind) return false;
  if (a.is_two_qubit() != b.is_two_qubit()) return false;
  if (!a.is_two_qubit()) return a.target == b.target;
  if (a.control == b.control && a.target == b.target) return true;
  const bool symmetric =
      a.kind == GateKind::CZ || a.kind == GateKind::Swap;
  return symmetric && a.control == b.target && a.target == b.control;
}

}  // namespace

Program decompose_swaps(const Program& program) {
  Program result = clone_declarations(program, "");
  for (const Instruction& instr : program.instructions()) {
    if (instr.kind == GateKind::Swap) {
      result.add_gate(GateKind::CX, instr.control, instr.target);
      result.add_gate(GateKind::CX, instr.target, instr.control);
      result.add_gate(GateKind::CX, instr.control, instr.target);
    } else {
      append(result, instr);
    }
  }
  return result;
}

Program cancel_adjacent_inverses(const Program& program) {
  // Work on a simple instruction list; repeat until no pair cancels.
  std::vector<Instruction> instructions = program.instructions();
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i + 1 < instructions.size() && !changed; ++i) {
      const Instruction& a = instructions[i];
      // Find the next instruction touching any of a's operands.
      for (std::size_t j = i + 1; j < instructions.size(); ++j) {
        const Instruction& b = instructions[j];
        const bool touches = b.uses(a.target) ||
                             (a.control.is_valid() && b.uses(a.control));
        if (!touches) continue;
        // b is the next user of a's operands. It must use exactly the same
        // operand set to cancel (a partial overlap blocks cancellation).
        if (cancels(a, b)) {
          const bool same_operands =
              a.is_two_qubit()
                  ? (b.uses(a.control) && b.uses(a.target))
                  : (!b.is_two_qubit() && b.target == a.target);
          if (same_operands) {
            instructions.erase(instructions.begin() +
                               static_cast<std::ptrdiff_t>(j));
            instructions.erase(instructions.begin() +
                               static_cast<std::ptrdiff_t>(i));
            changed = true;
          }
        }
        break;  // only the immediately-next user can cancel
      }
    }
  }
  Program result = clone_declarations(program, "");
  for (const Instruction& instr : instructions) append(result, instr);
  return result;
}

Program uncompute_program(const Program& program) {
  Program result = clone_declarations(program, "-uncompute");
  const auto& instructions = program.instructions();
  for (auto it = instructions.rbegin(); it != instructions.rend(); ++it) {
    Instruction inverted = *it;
    inverted.kind = inverse_of(it->kind);
    append(result, inverted);
  }
  return result;
}

}  // namespace qspr
