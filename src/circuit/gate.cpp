#include "circuit/gate.hpp"

namespace qspr {

int arity(GateKind kind) {
  switch (kind) {
    case GateKind::H:
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::T:
    case GateKind::Tdg:
    case GateKind::Measure:
      return 1;
    case GateKind::CX:
    case GateKind::CY:
    case GateKind::CZ:
    case GateKind::Swap:
      return 2;
  }
  return 1;  // unreachable
}

GateKind inverse_of(GateKind kind) {
  switch (kind) {
    case GateKind::S: return GateKind::Sdg;
    case GateKind::Sdg: return GateKind::S;
    case GateKind::T: return GateKind::Tdg;
    case GateKind::Tdg: return GateKind::T;
    default: return kind;  // H, Paulis, controlled-Paulis, SWAP, Measure
  }
}

std::string_view mnemonic(GateKind kind) {
  switch (kind) {
    case GateKind::H: return "H";
    case GateKind::X: return "X";
    case GateKind::Y: return "Y";
    case GateKind::Z: return "Z";
    case GateKind::S: return "S";
    case GateKind::Sdg: return "SDG";
    case GateKind::T: return "T";
    case GateKind::Tdg: return "TDG";
    case GateKind::Measure: return "MEASURE";
    case GateKind::CX: return "C-X";
    case GateKind::CY: return "C-Y";
    case GateKind::CZ: return "C-Z";
    case GateKind::Swap: return "SWAP";
  }
  return "?";
}

Duration gate_delay(GateKind kind, const TechnologyParams& params) {
  return is_two_qubit(kind) ? params.t_gate_2q : params.t_gate_1q;
}

}  // namespace qspr
