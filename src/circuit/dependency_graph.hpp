// Quantum Instruction Dependency Graph (QIDG, paper §I) and its reversal,
// the uncompute graph (UIDG, paper §IV.A).
//
// Nodes are gate-level instructions; there is an edge a -> b when b is the
// next instruction touching one of a's operand qubits in program order. The
// graph carries the ideal-timing analyses used by the scheduler (longest path
// to sink, dependent counts) and by the ideal baseline of §V.A (critical path
// with T_routing = T_congestion = 0).
#pragma once

#include <vector>

#include "circuit/program.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"

namespace qspr {

class DependencyGraph {
 public:
  /// Builds the QIDG of `program` (per-qubit program-order chaining).
  static DependencyGraph build(const Program& program);

  [[nodiscard]] std::size_t node_count() const { return instructions_.size(); }
  [[nodiscard]] std::size_t qubit_count() const { return qubit_count_; }

  [[nodiscard]] const Instruction& instruction(InstructionId id) const;
  [[nodiscard]] const std::vector<Instruction>& instructions() const {
    return instructions_;
  }

  [[nodiscard]] const std::vector<InstructionId>& predecessors(
      InstructionId id) const;
  [[nodiscard]] const std::vector<InstructionId>& successors(
      InstructionId id) const;

  /// Nodes with no predecessors / successors.
  [[nodiscard]] std::vector<InstructionId> sources() const;
  [[nodiscard]] std::vector<InstructionId> sinks() const;

  /// Deterministic Kahn order (ties broken by instruction id).
  /// Throws ValidationError on cycles (cannot happen for built graphs).
  [[nodiscard]] std::vector<InstructionId> topological_order() const;

  /// The UIDG: every edge reversed and every gate replaced by its inverse.
  /// Instruction ids are preserved, so a schedule for this graph can be
  /// compared index-by-index with one for the forward graph.
  [[nodiscard]] DependencyGraph reversed() const;

  // --- Ideal-timing analyses (gate delays only, unlimited resources) ---

  /// Earliest start time of each instruction.
  [[nodiscard]] std::vector<TimePoint> asap_start_times(
      const TechnologyParams& params) const;

  /// Latest start time of each instruction given the critical-path deadline.
  [[nodiscard]] std::vector<TimePoint> alap_start_times(
      const TechnologyParams& params) const;

  /// Total latency of the ideal schedule — the paper's baseline lower bound.
  [[nodiscard]] Duration critical_path_latency(
      const TechnologyParams& params) const;

  /// For each instruction, the longest-path delay from its start through the
  /// end of the graph (its own delay included). This is the second term of
  /// the QSPR scheduling priority (§III).
  [[nodiscard]] std::vector<Duration> longest_path_to_sink(
      const TechnologyParams& params) const;

  /// For each instruction, the number of instructions that transitively
  /// depend on it — the first term of the QSPR scheduling priority (§III)
  /// and QPOS's initial priority (§I).
  [[nodiscard]] std::vector<int> descendant_counts() const;

  /// For each instruction, the summed gate delay of all its transitive
  /// dependents — the priority tweak of reference [5] (§I).
  [[nodiscard]] std::vector<Duration> descendant_delay_sums(
      const TechnologyParams& params) const;

 private:
  std::vector<Instruction> instructions_;
  std::vector<std::vector<InstructionId>> preds_;
  std::vector<std::vector<InstructionId>> succs_;
  std::size_t qubit_count_ = 0;
};

}  // namespace qspr
