#include "circuit/dot.hpp"

#include <sstream>

namespace qspr {

namespace {

std::string operand_name(const Program* program, QubitId qubit) {
  if (program != nullptr) return program->qubit(qubit).name;
  return "q" + std::to_string(qubit.value());
}

}  // namespace

std::string to_dot(const DependencyGraph& graph, const Program* program) {
  std::ostringstream os;
  os << "digraph qidg {\n  rankdir=TB;\n  node [shape=box];\n";
  for (const Instruction& instr : graph.instructions()) {
    os << "  n" << instr.id.value() << " [label=\"" << mnemonic(instr.kind);
    if (instr.is_two_qubit()) {
      os << ' ' << operand_name(program, instr.control) << ','
         << operand_name(program, instr.target);
    } else {
      os << ' ' << operand_name(program, instr.target);
    }
    os << "\"];\n";
  }
  for (const Instruction& instr : graph.instructions()) {
    for (const InstructionId succ : graph.successors(instr.id)) {
      os << "  n" << instr.id.value() << " -> n" << succ.value() << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace qspr
