#include "circuit/dependency_graph.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"

namespace qspr {

namespace {

void add_unique_edge(std::vector<InstructionId>& list, InstructionId id) {
  if (std::find(list.begin(), list.end(), id) == list.end()) {
    list.push_back(id);
  }
}

}  // namespace

DependencyGraph DependencyGraph::build(const Program& program) {
  program.validate();
  DependencyGraph graph;
  graph.qubit_count_ = program.qubit_count();
  graph.instructions_ = program.instructions();
  const std::size_t n = graph.instructions_.size();
  graph.preds_.resize(n);
  graph.succs_.resize(n);

  // last_writer[q] = most recent instruction touching qubit q, if any.
  std::vector<InstructionId> last_writer(program.qubit_count());
  for (const Instruction& instr : graph.instructions_) {
    for (const QubitId q : instr.operands()) {
      const InstructionId prev = last_writer[q.index()];
      if (prev.is_valid()) {
        add_unique_edge(graph.preds_[instr.id.index()], prev);
        add_unique_edge(graph.succs_[prev.index()], instr.id);
      }
      last_writer[q.index()] = instr.id;
    }
  }
  return graph;
}

const Instruction& DependencyGraph::instruction(InstructionId id) const {
  require(id.is_valid() && id.index() < instructions_.size(),
          "instruction id out of range");
  return instructions_[id.index()];
}

const std::vector<InstructionId>& DependencyGraph::predecessors(
    InstructionId id) const {
  require(id.is_valid() && id.index() < preds_.size(), "id out of range");
  return preds_[id.index()];
}

const std::vector<InstructionId>& DependencyGraph::successors(
    InstructionId id) const {
  require(id.is_valid() && id.index() < succs_.size(), "id out of range");
  return succs_[id.index()];
}

std::vector<InstructionId> DependencyGraph::sources() const {
  std::vector<InstructionId> result;
  for (std::size_t i = 0; i < preds_.size(); ++i) {
    if (preds_[i].empty()) result.push_back(InstructionId::from_index(i));
  }
  return result;
}

std::vector<InstructionId> DependencyGraph::sinks() const {
  std::vector<InstructionId> result;
  for (std::size_t i = 0; i < succs_.size(); ++i) {
    if (succs_[i].empty()) result.push_back(InstructionId::from_index(i));
  }
  return result;
}

std::vector<InstructionId> DependencyGraph::topological_order() const {
  const std::size_t n = node_count();
  std::vector<int> indegree(n);
  for (std::size_t i = 0; i < n; ++i) {
    indegree[i] = static_cast<int>(preds_[i].size());
  }
  // Min-id-first frontier for determinism. Frontiers are tiny (bounded by
  // qubit count), so a sorted vector is fine.
  std::vector<InstructionId> frontier = sources();
  std::vector<InstructionId> order;
  order.reserve(n);
  while (!frontier.empty()) {
    const auto it = std::min_element(frontier.begin(), frontier.end());
    const InstructionId next = *it;
    frontier.erase(it);
    order.push_back(next);
    for (const InstructionId succ : succs_[next.index()]) {
      if (--indegree[succ.index()] == 0) frontier.push_back(succ);
    }
  }
  if (order.size() != n) {
    throw ValidationError("dependency graph contains a cycle");
  }
  return order;
}

DependencyGraph DependencyGraph::reversed() const {
  DependencyGraph graph;
  graph.qubit_count_ = qubit_count_;
  graph.instructions_ = instructions_;
  for (Instruction& instr : graph.instructions_) {
    instr.kind = inverse_of(instr.kind);
  }
  graph.preds_ = succs_;
  graph.succs_ = preds_;
  return graph;
}

std::vector<TimePoint> DependencyGraph::asap_start_times(
    const TechnologyParams& params) const {
  std::vector<TimePoint> start(node_count(), 0);
  for (const InstructionId id : topological_order()) {
    TimePoint earliest = 0;
    for (const InstructionId pred : preds_[id.index()]) {
      const Duration pred_delay =
          gate_delay(instructions_[pred.index()].kind, params);
      earliest = std::max(earliest, start[pred.index()] + pred_delay);
    }
    start[id.index()] = earliest;
  }
  return start;
}

std::vector<TimePoint> DependencyGraph::alap_start_times(
    const TechnologyParams& params) const {
  const Duration deadline = critical_path_latency(params);
  std::vector<TimePoint> start(node_count(), 0);
  const std::vector<InstructionId> order = topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const InstructionId id = *it;
    const Duration own_delay = gate_delay(instructions_[id.index()].kind, params);
    TimePoint latest = deadline - own_delay;
    for (const InstructionId succ : succs_[id.index()]) {
      latest = std::min(latest, start[succ.index()] - own_delay);
    }
    start[id.index()] = latest;
  }
  return start;
}

Duration DependencyGraph::critical_path_latency(
    const TechnologyParams& params) const {
  const std::vector<TimePoint> start = asap_start_times(params);
  Duration latency = 0;
  for (std::size_t i = 0; i < node_count(); ++i) {
    latency = std::max(latency,
                       start[i] + gate_delay(instructions_[i].kind, params));
  }
  return latency;
}

std::vector<Duration> DependencyGraph::longest_path_to_sink(
    const TechnologyParams& params) const {
  std::vector<Duration> longest(node_count(), 0);
  const std::vector<InstructionId> order = topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const InstructionId id = *it;
    Duration tail = 0;
    for (const InstructionId succ : succs_[id.index()]) {
      tail = std::max(tail, longest[succ.index()]);
    }
    longest[id.index()] =
        gate_delay(instructions_[id.index()].kind, params) + tail;
  }
  return longest;
}

namespace {

/// descendants[i] = bitset (over instruction indices) of i's transitive
/// dependents.
std::vector<std::vector<std::uint64_t>> descendant_bitsets(
    const std::vector<std::vector<InstructionId>>& succs,
    const std::vector<InstructionId>& reverse_topological) {
  const std::size_t n = succs.size();
  const std::size_t words = (n + 63) / 64;
  std::vector<std::vector<std::uint64_t>> descendants(
      n, std::vector<std::uint64_t>(words, 0));
  for (const InstructionId id : reverse_topological) {
    const std::size_t i = id.index();
    for (const InstructionId succ : succs[i]) {
      const std::size_t s = succ.index();
      descendants[i][s / 64] |= std::uint64_t{1} << (s % 64);
      for (std::size_t w = 0; w < words; ++w) {
        descendants[i][w] |= descendants[s][w];
      }
    }
  }
  return descendants;
}

}  // namespace

std::vector<int> DependencyGraph::descendant_counts() const {
  std::vector<InstructionId> order = topological_order();
  std::reverse(order.begin(), order.end());
  const auto descendants = descendant_bitsets(succs_, order);
  std::vector<int> counts(node_count(), 0);
  for (std::size_t i = 0; i < node_count(); ++i) {
    int count = 0;
    for (const std::uint64_t word : descendants[i]) {
      count += std::popcount(word);
    }
    counts[i] = count;
  }
  return counts;
}

std::vector<Duration> DependencyGraph::descendant_delay_sums(
    const TechnologyParams& params) const {
  std::vector<InstructionId> order = topological_order();
  std::reverse(order.begin(), order.end());
  const auto descendants = descendant_bitsets(succs_, order);
  std::vector<Duration> sums(node_count(), 0);
  for (std::size_t i = 0; i < node_count(); ++i) {
    for (std::size_t w = 0; w < descendants[i].size(); ++w) {
      std::uint64_t word = descendants[i][w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        word &= word - 1;
        const std::size_t index = w * 64 + static_cast<std::size_t>(bit);
        sums[i] += gate_delay(instructions_[index].kind, params);
      }
    }
  }
  return sums;
}

}  // namespace qspr
