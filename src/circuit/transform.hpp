// Circuit transformation passes — the small synthesis-side utilities of the
// CAD flow (paper Fig. 1) that sit between the synthesizer and the mapper:
//
//  * decompose_swaps      — SWAP -> CX a,b; CX b,a; CX a,b (the mapper's trap
//                           operations are 1- and 2-qubit controlled gates).
//  * cancel_adjacent_inverses — peephole removal of gate pairs g, g^-1 acting
//                           on identical operands with no interposed use.
//  * uncompute_program    — the program whose QIDG is the UIDG (§IV.A):
//                           reversed instruction order, inverted gates.
#pragma once

#include "circuit/program.hpp"

namespace qspr {

/// Rewrites every SWAP into the standard 3-CX identity. Other instructions
/// are copied unchanged; qubit declarations are preserved.
Program decompose_swaps(const Program& program);

/// Removes adjacent inverse pairs (e.g. H q; H q or S q; SDG q or
/// C-X a,b; C-X a,b) when no intervening instruction touches the operands.
/// Iterates to a fixed point, so chains like H H H H vanish entirely.
/// Measurement is never cancelled (it is not unitary).
Program cancel_adjacent_inverses(const Program& program);

/// Builds the uncompute program: instructions in reverse order with each
/// gate replaced by its inverse. uncompute(uncompute(p)) == p for
/// measurement-free programs. DependencyGraph::build(uncompute_program(p))
/// equals DependencyGraph::build(p).reversed().
Program uncompute_program(const Program& program);

}  // namespace qspr
