// Gate alphabet of the QASM dialect used by the paper (Fig. 3): Hadamard and
// Pauli 1-qubit gates, the phase gates S/T and their adjoints, measurement,
// and the controlled-Pauli / SWAP 2-qubit gates.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/time.hpp"

namespace qspr {

enum class GateKind : std::uint8_t {
  // 1-qubit operations.
  H,
  X,
  Y,
  Z,
  S,
  Sdg,
  T,
  Tdg,
  Measure,
  // 2-qubit operations (first operand = control/source, second = target/destination).
  CX,
  CY,
  CZ,
  Swap,
};

/// Number of qubit operands (1 or 2).
[[nodiscard]] int arity(GateKind kind);

[[nodiscard]] inline bool is_two_qubit(GateKind kind) {
  return arity(kind) == 2;
}

[[nodiscard]] inline bool is_one_qubit(GateKind kind) {
  return arity(kind) == 1;
}

/// The inverse gate, used to build the uncompute graph (UIDG, paper §IV.A).
/// All gates in the alphabet are self-inverse except S/T (-> Sdg/Tdg).
/// Measurement is not unitary; it maps to itself and callers that build a
/// UIDG for measured circuits must treat the result as schedule-shape only.
[[nodiscard]] GateKind inverse_of(GateKind kind);

/// Canonical QASM mnemonic, e.g. "C-X" for GateKind::CX.
[[nodiscard]] std::string_view mnemonic(GateKind kind);

/// Execution latency of the gate's trap operation under `params`
/// (T_1-qubit or T_2-qubit; measurement counts as a 1-qubit operation).
[[nodiscard]] Duration gate_delay(GateKind kind, const TechnologyParams& params);

}  // namespace qspr
