#include "circuit/program.hpp"

#include "common/error.hpp"

namespace qspr {

std::vector<QubitId> Instruction::operands() const {
  if (control.is_valid()) return {control, target};
  return {target};
}

QubitId Program::add_qubit(std::string qubit_name,
                           std::optional<int> init_value) {
  require(!qubit_name.empty(), "qubit name must be non-empty");
  if (find_qubit(qubit_name).is_valid()) {
    throw ValidationError("duplicate qubit declaration: " + qubit_name);
  }
  if (init_value.has_value() && *init_value != 0 && *init_value != 1) {
    throw ValidationError("qubit init value must be 0 or 1: " + qubit_name);
  }
  qubits_.push_back(QubitDecl{std::move(qubit_name), init_value});
  return QubitId::from_index(qubits_.size() - 1);
}

InstructionId Program::add_gate(GateKind kind, QubitId target) {
  require(is_one_qubit(kind), "1-qubit overload used with a 2-qubit gate");
  require(target.is_valid() && target.index() < qubits_.size(),
          "gate target out of range");
  const auto id = InstructionId::from_index(instructions_.size());
  instructions_.push_back(Instruction{id, kind, QubitId::invalid(), target});
  return id;
}

InstructionId Program::add_gate(GateKind kind, QubitId control,
                                QubitId target) {
  require(qspr::is_two_qubit(kind), "2-qubit overload used with a 1-qubit gate");
  require(control.is_valid() && control.index() < qubits_.size(),
          "gate control out of range");
  require(target.is_valid() && target.index() < qubits_.size(),
          "gate target out of range");
  if (control == target) {
    throw ValidationError("2-qubit gate with identical operands");
  }
  const auto id = InstructionId::from_index(instructions_.size());
  instructions_.push_back(Instruction{id, kind, control, target});
  return id;
}

const QubitDecl& Program::qubit(QubitId id) const {
  require(id.is_valid() && id.index() < qubits_.size(), "qubit id out of range");
  return qubits_[id.index()];
}

QubitId Program::find_qubit(std::string_view qubit_name) const {
  for (std::size_t i = 0; i < qubits_.size(); ++i) {
    if (qubits_[i].name == qubit_name) return QubitId::from_index(i);
  }
  return QubitId::invalid();
}

const Instruction& Program::instruction(InstructionId id) const {
  require(id.is_valid() && id.index() < instructions_.size(),
          "instruction id out of range");
  return instructions_[id.index()];
}

std::size_t Program::one_qubit_gate_count() const {
  std::size_t count = 0;
  for (const auto& instr : instructions_) {
    if (!instr.is_two_qubit()) ++count;
  }
  return count;
}

std::size_t Program::two_qubit_gate_count() const {
  return instructions_.size() - one_qubit_gate_count();
}

void Program::validate() const {
  for (const auto& instr : instructions_) {
    if (!instr.target.is_valid() || instr.target.index() >= qubits_.size()) {
      throw ValidationError("instruction references undeclared target qubit");
    }
    if (instr.is_two_qubit()) {
      if (!instr.control.is_valid() ||
          instr.control.index() >= qubits_.size()) {
        throw ValidationError("instruction references undeclared control qubit");
      }
      if (instr.control == instr.target) {
        throw ValidationError("2-qubit gate with identical operands");
      }
    } else if (instr.control.is_valid()) {
      throw ValidationError("1-qubit gate carries a control operand");
    }
  }
}

}  // namespace qspr
