// Graphviz export of dependency graphs, for documentation and debugging.
#pragma once

#include <string>

#include "circuit/dependency_graph.hpp"
#include "circuit/program.hpp"

namespace qspr {

/// Renders the graph in DOT format. Node labels show the gate mnemonic and
/// operand indices (or names when `program` is supplied).
std::string to_dot(const DependencyGraph& graph,
                   const Program* program = nullptr);

}  // namespace qspr
