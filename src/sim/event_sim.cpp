#include "sim/event_sim.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qspr {

namespace {

void erase_occupant(std::vector<QubitId>& occupants, QubitId qubit) {
  const auto it = std::find(occupants.begin(), occupants.end(), qubit);
  require(it != occupants.end(), "qubit not in expected trap");
  occupants.erase(it);
}

}  // namespace

EventSimulator::EventSimulator(const DependencyGraph& graph,
                               const Fabric& fabric,
                               const RoutingGraph& routing_graph,
                               std::vector<int> schedule_rank,
                               ExecutionOptions options)
    : graph_(&graph),
      fabric_(&fabric),
      rank_(std::move(schedule_rank)),
      options_(options),
      router_(routing_graph, options.tech, options.router) {
  options_.tech.validate();
  require(rank_.size() == graph.node_count(),
          "schedule rank size does not match instruction count");
  require(&routing_graph.fabric() == &fabric,
          "routing graph was built for a different fabric");
}

void EventSimulator::initialise(RunState& state,
                                const Placement& initial) const {
  if (initial.qubit_count() != graph_->qubit_count()) {
    throw ValidationError("placement qubit count does not match circuit");
  }
  initial.validate(*fabric_, options_.tech.trap_capacity);

  state.qubit_trap.resize(graph_->qubit_count());
  state.trap_occupants.assign(fabric_->trap_count(), {});
  state.trap_reserved_by.assign(fabric_->trap_count(),
                                InstructionId::invalid());
  for (std::size_t q = 0; q < graph_->qubit_count(); ++q) {
    const QubitId qubit = QubitId::from_index(q);
    const TrapId trap = initial.trap_of(qubit);
    state.qubit_trap[q] = trap;
    state.trap_occupants[trap.index()].push_back(qubit);
  }

  const std::size_t n = graph_->node_count();
  state.remaining_preds.resize(n);
  state.pending_arrivals.assign(n, 0);
  state.timings.assign(n, InstructionTiming{});
  state.home_trap = state.qubit_trap;
  state.return_target.assign(graph_->qubit_count(), TrapId::invalid());
  state.pending_returns.assign(n, 0);
  state.gate_done.assign(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = InstructionId::from_index(i);
    state.remaining_preds[i] =
        static_cast<int>(graph_->predecessors(id).size());
    if (state.remaining_preds[i] == 0) become_ready(state, id, 0);
  }
}

void EventSimulator::become_ready(RunState& state, InstructionId id,
                                  TimePoint now) const {
  state.timings[id.index()].ready = now;
  state.ready.insert({rank_[id.index()], id});
}

void EventSimulator::retry_busy(RunState& state, TimePoint /*now*/) const {
  for (const InstructionId id : state.busy) {
    state.ready.insert({rank_[id.index()], id});
  }
  state.busy.clear();
}

void EventSimulator::try_issue(RunState& state, TimePoint now) const {
  // One pass in rank order. A successful issue only consumes resources, so
  // instructions that fail here cannot become issueable until the next
  // state-changing event; they park in the busy queue.
  std::vector<InstructionId> candidates;
  candidates.reserve(state.ready.size());
  for (const auto& [rank, id] : state.ready) candidates.push_back(id);
  for (const InstructionId id : candidates) {
    state.ready.erase({rank_[id.index()], id});
    if (!attempt_issue(state, id, now)) {
      state.busy.push_back(id);
      ++state.stats.busy_enqueues;
    }
  }
}

bool EventSimulator::attempt_issue(RunState& state, InstructionId id,
                                   TimePoint now) const {
  const Instruction& instr = graph_->instruction(id);
  return instr.is_two_qubit() ? issue_two_qubit(state, id, now)
                              : issue_one_qubit(state, id, now);
}

bool EventSimulator::issue_one_qubit(RunState& state, InstructionId id,
                                     TimePoint now) const {
  const Instruction& instr = graph_->instruction(id);
  const QubitId qubit = instr.target;
  const TrapId trap = state.qubit_trap[qubit.index()];
  require(trap.is_valid(), "operand qubit is in transit at issue time");

  const auto& occupants = state.trap_occupants[trap.index()];
  const bool alone = occupants.size() == 1 && occupants.front() == qubit;
  if (alone && !state.trap_reserved_by[trap.index()].is_valid()) {
    state.timings[id.index()].issue = now;
    start_gate(state, id, trap, now);
    return true;
  }

  // §II.B: a 1-qubit operation requires the qubit alone in a trap, so a
  // co-resident qubit must first relocate to the nearest empty trap.
  const auto target = find_empty_trap(state, qubit_position(state, qubit));
  if (!target.has_value()) return false;
  auto path =
      router_.route_trap_to_trap(trap, *target, state.congestion, *state.arena);
  if (!path.has_value()) return false;

  state.timings[id.index()].issue = now;
  state.timings[id.index()].trap = *target;
  state.trap_reserved_by[target->index()] = id;
  state.pending_arrivals[id.index()] = 1;
  for (const ResourceUse& use : path->resource_uses) {
    state.congestion.acquire(use.resource);
  }
  dispatch_qubit(state, id, qubit, *path, now);
  return true;
}

bool EventSimulator::issue_two_qubit(RunState& state, InstructionId id,
                                     TimePoint now) const {
  const Instruction& instr = graph_->instruction(id);
  const QubitId a = instr.control;
  const QubitId b = instr.target;
  const TrapId trap_a = state.qubit_trap[a.index()];
  const TrapId trap_b = state.qubit_trap[b.index()];
  require(trap_a.is_valid() && trap_b.is_valid(),
          "operand qubit is in transit at issue time");

  // Operands already share a trap: execute in place.
  if (trap_a == trap_b) {
    state.timings[id.index()].issue = now;
    start_gate(state, id, trap_a, now);
    return true;
  }

  // Target trap selection (§IV.B): QSPR takes the nearest available trap to
  // the median of the operand positions; the destination-fixed policy of
  // prior art prefers the destination qubit's own trap.
  std::optional<TrapId> target;
  if (options_.dual_move) {
    const Position pa = qubit_position(state, a);
    const Position pb = qubit_position(state, b);
    const Position median{(pa.row + pb.row) / 2, (pa.col + pb.col) / 2};
    target = find_target_trap(state, median, instr);
  } else if (trap_available(state, trap_b, instr)) {
    target = trap_b;
  } else {
    target = find_target_trap(state, qubit_position(state, b), instr);
  }
  if (!target.has_value()) return false;

  std::vector<QubitId> moving;
  for (const QubitId q : {a, b}) {
    if (state.qubit_trap[q.index()] != *target) moving.push_back(q);
  }
  require(!moving.empty(), "2-qubit issue with no moving qubit");

  // Commit to the target trap, then dispatch each operand independently: the
  // second route sees the first one's reservations, and an operand whose
  // departure is fully congested waits in its trap until channels free up.
  state.timings[id.index()].issue = now;
  state.timings[id.index()].trap = *target;
  state.trap_reserved_by[target->index()] = id;
  state.pending_arrivals[id.index()] = static_cast<int>(moving.size());
  for (const QubitId q : moving) {
    if (!try_dispatch_operand(state, id, q, now)) {
      state.pending_routes.emplace_back(id, q);
    }
  }
  return true;
}

bool EventSimulator::try_dispatch_operand(RunState& state, InstructionId id,
                                          QubitId qubit, TimePoint now) const {
  const TrapId target = state.timings[id.index()].trap;
  auto path = router_.route_trap_to_trap(state.qubit_trap[qubit.index()],
                                         target, state.congestion,
                                         *state.arena);
  if (!path.has_value()) return false;
  for (const ResourceUse& use : path->resource_uses) {
    state.congestion.acquire(use.resource);
  }
  dispatch_qubit(state, id, qubit, *path, now);
  return true;
}

void EventSimulator::retry_pending_routes(RunState& state,
                                          TimePoint now) const {
  if (state.pending_routes.empty()) return;
  std::vector<std::pair<InstructionId, QubitId>> pending;
  pending.swap(state.pending_routes);
  for (const auto& [id, qubit] : pending) {
    if (!try_dispatch_operand(state, id, qubit, now)) {
      state.pending_routes.emplace_back(id, qubit);
    }
  }
}

void EventSimulator::dispatch_qubit(RunState& state, InstructionId id,
                                    QubitId qubit, const RoutedPath& path,
                                    TimePoint now,
                                    Event::Kind arrival_kind) const {
  const TrapId origin = state.qubit_trap[qubit.index()];
  erase_occupant(state.trap_occupants[origin.index()], qubit);
  state.qubit_trap[qubit.index()] = TrapId::invalid();

  TimePoint t = now;
  for (const PathStep& step : path.steps) {
    MicroOp op;
    op.kind = step.kind == StepKind::Move ? MicroOpKind::Move
                                          : MicroOpKind::Turn;
    op.instruction = id;
    op.qubit = qubit;
    op.from = step.from;
    op.to = step.to;
    op.start = t;
    op.end = t + step.duration;
    state.trace.add(op);
    t = op.end;
    if (step.kind == StepKind::Move) {
      ++state.stats.moves;
    } else {
      ++state.stats.turns;
    }
  }

  for (const ResourceUse& use : path.resource_uses) {
    Event event;
    event.time = now + use.exit_offset;
    event.seq = state.next_seq++;
    event.kind = Event::Kind::ResourceRelease;
    event.resource = use.resource;
    state.events.push(event);
  }

  Event arrival;
  arrival.time = now + path.total_delay();
  arrival.seq = state.next_seq++;
  arrival.kind = arrival_kind;
  arrival.instruction = id;
  arrival.qubit = qubit;
  state.events.push(arrival);
}

void EventSimulator::start_gate(RunState& state, InstructionId id, TrapId trap,
                                TimePoint now) const {
  const Instruction& instr = graph_->instruction(id);
  state.trap_reserved_by[trap.index()] = id;
  state.timings[id.index()].gate_start = now;
  state.timings[id.index()].trap = trap;
  const Duration delay = gate_delay(instr.kind, options_.tech);

  MicroOp op;
  op.kind = MicroOpKind::Gate;
  op.instruction = id;
  op.from = fabric_->trap(trap).position;
  op.to = op.from;
  op.start = now;
  op.end = now + delay;
  state.trace.add(op);

  Event finished;
  finished.time = now + delay;
  finished.seq = state.next_seq++;
  finished.kind = Event::Kind::GateFinished;
  finished.instruction = id;
  state.events.push(finished);
}

void EventSimulator::finish_gate(RunState& state, InstructionId id,
                                 TimePoint now) const {
  state.timings[id.index()].gate_end = now;
  state.gate_done[id.index()] = true;
  const TrapId trap = state.timings[id.index()].trap;
  require(state.trap_reserved_by[trap.index()] == id,
          "gate finished in a trap reserved by someone else");
  state.trap_reserved_by[trap.index()] = InstructionId::invalid();

  if (options_.return_home_after_gate) {
    // QUALE storage discipline: visiting ions shuttle back before dependents
    // may proceed.
    const Instruction& instr = graph_->instruction(id);
    for (const QubitId operand : instr.operands()) {
      if (state.qubit_trap[operand.index()] !=
          state.home_trap[operand.index()]) {
        if (!initiate_return(state, id, operand, now)) {
          state.deferred_returns.emplace_back(id, operand);
          ++state.pending_returns[id.index()];
        }
      }
    }
  }
  if (state.pending_returns[id.index()] == 0) {
    complete_instruction(state, id, now);
  }
}

void EventSimulator::complete_instruction(RunState& state, InstructionId id,
                                          TimePoint now) const {
  ++state.done_count;
  for (const InstructionId succ : graph_->successors(id)) {
    if (--state.remaining_preds[succ.index()] == 0) {
      become_ready(state, succ, now);
    }
  }
}

bool EventSimulator::initiate_return(RunState& state, InstructionId id,
                                     QubitId qubit, TimePoint now) const {
  const TrapId origin = state.qubit_trap[qubit.index()];
  require(origin.is_valid(), "returning qubit is not parked");
  const TrapId home = state.home_trap[qubit.index()];

  // Preferred target is the home trap; fall back to the nearest empty trap
  // when something else claimed it in the meantime.
  TrapId target = home;
  const bool home_free =
      state.trap_occupants[home.index()].empty() &&
      !state.trap_reserved_by[home.index()].is_valid();
  if (!home_free) {
    const auto fallback =
        find_empty_trap(state, fabric_->trap(home).position);
    if (!fallback.has_value()) return false;
    target = *fallback;
  }

  auto path = router_.route_trap_to_trap(origin, target, state.congestion,
                                         *state.arena);
  if (!path.has_value()) return false;

  state.trap_reserved_by[target.index()] = id;
  state.return_target[qubit.index()] = target;
  for (const ResourceUse& use : path->resource_uses) {
    state.congestion.acquire(use.resource);
  }
  ++state.pending_returns[id.index()];
  dispatch_qubit(state, id, qubit, *path, now,
                 Event::Kind::ReturnArrived);
  return true;
}

void EventSimulator::retry_deferred_returns(RunState& state,
                                            TimePoint now) const {
  if (state.deferred_returns.empty()) return;
  std::vector<std::pair<InstructionId, QubitId>> pending;
  pending.swap(state.deferred_returns);
  for (const auto& [id, qubit] : pending) {
    // The pending_returns slot was counted when the return was deferred.
    --state.pending_returns[id.index()];
    if (!initiate_return(state, id, qubit, now)) {
      state.deferred_returns.emplace_back(id, qubit);
      ++state.pending_returns[id.index()];
    }
  }
}

bool EventSimulator::trap_available(const RunState& state, TrapId trap,
                                    const Instruction& instr) const {
  const InstructionId holder = state.trap_reserved_by[trap.index()];
  if (holder.is_valid() && holder != instr.id) return false;
  for (const QubitId occupant : state.trap_occupants[trap.index()]) {
    if (!instr.uses(occupant)) return false;
  }
  return true;
}

std::optional<TrapId> EventSimulator::find_target_trap(
    const RunState& state, Position anchor, const Instruction& instr) const {
  if (options_.trap_selection == TrapSelectionPolicy::NearestToAnchor) {
    for (const TrapId trap : fabric_->traps_by_distance(anchor)) {
      if (trap_available(state, trap, instr)) return trap;
    }
    return std::nullopt;
  }

  // CongestionAware: collect the nearest available candidates and pick the
  // one whose access channels carry the least load (ties: nearer first).
  std::optional<TrapId> best;
  int best_load = 0;
  int collected = 0;
  for (const TrapId trap : fabric_->traps_by_distance(anchor)) {
    if (!trap_available(state, trap, instr)) continue;
    int load = 0;
    for (const TrapPort& port : fabric_->trap(trap).ports) {
      const SegmentId segment = fabric_->segment_at(port.channel_cell);
      if (segment.is_valid()) load += state.congestion.segment_load(segment);
    }
    if (!best.has_value() || load < best_load) {
      best = trap;
      best_load = load;
    }
    if (++collected >= options_.trap_candidates) break;
  }
  return best;
}

std::optional<TrapId> EventSimulator::find_empty_trap(const RunState& state,
                                                      Position anchor) const {
  for (const TrapId trap : fabric_->traps_by_distance(anchor)) {
    if (state.trap_occupants[trap.index()].empty() &&
        !state.trap_reserved_by[trap.index()].is_valid()) {
      return trap;
    }
  }
  return std::nullopt;
}

Position EventSimulator::qubit_position(const RunState& state,
                                        QubitId qubit) const {
  const TrapId trap = state.qubit_trap[qubit.index()];
  require(trap.is_valid(), "qubit position queried while in transit");
  return fabric_->trap(trap).position;
}

ExecutionResult EventSimulator::run(const Placement& initial) const {
  SearchArena<Duration> arena;
  return run(initial, arena);
}

ExecutionResult EventSimulator::run(const Placement& initial,
                                    SearchArena<Duration>& arena) const {
  // The arena's settle counter is monotone across its lifetime (it may be
  // shared by many runs); attribute only this run's searches to the stats.
  const std::uint64_t settles_before = arena.settle_count();
  RunState state(fabric_->segment_count(), fabric_->junction_count(), arena);
  initialise(state, initial);
  try_issue(state, 0);

  while (!state.events.empty()) {
    const Event event = state.events.top();
    state.events.pop();
    const TimePoint now = event.time;
    bool fabric_changed = false;

    switch (event.kind) {
      case Event::Kind::ResourceRelease:
        state.congestion.release(event.resource);
        fabric_changed = true;
        break;
      case Event::Kind::QubitArrived: {
        const InstructionId id = event.instruction;
        // The reserved target trap was recorded at issue time.
        const TrapId destination = state.timings[id.index()].trap;
        require(destination.is_valid(),
                "arrival for an instruction with no reserved trap");
        state.qubit_trap[event.qubit.index()] = destination;
        state.trap_occupants[destination.index()].push_back(event.qubit);
        if (!graph_->instruction(id).is_two_qubit()) {
          // A 1-qubit relocation settles the qubit in a new home.
          state.home_trap[event.qubit.index()] = destination;
        }
        if (--state.pending_arrivals[id.index()] == 0) {
          start_gate(state, id, destination, now);
        }
        break;
      }
      case Event::Kind::ReturnArrived: {
        const InstructionId id = event.instruction;
        const QubitId qubit = event.qubit;
        const TrapId destination = state.return_target[qubit.index()];
        require(destination.is_valid(), "return without a target trap");
        state.return_target[qubit.index()] = TrapId::invalid();
        require(state.trap_reserved_by[destination.index()] == id,
                "return target reservation lost");
        state.trap_reserved_by[destination.index()] =
            InstructionId::invalid();
        state.qubit_trap[qubit.index()] = destination;
        state.trap_occupants[destination.index()].push_back(qubit);
        state.home_trap[qubit.index()] = destination;
        if (--state.pending_returns[id.index()] == 0 &&
            state.gate_done[id.index()]) {
          complete_instruction(state, id, now);
        }
        fabric_changed = true;  // a trap reservation was freed
        break;
      }
      case Event::Kind::GateFinished:
        finish_gate(state, event.instruction, now);
        fabric_changed = true;
        break;
    }

    if (fabric_changed) {
      retry_pending_routes(state, now);
      retry_deferred_returns(state, now);
      retry_busy(state, now);
      try_issue(state, now);
    }
  }

  if (state.done_count != graph_->node_count()) {
    throw SimulationError(
        "execution stalled: " +
        std::to_string(graph_->node_count() - state.done_count) +
        " instruction(s) cannot be placed/routed on this fabric");
  }

  ExecutionResult result;
  result.initial_placement = initial;
  result.trace = std::move(state.trace);
  result.trace.sort_by_time();
  result.latency = result.trace.makespan();
  result.timings = std::move(state.timings);
  result.stats = state.stats;
  result.stats.nodes_settled =
      static_cast<long long>(arena.settle_count() - settles_before);
  result.stats.total_routing = 0;
  result.stats.total_congestion = 0;
  for (const InstructionTiming& timing : result.timings) {
    result.stats.total_routing += timing.t_routing();
    result.stats.total_congestion += timing.t_congestion();
  }
  result.final_placement = Placement(graph_->qubit_count());
  for (std::size_t q = 0; q < graph_->qubit_count(); ++q) {
    result.final_placement.set(QubitId::from_index(q), state.qubit_trap[q]);
  }
  return result;
}

ExecutionResult execute_circuit(const DependencyGraph& graph,
                                const Fabric& fabric,
                                const RoutingGraph& routing_graph,
                                const std::vector<int>& schedule_rank,
                                const Placement& initial,
                                const ExecutionOptions& options) {
  EventSimulator simulator(graph, fabric, routing_graph, schedule_rank,
                           options);
  return simulator.run(initial);
}

}  // namespace qspr
