#include "sim/utilization.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace qspr {

namespace {

struct Interval {
  TimePoint begin = 0;
  TimePoint end = 0;
};

std::vector<Interval> merge_intervals(std::vector<Interval> intervals) {
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin;
            });
  std::vector<Interval> merged;
  for (const Interval& iv : intervals) {
    if (!merged.empty() && iv.begin <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, iv.end);
    } else {
      merged.push_back(iv);
    }
  }
  return merged;
}

}  // namespace

ResourceUtilization analyze_utilization(const Trace& trace,
                                        const Fabric& fabric) {
  ResourceUtilization result;
  result.segment_busy.assign(fabric.segment_count(), 0);
  result.junction_busy.assign(fabric.junction_count(), 0);
  result.segment_peak.assign(fabric.segment_count(), 0);
  result.makespan = trace.makespan();

  // (resource, qubit) -> raw presence intervals.
  std::map<std::pair<std::int32_t, std::int32_t>, std::vector<Interval>>
      segment_touches;
  std::map<std::pair<std::int32_t, std::int32_t>, std::vector<Interval>>
      junction_touches;
  for (const MicroOp& op : trace.ops()) {
    if (op.kind == MicroOpKind::Gate) continue;
    for (const Position cell : {op.from, op.to}) {
      const SegmentId segment = fabric.segment_at(cell);
      if (segment.is_valid()) {
        segment_touches[{segment.value(), op.qubit.value()}].push_back(
            {op.start, op.end});
      }
      const JunctionId junction = fabric.junction_at(cell);
      if (junction.is_valid()) {
        junction_touches[{junction.value(), op.qubit.value()}].push_back(
            {op.start, op.end});
      }
    }
  }

  // Merge per qubit, then take the union per resource for busy time and a
  // sweep for peak occupancy.
  std::map<std::int32_t, std::vector<Interval>> segment_episodes;
  for (auto& [key, intervals] : segment_touches) {
    for (const Interval& iv : merge_intervals(std::move(intervals))) {
      segment_episodes[key.first].push_back(iv);
    }
  }
  for (auto& [segment, episodes] : segment_episodes) {
    // Peak: sweep.
    std::vector<std::pair<TimePoint, int>> events;
    for (const Interval& iv : episodes) {
      events.emplace_back(iv.begin, +1);
      events.emplace_back(iv.end, -1);
    }
    std::sort(events.begin(), events.end());
    int current = 0;
    int peak = 0;
    for (const auto& [time, delta] : events) {
      current += delta;
      peak = std::max(peak, current);
    }
    result.segment_peak[static_cast<std::size_t>(segment)] = peak;
    // Busy: union across qubits.
    Duration busy = 0;
    for (const Interval& iv : merge_intervals(std::move(episodes))) {
      busy += iv.end - iv.begin;
    }
    result.segment_busy[static_cast<std::size_t>(segment)] = busy;
  }

  std::map<std::int32_t, std::vector<Interval>> junction_episodes;
  for (auto& [key, intervals] : junction_touches) {
    for (const Interval& iv : merge_intervals(std::move(intervals))) {
      junction_episodes[key.first].push_back(iv);
    }
  }
  for (auto& [junction, episodes] : junction_episodes) {
    Duration busy = 0;
    for (const Interval& iv : merge_intervals(std::move(episodes))) {
      busy += iv.end - iv.begin;
    }
    result.junction_busy[static_cast<std::size_t>(junction)] = busy;
  }
  return result;
}

std::string utilization_summary(const ResourceUtilization& utilization,
                                const Fabric& fabric, int top_n) {
  std::vector<SegmentId> order(fabric.segment_count());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = SegmentId::from_index(i);
  }
  std::sort(order.begin(), order.end(), [&](SegmentId a, SegmentId b) {
    return utilization.segment_busy[a.index()] >
           utilization.segment_busy[b.index()];
  });

  Duration total_busy = 0;
  int used = 0;
  for (const Duration busy : utilization.segment_busy) {
    total_busy += busy;
    if (busy > 0) ++used;
  }

  std::ostringstream os;
  os << "channel utilisation: " << used << "/" << fabric.segment_count()
     << " segments used, total busy time " << total_busy << " us over a "
     << utilization.makespan << " us makespan\n";
  os << "busiest segments:\n";
  for (int i = 0; i < top_n && i < static_cast<int>(order.size()); ++i) {
    const SegmentId id = order[static_cast<std::size_t>(i)];
    if (utilization.segment_busy[id.index()] == 0) break;
    const ChannelSegment& segment = fabric.segment(id);
    os << "  segment " << id.value() << " at "
       << to_string(segment.cells.front()) << ".."
       << to_string(segment.cells.back()) << ": busy "
       << utilization.segment_busy[id.index()] << " us ("
       << static_cast<int>(100.0 * utilization.segment_busy_fraction(id))
       << "%), peak occupancy " << utilization.segment_peak[id.index()]
       << "\n";
  }
  return os.str();
}

std::string render_heatmap(const ResourceUtilization& utilization,
                           const Fabric& fabric) {
  std::string out;
  out.reserve(static_cast<std::size_t>(fabric.rows()) *
              static_cast<std::size_t>(fabric.cols() + 1));
  for (int row = 0; row < fabric.rows(); ++row) {
    for (int col = 0; col < fabric.cols(); ++col) {
      const Position p{row, col};
      switch (fabric.cell(p)) {
        case CellType::Empty: out += ' '; break;
        case CellType::Junction: out += 'J'; break;
        case CellType::Trap: out += 'T'; break;
        case CellType::Channel: {
          const double fraction =
              utilization.segment_busy_fraction(fabric.segment_at(p));
          const int decile = std::min(9, static_cast<int>(fraction * 10.0));
          out += static_cast<char>('0' + decile);
          break;
        }
      }
    }
    out += '\n';
  }
  return out;
}

std::string render_gantt(const std::vector<InstructionTiming>& timings,
                         const DependencyGraph& graph, int width) {
  TimePoint makespan = 0;
  for (const InstructionTiming& t : timings) {
    makespan = std::max(makespan, t.gate_end);
  }
  if (makespan == 0 || timings.empty()) return "(empty execution)\n";

  const auto column = [&](TimePoint t) {
    return static_cast<int>((t * (width - 1)) / makespan);
  };

  std::ostringstream os;
  os << "time 0 .. " << makespan
     << " us   ('.' waiting, '-' routing, '#' gate)\n";
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const InstructionTiming& t = timings[i];
    std::string row(static_cast<std::size_t>(width), ' ');
    for (int c = column(t.ready); c < column(t.issue); ++c) {
      row[static_cast<std::size_t>(c)] = '.';
    }
    for (int c = column(t.issue); c < column(t.gate_start); ++c) {
      row[static_cast<std::size_t>(c)] = '-';
    }
    for (int c = column(t.gate_start); c <= column(t.gate_end - 1); ++c) {
      row[static_cast<std::size_t>(c)] = '#';
    }
    const Instruction& instr =
        graph.instruction(InstructionId::from_index(i));
    std::ostringstream label;
    label << '#' << i << ' ' << mnemonic(instr.kind);
    os << row << "  " << label.str() << "\n";
  }
  return os.str();
}

}  // namespace qspr
