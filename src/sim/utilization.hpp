// Post-mapping analysis of a control trace: per-resource utilisation (how
// busy each channel segment and junction was), an ASCII fabric heat map, and
// an instruction-level Gantt chart. These reports make the congestion
// behaviour behind the paper's Table 2 visible.
#pragma once

#include <string>
#include <vector>

#include "circuit/dependency_graph.hpp"
#include "common/time.hpp"
#include "fabric/fabric.hpp"
#include "sim/event_sim.hpp"
#include "sim/trace.hpp"

namespace qspr {

struct ResourceUtilization {
  /// Busy time (any qubit inside) per channel segment / junction.
  std::vector<Duration> segment_busy;
  std::vector<Duration> junction_busy;
  /// Peak simultaneous occupancy per segment.
  std::vector<int> segment_peak;
  Duration makespan = 0;

  [[nodiscard]] double segment_busy_fraction(SegmentId id) const {
    return makespan > 0 ? static_cast<double>(segment_busy[id.index()]) /
                              static_cast<double>(makespan)
                        : 0.0;
  }
};

/// Reconstructs resource occupancy from the micro-ops (cells touched by
/// moves and turns, merged per qubit into presence episodes).
ResourceUtilization analyze_utilization(const Trace& trace,
                                        const Fabric& fabric);

/// One-paragraph summary: busiest segments, mean/max busy fractions.
std::string utilization_summary(const ResourceUtilization& utilization,
                                const Fabric& fabric, int top_n = 5);

/// ASCII heat map of the fabric: channel cells drawn as digits 0..9
/// (busy-fraction deciles), junctions as J, traps as T.
std::string render_heatmap(const ResourceUtilization& utilization,
                           const Fabric& fabric);

/// Instruction-level Gantt chart of the execution. Each row is one
/// instruction: '.' waiting (congestion), '-' routing, '#' gate operation.
std::string render_gantt(const std::vector<InstructionTiming>& timings,
                         const DependencyGraph& graph, int width = 72);

}  // namespace qspr
