// Textual serialisation of control traces, so mapped results can be stored,
// diffed and consumed by downstream tooling (e.g. a machine controller or a
// visualiser) without linking against the library.
//
// Format: one micro-op per line,
//   MOVE q<qubit> (r,c) (r,c) <start> <end> #<instruction>
//   TURN q<qubit> (r,c) (r,c) <start> <end> #<instruction>
//   GATE -       (r,c) (r,c) <start> <end> #<instruction>
// '#' comment lines and blank lines are ignored when parsing.
#pragma once

#include <string>
#include <string_view>

#include "sim/trace.hpp"

namespace qspr {

/// Renders the trace; parse_trace(write_trace(t)) reproduces t exactly.
std::string write_trace(const Trace& trace);

/// Parses the textual form. Throws ParseError on malformed lines.
Trace parse_trace(std::string_view text);

}  // namespace qspr
