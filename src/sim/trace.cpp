#include "sim/trace.hpp"

#include <algorithm>
#include <sstream>

namespace qspr {

namespace {

std::size_t count_kind(const std::vector<MicroOp>& ops, MicroOpKind kind) {
  return static_cast<std::size_t>(
      std::count_if(ops.begin(), ops.end(),
                    [kind](const MicroOp& op) { return op.kind == kind; }));
}

}  // namespace

std::size_t Trace::move_count() const {
  return count_kind(ops_, MicroOpKind::Move);
}

std::size_t Trace::turn_count() const {
  return count_kind(ops_, MicroOpKind::Turn);
}

std::size_t Trace::gate_count() const {
  return count_kind(ops_, MicroOpKind::Gate);
}

TimePoint Trace::makespan() const {
  TimePoint latest = 0;
  for (const MicroOp& op : ops_) latest = std::max(latest, op.end);
  return latest;
}

void Trace::sort_by_time() {
  std::stable_sort(ops_.begin(), ops_.end(),
                   [](const MicroOp& a, const MicroOp& b) {
                     if (a.start != b.start) return a.start < b.start;
                     return a.end < b.end;
                   });
}

Trace Trace::time_reversed() const {
  const TimePoint total = makespan();
  Trace reversed;
  for (const MicroOp& op : ops_) {
    MicroOp mirrored = op;
    mirrored.start = total - op.end;
    mirrored.end = total - op.start;
    if (op.kind == MicroOpKind::Move) {
      mirrored.from = op.to;
      mirrored.to = op.from;
    }
    reversed.add(mirrored);
  }
  reversed.sort_by_time();
  return reversed;
}

std::string Trace::to_string() const {
  std::ostringstream os;
  for (const MicroOp& op : ops_) {
    os << '[' << op.start << ',' << op.end << "] ";
    switch (op.kind) {
      case MicroOpKind::Move:
        os << "move  q" << op.qubit.value() << ' ' << qspr::to_string(op.from)
           << " -> " << qspr::to_string(op.to);
        break;
      case MicroOpKind::Turn:
        os << "turn  q" << op.qubit.value() << " at "
           << qspr::to_string(op.from);
        break;
      case MicroOpKind::Gate:
        os << "gate  #" << op.instruction.value() << " at "
           << qspr::to_string(op.from);
        break;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace qspr
