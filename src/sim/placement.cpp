#include "sim/placement.hpp"

#include <map>

#include "common/error.hpp"

namespace qspr {

void Placement::set(QubitId qubit, TrapId trap) {
  require(qubit.is_valid() && qubit.index() < traps_.size(),
          "qubit id out of range");
  traps_[qubit.index()] = trap;
}

TrapId Placement::trap_of(QubitId qubit) const {
  require(qubit.is_valid() && qubit.index() < traps_.size(),
          "qubit id out of range");
  return traps_[qubit.index()];
}

bool Placement::is_complete() const {
  for (const TrapId trap : traps_) {
    if (!trap.is_valid()) return false;
  }
  return !traps_.empty();
}

void Placement::validate(const Fabric& fabric, int trap_capacity) const {
  std::map<TrapId, int> occupancy;
  for (std::size_t q = 0; q < traps_.size(); ++q) {
    const TrapId trap = traps_[q];
    if (!trap.is_valid() || trap.index() >= fabric.trap_count()) {
      throw ValidationError("qubit " + std::to_string(q) +
                            " is not placed in a valid trap");
    }
    if (++occupancy[trap] > trap_capacity) {
      throw ValidationError("trap " + std::to_string(trap.value()) +
                            " holds more than " +
                            std::to_string(trap_capacity) + " qubit(s)");
    }
  }
}

}  // namespace qspr
