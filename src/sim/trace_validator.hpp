// Independent validation of control traces. Reconstructs every qubit's
// trajectory from the micro-ops and checks the physical invariants of the
// ion-trap fabric model, without reusing any simulator state:
//
//  * temporal consistency — a qubit's ops never overlap in time;
//  * spatial continuity — moves start where the previous op ended, are
//    cell-adjacent, travel over channels/junctions and end in traps;
//  * correct durations — moves take t_move, turns t_turn, gates t_gate;
//  * capacity — channel segments and junctions never hold more qubits than
//    their capacity, traps never more than trap_capacity;
//  * gate correctness — each instruction executes exactly once, in a trap,
//    with all its operand qubits present.
//
// Used by the test suite on every mapper's output and available to users as
// a debugging aid.
#pragma once

#include <string>
#include <vector>

#include "circuit/dependency_graph.hpp"
#include "fabric/fabric.hpp"
#include "sim/placement.hpp"
#include "sim/trace.hpp"

namespace qspr {

/// Returns human-readable violations; an empty vector means the trace is a
/// physically consistent execution of `graph` from `initial`.
std::vector<std::string> validate_trace(const Trace& trace,
                                        const DependencyGraph& graph,
                                        const Fabric& fabric,
                                        const Placement& initial,
                                        const TechnologyParams& params);

}  // namespace qspr
