// Qubit trajectory rendering: overlay the path(s) a qubit took during an
// execution onto the fabric drawing — the visual counterpart of the
// micro-command trace, for debugging routing decisions.
#pragma once

#include <string>

#include "circuit/dependency_graph.hpp"
#include "common/ids.hpp"
#include "fabric/fabric.hpp"
#include "sim/trace.hpp"

namespace qspr {

/// Renders the fabric with the cells `qubit` visited marked: '*' for cells
/// moved through, 'o' for cells where it turned, '@' for traps where it
/// executed gates (gates are attributed via `graph`; when null, every gate
/// site in the trace is marked). Other cells use the standard legend.
std::string render_trajectory(const Trace& trace, const Fabric& fabric,
                              QubitId qubit,
                              const DependencyGraph* graph = nullptr);

/// Total distance travelled (cells) and turns taken by `qubit` in `trace`.
struct TravelSummary {
  int moves = 0;
  int turns = 0;
  Duration travel_time = 0;  // moves + turns, weighted by their durations
};
TravelSummary summarize_travel(const Trace& trace, QubitId qubit);

}  // namespace qspr
