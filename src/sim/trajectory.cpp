#include "sim/trajectory.hpp"

#include "fabric/text_io.hpp"

namespace qspr {

std::string render_trajectory(const Trace& trace, const Fabric& fabric,
                              QubitId qubit, const DependencyGraph* graph) {
  std::string drawing = render_fabric(fabric);
  const std::size_t stride = static_cast<std::size_t>(fabric.cols()) + 1;
  const auto mark = [&](Position p, char glyph) {
    if (!fabric.in_bounds(p)) return;
    char& cell = drawing[static_cast<std::size_t>(p.row) * stride +
                         static_cast<std::size_t>(p.col)];
    // Gates dominate turns dominate moves.
    if (cell == '@' || (cell == 'o' && glyph == '*')) return;
    cell = glyph;
  };

  for (const MicroOp& op : trace.ops()) {
    switch (op.kind) {
      case MicroOpKind::Move:
        if (op.qubit == qubit) {
          mark(op.from, '*');
          mark(op.to, '*');
        }
        break;
      case MicroOpKind::Turn:
        if (op.qubit == qubit) mark(op.from, 'o');
        break;
      case MicroOpKind::Gate:
        if (graph == nullptr ||
            graph->instruction(op.instruction).uses(qubit)) {
          mark(op.from, '@');
        }
        break;
    }
  }
  return drawing;
}

TravelSummary summarize_travel(const Trace& trace, QubitId qubit) {
  TravelSummary summary;
  for (const MicroOp& op : trace.ops()) {
    if (op.qubit != qubit) continue;
    if (op.kind == MicroOpKind::Move) {
      ++summary.moves;
      summary.travel_time += op.end - op.start;
    } else if (op.kind == MicroOpKind::Turn) {
      ++summary.turns;
      summary.travel_time += op.end - op.start;
    }
  }
  return summary;
}

}  // namespace qspr
