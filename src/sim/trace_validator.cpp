#include "sim/trace_validator.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace qspr {

namespace {

struct Interval {
  TimePoint begin = 0;
  TimePoint end = 0;
};

/// Sweep: max simultaneous overlap among intervals (boundaries exclusive:
/// an interval ending at t does not overlap one starting at t).
int max_overlap(std::vector<Interval>& intervals) {
  std::vector<std::pair<TimePoint, int>> events;
  events.reserve(intervals.size() * 2);
  for (const Interval& iv : intervals) {
    events.emplace_back(iv.begin, +1);
    events.emplace_back(iv.end, -1);
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;  // process -1 before +1 at ties
            });
  int current = 0;
  int peak = 0;
  for (const auto& [time, delta] : events) {
    current += delta;
    peak = std::max(peak, current);
  }
  return peak;
}

std::string describe_op(const MicroOp& op) {
  std::ostringstream os;
  os << "op[" << op.start << "," << op.end << "]";
  if (op.qubit.is_valid()) os << " q" << op.qubit.value();
  os << " #" << op.instruction.value();
  return os.str();
}

}  // namespace

std::vector<std::string> validate_trace(const Trace& trace,
                                        const DependencyGraph& graph,
                                        const Fabric& fabric,
                                        const Placement& initial,
                                        const TechnologyParams& params) {
  std::vector<std::string> violations;
  const auto report = [&violations](const std::string& message) {
    violations.push_back(message);
  };

  // Partition ops per qubit (moves/turns) and per instruction (gates).
  const std::size_t qubit_count = graph.qubit_count();
  std::vector<std::vector<const MicroOp*>> qubit_ops(qubit_count);
  std::vector<const MicroOp*> gate_ops(graph.node_count(), nullptr);
  for (const MicroOp& op : trace.ops()) {
    if (op.kind == MicroOpKind::Gate) {
      if (!op.instruction.is_valid() ||
          op.instruction.index() >= graph.node_count()) {
        report("gate op with invalid instruction id");
        continue;
      }
      if (gate_ops[op.instruction.index()] != nullptr) {
        report("instruction #" + std::to_string(op.instruction.value()) +
               " executes more than once");
      }
      gate_ops[op.instruction.index()] = &op;
      continue;
    }
    if (!op.qubit.is_valid() || op.qubit.index() >= qubit_count) {
      report("relocation op with invalid qubit id: " + describe_op(op));
      continue;
    }
    qubit_ops[op.qubit.index()].push_back(&op);
  }

  // Every instruction must have executed, with the right duration & trap.
  for (std::size_t i = 0; i < graph.node_count(); ++i) {
    const Instruction& instr =
        graph.instruction(InstructionId::from_index(i));
    const MicroOp* gate = gate_ops[i];
    if (gate == nullptr) {
      report("instruction #" + std::to_string(i) + " never executed");
      continue;
    }
    if (gate->end - gate->start != gate_delay(instr.kind, params)) {
      report("instruction #" + std::to_string(i) + " has wrong gate delay");
    }
    if (!fabric.trap_at(gate->from).is_valid()) {
      report("instruction #" + std::to_string(i) +
             " executed outside a trap at " + to_string(gate->from));
    }
  }

  // Per-qubit trajectory checks; also reconstruct trap-residency and
  // channel/junction occupancy intervals. Occupancy is collected per
  // (resource, qubit) and merged, so that one qubit traversing several cells
  // of a segment counts once, not once per cell.
  std::map<std::int32_t, std::vector<Interval>> trap_residency;
  std::map<std::pair<std::int32_t, std::size_t>, std::vector<Interval>>
      segment_touches;
  std::map<std::pair<std::int32_t, std::size_t>, std::vector<Interval>>
      junction_touches;

  std::size_t current_qubit = 0;
  const auto record_cell = [&](Position cell, TimePoint begin, TimePoint end) {
    const SegmentId segment = fabric.segment_at(cell);
    if (segment.is_valid()) {
      segment_touches[{segment.value(), current_qubit}].push_back(
          {begin, end});
    }
    const JunctionId junction = fabric.junction_at(cell);
    if (junction.is_valid()) {
      junction_touches[{junction.value(), current_qubit}].push_back(
          {begin, end});
    }
  };

  const TimePoint makespan = trace.makespan();
  for (std::size_t q = 0; q < qubit_count; ++q) {
    current_qubit = q;
    auto& ops = qubit_ops[q];
    std::stable_sort(ops.begin(), ops.end(),
                     [](const MicroOp* a, const MicroOp* b) {
                       return a->start < b->start;
                     });
    const TrapId start_trap = initial.trap_of(QubitId::from_index(q));
    Position position = fabric.trap(start_trap).position;
    TimePoint clock = 0;

    // Collect gate ops of instructions using q to interleave position checks.
    for (const MicroOp* op : ops) {
      if (op->start < clock) {
        report("q" + std::to_string(q) + " ops overlap in time: " +
               describe_op(*op));
      }
      // If the qubit was parked in a trap, record the residency interval.
      if (fabric.trap_at(position).is_valid() && op->start > clock) {
        trap_residency[fabric.trap_at(position).value()].push_back(
            {clock, op->start});
      }
      if (op->kind == MicroOpKind::Move) {
        if (!(op->from == position)) {
          report("q" + std::to_string(q) + " move starts at " +
                 to_string(op->from) + " but qubit is at " +
                 to_string(position));
        }
        if (!are_adjacent(op->from, op->to)) {
          report("q" + std::to_string(q) + " non-adjacent move " +
                 describe_op(*op));
        }
        if (op->end - op->start != params.t_move) {
          report("q" + std::to_string(q) + " move with wrong duration");
        }
        const CellType to_type = fabric.cell(op->to);
        if (to_type == CellType::Empty) {
          report("q" + std::to_string(q) + " moves into an empty cell at " +
                 to_string(op->to));
        }
        record_cell(op->from, op->start, op->end);
        record_cell(op->to, op->start, op->end);
        position = op->to;
      } else {  // Turn
        if (!(op->from == position) || !(op->to == position)) {
          report("q" + std::to_string(q) + " turn not in place: " +
                 describe_op(*op));
        }
        if (op->end - op->start != params.t_turn) {
          report("q" + std::to_string(q) + " turn with wrong duration");
        }
        record_cell(op->from, op->start, op->end);
      }
      clock = std::max(clock, op->end);
    }
    // Trailing residency until the end of execution.
    if (fabric.trap_at(position).is_valid()) {
      trap_residency[fabric.trap_at(position).value()].push_back(
          {clock, makespan + 1});
    } else {
      report("q" + std::to_string(q) + " does not end parked in a trap");
    }
  }

  // Gate preconditions: all operand qubits resident at the gate's trap for
  // the whole gate interval.
  for (std::size_t i = 0; i < graph.node_count(); ++i) {
    const MicroOp* gate = gate_ops[i];
    if (gate == nullptr) continue;
    const Instruction& instr =
        graph.instruction(InstructionId::from_index(i));
    const TrapId trap = fabric.trap_at(gate->from);
    if (!trap.is_valid()) continue;  // already reported
    for (const QubitId operand : instr.operands()) {
      // Replay the operand's trajectory to find its position at gate time.
      Position position =
          fabric.trap(initial.trap_of(operand)).position;
      for (const MicroOp* op : qubit_ops[operand.index()]) {
        if (op->end <= gate->start) {
          if (op->kind == MicroOpKind::Move) position = op->to;
        } else if (op->start < gate->end) {
          report("q" + std::to_string(operand.value()) +
                 " relocates during gate #" + std::to_string(i));
        }
      }
      if (!(position == gate->from)) {
        report("q" + std::to_string(operand.value()) +
               " is at " + to_string(position) + " but gate #" +
               std::to_string(i) + " executes at " + to_string(gate->from));
      }
    }
  }

  // Capacity checks. First merge each qubit's touches of a resource into
  // contiguous presence episodes, then sweep across qubits.
  const auto merge_episodes = [](std::vector<Interval>& intervals) {
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval& a, const Interval& b) {
                return a.begin < b.begin;
              });
    std::vector<Interval> merged;
    for (const Interval& iv : intervals) {
      if (!merged.empty() && iv.begin <= merged.back().end) {
        merged.back().end = std::max(merged.back().end, iv.end);
      } else {
        merged.push_back(iv);
      }
    }
    return merged;
  };
  std::map<std::int32_t, std::vector<Interval>> segment_occupancy;
  for (auto& [key, intervals] : segment_touches) {
    for (const Interval& iv : merge_episodes(intervals)) {
      segment_occupancy[key.first].push_back(iv);
    }
  }
  std::map<std::int32_t, std::vector<Interval>> junction_occupancy;
  for (auto& [key, intervals] : junction_touches) {
    for (const Interval& iv : merge_episodes(intervals)) {
      junction_occupancy[key.first].push_back(iv);
    }
  }
  for (auto& [segment, intervals] : segment_occupancy) {
    const int peak = max_overlap(intervals);
    if (peak > params.channel_capacity) {
      report("segment " + std::to_string(segment) + " holds " +
             std::to_string(peak) + " qubits (capacity " +
             std::to_string(params.channel_capacity) + ")");
    }
  }
  for (auto& [junction, intervals] : junction_occupancy) {
    const int peak = max_overlap(intervals);
    if (peak > params.junction_capacity) {
      report("junction " + std::to_string(junction) + " holds " +
             std::to_string(peak) + " qubits (capacity " +
             std::to_string(params.junction_capacity) + ")");
    }
  }
  for (auto& [trap, intervals] : trap_residency) {
    const int peak = max_overlap(intervals);
    if (peak > params.trap_capacity) {
      report("trap " + std::to_string(trap) + " holds " +
             std::to_string(peak) + " qubits (capacity " +
             std::to_string(params.trap_capacity) + ")");
    }
  }

  return violations;
}

}  // namespace qspr
