// Qubit-to-trap placement. An initial placement seeds an execution; the
// execution's final placement (where qubits ended up) seeds the next MVFB
// run (paper §IV.A).
#pragma once

#include <vector>

#include "common/ids.hpp"
#include "fabric/fabric.hpp"

namespace qspr {

class Placement {
 public:
  Placement() = default;
  explicit Placement(std::size_t qubit_count)
      : traps_(qubit_count, TrapId::invalid()) {}

  [[nodiscard]] std::size_t qubit_count() const { return traps_.size(); }

  void set(QubitId qubit, TrapId trap);
  [[nodiscard]] TrapId trap_of(QubitId qubit) const;

  [[nodiscard]] bool is_complete() const;

  /// Throws ValidationError unless every qubit sits in a distinct-enough
  /// valid trap: at most `trap_capacity` qubits per trap (final placements
  /// may legitimately pair qubits after 2-qubit gates).
  void validate(const Fabric& fabric, int trap_capacity = 1) const;

  friend bool operator==(const Placement&, const Placement&) = default;

 private:
  std::vector<TrapId> traps_;
};

}  // namespace qspr
