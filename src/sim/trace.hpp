// The control trace: the timed micro-commands the quantum system controller
// would issue to realise the mapped circuit (paper §IV.A calls this "a trace
// of quantum control micro-commands, specifying the moves and turns of
// individual qubits and the gate level operations").
//
// Because quantum computation is reversible, a trace can be *time-reversed*:
// when MVFB's best result comes from a backward (UIDG) execution, the
// reported solution is the reverse of that backward trace (§IV.A).
#pragma once

#include <string>
#include <vector>

#include "common/geometry.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"

namespace qspr {

enum class MicroOpKind : std::uint8_t { Move, Turn, Gate };

struct MicroOp {
  MicroOpKind kind = MicroOpKind::Move;
  /// Instruction this op serves.
  InstructionId instruction;
  /// Relocating qubit (invalid for Gate ops, which involve all operands).
  QubitId qubit;
  Position from;
  Position to;  // == from for turns and gates (the trap cell for gates)
  TimePoint start = 0;
  TimePoint end = 0;
};

class Trace {
 public:
  void add(MicroOp op) { ops_.push_back(op); }

  [[nodiscard]] const std::vector<MicroOp>& ops() const { return ops_; }
  [[nodiscard]] std::size_t size() const { return ops_.size(); }

  [[nodiscard]] std::size_t move_count() const;
  [[nodiscard]] std::size_t turn_count() const;
  [[nodiscard]] std::size_t gate_count() const;

  /// Completion time of the last micro-op (0 for an empty trace).
  [[nodiscard]] TimePoint makespan() const;

  /// Stable sort by (start, end); op order within a timestamp is preserved.
  void sort_by_time();

  /// The time-mirrored trace: op times map to [makespan - end, makespan -
  /// start] and moves swap from/to. Result is sorted by time.
  [[nodiscard]] Trace time_reversed() const;

  /// Human-readable rendering, one op per line (debugging / examples).
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<MicroOp> ops_;
};

}  // namespace qspr
