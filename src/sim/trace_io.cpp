#include "sim/trace_io.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace qspr {

namespace {

std::string position_token(Position p) {
  return "(" + std::to_string(p.row) + "," + std::to_string(p.col) + ")";
}

Position parse_position(std::string_view token, int line) {
  if (token.size() < 5 || token.front() != '(' || token.back() != ')') {
    throw ParseError("malformed position '" + std::string(token) + "'", line,
                     1);
  }
  const auto fields = split(token.substr(1, token.size() - 2), ',');
  if (fields.size() != 2 || !is_integer(trim(fields[0])) ||
      !is_integer(trim(fields[1]))) {
    throw ParseError("malformed position '" + std::string(token) + "'", line,
                     1);
  }
  return Position{static_cast<int>(parse_integer(trim(fields[0]))),
                  static_cast<int>(parse_integer(trim(fields[1])))};
}

}  // namespace

std::string write_trace(const Trace& trace) {
  std::ostringstream os;
  os << "# qspr control trace: " << trace.size() << " ops, makespan "
     << trace.makespan() << "\n";
  for (const MicroOp& op : trace.ops()) {
    switch (op.kind) {
      case MicroOpKind::Move: os << "MOVE "; break;
      case MicroOpKind::Turn: os << "TURN "; break;
      case MicroOpKind::Gate: os << "GATE "; break;
    }
    if (op.qubit.is_valid()) {
      os << 'q' << op.qubit.value();
    } else {
      os << '-';
    }
    os << ' ' << position_token(op.from) << ' ' << position_token(op.to)
       << ' ' << op.start << ' ' << op.end << " #" << op.instruction.value()
       << "\n";
  }
  return os.str();
}

Trace parse_trace(std::string_view text) {
  Trace trace;
  int line_number = 0;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    ++line_number;
    std::size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = trim(text.substr(begin, end - begin));
    const bool last = end == text.size();
    begin = end + 1;

    if (line.empty() || line.front() == '#') {
      if (last) break;
      continue;
    }
    const auto fields = split_whitespace(line);
    if (fields.size() != 7) {
      throw ParseError("expected 7 fields in trace line", line_number, 1);
    }

    MicroOp op;
    const std::string kind = to_upper(fields[0]);
    if (kind == "MOVE") {
      op.kind = MicroOpKind::Move;
    } else if (kind == "TURN") {
      op.kind = MicroOpKind::Turn;
    } else if (kind == "GATE") {
      op.kind = MicroOpKind::Gate;
    } else {
      throw ParseError("unknown op kind '" + kind + "'", line_number, 1);
    }

    if (fields[1] != "-") {
      if (fields[1].size() < 2 || fields[1][0] != 'q' ||
          !is_integer(fields[1].substr(1))) {
        throw ParseError("malformed qubit token", line_number, 1);
      }
      op.qubit = QubitId(static_cast<std::int32_t>(
          parse_integer(fields[1].substr(1))));
    }
    op.from = parse_position(fields[2], line_number);
    op.to = parse_position(fields[3], line_number);
    if (!is_integer(fields[4]) || !is_integer(fields[5])) {
      throw ParseError("malformed time fields", line_number, 1);
    }
    op.start = parse_integer(fields[4]);
    op.end = parse_integer(fields[5]);
    if (op.end < op.start) {
      throw ParseError("op ends before it starts", line_number, 1);
    }
    if (fields[6].size() < 2 || fields[6][0] != '#' ||
        !is_integer(fields[6].substr(1))) {
      throw ParseError("malformed instruction token", line_number, 1);
    }
    op.instruction = InstructionId(static_cast<std::int32_t>(
        parse_integer(fields[6].substr(1))));
    trace.add(op);
    if (last) break;
  }
  return trace;
}

}  // namespace qspr
