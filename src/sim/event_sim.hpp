// Event-driven execution of a scheduled QIDG on a fabric (paper §III-§IV).
//
// The simulator issues ready instructions in schedule-priority order,
// selects a target trap for each gate, routes the operand qubits with the
// congestion-aware router, reserves every channel/junction on their paths
// ("already using or will use", Eq. 2), and releases each resource the moment
// the qubit exits it — firing the paper's two event kinds ("execution of an
// instruction finishes" and "a qubit exits a channel"). Instructions whose
// routes are fully congested, or for which no target trap is available, wait
// in the busy queue and are retried whenever the fabric state changes.
//
// Policy knobs reproduce the differences between QSPR and the prior art:
//   * dual_move   — QSPR moves both operands to a trap near their median
//                   position; QUALE/QPOS keep the destination qubit fixed.
//   * router.turn_aware — QSPR models turn delays during path selection.
//   * tech.channel_capacity — QSPR exploits ion multiplexing (2), prior art 1.
#pragma once

#include <optional>
#include <queue>
#include <set>
#include <vector>

#include "circuit/dependency_graph.hpp"
#include "common/time.hpp"
#include "fabric/fabric.hpp"
#include "route/router.hpp"
#include "sim/placement.hpp"
#include "sim/trace.hpp"

namespace qspr {

/// How the target trap of a 2-qubit gate is chosen among available traps.
enum class TrapSelectionPolicy : std::uint8_t {
  /// The paper's policy: nearest available trap to the anchor (median of the
  /// operand positions for QSPR, the destination position for prior art).
  NearestToAnchor,
  /// Extension: among the nearest available candidates, prefer the one whose
  /// access channels are least loaded — trading a slightly longer trip for
  /// less queueing on congested fabrics.
  CongestionAware,
};

struct ExecutionOptions {
  TechnologyParams tech;
  RouterOptions router;
  /// Move both operands toward the median trap (QSPR) instead of moving only
  /// the source toward the fixed destination qubit (QUALE/QPOS).
  bool dual_move = true;
  TrapSelectionPolicy trap_selection = TrapSelectionPolicy::NearestToAnchor;
  /// Candidate pool size for CongestionAware selection.
  int trap_candidates = 8;
  /// QUALE's storage discipline: after a 2-qubit gate, the visiting ion
  /// shuttles back to its home trap and dependent instructions wait for the
  /// round trip. This keeps the placement static — exactly the property the
  /// paper criticises ("two qubits that have a lot of interactions may be
  /// placed far from each other", §I). QSPR and QPOS instead leave qubits
  /// where they interacted.
  bool return_home_after_gate = false;
};

/// Lifecycle timestamps of one instruction, decomposing the paper's Eq. 1:
/// T_congestion = issue - ready, T_routing = gate_start - issue,
/// T_gate = gate_end - gate_start.
struct InstructionTiming {
  TimePoint ready = 0;
  TimePoint issue = 0;
  TimePoint gate_start = 0;
  TimePoint gate_end = 0;
  /// Trap in which the gate executed.
  TrapId trap;

  [[nodiscard]] Duration t_gate() const { return gate_end - gate_start; }
  [[nodiscard]] Duration t_routing() const { return gate_start - issue; }
  [[nodiscard]] Duration t_congestion() const { return issue - ready; }
};

struct ExecutionStats {
  long long moves = 0;
  long long turns = 0;
  /// Sum of per-instruction routing / congestion delays (Eq. 1 terms).
  Duration total_routing = 0;
  Duration total_congestion = 0;
  /// Times an instruction was parked in / re-fetched from the busy queue.
  long long busy_enqueues = 0;
  /// Dijkstra nodes the run's routing searches settled (the work the
  /// frontier-queue/arena layer exists to make cheap). Observability only:
  /// never part of the mapped result, and identical across frontier kinds.
  long long nodes_settled = 0;
};

struct ExecutionResult {
  Duration latency = 0;
  Trace trace;
  Placement initial_placement;
  Placement final_placement;
  std::vector<InstructionTiming> timings;
  ExecutionStats stats;
};

class EventSimulator {
 public:
  /// `schedule_rank[i]` orders instruction issue among simultaneously-ready
  /// instructions: lower rank issues first. One rank per graph node.
  EventSimulator(const DependencyGraph& graph, const Fabric& fabric,
                 const RoutingGraph& routing_graph,
                 std::vector<int> schedule_rank, ExecutionOptions options);

  /// Executes from `initial` placement. Throws SimulationError when the
  /// execution stalls (e.g. the fabric cannot host the circuit) and
  /// ValidationError on inconsistent inputs. Each call is an independent run
  /// over thread-confined state: one simulator may serve concurrent callers
  /// as long as each passes its own `arena` (the reusable router search
  /// workspace, typically owned by the worker's TrialContext).
  ExecutionResult run(const Placement& initial,
                      SearchArena<Duration>& arena) const;

  /// Convenience overload with a one-shot arena.
  ExecutionResult run(const Placement& initial) const;

 private:
  struct Event {
    enum class Kind : std::uint8_t {
      ResourceRelease,
      QubitArrived,
      GateFinished,
      ReturnArrived,
    };
    TimePoint time = 0;
    std::uint64_t seq = 0;
    Kind kind = Kind::ResourceRelease;
    InstructionId instruction;
    QubitId qubit;
    ResourceRef resource;

    friend bool operator>(const Event& a, const Event& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  struct RunState {
    CongestionState congestion;
    std::vector<TrapId> qubit_trap;                 // invalid while in transit
    std::vector<std::vector<QubitId>> trap_occupants;
    std::vector<InstructionId> trap_reserved_by;
    std::vector<int> remaining_preds;
    std::vector<int> pending_arrivals;
    std::set<std::pair<int, InstructionId>> ready;  // (rank, id)
    std::vector<InstructionId> busy;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
    std::uint64_t next_seq = 0;
    std::size_t done_count = 0;
    std::vector<InstructionTiming> timings;
    Trace trace;
    ExecutionStats stats;
    // Operands of issued instructions whose departure is blocked by channel
    // congestion; they wait in their traps and route when resources free up
    // (this waiting is the paper's T_congestion in the channels).
    std::vector<std::pair<InstructionId, QubitId>> pending_routes;
    // --- return_home_after_gate bookkeeping ---
    std::vector<TrapId> home_trap;      // per qubit
    std::vector<TrapId> return_target;  // per qubit, while shuttling home
    std::vector<int> pending_returns;   // per instruction
    std::vector<bool> gate_done;        // per instruction (gate op finished)
    std::vector<std::pair<InstructionId, QubitId>> deferred_returns;
    // Caller-supplied router search workspace, confined to this run.
    SearchArena<Duration>* arena = nullptr;

    RunState(std::size_t segments, std::size_t junctions,
             SearchArena<Duration>& search_arena)
        : congestion(segments, junctions), arena(&search_arena) {}
  };

  void initialise(RunState& state, const Placement& initial) const;
  void become_ready(RunState& state, InstructionId id, TimePoint now) const;
  void try_issue(RunState& state, TimePoint now) const;
  void retry_busy(RunState& state, TimePoint now) const;
  bool attempt_issue(RunState& state, InstructionId id, TimePoint now) const;
  bool issue_one_qubit(RunState& state, InstructionId id, TimePoint now) const;
  bool issue_two_qubit(RunState& state, InstructionId id, TimePoint now) const;
  void start_gate(RunState& state, InstructionId id, TrapId trap,
                  TimePoint now) const;
  void finish_gate(RunState& state, InstructionId id, TimePoint now) const;
  /// Releases dependents once the gate (and any pending returns) are done.
  void complete_instruction(RunState& state, InstructionId id,
                            TimePoint now) const;
  /// Starts (or defers) the shuttle of `qubit` back to its home trap.
  bool initiate_return(RunState& state, InstructionId id, QubitId qubit,
                       TimePoint now) const;
  void retry_deferred_returns(RunState& state, TimePoint now) const;
  /// Attempts to route an issued instruction's operand toward its reserved
  /// target trap; on success the qubit departs.
  bool try_dispatch_operand(RunState& state, InstructionId id, QubitId qubit,
                            TimePoint now) const;
  void retry_pending_routes(RunState& state, TimePoint now) const;
  void dispatch_qubit(RunState& state, InstructionId id, QubitId qubit,
                      const RoutedPath& path, TimePoint now,
                      Event::Kind arrival_kind = Event::Kind::QubitArrived) const;

  /// True when `trap` can host `id`'s operation: unreserved and occupied only
  /// by operand qubits.
  bool trap_available(const RunState& state, TrapId trap,
                      const Instruction& instr) const;

  /// Nearest available trap to `anchor` (nullopt when none exists).
  std::optional<TrapId> find_target_trap(const RunState& state,
                                         Position anchor,
                                         const Instruction& instr) const;

  /// Nearest empty, unreserved trap to `anchor` (for 1-qubit relocations).
  std::optional<TrapId> find_empty_trap(const RunState& state,
                                        Position anchor) const;

  Position qubit_position(const RunState& state, QubitId qubit) const;

  const DependencyGraph* graph_;
  const Fabric* fabric_;
  std::vector<int> rank_;
  ExecutionOptions options_;
  Router router_;
};

/// One-shot convenience wrapper.
ExecutionResult execute_circuit(const DependencyGraph& graph,
                                const Fabric& fabric,
                                const RoutingGraph& routing_graph,
                                const std::vector<int>& schedule_rank,
                                const Placement& initial,
                                const ExecutionOptions& options);

}  // namespace qspr
