// qspr_serve — the fault-tolerant mapping daemon over one shared
// MappingEngine.
//
//   qspr_serve --port 7421 --jobs 4 --mapper-threads 2
//   qspr_serve --port 0 --port-file /tmp/qspr.port   # CI: kernel picks
//
// Protocol: newline-delimited JSON over TCP (see docs/serve.md). Concurrent
// clients multiplex onto the shared engine; overload is shed explicitly
// (`overloaded` + retry_after_ms) by a bounded admission queue; requests may
// carry deadlines and be cancelled mid-flight; SIGTERM/SIGINT drain
// gracefully — stop accepting, answer or cancel what is in flight within
// --drain-ms, flush, exit 0.
#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>
#include <string>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "core/mapper.hpp"
#include "fabric/text_io.hpp"
#include "service/serve_loop.hpp"

namespace {

using namespace qspr;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --host <addr>          bind address (default 127.0.0.1)\n"
      << "  --port <n>             TCP port; 0 = kernel-assigned (default 0)\n"
      << "  --port-file <file>     write the bound port there once listening\n"
      << "  --jobs <n>             engine worker threads for placement "
         "trials\n"
      << "  --mapper-threads <n>   concurrent map requests (default 2)\n"
      << "  --max-queue <n>        admission queue depth; a full queue "
         "rejects\n"
      << "                         with `overloaded` (default 16)\n"
      << "  --max-connections <n>  concurrent clients (default 64)\n"
      << "  --max-frame-bytes <n>  request/response line cap (default 1 MiB)\n"
      << "  --retry-after-ms <n>   floor of the adaptive back-off hint in\n"
      << "                         overload replies (default 50)\n"
      << "  --retry-ceiling-ms <n> ceiling of that hint (default 2000)\n"
      << "  --shard-id <n>         shard index stamped into health/stats\n"
      << "                         replies (set by qspr_shard; default: "
         "unset)\n"
      << "  --drain-ms <n>         graceful-drain budget before in-flight\n"
      << "                         work is cancelled (default 2000)\n"
      << "  --deadline-ms <n>      server-side default per-request deadline\n"
      << "                         (0 = none; requests may set their own)\n"
      << "  --cache-budget-mb <n>  combined LRU memory budget for the\n"
      << "                         fabric-artifact and result caches, split\n"
      << "                         evenly (0 = unlimited, the default);\n"
      << "                         evictions are visible in `stats`\n"
      << "  --fabric <file>        default fabric drawing (default: the\n"
      << "                         paper's 45x85 QUALE fabric); requests may\n"
      << "                         name their own per-record `fabric`\n"
      << "  --mapper <m>           default mapper: qspr | quale | qpos | "
         "baseline\n"
      << "  --placer <p>           default placer: mvfb | mc | center\n"
      << "  --m <n>                default MVFB seeds / MC trials\n"
      << "  --seed <n>             default RNG seed\n"
      << "  --quiet                suppress startup/drain notes on stderr\n"
      << "exit status: 0 clean drain (SIGTERM/SIGINT), 2 usage/setup error\n";
  return 2;
}

// Signal handling: the handler may only do async-signal-safe work, which is
// exactly what request_drain() is (atomic store + pipe write).
MappingServer* g_server = nullptr;

extern "C" void handle_drain_signal(int) {
  if (g_server != nullptr) g_server->request_drain();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    ServeOptions options;
    std::string port_file;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw Error("missing value for " + arg);
        return argv[++i];
      };
      if (arg == "--host") {
        options.host = next();
      } else if (arg == "--port") {
        options.port = static_cast<int>(parse_integer(next()));
        if (options.port < 0 || options.port > 65535) {
          throw Error("--port must be in [0, 65535]");
        }
      } else if (arg == "--port-file") {
        port_file = next();
      } else if (arg == "--jobs") {
        options.workers = static_cast<int>(parse_integer(next()));
        if (options.workers < 1) throw Error("--jobs must be at least 1");
      } else if (arg == "--mapper-threads") {
        options.mapper_threads = static_cast<int>(parse_integer(next()));
        if (options.mapper_threads < 1) {
          throw Error("--mapper-threads must be at least 1");
        }
      } else if (arg == "--max-queue") {
        options.max_queue = static_cast<int>(parse_integer(next()));
        if (options.max_queue < 1) throw Error("--max-queue must be >= 1");
      } else if (arg == "--max-connections") {
        options.max_connections = static_cast<int>(parse_integer(next()));
        if (options.max_connections < 1) {
          throw Error("--max-connections must be >= 1");
        }
      } else if (arg == "--max-frame-bytes") {
        const long long bytes = parse_integer(next());
        if (bytes < 64) throw Error("--max-frame-bytes must be >= 64");
        options.max_frame_bytes = static_cast<std::size_t>(bytes);
      } else if (arg == "--retry-after-ms") {
        options.retry_after_ms = static_cast<int>(parse_integer(next()));
        if (options.retry_after_ms < 0) {
          throw Error("--retry-after-ms must be >= 0");
        }
      } else if (arg == "--retry-ceiling-ms") {
        options.retry_after_ceiling_ms =
            static_cast<int>(parse_integer(next()));
        if (options.retry_after_ceiling_ms < 0) {
          throw Error("--retry-ceiling-ms must be >= 0");
        }
      } else if (arg == "--shard-id") {
        options.shard_id = static_cast<int>(parse_integer(next()));
        if (options.shard_id < 0) throw Error("--shard-id must be >= 0");
      } else if (arg == "--drain-ms") {
        options.drain_deadline_ms =
            static_cast<double>(parse_integer(next()));
        if (options.drain_deadline_ms < 0) {
          throw Error("--drain-ms must be >= 0");
        }
      } else if (arg == "--deadline-ms") {
        options.default_deadline_ms =
            static_cast<double>(parse_integer(next()));
        if (options.default_deadline_ms < 0) {
          throw Error("--deadline-ms must be >= 0");
        }
      } else if (arg == "--cache-budget-mb") {
        const long long mb = parse_integer(next());
        if (mb < 0) throw Error("--cache-budget-mb must be >= 0");
        options.cache_budget_bytes = static_cast<std::size_t>(mb) << 20;
      } else if (arg == "--fabric") {
        options.default_fabric = next();
        parse_fabric_file(options.default_fabric);  // fail fast, not at req 1
      } else if (arg == "--mapper") {
        const std::string name = next();
        const auto kind = mapper_kind_from_name(name);
        if (!kind.has_value()) throw Error("unknown mapper: " + name);
        options.default_options.kind = *kind;
      } else if (arg == "--placer") {
        const std::string name = next();
        const auto placer = placer_kind_from_name(name);
        if (!placer.has_value()) throw Error("unknown placer: " + name);
        options.default_options.placer = *placer;
      } else if (arg == "--m") {
        const int m = static_cast<int>(parse_integer(next()));
        options.default_options.mvfb_seeds = m;
        options.default_options.monte_carlo_trials = m;
      } else if (arg == "--seed") {
        options.default_options.rng_seed =
            static_cast<std::uint64_t>(parse_integer(next()));
      } else if (arg == "--quiet") {
        quiet = true;
      } else if (arg == "--help" || arg == "-h") {
        return usage(argv[0]);
      } else {
        std::cerr << "unknown option: " << arg << "\n";
        return usage(argv[0]);
      }
    }

    MappingServer server(std::move(options));
    server.start();
    g_server = &server;
    std::signal(SIGTERM, handle_drain_signal);
    std::signal(SIGINT, handle_drain_signal);

    if (!port_file.empty()) {
      std::ofstream out(port_file);
      if (!out) throw Error("cannot write port file: " + port_file);
      out << server.port() << "\n";
    }
    if (!quiet) {
      std::cerr << "qspr_serve listening on port " << server.port() << "\n";
    }

    const int code = server.serve();
    g_server = nullptr;
    if (!quiet) {
      const ServeMetrics::Snapshot snap = server.metrics();
      std::cerr << "qspr_serve drained: " << snap.completed << " completed, "
                << snap.failed << " failed, " << snap.cancelled
                << " cancelled, " << snap.expired << " expired, "
                << snap.rejected << " shed\n";
    }
    return code;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
