// qspr_shard — crash-tolerant sharded front-end over N qspr_serve workers.
//
//   qspr_shard --shards 2 --port 7420 --mapper-threads 1
//   qspr_shard --shards 4 --port 0 --port-file /tmp/shard.port   # CI
//
// Clients speak the exact qspr_serve NDJSON protocol to the supervisor's
// port; requests route to workers by fabric fingerprint (cache affinity),
// worker crashes and wedges are detected (waitpid + queue-bypassing health
// probes), workers restart under exponential backoff behind a per-shard
// circuit breaker, and in-flight requests transparently re-dispatch — the
// mapping is pure, so a re-run is bit-identical. SIGTERM drains the whole
// tree: workers answer their in-flight work and exit 0, then the
// supervisor exits 0. See docs/serve.md for the failure-semantics table.
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "service/shard_supervisor.hpp"

namespace {

using namespace qspr;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --host <addr>           bind address (default 127.0.0.1)\n"
      << "  --port <n>              TCP port; 0 = kernel-assigned (default "
         "0)\n"
      << "  --port-file <file>      write the bound port there once "
         "listening\n"
      << "  --shards <n>            worker processes (default 2)\n"
      << "  --worker-bin <path>     qspr_serve binary (default: qspr_serve\n"
      << "                          next to this executable)\n"
      << "  --port-file-dir <dir>   where worker port files go (default "
         "/tmp)\n"
      << "  --health-interval-ms <n>  probe period per worker (default 500)\n"
      << "  --health-timeout-ms <n> unanswered probe = wedged (default "
         "2000)\n"
      << "  --spawn-deadline-ms <n> worker bring-up budget (default 10000)\n"
      << "  --backoff-base-ms <n>   restart backoff base (default 50)\n"
      << "  --backoff-cap-ms <n>    restart backoff cap (default 2000)\n"
      << "  --breaker-threshold <n> consecutive failures that open the\n"
      << "                          shard's circuit breaker (default 3)\n"
      << "  --max-redispatch <n>    worker deaths one request may survive\n"
      << "                          before shard_down (default 2)\n"
      << "  --drain-ms <n>          drain budget before remaining work is\n"
      << "                          cancelled (default 5000)\n"
      << "  --max-connections <n>   concurrent clients (default 64)\n"
      << "  --jobs / --mapper-threads / --max-queue / --m / --seed /\n"
      << "  --placer / --mapper / --fabric / --retry-after-ms <v>\n"
      << "                          forwarded to every worker\n"
      << "  --quiet                 suppress supervision notes on stderr\n"
      << "exit status: 0 clean drain (SIGTERM/SIGINT), 2 usage/setup error\n";
  return 2;
}

/// Default worker binary: qspr_serve in this executable's own directory —
/// the layout both the build tree and the install tree use.
std::string sibling_qspr_serve() {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof buffer - 1);
  if (n <= 0) return "qspr_serve";
  buffer[n] = '\0';
  std::string path(buffer);
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return "qspr_serve";
  return path.substr(0, slash + 1) + "qspr_serve";
}

ShardSupervisor* g_supervisor = nullptr;

extern "C" void handle_drain_signal(int) {
  if (g_supervisor != nullptr) g_supervisor->request_drain();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    ShardSupervisorOptions options;
    options.quiet = false;
    std::string port_file;

    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw Error("missing value for " + arg);
        return argv[++i];
      };
      const auto next_int = [&](long long min, long long max) {
        const long long value = parse_integer(next());
        if (value < min || value > max) {
          throw Error(arg + " out of range");
        }
        return static_cast<int>(value);
      };
      if (arg == "--host") {
        options.host = next();
      } else if (arg == "--port") {
        options.port = next_int(0, 65535);
      } else if (arg == "--port-file") {
        port_file = next();
      } else if (arg == "--shards") {
        options.shard_count = next_int(1, 64);
      } else if (arg == "--worker-bin") {
        options.worker_binary = next();
      } else if (arg == "--port-file-dir") {
        options.port_file_dir = next();
      } else if (arg == "--health-interval-ms") {
        options.health_interval_ms = next_int(1, 3'600'000);
      } else if (arg == "--health-timeout-ms") {
        options.health_timeout_ms = next_int(1, 3'600'000);
      } else if (arg == "--spawn-deadline-ms") {
        options.spawn_deadline_ms = next_int(100, 3'600'000);
      } else if (arg == "--backoff-base-ms") {
        options.restart_backoff.base_ms = next_int(0, 3'600'000);
      } else if (arg == "--backoff-cap-ms") {
        options.restart_backoff.cap_ms = next_int(0, 3'600'000);
      } else if (arg == "--breaker-threshold") {
        options.breaker_threshold = next_int(1, 1000);
      } else if (arg == "--max-redispatch") {
        options.max_redispatch = next_int(0, 100);
      } else if (arg == "--drain-ms") {
        options.drain_deadline_ms = static_cast<double>(next_int(0, 3'600'000));
      } else if (arg == "--max-connections") {
        options.max_connections = next_int(1, 10'000);
      } else if (arg == "--jobs" || arg == "--mapper-threads" ||
                 arg == "--max-queue" || arg == "--m" || arg == "--seed" ||
                 arg == "--placer" || arg == "--mapper" || arg == "--fabric" ||
                 arg == "--retry-after-ms") {
        options.worker_args.push_back(arg);
        options.worker_args.push_back(next());
      } else if (arg == "--quiet") {
        options.quiet = true;
      } else if (arg == "--help" || arg == "-h") {
        return usage(argv[0]);
      } else {
        std::cerr << "unknown option: " << arg << "\n";
        return usage(argv[0]);
      }
    }
    if (options.worker_binary.empty()) {
      options.worker_binary = sibling_qspr_serve();
    }
    if (options.restart_backoff.cap_ms < options.restart_backoff.base_ms) {
      throw Error("--backoff-cap-ms must be >= --backoff-base-ms");
    }

    ShardSupervisor supervisor(std::move(options));
    supervisor.start();
    g_supervisor = &supervisor;
    std::signal(SIGTERM, handle_drain_signal);
    std::signal(SIGINT, handle_drain_signal);

    if (!port_file.empty()) {
      std::ofstream out(port_file);
      if (!out) throw Error("cannot write port file: " + port_file);
      out << supervisor.port() << "\n";
    }
    if (!options.quiet) {
      std::cerr << "qspr_shard listening on port " << supervisor.port()
                << "\n";
    }

    const int code = supervisor.serve();
    g_supervisor = nullptr;
    return code;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
