// qspr_batch — multi-program batch mapping front end over the shared
// MappingEngine / BatchMapper service.
//
//   qspr_batch corpus_dir/ --jobs 4                  # every *.qasm in a dir
//   qspr_batch manifest.txt --fabric drawing.txt     # one QASM path per line
//   qspr_batch a.qasm b.qasm c.qasm --placer mc --m 25 --output out.jsonl
//
// All programs map against one fabric (default: the paper's 45x85 QUALE
// fabric) with one set of mapping options; per-fabric routing artifacts are
// built once and shared const across jobs, and placement trials from
// different programs interleave on the shared workers. Results stream as
// JSON-lines in manifest order (one record per program, then one summary
// line). A malformed or infeasible program fails only its own record; the
// exit status is non-zero iff at least one job failed (2 for usage/setup
// errors).
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "core/qspr.hpp"
#include "service/batch_mapper.hpp"

namespace {

using namespace qspr;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " <dir | manifest.txt | file.qasm ...> [options]\n"
      << "  inputs             a directory (maps every *.qasm in it, sorted),\n"
      << "                     .qasm files, and/or manifest files listing one\n"
      << "                     QASM path per line (# starts a comment;\n"
      << "                     relative paths resolve against the manifest).\n"
      << "                     A manifest line may carry a second field — a\n"
      << "                     per-record fabric: `circ.qasm ring.txt` maps\n"
      << "                     that record onto ring.txt, `circ.qasm paper`\n"
      << "                     onto the built-in fabric; records without one\n"
      << "                     use --fabric. Distinct fabrics build routing\n"
      << "                     artifacts once each (shared cache).\n"
      << "  --jobs <n>         shared worker threads for placement trials\n"
      << "                     (default: hardware concurrency; per-program\n"
      << "                     results are identical at any value)\n"
      << "  --report           attach the PathFinder negotiation diagnostic\n"
      << "                     to every record (a `negotiation` JSONL object\n"
      << "                     per mapped program)\n"
      << "  --route-jobs <n>   worker threads for the negotiated PathFinder\n"
      << "                     batches of --report (speculative net\n"
      << "                     parallelism; default 1, results identical at\n"
      << "                     any value)\n"
      << "  --landmarks <n>    ALT landmarks for the negotiated PathFinder\n"
      << "                     batches of --report (default 8; 0 = grid\n"
      << "                     bound only; tables build once per distinct\n"
      << "                     fabric and are shared across records)\n"
      << "  --heuristic-weight <w>\n"
      << "                     bounded-suboptimal negotiated search: paths\n"
      << "                     may cost up to w x optimal (default 1.0 =\n"
      << "                     exact search)\n"
      << "  --mapper <m>       qspr (default) | quale | qpos | baseline\n"
      << "  --placer <p>       mvfb (default) | mc | center\n"
      << "  --m <n>            MVFB seeds / MC trials per program (default "
         "100)\n"
      << "  --seed <n>         RNG seed used by every job (default 1)\n"
      << "  --fabric <file>    fabric drawing to map onto (default: 45x85 "
         "QUALE fabric)\n"
      << "  --output <file>    write the JSONL records there instead of "
         "stdout\n"
      << "  --max-in-flight <n> jobs staged concurrently (default: 2x jobs)\n"
      << "  --quiet            suppress the human summary on stderr\n"
      << "exit status: 0 all jobs mapped, 1 at least one job failed, 2 "
         "usage/setup error\n";
  return 2;
}

/// One expanded manifest entry: the QASM path plus an optional per-record
/// fabric spec ("" = use the batch default).
struct ManifestEntry {
  std::string qasm;
  std::string fabric;
};

/// Expands one CLI input: directory -> sorted *.qasm members; *.qasm file
/// -> itself; anything else -> manifest listing `qasm_path [fabric]` per
/// line, where fabric is "paper" or a drawing path (relative paths — both
/// QASM and fabric — resolve against the manifest's directory).
std::vector<ManifestEntry> expand_input(const std::string& input) {
  namespace fs = std::filesystem;
  std::vector<ManifestEntry> entries;
  const fs::path path(input);
  if (fs::is_directory(path)) {
    for (const fs::directory_entry& entry : fs::directory_iterator(path)) {
      if (entry.is_regular_file() && entry.path().extension() == ".qasm") {
        entries.push_back({entry.path().string(), ""});
      }
    }
    std::sort(entries.begin(), entries.end(),
              [](const ManifestEntry& a, const ManifestEntry& b) {
                return a.qasm < b.qasm;
              });
    if (entries.empty()) {
      throw Error("directory has no .qasm files: " + input);
    }
    return entries;
  }
  if (path.extension() == ".qasm") {
    entries.push_back({input, ""});
    return entries;
  }
  std::ifstream manifest(input);
  if (!manifest) throw Error("cannot read manifest: " + input);
  const auto resolve = [&](std::string_view listed) {
    fs::path resolved{std::string(listed)};
    if (resolved.is_relative()) resolved = path.parent_path() / resolved;
    return resolved.string();
  };
  std::string line;
  while (std::getline(manifest, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::vector<std::string_view> fields = split_whitespace(trim(line));
    if (fields.empty()) continue;
    if (fields.size() > 2) {
      throw Error("manifest line has more than two fields: " + line);
    }
    ManifestEntry entry;
    entry.qasm = resolve(fields[0]);
    if (fields.size() == 2) {
      // "paper" is a symbolic spec, not a path; leave it unresolved.
      entry.fabric =
          fields[1] == "paper" ? std::string(fields[1]) : resolve(fields[1]);
    }
    entries.push_back(std::move(entry));
  }
  if (entries.empty()) throw Error("manifest lists no programs: " + input);
  return entries;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::vector<std::string> inputs;
    MapperOptions map_options;
    BatchOptions batch_options;
    int jobs = Executor::default_worker_count();
    std::optional<Fabric> fabric;
    std::string output;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw Error("missing value for " + arg);
        return argv[++i];
      };
      if (arg == "--jobs") {
        jobs = static_cast<int>(parse_integer(next()));
        if (jobs < 1) throw Error("--jobs must be at least 1");
      } else if (arg == "--report") {
        map_options.negotiation_report = true;
      } else if (arg == "--route-jobs") {
        const int route_jobs = static_cast<int>(parse_integer(next()));
        if (route_jobs < 1) throw Error("--route-jobs must be at least 1");
        map_options.route_jobs = route_jobs;
      } else if (arg == "--landmarks") {
        const int landmarks = static_cast<int>(parse_integer(next()));
        if (landmarks < 0) throw Error("--landmarks must be >= 0");
        map_options.route_landmarks = landmarks;
      } else if (arg == "--heuristic-weight") {
        const double weight = parse_real(next());
        if (weight < 1.0) {
          throw Error("--heuristic-weight must be >= 1 (1.0 is exact)");
        }
        map_options.route_heuristic_weight = weight;
      } else if (arg == "--mapper") {
        const std::string name = next();
        const auto kind = mapper_kind_from_name(name);
        if (!kind.has_value()) throw Error("unknown mapper: " + name);
        map_options.kind = *kind;
      } else if (arg == "--placer") {
        const std::string name = next();
        const auto placer = placer_kind_from_name(name);
        if (!placer.has_value()) throw Error("unknown placer: " + name);
        map_options.placer = *placer;
      } else if (arg == "--m") {
        const int m = static_cast<int>(parse_integer(next()));
        map_options.mvfb_seeds = m;
        map_options.monte_carlo_trials = m;
      } else if (arg == "--seed") {
        map_options.rng_seed =
            static_cast<std::uint64_t>(parse_integer(next()));
      } else if (arg == "--fabric") {
        fabric = parse_fabric_file(next());
      } else if (arg == "--output") {
        output = next();
      } else if (arg == "--max-in-flight") {
        batch_options.max_in_flight = static_cast<int>(parse_integer(next()));
        if (batch_options.max_in_flight < 1) {
          throw Error("--max-in-flight must be at least 1");
        }
      } else if (arg == "--quiet") {
        quiet = true;
      } else if (arg == "--help" || arg == "-h") {
        return usage(argv[0]);
      } else if (!arg.empty() && arg[0] != '-') {
        inputs.push_back(arg);
      } else {
        std::cerr << "unknown option: " << arg << "\n";
        return usage(argv[0]);
      }
    }
    if (inputs.empty()) return usage(argv[0]);

    if (!fabric.has_value()) fabric = make_paper_fabric();
    std::vector<BatchJob> manifest;
    for (const std::string& input : inputs) {
      for (ManifestEntry& entry : expand_input(input)) {
        BatchJob job;
        job.name = std::filesystem::path(entry.qasm).stem().string();
        job.qasm_path = std::move(entry.qasm);
        job.fabric = &*fabric;
        job.fabric_spec = std::move(entry.fabric);
        job.options = map_options;
        manifest.push_back(std::move(job));
      }
    }

    std::ofstream output_file;
    if (!output.empty()) {
      output_file.open(output);
      if (!output_file) throw Error("cannot write output file: " + output);
    }
    std::ostream& out = output.empty() ? std::cout : output_file;

    MappingEngine engine(jobs);
    BatchMapper batch(engine, batch_options);
    const BatchResult result =
        batch.run(manifest, [&](const BatchJobRecord& record) {
          out << batch_record_json(record) << "\n";
          out.flush();
          if (!quiet && !record.ok) {
            std::cerr << "job failed: " << record.name << ": " << record.error
                      << "\n";
          }
        });
    out << batch_summary_json(result.summary) << "\n";

    if (!quiet) {
      const BatchSummary& s = result.summary;
      std::cerr << "mapped " << s.succeeded << "/" << s.jobs << " programs ("
                << s.failed << " failed) in " << format_fixed(s.wall_ms, 1)
                << " ms on " << s.workers << " workers ("
                << format_fixed(s.programs_per_sec, 2) << " programs/sec, "
                << s.artifact_builds << " fabric artifact build"
                << (s.artifact_builds == 1 ? "" : "s") << ", "
                << s.artifact_hits << " cache hit"
                << (s.artifact_hits == 1 ? "" : "s") << ")\n";
    }
    return result.summary.failed > 0 ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
