// qspr_map — command-line front end of the mapper.
//
//   qspr_map --code "[[5,1,3]]"                 # built-in QECC benchmark
//   qspr_map encoder.qasm --mapper quale        # map a QASM file
//   qspr_map --code "[[7,1,3]]" --placer mc --m 25 --trace
//
// Prints the mapped latency, the ideal lower bound, and the Eq. 1 delay
// decomposition; optionally dumps the control trace and the QIDG in DOT.
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "circuit/dot.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "core/mapper.hpp"
#include "core/qspr.hpp"

namespace {

using namespace qspr;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [<file.qasm> | --code <name>] [options]\n"
      << "  --code <name>      built-in benchmark: [[5,1,3]] [[7,1,3]] "
         "[[9,1,3]] [[14,8,3]] [[19,1,7]] [[23,1,7]]\n"
      << "  --mapper <m>       qspr (default) | quale | qpos | baseline\n"
      << "  --placer <p>       mvfb (default) | mc | center\n"
      << "  --m <n>            MVFB seeds / MC trials (default 100)\n"
      << "  --seed <n>         RNG seed (default 1)\n"
      << "  --jobs <n>         worker threads for placement trials (default:\n"
      << "                     hardware concurrency; results are identical\n"
      << "                     at any value)\n"
      << "  --route-jobs <n>   worker threads for the negotiated PathFinder\n"
      << "                     batches of --report (speculative net\n"
      << "                     parallelism; default 1, results identical at\n"
      << "                     any value)\n"
      << "  --landmarks <n>    ALT landmarks for the negotiated PathFinder\n"
      << "                     batches of --report (default 8; 0 = grid\n"
      << "                     bound only; results identical at any value)\n"
      << "  --heuristic-weight <w>\n"
      << "                     bounded-suboptimal negotiated search: paths\n"
      << "                     may cost up to w x optimal (default 1.0 =\n"
      << "                     exact search)\n"
      << "  --fabric <file>    fabric drawing to map onto (default: 45x85 "
         "QUALE fabric)\n"
      << "  --trace            dump the control trace\n"
      << "  --trace-out <file> write the machine-readable trace (see "
         "qspr_replay)\n"
      << "  --report           print the full mapping report (timing table,\n"
      << "                     utilisation, Gantt chart, fidelity estimate,\n"
      << "                     PathFinder negotiation diagnostics)\n"
      << "  --dot              dump the QIDG in Graphviz DOT\n"
      << "  --qasm             dump the program QASM\n";
  return 2;
}

std::optional<QeccCode> code_by_name(const std::string& name) {
  for (const PaperNumbers& bench : paper_benchmarks()) {
    if (code_name(bench.code) == name) return bench.code;
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::optional<Program> program;
    MapperOptions options;
    options.jobs = ThreadPool::default_worker_count();
    std::optional<Fabric> fabric;
    bool dump_trace = false;
    bool dump_dot = false;
    bool dump_qasm = false;
    bool dump_report = false;
    std::string trace_out;

    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw Error("missing value for " + arg);
        return argv[++i];
      };
      if (arg == "--code") {
        const std::string name = next();
        const auto code = code_by_name(name);
        if (!code.has_value()) throw Error("unknown code: " + name);
        program = make_encoder(*code);
      } else if (arg == "--mapper") {
        const std::string name = next();
        const auto kind = mapper_kind_from_name(name);
        if (!kind.has_value()) throw Error("unknown mapper: " + name);
        options.kind = *kind;
      } else if (arg == "--placer") {
        const std::string name = next();
        const auto placer = placer_kind_from_name(name);
        if (!placer.has_value()) throw Error("unknown placer: " + name);
        options.placer = *placer;
      } else if (arg == "--m") {
        const int m = static_cast<int>(parse_integer(next()));
        options.mvfb_seeds = m;
        options.monte_carlo_trials = m;
      } else if (arg == "--seed") {
        options.rng_seed = static_cast<std::uint64_t>(parse_integer(next()));
      } else if (arg == "--jobs") {
        const int jobs = static_cast<int>(parse_integer(next()));
        if (jobs < 1) throw Error("--jobs must be at least 1");
        options.jobs = jobs;
      } else if (arg == "--route-jobs") {
        const int route_jobs = static_cast<int>(parse_integer(next()));
        if (route_jobs < 1) throw Error("--route-jobs must be at least 1");
        options.route_jobs = route_jobs;
      } else if (arg == "--landmarks") {
        const int landmarks = static_cast<int>(parse_integer(next()));
        if (landmarks < 0) throw Error("--landmarks must be >= 0");
        options.route_landmarks = landmarks;
      } else if (arg == "--heuristic-weight") {
        const double weight = parse_real(next());
        if (weight < 1.0) {
          throw Error("--heuristic-weight must be >= 1 (1.0 is exact)");
        }
        options.route_heuristic_weight = weight;
      } else if (arg == "--fabric") {
        fabric = parse_fabric_file(next());
      } else if (arg == "--trace") {
        dump_trace = true;
      } else if (arg == "--trace-out") {
        trace_out = next();
      } else if (arg == "--report") {
        dump_report = true;
      } else if (arg == "--dot") {
        dump_dot = true;
      } else if (arg == "--qasm") {
        dump_qasm = true;
      } else if (arg == "--help" || arg == "-h") {
        return usage(argv[0]);
      } else if (!arg.empty() && arg[0] != '-') {
        program = parse_qasm_file(arg);
      } else {
        std::cerr << "unknown option: " << arg << "\n";
        return usage(argv[0]);
      }
    }

    if (!program.has_value()) return usage(argv[0]);
    if (!fabric.has_value()) fabric = make_paper_fabric();
    options.negotiation_report = dump_report;

    if (dump_qasm) std::cout << write_qasm(*program);
    if (dump_dot) {
      std::cout << to_dot(DependencyGraph::build(*program), &*program);
    }

    const MapResult result = map_program(*program, *fabric, options);
    std::cout << "program:          "
              << (program->name().empty() ? "<unnamed>" : program->name())
              << " (" << program->qubit_count() << " qubits, "
              << program->instruction_count() << " instructions)\n"
              << "fabric:           " << describe_fabric(*fabric) << "\n"
              << "mapper:           " << to_string(result.kind) << "\n"
              << "latency:          " << result.latency << " us\n"
              << "ideal baseline:   " << result.ideal_latency << " us\n"
              << "routing delay:    " << result.stats.total_routing
              << " us (sum over instructions)\n"
              << "congestion delay: " << result.stats.total_congestion
              << " us (sum over instructions)\n"
              << "moves/turns:      " << result.stats.moves << "/"
              << result.stats.turns << "\n"
              << "placement runs:   " << result.placement_runs << "\n"
              << "cpu time:         " << format_fixed(result.cpu_ms, 1)
              << " ms wall (" << result.jobs << " jobs, "
              << format_fixed(result.trial_cpu_ms, 1)
              << " ms aggregate trial cpu)\n";
    if (dump_report) {
      std::cout << "\n" << make_report(result, *program, *fabric);
    }
    if (dump_trace) std::cout << "\n" << result.trace.to_string();
    if (!trace_out.empty()) {
      std::ofstream out(trace_out);
      if (!out) throw Error("cannot write trace file: " + trace_out);
      out << write_trace(result.trace);
      std::cerr << "wrote " << result.trace.size() << " micro-ops to "
                << trace_out << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
