// fabric_tool — generate, inspect and validate ion-trap fabric drawings.
//
//   fabric_tool --generate                 # the paper's 45x85 fabric
//   fabric_tool --generate --junctions 6x8 --pitch 4 > small.fabric
//   fabric_tool --inspect small.fabric
#include <iostream>
#include <string>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "fabric/quale_fabric.hpp"
#include "fabric/text_io.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " --generate [--junctions RxC] [--pitch N]\n"
            << "       " << argv0 << " --inspect <file>\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    bool generate = false;
    std::string inspect_path;
    qspr::QualeFabricParams params;

    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw qspr::Error("missing value for " + arg);
        return argv[++i];
      };
      if (arg == "--generate") {
        generate = true;
      } else if (arg == "--junctions") {
        const std::string value = next();
        const auto parts = qspr::split(value, 'x');
        if (parts.size() != 2) throw qspr::Error("expected RxC, e.g. 12x22");
        params.junction_rows = static_cast<int>(qspr::parse_integer(parts[0]));
        params.junction_cols = static_cast<int>(qspr::parse_integer(parts[1]));
      } else if (arg == "--pitch") {
        params.pitch = static_cast<int>(qspr::parse_integer(next()));
      } else if (arg == "--inspect") {
        inspect_path = next();
      } else {
        return usage(argv[0]);
      }
    }

    if (generate) {
      const qspr::Fabric fabric = qspr::make_quale_fabric(params);
      std::cerr << qspr::describe_fabric(fabric) << "\n";
      std::cout << qspr::render_fabric(fabric);
      return 0;
    }
    if (!inspect_path.empty()) {
      const qspr::Fabric fabric = qspr::parse_fabric_file(inspect_path);
      std::cout << qspr::describe_fabric(fabric) << "\n";
      return 0;
    }
    return usage(argv[0]);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
