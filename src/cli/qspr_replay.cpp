// qspr_replay — validate and analyse a serialised control trace against a
// circuit and fabric, as a machine controller or third-party tool would.
//
//   qspr_map --code "[[5,1,3]]" --placer center --trace > run.trace   # (ops)
//   qspr_replay --code "[[5,1,3]]" --trace-file run.trace [--fabric f.txt]
//
// Checks physical consistency (continuity, capacities, gate preconditions)
// and prints the latency, utilisation summary and per-qubit travel stats.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "common/strings.hpp"
#include "core/qspr.hpp"

namespace {

using namespace qspr;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " (--code <name> | <file.qasm>) --trace-file <file> "
               "[--fabric <file>] [--placement center]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::optional<Program> program;
    std::optional<Fabric> fabric;
    std::string trace_path;

    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw Error("missing value for " + arg);
        return argv[++i];
      };
      if (arg == "--code") {
        const std::string name = next();
        for (const PaperNumbers& bench : paper_benchmarks()) {
          if (code_name(bench.code) == name) program = make_encoder(bench.code);
        }
        if (!program.has_value()) throw Error("unknown code: " + name);
      } else if (arg == "--trace-file") {
        trace_path = next();
      } else if (arg == "--fabric") {
        fabric = parse_fabric_file(next());
      } else if (!arg.empty() && arg[0] != '-') {
        program = parse_qasm_file(arg);
      } else {
        return usage(argv[0]);
      }
    }
    if (!program.has_value() || trace_path.empty()) return usage(argv[0]);
    if (!fabric.has_value()) fabric = make_paper_fabric();

    std::ifstream input(trace_path);
    if (!input) throw Error("cannot open trace file: " + trace_path);
    std::ostringstream buffer;
    buffer << input.rdbuf();
    const Trace trace = parse_trace(buffer.str());
    std::cout << "loaded " << trace.size() << " micro-ops, makespan "
              << trace.makespan() << " us\n";

    // Reconstruct the initial placement: each qubit starts in the trap its
    // first op leaves from (or, with no ops, cannot be recovered — replay
    // requires every qubit to appear; gates pin the rest).
    const DependencyGraph graph = DependencyGraph::build(*program);
    Placement initial(program->qubit_count());
    for (std::size_t q = 0; q < program->qubit_count(); ++q) {
      const QubitId qubit = QubitId::from_index(q);
      Position start{-1, -1};
      TimePoint earliest = 0;
      bool found = false;
      for (const MicroOp& op : trace.ops()) {
        const bool relevant =
            (op.kind != MicroOpKind::Gate && op.qubit == qubit) ||
            (op.kind == MicroOpKind::Gate &&
             graph.instruction(op.instruction).uses(qubit));
        if (!relevant) continue;
        if (!found || op.start < earliest) {
          found = true;
          earliest = op.start;
          start = op.from;
        }
      }
      if (!found) throw Error("qubit q" + std::to_string(q) +
                              " never appears in the trace");
      const TrapId trap = fabric->trap_at(start);
      if (!trap.is_valid()) {
        throw Error("q" + std::to_string(q) +
                    " does not start in a trap at " + to_string(start));
      }
      initial.set(qubit, trap);
    }

    const auto violations =
        validate_trace(trace, graph, *fabric, initial, TechnologyParams{});
    if (violations.empty()) {
      std::cout << "trace is physically consistent.\n\n";
    } else {
      std::cout << violations.size() << " violation(s):\n";
      for (const std::string& violation : violations) {
        std::cout << "  " << violation << "\n";
      }
      return 1;
    }

    const ResourceUtilization utilization = analyze_utilization(trace, *fabric);
    std::cout << utilization_summary(utilization, *fabric) << "\n";
    std::cout << "per-qubit travel:\n";
    for (std::size_t q = 0; q < program->qubit_count(); ++q) {
      const TravelSummary travel =
          summarize_travel(trace, QubitId::from_index(q));
      std::cout << "  q" << q << ": " << travel.moves << " moves, "
                << travel.turns << " turns, " << travel.travel_time
                << " us in transit\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
