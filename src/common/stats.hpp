// Streaming statistics accumulator (Welford) used by benches and the
// simulator's per-resource utilisation reports.
#pragma once

#include <cstdint>
#include <limits>

namespace qspr {

class RunningStats {
 public:
  void add(double sample);

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace qspr
