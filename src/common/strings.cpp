#include "common/strings.hpp"

#include <cctype>
#include <charconv>

#include "common/error.hpp"

namespace qspr {

namespace {
bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() && is_space(text[begin])) ++begin;
  std::size_t end = text.size();
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string_view> split(std::string_view text, char separator) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      fields.push_back(text.substr(start));
      return fields;
    }
    fields.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_whitespace(std::string_view text) {
  std::vector<std::string_view> fields;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && is_space(text[i])) ++i;
    const std::size_t start = i;
    while (i < text.size() && !is_space(text[i])) ++i;
    if (i > start) fields.push_back(text.substr(start, i - start));
  }
  return fields;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string result;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += separator;
    result += parts[i];
  }
  return result;
}

std::string to_upper(std::string_view text) {
  std::string result(text);
  for (char& c : result) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return result;
}

bool is_integer(std::string_view text) {
  if (text.empty()) return false;
  std::size_t i = (text[0] == '-' || text[0] == '+') ? 1 : 0;
  if (i == text.size()) return false;
  for (; i < text.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(text[i])) == 0) return false;
  }
  return true;
}

long long parse_integer(std::string_view text) {
  long long value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw Error("malformed integer: '" + std::string(text) + "'");
  }
  return value;
}

double parse_real(std::string_view text) {
  double value = 0.0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw Error("malformed number: '" + std::string(text) + "'");
  }
  return value;
}

}  // namespace qspr
