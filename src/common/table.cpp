#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace qspr {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  require(!headers_.empty(), "table requires at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(),
          "row width does not match header width");
  rows_.push_back(std::move(cells));
}

void TextTable::add_separator() { separators_.push_back(rows_.size()); }

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto rule = [&widths] {
    std::string line = "+";
    for (const std::size_t w : widths) {
      line += std::string(w + 2, '-');
      line += '+';
    }
    line += '\n';
    return line;
  }();

  const auto emit_row = [&](std::ostringstream& os,
                            const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };

  std::ostringstream os;
  os << rule;
  emit_row(os, headers_);
  os << rule;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (std::find(separators_.begin(), separators_.end(), r) !=
        separators_.end()) {
      os << rule;
    }
    emit_row(os, rows_[r]);
  }
  os << rule;
  return os.str();
}

std::string format_fixed(double value, int decimals) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << value;
  return os.str();
}

std::string format_percent(double part, double whole, int decimals) {
  if (whole == 0.0) return "n/a";
  return format_fixed(100.0 * part / whole, decimals) + "%";
}

}  // namespace qspr
