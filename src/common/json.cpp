#include "common/json.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>

#include "common/error.hpp"

namespace qspr {

bool JsonValue::as_bool() const {
  if (kind_ != Kind::Bool) throw Error("JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::Number) throw Error("JSON value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::String) throw Error("JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::Array) throw Error("JSON value is not an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::Object) throw Error("JSON value is not an object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* value = find(key);
  return value != nullptr && value->kind_ == Kind::Number ? value->number_
                                                          : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* value = find(key);
  return value != nullptr && value->kind_ == Kind::String ? value->string_
                                                          : fallback;
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* value = find(key);
  return value != nullptr && value->kind_ == Kind::Bool ? value->bool_
                                                        : fallback;
}

/// Recursive-descent parser over a string_view with line/column tracking.
class JsonParser {
 public:
  JsonParser(std::string_view text, const JsonLimits& limits)
      : text_(text), limits_(limits) {}

  JsonValue parse_document() {
    if (limits_.max_bytes > 0 && text_.size() > limits_.max_bytes) {
      // Checked before parsing anything: a byte-budget violation must cost
      // O(1), not a walk over an attacker-sized document.
      fail("document exceeds byte budget (" + std::to_string(text_.size()) +
           " > " + std::to_string(limits_.max_bytes) + " bytes)");
    }
    JsonValue value = parse_value();
    skip_whitespace();
    if (at_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("JSON: " + message, line_, column_);
  }

  [[nodiscard]] bool eof() const { return at_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[at_]; }

  char take() {
    const char c = text_[at_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void skip_whitespace() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      take();
    }
  }

  void expect(char c) {
    if (eof() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    take();
  }

  bool consume_keyword(std::string_view word) {
    if (text_.substr(at_, word.size()) != word) return false;
    for (std::size_t i = 0; i < word.size(); ++i) take();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    if (eof()) fail("unexpected end of input");
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue value;
      value.kind_ = JsonValue::Kind::String;
      value.string_ = parse_string();
      return value;
    }
    if (c == 't' || c == 'f') {
      JsonValue value;
      value.kind_ = JsonValue::Kind::Bool;
      if (consume_keyword("true")) {
        value.bool_ = true;
      } else if (consume_keyword("false")) {
        value.bool_ = false;
      } else {
        fail("invalid literal");
      }
      return value;
    }
    if (c == 'n') {
      if (!consume_keyword("null")) fail("invalid literal");
      return JsonValue{};
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
  }

  /// Containers recurse through parse_value; the depth counter bounds that
  /// recursion so `[[[[...` fails cleanly instead of exhausting the stack.
  void enter_container() {
    if (++depth_ > limits_.max_depth) {
      fail("nesting deeper than " + std::to_string(limits_.max_depth) +
           " levels");
    }
  }

  JsonValue parse_object() {
    expect('{');
    enter_container();
    JsonValue value;
    value.kind_ = JsonValue::Kind::Object;
    skip_whitespace();
    if (!eof() && peek() == '}') {
      take();
      --depth_;
      return value;
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      value.members_.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (eof()) fail("unterminated object");
      if (peek() == ',') {
        take();
        continue;
      }
      expect('}');
      --depth_;
      return value;
    }
  }

  JsonValue parse_array() {
    expect('[');
    enter_container();
    JsonValue value;
    value.kind_ = JsonValue::Kind::Array;
    skip_whitespace();
    if (!eof() && peek() == ']') {
      take();
      --depth_;
      return value;
    }
    for (;;) {
      value.items_.push_back(parse_value());
      skip_whitespace();
      if (eof()) fail("unterminated array");
      if (peek() == ',') {
        take();
        continue;
      }
      expect(']');
      --depth_;
      return value;
    }
  }

  std::string parse_string() {
    if (eof() || peek() != '"') fail("expected string");
    take();
    std::string out;
    for (;;) {
      if (eof()) fail("unterminated string");
      const char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) fail("unterminated escape");
      const char escaped = take();
      switch (escaped) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          // Decode ASCII-range escapes (all the writer ever emits — control
          // characters in error diagnostics); pass anything wider through
          // verbatim rather than implementing full UTF-16 surrogates.
          int code = 0;
          char digits[4] = {};
          for (int i = 0; i < 4; ++i) {
            if (eof() ||
                !std::isxdigit(static_cast<unsigned char>(peek()))) {
              fail("malformed \\u escape");
            }
            digits[i] = take();
            const char d = static_cast<char>(
                std::tolower(static_cast<unsigned char>(digits[i])));
            code = code * 16 + (d <= '9' ? d - '0' : d - 'a' + 10);
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else {
            out += "\\u";
            out.append(digits, 4);
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = at_;
    if (!eof() && peek() == '-') take();
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) take();
    if (!eof() && peek() == '.') {
      take();
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        take();
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      take();
      if (!eof() && (peek() == '+' || peek() == '-')) take();
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        take();
      }
    }
    const std::string token(text_.substr(start, at_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') fail("malformed number");
    JsonValue value;
    value.kind_ = JsonValue::Kind::Number;
    value.number_ = parsed;
    return value;
  }

  std::string_view text_;
  JsonLimits limits_;
  std::size_t at_ = 0;
  int depth_ = 0;
  int line_ = 1;
  int column_ = 1;
};

JsonValue parse_json(std::string_view text, const JsonLimits& limits) {
  return JsonParser(text, limits).parse_document();
}

JsonValue parse_json_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw Error("cannot read JSON file: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_json(buffer.str());
}

}  // namespace qspr
