// Small string helpers shared by the QASM and fabric text parsers and the
// report writers. Kept deliberately minimal; no locale dependence.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace qspr {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Splits on `separator`, keeping empty fields.
std::vector<std::string_view> split(std::string_view text, char separator);

/// Splits on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string_view> split_whitespace(std::string_view text);

/// Joins `parts` with `separator`.
std::string join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// ASCII upper-case copy.
std::string to_upper(std::string_view text);

/// True if `text` parses fully as a (possibly negative) decimal integer.
bool is_integer(std::string_view text);

/// Parses a decimal integer; throws qspr::Error on malformed input.
long long parse_integer(std::string_view text);

/// Parses a decimal real number (e.g. "1.5"); throws qspr::Error on
/// malformed input.
double parse_real(std::string_view text);

}  // namespace qspr
