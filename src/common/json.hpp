// Minimal JSON support shared by the benchmark trajectory files
// (BENCH_*.json) and the batch mapping service's JSONL output: a streaming
// writer and a small recursive-descent reader.
//
// The reader parses a full JSON document into a JsonValue tree; it exists so
// consumers (the bench perf gate, the batch tests) stop scraping JSON with
// string find + strtod — which silently mis-reads reordered fields — and
// instead fail loudly on malformed input. It is not a general-purpose
// library: no \uXXXX decoding beyond pass-through, numbers as double.
#pragma once

#include <cstddef>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qspr {

/// One parsed JSON value. Object member order is preserved.
class JsonValue {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }

  /// Typed accessors; throw qspr::Error when the kind does not match.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  members() const;

  /// Object member by key, or nullptr (also for non-objects).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Convenience lookups with fallbacks (nullptr-safe on missing keys).
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string fallback) const;
  [[nodiscard]] bool bool_or(std::string_view key, bool fallback) const;

 private:
  friend class JsonParser;
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Guard rails for parsing untrusted wire input (the serve request codec).
/// Every limit fails with a clean ParseError, never unbounded recursion or
/// allocation: max_depth bounds container nesting (the recursion depth of
/// the parser), max_bytes rejects documents over the byte budget before a
/// single byte is parsed (0 = no byte budget). The defaults protect every
/// caller against stack exhaustion while staying far above anything the
/// writer emits.
struct JsonLimits {
  std::size_t max_bytes = 0;
  int max_depth = 128;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
/// Throws ParseError with line/column on malformed input, including input
/// that violates `limits`.
JsonValue parse_json(std::string_view text, const JsonLimits& limits = {});

/// Reads and parses a JSON file. Throws qspr::Error if unreadable.
JsonValue parse_json_file(const std::string& path);

/// Streaming JSON writer, just enough for flat-ish machine-readable reports:
/// objects, arrays, string/number/bool scalars, correct comma placement.
class JsonWriter {
 public:
  [[nodiscard]] std::string str() const { return out_.str(); }

  JsonWriter& begin_object() {
    separate();
    out_ << "{";
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& end_object() {
    out_ << "}";
    stack_.pop_back();
    return *this;
  }
  JsonWriter& begin_array() {
    separate();
    out_ << "[";
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& end_array() {
    out_ << "]";
    stack_.pop_back();
    return *this;
  }

  JsonWriter& key(const std::string& name) {
    separate();
    out_ << '"' << escape(name) << "\":";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(const std::string& v) {
    separate();
    out_ << '"' << escape(v) << '"';
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v) {
    separate();
    std::ostringstream number;
    number.precision(15);
    number << v;
    out_ << number.str();
    return *this;
  }
  JsonWriter& value(long long v) {
    separate();
    out_ << v;
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(std::size_t v) {
    return value(static_cast<long long>(v));
  }
  JsonWriter& value(bool v) {
    separate();
    out_ << (v ? "true" : "false");
    return *this;
  }

  template <typename T>
  JsonWriter& field(const std::string& name, const T& v) {
    return key(name).value(v);
  }

 private:
  static std::string escape(const std::string& s) {
    static constexpr char kHex[] = "0123456789abcdef";
    std::string escaped;
    escaped.reserve(s.size());
    for (const char c : s) {
      switch (c) {
        case '"': escaped += "\\\""; break;
        case '\\': escaped += "\\\\"; break;
        case '\n': escaped += "\\n"; break;
        case '\t': escaped += "\\t"; break;
        default:
          // Remaining control characters must be \u-escaped or the output
          // is not JSON — error diagnostics can carry arbitrary input
          // bytes (e.g. a binary file misnamed .qasm) into JSONL records.
          if (static_cast<unsigned char>(c) < 0x20) {
            escaped += "\\u00";
            escaped += kHex[(static_cast<unsigned char>(c) >> 4) & 0xf];
            escaped += kHex[static_cast<unsigned char>(c) & 0xf];
          } else {
            escaped += c;
          }
      }
    }
    return escaped;
  }

  /// Emits the comma before a sibling; the first element of a container and
  /// the value right after a key are comma-free.
  void separate() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back()) out_ << ",";
      stack_.back() = true;
    }
  }

  std::ostringstream out_;
  std::vector<bool> stack_;  // per open container: "has emitted an element"
  bool pending_value_ = false;
};

}  // namespace qspr
