// Shared worker executor driving every trial-parallel loop in the mapping
// pipeline — and, through the batch service, many mapping jobs at once.
//
// A *job* is a counted set of independent indices: submit(count, body)
// registers it and returns a handle; the pool's worker threads claim indices
// round-robin across all in-flight jobs, so trials from different jobs
// interleave and one large job cannot starve the queue. wait(job) blocks
// until the job finishes, with the calling thread helping out on that job's
// own indices as worker 0 (a 1-worker executor therefore spawns no threads
// and runs every job strictly in index order — the serial reference the
// parallel runs are tested bit-identical against).
//
// Determinism is the caller's contract, exactly as it was for the original
// ThreadPool: a body's outputs must depend only on its index, never on which
// worker ran it or in what order. Failures are captured *per job*: a body
// that throws abandons only its own job's unclaimed indices, and wait()
// rethrows the exception thrown by the lowest index of that job — other
// in-flight jobs are unaffected (the fault-isolation hinge of the batch
// mapping service).
//
// Nested jobs: a body may submit() further jobs to its own executor and
// wait() on them. The nested wait never parks the worker while claimable
// work exists anywhere — it drains the waited job's own indices first, then
// helps other in-flight jobs under its own worker id — so trial-parallel
// loops and net-parallel sub-jobs compose on one pool without deadlock or
// idle capacity. Worker-id confinement stays sound: a pool thread always
// acts under its own id, an external caller acts as worker 0 of the jobs it
// waits on, and at most one thread may wait on a given job, so no two
// threads ever run bodies of the same job under the same worker id.
//
// Contracts: every submitted job must be waited before the executor is
// destroyed; at most one thread waits on a given job.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace qspr {

class Executor {
 public:
  /// body(index, worker): `worker` is a stable id in [0, worker_count()) for
  /// indexing per-worker scratch. Ids >= 1 are the pool threads (which keep
  /// their id when helping any job, including sub-jobs they wait on from
  /// inside a body); worker 0 is the external thread waiting on the job.
  using Body = std::function<void(std::size_t index, int worker)>;

  /// Handle to one submitted job. Copyable (all copies refer to the same
  /// job); default-constructed handles are invalid.
  class Job {
   public:
    Job();
    Job(const Job&);
    Job(Job&&) noexcept;
    Job& operator=(const Job&);
    Job& operator=(Job&&) noexcept;
    ~Job();

    [[nodiscard]] bool valid() const { return state_ != nullptr; }

   private:
    friend class Executor;
    struct State;
    explicit Job(std::shared_ptr<State> state);
    std::shared_ptr<State> state_;
  };

  /// Spawns `workers - 1` pool threads (the waiting caller is worker 0).
  /// workers >= 1.
  explicit Executor(int workers);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  [[nodiscard]] int worker_count() const { return workers_; }

  /// The number of workers a CLI should default to.
  [[nodiscard]] static int default_worker_count();

  /// Registers a job of `count` indices; pool threads start claiming its
  /// indices immediately, interleaved round-robin with other in-flight jobs.
  /// Never blocks. The body (and everything it captures) must stay valid
  /// until wait(job) returns.
  [[nodiscard]] Job submit(std::size_t count, Body body);

  /// Blocks until `job` finishes, running its remaining indices on the
  /// calling thread (as worker 0 from an external thread, under its own id
  /// from a pool thread in a nested wait — which also helps drain other
  /// in-flight jobs instead of parking). Rethrows the exception captured
  /// for the job's lowest failing index, if any (idempotent: waiting again
  /// on a finished failed job rethrows again).
  void wait(const Job& job);

  /// submit + wait, with a serial fast path (workers == 1 or count <= 1)
  /// that runs inline without registering a job.
  void run(std::size_t count, const Body& body);

 private:
  void worker_loop(int worker);
  /// Runs one claimed index and does the post-run bookkeeping (error
  /// capture, job completion detection).
  void execute(const std::shared_ptr<Job::State>& state, std::size_t index,
               int worker);
  /// Completion/cleanup under lock_; returns true when the job just
  /// finished.
  bool finish_if_complete(const std::shared_ptr<Job::State>& state);

  struct Impl;
  std::unique_ptr<Impl> impl_;
  const int workers_;
};

}  // namespace qspr
