#include "common/executor.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace qspr {

namespace {

/// Pool-thread identity of the current thread: which executor's pool it
/// belongs to (nullptr for external threads) and its stable worker id there.
/// wait() consults this so a *worker* that submits a sub-job from inside a
/// body keeps acting under its own id while it helps drain — two threads can
/// then never run bodies of the same job under the same worker id, which is
/// what keeps per-worker scratch confinement sound across nested jobs.
thread_local const void* tl_pool_executor = nullptr;
thread_local int tl_pool_worker = 0;

/// Jobs this thread currently has a body frame of (outermost first). A
/// nested wait's help-drain must never claim an index of one of these: the
/// suspended body may hold this worker's per-(job, worker) scratch, and
/// re-entering the same job under the same worker id would alias it.
thread_local std::vector<const void*> tl_active_bodies;

struct ActiveBodyFrame {
  explicit ActiveBodyFrame(const void* job) { tl_active_bodies.push_back(job); }
  ~ActiveBodyFrame() { tl_active_bodies.pop_back(); }
};

}  // namespace

/// All mutable fields are guarded by Executor::Impl::mutex (the index cursor
/// included — bodies are placement trials, milliseconds each, so one lock
/// acquisition per claim is noise).
struct Executor::Job::State {
  Body body;
  std::size_t count = 0;
  std::size_t next = 0;  // first unclaimed index; == count when exhausted
  int running = 0;       // bodies currently executing
  bool done = false;
  std::exception_ptr error;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
};

Executor::Job::Job() = default;
Executor::Job::Job(const Job&) = default;
Executor::Job::Job(Job&&) noexcept = default;
Executor::Job& Executor::Job::operator=(const Job&) = default;
Executor::Job& Executor::Job::operator=(Job&&) noexcept = default;
Executor::Job::~Job() = default;
Executor::Job::Job(std::shared_ptr<State> state) : state_(std::move(state)) {}

struct Executor::Impl {
  std::mutex mutex;
  std::condition_variable work;  // workers: a job gained claimable indices
  std::condition_variable done;  // waiters: some job finished
  bool stop = false;
  /// In-flight jobs with work left or bodies still running.
  std::vector<std::shared_ptr<Job::State>> active;
  /// Round-robin cursor over `active` for fair cross-job claiming.
  std::size_t cursor = 0;
  std::vector<std::thread> threads;

  [[nodiscard]] static bool excluded(const Job::State* job,
                                     const std::vector<const void*>& skip) {
    return std::find(skip.begin(), skip.end(), job) != skip.end();
  }

  /// Claimable work outside `skip` (the claiming thread's own suspended
  /// bodies' jobs). `skip` is empty for idle pool threads.
  [[nodiscard]] bool has_claimable(
      const std::vector<const void*>& skip = {}) const {
    return std::any_of(active.begin(), active.end(), [&](const auto& job) {
      return job->next < job->count && !excluded(job.get(), skip);
    });
  }

  /// Claims one index from the next claimable non-skipped job after the
  /// cursor. Pre: has_claimable(skip). Returns (job, index).
  std::pair<std::shared_ptr<Job::State>, std::size_t> claim_round_robin(
      const std::vector<const void*>& skip = {}) {
    for (std::size_t step = 0; step < active.size(); ++step) {
      const std::size_t at = (cursor + step) % active.size();
      const std::shared_ptr<Job::State>& job = active[at];
      if (job->next < job->count && !excluded(job.get(), skip)) {
        cursor = at + 1;
        const std::size_t index = job->next++;
        ++job->running;
        return {job, index};
      }
    }
    return {nullptr, 0};  // unreachable under the precondition
  }
};

Executor::Executor(int workers) : impl_(new Impl), workers_(workers) {
  require(workers >= 1, "executor needs at least one worker");
  impl_->threads.reserve(static_cast<std::size_t>(workers_ - 1));
  for (int w = 1; w < workers_; ++w) {
    impl_->threads.emplace_back([this, w] { worker_loop(w); });
  }
}

Executor::~Executor() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work.notify_all();
  for (std::thread& thread : impl_->threads) thread.join();
}

int Executor::default_worker_count() {
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

Executor::Job Executor::submit(std::size_t count, Body body) {
  auto state = std::make_shared<Job::State>();
  state->body = std::move(body);
  state->count = count;
  if (count == 0) {
    state->done = true;
    return Job(std::move(state));
  }
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->active.push_back(state);
  }
  impl_->work.notify_all();
  return Job(std::move(state));
}

void Executor::wait(const Job& job) {
  require(job.valid(), "cannot wait on an invalid executor job");
  const std::shared_ptr<Job::State>& state = job.state_;
  // A pool thread waiting on a sub-job it submitted from inside a body keeps
  // its own worker id; external callers act as worker 0 of the jobs they
  // wait on (at most one waiter per job, so ids stay distinct per job).
  const bool pool_thread = tl_pool_executor == this;
  const int self = pool_thread ? tl_pool_worker : 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    if (state->done) break;
    if (state->next < state->count) {
      // Help out on this job's own indices.
      const std::size_t index = state->next++;
      ++state->running;
      lock.unlock();
      execute(state, index, self);
      continue;
    }
    if (pool_thread && impl_->has_claimable(tl_active_bodies)) {
      // A worker blocked in a nested wait is lost pool capacity: instead of
      // parking while the sub-job's stragglers run elsewhere, keep draining
      // *other* in-flight jobs under this thread's own worker id. Jobs this
      // thread has a suspended body frame of are skipped — re-entering one
      // under the same worker id would alias its per-worker scratch. This
      // is what lets trial-parallel and net-parallel compose on one
      // executor without idling (or, transitively, starving) the pool.
      auto [other, index] = impl_->claim_round_robin(tl_active_bodies);
      lock.unlock();
      execute(other, index, self);
      continue;
    }
    if (pool_thread) {
      impl_->work.wait(lock, [&] {
        return state->done || impl_->has_claimable(tl_active_bodies);
      });
    } else {
      impl_->done.wait(lock, [&] { return state->done; });
      break;
    }
  }
  if (state->error) std::rethrow_exception(state->error);
}

void Executor::run(std::size_t count, const Body& body) {
  if (count == 0) return;
  if (workers_ == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i, 0);
    return;
  }
  // Non-owning wrapper: run() blocks until the job is done, so the reference
  // outlives every body invocation.
  wait(submit(count, [&body](std::size_t index, int worker) {
    body(index, worker);
  }));
}

void Executor::worker_loop(int worker) {
  tl_pool_executor = this;
  tl_pool_worker = worker;
  for (;;) {
    std::shared_ptr<Job::State> state;
    std::size_t index = 0;
    {
      std::unique_lock<std::mutex> lock(impl_->mutex);
      impl_->work.wait(
          lock, [&] { return impl_->stop || impl_->has_claimable(); });
      if (impl_->stop) return;
      std::tie(state, index) = impl_->claim_round_robin();
    }
    if (state) execute(state, index, worker);
  }
}

void Executor::execute(const std::shared_ptr<Job::State>& state,
                       std::size_t index, int worker) {
  bool failed = false;
  std::exception_ptr error;
  const ActiveBodyFrame frame(state.get());
  try {
    state->body(index, worker);
  } catch (...) {
    failed = true;
    error = std::current_exception();
  }
  bool completed = false;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    if (failed) {
      if (index < state->error_index) {
        state->error_index = index;
        state->error = error;
      }
      // Abandon this job's unclaimed indices; in-flight bodies (of this and
      // every other job) run to completion.
      state->next = state->count;
    }
    --state->running;
    completed = finish_if_complete(state);
  }
  if (completed) {
    impl_->done.notify_all();
    // Pool threads parked in a nested wait() sleep on `work` (their wake
    // predicate includes job completion); completion must reach them too.
    impl_->work.notify_all();
  }
}

bool Executor::finish_if_complete(const std::shared_ptr<Job::State>& state) {
  if (state->done || state->running > 0 || state->next < state->count) {
    return false;
  }
  state->done = true;
  auto& active = impl_->active;
  active.erase(std::remove(active.begin(), active.end(), state),
               active.end());
  return true;
}

}  // namespace qspr
