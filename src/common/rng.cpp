#include "common/rng.hpp"

#include "common/error.hpp"

namespace qspr {

int Rng::uniform_int(int lo, int hi) {
  require(lo <= hi, "uniform_int requires lo <= hi");
  return std::uniform_int_distribution<int>(lo, hi)(engine_);
}

std::size_t Rng::uniform_index(std::size_t n) {
  require(n > 0, "uniform_index requires n > 0");
  return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
}

double Rng::uniform_real() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

}  // namespace qspr
