#include "common/geometry.hpp"

#include "common/error.hpp"

namespace qspr {

Direction direction_between(Position a, Position b) {
  require(are_adjacent(a, b), "direction_between requires adjacent cells");
  if (b.row == a.row - 1) return Direction::North;
  if (b.row == a.row + 1) return Direction::South;
  if (b.col == a.col + 1) return Direction::East;
  return Direction::West;
}

std::string to_string(Position p) {
  return "(" + std::to_string(p.row) + "," + std::to_string(p.col) + ")";
}

std::string to_string(Direction d) {
  switch (d) {
    case Direction::North: return "N";
    case Direction::East: return "E";
    case Direction::South: return "S";
    case Direction::West: return "W";
  }
  return "?";
}

std::string to_string(Orientation o) {
  return o == Orientation::Horizontal ? "H" : "V";
}

std::ostream& operator<<(std::ostream& os, Position p) {
  return os << to_string(p);
}

std::ostream& operator<<(std::ostream& os, Direction d) {
  return os << to_string(d);
}

std::ostream& operator<<(std::ostream& os, Orientation o) {
  return os << to_string(o);
}

}  // namespace qspr
