#include "common/net.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/error.hpp"

namespace qspr {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

sockaddr_in make_address(const std::string& host, int port) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    throw Error("not an IPv4 address: " + host);
  }
  return address;
}

}  // namespace

FileDescriptor& FileDescriptor::operator=(FileDescriptor&& other) noexcept {
  if (this != &other) reset(other.release());
  return *this;
}

int FileDescriptor::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void FileDescriptor::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    fail_errno("fcntl(O_NONBLOCK)");
  }
}

IoResult read_some(int fd, char* buffer, std::size_t size) {
  for (;;) {
    const ssize_t n = ::read(fd, buffer, size);
    if (n > 0) return {IoStatus::Ok, static_cast<std::size_t>(n)};
    if (n == 0) return {IoStatus::Closed, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::WouldBlock, 0};
    }
    return {IoStatus::Error, 0};
  }
}

IoResult write_some(int fd, std::string_view data) {
  for (;;) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n >= 0) return {IoStatus::Ok, static_cast<std::size_t>(n)};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::WouldBlock, 0};
    }
    return {IoStatus::Error, 0};
  }
}

ListenSocket::ListenSocket(const std::string& host, int port, int backlog) {
  FileDescriptor fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail_errno("socket");
  const int enable = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in address = make_address(host, port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    fail_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) != 0) fail_errno("listen");
  set_nonblocking(fd.get());

  sockaddr_in bound{};
  socklen_t bound_size = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                    &bound_size) != 0) {
    fail_errno("getsockname");
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));
  fd_ = std::move(fd);
}

FileDescriptor ListenSocket::accept_client() {
  for (;;) {
    const int client = ::accept(fd_.get(), nullptr, nullptr);
    if (client >= 0) {
      FileDescriptor fd(client);
      set_nonblocking(client);
      const int enable = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
      return fd;
    }
    if (errno == EINTR) continue;
    // No pending client, or a transient/per-connection accept failure
    // (aborted handshake, fd pressure): the daemon keeps serving either way.
    return FileDescriptor();
  }
}

WakePipe::WakePipe() {
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) fail_errno("pipe");
  read_end_.reset(fds[0]);
  write_end_.reset(fds[1]);
  set_nonblocking(fds[0]);
  set_nonblocking(fds[1]);
}

void WakePipe::notify() const {
  // One byte; a full pipe already guarantees a pending wake-up. write() is
  // async-signal-safe, so a SIGTERM handler may call this.
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(write_end_.get(), &byte, 1);
}

void WakePipe::drain() const {
  char sink[64];
  while (::read(read_end_.get(), sink, sizeof(sink)) > 0) {
  }
}

int poll_fds(std::vector<PollEntry>& entries, int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(entries.size());
  for (const PollEntry& entry : entries) {
    pollfd p{};
    p.fd = entry.fd;
    p.events = static_cast<short>((entry.want_read ? POLLIN : 0) |
                                  (entry.want_write ? POLLOUT : 0));
    fds.push_back(p);
  }
  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return 0;
    fail_errno("poll");
  }
  for (std::size_t i = 0; i < entries.size(); ++i) {
    entries[i].readable = (fds[i].revents & POLLIN) != 0;
    entries[i].writable = (fds[i].revents & POLLOUT) != 0;
    entries[i].broken =
        (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
  }
  return ready;
}

FileDescriptor connect_nonblocking(const std::string& host, int port,
                                   bool& pending) {
  FileDescriptor fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail_errno("socket");
  set_nonblocking(fd.get());
  const int enable = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  sockaddr_in address = make_address(host, port);
  pending = false;
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&address),
                  sizeof(address)) == 0) {
      return fd;  // loopback connects often complete synchronously
    }
    if (errno == EINTR) continue;
    if (errno == EINPROGRESS) {
      pending = true;
      return fd;
    }
    // Immediate refusal (dead worker's port): an invalid descriptor, not an
    // exception — SO_ERROR was already consumed by connect() itself, so the
    // poll-then-check path cannot report it.
    return FileDescriptor();
  }
}

int pending_connect_error(int fd) {
  int error = 0;
  socklen_t size = sizeof(error);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &size) != 0) {
    return errno != 0 ? errno : EBADF;
  }
  return error;
}

FileDescriptor connect_client(const std::string& host, int port) {
  FileDescriptor fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail_errno("socket");
  sockaddr_in address = make_address(host, port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    fail_errno("connect " + host + ":" + std::to_string(port));
  }
  const int enable = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  return fd;
}

}  // namespace qspr
