#include "common/stats.hpp"

#include <cmath>

namespace qspr {

void RunningStats::add(double sample) {
  ++count_;
  sum_ += sample;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
  if (sample < min_) min_ = sample;
  if (sample > max_) max_ = sample;
}

double RunningStats::min() const { return count_ > 0 ? min_ : 0.0; }

double RunningStats::max() const { return count_ > 0 ? max_ : 0.0; }

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace qspr
