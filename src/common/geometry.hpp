// Grid geometry: positions, directions and travel orientations on the
// ion-trap fabric, which is a finite 2-D grid of unit cells (paper Fig. 4).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstdlib>
#include <ostream>
#include <string>

namespace qspr {

/// A cell coordinate on the fabric grid. Row 0 is the top row; column 0 is
/// the leftmost column, matching the textual fabric rendering.
struct Position {
  int row = 0;
  int col = 0;

  friend constexpr auto operator<=>(const Position&, const Position&) = default;
};

/// The four cardinal movement directions on the grid.
enum class Direction : std::uint8_t { North, East, South, West };

/// Travel axis of a qubit inside a channel. Turning at a junction switches
/// the orientation and costs the (large) turn delay.
enum class Orientation : std::uint8_t { Horizontal, Vertical };

inline constexpr std::array<Direction, 4> kAllDirections = {
    Direction::North, Direction::East, Direction::South, Direction::West};

inline constexpr std::array<Orientation, 2> kAllOrientations = {
    Orientation::Horizontal, Orientation::Vertical};

/// The axis a given direction travels along.
constexpr Orientation axis_of(Direction d) {
  return (d == Direction::East || d == Direction::West)
             ? Orientation::Horizontal
             : Orientation::Vertical;
}

constexpr Orientation perpendicular(Orientation o) {
  return o == Orientation::Horizontal ? Orientation::Vertical
                                      : Orientation::Horizontal;
}

constexpr Direction opposite(Direction d) {
  switch (d) {
    case Direction::North: return Direction::South;
    case Direction::East: return Direction::West;
    case Direction::South: return Direction::North;
    case Direction::West: return Direction::East;
  }
  return Direction::North;  // unreachable
}

/// The neighbouring cell one step in direction `d`.
constexpr Position step(Position p, Direction d) {
  switch (d) {
    case Direction::North: return {p.row - 1, p.col};
    case Direction::East: return {p.row, p.col + 1};
    case Direction::South: return {p.row + 1, p.col};
    case Direction::West: return {p.row, p.col - 1};
  }
  return p;  // unreachable
}

constexpr int manhattan_distance(Position a, Position b) {
  return std::abs(a.row - b.row) + std::abs(a.col - b.col);
}

constexpr bool are_adjacent(Position a, Position b) {
  return manhattan_distance(a, b) == 1;
}

/// Direction from `a` to the 4-adjacent cell `b`. Precondition: adjacent.
Direction direction_between(Position a, Position b);

std::string to_string(Position p);
std::string to_string(Direction d);
std::string to_string(Orientation o);

std::ostream& operator<<(std::ostream& os, Position p);
std::ostream& operator<<(std::ostream& os, Direction d);
std::ostream& operator<<(std::ostream& os, Orientation o);

}  // namespace qspr
