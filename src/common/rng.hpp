// Deterministic random number generation.
//
// Every randomized component (Monte-Carlo placer, MVFB seeds, property-test
// workload generators) draws from an explicitly seeded Rng so that runs are
// reproducible bit-for-bit across machines.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace qspr {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Uniform std::size_t in [0, n-1]. Requires n > 0.
  std::size_t uniform_index(std::size_t n);

  /// Uniform double in [0, 1).
  double uniform_real();

  /// Raw 64-bit draw.
  std::uint64_t next() { return engine_(); }

  /// Derives an independent child stream (e.g. one per placement seed), so
  /// that adding draws to one consumer does not perturb the others.
  Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  template <typename T>
  void shuffle(std::vector<T>& values) {
    std::shuffle(values.begin(), values.end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace qspr
