// Wall-clock stopwatch for the CPU-runtime columns of Table 1, plus a
// per-thread CPU timer for the trial-parallel speedup accounting.
#pragma once

#include <chrono>
#include <ctime>

namespace qspr {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  [[nodiscard]] double elapsed_seconds() const { return elapsed_ms() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// CPU time consumed by the *calling thread* since construction. Unlike the
/// wall-clock Stopwatch it does not count time the thread spends descheduled,
/// so summing it across workers measures real parallel work: aggregate
/// thread-CPU / wall approaches the worker count only when the hardware
/// actually runs the workers concurrently. Falls back to wall time on
/// platforms without CLOCK_THREAD_CPUTIME_ID.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(now()) {}

  [[nodiscard]] double elapsed_ms() const { return now() - start_; }

 private:
  static double now() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
      return static_cast<double>(ts.tv_sec) * 1e3 +
             static_cast<double>(ts.tv_nsec) / 1e6;
    }
#endif
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  double start_;
};

}  // namespace qspr
