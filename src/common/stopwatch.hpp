// Wall-clock stopwatch for the CPU-runtime columns of Table 1.
#pragma once

#include <chrono>

namespace qspr {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  [[nodiscard]] double elapsed_seconds() const { return elapsed_ms() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace qspr
