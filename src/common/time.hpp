// Time representation and the ion-trap technology parameters of paper §V.A.
//
// All delays are integral microseconds (the paper's parameters are exact
// integers: T_move = 1 us, T_turn = 10 us, 1-qubit gate = 10 us, 2-qubit gate
// = 100 us). Integer arithmetic keeps latency accounting exact and
// platform-independent.
#pragma once

#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace qspr {

/// A span of simulated time, in microseconds.
using Duration = std::int64_t;
/// An absolute simulated time, in microseconds since execution start.
using TimePoint = std::int64_t;

/// Sentinel "unreachable" cost. Kept far below the int64 maximum so that
/// additions along a path cannot overflow.
inline constexpr Duration kInfiniteDuration =
    std::numeric_limits<Duration>::max() / 4;

/// Physical machine description (PMD) parameters of the ion-trap fabric.
/// Defaults are the experimental setup of paper §V.A.
struct TechnologyParams {
  /// Delay for a qubit to advance one cell without changing direction.
  Duration t_move = 1;
  /// Delay for a qubit to change its movement direction (5-30x t_move).
  Duration t_turn = 10;
  /// Latency of a 1-qubit gate operation in a trap.
  Duration t_gate_1q = 10;
  /// Latency of a 2-qubit gate operation in a trap.
  Duration t_gate_2q = 100;
  /// Maximum number of qubits concurrently inside one channel segment.
  /// QSPR exploits ion multiplexing (capacity 2); prior art used 1.
  int channel_capacity = 2;
  /// Maximum number of qubits concurrently routed through one junction.
  int junction_capacity = 2;
  /// Maximum number of qubits co-resident in a trap (2-qubit gates need 2).
  int trap_capacity = 2;

  /// Throws ValidationError if any parameter is non-physical.
  void validate() const {
    if (t_move <= 0) throw ValidationError("t_move must be positive");
    if (t_turn <= 0) throw ValidationError("t_turn must be positive");
    if (t_gate_1q <= 0) throw ValidationError("t_gate_1q must be positive");
    if (t_gate_2q <= 0) throw ValidationError("t_gate_2q must be positive");
    if (channel_capacity < 1)
      throw ValidationError("channel_capacity must be at least 1");
    if (junction_capacity < 1)
      throw ValidationError("junction_capacity must be at least 1");
    if (trap_capacity < 2)
      throw ValidationError("trap_capacity must be at least 2 (2-qubit gates)");
  }
};

}  // namespace qspr
