// Blocking fork-join view over the shared Executor, kept for the
// trial-parallel loops that want the original "one pool, one loop" shape.
//
// parallel_for_each hands out indices dynamically while determinism stays
// the *caller's* contract: a trial's outputs must depend only on its index,
// never on which worker ran it or in what order. Worker 0 is the calling
// thread, so a 1-worker pool spawns no threads and executes indices
// 0..count-1 strictly in order — the serial reference the parallel runs are
// tested bit-identical against. When a body throws, remaining indices are
// abandoned (best effort) and the exception thrown by the *lowest* index is
// rethrown, so failures are deterministic too.
//
// New code that wants several loops sharing one set of workers — the batch
// mapping service above all — should use Executor's submit/wait API
// directly; this wrapper exists so single-loop callers keep a one-line
// interface.
#pragma once

#include <cstddef>
#include <functional>

#include "common/executor.hpp"

namespace qspr {

class ThreadPool {
 public:
  /// Spawns `workers - 1` threads (the caller is worker 0). workers >= 1.
  explicit ThreadPool(int workers) : executor_(workers) {}

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int worker_count() const { return executor_.worker_count(); }

  /// The number of workers a CLI should default to.
  [[nodiscard]] static int default_worker_count() {
    return Executor::default_worker_count();
  }

  /// Runs body(index, worker) for every index in [0, count) and blocks until
  /// all have finished. Not reentrant: bodies must not call back into the
  /// same pool.
  void parallel_for_each(std::size_t count,
                         const std::function<void(std::size_t, int)>& body) {
    executor_.run(count, body);
  }

 private:
  Executor executor_;
};

}  // namespace qspr
