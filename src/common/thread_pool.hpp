// Fixed-size worker pool driving the trial-parallel mapping flows.
//
// The mapping pipeline evaluates many independent placement trials (MVFB
// seeds, Monte-Carlo placements) against shared read-only inputs; each trial
// only needs thread-confined scratch (a SearchArena, an Rng forked up front
// by trial index). parallel_for_each hands out indices from an atomic
// counter so the work distribution is dynamic, while determinism is the
// *caller's* contract: a trial's outputs must depend only on its index,
// never on which worker ran it or in what order.
//
// Worker 0 is the calling thread, so a 1-worker pool spawns no threads and
// executes indices 0..count-1 strictly in order — the serial reference the
// parallel runs are tested bit-identical against.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace qspr {

class ThreadPool {
 public:
  /// Spawns `workers - 1` threads (the caller is worker 0). workers >= 1.
  explicit ThreadPool(int workers) : workers_(workers) {
    require(workers >= 1, "thread pool needs at least one worker");
    threads_.reserve(static_cast<std::size_t>(workers_ - 1));
    for (int w = 1; w < workers_; ++w) {
      threads_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& thread : threads_) thread.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int worker_count() const { return workers_; }

  /// The number of workers a CLI should default to.
  [[nodiscard]] static int default_worker_count() {
    return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }

  /// Runs body(index, worker) for every index in [0, count) and blocks until
  /// all have finished. `worker` is a stable id in [0, worker_count()) for
  /// indexing per-worker scratch. When a body throws, remaining indices are
  /// abandoned (best effort) and the exception thrown by the *lowest* index
  /// is rethrown here, so failures are deterministic too. Not reentrant:
  /// bodies must not call back into the same pool.
  void parallel_for_each(std::size_t count,
                         const std::function<void(std::size_t, int)>& body) {
    if (count == 0) return;
    if (workers_ == 1 || count == 1) {
      for (std::size_t i = 0; i < count; ++i) body(i, 0);
      return;
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      body_ = &body;
      count_ = count;
      next_.store(0, std::memory_order_relaxed);
      active_workers_ = workers_ - 1;
      error_ = nullptr;
      error_index_ = std::numeric_limits<std::size_t>::max();
      ++job_;
    }
    wake_.notify_all();
    run_indices(/*worker=*/0);
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return active_workers_ == 0; });
    body_ = nullptr;
    if (error_) {
      const std::exception_ptr error = error_;
      error_ = nullptr;
      std::rethrow_exception(error);
    }
  }

 private:
  void worker_loop(int worker) {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] { return stop_ || job_ != seen; });
        if (stop_) return;
        seen = job_;
      }
      run_indices(worker);
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        --active_workers_;
      }
      idle_.notify_one();
    }
  }

  void run_indices(int worker) {
    for (;;) {
      const std::size_t index = next_.fetch_add(1, std::memory_order_relaxed);
      if (index >= count_) return;
      try {
        (*body_)(index, worker);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (index < error_index_) {
          error_index_ = index;
          error_ = std::current_exception();
        }
        // Abandon indices not yet claimed; in-flight ones run to completion.
        next_.store(count_, std::memory_order_relaxed);
      }
    }
  }

  const int workers_;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  bool stop_ = false;
  std::uint64_t job_ = 0;
  int active_workers_ = 0;

  const std::function<void(std::size_t, int)>* body_ = nullptr;
  std::size_t count_ = 0;
  std::atomic<std::size_t> next_{0};
  std::exception_ptr error_;
  std::size_t error_index_ = 0;
};

}  // namespace qspr
