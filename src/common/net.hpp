// Minimal POSIX TCP plumbing for the mapping daemon: RAII file descriptors,
// a loopback-friendly listener with ephemeral-port support, non-blocking
// reads/writes that map EAGAIN/EPIPE-style conditions onto a small result
// enum, and a poll() wrapper — just enough socket surface for a
// single-threaded event loop, deliberately not a networking library.
//
// Everything reports failure by throwing qspr::Error (setup) or returning a
// status (per-connection I/O): a daemon must never die because one client
// misbehaved, so nothing in here raises signals (SIGPIPE is suppressed per
// send) or exits.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace qspr {

/// Owning file descriptor. Move-only; closes on destruction.
class FileDescriptor {
 public:
  FileDescriptor() = default;
  explicit FileDescriptor(int fd) : fd_(fd) {}
  FileDescriptor(FileDescriptor&& other) noexcept : fd_(other.release()) {}
  FileDescriptor& operator=(FileDescriptor&& other) noexcept;
  ~FileDescriptor() { reset(); }

  FileDescriptor(const FileDescriptor&) = delete;
  FileDescriptor& operator=(const FileDescriptor&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int get() const { return fd_; }
  int release();
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Outcome of one non-blocking read/write attempt.
enum class IoStatus : std::uint8_t {
  Ok,         // made progress (bytes > 0)
  WouldBlock, // nothing transferable right now (EAGAIN/EWOULDBLOCK)
  Closed,     // orderly EOF (read) — peer finished sending
  Error,      // connection-level failure (ECONNRESET, EPIPE, ...)
};

struct IoResult {
  IoStatus status = IoStatus::Ok;
  std::size_t bytes = 0;
};

/// Sets O_NONBLOCK. Throws qspr::Error on fcntl failure.
void set_nonblocking(int fd);

/// Non-blocking read into `buffer` (up to buffer.size() bytes).
IoResult read_some(int fd, char* buffer, std::size_t size);

/// Non-blocking write of `data`; partial writes report the bytes consumed.
/// SIGPIPE is suppressed (MSG_NOSIGNAL).
IoResult write_some(int fd, std::string_view data);

/// Listening TCP socket bound to `host:port` (port 0 = kernel-assigned;
/// the bound port is then readable via port()). Non-blocking, SO_REUSEADDR.
class ListenSocket {
 public:
  ListenSocket() = default;
  /// Throws qspr::Error when the address cannot be bound.
  ListenSocket(const std::string& host, int port, int backlog = 64);

  [[nodiscard]] bool valid() const { return fd_.valid(); }
  [[nodiscard]] int fd() const { return fd_.get(); }
  [[nodiscard]] int port() const { return port_; }

  /// Accepts one pending connection as a non-blocking fd, or an invalid
  /// descriptor when none is pending. Throws only on unrecoverable accept
  /// failures (EMFILE and transient errors return invalid instead).
  FileDescriptor accept_client();

  void close() { fd_.reset(); }

 private:
  FileDescriptor fd_;
  int port_ = 0;
};

/// Self-pipe for waking a poll loop from other threads or signal handlers:
/// notify() writes one byte (async-signal-safe), drain() empties the pipe.
class WakePipe {
 public:
  /// Throws qspr::Error when the pipe cannot be created.
  WakePipe();

  [[nodiscard]] int read_fd() const { return read_end_.get(); }
  void notify() const;
  void drain() const;

 private:
  FileDescriptor read_end_;
  FileDescriptor write_end_;
};

/// One poll() registration/result. `readable`/`writable`/`broken` are the
/// revents decoded after poll_fds returns.
struct PollEntry {
  int fd = -1;
  bool want_read = false;
  bool want_write = false;
  bool readable = false;
  bool writable = false;
  bool broken = false;  // POLLERR | POLLHUP | POLLNVAL
};

/// poll(2) over `entries` with `timeout_ms` (<0 = infinite). Returns the
/// number of entries with events; EINTR counts as zero events.
int poll_fds(std::vector<PollEntry>& entries, int timeout_ms);

/// Blocking client connect to host:port (test harness / load generator
/// side). Throws qspr::Error on failure. The returned fd is *blocking*.
FileDescriptor connect_client(const std::string& host, int port);

/// Begins a non-blocking connect for event-loop callers (the shard
/// supervisor's worker lanes): returns the in-progress socket and sets
/// `pending` when the handshake has not completed yet — poll the fd for
/// writability, then check pending_connect_error(). An immediately refused
/// connect returns an *invalid* descriptor (not an exception — a supervisor
/// probes dead workers as a matter of course); qspr::Error is reserved for
/// setup failures (bad address, no fds).
FileDescriptor connect_nonblocking(const std::string& host, int port,
                                   bool& pending);

/// SO_ERROR of a socket whose non-blocking connect signalled writable:
/// 0 = established, otherwise the errno of the failed handshake
/// (ECONNREFUSED for a dead worker's port).
int pending_connect_error(int fd);

}  // namespace qspr
