// Column-aligned ASCII tables for experiment reports (the bench harness
// prints the paper's Table 1 / Table 2 rows with these).
#pragma once

#include <string>
#include <vector>

namespace qspr {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds one row; must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Inserts a horizontal rule before the next added row.
  void add_separator();

  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> separators_;  // row indices preceded by a rule
};

/// Fixed-point formatting without locale surprises, e.g. format_fixed(3.14159, 2) == "3.14".
std::string format_fixed(double value, int decimals);

/// "12.3%" style percentage of `part` relative to `whole`.
std::string format_percent(double part, double whole, int decimals = 1);

}  // namespace qspr
