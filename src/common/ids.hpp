// Strong identifier types.
//
// Every entity in the mapper (qubit, instruction, trap, channel segment,
// routing-graph vertex, ...) is referenced by a dense integer index into some
// owning container. Raw integers invite silent cross-domain mix-ups (passing a
// trap index where a qubit index is expected), so each domain gets its own
// tag-parameterized wrapper with no implicit conversions.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace qspr {

/// A strongly-typed, dense integer identifier. `Tag` only disambiguates the
/// type; it is never instantiated. A default-constructed Id is invalid.
template <typename Tag>
class Id {
 public:
  using underlying_type = std::int32_t;

  constexpr Id() = default;
  explicit constexpr Id(underlying_type value) : value_(value) {}
  /// Convenience factory for size_t indices coming from container loops.
  static constexpr Id from_index(std::size_t index) {
    return Id(static_cast<underlying_type>(index));
  }
  static constexpr Id invalid() { return Id(); }

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr std::size_t index() const {
    return static_cast<std::size_t>(value_);
  }
  [[nodiscard]] constexpr bool is_valid() const { return value_ >= 0; }

  friend constexpr auto operator<=>(Id, Id) = default;

 private:
  underlying_type value_ = -1;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, Id<Tag> id) {
  if (!id.is_valid()) return os << "<invalid>";
  return os << id.value();
}

/// Index of a program qubit (order of QUBIT declaration in the QASM file).
using QubitId = Id<struct QubitIdTag>;
/// Index of an instruction in a quantum program / QIDG node.
using InstructionId = Id<struct InstructionIdTag>;
/// Index of a trap site on the fabric.
using TrapId = Id<struct TrapIdTag>;
/// Index of a junction cell on the fabric.
using JunctionId = Id<struct JunctionIdTag>;
/// Index of a maximal straight channel segment between junctions/dead-ends.
using SegmentId = Id<struct SegmentIdTag>;
/// Index of a vertex in the routing graph (orientation-split).
using RouteNodeId = Id<struct RouteNodeIdTag>;
/// Index of an edge in the routing graph.
using RouteEdgeId = Id<struct RouteEdgeIdTag>;

}  // namespace qspr

namespace std {
template <typename Tag>
struct hash<qspr::Id<Tag>> {
  size_t operator()(qspr::Id<Tag> id) const noexcept {
    return std::hash<typename qspr::Id<Tag>::underlying_type>()(id.value());
  }
};
}  // namespace std
