// Cooperative cancellation with optional deadlines, the per-job control
// plane of the mapping service: a CancelSource is held by whoever may stop
// the work (a serve connection, a drain sequence), the CancelToken it hands
// out is carried by the job and *polled* at safe points — between placement
// trials, between a seed's forward/backward runs — never asynchronously.
//
// Cancellation rides the Executor's existing per-job fault capture: a
// polled check() throws CancelledError, which abandons only that job's
// unclaimed indices and surfaces from wait()/finish() exactly like any
// other per-job failure — neighbours on the shared executor are untouched,
// and a job that is never cancelled is bit-identical to one run without a
// token (the check is read-only).
//
// Deadlines are absolute steady-clock points folded into the same token:
// expired() and cancelled() both make check() throw, with the reason
// preserved so a service can answer "cancelled" vs "deadline" distinctly.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <utility>

#include "common/error.hpp"

namespace qspr {

enum class CancelReason : std::uint8_t { None, Cancelled, DeadlineExpired };

/// Thrown by CancelToken::check() from inside a cancelled job's trial loop.
class CancelledError : public Error {
 public:
  explicit CancelledError(CancelReason reason)
      : Error(reason == CancelReason::DeadlineExpired
                  ? "job deadline expired"
                  : "job cancelled"),
        reason_(reason) {}

  [[nodiscard]] CancelReason reason() const { return reason_; }

 private:
  CancelReason reason_;
};

namespace detail {
struct CancelState {
  std::atomic<bool> cancelled{false};
  /// Absolute deadline in steady_clock ticks; max() = none. Stored as a
  /// count so the flag and the deadline are both lock-free loads.
  std::atomic<std::chrono::steady_clock::rep> deadline{
      std::chrono::steady_clock::time_point::max().time_since_epoch().count()};
};
}  // namespace detail

/// Read side: copyable, cheap to poll. A default-constructed token never
/// cancels (the no-service path pays one null check).
class CancelToken {
 public:
  CancelToken() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  /// Why the job should stop, or None to keep going. Deadline expiry is
  /// evaluated lazily against steady_clock on every poll.
  [[nodiscard]] CancelReason reason() const {
    if (state_ == nullptr) return CancelReason::None;
    if (state_->cancelled.load(std::memory_order_relaxed)) {
      return CancelReason::Cancelled;
    }
    const auto deadline = state_->deadline.load(std::memory_order_relaxed);
    if (std::chrono::steady_clock::now().time_since_epoch().count() >=
        deadline) {
      return CancelReason::DeadlineExpired;
    }
    return CancelReason::None;
  }

  [[nodiscard]] bool stop_requested() const {
    return reason() != CancelReason::None;
  }

  /// Polled at trial boundaries: throws CancelledError when the job should
  /// stop, otherwise returns.
  void check() const {
    const CancelReason why = reason();
    if (why != CancelReason::None) throw CancelledError(why);
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<detail::CancelState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::CancelState> state_;
};

/// Write side: owns the shared flag. Copies of a source share one state, so
/// a service can keep the source in a registry and cancel from any thread.
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<detail::CancelState>()) {}

  [[nodiscard]] CancelToken token() const { return CancelToken(state_); }

  void request_cancel() {
    state_->cancelled.store(true, std::memory_order_relaxed);
  }

  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    state_->deadline.store(deadline.time_since_epoch().count(),
                           std::memory_order_relaxed);
  }

  /// Convenience: deadline_ms <= 0 leaves the token deadline-free.
  void set_deadline_after_ms(double deadline_ms) {
    if (deadline_ms <= 0.0) return;
    set_deadline(std::chrono::steady_clock::now() +
                 std::chrono::microseconds(
                     static_cast<long long>(deadline_ms * 1000.0)));
  }

  [[nodiscard]] CancelReason reason() const { return token().reason(); }

 private:
  std::shared_ptr<detail::CancelState> state_;
};

}  // namespace qspr
