// Error taxonomy. Library code reports failures by throwing one of these;
// it never terminates the process. Internal invariant violations use
// `require`, user-input problems use the specific subclasses.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace qspr {

/// Base class of all qspr errors.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Malformed QASM or fabric text input.
class ParseError : public Error {
 public:
  ParseError(const std::string& message, int line, int column)
      : Error(message + " (line " + std::to_string(line) + ", column " +
              std::to_string(column) + ")"),
        line_(line),
        column_(column) {}

  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] int column() const { return column_; }

 private:
  int line_;
  int column_;
};

/// Structurally invalid model (fabric fails validation, circuit references
/// undeclared qubits, placement puts two qubits in one trap, ...).
class ValidationError : public Error {
 public:
  using Error::Error;
};

/// No feasible route / target trap exists at all (not merely congested).
class RoutingError : public Error {
 public:
  using Error::Error;
};

/// The event-driven simulator reached an inconsistent or stalled state.
class SimulationError : public Error {
 public:
  using Error::Error;
};

/// Throws qspr::Error when `condition` is false. Used for preconditions and
/// invariants whose violation indicates a bug in the caller, in a way that is
/// active in all build types (these checks are never on hot paths' inner
/// loops).
inline void require(bool condition, std::string_view message) {
  if (!condition) throw Error(std::string(message));
}

}  // namespace qspr
