#include "route/routing_graph.hpp"

#include "common/error.hpp"

namespace qspr {

namespace {

bool supports_travel(CellType type) {
  return type == CellType::Channel || type == CellType::Junction;
}

}  // namespace

RoutingGraph::RoutingGraph(const Fabric& fabric) : fabric_(&fabric) {
  node_by_cell_orientation_.assign(
      static_cast<std::size_t>(fabric.rows()) *
          static_cast<std::size_t>(fabric.cols()) * 2,
      -1);
  node_by_trap_.assign(fabric.trap_count(), RouteNodeId::invalid());
  create_nodes();
  create_edges();
}

void RoutingGraph::create_nodes() {
  const Fabric& fabric = *fabric_;
  for (int row = 0; row < fabric.rows(); ++row) {
    for (int col = 0; col < fabric.cols(); ++col) {
      const Position p{row, col};
      const CellType type = fabric.cell(p);
      if (type == CellType::Trap) {
        RouteNode node;
        node.cell = p;
        node.is_trap = true;
        node.trap = fabric.trap_at(p);
        node_by_trap_[node.trap.index()] = RouteNodeId::from_index(nodes_.size());
        nodes_.push_back(node);
        continue;
      }
      if (!supports_travel(type)) continue;
      // A travel vertex exists for orientation o when the cell connects to
      // anything (channel, junction or trap) along o's axis.
      for (const Orientation o : kAllOrientations) {
        const Direction forward =
            o == Orientation::Horizontal ? Direction::East : Direction::South;
        const Position next = step(p, forward);
        const Position prev = step(p, opposite(forward));
        const bool connects =
            fabric.cell(next) != CellType::Empty ||
            fabric.cell(prev) != CellType::Empty;
        if (!connects) continue;
        RouteNode node;
        node.cell = p;
        node.orientation = o;
        node.segment = fabric.segment_at(p);
        node.junction = fabric.junction_at(p);
        node_by_cell_orientation_[cell_slot(p, o)] =
            static_cast<std::int32_t>(nodes_.size());
        nodes_.push_back(node);
      }
    }
  }
  edges_.resize(nodes_.size());
}

void RoutingGraph::create_edges() {
  const Fabric& fabric = *fabric_;
  // Turn edges: both orientation vertices of the same cell.
  for (int row = 0; row < fabric.rows(); ++row) {
    for (int col = 0; col < fabric.cols(); ++col) {
      const Position p{row, col};
      const RouteNodeId h = node_at(p, Orientation::Horizontal);
      const RouteNodeId v = node_at(p, Orientation::Vertical);
      if (h.is_valid() && v.is_valid()) add_edge(h, v, /*is_turn=*/true);
    }
  }
  // Move edges between adjacent travel cells, along the shared axis. Only
  // East/South scanned; add_edge inserts both directions.
  for (int row = 0; row < fabric.rows(); ++row) {
    for (int col = 0; col < fabric.cols(); ++col) {
      const Position p{row, col};
      if (!supports_travel(fabric.cell(p))) continue;
      for (const Direction d : {Direction::East, Direction::South}) {
        const Position q = step(p, d);
        if (!supports_travel(fabric.cell(q))) continue;
        const Orientation o = axis_of(d);
        const RouteNodeId a = node_at(p, o);
        const RouteNodeId b = node_at(q, o);
        require(a.is_valid() && b.is_valid(),
                "adjacent travel cells missing orientation vertices");
        add_edge(a, b, /*is_turn=*/false);
      }
    }
  }
  // Trap access edges along each port's axis.
  for (const Trap& trap : fabric.traps()) {
    const RouteNodeId t = trap_node(trap.id);
    for (const TrapPort& port : trap.ports) {
      const Orientation o = axis_of(port.direction_from_trap);
      const RouteNodeId c = node_at(port.channel_cell, o);
      require(c.is_valid(), "trap port cell missing orientation vertex");
      add_edge(t, c, /*is_turn=*/false);
    }
  }
}

void RoutingGraph::add_edge(RouteNodeId a, RouteNodeId b, bool is_turn) {
  edges_[a.index()].push_back(RouteEdge{b, is_turn});
  edges_[b.index()].push_back(RouteEdge{a, is_turn});
}

const RouteNode& RoutingGraph::node(RouteNodeId id) const {
  require(id.is_valid() && id.index() < nodes_.size(),
          "route node id out of range");
  return nodes_[id.index()];
}

const std::vector<RouteEdge>& RoutingGraph::edges(RouteNodeId id) const {
  require(id.is_valid() && id.index() < edges_.size(),
          "route node id out of range");
  return edges_[id.index()];
}

RouteNodeId RoutingGraph::node_at(Position cell, Orientation o) const {
  if (!fabric_->in_bounds(cell)) return RouteNodeId::invalid();
  const std::int32_t index = node_by_cell_orientation_[cell_slot(cell, o)];
  return index < 0 ? RouteNodeId::invalid() : RouteNodeId(index);
}

RouteNodeId RoutingGraph::trap_node(TrapId trap) const {
  require(trap.is_valid() && trap.index() < node_by_trap_.size(),
          "trap id out of range");
  return node_by_trap_[trap.index()];
}

}  // namespace qspr
