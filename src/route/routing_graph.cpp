#include "route/routing_graph.hpp"

#include "common/error.hpp"

namespace qspr {

namespace {

bool supports_travel(CellType type) {
  return type == CellType::Channel || type == CellType::Junction;
}

}  // namespace

RoutingGraph::RoutingGraph(const Fabric& fabric) : fabric_(&fabric) {
  node_by_cell_orientation_.assign(
      static_cast<std::size_t>(fabric.rows()) *
          static_cast<std::size_t>(fabric.cols()) * 2,
      -1);
  node_by_trap_.assign(fabric.trap_count(), RouteNodeId::invalid());
  create_nodes();
  create_edges();
}

void RoutingGraph::create_nodes() {
  const Fabric& fabric = *fabric_;
  for (int row = 0; row < fabric.rows(); ++row) {
    for (int col = 0; col < fabric.cols(); ++col) {
      const Position p{row, col};
      const CellType type = fabric.cell(p);
      if (type == CellType::Trap) {
        RouteNode node;
        node.cell = p;
        node.is_trap = true;
        node.trap = fabric.trap_at(p);
        node_by_trap_[node.trap.index()] = RouteNodeId::from_index(nodes_.size());
        nodes_.push_back(node);
        continue;
      }
      if (!supports_travel(type)) continue;
      // A travel vertex exists for orientation o when the cell connects to
      // anything (channel, junction or trap) along o's axis.
      for (const Orientation o : kAllOrientations) {
        const Direction forward =
            o == Orientation::Horizontal ? Direction::East : Direction::South;
        const Position next = step(p, forward);
        const Position prev = step(p, opposite(forward));
        const bool connects =
            fabric.cell(next) != CellType::Empty ||
            fabric.cell(prev) != CellType::Empty;
        if (!connects) continue;
        RouteNode node;
        node.cell = p;
        node.orientation = o;
        node.segment = fabric.segment_at(p);
        node.junction = fabric.junction_at(p);
        node_by_cell_orientation_[cell_slot(p, o)] =
            static_cast<std::int32_t>(nodes_.size());
        nodes_.push_back(node);
      }
    }
  }
}

void RoutingGraph::create_edges() {
  const Fabric& fabric = *fabric_;
  std::vector<EdgeRecord> records;
  const auto add_edge = [&records](RouteNodeId a, RouteNodeId b,
                                   bool is_turn) {
    records.push_back(EdgeRecord{a, b, is_turn});
  };
  // Turn edges: both orientation vertices of the same cell.
  for (int row = 0; row < fabric.rows(); ++row) {
    for (int col = 0; col < fabric.cols(); ++col) {
      const Position p{row, col};
      const RouteNodeId h = node_at(p, Orientation::Horizontal);
      const RouteNodeId v = node_at(p, Orientation::Vertical);
      if (h.is_valid() && v.is_valid()) add_edge(h, v, /*is_turn=*/true);
    }
  }
  // Move edges between adjacent travel cells, along the shared axis. Only
  // East/South scanned; each record packs into both directions.
  for (int row = 0; row < fabric.rows(); ++row) {
    for (int col = 0; col < fabric.cols(); ++col) {
      const Position p{row, col};
      if (!supports_travel(fabric.cell(p))) continue;
      for (const Direction d : {Direction::East, Direction::South}) {
        const Position q = step(p, d);
        if (!supports_travel(fabric.cell(q))) continue;
        const Orientation o = axis_of(d);
        const RouteNodeId a = node_at(p, o);
        const RouteNodeId b = node_at(q, o);
        require(a.is_valid() && b.is_valid(),
                "adjacent travel cells missing orientation vertices");
        add_edge(a, b, /*is_turn=*/false);
      }
    }
  }
  // Trap access edges along each port's axis.
  for (const Trap& trap : fabric.traps()) {
    const RouteNodeId t = trap_node(trap.id);
    for (const TrapPort& port : trap.ports) {
      const Orientation o = axis_of(port.direction_from_trap);
      const RouteNodeId c = node_at(port.channel_cell, o);
      require(c.is_valid(), "trap port cell missing orientation vertex");
      add_edge(t, c, /*is_turn=*/false);
    }
  }
  pack_edges(records);
}

void RoutingGraph::pack_edges(const std::vector<EdgeRecord>& records) {
  // Two-pass CSR build. Scatter order matches the legacy per-node push_back
  // order (record order, forward direction before reverse), so adjacency
  // iteration order — and therefore every deterministic search tie-break —
  // is unchanged by the layout switch.
  const std::size_t n = nodes_.size();
  edge_offsets_.assign(n + 1, 0);
  for (const EdgeRecord& r : records) {
    ++edge_offsets_[r.a.index() + 1];
    ++edge_offsets_[r.b.index() + 1];
  }
  for (std::size_t i = 0; i < n; ++i) edge_offsets_[i + 1] += edge_offsets_[i];

  edge_storage_.resize(records.size() * 2);
  std::vector<std::uint32_t> cursor(edge_offsets_.begin(),
                                    edge_offsets_.end() - 1);
  for (const EdgeRecord& r : records) {
    edge_storage_[cursor[r.a.index()]++] = RouteEdge{r.b, r.is_turn};
    edge_storage_[cursor[r.b.index()]++] = RouteEdge{r.a, r.is_turn};
  }
}

const RouteNode& RoutingGraph::node(RouteNodeId id) const {
  require(id.is_valid() && id.index() < nodes_.size(),
          "route node id out of range");
  return nodes_[id.index()];
}

EdgeSpan RoutingGraph::edges(RouteNodeId id) const {
  require(id.is_valid() && id.index() < nodes_.size(),
          "route node id out of range");
  const std::uint32_t begin = edge_offsets_[id.index()];
  const std::uint32_t end = edge_offsets_[id.index() + 1];
  return EdgeSpan(edge_storage_.data() + begin, end - begin);
}

RouteNodeId RoutingGraph::node_at(Position cell, Orientation o) const {
  if (!fabric_->in_bounds(cell)) return RouteNodeId::invalid();
  const std::int32_t index = node_by_cell_orientation_[cell_slot(cell, o)];
  return index < 0 ? RouteNodeId::invalid() : RouteNodeId(index);
}

RouteNodeId RoutingGraph::trap_node(TrapId trap) const {
  require(trap.is_valid() && trap.index() < node_by_trap_.size(),
          "trap id out of range");
  return node_by_trap_[trap.index()];
}

}  // namespace qspr
