// The weighted graph model of the fabric used for routing (paper §IV.B,
// Fig. 5.c — the "enhanced" model).
//
// Every junction or channel cell that supports horizontal travel gets a
// horizontal vertex; likewise for vertical travel. The two vertices of one
// cell are linked by a *turn edge* whose (large) cost makes the router prefer
// straight paths — the paper's key routing improvement over QUALE/QPOS.
// Traps are their own vertices, linked to the adjacent channel cells through
// move edges along the port axis (entering or leaving a trap from a
// perpendicular channel therefore costs a turn, charged at the port cell).
//
// Edge weights are evaluated at query time against the current congestion
// state (Eq. 2); this class only stores the static structure.
//
// Storage is CSR (compressed sparse row): one contiguous edge array indexed
// by a per-node offset table, so the inner routing loops walk adjacency
// lists without pointer-chasing per node. `edges()` hands out a lightweight
// span view over the node's slice of the shared edge array.
#pragma once

#include <cstdint>
#include <vector>

#include "common/geometry.hpp"
#include "common/ids.hpp"
#include "fabric/fabric.hpp"

namespace qspr {

struct RouteNode {
  Position cell;
  /// Travel orientation for channel/junction vertices; meaningless for traps.
  Orientation orientation = Orientation::Horizontal;
  bool is_trap = false;
  /// Segment of the cell (valid iff the cell is a channel square).
  SegmentId segment;
  /// Junction at the cell (valid iff the cell is a junction square).
  JunctionId junction;
  /// Trap identity (valid iff is_trap).
  TrapId trap;
};

struct RouteEdge {
  RouteNodeId to;
  bool is_turn = false;
};

/// Non-owning view of one node's adjacency slice inside the CSR edge array.
class EdgeSpan {
 public:
  constexpr EdgeSpan() = default;
  constexpr EdgeSpan(const RouteEdge* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] constexpr const RouteEdge* begin() const { return data_; }
  [[nodiscard]] constexpr const RouteEdge* end() const { return data_ + size_; }
  [[nodiscard]] constexpr std::size_t size() const { return size_; }
  [[nodiscard]] constexpr bool empty() const { return size_ == 0; }
  constexpr const RouteEdge& operator[](std::size_t i) const {
    return data_[i];
  }

 private:
  const RouteEdge* data_ = nullptr;
  std::size_t size_ = 0;
};

class RoutingGraph {
 public:
  explicit RoutingGraph(const Fabric& fabric);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  /// Number of directed edges in the CSR array (twice the undirected count).
  [[nodiscard]] std::size_t edge_count() const { return edge_storage_.size(); }
  [[nodiscard]] const RouteNode& node(RouteNodeId id) const;

  /// Outgoing edges of `id` (the graph is symmetric).
  [[nodiscard]] EdgeSpan edges(RouteNodeId id) const;

  /// Prefetches `id`'s CSR adjacency slice. Search loops call this one pop
  /// ahead (on the frontier's next likely node) so the edge walk finds its
  /// lines already in flight; a miss costs nothing but the hint.
  void prefetch_edges(RouteNodeId id) const {
#if defined(__GNUC__) || defined(__clang__)
    if (id.is_valid() && id.index() < nodes_.size()) {
      __builtin_prefetch(edge_storage_.data() + edge_offsets_[id.index()]);
    }
#else
    (void)id;
#endif
  }

  /// Vertex for travelling through `cell` with orientation `o`; invalid when
  /// the cell does not support that orientation.
  [[nodiscard]] RouteNodeId node_at(Position cell, Orientation o) const;

  /// Vertex of trap `trap`.
  [[nodiscard]] RouteNodeId trap_node(TrapId trap) const;

  [[nodiscard]] const Fabric& fabric() const { return *fabric_; }

 private:
  /// An undirected edge gathered during construction, before CSR packing.
  struct EdgeRecord {
    RouteNodeId a;
    RouteNodeId b;
    bool is_turn;
  };

  void create_nodes();
  void create_edges();
  void pack_edges(const std::vector<EdgeRecord>& records);

  [[nodiscard]] std::size_t cell_slot(Position p, Orientation o) const {
    const auto cell = static_cast<std::size_t>(p.row) *
                          static_cast<std::size_t>(fabric_->cols()) +
                      static_cast<std::size_t>(p.col);
    return cell * 2 + (o == Orientation::Vertical ? 1 : 0);
  }

  const Fabric* fabric_;
  std::vector<RouteNode> nodes_;
  // CSR adjacency: node i's edges live at
  // edge_storage_[edge_offsets_[i] .. edge_offsets_[i + 1]).
  std::vector<RouteEdge> edge_storage_;
  std::vector<std::uint32_t> edge_offsets_;
  std::vector<std::int32_t> node_by_cell_orientation_;  // -1 when absent
  std::vector<RouteNodeId> node_by_trap_;
};

}  // namespace qspr
