// The weighted graph model of the fabric used for routing (paper §IV.B,
// Fig. 5.c — the "enhanced" model).
//
// Every junction or channel cell that supports horizontal travel gets a
// horizontal vertex; likewise for vertical travel. The two vertices of one
// cell are linked by a *turn edge* whose (large) cost makes the router prefer
// straight paths — the paper's key routing improvement over QUALE/QPOS.
// Traps are their own vertices, linked to the adjacent channel cells through
// move edges along the port axis (entering or leaving a trap from a
// perpendicular channel therefore costs a turn, charged at the port cell).
//
// Edge weights are evaluated at query time against the current congestion
// state (Eq. 2); this class only stores the static structure.
#pragma once

#include <vector>

#include "common/geometry.hpp"
#include "common/ids.hpp"
#include "fabric/fabric.hpp"

namespace qspr {

struct RouteNode {
  Position cell;
  /// Travel orientation for channel/junction vertices; meaningless for traps.
  Orientation orientation = Orientation::Horizontal;
  bool is_trap = false;
  /// Segment of the cell (valid iff the cell is a channel square).
  SegmentId segment;
  /// Junction at the cell (valid iff the cell is a junction square).
  JunctionId junction;
  /// Trap identity (valid iff is_trap).
  TrapId trap;
};

struct RouteEdge {
  RouteNodeId to;
  bool is_turn = false;
};

class RoutingGraph {
 public:
  explicit RoutingGraph(const Fabric& fabric);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const RouteNode& node(RouteNodeId id) const;

  /// Outgoing edges of `id` (the graph is symmetric).
  [[nodiscard]] const std::vector<RouteEdge>& edges(RouteNodeId id) const;

  /// Vertex for travelling through `cell` with orientation `o`; invalid when
  /// the cell does not support that orientation.
  [[nodiscard]] RouteNodeId node_at(Position cell, Orientation o) const;

  /// Vertex of trap `trap`.
  [[nodiscard]] RouteNodeId trap_node(TrapId trap) const;

  [[nodiscard]] const Fabric& fabric() const { return *fabric_; }

 private:
  void create_nodes();
  void create_edges();
  void add_edge(RouteNodeId a, RouteNodeId b, bool is_turn);

  [[nodiscard]] std::size_t cell_slot(Position p, Orientation o) const {
    const auto cell = static_cast<std::size_t>(p.row) *
                          static_cast<std::size_t>(fabric_->cols()) +
                      static_cast<std::size_t>(p.col);
    return cell * 2 + (o == Orientation::Vertical ? 1 : 0);
  }

  const Fabric* fabric_;
  std::vector<RouteNode> nodes_;
  std::vector<std::vector<RouteEdge>> edges_;
  std::vector<std::int32_t> node_by_cell_orientation_;  // -1 when absent
  std::vector<RouteNodeId> node_by_trap_;
};

}  // namespace qspr
