#include "route/path.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qspr {

namespace {

/// Capacity-limited resource of a graph vertex, if any (traps excluded).
ResourceRef resource_of(const RouteNode& node) {
  if (node.is_trap) return ResourceRef{};
  if (node.junction.is_valid()) return ResourceRef::junction(node.junction);
  if (node.segment.is_valid()) return ResourceRef::segment(node.segment);
  return ResourceRef{};
}

}  // namespace

Duration RoutedPath::total_delay() const {
  Duration total = 0;
  for (const PathStep& step : steps) total += step.duration;
  return total;
}

int RoutedPath::move_count() const {
  return static_cast<int>(std::count_if(
      steps.begin(), steps.end(),
      [](const PathStep& s) { return s.kind == StepKind::Move; }));
}

int RoutedPath::turn_count() const {
  return static_cast<int>(steps.size()) - move_count();
}

RoutedPath lower_path(const RoutingGraph& graph,
                      const std::vector<RouteNodeId>& nodes,
                      const TechnologyParams& params) {
  RoutedPath path;
  path.nodes = nodes;
  if (nodes.size() < 2) return path;

  // Steps with cumulative offsets.
  Duration offset = 0;
  std::vector<Duration> step_start_offsets;
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    const RouteNode& a = graph.node(nodes[i]);
    const RouteNode& b = graph.node(nodes[i + 1]);
    PathStep step;
    if (a.cell == b.cell) {
      step.kind = StepKind::Turn;
      step.from = a.cell;
      step.to = a.cell;
      step.duration = params.t_turn;
    } else {
      require(are_adjacent(a.cell, b.cell),
              "path vertices must be cell-adjacent");
      step.kind = StepKind::Move;
      step.from = a.cell;
      step.to = b.cell;
      step.duration = params.t_move;
    }
    step_start_offsets.push_back(offset);
    offset += step.duration;
    path.steps.push_back(step);
  }
  const Duration total = offset;

  // Resource intervals: a resource opens when the qubit starts moving into
  // one of its cells and closes when the qubit has fully moved out.
  std::vector<ResourceUse> uses;
  const auto find_open = [&uses](ResourceRef r) -> ResourceUse* {
    for (auto it = uses.rbegin(); it != uses.rend(); ++it) {
      if (it->resource == r && it->exit_offset < 0) return &*it;
    }
    return nullptr;
  };

  offset = 0;
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    const RouteNode& a = graph.node(nodes[i]);
    const RouteNode& b = graph.node(nodes[i + 1]);
    const ResourceRef ra = resource_of(a);
    const ResourceRef rb = resource_of(b);
    const Duration start = step_start_offsets[i];
    const Duration end = start + path.steps[i].duration;
    if (rb.index >= 0 && !(rb == ra)) {
      // Entering rb: open at move start (occupies both cells while moving).
      if (find_open(rb) == nullptr) {
        uses.push_back(ResourceUse{rb, start, -1});
      }
    }
    if (ra.index >= 0 && !(ra == rb)) {
      if (ResourceUse* open = find_open(ra)) open->exit_offset = end;
    }
    offset = end;
  }
  // Anything still open is held until the path completes.
  for (ResourceUse& use : uses) {
    if (use.exit_offset < 0) use.exit_offset = total;
  }
  path.resource_uses = std::move(uses);
  return path;
}

}  // namespace qspr
