// A routed path lowered to the primitive relocations of §II.B — moves (one
// cell, keep direction) and turns (change direction in place) — plus the
// schedule of capacity-limited resources the qubit occupies along the way.
#pragma once

#include <vector>

#include "common/geometry.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"
#include "fabric/fabric.hpp"
#include "route/congestion.hpp"
#include "route/routing_graph.hpp"

namespace qspr {

enum class StepKind : std::uint8_t { Move, Turn };

struct PathStep {
  StepKind kind = StepKind::Move;
  Position from;
  Position to;  // == from for turns
  Duration duration = 0;
};

/// Occupancy interval of one resource, relative to the path's start time.
/// A qubit holds a resource from the moment it starts moving into it until
/// the moment it has fully moved out (or forever if the path ends inside —
/// expressed as exit_offset == total delay; traps are tracked separately).
struct ResourceUse {
  ResourceRef resource;
  Duration enter_offset = 0;
  Duration exit_offset = 0;
};

struct RoutedPath {
  /// Vertices visited, from source to target (useful for tests/debugging).
  std::vector<RouteNodeId> nodes;
  std::vector<PathStep> steps;
  std::vector<ResourceUse> resource_uses;

  [[nodiscard]] Duration total_delay() const;
  [[nodiscard]] int move_count() const;
  [[nodiscard]] int turn_count() const;
  [[nodiscard]] bool empty() const { return steps.empty(); }
};

/// Lowers a vertex sequence into timed steps and resource-use intervals.
/// `params` supplies the physical t_move / t_turn (turn durations are always
/// physical here, even when the router *selected* the path turn-unaware).
RoutedPath lower_path(const RoutingGraph& graph,
                      const std::vector<RouteNodeId>& nodes,
                      const TechnologyParams& params);

}  // namespace qspr
