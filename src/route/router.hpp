// Congestion-aware shortest-path router (paper §IV.B).
//
// Runs Dijkstra (with an admissible Manhattan-distance A* bound) over the
// RoutingGraph, weighting edges at query time against the current
// CongestionState:
//
//   move into a channel cell of segment s :  t_move * (n_s + 1)   if n_s < cap
//                                            infinity (pruned)    otherwise
//   move into a junction cell j           :  t_move               if n_j < cap
//   turn in place                         :  t_turn  (or 0 when turn-unaware)
//
// The per-cell weight t_move*(n+1) is the cell-granular decomposition of the
// paper's Eq. 2 per-channel weight (n+1)*length. Turn-unaware mode reproduces
// the prior-art cost model of Fig. 5.b: turns are free during *selection* but
// still cost t_turn when the chosen path is executed.
//
// A Router is an immutable view over the graph and physics parameters: every
// query threads the caller's SearchArena through, so one Router can serve
// any number of threads as long as each passes its own arena (the
// thread-confined scratch of the trial-parallel mapping pipeline).
#pragma once

#include <optional>
#include <vector>

#include "common/time.hpp"
#include "route/congestion.hpp"
#include "route/path.hpp"
#include "route/routing_graph.hpp"
#include "route/search_arena.hpp"

namespace qspr {

struct RouterOptions {
  /// Model turn delays in the path cost (the QSPR enhancement of Fig. 5.c).
  bool turn_aware = true;
};

class Router {
 public:
  Router(const RoutingGraph& graph, const TechnologyParams& params,
         RouterOptions options = {});

  /// Vertex sequence plus the cost the search minimized (the *selection*
  /// cost, which in turn-unaware mode differs from the physical delay).
  struct NodePath {
    std::vector<RouteNodeId> nodes;
    Duration cost = 0;
  };

  /// Minimum-cost path between two traps under the given congestion. Returns
  /// nullopt when every route is blocked by fully-loaded resources. A path
  /// from a trap to itself is empty. `arena` is the caller's reusable search
  /// workspace (one per thread); when `selection_cost` is non-null it
  /// receives the minimized cost of the returned path.
  [[nodiscard]] std::optional<RoutedPath> route_trap_to_trap(
      TrapId from, TrapId to, const CongestionState& congestion,
      SearchArena<Duration>& arena, Duration* selection_cost = nullptr) const;

  /// Generic vertex-to-vertex search. Intermediate trap vertices are never
  /// traversed; `allowed_trap` additionally admits one trap as an endpoint.
  [[nodiscard]] std::optional<NodePath> shortest_node_path(
      RouteNodeId from, RouteNodeId to, const CongestionState& congestion,
      SearchArena<Duration>& arena,
      TrapId allowed_trap = TrapId::invalid()) const;

  [[nodiscard]] const RouterOptions& options() const { return options_; }
  [[nodiscard]] const TechnologyParams& params() const { return params_; }
  [[nodiscard]] const RoutingGraph& graph() const { return *graph_; }

 private:
  const RoutingGraph* graph_;
  TechnologyParams params_;
  RouterOptions options_;
};

}  // namespace qspr
