// Reusable shortest-path search workspace (the routing hot path's arena).
//
// Every search over the RoutingGraph needs per-node distance / parent /
// settled state plus a priority-queue buffer. Allocating those per query —
// O(n) per routed net per negotiation iteration — dominated the router's
// runtime on large fabrics. A SearchArena owns them once and invalidates in
// O(1) by bumping a generation counter: a node's state is live only while
// its stamp matches the current generation, so `begin()` costs nothing per
// node and the arrays stay hot in cache across queries.
//
// Layout: per-node state is a single struct-of-records array (dist, parent,
// and one interleaved stamp+settled word), so touching / relaxing / settling
// a node costs one cache line instead of four. The frontier is pluggable
// (FrontierKind): a monotone bucket queue for integer Duration costs, a
// 4-ary heap for double congestion costs, and the original std::push_heap
// binary heap kept as the reference implementation. All three pop the exact
// same (f, g, node) total order — entries are pairwise distinct because
// pushes happen only on strict dist improvement — so the choice is purely a
// constant-factor knob: searches are bit-identical across kinds (asserted by
// tests/frontier_queue_test.cpp and the fuzz differential).
//
// The arena is shared by the incremental Router (integer Duration costs),
// the PathFinder negotiated search (double congestion costs), and the ALT
// landmark-table builders (route/landmarks.hpp), whose 2K+K Dijkstras per
// fabric reuse one double arena across every source — hence the cost-type
// template. Not thread-safe; one arena per searching thread.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace qspr {

/// Which priority structure backs a SearchArena's frontier.
///   Binary — std::push_heap/pop_heap binary heap (reference).
///   Bucket — monotone bucket queue keyed by integer f; legal only for
///            integer costs under a consistent heuristic (popped keys never
///            decrease). Requests for Bucket on a floating-point arena are
///            resolved to Dary4.
///   Dary4  — 4-ary implicit heap; fewer levels and better cache locality
///            per sift than the binary heap, valid for any cost type.
enum class FrontierKind : std::uint8_t { Binary, Bucket, Dary4 };

[[nodiscard]] constexpr const char* to_string(FrontierKind kind) {
  switch (kind) {
    case FrontierKind::Binary: return "binary";
    case FrontierKind::Bucket: return "bucket";
    case FrontierKind::Dary4: return "dary4";
  }
  return "?";
}

[[nodiscard]] inline std::optional<FrontierKind> frontier_kind_from_name(
    std::string_view name) {
  if (name == "binary") return FrontierKind::Binary;
  if (name == "bucket") return FrontierKind::Bucket;
  if (name == "dary" || name == "dary4") return FrontierKind::Dary4;
  return std::nullopt;
}

namespace detail {
/// Process-global frontier override (-1 = none). Set programmatically by
/// tests/benches via force_frontier_kind, or once from QSPR_FRONTIER_QUEUE.
inline std::atomic<int>& frontier_override() {
  static std::atomic<int> value{-1};
  return value;
}

[[nodiscard]] inline int frontier_env_request() {
  static const int parsed = [] {
    const char* env = std::getenv("QSPR_FRONTIER_QUEUE");
    if (env == nullptr) return -1;
    const auto kind = frontier_kind_from_name(env);
    return kind ? static_cast<int>(*kind) : -1;
  }();
  return parsed;
}
}  // namespace detail

/// Forces every arena (from its next begin()) onto one frontier kind.
/// Test/bench hook; production selection is the per-cost default or the
/// QSPR_FRONTIER_QUEUE environment variable.
inline void force_frontier_kind(FrontierKind kind) {
  detail::frontier_override().store(static_cast<int>(kind),
                                    std::memory_order_relaxed);
}
inline void clear_frontier_kind_override() {
  detail::frontier_override().store(-1, std::memory_order_relaxed);
}

/// The frontier an arena of the given cost class uses absent a per-arena
/// pin: override > environment > (Bucket for integers, Dary4 for doubles).
/// Bucket on a floating-point arena resolves to Dary4 — bucket indexing
/// requires integer keys.
[[nodiscard]] inline FrontierKind default_frontier_kind(bool integer_cost) {
  int requested = detail::frontier_override().load(std::memory_order_relaxed);
  if (requested < 0) requested = detail::frontier_env_request();
  if (requested >= 0) {
    const auto kind = static_cast<FrontierKind>(requested);
    if (kind == FrontierKind::Bucket && !integer_cost) {
      return FrontierKind::Dary4;
    }
    return kind;
  }
  return integer_cost ? FrontierKind::Bucket : FrontierKind::Dary4;
}

template <typename Cost>
class SearchArena {
 public:
  /// Heap entry over (f = g + h, g, node); g- and node-tie-breaks keep the
  /// search deterministic across platforms.
  struct HeapEntry {
    Cost f;
    Cost g;
    RouteNodeId node;

    friend bool operator>(const HeapEntry& a, const HeapEntry& b) {
      if (a.f != b.f) return a.f > b.f;
      if (a.g != b.g) return a.g > b.g;
      return a.node > b.node;
    }
  };

  static constexpr Cost infinity() {
    if constexpr (std::is_floating_point_v<Cost>) {
      return std::numeric_limits<Cost>::infinity();
    } else {
      return static_cast<Cost>(kInfiniteDuration);
    }
  }

  /// Starts a fresh search over `node_count` nodes. O(1) except on first use
  /// (or growth), when the arrays are sized; prior state is invalidated by
  /// the generation bump.
  void begin(std::size_t node_count) {
    if (state_.size() < node_count) state_.resize(node_count);
    if (++generation_ == kGenerationLimit) {  // stamps may alias: wipe them
      wipe_stamps();
      generation_ = 1;
    }
    if (!kind_pinned_) {
      kind_ = default_frontier_kind(!std::is_floating_point_v<Cost>);
    }
    forward_.clear_all();
  }

  /// Starts a fresh *bidirectional* search: the primary (forward) frontier
  /// plus a second generation-stamped frontier sharing the same generation
  /// counter. Callers that never go bidirectional pay nothing — the backward
  /// arrays are sized on first begin_dual only.
  void begin_dual(std::size_t node_count) {
    begin(node_count);
    if (state_b_.size() < node_count) state_b_.resize(node_count);
    backward_.clear_all();
  }

  /// Pins this arena to one frontier kind (begin() stops consulting the
  /// global default). Bucket on a floating-point arena resolves to Dary4.
  void set_frontier(FrontierKind kind) {
    if constexpr (std::is_floating_point_v<Cost>) {
      if (kind == FrontierKind::Bucket) kind = FrontierKind::Dary4;
    }
    kind_ = kind;
    kind_pinned_ = true;
  }
  [[nodiscard]] FrontierKind frontier() const { return kind_; }

  /// Unique nodes settled over this arena's lifetime (monotone; sample a
  /// before/after delta to attribute settles to one simulation or query).
  [[nodiscard]] std::uint64_t settle_count() const { return settles_; }

  /// Prefetches a node's search state (the line the next pop will touch).
  void prefetch(RouteNodeId id) const {
#if defined(__GNUC__) || defined(__clang__)
    if (id.is_valid() && id.index() < state_.size()) {
      __builtin_prefetch(&state_[id.index()]);
    }
#else
    (void)id;
#endif
  }

  [[nodiscard]] Cost dist(RouteNodeId id) {
    NodeState& s = touch(id.index());
    return s.dist;
  }
  [[nodiscard]] RouteNodeId parent(RouteNodeId id) const {
    const NodeState& s = state_[id.index()];
    return (s.tag >> 1) == generation_ ? s.parent : RouteNodeId::invalid();
  }
  [[nodiscard]] bool settled(RouteNodeId id) {
    return (touch(id.index()).tag & 1u) != 0;
  }
  void settle(RouteNodeId id) {
    state_[id.index()].tag |= 1u;
    ++settles_;
  }
  /// Records a relaxation: `id` is now reached at `g` via `from`.
  void relax(RouteNodeId id, Cost g, RouteNodeId from) {
    NodeState& s = touch(id.index());
    s.dist = g;
    s.parent = from;
  }

  [[nodiscard]] bool heap_empty() const { return forward_.empty(kind_); }
  void heap_push(Cost f, Cost g, RouteNodeId node) {
    forward_.push(kind_, HeapEntry{f, g, node});
  }
  HeapEntry heap_pop() { return forward_.pop(kind_); }
  /// Smallest entry without removal (frontier must be non-empty) — the
  /// meet-in-the-middle termination test reads both tops every step.
  [[nodiscard]] const HeapEntry& heap_top() { return forward_.top(kind_); }
  /// Cheap guess at a node the frontier will pop soon (invalid when empty);
  /// prefetch hint only — no ordering guarantee for the bucket queue.
  [[nodiscard]] RouteNodeId heap_peek_node() const {
    return forward_.peek_node(kind_);
  }

  // --- second (backward) frontier; live only after begin_dual ---

  [[nodiscard]] Cost dist_b(RouteNodeId id) {
    NodeState& s = touch_b(id.index());
    return s.dist;
  }
  [[nodiscard]] RouteNodeId parent_b(RouteNodeId id) const {
    const NodeState& s = state_b_[id.index()];
    return (s.tag >> 1) == generation_ ? s.parent : RouteNodeId::invalid();
  }
  [[nodiscard]] bool settled_b(RouteNodeId id) {
    return (touch_b(id.index()).tag & 1u) != 0;
  }
  void settle_b(RouteNodeId id) {
    state_b_[id.index()].tag |= 1u;
    ++settles_;
  }
  void relax_b(RouteNodeId id, Cost g, RouteNodeId from) {
    NodeState& s = touch_b(id.index());
    s.dist = g;
    s.parent = from;
  }
  void prefetch_b(RouteNodeId id) const {
#if defined(__GNUC__) || defined(__clang__)
    if (id.is_valid() && id.index() < state_b_.size()) {
      __builtin_prefetch(&state_b_[id.index()]);
    }
#else
    (void)id;
#endif
  }

  [[nodiscard]] bool heap_empty_b() const { return backward_.empty(kind_); }
  void heap_push_b(Cost f, Cost g, RouteNodeId node) {
    backward_.push(kind_, HeapEntry{f, g, node});
  }
  HeapEntry heap_pop_b() { return backward_.pop(kind_); }
  [[nodiscard]] const HeapEntry& heap_top_b() { return backward_.top(kind_); }
  [[nodiscard]] RouteNodeId heap_peek_node_b() const {
    return backward_.peek_node(kind_);
  }

  /// Test hook: jump the generation counter (e.g. to just below the wrap
  /// limit) so wrap-around reuse is exercisable without 2^31 begins.
  void debug_set_generation(std::uint32_t generation) {
    generation_ = generation;
  }
  [[nodiscard]] std::uint32_t debug_generation() const { return generation_; }

 private:
  // One cache-line-friendly record per node: 16 bytes for 8-byte costs. The
  // tag packs (generation << 1) | settled so a settle flips one bit in a
  // line already resident from the preceding dist/relax touch.
  struct NodeState {
    Cost dist = Cost{};
    RouteNodeId parent = RouteNodeId::invalid();
    std::uint32_t tag = 0;
  };

  // Generation lives in the tag's upper 31 bits.
  static constexpr std::uint32_t kGenerationLimit = 1u << 31;

  NodeState& touch(std::size_t i) {
    NodeState& s = state_[i];
    if ((s.tag >> 1) != generation_) {
      s.dist = infinity();
      s.parent = RouteNodeId::invalid();
      s.tag = generation_ << 1;
    }
    return s;
  }
  NodeState& touch_b(std::size_t i) {
    NodeState& s = state_b_[i];
    if ((s.tag >> 1) != generation_) {
      s.dist = infinity();
      s.parent = RouteNodeId::invalid();
      s.tag = generation_ << 1;
    }
    return s;
  }

  void wipe_stamps() {
    for (NodeState& s : state_) s.tag = 0;
    for (NodeState& s : state_b_) s.tag = 0;
  }

  /// One frontier: heap storage shared by Binary/Dary4, bucket array for
  /// Bucket. All three implementations pop the strict (f, g, node) minimum;
  /// entries are pairwise distinct (pushes only on strict improvement), so
  /// the pop sequence — and therefore the search — is identical across
  /// kinds.
  struct Frontier {
    std::vector<HeapEntry> heap_;
    // Monotone bucket queue, indexed by the (small, bounded) integer f.
    // Only buckets in [cursor_, high_] can be non-empty: pops drain the
    // cursor bucket before advancing, and monotone pushes never land below
    // the cursor (asserted) — which bounds both pop scans and clears. Each
    // bucket is itself a tiny (g, node) min-heap: unit-cost grids pile many
    // ties into one f, and a linear min-scan per pop would go quadratic in
    // that pile (measurably slower than the binary heap); the per-bucket
    // heap keeps pops at O(log bucket) while preserving the exact
    // (f, g, node) order — every entry in a bucket shares f.
    std::vector<std::vector<HeapEntry>> buckets_;
    std::size_t cursor_ = 0;
    std::size_t high_ = 0;
    std::size_t live_ = 0;

    void clear_all() {
      heap_.clear();
      if (live_ > 0) {
        for (std::size_t i = cursor_; i <= high_ && live_ > 0; ++i) {
          live_ -= buckets_[i].size();
          buckets_[i].clear();
        }
      }
      cursor_ = 0;
      high_ = 0;
      live_ = 0;
    }

    [[nodiscard]] bool empty(FrontierKind kind) const {
      return kind == FrontierKind::Bucket ? live_ == 0 : heap_.empty();
    }

    void push(FrontierKind kind, HeapEntry entry) {
      switch (kind) {
        case FrontierKind::Binary:
          heap_.push_back(entry);
          std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
          return;
        case FrontierKind::Bucket: {
          const auto key = bucket_key(entry.f);
          // Monotonicity: with a consistent heuristic every push's f is at
          // least the last popped f — and the cursor only ever advances to
          // popped keys (a push never moves it), so keys never land below
          // it. The frontier may transiently drain mid-expansion; later
          // sibling pushes are bounded by the popped key, not each other.
          assert(key >= cursor_);
          if (key >= buckets_.size()) {
            buckets_.resize(std::max<std::size_t>(key + 1,
                                                  buckets_.size() * 2));
          }
          auto& bucket = buckets_[key];
          bucket.push_back(entry);
          std::push_heap(bucket.begin(), bucket.end(), std::greater<>{});
          high_ = std::max(high_, key);
          ++live_;
          return;
        }
        case FrontierKind::Dary4:
          dary_push(entry);
          return;
      }
    }

    HeapEntry pop(FrontierKind kind) {
      switch (kind) {
        case FrontierKind::Binary: {
          std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
          const HeapEntry top = heap_.back();
          heap_.pop_back();
          return top;
        }
        case FrontierKind::Bucket: {
          advance_cursor();
          auto& bucket = buckets_[cursor_];
          // All entries here share f == cursor_; the per-bucket heap pops
          // the (g, node) minimum, so the strict (f, g, node) order matches
          // the whole-frontier heaps exactly.
          std::pop_heap(bucket.begin(), bucket.end(), std::greater<>{});
          const HeapEntry top = bucket.back();
          bucket.pop_back();
          --live_;
          return top;
        }
        case FrontierKind::Dary4:
          return dary_pop();
      }
      return HeapEntry{};  // unreachable
    }

    [[nodiscard]] const HeapEntry& top(FrontierKind kind) {
      if (kind != FrontierKind::Bucket) return heap_.front();
      advance_cursor();
      return buckets_[cursor_].front();  // per-bucket heap root = min
    }

    [[nodiscard]] RouteNodeId peek_node(FrontierKind kind) const {
      if (kind != FrontierKind::Bucket) {
        return heap_.empty() ? RouteNodeId::invalid() : heap_.front().node;
      }
      if (live_ == 0) return RouteNodeId::invalid();
      for (std::size_t i = cursor_; i <= high_; ++i) {
        if (!buckets_[i].empty()) return buckets_[i].front().node;
      }
      return RouteNodeId::invalid();
    }

   private:
    [[nodiscard]] static std::size_t bucket_key(Cost f) {
      assert(f >= Cost{0});
      return static_cast<std::size_t>(f);
    }

    void advance_cursor() {
      while (buckets_[cursor_].empty()) ++cursor_;
    }

    void dary_push(HeapEntry entry) {
      heap_.push_back(entry);
      std::size_t i = heap_.size() - 1;
      while (i > 0) {
        const std::size_t parent = (i - 1) >> 2;
        if (!(heap_[parent] > heap_[i])) break;
        std::swap(heap_[parent], heap_[i]);
        i = parent;
      }
    }

    HeapEntry dary_pop() {
      const HeapEntry top = heap_.front();
      heap_.front() = heap_.back();
      heap_.pop_back();
      const std::size_t n = heap_.size();
      std::size_t i = 0;
      for (;;) {
        const std::size_t first = (i << 2) + 1;
        if (first >= n) break;
        std::size_t best = first;
        const std::size_t last = std::min(first + 4, n);
        for (std::size_t child = first + 1; child < last; ++child) {
          if (heap_[best] > heap_[child]) best = child;
        }
        if (!(heap_[i] > heap_[best])) break;
        std::swap(heap_[i], heap_[best]);
        i = best;
      }
      return top;
    }
  };

  std::vector<NodeState> state_;
  std::uint32_t generation_ = 0;
  std::uint64_t settles_ = 0;
  FrontierKind kind_ =
      default_frontier_kind(!std::is_floating_point_v<Cost>);
  bool kind_pinned_ = false;
  Frontier forward_;
  // Backward-frontier twin state (bidirectional searches only); shares
  // generation_ so one begin_dual invalidates both sides in O(1).
  std::vector<NodeState> state_b_;
  Frontier backward_;
};

/// Generation-stamped membership set over a dense index range: O(1) insert /
/// contains / clear, no per-use allocation. Replaces the O(P²) repeated
/// std::find dedup when collecting the distinct resources of a path.
class StampedSet {
 public:
  void reset(std::size_t universe) {
    if (stamp_.size() < universe) stamp_.resize(universe, 0);
    if (++generation_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      generation_ = 1;
    }
  }

  /// Inserts `i`; returns true when `i` was not yet a member.
  bool insert(std::size_t i) {
    if (stamp_[i] == generation_) return false;
    stamp_[i] = generation_;
    return true;
  }

  [[nodiscard]] bool contains(std::size_t i) const {
    return stamp_[i] == generation_;
  }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t generation_ = 0;
};

/// Pool of per-worker scratch objects indexed by an Executor worker id.
/// Slots live behind stable unique_ptrs, so growing the pool never moves a
/// scratch another worker is using, and two workers never share a cache line
/// through adjacent slots. Confinement contract: slot `w` is only ever
/// touched by the thread currently acting as worker `w` of one owning
/// context — a pool must not be shared by two *concurrent* parallel calls
/// (hold one pool per negotiation context, exactly like a single scratch).
template <typename Scratch>
class WorkerScratchPool {
 public:
  WorkerScratchPool() = default;
  explicit WorkerScratchPool(std::size_t workers) { grow_to(workers); }

  /// Ensures at least `workers` slots exist; existing slots are preserved
  /// (their warmed allocations survive across batches).
  void grow_to(std::size_t workers) {
    while (slots_.size() < workers) {
      slots_.push_back(std::make_unique<Scratch>());
    }
  }

  [[nodiscard]] std::size_t size() const { return slots_.size(); }

  [[nodiscard]] Scratch& for_worker(std::size_t worker) {
    return *slots_[worker];
  }

 private:
  std::vector<std::unique_ptr<Scratch>> slots_;
};

}  // namespace qspr
